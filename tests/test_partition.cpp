#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "graph/builder.hpp"
#include "graph/zoo/zoo.hpp"
#include "partition/node_partitioner.hpp"
#include "partition/workload.hpp"

namespace pimcomp {
namespace {

Graph tiny_conv_graph(int cin, int cout, int k, int in_size) {
  GraphBuilder b("tiny", {cin, in_size, in_size});
  b.conv(b.input(), cout, k, 1, k / 2, "conv");
  return b.build();
}

TEST(Partition, ConvMatrixLowering) {
  // Fig 4: weight matrix height = kw*kh*Cin, width = Cout.
  Graph g = tiny_conv_graph(64, 128, 3, 32);
  const HardwareConfig hw = HardwareConfig::puma_default();
  const NodePartition p = partition_node(g, 1, hw);
  EXPECT_EQ(p.matrix_rows, 3 * 3 * 64);
  EXPECT_EQ(p.matrix_cols, 128);
  EXPECT_EQ(p.row_slices, ceil_div(576, 128));  // 5 AG row slices
  EXPECT_EQ(p.windows, 32 * 32);
  EXPECT_EQ(p.out_height, 32);
  EXPECT_EQ(p.out_width, 32);
}

TEST(Partition, XbarsPerAgUsesLogicalColumns) {
  Graph g = tiny_conv_graph(64, 128, 3, 32);
  const HardwareConfig hw = HardwareConfig::puma_default();
  const NodePartition p = partition_node(g, 1, hw);
  // 128 output columns at 16 logical columns per crossbar -> 8 crossbars.
  EXPECT_EQ(p.col_chunks, 1);
  EXPECT_EQ(p.xbars_per_ag, 8);
  EXPECT_EQ(p.ags_per_replica(), 5);
  EXPECT_EQ(p.xbars_per_replica(), 40);
}

TEST(Partition, FCTreatedAsSpecialConv) {
  GraphBuilder b("fc", {512, 2, 2});
  b.fc(b.flatten(b.input()), 1000);
  Graph g = b.build();
  const HardwareConfig hw = HardwareConfig::puma_default();
  // Node 2 is the FC (0 input, 1 flatten).
  const NodePartition p = partition_node(g, 2, hw);
  EXPECT_EQ(p.matrix_rows, 2048);
  EXPECT_EQ(p.matrix_cols, 1000);
  EXPECT_EQ(p.windows, 1);
  EXPECT_EQ(p.row_slices, 16);
}

TEST(Partition, WideLayersChunkToFitCore) {
  // FC 4096 outputs: 256 crossbars of width if unchunked, must split so one
  // AG fits the 64-crossbar core budget.
  GraphBuilder b("wide", {512, 2, 2});
  b.fc(b.flatten(b.input()), 4096);
  Graph g = b.build();
  const HardwareConfig hw = HardwareConfig::puma_default();
  const NodePartition p = partition_node(g, 2, hw);
  EXPECT_EQ(p.col_chunks, 4);
  EXPECT_LE(p.xbars_per_ag, hw.xbars_per_core);
  // Chunks cover all columns exactly.
  int covered = 0;
  for (int cc = 0; cc < p.col_chunks; ++cc) covered += p.chunk_cols(cc);
  EXPECT_EQ(covered, 4096);
}

TEST(Partition, RejectsNonCrossbarNodes) {
  GraphBuilder b("p", {3, 8, 8});
  const NodeId pool = b.max_pool(b.input(), 2, 2);
  Graph g = b.build();
  EXPECT_THROW(partition_node(g, pool, HardwareConfig::puma_default()),
               ConfigError);
}

TEST(Workload, CollectsAllCrossbarNodes) {
  Graph g = zoo::resnet18(64);
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 288;
  const Workload w(g, hw);
  EXPECT_EQ(w.partition_count(), 21);
  EXPECT_GT(w.min_xbars_required(), 0);
  EXPECT_LE(w.min_xbars_required(), w.total_xbars_available());
}

TEST(Workload, PartitionLookup) {
  Graph g = zoo::resnet18(64);
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 288;
  const Workload w(g, hw);
  // Node 1 is conv1.
  EXPECT_TRUE(w.has_partition(1));
  EXPECT_EQ(w.partition_of(1).node, 1);
  EXPECT_EQ(w.partition_index(0), -1);  // input node
  EXPECT_THROW(w.partition_of(0), ConfigError);
}

TEST(Workload, ThrowsWhenHardwareTooSmall) {
  Graph g = zoo::vgg16(224);  // 138M weights do not fit one 36-core chip
  HardwareConfig hw = HardwareConfig::puma_default();
  EXPECT_THROW(Workload(g, hw), CapacityError);
}

TEST(Workload, RecommendedCoresRoundToChips) {
  Graph g = zoo::resnet18(64);
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 4096;  // plenty, we only query the recommendation
  const Workload w(g, hw);
  const int cores = w.recommended_core_count(2.0);
  EXPECT_EQ(cores % hw.cores_per_chip, 0);
  EXPECT_GE(static_cast<std::int64_t>(cores) * hw.xbars_per_core,
            2 * w.min_xbars_required());
  EXPECT_THROW(w.recommended_core_count(0.5), ConfigError);
}

TEST(Workload, MaxReplicationIsWindowCount) {
  Graph g = zoo::resnet18(64);
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 288;
  const Workload w(g, hw);
  EXPECT_EQ(w.max_replication(1), w.partition_of(1).windows);
}

struct PartitionCase {
  int cin, cout, kernel, in_size;
};

class PartitionSweep : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionSweep, GeometryInvariants) {
  const PartitionCase c = GetParam();
  Graph g = tiny_conv_graph(c.cin, c.cout, c.kernel, c.in_size);
  const HardwareConfig hw = HardwareConfig::puma_default();
  const NodePartition p = partition_node(g, 1, hw);

  // Row slices cover the matrix.
  EXPECT_GE(p.row_slices * hw.logical_rows_per_xbar(), p.matrix_rows);
  EXPECT_LT((p.row_slices - 1) * hw.logical_rows_per_xbar(), p.matrix_rows);
  // One AG always fits a core.
  EXPECT_LE(p.xbars_per_ag, hw.xbars_per_core);
  // Chunks cover all columns, and all but the last are full width.
  int covered = 0;
  for (int cc = 0; cc < p.col_chunks; ++cc) {
    EXPECT_GT(p.chunk_cols(cc), 0);
    covered += p.chunk_cols(cc);
  }
  EXPECT_EQ(covered, p.matrix_cols);
  // MVM count: windows per replica x AGs.
  EXPECT_EQ(p.mvms_per_inference(),
            static_cast<std::int64_t>(p.windows) * p.ags_per_replica());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionSweep,
    ::testing::Values(PartitionCase{3, 64, 7, 32}, PartitionCase{64, 64, 3, 16},
                      PartitionCase{128, 256, 3, 8},
                      PartitionCase{512, 512, 3, 8},
                      PartitionCase{16, 1000, 1, 4},
                      PartitionCase{256, 2048, 1, 8},
                      PartitionCase{1, 1, 1, 1}));

}  // namespace
}  // namespace pimcomp
