// Unit tests for the capability-annotated wrappers
// (src/common/thread_annotations.hpp). Two layers:
//
//   * behavioral: MutexLock scoping (including mid-scope unlock/relock),
//     try_lock semantics, CondVar wakeups and wait_for timeouts;
//   * concurrent hammers, which are the interesting part under the TSan
//     CI leg — if the adopt/release trick inside CondVar::wait ever
//     mishandled ownership, the guarded-counter race would surface here.
#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_annotations.hpp"

namespace pimcomp {
namespace {

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  Thread prober([&mu] {
    EXPECT_FALSE(mu.try_lock());  // held by the main thread
  });
  prober.join();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexLockTest, ReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock lock(mu);
    Thread prober([&mu] { EXPECT_FALSE(mu.try_lock()); });
    prober.join();
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexLockTest, MidScopeUnlockAndRelock) {
  // The escape hatch used by the session's private-workload path: a
  // MutexLock that is released mid-scope, then reacquired before the
  // destructor runs (which must not double-unlock).
  Mutex mu;
  MutexLock lock(mu);
  lock.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  lock.lock();
  Thread prober([&mu] { EXPECT_FALSE(mu.try_lock()); });
  prober.join();
}

TEST(RecursiveMutexTest, Reenters) {
  RecursiveMutex mu;
  RecursiveMutexLock outer(mu);
  RecursiveMutexLock inner(mu);  // must not deadlock
}

TEST(CondVarTest, WaitObservesNotifiedPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu (local, so no annotation target)
  Thread notifier([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) {
      cv.wait(mu);
    }
    EXPECT_TRUE(ready);
  }
  notifier.join();
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  auto status = cv.wait_for(mu, std::chrono::milliseconds(5));
  EXPECT_EQ(status, std::cv_status::timeout);
  // The lock must still be held after the timeout path.
  Thread prober([&mu] { EXPECT_FALSE(mu.try_lock()); });
  prober.join();
}

TEST(ConcurrencyHammer, GuardedCounterStaysExact) {
  // 8 threads x 5000 guarded increments: any ownership slip inside
  // Mutex/MutexLock shows up as a lost update (and as a TSan report on
  // the sanitizer CI leg).
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  Mutex mu;
  int counter = 0;
  std::vector<Thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (Thread& thread : threads) {
    thread.join();
  }
  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(ConcurrencyHammer, CondVarHandoffChain) {
  // A token passed around a ring of waiters: exercises wait() ownership
  // transfer (adopt_lock in, release out) under real contention.
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  Mutex mu;
  CondVar cv;
  int turn = 0;
  std::vector<Thread> threads;
  threads.reserve(kThreads);
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      for (int round = 0; round < kRounds; ++round) {
        MutexLock lock(mu);
        while (turn % kThreads != id) {
          cv.wait(mu);
        }
        ++turn;
        cv.notify_all();
      }
    });
  }
  for (Thread& thread : threads) {
    thread.join();
  }
  MutexLock lock(mu);
  EXPECT_EQ(turn, kThreads * kRounds);
}

}  // namespace
}  // namespace pimcomp
