#include "schedule/memory_allocator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace pimcomp {
namespace {

TEST(Planner, NaiveNeverReclaimsUntilFlush) {
  LocalMemoryPlanner planner(MemoryPolicy::kNaive, 1024);
  const int a = planner.alloc(100, BlockClass::kPartial);
  const int b = planner.alloc(200, BlockClass::kInput);
  EXPECT_EQ(planner.usage(), 300);
  planner.free(a);
  planner.free(b);
  EXPECT_EQ(planner.usage(), 300);  // deferred
  planner.flush();
  EXPECT_EQ(planner.usage(), 0);
}

TEST(Planner, NaiveAllocatesFreshAccumulators) {
  LocalMemoryPlanner planner(MemoryPolicy::kNaive, 4096);
  const int acc = planner.alloc(64, BlockClass::kAccumulator);
  const int next = planner.accumulate_into(acc, 64);
  EXPECT_NE(next, acc);  // Fig 7(a): a new block per operation
  EXPECT_EQ(planner.usage(), 128);
}

TEST(Planner, AddReuseFoldsInPlace) {
  LocalMemoryPlanner planner(MemoryPolicy::kAddReuse, 4096);
  const int acc = planner.alloc(64, BlockClass::kAccumulator);
  const int next = planner.accumulate_into(acc, 64);
  EXPECT_EQ(next, acc);  // Fig 7(b): ADD-reuse
  EXPECT_EQ(planner.usage(), 64);
  // Accumulators reclaim on free; partials do not.
  const int partial = planner.alloc(32, BlockClass::kPartial);
  planner.free(partial);
  EXPECT_EQ(planner.usage(), 96);
  planner.free(acc);
  EXPECT_EQ(planner.usage(), 32);
}

TEST(Planner, AgReuseReclaimsEverything) {
  LocalMemoryPlanner planner(MemoryPolicy::kAgReuse, 4096);
  const int p1 = planner.alloc(64, BlockClass::kPartial);
  const int in = planner.alloc(128, BlockClass::kInput);
  EXPECT_EQ(planner.usage(), 192);
  planner.free(p1);
  EXPECT_EQ(planner.usage(), 128);  // Fig 7(c): AG buffers recycle
  planner.free(in);
  EXPECT_EQ(planner.usage(), 0);
}

TEST(Planner, ForceFreeWorksUnderAllPolicies) {
  for (MemoryPolicy policy : {MemoryPolicy::kNaive, MemoryPolicy::kAddReuse,
                              MemoryPolicy::kAgReuse}) {
    LocalMemoryPlanner planner(policy, 4096);
    const int b = planner.alloc(100, BlockClass::kInput);
    planner.force_free(b);
    EXPECT_EQ(planner.usage(), 0) << to_string(policy);
    planner.force_free(b);  // double free is a no-op
    EXPECT_EQ(planner.usage(), 0);
  }
}

TEST(Planner, PeakTracksHighWater) {
  LocalMemoryPlanner planner(MemoryPolicy::kAgReuse, 4096);
  const int a = planner.alloc(1000, BlockClass::kPartial);
  planner.alloc(500, BlockClass::kPartial);
  planner.free(a);
  planner.alloc(100, BlockClass::kPartial);
  EXPECT_EQ(planner.peak_usage(), 1500);
  EXPECT_EQ(planner.usage(), 600);
}

TEST(Planner, SpillRedirectsOverflowToGlobal) {
  LocalMemoryPlanner planner(MemoryPolicy::kNaive, 1000,
                             /*spill_on_overflow=*/true);
  planner.alloc(800, BlockClass::kInput);
  const int spilled = planner.alloc(400, BlockClass::kPartial);
  EXPECT_EQ(spilled, 1);  // block exists but lives in global memory
  EXPECT_EQ(planner.usage(), 800);  // local usage unchanged
  EXPECT_EQ(planner.spill_traffic_bytes(), 800);  // write + read back
  planner.flush();
  EXPECT_EQ(planner.usage(), 0);
  EXPECT_EQ(planner.spill_traffic_bytes(), 800);  // sticky counter
}

TEST(Planner, OverflowGrowsWhenSpillDisabled) {
  LocalMemoryPlanner planner(MemoryPolicy::kNaive, 1000,
                             /*spill_on_overflow=*/false);
  planner.alloc(800, BlockClass::kInput);
  planner.alloc(400, BlockClass::kPartial);
  EXPECT_EQ(planner.usage(), 1200);  // exceeds capacity by design (LL report)
  EXPECT_EQ(planner.spill_traffic_bytes(), 0);
}

TEST(Planner, FreeOnSpilledBlockIsSafe) {
  LocalMemoryPlanner planner(MemoryPolicy::kAgReuse, 100);
  planner.alloc(80, BlockClass::kInput);
  const int spilled = planner.alloc(50, BlockClass::kPartial);
  planner.free(spilled);
  planner.force_free(spilled);
  EXPECT_EQ(planner.usage(), 80);
}

TEST(Planner, NegativeCapacityRejected) {
  EXPECT_THROW(LocalMemoryPlanner(MemoryPolicy::kNaive, 0), ConfigError);
}

TEST(Planner, PolicyNames) {
  EXPECT_EQ(to_string(MemoryPolicy::kNaive), "naive");
  EXPECT_EQ(to_string(MemoryPolicy::kAddReuse), "add-reuse");
  EXPECT_EQ(to_string(MemoryPolicy::kAgReuse), "ag-reuse");
}

class PolicyOrdering : public ::testing::TestWithParam<int> {};

TEST_P(PolicyOrdering, ReusePoliciesNeverUseMoreMemory) {
  // Replay an identical allocation/free script under the three policies and
  // check peak(naive) >= peak(add-reuse) >= peak(ag-reuse) — the Fig 7/10
  // ordering.
  const int chains = GetParam();
  auto run = [&](MemoryPolicy policy) {
    LocalMemoryPlanner planner(policy, 1 << 20);
    for (int chain = 0; chain < chains; ++chain) {
      int acc = -1;
      std::vector<int> partials;
      for (int member = 0; member < 4; ++member) {
        partials.push_back(planner.alloc(64, BlockClass::kPartial));
        acc = planner.accumulate_into(acc, 256);
        planner.free(partials.back());
      }
      planner.free(acc);
    }
    return planner.peak_usage();
  };
  const std::int64_t naive = run(MemoryPolicy::kNaive);
  const std::int64_t add = run(MemoryPolicy::kAddReuse);
  const std::int64_t ag = run(MemoryPolicy::kAgReuse);
  EXPECT_GE(naive, add);
  EXPECT_GE(add, ag);
  EXPECT_GT(naive, ag);
}

INSTANTIATE_TEST_SUITE_P(ChainCounts, PolicyOrdering,
                         ::testing::Values(1, 4, 16, 64));

}  // namespace
}  // namespace pimcomp
