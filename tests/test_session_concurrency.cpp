// Concurrency and batch-robustness tests for CompilerSession: per-scenario
// outcomes under mixed feasible/infeasible batches, parallel batches being
// bit-identical to sequential ones, once-per-fingerprint partitioning under
// contention, and mapping-cache hits surfacing through the observer.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/session.hpp"
#include "graph/builder.hpp"

namespace pimcomp {
namespace {

Graph small_cnn(const std::string& name = "concurrency-cnn") {
  GraphBuilder b(name, {3, 16, 16});
  NodeId x = b.input();
  x = b.conv_relu(x, 8, 3, /*stride=*/1, /*padding=*/1, "conv1");
  x = b.max_pool(x, 2, 2, 0, "pool1");
  x = b.conv_relu(x, 16, 3, 1, 1, "conv2");
  x = b.fc(b.flatten(x, "flatten"), 10, "classifier");
  b.softmax(x, "prob");
  return b.build();
}

CompileOptions tiny_options(PipelineMode mode = PipelineMode::kHighThroughput,
                            std::uint64_t seed = 1) {
  CompileOptions options;
  options.mode = mode;
  options.ga.population = 8;
  options.ga.generations = 4;
  options.ga.seed_baseline = false;  // exercise the stochastic path
  options.seed = seed;
  return options;
}

/// A hardware config no model fits: partitioning throws CapacityError.
HardwareConfig one_xbar_hardware() {
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 1;
  hw.cores_per_chip = 1;
  hw.xbars_per_core = 1;
  return hw;
}

/// Counts stage and cache callbacks (the session serializes them, so plain
/// members are safe even under parallel batches).
class RecordingObserver : public PipelineObserver {
 public:
  void on_stage_begin(const StageInfo& info) override {
    if (info.stage == stage_names::kPartitioning) ++partition_begins;
  }
  void on_cache_hit(const CacheEvent& event) override {
    cache_events.push_back(event);
  }

  int hits(const std::string& cache) const {
    int count = 0;
    for (const CacheEvent& event : cache_events) {
      if (event.cache == cache) ++count;
    }
    return count;
  }

  int partition_begins = 0;
  std::vector<CacheEvent> cache_events;
};

/// A mixed DSE-style batch: feasible, infeasible, feasible, misconfigured,
/// feasible — exercising both error types in the middle of a sweep.
void enqueue_mixed_batch(CompilerSession& session) {
  session.enqueue(Scenario{"ht", tiny_options(PipelineMode::kHighThroughput),
                           std::nullopt});
  session.enqueue(Scenario{"too-small", tiny_options(), one_xbar_hardware()});
  session.enqueue(Scenario{"ll", tiny_options(PipelineMode::kLowLatency),
                           std::nullopt});
  CompileOptions bad_mapper = tiny_options();
  bad_mapper.mapper = "not-a-mapper";
  session.enqueue(Scenario{"bad-mapper", bad_mapper, std::nullopt});
  CompileOptions other_seed = tiny_options(PipelineMode::kHighThroughput, 7);
  session.enqueue(Scenario{"ht-seed7", other_seed, std::nullopt});
}

TEST(CompilerSessionBatch, InfeasibleScenarioDoesNotAbortTheBatch) {
  for (int jobs : {1, 4}) {
    CompilerSession session(small_cnn(), HardwareConfig::puma_default());
    session.set_jobs(jobs);
    enqueue_mixed_batch(session);

    const std::vector<ScenarioOutcome> outcomes = session.compile_all();
    ASSERT_EQ(outcomes.size(), 5u) << "jobs=" << jobs;
    EXPECT_EQ(session.pending(), 0);

    // Outcomes keep enqueue order and labels.
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      EXPECT_EQ(outcomes[i].index, static_cast<int>(i));
    }
    EXPECT_EQ(outcomes[1].label, "too-small");

    // Every feasible scenario succeeded despite the failures between them.
    for (std::size_t i : {0u, 2u, 4u}) {
      EXPECT_TRUE(outcomes[i].ok()) << "jobs=" << jobs << ": "
                                    << outcomes[i].error;
    }

    // The infeasible point carries the CapacityError message.
    ASSERT_FALSE(outcomes[1].ok());
    EXPECT_NE(outcomes[1].error.find("crossbars"), std::string::npos);

    // The misconfigured point carries the ConfigError message.
    ASSERT_FALSE(outcomes[3].ok());
    EXPECT_NE(outcomes[3].error.find("not-a-mapper"), std::string::npos);
  }
}

TEST(CompilerSessionBatch, SingleCompileStillThrows) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  EXPECT_THROW(
      session.compile(Scenario{"bad", tiny_options(), one_xbar_hardware()}),
      CapacityError);
}

TEST(CompilerSessionBatch, InfeasibleFingerprintFailsOncePartitionsOnce) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  session.set_jobs(4);
  RecordingObserver observer;
  session.set_observer(&observer);

  for (int i = 0; i < 4; ++i) {
    session.enqueue(Scenario{"bad-" + std::to_string(i),
                             tiny_options(PipelineMode::kHighThroughput,
                                          static_cast<std::uint64_t>(i + 1)),
                             one_xbar_hardware()});
  }
  const std::vector<ScenarioOutcome> outcomes = session.compile_all();
  for (const ScenarioOutcome& outcome : outcomes) {
    ASSERT_FALSE(outcome.ok());
    EXPECT_NE(outcome.error.find("crossbars"), std::string::npos);
  }
  // One owner partitioned (and failed); peers rethrew the published failure
  // instead of re-running partitioning.
  EXPECT_EQ(observer.partition_begins, 1);
  EXPECT_EQ(session.cached_workloads(), 0u);  // failures are not workloads

  // Deterministic infeasibility stays cached: a later compile of the same
  // fingerprint rethrows without another partitioning pass.
  EXPECT_THROW(
      session.compile(Scenario{"again", tiny_options(), one_xbar_hardware()}),
      CapacityError);
  EXPECT_EQ(observer.partition_begins, 1);
}

TEST(CompilerSessionParallel, BitIdenticalToSequential) {
  HardwareConfig wide = HardwareConfig::puma_default();
  wide.core_count = 2 * wide.cores_per_chip;

  const auto enqueue_batch = [&wide](CompilerSession& session) {
    session.enqueue(tiny_options(PipelineMode::kHighThroughput), "ht");
    session.enqueue(tiny_options(PipelineMode::kLowLatency), "ll");
    CompileOptions p200 = tiny_options();
    p200.parallelism_degree = 200;
    session.enqueue(p200, "p200");
    session.enqueue(Scenario{"wide", tiny_options(), wide});
    session.enqueue(tiny_options(PipelineMode::kHighThroughput, 42), "seed42");
  };

  CompilerSession sequential(small_cnn(), HardwareConfig::puma_default());
  sequential.set_jobs(1);
  enqueue_batch(sequential);
  const std::vector<ScenarioOutcome> base = sequential.compile_all();

  CompilerSession parallel(small_cnn(), HardwareConfig::puma_default());
  parallel.set_jobs(4);
  enqueue_batch(parallel);
  const std::vector<ScenarioOutcome> fanned = parallel.compile_all();

  ASSERT_EQ(base.size(), fanned.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_TRUE(base[i].ok()) << base[i].error;
    ASSERT_TRUE(fanned[i].ok()) << fanned[i].error;
    EXPECT_EQ(fanned[i].label, base[i].label);
    EXPECT_EQ(fanned[i].result->solution.encode(),
              base[i].result->solution.encode());
    EXPECT_EQ(fanned[i].result->schedule.total_ops,
              base[i].result->schedule.total_ops);
    EXPECT_EQ(fanned[i].result->estimated_fitness,
              base[i].result->estimated_fitness);
  }
}

TEST(CompilerSessionParallel, WorkloadPartitionedOnceUnderContention) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  session.set_jobs(4);
  RecordingObserver observer;
  session.set_observer(&observer);

  // Eight scenarios, one hardware fingerprint, distinct seeds (so the
  // mapping cache cannot short-circuit the contention being tested).
  for (int i = 0; i < 8; ++i) {
    session.enqueue(tiny_options(PipelineMode::kHighThroughput,
                                 static_cast<std::uint64_t>(i + 1)),
                    "seed-" + std::to_string(i + 1));
  }
  const std::vector<ScenarioOutcome> outcomes = session.compile_all();
  for (const ScenarioOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok()) << outcome.error;
  }

  EXPECT_EQ(observer.partition_begins, 1);
  EXPECT_EQ(session.cached_workloads(), 1u);
  EXPECT_EQ(session.workload_cache_hits(), 7u);
  EXPECT_EQ(observer.hits(cache_names::kWorkload), 7);

  // All eight scenarios share the one partitioned workload object.
  for (const ScenarioOutcome& outcome : outcomes) {
    EXPECT_EQ(outcome.result->workload.get(),
              outcomes.front().result->workload.get());
  }
}

TEST(CompilerSessionCache, MappingCacheHitsAreObserved) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  RecordingObserver observer;
  session.set_observer(&observer);

  // Three identical scenarios + one distinct: two mapping hits expected.
  for (int i = 0; i < 3; ++i) {
    session.enqueue(tiny_options(), "same-" + std::to_string(i));
  }
  session.enqueue(tiny_options(PipelineMode::kLowLatency), "other");

  const std::vector<ScenarioOutcome> outcomes = session.compile_all();
  for (const ScenarioOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok()) << outcome.error;
  }

  EXPECT_EQ(session.cached_mappings(), 2u);
  EXPECT_EQ(session.mapping_cache_hits(), 2u);
  EXPECT_EQ(observer.hits(cache_names::kMapping), 2);

  // The per-event cumulative hit counter counts up.
  std::vector<std::uint64_t> counts;
  for (const CacheEvent& event : observer.cache_events) {
    if (event.cache == cache_names::kMapping) counts.push_back(event.hits);
  }
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);

  // A cache hit returns the identical compilation, with zeroed stage times
  // (nothing ran for it).
  EXPECT_EQ(outcomes[1].result->solution.encode(),
            outcomes[0].result->solution.encode());
  EXPECT_EQ(outcomes[1].result->stage_times.total(), 0.0);

  // A fresh session at the same seed produces the same result the cache
  // returned (the cache is a shortcut, not a fork).
  CompilerSession fresh(small_cnn(), HardwareConfig::puma_default());
  EXPECT_EQ(fresh.compile(tiny_options()).solution.encode(),
            outcomes[2].result->solution.encode());
}

TEST(CompilerSessionCache, MappingKeySeparatesOptions) {
  const CompileOptions base = tiny_options();
  EXPECT_EQ(fingerprint(base), fingerprint(tiny_options()));

  CompileOptions changed = base;
  changed.seed = 1234;
  EXPECT_NE(fingerprint(base), fingerprint(changed));

  changed = base;
  changed.parallelism_degree += 1;
  EXPECT_NE(fingerprint(base), fingerprint(changed));

  changed = base;
  changed.mapper = "puma";
  EXPECT_NE(fingerprint(base), fingerprint(changed));

  // The scheduler hashes by its *effective* key: explicit "ht" in HT mode
  // is the same configuration as the mode-derived default.
  changed = base;
  changed.scheduler = "ht";
  EXPECT_EQ(fingerprint(base), fingerprint(changed));
  changed.scheduler = "ll";
  EXPECT_NE(fingerprint(base), fingerprint(changed));
}

TEST(CompilerSessionParallel, JobsZeroMeansHardwareThreads) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  EXPECT_EQ(session.jobs(), 1);  // sequential by default
  session.set_jobs(0);
  EXPECT_GE(session.jobs(), 1);
  session.set_jobs(3);
  EXPECT_EQ(session.jobs(), 3);
}

}  // namespace
}  // namespace pimcomp
