#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/serialize.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp {
namespace {

TEST(Builder, QuickstartGraph) {
  GraphBuilder b("toy", {3, 32, 32});
  NodeId x = b.input();
  x = b.conv_relu(x, 16, 3, 1, 1, "c1");
  x = b.max_pool(x, 2, 2);
  x = b.fc(b.flatten(x), 10, "fc");
  b.softmax(x);
  Graph g = b.build();
  EXPECT_TRUE(g.finalized());
  EXPECT_EQ(g.crossbar_node_count(), 2);
}

TEST(Builder, ShapeOfDuringConstruction) {
  GraphBuilder b("toy", {3, 32, 32});
  NodeId x = b.conv(b.input(), 8, 3, 2, 1);
  EXPECT_EQ(b.shape_of(x), (TensorShape{8, 16, 16}));
  x = b.max_pool(x, 2, 2);
  EXPECT_EQ(b.shape_of(x), (TensorShape{8, 8, 8}));
  b.build();
}

TEST(Builder, CannotBuildTwice) {
  GraphBuilder b("toy", {3, 8, 8});
  b.conv(b.input(), 2, 3, 1, 1);
  b.build();
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Builder, RejectsInvalidInputShape) {
  EXPECT_THROW(GraphBuilder("bad", {0, 8, 8}), ConfigError);
}

void expect_graph_equal(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.name(), b.name());
  for (NodeId id = 0; id < a.node_count(); ++id) {
    const Node& na = a.node(id);
    const Node& nb = b.node(id);
    EXPECT_EQ(na.type, nb.type) << "node " << id;
    EXPECT_EQ(na.inputs, nb.inputs) << "node " << id;
    EXPECT_EQ(na.output_shape, nb.output_shape) << "node " << id;
    EXPECT_EQ(na.weight_params, nb.weight_params) << "node " << id;
    EXPECT_EQ(na.conv, nb.conv) << "node " << id;
    EXPECT_EQ(na.pool, nb.pool) << "node " << id;
    EXPECT_EQ(na.eltwise, nb.eltwise) << "node " << id;
    EXPECT_EQ(na.fc_units, nb.fc_units) << "node " << id;
  }
}

TEST(Serialize, RoundTripSmallGraph) {
  GraphBuilder b("small", {3, 16, 16});
  NodeId x = b.conv_relu(b.input(), 8, 3, 1, 1, "c1");
  NodeId y = b.conv(b.input(), 8, 3, 1, 1, "c2");
  x = b.eltwise_add(x, y, "add");
  x = b.max_pool(x, 2, 2, 0, "pool");
  x = b.fc(b.flatten(x), 10, "fc");
  b.softmax(x, "prob");
  Graph original = b.build();

  const Json json = graph_to_json(original);
  Graph restored = graph_from_json(json);
  expect_graph_equal(original, restored);
}

TEST(Serialize, JsonCarriesAttributes) {
  GraphBuilder b("attrs", {3, 16, 16});
  b.conv_rect(b.input(), 8, 1, 7, 1, 0, 3, "asym");
  Graph g = b.build();
  const Json json = graph_to_json(g);
  const Json& node = json.at("nodes").at(std::size_t{0});
  EXPECT_EQ(node.at("op").as_string(), "conv");
  EXPECT_EQ(node.at("kernel").at(std::size_t{0}).as_int(), 1);
  EXPECT_EQ(node.at("kernel").at(1).as_int(), 7);
  EXPECT_EQ(node.at("padding").at(std::size_t{0}).as_int(), 0);
  EXPECT_EQ(node.at("padding").at(1).as_int(), 3);
}

TEST(Serialize, ScalarPaddingAccepted) {
  const Json doc = Json::parse(R"({
    "name": "legacy", "input": [3, 8, 8],
    "nodes": [{"name": "c", "op": "conv", "inputs": [0],
               "out_channels": 4, "kernel": [3, 3], "stride": 1,
               "padding": 1}]
  })");
  Graph g = graph_from_json(doc);
  EXPECT_EQ(g.node(1).conv.padding_h, 1);
  EXPECT_EQ(g.node(1).conv.padding_w, 1);
}

TEST(Serialize, MalformedDocumentsThrow) {
  EXPECT_THROW(graph_from_json(Json::parse(R"({"name":"x"})")), JsonError);
  EXPECT_THROW(
      graph_from_json(Json::parse(R"({"name":"x","input":[3],"nodes":[]})")),
      GraphError);
}

class ZooRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooRoundTrip, SerializationPreservesEveryNode) {
  const int size = GetParam() == "inception-v3" ? 96 : 64;
  Graph original = zoo::build(GetParam(), size);
  Graph restored = graph_from_json(graph_to_json(original));
  expect_graph_equal(original, restored);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooRoundTrip,
                         ::testing::Values("vgg16", "resnet18", "googlenet",
                                           "inception-v3", "squeezenet"));

}  // namespace
}  // namespace pimcomp
