#include "schedule/receptive_field.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "partition/workload.hpp"

namespace pimcomp {
namespace {

TEST(StreamPos, FractionAndOrdering) {
  EXPECT_DOUBLE_EQ(StreamPos::at(1, 1).fraction(10, 10), 0.01);
  EXPECT_DOUBLE_EQ(StreamPos::at(10, 10).fraction(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(StreamPos::at(5, 10).fraction(10, 10), 0.5);
  EXPECT_DOUBLE_EQ(StreamPos::whole().fraction(10, 10), 1.0);

  EXPECT_EQ(StreamPos::later(StreamPos::at(2, 3), StreamPos::at(2, 5)),
            StreamPos::at(2, 5));
  EXPECT_EQ(StreamPos::later(StreamPos::at(3, 1), StreamPos::at(2, 9)),
            StreamPos::at(3, 1));
  EXPECT_TRUE(
      StreamPos::later(StreamPos::at(3, 1), StreamPos::whole()).full);
}

Node conv_node(int k, int s, int p) {
  Node n;
  n.type = OpType::kConv;
  n.conv = {8, k, k, s, p, p};
  return n;
}

TEST(WindowRequirement, PaperFormulaConv) {
  // rd = min(H, K + s*(r-1) - p)
  const TensorShape in{4, 16, 16};
  const Node n = conv_node(3, 1, 1);
  EXPECT_EQ(window_requirement(n, in, 1, 1), StreamPos::at(2, 2));
  EXPECT_EQ(window_requirement(n, in, 5, 7), StreamPos::at(6, 8));
  EXPECT_EQ(window_requirement(n, in, 16, 16), StreamPos::at(16, 16));
}

TEST(WindowRequirement, StridedConv) {
  const TensorShape in{4, 16, 16};
  const Node n = conv_node(3, 2, 0);
  // rd = 3 + 2*(r-1)
  EXPECT_EQ(window_requirement(n, in, 1, 1), StreamPos::at(3, 3));
  EXPECT_EQ(window_requirement(n, in, 4, 2), StreamPos::at(9, 5));
  EXPECT_EQ(window_requirement(n, in, 7, 7), StreamPos::at(15, 15));
}

TEST(WindowRequirement, ClampsToInputExtent) {
  const TensorShape in{4, 8, 8};
  const Node n = conv_node(5, 3, 2);
  EXPECT_EQ(window_requirement(n, in, 3, 3), StreamPos::at(8, 8));
  // Heavily padded first window still needs at least one input row.
  const Node wide = conv_node(3, 1, 2);
  EXPECT_EQ(window_requirement(wide, in, 1, 1), StreamPos::at(1, 1));
}

TEST(WindowRequirement, WholeTensorOps) {
  const TensorShape in{4, 8, 8};
  Node fc;
  fc.type = OpType::kFC;
  EXPECT_TRUE(window_requirement(fc, in, 1, 1).full);
  Node gap;
  gap.type = OpType::kPool;
  gap.pool.kind = PoolKind::kGlobalAverage;
  EXPECT_TRUE(window_requirement(gap, in, 1, 1).full);
  Node sm;
  sm.type = OpType::kSoftmax;
  EXPECT_TRUE(window_requirement(sm, in, 1, 1).full);
}

TEST(WindowRequirement, ElementwisePassThrough) {
  const TensorShape in{4, 8, 8};
  Node relu;
  relu.type = OpType::kRelu;
  EXPECT_EQ(window_requirement(relu, in, 3, 5), StreamPos::at(3, 5));
  Node add;
  add.type = OpType::kEltwise;
  EXPECT_EQ(window_requirement(add, in, 8, 8), StreamPos::at(8, 8));
}

TEST(PrefixRequirement, ExtendsOverEarlierRows) {
  const TensorShape in{4, 16, 16};
  const Node n = conv_node(3, 1, 1);
  // Producing the prefix up to output (r=2, c=1): window (2,1) needs input
  // (3,2); the earlier full row needs input (2,16). In row-major stream
  // order (3,2) is the later position and already implies (2,16).
  const StreamPos need = prefix_requirement(n, in, 16, StreamPos::at(2, 1));
  EXPECT_EQ(need, StreamPos::at(3, 2));
  // A prefix ending mid-row never needs less than the row above in full.
  const StreamPos row_above = window_requirement(n, in, 1, 16);
  EXPECT_EQ(StreamPos::later(need, row_above), need);
  // Full prefixes stay full.
  EXPECT_TRUE(prefix_requirement(n, in, 16, StreamPos::whole()).full);
}

TEST(TraceRequirements, ThroughPoolAndRelu) {
  GraphBuilder b("t", {4, 16, 16});
  const NodeId conv1 = b.conv(b.input(), 8, 3, 1, 1, "c1");
  const NodeId r1 = b.relu(conv1, "r1");
  const NodeId p = b.max_pool(r1, 2, 2, 0, "p");
  const NodeId c2 = b.conv(p, 8, 3, 1, 1, "c2");
  (void)c2;
  Graph g = b.build();
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 36;
  const Workload w(g, hw);

  // c2's window (1,1) needs pool output (2,2) -> conv rows (4,...) of c1.
  const auto reqs = trace_requirements(w, c2, 1, 1);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].provider, w.partition_index(conv1));
  EXPECT_EQ(reqs[0].pos.row, 4);

  // The last window needs everything (clamped).
  const auto last = trace_requirements(w, c2, 7, 7);
  EXPECT_EQ(last[0].pos.row, 16);
}

TEST(TraceRequirements, MergesMultiPathProviders) {
  // Diamond: one conv feeds two branches that re-join in an eltwise feeding
  // the consumer; requirements along both paths merge to the later one.
  GraphBuilder b("d", {4, 12, 12});
  const NodeId src = b.conv(b.input(), 8, 3, 1, 1, "src");
  const NodeId left = b.relu(src, "l");
  const NodeId right = b.max_pool(src, 3, 1, 1, "r");  // same spatial size
  const NodeId join = b.eltwise_add(left, right, "join");
  const NodeId sink = b.conv(join, 8, 3, 1, 1, "sink");
  Graph g = b.build();
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 36;
  const Workload w(g, hw);

  const auto reqs = trace_requirements(w, sink, 1, 1);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].provider, w.partition_index(src));
  // Left path needs src row 2; right path (3x3 pool) needs row 3.
  EXPECT_EQ(reqs[0].pos.row, 3);
}

TEST(TraceRequirements, MonotoneInWindowPosition) {
  GraphBuilder b("m", {4, 16, 16});
  const NodeId c1 = b.conv(b.input(), 8, 3, 1, 1, "c1");
  const NodeId c2 = b.conv(c1, 8, 3, 1, 1, "c2");
  (void)c2;
  Graph g = b.build();
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 36;
  const Workload w(g, hw);
  int prev_row = 0;
  for (int r = 1; r <= 16; ++r) {
    const auto reqs = trace_requirements(w, c2, r, 16);
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_GE(reqs[0].pos.row, prev_row);
    prev_row = reqs[0].pos.row;
  }
  EXPECT_EQ(prev_row, 16);
}

}  // namespace
}  // namespace pimcomp
