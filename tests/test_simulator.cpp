#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/channel.hpp"

namespace pimcomp {
namespace {

HardwareConfig test_hw(int cores = 2) {
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = cores;
  return hw;
}

Operation mvm(int ag, int xbars = 1) {
  Operation op;
  op.kind = OpKind::kMvm;
  op.ag = ag;
  op.xbars = xbars;
  return op;
}

Operation vfu(std::int64_t elements, int wait_ag = -1) {
  Operation op;
  op.kind = OpKind::kVfu;
  op.elements = elements;
  op.ag = wait_ag;
  return op;
}

Operation send(int peer, std::int64_t bytes, int wait_ag = -1, int tag = 0) {
  Operation op;
  op.kind = OpKind::kCommSend;
  op.peer = peer;
  op.bytes = bytes;
  op.ag = wait_ag;
  op.tag = tag;
  return op;
}

Operation recv(int peer, std::int64_t bytes, int tag = 0) {
  Operation op;
  op.kind = OpKind::kCommRecv;
  op.peer = peer;
  op.bytes = bytes;
  op.tag = tag;
  return op;
}

Schedule make_schedule(std::vector<std::vector<Operation>> programs,
                       int ag_count) {
  Schedule s;
  s.programs = std::move(programs);
  s.ag_count = ag_count;
  for (const auto& p : s.programs) {
    s.total_ops += static_cast<std::int64_t>(p.size());
  }
  return s;
}

TEST(Channel, FifoSemantics) {
  ChannelNetwork net;
  EXPECT_FALSE(net.has_message(0, 1, 0));
  net.send(0, 1, 0, 100, 64);
  net.send(0, 1, 0, 200, 128);
  EXPECT_TRUE(net.has_message(0, 1, 0));
  EXPECT_FALSE(net.has_message(1, 0, 0));
  EXPECT_FALSE(net.has_message(0, 1, 1));  // different tag
  EXPECT_EQ(net.in_flight(), 2);
  const auto first = net.pop(0, 1, 0);
  EXPECT_EQ(first.arrival, 100);
  EXPECT_EQ(first.bytes, 64);
  EXPECT_EQ(net.pop(0, 1, 0).bytes, 128);
  EXPECT_EQ(net.in_flight(), 0);
}

TEST(Simulator, SingleMvmTakesMvmLatency) {
  const HardwareConfig hw = test_hw(1);
  const Schedule s = make_schedule({{mvm(0)}}, 1);
  SimOptions opt;
  opt.parallelism_degree = 20;
  const SimReport r = Simulator(hw, opt).run(s);
  EXPECT_EQ(r.makespan, hw.mvm_latency);
  EXPECT_EQ(r.mvm_ops, 1);
}

TEST(Simulator, StructuralConflictSerializesSameAg) {
  // Two MVMs on the SAME AG must be T_MVM apart (structural conflict,
  // paper §III-B).
  const HardwareConfig hw = test_hw(1);
  const Schedule s = make_schedule({{mvm(0), mvm(0)}}, 1);
  SimOptions opt;
  opt.parallelism_degree = 100;
  const SimReport r = Simulator(hw, opt).run(s);
  EXPECT_EQ(r.makespan, 2 * hw.mvm_latency);
}

TEST(Simulator, IssueIntervalPipelinesDistinctAgs) {
  // n MVMs on distinct AGs finish in (n-1)*T_interval + T_MVM.
  const HardwareConfig hw = test_hw(1);
  const int n = 10;
  std::vector<Operation> prog;
  for (int i = 0; i < n; ++i) prog.push_back(mvm(i));
  const Schedule s = make_schedule({prog}, n);
  SimOptions opt;
  opt.parallelism_degree = 20;
  const SimReport r = Simulator(hw, opt).run(s);
  const Picoseconds t_int = hw.mvm_issue_interval(20);
  EXPECT_EQ(r.makespan, (n - 1) * t_int + hw.mvm_latency);
}

TEST(Simulator, ParallelismDegreeOneSerializesIssue) {
  const HardwareConfig hw = test_hw(1);
  std::vector<Operation> prog;
  for (int i = 0; i < 4; ++i) prog.push_back(mvm(i));
  const Schedule s = make_schedule({prog}, 4);
  SimOptions opt;
  opt.parallelism_degree = 1;
  const SimReport r = Simulator(hw, opt).run(s);
  EXPECT_EQ(r.makespan, 4 * hw.mvm_latency);
}

TEST(Simulator, VfuWaitsForMvmCompletion) {
  const HardwareConfig hw = test_hw(1);
  // VFU op consumes AG 0's result: cannot start before T_MVM.
  const Schedule s = make_schedule({{mvm(0), vfu(1200, 0)}}, 1);
  SimOptions opt;
  opt.parallelism_degree = 20;
  const SimReport r = Simulator(hw, opt).run(s);
  // 1200 elements at 1.2 elem/ns = 1000 ns after the MVM completes.
  EXPECT_EQ(r.makespan, hw.mvm_latency + from_ns(1000.0));
  EXPECT_EQ(r.vfu_ops, 1);
}

TEST(Simulator, RendezvousTransfersData) {
  const HardwareConfig hw = test_hw(2);
  const Schedule s = make_schedule(
      {{mvm(0), send(1, 1024, 0)}, {recv(0, 1024), vfu(100)}}, 1);
  SimOptions opt;
  opt.parallelism_degree = 20;
  const SimReport r = Simulator(hw, opt).run(s);
  EXPECT_EQ(r.comm_messages, 1);
  EXPECT_EQ(r.comm_bytes, 1024);
  // The receiver cannot finish before the sender's data arrives.
  EXPECT_GT(r.core_finish[1], hw.mvm_latency);
}

TEST(Simulator, ByteMismatchDetected) {
  const HardwareConfig hw = test_hw(2);
  const Schedule s =
      make_schedule({{send(1, 100)}, {recv(0, 200)}}, 0);
  SimOptions opt;
  EXPECT_THROW(Simulator(hw, opt).run(s), SimulationError);
}

TEST(Simulator, DeadlockDetected) {
  // Both cores wait for a message that is never sent.
  const HardwareConfig hw = test_hw(2);
  const Schedule s =
      make_schedule({{recv(1, 64)}, {recv(0, 64)}}, 0);
  SimOptions opt;
  EXPECT_THROW(Simulator(hw, opt).run(s), SimulationError);
}

TEST(Simulator, TagsKeepChannelsSeparate) {
  const HardwareConfig hw = test_hw(2);
  // Core 0 sends tag1 then tag0; core 1 receives tag0 then tag1.
  const Schedule s = make_schedule(
      {{send(1, 100, -1, 1), send(1, 200, -1, 0)},
       {recv(0, 200, 0), recv(0, 100, 1)}},
      0);
  SimOptions opt;
  EXPECT_NO_THROW(Simulator(hw, opt).run(s));
}

TEST(Simulator, GlobalMemorySerializesAcrossCores) {
  HardwareConfig hw = test_hw(2);
  hw.global_memory_gbps = 1.0;  // 1 GB/s -> 1 ns per byte
  Operation load;
  load.kind = OpKind::kLoadGlobal;
  load.bytes = 1000;
  const Schedule s = make_schedule({{load}, {load}}, 0);
  SimOptions opt;
  const SimReport r = Simulator(hw, opt).run(s);
  // Two 1000-byte transfers over a shared 1 GB/s port: 2 us total.
  EXPECT_EQ(r.makespan, from_ns(2000.0));
  EXPECT_EQ(r.global_traffic_bytes, 2000);
}

TEST(Simulator, EnergyAccountingPositiveAndDecomposed) {
  const HardwareConfig hw = test_hw(2);
  Operation store;
  store.kind = OpKind::kStoreGlobal;
  store.bytes = 4096;
  const Schedule s = make_schedule(
      {{mvm(0, 8), vfu(1000, 0), send(1, 512, 0)}, {recv(0, 512), store}}, 1);
  SimOptions opt;
  const SimReport r = Simulator(hw, opt).run(s);
  EXPECT_GT(r.dynamic_energy.mvm, 0.0);
  EXPECT_GT(r.dynamic_energy.vfu, 0.0);
  EXPECT_GT(r.dynamic_energy.local_memory, 0.0);
  EXPECT_GT(r.dynamic_energy.global_memory, 0.0);
  EXPECT_GT(r.dynamic_energy.noc, 0.0);
  EXPECT_GT(r.leakage_energy, 0.0);
  EXPECT_NEAR(r.dynamic_energy.total(),
              r.dynamic_energy.mvm + r.dynamic_energy.vfu +
                  r.dynamic_energy.local_memory +
                  r.dynamic_energy.global_memory + r.dynamic_energy.noc,
              1e-9);
}

TEST(Simulator, MvmEnergyScalesWithCrossbars) {
  const HardwareConfig hw = test_hw(1);
  SimOptions opt;
  const SimReport one =
      Simulator(hw, opt).run(make_schedule({{mvm(0, 1)}}, 1));
  const SimReport eight =
      Simulator(hw, opt).run(make_schedule({{mvm(0, 8)}}, 1));
  EXPECT_NEAR(eight.dynamic_energy.mvm, 8 * one.dynamic_energy.mvm, 1e-9);
}

TEST(Simulator, LeakageModeDiffers) {
  // An asymmetric two-core schedule: core 1 finishes much later. In LL mode
  // every active core leaks until the overall makespan, so leakage is higher.
  const HardwareConfig hw = test_hw(2);
  std::vector<Operation> short_prog{mvm(0)};
  std::vector<Operation> long_prog;
  for (int i = 0; i < 50; ++i) long_prog.push_back(mvm(1));
  const Schedule s = make_schedule({short_prog, long_prog}, 2);
  SimOptions ht;
  ht.mode = PipelineMode::kHighThroughput;
  SimOptions ll;
  ll.mode = PipelineMode::kLowLatency;
  const SimReport r_ht = Simulator(hw, ht).run(s);
  const SimReport r_ll = Simulator(hw, ll).run(s);
  EXPECT_EQ(r_ht.makespan, r_ll.makespan);
  EXPECT_GT(r_ll.leakage_energy, r_ht.leakage_energy);
}

TEST(Simulator, LocalUsageIntegration) {
  const HardwareConfig hw = test_hw(1);
  Operation a = vfu(1200);  // 1 us
  a.local_usage = 1024;
  Operation b = vfu(1200);  // 1 us
  b.local_usage = 3072;
  Operation c = vfu(1200);
  c.local_usage = 0;
  const Schedule s = make_schedule({{a, b, c}}, 0);
  SimOptions opt;
  const SimReport r = Simulator(hw, opt).run(s);
  // Usage is 1024 for [1us,2us), 3072 for [2us,3us): average over the
  // window where it was recorded.
  EXPECT_GT(r.avg_local_memory_bytes, 0.0);
  EXPECT_EQ(r.peak_local_memory_bytes, 3072);
}

TEST(Simulator, RejectsBadConfigs) {
  const HardwareConfig hw = test_hw(1);
  SimOptions opt;
  opt.parallelism_degree = 0;
  EXPECT_THROW(Simulator(hw, opt), ConfigError);
  const Schedule empty = make_schedule({}, 0);
  SimOptions ok;
  EXPECT_THROW(Simulator(hw, ok).run(empty), ConfigError);
  // More cores in the schedule than the hardware has.
  const Schedule wide = make_schedule({{}, {}, {}}, 0);
  EXPECT_THROW(Simulator(test_hw(2), ok).run(wide), ConfigError);
}

TEST(Simulator, BusyNeverExceedsFinish) {
  const HardwareConfig hw = test_hw(2);
  const Schedule s = make_schedule(
      {{mvm(0), vfu(100, 0), send(1, 64, 0)}, {recv(0, 64), vfu(2400)}}, 1);
  SimOptions opt;
  const SimReport r = Simulator(hw, opt).run(s);
  for (std::size_t c = 0; c < r.core_finish.size(); ++c) {
    EXPECT_LE(r.core_busy[c], r.core_finish[c]);
  }
}

}  // namespace
}  // namespace pimcomp
