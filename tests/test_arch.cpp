#include <gtest/gtest.h>

#include "arch/area_model.hpp"
#include "arch/component_models.hpp"
#include "arch/energy_model.hpp"
#include "arch/hardware_config.hpp"
#include "arch/noc.hpp"
#include "common/error.hpp"

namespace pimcomp {
namespace {

TEST(HardwareConfig, PumaDefaultMatchesTableI) {
  const HardwareConfig hw = HardwareConfig::puma_default();
  EXPECT_EQ(hw.xbar_rows, 128);
  EXPECT_EQ(hw.xbar_cols, 128);
  EXPECT_EQ(hw.cell_bits, 2);
  EXPECT_EQ(hw.weight_bits, 16);
  EXPECT_EQ(hw.xbars_per_core, 64);
  EXPECT_EQ(hw.cores_per_chip, 36);
  EXPECT_EQ(hw.local_memory_bytes, 64 * 1024);
  EXPECT_EQ(hw.global_memory_bytes, 4 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(hw.ht_link_gbps, 6.4);
  EXPECT_NO_THROW(hw.validate());
}

TEST(HardwareConfig, LogicalGeometry) {
  const HardwareConfig hw = HardwareConfig::puma_default();
  // A 16-bit weight spans 8 two-bit cells: 128 physical cols -> 16 logical.
  EXPECT_EQ(hw.logical_cols_per_xbar(), 16);
  EXPECT_EQ(hw.logical_rows_per_xbar(), 128);
  EXPECT_EQ(hw.weights_per_core(), 64LL * 128 * 16);
}

TEST(HardwareConfig, ChipArithmetic) {
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 72;
  EXPECT_EQ(hw.chip_count(), 2);
  EXPECT_EQ(hw.chip_of_core(0), 0);
  EXPECT_EQ(hw.chip_of_core(35), 0);
  EXPECT_EQ(hw.chip_of_core(36), 1);
  hw.core_count = 37;
  EXPECT_EQ(hw.chip_count(), 2);
}

TEST(HardwareConfig, IssueInterval) {
  const HardwareConfig hw = HardwareConfig::puma_default();
  EXPECT_EQ(hw.mvm_issue_interval(1), hw.mvm_latency);
  EXPECT_EQ(hw.mvm_issue_interval(20), hw.mvm_latency / 20);
  EXPECT_GE(hw.mvm_issue_interval(1 << 30), 1);  // never zero
  EXPECT_THROW(hw.mvm_issue_interval(0), ConfigError);
}

TEST(HardwareConfig, ValidationCatchesBadFields) {
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.weight_bits = 15;  // not a multiple of cell_bits
  EXPECT_THROW(hw.validate(), ConfigError);
  hw = HardwareConfig::puma_default();
  hw.core_count = 0;
  EXPECT_THROW(hw.validate(), ConfigError);
  hw = HardwareConfig::puma_default();
  hw.mvm_latency = 0;
  EXPECT_THROW(hw.validate(), ConfigError);
  hw = HardwareConfig::puma_default();
  hw.xbar_cols = 4;  // too narrow for one 16-bit weight at 2b cells
  EXPECT_THROW(hw.validate(), ConfigError);
}

TEST(ComponentTable, ReproducesTableIPowers) {
  const ComponentTable t =
      build_component_table(HardwareConfig::puma_default());
  EXPECT_NEAR(t.pimmu.peak_power_mw, 1221.76, 0.01);
  EXPECT_NEAR(t.vfu.peak_power_mw, 22.80, 0.01);
  EXPECT_NEAR(t.local_memory.peak_power_mw, 18.00, 0.01);
  EXPECT_NEAR(t.control_unit.peak_power_mw, 8.00, 0.01);
  EXPECT_NEAR(t.core.peak_power_mw, 1270.56, 0.01);
  EXPECT_NEAR(t.router.peak_power_mw, 43.13, 0.01);
  EXPECT_NEAR(t.global_memory.peak_power_mw, 257.72, 0.01);
  EXPECT_NEAR(t.hyper_transport.peak_power_mw, 10.40e3, 1.0);
}

TEST(ComponentTable, ReproducesTableIAreas) {
  const ComponentTable t =
      build_component_table(HardwareConfig::puma_default());
  EXPECT_NEAR(t.pimmu.area_mm2, 0.77, 0.001);
  EXPECT_NEAR(t.vfu.area_mm2, 0.048, 0.001);
  EXPECT_NEAR(t.local_memory.area_mm2, 0.085, 0.001);
  EXPECT_NEAR(t.core.area_mm2, 1.01, 0.01);
  EXPECT_NEAR(t.router.area_mm2, 0.14, 0.001);
  EXPECT_NEAR(t.global_memory.area_mm2, 2.42, 0.01);
  // Chip: 36*(core+router) + global memory + hyper transport ~ 62.9 mm^2.
  EXPECT_NEAR(t.chip.area_mm2, 62.92, 1.0);
}

TEST(ComponentTable, ChipPowerAggregates) {
  const ComponentTable t =
      build_component_table(HardwareConfig::puma_default());
  // Table I chip: 56.79 W.
  EXPECT_NEAR(t.chip.peak_power_mw / 1000.0, 56.79, 1.0);
}

TEST(ComponentTable, ScalesWithGeometry) {
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.xbars_per_core = 32;
  const ComponentTable half = build_component_table(hw);
  const ComponentTable full =
      build_component_table(HardwareConfig::puma_default());
  EXPECT_NEAR(half.pimmu.peak_power_mw, full.pimmu.peak_power_mw / 2, 0.01);
  EXPECT_NEAR(half.pimmu.area_mm2, full.pimmu.area_mm2 / 2, 0.001);
}

TEST(CactiLite, MonotonicInCapacity) {
  EXPECT_LT(cacti_lite_energy_per_byte_pj(64 * 1024),
            cacti_lite_energy_per_byte_pj(4 * 1024 * 1024));
  EXPECT_LT(cacti_lite_leakage_mw(64 * 1024),
            cacti_lite_leakage_mw(128 * 1024));
  EXPECT_LT(cacti_lite_area_mm2(64 * 1024), cacti_lite_area_mm2(256 * 1024));
}

TEST(OrionLite, FlitScaling) {
  EXPECT_NEAR(orion_lite_flit_energy_pj(16) / orion_lite_flit_energy_pj(8),
              2.0, 1e-9);
  EXPECT_GT(orion_lite_router_leakage_mw(8), 0.0);
}

TEST(AreaModel, TotalsScaleWithChips) {
  HardwareConfig hw = HardwareConfig::puma_default();
  const AreaReport one = compute_area(hw);
  hw.core_count = 72;
  const AreaReport two = compute_area(hw);
  EXPECT_EQ(one.chip_count, 1);
  EXPECT_EQ(two.chip_count, 2);
  EXPECT_NEAR(two.total_mm2, 2 * one.total_mm2, 1e-9);
}

TEST(EnergyModel, PositiveAndSane) {
  const EnergyModel e(HardwareConfig::puma_default());
  EXPECT_GT(e.mvm_energy_per_xbar(), 0.0);
  EXPECT_GT(e.vfu_energy_per_element(), 0.0);
  EXPECT_GT(e.local_mem_energy_per_byte(), 0.0);
  EXPECT_GT(e.global_mem_energy_per_byte(), e.local_mem_energy_per_byte());
  EXPECT_GT(e.noc_energy_per_flit_hop(), 0.0);
  EXPECT_GT(e.core_leakage_mw(), 0.0);
  EXPECT_GT(e.chip_shared_leakage_mw(), 0.0);
  // Leakage energy arithmetic: cores x time x power.
  EXPECT_NEAR(e.core_leakage_energy(2, kPsPerUs),
              2 * energy_mw_ps(e.core_leakage_mw(), kPsPerUs), 1e-9);
}

TEST(NocModel, MeshHops) {
  HardwareConfig hw = HardwareConfig::puma_default();  // 36 cores: 6x6 mesh
  const NocModel noc(hw);
  EXPECT_EQ(noc.mesh_side(), 6);
  EXPECT_EQ(noc.hops(0, 0), 0);
  EXPECT_EQ(noc.hops(0, 1), 1);
  EXPECT_EQ(noc.hops(0, 6), 1);   // one row down
  EXPECT_EQ(noc.hops(0, 35), 10); // corner to corner: 5 + 5
}

TEST(NocModel, BusConnectionSingleHop) {
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.connection = CoreConnection::kBus;
  const NocModel noc(hw);
  EXPECT_EQ(noc.hops(0, 35), 1);
  EXPECT_EQ(noc.hops(3, 3), 0);
}

TEST(NocModel, ChipCrossing) {
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 72;
  const NocModel noc(hw);
  EXPECT_FALSE(noc.crosses_chip(0, 35));
  EXPECT_TRUE(noc.crosses_chip(0, 36));
  // Crossing a chip must cost more than staying on chip for equal bytes.
  EXPECT_GT(noc.transfer_latency(0, 36, 1024),
            noc.transfer_latency(0, 35, 1024));
}

TEST(NocModel, LatencyMonotonicInBytes) {
  const NocModel noc(HardwareConfig::puma_default());
  EXPECT_LT(noc.transfer_latency(0, 5, 64), noc.transfer_latency(0, 5, 4096));
  EXPECT_EQ(noc.transfer_latency(2, 2, 4096), 0);
  EXPECT_EQ(noc.flits(64), 8);
  EXPECT_EQ(noc.flits(65), 9);
}

}  // namespace
}  // namespace pimcomp
