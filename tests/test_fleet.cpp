// Fleet serving: the RemoteStore network cache tier and the pimcomp_router
// front daemon, exercised against real in-process CompileServers over real
// sockets. The acceptance properties: (a) a RemoteStore round-trips
// artifacts through a peer daemon's disk tier, (b) a fresh session with a
// peer serves a previously computed mapping from the network — zero
// mapping-stage events, byte-identical result, (c) the router shards by
// content fingerprint, retries around dead backends without duplicating
// outcomes, and (d) token auth rejects on both daemon and router with a
// constant-time compare.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache_config.hpp"
#include "cache/cache_store.hpp"
#include "cache/disk_store.hpp"
#include "core/compile_report.hpp"
#include "core/session.hpp"
#include "core/trace.hpp"
#include "fleet/remote_store.hpp"
#include "fleet/router.hpp"
#include "graph/builder.hpp"
#include "graph/serialize.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace pimcomp {
namespace {

namespace fs = std::filesystem;

using fleet::RemoteStore;
using fleet::Router;
using fleet::RouterOptions;
using serve::CompileClient;
using serve::CompileReply;
using serve::CompileRequest;
using serve::CompileServer;
using serve::ScenarioSpec;
using serve::ServeError;
using serve::ServerOptions;

struct TempDir {
  TempDir() {
    std::string pattern =
        (fs::temp_directory_path() / "pimcomp-fleet-XXXXXX").string();
    char* made = ::mkdtemp(pattern.data());
    EXPECT_NE(made, nullptr);
    path = pattern;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::string unique_socket_path(const std::string& tag) {
  static int counter = 0;  // pimcomp-lint: internally-synchronized
  return "/tmp/pimcomp-fleet-" + tag + "-" + std::to_string(::getpid()) +
         "-" + std::to_string(counter++) + ".sock";
}

Graph small_cnn() {
  GraphBuilder b("fleet-cnn", {3, 16, 16});
  NodeId x = b.input();
  x = b.conv_relu(x, 8, 3, /*stride=*/1, /*padding=*/1, "conv1");
  x = b.max_pool(x, 2, 2, 0, "pool1");
  x = b.conv_relu(x, 16, 3, 1, 1, "conv2");
  x = b.fc(b.flatten(x, "flatten"), 10, "classifier");
  b.softmax(x, "prob");
  return b.build();
}

HardwareConfig small_hw() {
  return fit_core_count(small_cnn(), HardwareConfig::puma_default(),
                        /*headroom=*/3.0);
}

CompileOptions tiny_options(int parallelism) {
  CompileOptions options;
  options.mode = PipelineMode::kLowLatency;
  options.parallelism_degree = parallelism;
  options.ga.population = 6;
  options.ga.generations = 3;
  return options;
}

CompileRequest inline_graph_request(const std::vector<int>& parallelisms) {
  CompileRequest request;
  request.graph = graph_to_json(small_cnn());
  request.simulate = false;
  for (int p : parallelisms) {
    ScenarioSpec spec;
    spec.label = "P=" + std::to_string(p);
    spec.options = tiny_options(p);
    request.scenarios.push_back(std::move(spec));
  }
  return request;
}

/// A daemon with a disk cache (so it answers peer cache_get/cache_put).
ServerOptions daemon_options(const std::string& socket_tag,
                             const std::string& cache_dir) {
  ServerOptions options;
  options.unix_path = unique_socket_path(socket_tag);
  options.jobs = 2;
  options.cache.dir = cache_dir;
  return options;
}

CacheConfig remote_only_config(const std::string& peer_endpoint) {
  CacheConfig config;
  config.peers.push_back(peer_endpoint);
  return config;
}

int count_events(const TraceRecorder& recorder, PipelineEvent::Kind kind,
                 const std::string& name, const std::string& source = "") {
  int count = 0;
  for (const PipelineEvent& event : recorder.events()) {
    if (event.kind == kind && event.name == name &&
        (source.empty() || event.source == source)) {
      ++count;
    }
  }
  return count;
}

Json strip_stage_times(const Json& compile) {
  Json out = Json::object();
  for (const auto& [key, value] : compile.items()) {
    if (key != "stage_times") out[key] = value;
  }
  return out;
}

// ---------------------------------------------------------------------------
// constant_time_equal.
// ---------------------------------------------------------------------------

TEST(FleetAuth, ConstantTimeEqualTruthTable) {
  EXPECT_TRUE(serve::constant_time_equal("", ""));
  EXPECT_TRUE(serve::constant_time_equal("token", "token"));
  EXPECT_FALSE(serve::constant_time_equal("token", "tokeN"));
  EXPECT_FALSE(serve::constant_time_equal("token", "token2"));
  EXPECT_FALSE(serve::constant_time_equal("token2", "token"));
  EXPECT_FALSE(serve::constant_time_equal("", "x"));
  EXPECT_FALSE(serve::constant_time_equal("x", ""));
}

// ---------------------------------------------------------------------------
// RemoteStore against a live peer daemon.
// ---------------------------------------------------------------------------

TEST(RemoteStoreTest, RoundTripsArtifactsThroughPeerDiskTier) {
  TempDir peer_dir;
  CompileServer peer(daemon_options("peer", peer_dir.path));
  peer.start();

  RemoteStore store(remote_only_config(peer.endpoint()));
  const std::uint64_t key = 0x1234abcd5678ef01ull;
  EXPECT_FALSE(store.load(key).has_value());  // peer is empty

  CacheEntry entry;
  entry.artifact = Json::object();
  entry.artifact["hello"] = std::string("fleet");
  EXPECT_STREQ(store.store(key, entry), cache_sources::kRemote);

  // The peer's DiskStore stamped the envelope; a fresh load must validate
  // it and report the remote source.
  const std::optional<CacheHit> hit = store.load(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_STREQ(hit->source, cache_sources::kRemote);
  EXPECT_EQ(hit->entry.artifact.get("hello", std::string()), "fleet");
  EXPECT_EQ(hit->entry.artifact.get("key", std::string()),
            cache_key_hex(key));

  // First-writer-wins across the wire: a second push is not "newly
  // accepted" anywhere, so store() reports no accepting tier.
  EXPECT_EQ(store.store(key, entry), nullptr);

  const CacheStoreStats stats = store.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);

  // And the artifact really lives on the peer's disk.
  CacheConfig peer_cache;
  peer_cache.dir = peer_dir.path;
  DiskStore peer_disk(peer_cache);
  EXPECT_TRUE(peer_disk.load(key).has_value());
  peer.stop();
}

TEST(RemoteStoreTest, DeadPeerIsAMissNotAnError) {
  CacheConfig config =
      remote_only_config("unix:/tmp/pimcomp-no-such-daemon.sock");
  config.peer_timeout_seconds = 1;
  RemoteStore store(config);
  EXPECT_FALSE(store.load(42).has_value());
  CacheEntry entry;
  entry.artifact = Json::object();
  EXPECT_EQ(store.store(42, entry), nullptr);
  // Repeated misses stay fast (the backoff window suppresses reconnect
  // storms) and never throw.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(store.load(42).has_value());
  EXPECT_EQ(store.stats().misses, 4u);
}

TEST(RemoteStoreTest, RejectsMiskeyedPeerArtifacts) {
  TempDir peer_dir;
  CompileServer peer(daemon_options("miskey", peer_dir.path));
  peer.start();

  // Seed the peer under key A, then forge the same payload into key B's
  // slot on the peer's disk with a rewritten envelope... which DiskStore
  // itself would accept — the *requester's* revalidation (envelope key
  // against the key it asked for) is what must hold. Simulate a confused
  // peer by asking for a key the artifact's envelope cannot match: store
  // under A, corrupt the peer file's key field in place.
  CacheConfig peer_cache;
  peer_cache.dir = peer_dir.path;
  DiskStore peer_disk(peer_cache);
  const std::uint64_t key = 0xfeedfacecafef00dull;
  CacheEntry entry;
  entry.artifact = Json::object();
  entry.artifact["payload"] = std::string("x");
  ASSERT_NE(peer_disk.store(key, entry), nullptr);
  // Rewrite the stored file with a mismatched envelope key.
  for (const auto& file : fs::recursive_directory_iterator(peer_dir.path)) {
    if (!file.is_regular_file()) continue;
    Json artifact = Json::parse([&] {
      std::ifstream in(file.path());
      return std::string(std::istreambuf_iterator<char>(in), {});
    }());
    artifact["key"] = cache_key_hex(key + 1);
    std::ofstream out(file.path(), std::ios::trunc);
    out << artifact.dump(2);
  }

  RemoteStore store(remote_only_config(peer.endpoint()));
  EXPECT_FALSE(store.load(key).has_value());  // mis-keyed: rejected
  peer.stop();
}

// ---------------------------------------------------------------------------
// A fresh session compiles nothing when a peer already knows the mapping.
// ---------------------------------------------------------------------------

TEST(FleetEndToEnd, FreshSessionServesMappingFromPeerWithZeroMappingStages) {
  TempDir warm_dir;
  CompileServer warm_daemon(daemon_options("warm", warm_dir.path));
  warm_daemon.start();

  // Populate the warm daemon through the front door.
  CompileClient client = CompileClient::connect(warm_daemon.endpoint());
  const CompileReply warm_reply =
      client.submit(inline_graph_request({3}));
  ASSERT_EQ(warm_reply.outcomes.size(), 1u);
  ASSERT_TRUE(warm_reply.outcomes[0].ok) << warm_reply.outcomes[0].error;

  // A brand-new session elsewhere: empty memory, *no* disk, only a peer.
  CompilerSession session(small_cnn(), small_hw(),
                          remote_only_config(warm_daemon.endpoint()));
  TraceRecorder trace;
  session.set_observer(&trace);
  const CompileResult result = session.compile(tiny_options(3));

  EXPECT_EQ(session.mapping_remote_hits(), 1u);
  EXPECT_EQ(count_events(trace, PipelineEvent::Kind::kCacheHit,
                         cache_names::kMapping, cache_sources::kRemote),
            1);
  EXPECT_EQ(count_events(trace, PipelineEvent::Kind::kStageBegin,
                         stage_names::kMapping),
            0);
  EXPECT_EQ(count_events(trace, PipelineEvent::Kind::kStageBegin,
                         stage_names::kScheduling),
            0);

  // Byte-identical to what the warm daemon computed (timings aside).
  EXPECT_EQ(
      strip_stage_times(compile_result_to_json(result)).dump(2),
      strip_stage_times(warm_reply.outcomes[0].compile).dump(2));
  warm_daemon.stop();
}

// ---------------------------------------------------------------------------
// Router: sharding, relay, retry, stats.
// ---------------------------------------------------------------------------

TEST(RouterTest, RelaysBatchesAndReportsPerBackendCounters) {
  TempDir dir_a;
  TempDir dir_b;
  CompileServer backend_a(daemon_options("ra", dir_a.path));
  CompileServer backend_b(daemon_options("rb", dir_b.path));
  backend_a.start();
  backend_b.start();

  RouterOptions options;
  options.unix_path = unique_socket_path("router");
  options.backends = {backend_a.endpoint(), backend_b.endpoint()};
  Router router(options);
  router.start();

  CompileClient client = CompileClient::connect(router.endpoint());
  EXPECT_TRUE(client.ping());
  const CompileReply reply = client.submit(inline_graph_request({2, 3}));
  ASSERT_EQ(reply.outcomes.size(), 2u);
  for (const auto& outcome : reply.outcomes) {
    EXPECT_TRUE(outcome.ok) << outcome.error;
  }

  const Json stats = client.stats();
  EXPECT_EQ(stats.get("role", std::string()), "router");
  ASSERT_TRUE(stats.contains("backends"));
  ASSERT_EQ(stats.at("backends").size(), 2u);
  std::int64_t requests = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    requests += stats.at("backends").at(i).get(
        "requests", static_cast<std::int64_t>(0));
  }
  EXPECT_EQ(requests, 1);  // the whole batch went to one shard

  router.stop();
  backend_a.stop();
  backend_b.stop();
}

TEST(RouterTest, RetriesOnDeadPrimaryWithoutDuplicatingOutcomes) {
  TempDir dir;
  CompileServer live(daemon_options("live", dir.path));
  live.start();

  // Arrange the backend list so the request's content shard lands on a
  // dead endpoint: the router must fail over to the live one.
  CompileRequest request = inline_graph_request({2, 4});
  const std::uint64_t fp =
      serve::resolve_compile_request(request).fingerprint;
  const std::size_t primary = static_cast<std::size_t>(fp % 2);
  std::vector<std::string> backends(2);
  backends[primary] = "unix:/tmp/pimcomp-fleet-dead.sock";
  backends[1 - primary] = live.endpoint();

  RouterOptions options;
  options.unix_path = unique_socket_path("retry");
  options.backends = backends;
  // No active probing: the dead primary must still look healthy at submit
  // time so this test exercises the in-request failover path, not the
  // prober's pre-emptive demotion.
  options.health_interval_seconds = 0;
  Router router(options);
  router.start();

  CompileClient client = CompileClient::connect(router.endpoint());
  const CompileReply reply = client.submit(request);
  ASSERT_EQ(reply.outcomes.size(), 2u);
  EXPECT_EQ(reply.ok_count, 2);
  for (const auto& outcome : reply.outcomes) {
    EXPECT_TRUE(outcome.ok) << outcome.error;
  }

  const Json stats = router.stats_payload();
  const Json& rows = stats.at("backends");
  std::int64_t failures = 0;
  std::int64_t retries = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    failures += rows.at(i).get("failures", static_cast<std::int64_t>(0));
    retries += rows.at(i).get("retries", static_cast<std::int64_t>(0));
  }
  EXPECT_EQ(failures, 1);  // the dead primary
  EXPECT_EQ(retries, 1);   // one failover onto the live backend

  router.stop();
  live.stop();
}

TEST(RouterTest, AllBackendsDeadIsARequestError) {
  RouterOptions options;
  options.unix_path = unique_socket_path("alldead");
  options.backends = {"unix:/tmp/pimcomp-fleet-dead-1.sock",
                      "unix:/tmp/pimcomp-fleet-dead-2.sock"};
  Router router(options);
  router.start();

  CompileClient client = CompileClient::connect(router.endpoint());
  EXPECT_THROW(client.submit(inline_graph_request({2})), ServeError);
  router.stop();
}

// ---------------------------------------------------------------------------
// Token auth, both sides.
// ---------------------------------------------------------------------------

TEST(FleetAuth, DaemonRejectsMissingOrWrongTokenAndAcceptsTheRightOne) {
  TempDir dir;
  ServerOptions options = daemon_options("auth", dir.path);
  options.auth_token = "fleet-secret";
  CompileServer server(options);
  server.start();

  {
    CompileClient anonymous = CompileClient::connect(server.endpoint());
    EXPECT_THROW(anonymous.ping(), ServeError);
    EXPECT_THROW(anonymous.submit(inline_graph_request({2})), ServeError);
  }
  {
    CompileClient wrong = CompileClient::connect(server.endpoint());
    wrong.set_auth_token("fleet-secreT");
    EXPECT_THROW(wrong.ping(), ServeError);
  }
  {
    CompileClient right = CompileClient::connect(server.endpoint());
    right.set_auth_token("fleet-secret");
    EXPECT_TRUE(right.ping());
    const CompileReply reply = right.submit(inline_graph_request({2}));
    ASSERT_EQ(reply.outcomes.size(), 1u);
    EXPECT_TRUE(reply.outcomes[0].ok) << reply.outcomes[0].error;
  }
  server.stop();
}

TEST(FleetAuth, RouterEnforcesTokenAndPresentsItToBackends) {
  TempDir dir;
  ServerOptions backend_options = daemon_options("authback", dir.path);
  backend_options.auth_token = "fleet-secret";
  CompileServer backend(backend_options);
  backend.start();

  RouterOptions options;
  options.unix_path = unique_socket_path("authrouter");
  options.backends = {backend.endpoint()};
  options.auth_token = "fleet-secret";
  Router router(options);
  router.start();

  {
    CompileClient anonymous = CompileClient::connect(router.endpoint());
    EXPECT_THROW(anonymous.ping(), ServeError);
  }
  CompileClient client = CompileClient::connect(router.endpoint());
  client.set_auth_token("fleet-secret");
  EXPECT_TRUE(client.ping());
  // The router re-stamps the fleet token on the forwarded request, so the
  // authenticated backend accepts it end to end.
  const CompileReply reply = client.submit(inline_graph_request({2}));
  ASSERT_EQ(reply.outcomes.size(), 1u);
  EXPECT_TRUE(reply.outcomes[0].ok) << reply.outcomes[0].error;

  router.stop();
  backend.stop();
}

TEST(FleetAuth, RemoteStorePresentsTokenToPeers) {
  TempDir dir;
  ServerOptions peer_options = daemon_options("authpeer", dir.path);
  peer_options.auth_token = "fleet-secret";
  CompileServer peer(peer_options);
  peer.start();

  CacheEntry entry;
  entry.artifact = Json::object();
  entry.artifact["v"] = std::string("1");

  {
    CacheConfig config = remote_only_config(peer.endpoint());
    // No token: every peer interaction is rejected → miss / no-op.
    RemoteStore anonymous(config);
    EXPECT_EQ(anonymous.store(7, entry), nullptr);
    EXPECT_FALSE(anonymous.load(7).has_value());
  }
  {
    CacheConfig config = remote_only_config(peer.endpoint());
    config.auth_token = "fleet-secret";
    RemoteStore authed(config);
    EXPECT_STREQ(authed.store(7, entry), cache_sources::kRemote);
    EXPECT_TRUE(authed.load(7).has_value());
  }
  peer.stop();
}

// ---------------------------------------------------------------------------
// Deadlines.
// ---------------------------------------------------------------------------

TEST(FleetDeadline, ExpiredBeforeStartIsDroppedWithDeadlineKind) {
  // Session-level semantics, fully deterministic: a job whose deadline is
  // already in the past when a worker picks it up never enters the
  // pipeline.
  CompilerSession session(small_cnn(), small_hw(), CacheConfig{});
  session.set_jobs(1);
  TraceRecorder trace;
  session.set_observer(&trace);

  JobOptions expired;
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  CompileJob job =
      session.submit(Scenario{"late", tiny_options(2), std::nullopt},
                     std::move(expired));
  const ScenarioOutcome outcome = job.wait();
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error_kind, ErrorKind::kDeadline);
  EXPECT_EQ(to_string(outcome.error_kind), std::string("deadline"));
  // Dropped before start: no pipeline stage ever began.
  EXPECT_EQ(count_events(trace, PipelineEvent::Kind::kStageBegin,
                         stage_names::kPartitioning),
            0);
}

TEST(FleetDeadline, WireDeadlineExpiresQueuedScenarioOnBusyDaemon) {
  TempDir dir;
  ServerOptions options = daemon_options("deadline", dir.path);
  options.jobs = 1;  // scenario 1 must queue behind scenario 0
  CompileServer server(options);
  server.start();

  CompileRequest request;
  request.graph = graph_to_json(small_cnn());
  request.simulate = false;
  request.deadline_ms = 25;
  // Scenario 0 holds the one worker well past the deadline (this GA budget
  // takes ~400ms on this graph, ~17x the 25ms deadline); scenario 1 is
  // then expired before it starts.
  ScenarioSpec heavy;
  heavy.label = "heavy";
  heavy.options = tiny_options(2);
  heavy.options.ga.population = 256;
  heavy.options.ga.generations = 200;
  ScenarioSpec light;
  light.label = "light";
  light.options = tiny_options(3);
  request.scenarios = {heavy, light};

  CompileClient client = CompileClient::connect(server.endpoint());
  const CompileReply reply = client.submit(request);
  ASSERT_EQ(reply.outcomes.size(), 2u);
  EXPECT_FALSE(reply.outcomes[1].ok);
  EXPECT_EQ(reply.outcomes[1].error_kind, "deadline");
  EXPECT_GE(reply.error_count, 1);
  server.stop();
}

}  // namespace
}  // namespace pimcomp
