// Graph JSON serialize -> deserialize round-trips for every zoo model. The
// serving protocol ships graphs as inline JSON (src/serve/protocol.hpp), so
// a lossy round-trip would make a daemon compile a different network than
// the client asked for. Fingerprint equality is the same identity the
// CompilerSession caches key on.

#include "graph/serialize.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/session.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp {
namespace {

/// Small-but-valid input resolutions (each model documents its own
/// divisibility floor; inception-v3 needs >= 96) so the whole zoo builds in
/// milliseconds.
int test_input_size(const std::string& model) {
  return model == "inception-v3" ? 96 : 32;
}

TEST(GraphRoundTrip, EveryZooModelSurvivesJsonSerialization) {
  for (const std::string& name : zoo::model_names()) {
    SCOPED_TRACE(name);
    Graph original = zoo::build(name, test_input_size(name));
    if (!original.finalized()) original.finalize();

    const Json json = graph_to_json(original);
    // Through the actual wire representation: dumped text, reparsed.
    const Json rewired = Json::parse(json.dump(-1));
    Graph rebuilt = graph_from_json(rewired);

    EXPECT_EQ(rebuilt.name(), original.name());
    EXPECT_EQ(rebuilt.node_count(), original.node_count());
    EXPECT_EQ(rebuilt.total_weight_params(), original.total_weight_params());
    EXPECT_EQ(rebuilt.total_macs(), original.total_macs());

    // The caching identity: equal fingerprints partition identically.
    EXPECT_EQ(fingerprint(rebuilt), fingerprint(original));

    // And a second serialization is byte-stable (diffable wire format).
    EXPECT_EQ(graph_to_json(rebuilt).dump(2), json.dump(2));
  }
}

TEST(GraphRoundTrip, DistinctModelsGetDistinctFingerprints) {
  std::map<std::uint64_t, std::string> seen;
  for (const std::string& name : zoo::model_names()) {
    Graph graph = zoo::build(name, test_input_size(name));
    if (!graph.finalized()) graph.finalize();
    const std::uint64_t fp = fingerprint(graph);
    const auto [it, inserted] = seen.emplace(fp, name);
    EXPECT_TRUE(inserted) << name << " collides with " << it->second;
  }
}

TEST(GraphRoundTrip, SameModelAtDifferentResolutionDiffers) {
  Graph a = zoo::build("resnet18", 32);
  Graph b = zoo::build("resnet18", 64);
  a.finalize();
  b.finalize();
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

}  // namespace
}  // namespace pimcomp
