// MappingSolution (and whole-CompileResult artifact) JSON round-trips for
// every zoo model — the persisted-cache analogue of test_graph_roundtrip:
// the disk tier ships mapping decisions as JSON artifacts, so a lossy
// round-trip would silently schedule a different mapping than the GA chose,
// and an artifact bound to one workload must never deserialize against
// another.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "cache/artifact.hpp"
#include "cache/cache_store.hpp"
#include "core/compile_report.hpp"
#include "core/pipeline.hpp"
#include "core/session.hpp"
#include "graph/builder.hpp"
#include "graph/zoo/zoo.hpp"
#include "mapping/mapper.hpp"
#include "mapping/mapping_solution.hpp"

namespace pimcomp {
namespace {

/// Small-but-valid input resolutions (inception-v3 documents a >= 96
/// floor) so the whole zoo partitions and maps in milliseconds.
int test_input_size(const std::string& model) {
  return model == "inception-v3" ? 96 : 32;
}

Workload make_workload(const Graph& graph) {
  return Workload(graph, fit_core_count(graph, HardwareConfig::puma_default(),
                                        /*headroom=*/3.0));
}

/// A real mapping decision per model, via the fast deterministic greedy
/// strategy (the round-trip property is mapper-independent).
MappingSolution map_greedy(const Workload& workload) {
  MapperOptions options;
  options.mode = PipelineMode::kLowLatency;
  CompileOptions compile_options;
  return MapperRegistry::create("greedy", compile_options)
      ->map(workload, options);
}

TEST(MappingRoundTrip, EveryZooModelSurvivesJsonSerialization) {
  for (const std::string& name : zoo::model_names()) {
    SCOPED_TRACE(name);
    Graph graph = zoo::build(name, test_input_size(name));
    graph.finalize();
    const Workload workload = make_workload(graph);
    const MappingSolution original = map_greedy(workload);

    // Through the actual wire representation: dumped text, reparsed.
    const Json json = Json::parse(original.to_json().dump(-1));
    const MappingSolution rebuilt = MappingSolution::from_json(workload, json);

    EXPECT_EQ(rebuilt.max_nodes_per_core(), original.max_nodes_per_core());
    EXPECT_EQ(rebuilt.core_count(), original.core_count());
    EXPECT_EQ(rebuilt.total_xbars_used(), original.total_xbars_used());
    // The chromosome is the complete identity of a solution.
    EXPECT_EQ(rebuilt.encode(), original.encode());
    for (const NodePartition& p : workload.partitions()) {
      EXPECT_EQ(rebuilt.replication(p.node), original.replication(p.node));
    }
    // And a second serialization is byte-stable (diffable artifacts).
    EXPECT_EQ(rebuilt.to_json().dump(-1), original.to_json().dump(-1));
  }
}

TEST(MappingRoundTrip, RejectsChromosomeForTheWrongWorkload) {
  Graph small = zoo::build("squeezenet", 32);
  small.finalize();
  Graph big = zoo::build("resnet18", 64);
  big.finalize();
  const Workload small_workload = make_workload(small);
  const Workload big_workload = make_workload(big);

  const Json json = map_greedy(big_workload).to_json();
  // A different model means different core counts / partitions: the decode
  // either fails the length check or an infeasible placement — never
  // silently produces a "valid" solution.
  EXPECT_THROW(MappingSolution::from_json(small_workload, json),
               std::exception);
}

TEST(MappingRoundTrip, RejectsMalformedSolutions) {
  Graph graph = zoo::build("squeezenet", 32);
  graph.finalize();
  const Workload workload = make_workload(graph);
  const Json good = map_greedy(workload).to_json();

  Json missing_chromosome = Json::object();
  missing_chromosome["max_nodes_per_core"] =
      good.at("max_nodes_per_core");
  EXPECT_THROW(MappingSolution::from_json(workload, missing_chromosome),
               JsonError);

  Json bad_bound = Json::object();
  bad_bound["max_nodes_per_core"] = 0;
  bad_bound["chromosome"] = good.at("chromosome");
  EXPECT_THROW(MappingSolution::from_json(workload, bad_bound), JsonError);

  Json not_an_array = Json::object();
  not_an_array["max_nodes_per_core"] = good.at("max_nodes_per_core");
  not_an_array["chromosome"] = "zebra";
  EXPECT_THROW(MappingSolution::from_json(workload, not_an_array), JsonError);
}

// ---------------------------------------------------------------------------
// Whole-bundle artifacts.
// ---------------------------------------------------------------------------

Graph tiny_cnn() {
  GraphBuilder b("artifact-cnn", {3, 16, 16});
  NodeId x = b.input();
  x = b.conv_relu(x, 8, 3, /*stride=*/1, /*padding=*/1, "conv1");
  x = b.fc(b.flatten(x, "flatten"), 10, "classifier");
  b.softmax(x, "prob");
  return b.build();
}

CompileOptions tiny_options() {
  CompileOptions options;
  options.mode = PipelineMode::kLowLatency;
  options.parallelism_degree = 4;
  options.ga.population = 6;
  options.ga.generations = 3;
  return options;
}

TEST(CompileResultArtifact, RoundTripsAndValidatesTheWorkloadFingerprint) {
  Graph graph = tiny_cnn();
  graph.finalize();
  const HardwareConfig hw =
      fit_core_count(graph, HardwareConfig::puma_default(), 3.0);
  const std::uint64_t workload_fp =
      combine_fingerprints(fingerprint(graph), fingerprint(hw));
  const CompileOptions options = tiny_options();
  const std::uint64_t mapping_key =
      combine_fingerprints(workload_fp, fingerprint(options));

  CompilerSession session(std::move(graph), hw);
  const CompileResult original = session.compile(options);

  const Json artifact = Json::parse(
      compile_result_to_artifact(original, workload_fp, mapping_key)
          .dump(-1));
  CompileResult rebuilt = compile_result_from_artifact(
      artifact, original.workload, options, workload_fp);

  EXPECT_EQ(rebuilt.solution.encode(), original.solution.encode());
  EXPECT_EQ(rebuilt.mapper_name, original.mapper_name);
  EXPECT_EQ(rebuilt.estimated_fitness, original.estimated_fitness);
  EXPECT_EQ(rebuilt.schedule.total_ops, original.schedule.total_ops);
  EXPECT_EQ(rebuilt.schedule.ag_count, original.schedule.ag_count);
  EXPECT_EQ(rebuilt.ga_stats.best_history, original.ga_stats.best_history);
  // The machine-readable report — everything downstream tooling sees — is
  // byte-identical modulo the (zeroed-on-hit) stage times.
  Json original_report = compile_result_to_json(original);
  Json rebuilt_report = compile_result_to_json(rebuilt);
  Json zero_times = Json::object();
  zero_times["partitioning_s"] = 0.0;
  zero_times["mapping_s"] = 0.0;
  zero_times["scheduling_s"] = 0.0;
  original_report["stage_times"] = zero_times;
  rebuilt_report["stage_times"] = zero_times;
  EXPECT_EQ(original_report.dump(2), rebuilt_report.dump(2));

  // An artifact for a different workload identity must be rejected however
  // it ended up at this key's path.
  EXPECT_THROW(compile_result_from_artifact(artifact, original.workload,
                                            options, workload_fp + 1),
               CacheArtifactError);

  // Schema drift must read as "not trustworthy", not as data.
  Json wrong_schema = artifact;
  wrong_schema["schema"] = kCacheSchemaVersion + 1;
  EXPECT_THROW(compile_result_from_artifact(wrong_schema, original.workload,
                                            options, workload_fp),
               CacheArtifactError);
}

TEST(CompileResultArtifact, RejectsTamperedSchedules) {
  Graph graph = tiny_cnn();
  graph.finalize();
  const HardwareConfig hw =
      fit_core_count(graph, HardwareConfig::puma_default(), 3.0);
  const std::uint64_t workload_fp =
      combine_fingerprints(fingerprint(graph), fingerprint(hw));
  const CompileOptions options = tiny_options();

  CompilerSession session(std::move(graph), hw);
  const CompileResult original = session.compile(options);
  const Json artifact =
      compile_result_to_artifact(original, workload_fp, 1);

  Json lying_total = artifact;
  Json schedule = artifact.at("schedule");
  schedule["total_ops"] = original.schedule.total_ops + 1;
  lying_total["schedule"] = schedule;
  EXPECT_THROW(compile_result_from_artifact(lying_total, original.workload,
                                            options, workload_fp),
               CacheArtifactError);
}

}  // namespace
}  // namespace pimcomp
