#include "core/stream_printer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp {
namespace {

class PrinterFixture : public ::testing::Test {
 protected:
  PrinterFixture() {
    Graph g = zoo::squeezenet(64);
    compiler_ = std::make_unique<Compiler>(std::move(g),
                                           HardwareConfig::puma_default());
    CompileOptions opt;
    opt.mapper = "puma";
    result_ = std::make_unique<CompileResult>(compiler_->compile(opt));
  }

  std::unique_ptr<Compiler> compiler_;
  std::unique_ptr<CompileResult> result_;
};

TEST_F(PrinterFixture, StreamListsOpsWithNodeNames) {
  int busiest = 0;
  std::size_t most = 0;
  for (int c = 0; c < result_->schedule.core_count(); ++c) {
    const auto n = result_->schedule.programs[static_cast<std::size_t>(c)].size();
    if (n > most) {
      most = n;
      busiest = c;
    }
  }
  const std::string text =
      print_core_stream(result_->schedule, compiler_->graph(), busiest, 32);
  EXPECT_NE(text.find("core " + std::to_string(busiest)), std::string::npos);
  EXPECT_NE(text.find("MVM"), std::string::npos);
  EXPECT_NE(text.find("xbars"), std::string::npos);
  // Truncation notice when the stream is longer than the limit.
  if (most > 32) {
    EXPECT_NE(text.find("more ops"), std::string::npos);
  }
}

TEST_F(PrinterFixture, UnlimitedDumpListsEverything) {
  const std::string text =
      print_core_stream(result_->schedule, compiler_->graph(), 0, 0);
  EXPECT_EQ(text.find("more ops"), std::string::npos);
}

TEST_F(PrinterFixture, RejectsBadCore) {
  EXPECT_THROW(
      print_core_stream(result_->schedule, compiler_->graph(), 9999),
      ConfigError);
  EXPECT_THROW(print_core_stream(result_->schedule, compiler_->graph(), -1),
               ConfigError);
}

TEST_F(PrinterFixture, SummaryAggregates) {
  const std::string text = print_schedule_summary(result_->schedule);
  EXPECT_NE(text.find("MVM"), std::string::npos);
  EXPECT_NE(text.find("busiest core"), std::string::npos);
  EXPECT_NE(text.find(std::to_string(result_->schedule.total_ops)),
            std::string::npos);
}

}  // namespace
}  // namespace pimcomp
