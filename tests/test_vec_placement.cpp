#include "schedule/vec_placement.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp {
namespace {

TEST(VfuElements, PerOperatorCosts) {
  GraphBuilder b("t", {4, 8, 8});
  const NodeId c = b.conv(b.input(), 8, 3, 1, 1);
  const NodeId r = b.relu(c);
  const NodeId p = b.max_pool(r, 2, 2);
  const NodeId g = b.global_avg_pool(p);
  const NodeId f = b.fc(b.flatten(g), 10);
  const NodeId s = b.softmax(f);
  Graph graph = b.build();

  EXPECT_EQ(vfu_elements(graph, r), 8 * 8 * 8);          // one op per element
  EXPECT_EQ(vfu_elements(graph, p), 8 * 4 * 4 * 2 * 2);  // kernel^2 per output
  EXPECT_EQ(vfu_elements(graph, g), 8 * 4 * 4);          // reads whole input
  EXPECT_EQ(vfu_elements(graph, s), 10 * 3);             // exp + sum + divide
  EXPECT_EQ(vfu_elements(graph, c), 0);                  // crossbar op
  EXPECT_EQ(vfu_elements(graph, f), 0);
}

TEST(VfuElements, EltwiseAndConcat) {
  GraphBuilder b("t", {4, 8, 8});
  const NodeId a = b.conv(b.input(), 8, 1);
  const NodeId c = b.conv(b.input(), 8, 1);
  const NodeId add = b.eltwise_add(a, c);
  const NodeId cat = b.concat({a, c});
  Graph graph = b.build();
  EXPECT_EQ(vfu_elements(graph, add), 8 * 8 * 8);  // (n-1) adds per element
  EXPECT_EQ(vfu_elements(graph, cat), 0);          // pure addressing
}

TEST(FusedActivation, OnlyDirectCrossbarConsumers) {
  GraphBuilder b("t", {4, 8, 8});
  const NodeId c = b.conv(b.input(), 8, 3, 1, 1);
  const NodeId r1 = b.relu(c);          // fused into the conv
  const NodeId p = b.max_pool(r1, 2, 2);
  const NodeId r2 = b.relu(p);          // NOT fused (consumes a pool)
  (void)r2;
  Graph graph = b.build();
  EXPECT_TRUE(is_fused_activation(graph, r1));
  EXPECT_FALSE(is_fused_activation(graph, r2));
  EXPECT_FALSE(is_fused_activation(graph, p));
}

TEST(StandaloneVecNodes, ExcludesFusedAndCrossbar) {
  Graph graph = zoo::resnet18(64);
  const std::vector<NodeId> standalone = standalone_vec_nodes(graph);
  for (NodeId id : standalone) {
    const Node& n = graph.node(id);
    EXPECT_FALSE(n.is_crossbar());
    EXPECT_NE(n.type, OpType::kInput);
    EXPECT_FALSE(is_fused_activation(graph, id));
  }
  // resnet18: the stem relu and each block's first-conv relu consume a
  // crossbar node directly and fuse (1 + 8 = 9); the post-add relus consume
  // eltwise nodes and stay standalone. 51 nodes - 21 crossbar - 1 input -
  // 9 fused = 20 standalone VEC nodes.
  int fused = 0;
  for (const Node& n : graph.nodes()) {
    if (is_fused_activation(graph, n.id)) ++fused;
  }
  EXPECT_EQ(fused, 9);
  EXPECT_EQ(standalone.size(), 20u);
}

TEST(NodeBytes, InputAndOutputVolumes) {
  GraphBuilder b("t", {4, 8, 8});
  const NodeId a = b.conv(b.input(), 8, 1);
  const NodeId c = b.conv(b.input(), 8, 1);
  const NodeId add = b.eltwise_add(a, c);
  Graph graph = b.build();
  const HardwareConfig hw = HardwareConfig::puma_default();
  // Two 8x8x8 16-bit operands in, one out.
  EXPECT_EQ(node_input_bytes(graph, add, hw), 2 * 8 * 8 * 8 * 2);
  EXPECT_EQ(node_output_bytes(graph, add, hw), 8 * 8 * 8 * 2);
}

TEST(DownstreamVecElements, ChargesEachVecNodeOnce) {
  // Residual block: conv_a and conv_b feed an eltwise + relu; each conv is
  // charged half of the shared chain, so the sum over convs equals the
  // total VEC work.
  GraphBuilder b("t", {4, 8, 8});
  const NodeId a = b.conv(b.input(), 8, 3, 1, 1, "a");
  const NodeId c = b.conv(b.input(), 8, 3, 1, 1, "c");
  const NodeId add = b.eltwise_add(a, c);
  const NodeId r = b.relu(add);
  const NodeId d = b.conv(r, 8, 3, 1, 1, "d");
  (void)d;
  Graph graph = b.build();
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 36;
  const Workload w(graph, hw);

  const std::int64_t from_a = downstream_vec_elements(w, a);
  const std::int64_t from_c = downstream_vec_elements(w, c);
  const std::int64_t chain_total =
      vfu_elements(graph, add) + vfu_elements(graph, r);
  EXPECT_EQ(from_a, from_c);
  EXPECT_NEAR(static_cast<double>(from_a + from_c),
              static_cast<double>(chain_total), 2.0);
  // d has no VEC consumers.
  EXPECT_EQ(downstream_vec_elements(w, d), 0);
}

TEST(DownstreamVecElements, StopsAtNextCrossbarLayer) {
  GraphBuilder b("t", {4, 8, 8});
  const NodeId a = b.conv_relu(b.input(), 8, 3, 1, 1, "a");
  const NodeId d = b.conv(a, 8, 3, 1, 1, "d");
  const NodeId r2 = b.relu(d);
  (void)r2;
  Graph graph = b.build();
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 36;
  const Workload w(graph, hw);
  // a's chain covers only its own fused relu, not d's.
  const NodeId conv_a = 1;
  EXPECT_EQ(downstream_vec_elements(w, conv_a), 8 * 8 * 8);
}

}  // namespace
}  // namespace pimcomp
