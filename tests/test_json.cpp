#include "common/json.hpp"

#include <gtest/gtest.h>

namespace pimcomp {
namespace {

TEST(JsonValue, Scalars) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_FALSE(Json(false).as_bool());
  EXPECT_DOUBLE_EQ(Json(3.5).as_number(), 3.5);
  EXPECT_EQ(Json(42).as_int(), 42);
  EXPECT_EQ(Json("hello").as_string(), "hello");
}

TEST(JsonValue, TypeMismatchThrows) {
  EXPECT_THROW(Json(1.0).as_string(), JsonError);
  EXPECT_THROW(Json("x").as_number(), JsonError);
  EXPECT_THROW(Json().as_bool(), JsonError);
  EXPECT_THROW(Json(1).at("key"), JsonError);
  EXPECT_THROW(Json(1).at(std::size_t{0}), JsonError);
}

TEST(JsonValue, ArrayOperations) {
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(Json::array());
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.at(std::size_t{0}).as_int(), 1);
  EXPECT_EQ(arr.at(1).as_string(), "two");
  EXPECT_THROW(arr.at(3), JsonError);
}

TEST(JsonValue, ObjectOperations) {
  Json obj = Json::object();
  obj["a"] = 1;
  obj["b"] = "text";
  obj["a"] = 2;  // overwrite
  EXPECT_TRUE(obj.contains("a"));
  EXPECT_FALSE(obj.contains("z"));
  EXPECT_EQ(obj.at("a").as_int(), 2);
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_THROW(obj.at("missing"), JsonError);
}

TEST(JsonValue, GetWithFallback) {
  Json obj = Json::object();
  obj["x"] = 5;
  EXPECT_EQ(obj.get("x", 0), 5);
  EXPECT_EQ(obj.get("y", 7), 7);
  EXPECT_EQ(obj.get("name", std::string("none")), "none");
  EXPECT_TRUE(obj.get("flag", true));
}

TEST(JsonValue, ObjectPreservesInsertionOrder) {
  Json obj = Json::object();
  obj["zebra"] = 1;
  obj["apple"] = 2;
  obj["mango"] = 3;
  const auto& items = obj.items();
  EXPECT_EQ(items[0].first, "zebra");
  EXPECT_EQ(items[1].first, "apple");
  EXPECT_EQ(items[2].first, "mango");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e2").as_number(), -250.0);
  EXPECT_EQ(Json::parse("\"str\"").as_string(), "str");
}

TEST(JsonParse, NestedDocument) {
  const Json doc = Json::parse(R"({
    "name": "vgg16",
    "input": [3, 224, 224],
    "nodes": [{"op": "conv", "stride": 1}, {"op": "pool"}]
  })");
  EXPECT_EQ(doc.at("name").as_string(), "vgg16");
  EXPECT_EQ(doc.at("input").size(), 3u);
  EXPECT_EQ(doc.at("input").at(1).as_int(), 224);
  EXPECT_EQ(doc.at("nodes").at(std::size_t{0}).at("op").as_string(), "conv");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(Json::parse(R"("q\"q")").as_string(), "q\"q");
  EXPECT_EQ(Json::parse(R"("back\\slash")").as_string(), "back\\slash");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
}

TEST(JsonParse, Whitespace) {
  EXPECT_EQ(Json::parse("  [ 1 , 2 ]  ").size(), 2u);
  EXPECT_EQ(Json::parse("{ }").size(), 0u);
  EXPECT_EQ(Json::parse("[]").size(), 0u);
}

TEST(JsonParse, MalformedThrows) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":}"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("[1] trailing"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
}

TEST(JsonDump, CompactAndPretty) {
  Json obj = Json::object();
  obj["a"] = 1;
  Json arr = Json::array();
  arr.push_back(2);
  obj["b"] = std::move(arr);
  EXPECT_EQ(obj.dump(-1), "{\"a\":1,\"b\":[2]}");
  const std::string pretty = obj.dump(2);
  EXPECT_NE(pretty.find("\n"), std::string::npos);
}

TEST(JsonDump, IntegersStayIntegral) {
  EXPECT_EQ(Json(1000000).dump(-1), "1000000");
  EXPECT_EQ(Json(static_cast<std::int64_t>(1) << 40).dump(-1),
            "1099511627776");
}

class JsonRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(JsonRoundTrip, ParseDumpParseIsStable) {
  const Json first = Json::parse(GetParam());
  const std::string dumped = first.dump(-1);
  const Json second = Json::parse(dumped);
  EXPECT_EQ(second.dump(-1), dumped);
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonRoundTrip,
    ::testing::Values(
        R"({"a":1,"b":[true,null,"x"],"c":{"d":2.5}})",
        R"([1,2,3,[4,[5]]])", R"("plain string")", R"(3.14159)",
        R"({"empty_obj":{},"empty_arr":[]})",
        R"({"esc":"line\nbreak\ttab"})"));

}  // namespace
}  // namespace pimcomp
