#include "graph/zoo/zoo.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pimcomp {
namespace {

TEST(Zoo, ModelNamesMatchPaperOrder) {
  const auto& names = zoo::model_names();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "vgg16");
  EXPECT_EQ(names[4], "squeezenet");
  EXPECT_THROW(zoo::build("alexnet"), GraphError);
}

TEST(Vgg16, CanonicalParameterCount) {
  Graph g = zoo::vgg16(224);
  // VGG-16 (no-BN) has 138.36M parameters (weights; biases excluded here).
  const double params_m =
      static_cast<double>(g.total_weight_params()) / 1e6;
  EXPECT_NEAR(params_m, 138.3, 0.3);
  EXPECT_EQ(g.crossbar_node_count(), 16);  // 13 conv + 3 fc
}

TEST(Vgg16, CanonicalMacCount) {
  Graph g = zoo::vgg16(224);
  // ~15.5 GMACs for a 224x224 inference.
  EXPECT_NEAR(static_cast<double>(g.total_macs()) / 1e9, 15.5, 0.2);
}

TEST(Vgg16, RejectsBadInputSizes) {
  EXPECT_THROW(zoo::vgg16(100), ConfigError);  // not a multiple of 32
  EXPECT_NO_THROW(zoo::vgg16(64));
}

TEST(Resnet18, CanonicalParameterCount) {
  Graph g = zoo::resnet18(224);
  // ResNet-18 has ~11.69M parameters; conv+fc weights (BN folded) ~11.68M.
  EXPECT_NEAR(static_cast<double>(g.total_weight_params()) / 1e6, 11.68, 0.1);
  // 17 convs + 3 downsample projections + 1 fc = 21 crossbar nodes.
  EXPECT_EQ(g.crossbar_node_count(), 21);
}

TEST(Resnet18, ResidualTopology) {
  Graph g = zoo::resnet18(64);
  int eltwise = 0;
  for (const Node& n : g.nodes()) {
    if (n.type == OpType::kEltwise) ++eltwise;
  }
  EXPECT_EQ(eltwise, 8);  // two blocks per stage, four stages
}

TEST(Squeezenet, CanonicalParameterCount) {
  Graph g = zoo::squeezenet(224);
  // SqueezeNet v1.1: ~1.235M parameters.
  EXPECT_NEAR(static_cast<double>(g.total_weight_params()) / 1e6, 1.235, 0.05);
}

TEST(Squeezenet, FireModuleTopology) {
  Graph g = zoo::squeezenet(224);
  int concats = 0;
  for (const Node& n : g.nodes()) {
    if (n.type == OpType::kConcat) ++concats;
  }
  EXPECT_EQ(concats, 8);  // fire2..fire9
  // 1 stem conv + 8 fires x 3 convs + conv10 = 26 crossbar nodes.
  EXPECT_EQ(g.crossbar_node_count(), 26);
}

TEST(Googlenet, CanonicalParameterCount) {
  Graph g = zoo::googlenet(224);
  // GoogLeNet without auxiliary classifiers: ~7M parameters with true 5x5
  // convolutions in the third branch (6.99M here).
  EXPECT_NEAR(static_cast<double>(g.total_weight_params()) / 1e6, 7.0, 0.4);
}

TEST(Googlenet, InceptionTopology) {
  Graph g = zoo::googlenet(224);
  int concats = 0;
  for (const Node& n : g.nodes()) {
    if (n.type == OpType::kConcat) ++concats;
  }
  EXPECT_EQ(concats, 9);  // 3a,3b,4a-4e,5a,5b
  // 9 modules x 6 convs + stem 3 convs + fc = 58 crossbar nodes.
  EXPECT_EQ(g.crossbar_node_count(), 58);
}

TEST(InceptionV3, CanonicalParameterCount) {
  Graph g = zoo::inception_v3(299);
  // Inception-v3: ~23.8M parameters.
  EXPECT_NEAR(static_cast<double>(g.total_weight_params()) / 1e6, 23.8, 0.8);
}

TEST(InceptionV3, CanonicalOutputGrids) {
  Graph g = zoo::inception_v3(299);
  // Find the final concat before global pooling: 8x8 grid with 2048 channels.
  const Node* last_concat = nullptr;
  for (const Node& n : g.nodes()) {
    if (n.type == OpType::kConcat) last_concat = &n;
  }
  ASSERT_NE(last_concat, nullptr);
  EXPECT_EQ(last_concat->output_shape, (TensorShape{2048, 8, 8}));
}

TEST(InceptionV3, RejectsTinyInputs) {
  EXPECT_THROW(zoo::inception_v3(64), ConfigError);
  EXPECT_NO_THROW(zoo::inception_v3(96));
}

class ZooStructure : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooStructure, EndsWithSoftmaxAndHasSingleSink) {
  const int size = GetParam() == "inception-v3" ? 96 : 64;
  Graph g = zoo::build(GetParam(), size);
  ASSERT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.node(g.sinks()[0]).type, OpType::kSoftmax);
  // The classifier output is 1000-way.
  EXPECT_EQ(g.node(g.sinks()[0]).output_shape.channels, 1000);
}

TEST_P(ZooStructure, ScalesWithInputResolution) {
  if (GetParam() == "inception-v3") {
    EXPECT_GT(zoo::build(GetParam(), 160).total_macs(),
              zoo::build(GetParam(), 96).total_macs());
  } else {
    EXPECT_GT(zoo::build(GetParam(), 128).total_macs(),
              zoo::build(GetParam(), 64).total_macs());
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooStructure,
                         ::testing::Values("vgg16", "resnet18", "googlenet",
                                           "inception-v3", "squeezenet"));

}  // namespace
}  // namespace pimcomp
