#include "common/statistics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pimcomp {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of the sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(TimeWeightedAverage, ConstantSignal) {
  TimeWeightedAverage t;
  t.record(0, 10.0);
  EXPECT_DOUBLE_EQ(t.finish(100), 10.0);
  EXPECT_DOUBLE_EQ(t.peak(), 10.0);
}

TEST(TimeWeightedAverage, StepSignal) {
  TimeWeightedAverage t;
  t.record(0, 0.0);
  t.record(50, 100.0);  // 0 for [0,50), 100 for [50,100)
  EXPECT_DOUBLE_EQ(t.finish(100), 50.0);
  EXPECT_DOUBLE_EQ(t.peak(), 100.0);
}

TEST(TimeWeightedAverage, WeightsByDuration) {
  TimeWeightedAverage t;
  t.record(0, 4.0);
  t.record(10, 8.0);  // 4 for 10 units, 8 for 30 units
  EXPECT_DOUBLE_EQ(t.finish(40), (4.0 * 10 + 8.0 * 30) / 40.0);
}

TEST(TimeWeightedAverage, EmptySignal) {
  TimeWeightedAverage t;
  EXPECT_DOUBLE_EQ(t.finish(100), 0.0);
}

TEST(TimeWeightedAverage, OutOfOrderThrows) {
  TimeWeightedAverage t;
  t.record(100, 1.0);
  EXPECT_THROW(t.record(50, 2.0), Error);
}

TEST(Geomean, Values) {
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Geomean, RejectsNonPositive) {
  EXPECT_THROW(geomean({1.0, 0.0}), Error);
  EXPECT_THROW(geomean({-1.0}), Error);
}

}  // namespace
}  // namespace pimcomp
