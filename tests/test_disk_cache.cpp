// The acceptance scenario of the two-tier cache: a cold session populates
// the disk tier, every trace of in-process state is destroyed, and a warm
// session recompiles the same batch from disk only — with byte-identical
// reports and observer proof that the mapping stage never ran. Plus the
// failure-containment properties: corrupt artifacts recompute (and
// self-heal), fingerprint-mismatched artifacts are rejected, read-only
// caches never write.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/artifact.hpp"
#include "cache/cache_config.hpp"
#include "cache/disk_store.hpp"
#include "core/compile_report.hpp"
#include "core/session.hpp"
#include "core/trace.hpp"
#include "graph/builder.hpp"
#include "sim/sim_report.hpp"

namespace pimcomp {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  TempDir() {
    std::string pattern =
        (fs::temp_directory_path() / "pimcomp-disk-cache-XXXXXX").string();
    char* made = ::mkdtemp(pattern.data());
    EXPECT_NE(made, nullptr);
    path = pattern;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

Graph small_cnn() {
  GraphBuilder b("disk-cache-cnn", {3, 16, 16});
  NodeId x = b.input();
  x = b.conv_relu(x, 8, 3, /*stride=*/1, /*padding=*/1, "conv1");
  x = b.max_pool(x, 2, 2, 0, "pool1");
  x = b.conv_relu(x, 16, 3, 1, 1, "conv2");
  x = b.fc(b.flatten(x, "flatten"), 10, "classifier");
  b.softmax(x, "prob");
  return b.build();
}

HardwareConfig small_hw() {
  return fit_core_count(small_cnn(), HardwareConfig::puma_default(),
                        /*headroom=*/3.0);
}

CompileOptions tiny_options(int parallelism) {
  CompileOptions options;
  options.mode = PipelineMode::kLowLatency;
  options.parallelism_degree = parallelism;
  options.ga.population = 6;
  options.ga.generations = 3;
  return options;
}

CacheConfig cache_at(const std::string& dir) {
  CacheConfig config;
  config.dir = dir;
  return config;
}

std::vector<Scenario> batch() {
  return {
      {"P=2", tiny_options(2), std::nullopt},
      {"P=3", tiny_options(3), std::nullopt},
      {"P=2-again", tiny_options(2), std::nullopt},  // in-session dup
  };
}

std::vector<ScenarioOutcome> compile_batch(CompilerSession& session) {
  for (const Scenario& scenario : batch()) session.enqueue(scenario);
  return session.compile_all();
}

/// The full observable surface of one outcome: human report, machine
/// report, and the cycle-accurate simulation — as rendered bytes.
std::string render(CompilerSession& session, const ScenarioOutcome& outcome) {
  EXPECT_TRUE(outcome.ok()) << outcome.error;
  std::string rendered = describe(*outcome.result);
  rendered += compile_result_to_json(*outcome.result).dump(2);
  rendered += sim_report_to_json(session.simulate(*outcome.result)).dump(2);
  return rendered;
}

int count_events(const TraceRecorder& recorder, PipelineEvent::Kind kind,
                 const std::string& name, const std::string& source = "") {
  int count = 0;
  for (const PipelineEvent& event : recorder.events()) {
    if (event.kind == kind && event.name == name &&
        (source.empty() || event.source == source)) {
      ++count;
    }
  }
  return count;
}

TEST(DiskCache, WarmRunFromDiskOnlyIsByteIdenticalAndNeverMaps) {
  TempDir dir;

  // --- Cold: compile the batch, populating the disk tier. ------------------
  std::vector<std::string> memory_hit_renders;
  {
    CompilerSession cold(small_cnn(), small_hw(), cache_at(dir.path));
    TraceRecorder trace;
    cold.set_observer(&trace);

    const std::vector<ScenarioOutcome> outcomes = compile_batch(cold);
    ASSERT_EQ(outcomes.size(), 3u);
    // Two distinct configurations computed and persisted; the in-session
    // duplicate was a memory hit, not a second store.
    EXPECT_EQ(cold.mapping_cache_stores(), 2u);
    EXPECT_EQ(count_events(trace, PipelineEvent::Kind::kCacheStore,
                           cache_names::kMapping, cache_sources::kDisk),
              2);
    EXPECT_EQ(count_events(trace, PipelineEvent::Kind::kCacheHit,
                           cache_names::kMapping, cache_sources::kMemory),
              1);
    EXPECT_EQ(cold.mapping_disk_hits(), 0u);

    // Reference renders via the *memory* tier (zeroed stage times), which
    // is the exact contract the warm run must reproduce byte for byte.
    for (const Scenario& scenario : batch()) cold.enqueue(scenario);
    for (const ScenarioOutcome& outcome : cold.compile_all()) {
      memory_hit_renders.push_back(render(cold, outcome));
    }
  }  // session destroyed: no in-process state survives

  // --- Warm: a fresh session, same directory, disk tier only. --------------
  CompilerSession warm(small_cnn(), small_hw(), cache_at(dir.path));
  TraceRecorder trace;
  warm.set_observer(&trace);

  const std::vector<ScenarioOutcome> outcomes = compile_batch(warm);
  ASSERT_EQ(outcomes.size(), 3u);

  // Observer evidence: the mapping (and scheduling) stage never ran —
  // partitioning did, once, because workloads are deliberately not
  // persisted.
  EXPECT_EQ(count_events(trace, PipelineEvent::Kind::kStageBegin,
                         stage_names::kMapping),
            0);
  EXPECT_EQ(count_events(trace, PipelineEvent::Kind::kStageBegin,
                         stage_names::kScheduling),
            0);
  EXPECT_EQ(count_events(trace, PipelineEvent::Kind::kStageBegin,
                         stage_names::kPartitioning),
            1);
  // The first hit per distinct configuration came from disk; the
  // in-session duplicate then hit the promoted memory entry.
  EXPECT_EQ(warm.mapping_disk_hits(), 2u);
  EXPECT_EQ(count_events(trace, PipelineEvent::Kind::kCacheHit,
                         cache_names::kMapping, cache_sources::kDisk),
            2);
  EXPECT_EQ(count_events(trace, PipelineEvent::Kind::kCacheHit,
                         cache_names::kMapping, cache_sources::kMemory),
            1);
  // Nothing new was computed, so nothing was stored.
  EXPECT_EQ(warm.mapping_cache_stores(), 0u);

  // Byte-identical reports (human, machine, and simulation).
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    SCOPED_TRACE(outcomes[i].label);
    EXPECT_EQ(render(warm, outcomes[i]), memory_hit_renders[i]);
  }
}

TEST(DiskCache, SurvivesConcurrentWarmJobs) {
  TempDir dir;
  {
    CompilerSession cold(small_cnn(), small_hw(), cache_at(dir.path));
    compile_batch(cold);
  }
  // Many concurrent jobs racing onto the same two disk artifacts: the
  // claim/promotion machinery must neither deadlock nor duplicate work
  // incorrectly (TSan covers the race-freedom half in CI).
  CompilerSession warm(small_cnn(), small_hw(), cache_at(dir.path));
  warm.set_jobs(4);
  std::vector<CompileJob> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(warm.submit(tiny_options(2 + (i % 2)),
                               "J" + std::to_string(i)));
  }
  std::string expected_p2;
  std::string expected_p3;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ScenarioOutcome& outcome = jobs[i].wait();
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    std::string& expected = (i % 2 == 0) ? expected_p2 : expected_p3;
    const std::string rendered =
        compile_result_to_json(*outcome.result).dump(2);
    if (expected.empty()) expected = rendered;
    EXPECT_EQ(rendered, expected);
  }
  EXPECT_EQ(warm.mapping_cache_stores(), 0u);  // disk served everything
  EXPECT_EQ(warm.mapping_cache_hits(), 12u);
}

TEST(DiskCache, CorruptArtifactRecomputesAndSelfHeals) {
  TempDir dir;
  std::string reference;
  {
    CompilerSession cold(small_cnn(), small_hw(), cache_at(dir.path));
    const CompileResult result = cold.compile(tiny_options(2));
    reference = compile_result_to_json(result).dump(2);
  }

  // Vandalize every artifact in the store.
  DiskStore store(cache_at(dir.path));
  int vandalized = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir.path)) {
    if (!entry.is_regular_file()) continue;
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "{\"schema\": " << kCacheSchemaVersion << ", \"key\": \"torn";
    ++vandalized;
  }
  ASSERT_GE(vandalized, 1);

  CompilerSession warm(small_cnn(), small_hw(), cache_at(dir.path));
  TraceRecorder trace;
  warm.set_observer(&trace);
  const CompileResult result = warm.compile(tiny_options(2));
  // Recomputed (the corrupt artifact must not poison the compile)...
  EXPECT_EQ(warm.mapping_disk_hits(), 0u);
  EXPECT_EQ(warm.mapping_cache_stores(), 1u);
  // Zero stage times on the reference: the recompute reports real ones.
  Json recomputed = compile_result_to_json(result);
  Json zero = Json::object();
  zero["partitioning_s"] = 0.0;
  zero["mapping_s"] = 0.0;
  zero["scheduling_s"] = 0.0;
  recomputed["stage_times"] = zero;
  Json expected = Json::parse(reference);
  expected["stage_times"] = zero;
  EXPECT_EQ(recomputed.dump(2), expected.dump(2));

  // ...and the store healed: a third session takes a clean disk hit.
  CompilerSession healed(small_cnn(), small_hw(), cache_at(dir.path));
  healed.compile(tiny_options(2));
  EXPECT_EQ(healed.mapping_disk_hits(), 1u);
}

TEST(DiskCache, RejectsArtifactsWithMismatchedWorkloadFingerprint) {
  TempDir dir;
  // Compile model A cold; then forge its artifact into the slot model B's
  // compile will look at, with the envelope key rewritten so the DiskStore
  // layer accepts it — the session-level workload_fp validation is the
  // last line of defense, and must hold.
  const HardwareConfig hw = small_hw();
  const CompileOptions options = tiny_options(2);
  {
    CompilerSession session_a(small_cnn(), hw, cache_at(dir.path));
    session_a.compile(options);
  }

  GraphBuilder b("other-cnn", {3, 16, 16});
  NodeId x = b.input();
  x = b.conv_relu(x, 8, 3, 1, 1, "conv1");
  x = b.fc(b.flatten(x, "flat"), 10, "classifier");
  b.softmax(x, "prob");
  Graph other = b.build();
  other.finalize();
  const std::uint64_t other_workload_fp =
      combine_fingerprints(fingerprint(other), fingerprint(hw));
  const std::uint64_t other_mapping_key =
      combine_fingerprints(other_workload_fp, fingerprint(options));

  DiskStore store(cache_at(dir.path));
  ASSERT_FALSE(store.load(other_mapping_key).has_value());
  Graph original = small_cnn();
  original.finalize();
  const std::uint64_t original_key = combine_fingerprints(
      combine_fingerprints(fingerprint(original), fingerprint(hw)),
      fingerprint(options));
  const auto forged_source = store.load(original_key);
  ASSERT_TRUE(forged_source.has_value());
  CacheEntry forged = forged_source->entry;  // workload_fp still model A's
  store.store(other_mapping_key, forged);
  ASSERT_TRUE(store.load(other_mapping_key).has_value());

  CompilerSession session_b(std::move(other), hw, cache_at(dir.path));
  TraceRecorder trace;
  session_b.set_observer(&trace);
  const CompileResult result = session_b.compile(options);
  // The forged artifact was rejected, evicted, and the compile recomputed.
  EXPECT_EQ(session_b.mapping_disk_hits(), 0u);
  EXPECT_EQ(session_b.mapping_cache_stores(), 1u);
  EXPECT_EQ(result.solution.workload().graph().name(), "other-cnn");
  const auto healed = store.load(other_mapping_key);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->entry.artifact.get("workload_fp", std::string()),
            cache_key_hex(other_workload_fp));
}

TEST(DiskCache, ReadOnlyCacheServesButNeverWrites) {
  TempDir dir;
  {
    CompilerSession producer(small_cnn(), small_hw(), cache_at(dir.path));
    producer.compile(tiny_options(2));
  }
  const auto files_before = [&] {
    std::vector<std::string> files;
    for (const auto& entry : fs::recursive_directory_iterator(dir.path)) {
      if (entry.is_regular_file()) files.push_back(entry.path().string());
    }
    return files;
  }();

  CacheConfig config = cache_at(dir.path);
  config.read_only = true;
  CompilerSession consumer(small_cnn(), small_hw(), config);
  consumer.compile(tiny_options(2));  // warm: served from disk
  EXPECT_EQ(consumer.mapping_disk_hits(), 1u);
  consumer.compile(tiny_options(5));  // cold: computed, NOT persisted
  EXPECT_EQ(consumer.mapping_cache_stores(), 1u);  // memory tier only

  std::vector<std::string> files_after;
  for (const auto& entry : fs::recursive_directory_iterator(dir.path)) {
    if (entry.is_regular_file()) files_after.push_back(entry.path().string());
  }
  EXPECT_EQ(files_after, files_before);
}

// ---------------------------------------------------------------------------
// Eviction semantics.
// ---------------------------------------------------------------------------

/// Synthetic artifacts of one fixed serialized size (the tag is
/// zero-padded; the store's own schema/key stamps are fixed-width too), so
/// a byte budget can be hit *exactly*.
Json fixed_size_artifact(int n) {
  char tag[8];
  std::snprintf(tag, sizeof(tag), "%04d", n);
  Json artifact = Json::object();
  artifact["tag"] = std::string(tag);
  artifact["payload"] = std::string(1024, 'x');
  return artifact;
}

std::uint64_t store_fixed(DiskStore& store, int n) {
  CacheEntry entry;
  entry.artifact = fixed_size_artifact(n);
  EXPECT_NE(store.store(static_cast<std::uint64_t>(n), entry), nullptr);
  // Distinct mtimes: the eviction order below must never hinge on
  // filesystem timestamp granularity.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  return static_cast<std::uint64_t>(n);
}

TEST(DiskCache, EvictsNothingAtExactByteBudgetAndOldestOneByteOver) {
  TempDir dir;

  // Probe the per-artifact on-disk size, then start over.
  std::uint64_t size_one = 0;
  {
    DiskStore probe(cache_at(dir.path));
    CacheEntry entry;
    entry.artifact = fixed_size_artifact(0);
    ASSERT_NE(probe.store(999, entry), nullptr);
    size_one = probe.stats().bytes;
    ASSERT_GT(size_one, 0u);
    probe.purge();
  }

  CacheConfig config = cache_at(dir.path);
  config.max_bytes = 3 * size_one;
  DiskStore store(config);
  for (int n = 1; n <= 3; ++n) store_fixed(store, n);

  // total == max_bytes is *within* budget: the boundary artifact survives.
  EXPECT_EQ(store.stats().entries, 3u);
  EXPECT_EQ(store.stats().bytes, 3 * size_one);
  EXPECT_EQ(store.stats().evictions, 0u);

  // One artifact over pushes past the budget; exactly the mtime-oldest
  // entry (key 1 — the hits above replay in key order) goes.
  for (std::uint64_t key : {1u, 2u, 3u}) {
    EXPECT_TRUE(store.load(key).has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  store_fixed(store, 4);
  EXPECT_EQ(store.stats().entries, 3u);
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_FALSE(store.load(1).has_value());
  EXPECT_TRUE(store.load(2).has_value());

  // The load(2) just above bumped its mtime past 3's: eviction is LRU on
  // *access* order, not insertion order, so the next overflow takes 3.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  store_fixed(store, 5);
  EXPECT_EQ(store.stats().entries, 3u);
  EXPECT_FALSE(store.load(3).has_value());
  EXPECT_TRUE(store.load(2).has_value());
  EXPECT_TRUE(store.load(4).has_value());
  EXPECT_TRUE(store.load(5).has_value());
}

TEST(DiskCache, EvictionRacingConcurrentLoadMtimeBumpKeepsHotKeyAndSaneState) {
  TempDir dir;
  std::uint64_t size_one = 0;
  {
    DiskStore probe(cache_at(dir.path));
    CacheEntry entry;
    entry.artifact = fixed_size_artifact(0);
    ASSERT_NE(probe.store(999, entry), nullptr);
    size_one = probe.stats().bytes;
    probe.purge();
  }

  CacheConfig config = cache_at(dir.path);
  config.max_bytes = 3 * size_one;
  DiskStore store(config);
  constexpr std::uint64_t kHotKey = 7777;
  {
    CacheEntry entry;
    entry.artifact = fixed_size_artifact(0);
    ASSERT_NE(store.store(kHotKey, entry), nullptr);
  }

  // One thread hammers load(hot) — every hit bumps its mtime — while the
  // other stores a stream of cold artifacts, each store running an
  // eviction pass over the same directory. The hot entry must ride out
  // every pass (it is never the LRU victim while the bumps keep landing),
  // and no load may ever surface a torn or mis-keyed artifact.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hot_hits{0};
  std::thread loader([&] {
    while (!stop.load()) {
      if (const std::optional<CacheHit> hit = store.load(kHotKey)) {
        hot_hits.fetch_add(1);
        EXPECT_EQ(hit->entry.artifact.get("key", std::string()),
                  cache_key_hex(kHotKey));
      }
    }
  });
  for (int n = 1; n <= 24; ++n) {
    CacheEntry entry;
    entry.artifact = fixed_size_artifact(n);
    store.store(static_cast<std::uint64_t>(n), entry);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  loader.join();

  EXPECT_GT(hot_hits.load(), 0u);
  EXPECT_TRUE(store.load(kHotKey).has_value());  // survived every sweep
  const CacheStoreStats stats = store.stats();
  EXPECT_LE(stats.bytes, config.max_bytes);
  EXPECT_LE(stats.entries, 3u);
  EXPECT_GT(stats.evictions, 0u);
}

}  // namespace
}  // namespace pimcomp
