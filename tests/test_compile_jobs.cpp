// The asynchronous job API (PR 4): submit() -> CompileJob handles with
// poll()/wait()/cancel() and completion callbacks on a resident worker
// pool. Covers the cancellation contract end to end — cancel before start,
// cancel mid-mapping (the GA observes the token within one generation),
// session destruction with outstanding jobs — plus priority ordering,
// ErrorKind classification, and a mixed submit/cancel hammering from
// several threads (kept race-free by the TSan CI job).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/session.hpp"
#include "graph/builder.hpp"

namespace pimcomp {
namespace {

Graph small_cnn() {
  GraphBuilder b("jobs-cnn", {3, 16, 16});
  NodeId x = b.input();
  x = b.conv_relu(x, 8, 3, /*stride=*/1, /*padding=*/1, "conv1");
  x = b.max_pool(x, 2, 2, 0, "pool1");
  x = b.conv_relu(x, 16, 3, 1, 1, "conv2");
  x = b.fc(b.flatten(x, "flatten"), 10, "classifier");
  b.softmax(x, "prob");
  return b.build();
}

CompileOptions tiny_options(std::uint64_t seed = 1) {
  CompileOptions options;
  options.mode = PipelineMode::kHighThroughput;
  options.ga.population = 8;
  options.ga.generations = 4;
  options.ga.seed_baseline = false;
  options.seed = seed;
  return options;
}

/// A GA budget that would run ~half a minute uncancelled (the tiny CNN
/// spends tens of microseconds per generation) — long enough that every
/// test below provably relies on cancellation, short enough to stay
/// bounded if cancellation ever regressed.
CompileOptions long_options(std::uint64_t seed = 1) {
  CompileOptions options = tiny_options(seed);
  options.ga.generations = 1'000'000;
  return options;
}

/// A hardware config no model fits: partitioning throws CapacityError.
HardwareConfig one_xbar_hardware() {
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 1;
  hw.cores_per_chip = 1;
  hw.xbars_per_core = 1;
  return hw;
}

/// Flags when the mapping stage of a given scenario label starts, and
/// counts stage begins per label (callbacks are serialized by the session).
class StageWatcher : public PipelineObserver {
 public:
  void on_stage_begin(const StageInfo& info) override {
    std::lock_guard<std::mutex> lock(mutex_);
    begins_.push_back(info.scenario + "/" + info.stage);
    if (info.stage == stage_names::kMapping) mapping_started_ = true;
  }

  bool mapping_started() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return mapping_started_;
  }

  int begins_for(const std::string& label) const {
    std::lock_guard<std::mutex> lock(mutex_);
    int count = 0;
    for (const std::string& entry : begins_) {
      if (entry.rfind(label + "/", 0) == 0) ++count;
    }
    return count;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> begins_;
  bool mapping_started_ = false;
};

TEST(CompileJobs, SubmitMatchesSynchronousCompile) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  const CompileResult direct = session.compile(tiny_options(7));

  CompilerSession fresh(small_cnn(), HardwareConfig::puma_default());
  CompileJob job = fresh.submit(tiny_options(7), "async");
  ASSERT_TRUE(job.valid());
  const ScenarioOutcome& outcome = job.wait();
  EXPECT_EQ(job.poll(), JobStatus::kDone);
  EXPECT_TRUE(job.done());
  ASSERT_TRUE(outcome.ok()) << outcome.error;
  EXPECT_EQ(outcome.label, "async");
  EXPECT_EQ(outcome.error_kind, ErrorKind::kNone);
  EXPECT_EQ(outcome.result->solution.encode(), direct.solution.encode());
  EXPECT_EQ(outcome.result->estimated_fitness, direct.estimated_fitness);
}

TEST(CompileJobs, WaitAfterCompletionIsIdempotent) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  CompileJob job = session.submit(tiny_options(), "once");
  const ScenarioOutcome& first = job.wait();
  const ScenarioOutcome& again = job.wait();
  // Same terminal outcome object, not a recomputation.
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(job.poll(), JobStatus::kDone);
}

TEST(CompileJobs, CancelBeforeStartNeverRunsAStage) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  StageWatcher watcher;
  session.set_observer(&watcher);
  session.set_jobs(1);  // one worker: the second job is provably queued

  CompileJob running = session.submit(long_options(), "running");
  CompileJob queued = session.submit(tiny_options(), "queued");
  EXPECT_TRUE(queued.cancel());
  EXPECT_TRUE(running.cancel());  // unblock the worker promptly

  const ScenarioOutcome& outcome = queued.wait();
  EXPECT_EQ(queued.poll(), JobStatus::kCancelled);
  EXPECT_TRUE(outcome.cancelled());
  EXPECT_EQ(outcome.error_kind, ErrorKind::kCancelled);
  EXPECT_FALSE(outcome.ok());
  EXPECT_NE(outcome.error.find("cancelled"), std::string::npos);
  running.wait();

  // The cancelled-while-queued job never reached any pipeline stage.
  EXPECT_EQ(watcher.begins_for("queued"), 0);
  // cancel() after the fact reports "too late".
  EXPECT_FALSE(queued.cancel());
}

TEST(CompileJobs, CancelMidMappingIsObservedWithinOneGeneration) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  StageWatcher watcher;
  session.set_observer(&watcher);

  CompileJob job = session.submit(long_options(), "long");
  // Wait until the GA is demonstrably inside the mapping stage.
  while (!watcher.mapping_started()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(job.poll(), JobStatus::kRunning);

  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(job.cancel());
  const ScenarioOutcome& outcome = job.wait();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  EXPECT_TRUE(outcome.cancelled());
  // The token lands inside the GA: at a generation boundary or, on a slow
  // (sanitized) build, still during population initialization.
  EXPECT_NE(outcome.error.find("cancelled"), std::string::npos)
      << outcome.error;
  // The full budget would run tens of seconds; the token must be observed
  // within one generation (microseconds) plus scheduling noise.
  EXPECT_LT(seconds, 5.0);
}

TEST(CompileJobs, CancelLandsWithinOneIslandGenerationAtSixteenIslands) {
  // Island-model regression: the cancel token is polled per ISLAND
  // generation, so splitting the population across 16 islands must not
  // stretch cancellation latency — every island observes the token inside
  // its own population/16 sweep, and parallel_for rethrows the first
  // island's CancelledError after the rest retire.
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  StageWatcher watcher;
  session.set_observer(&watcher);

  CompileOptions options = long_options();
  options.ga.population = 64;  // 4 individuals per island
  options.ga.islands = 16;
  CompileJob job = session.submit(options, "archipelago");
  while (!watcher.mapping_started()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(job.cancel());
  const ScenarioOutcome& outcome = job.wait();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  EXPECT_TRUE(outcome.cancelled());
  EXPECT_NE(outcome.error.find("cancelled"), std::string::npos)
      << outcome.error;
  EXPECT_LT(seconds, 5.0);
}

TEST(CompileJobs, SessionDestructionCancelsOutstandingJobs) {
  std::vector<CompileJob> jobs;
  {
    CompilerSession session(small_cnn(), HardwareConfig::puma_default());
    session.set_jobs(1);
    for (int i = 0; i < 4; ++i) {
      jobs.push_back(session.submit(long_options(static_cast<std::uint64_t>(
                                        i + 1)),
                                    "doomed-" + std::to_string(i)));
    }
    EXPECT_GT(session.outstanding_jobs(), 0u);
    // ~CompilerSession cancels, finalizes, and joins before returning.
  }
  for (const CompileJob& job : jobs) {
    EXPECT_TRUE(job.done());
    const ScenarioOutcome& outcome = job.wait();  // returns instantly
    EXPECT_EQ(job.poll(), JobStatus::kCancelled);
    EXPECT_TRUE(outcome.cancelled()) << outcome.error;
  }
}

TEST(CompileJobs, CompletionCallbackSeesTheOutcomeAndMaySubmitMore) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  std::atomic<int> calls{0};
  std::atomic<bool> callback_ok{false};

  JobOptions options;
  options.on_complete = [&](const ScenarioOutcome& outcome) {
    calls.fetch_add(1);
    callback_ok.store(outcome.ok());
  };
  CompileJob job = session.submit(
      Scenario{"cb", tiny_options(), std::nullopt}, std::move(options));
  job.wait();
  // wait() unblocks before/at the callback; outstanding_jobs() drains after.
  while (session.outstanding_jobs() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(calls.load(), 1);
  EXPECT_TRUE(callback_ok.load());

  // A follow-up submitted from a completion callback compiles normally
  // (the helping wait keeps a one-worker session deadlock-free).
  std::atomic<bool> followup_ok{false};
  JobOptions chained;
  chained.on_complete = [&](const ScenarioOutcome& outcome) {
    if (!outcome.ok()) return;
    CompileJob next = session.submit(tiny_options(99), "follow-up");
    followup_ok.store(next.wait().ok());
  };
  session
      .submit(Scenario{"chain", tiny_options(3), std::nullopt},
              std::move(chained))
      .wait();
  while (session.outstanding_jobs() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(followup_ok.load());
}

TEST(CompileJobs, HigherPriorityJumpsTheQueue) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  session.set_jobs(1);

  std::mutex order_mutex;
  std::vector<std::string> completion_order;
  const auto record = [&](const std::string& label) {
    JobOptions options;
    options.on_complete = [&, label](const ScenarioOutcome&) {
      std::lock_guard<std::mutex> lock(order_mutex);
      completion_order.push_back(label);
    };
    return options;
  };

  // Occupy the single worker, then queue a normal and a high-priority job.
  CompileOptions busy = tiny_options();
  busy.ga.generations = 20'000;  // ~1 s: both rivals are queued meanwhile
  CompileJob blocker = session.submit(
      Scenario{"blocker", busy, std::nullopt}, record("blocker"));
  // The worker must own the blocker before the rivals join the queue, or
  // its first pop would take the high-priority job instead.
  while (blocker.poll() == JobStatus::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  JobOptions normal = record("normal");
  normal.priority = 0;
  CompileJob low = session.submit(Scenario{"normal", tiny_options(2), std::nullopt},
                                  std::move(normal));
  JobOptions urgent = record("urgent");
  urgent.priority = 5;
  CompileJob high = session.submit(
      Scenario{"urgent", tiny_options(3), std::nullopt}, std::move(urgent));

  ASSERT_TRUE(blocker.wait().ok());
  ASSERT_TRUE(low.wait().ok());
  ASSERT_TRUE(high.wait().ok());
  while (session.outstanding_jobs() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::lock_guard<std::mutex> lock(order_mutex);
  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order[0], "blocker");
  EXPECT_EQ(completion_order[1], "urgent");  // priority 5 beats FIFO
  EXPECT_EQ(completion_order[2], "normal");
}

TEST(CompileJobs, ErrorKindsClassifyFailures) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());

  CompileJob infeasible = session.submit(
      Scenario{"cramped", tiny_options(), one_xbar_hardware()});
  CompileOptions bad = tiny_options();
  bad.mapper = "not-a-mapper";
  CompileJob misconfigured = session.submit(bad, "typo");

  EXPECT_EQ(infeasible.wait().error_kind, ErrorKind::kCapacity);
  EXPECT_EQ(infeasible.poll(), JobStatus::kDone);  // failed, not cancelled
  EXPECT_EQ(misconfigured.wait().error_kind, ErrorKind::kConfig);

  // The wire spellings round-trip.
  EXPECT_EQ(to_string(ErrorKind::kCapacity), "capacity");
  EXPECT_EQ(error_kind_from_string("capacity"), ErrorKind::kCapacity);
  EXPECT_EQ(error_kind_from_string("config"), ErrorKind::kConfig);
  EXPECT_EQ(error_kind_from_string("cancelled"), ErrorKind::kCancelled);
  EXPECT_EQ(error_kind_from_string(""), ErrorKind::kNone);
  EXPECT_EQ(error_kind_from_string("from-the-future"), ErrorKind::kInternal);
}

TEST(CompileJobs, CancelAllJobsCancelsEverythingOutstanding) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  session.set_jobs(1);
  std::vector<CompileJob> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(session.submit(long_options(static_cast<std::uint64_t>(
                                      i + 1)),
                                  "bulk-" + std::to_string(i)));
  }
  EXPECT_GE(session.cancel_all_jobs(), 3u);
  for (const CompileJob& job : jobs) {
    EXPECT_TRUE(job.wait().cancelled()) << job.label();
  }
  session.wait_jobs_idle();
  EXPECT_EQ(session.outstanding_jobs(), 0u);
}

TEST(CompileJobs, MixedSubmitAndCancelFromManyThreads) {
  // Four submitters racing four cancellers over one shared session; every
  // job must reach a coherent terminal state (ok or cancelled — seeds are
  // distinct so nothing else can fail). TSan keeps this honest in CI.
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  session.set_jobs(2);

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 6;
  std::mutex jobs_mutex;
  std::vector<CompileJob> jobs;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        const auto seed =
            static_cast<std::uint64_t>(t * kJobsPerThread + i + 1);
        CompileOptions options = tiny_options(seed);
        if (i % 2 == 0) options.ga.generations = 50'000;  // cancel fodder
        CompileJob job = session.submit(options, "t" + std::to_string(t) +
                                                     "-" + std::to_string(i));
        if (i % 2 == 0) job.cancel();
        std::lock_guard<std::mutex> lock(jobs_mutex);
        jobs.push_back(std::move(job));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  int ok = 0;
  int cancelled = 0;
  for (const CompileJob& job : jobs) {
    const ScenarioOutcome& outcome = job.wait();
    if (outcome.ok()) {
      ++ok;
    } else {
      ASSERT_TRUE(outcome.cancelled())
          << job.label() << ": " << outcome.error;
      ++cancelled;
    }
  }
  EXPECT_EQ(ok + cancelled, kThreads * kJobsPerThread);
  // Every even job was cancelled pre- or mid-flight; the odd ones ran
  // uncontested. (A racy even job may still have finished first, but the
  // bulk must land as cancellations.)
  EXPECT_GE(cancelled, kThreads);
  EXPECT_GE(ok, kThreads);
}

TEST(CompileJobs, ResidentWorkersSurviveAcrossBatches) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  session.set_jobs(2);
  // Two back-to-back batches reuse the same resident pool; the second
  // batch's identical scenario hits the mapping cache warmed by the first.
  session.enqueue(tiny_options(), "warm");
  const std::vector<ScenarioOutcome> first = session.compile_all();
  ASSERT_TRUE(first[0].ok());

  session.enqueue(tiny_options(), "hit");
  const std::vector<ScenarioOutcome> second = session.compile_all();
  ASSERT_TRUE(second[0].ok());
  EXPECT_EQ(session.mapping_cache_hits(), 1u);
  EXPECT_EQ(second[0].result->solution.encode(),
            first[0].result->solution.encode());
}

}  // namespace
}  // namespace pimcomp
