// End-to-end tests of the multiplexed pimcompd (PR 4): one fixed reader
// pool serving many concurrent clients over poll(2), wire scenarios running
// as CompileJobs on shared sessions, and the isolation acceptance scenario —
// a deliberately stalled client whose disconnect cancels its own jobs (and
// only its own) instead of wedging a handler thread or starving the queue.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "graph/builder.hpp"
#include "graph/serialize.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace pimcomp {
namespace {

using serve::CompileClient;
using serve::CompileReply;
using serve::CompileRequest;
using serve::CompileServer;
using serve::LineChannel;
using serve::ScenarioSpec;
using serve::ServerOptions;

Graph small_cnn() {
  GraphBuilder b("mux-cnn", {3, 16, 16});
  NodeId x = b.input();
  x = b.conv_relu(x, 8, 3, /*stride=*/1, /*padding=*/1, "conv1");
  x = b.max_pool(x, 2, 2, 0, "pool1");
  x = b.conv_relu(x, 16, 3, 1, 1, "conv2");
  x = b.fc(b.flatten(x, "flatten"), 10, "classifier");
  b.softmax(x, "prob");
  return b.build();
}

CompileOptions tiny_options(int parallelism, std::uint64_t seed = 1) {
  CompileOptions options;
  options.mode = PipelineMode::kHighThroughput;
  options.parallelism_degree = parallelism;
  options.ga.population = 8;
  options.ga.generations = 4;
  options.seed = seed;
  return options;
}

CompileRequest tiny_request(int parallelism, std::uint64_t seed = 1) {
  CompileRequest request;
  request.graph = graph_to_json(small_cnn());
  ScenarioSpec spec;
  spec.label = "P=" + std::to_string(parallelism);
  spec.options = tiny_options(parallelism, seed);
  request.scenarios.push_back(std::move(spec));
  return request;
}

std::string unique_socket_path(const std::string& tag) {
  return "/tmp/pimcomp-mux-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

// ---------------------------------------------------------------------------
// The reader pool serves many clients at once.
// ---------------------------------------------------------------------------

TEST(ServeMultiplex, ReaderPoolServesEightConcurrentClients) {
  ServerOptions options;
  options.unix_path = unique_socket_path("eight");
  options.readers = 2;  // 8 connections multiplexed onto 2 reader threads
  options.jobs = 2;
  CompileServer server(options);
  server.start();

  constexpr int kClients = 8;
  std::vector<CompileReply> replies(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      CompileClient client = CompileClient::connect(server.endpoint());
      // Three distinct design points across the fleet: plenty of overlap,
      // so later clients hit the caches their peers warmed.
      replies[static_cast<std::size_t>(c)] =
          client.submit(tiny_request(2 + (c % 3)));
    });
  }
  for (std::thread& thread : clients) thread.join();

  for (int c = 0; c < kClients; ++c) {
    const CompileReply& reply = replies[static_cast<std::size_t>(c)];
    ASSERT_EQ(reply.outcomes.size(), 1u) << "client " << c;
    EXPECT_TRUE(reply.outcomes[0].ok)
        << "client " << c << ": " << reply.outcomes[0].error;
    EXPECT_EQ(reply.error_count, 0);
    // Every streamed event belongs to this client's own scenario.
    for (const PipelineEvent& event : reply.events) {
      EXPECT_EQ(event.scenario, reply.outcomes[0].label);
    }
  }
  EXPECT_EQ(server.requests_served(), static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(server.connections_accepted(),
            static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(server.session_count(), 1u);  // all eight shared one session
  EXPECT_EQ(server.jobs_cancelled(), 0u);
  server.stop();
}

TEST(ServeMultiplex, PipelinedRequestsOnOneConnection) {
  ServerOptions options;
  options.unix_path = unique_socket_path("pipeline");
  CompileServer server(options);
  server.start();

  // Back-to-back requests on one connection: the multiplexed reader keeps
  // the connection usable across any number of requests.
  CompileClient client = CompileClient::connect(server.endpoint());
  for (int i = 0; i < 3; ++i) {
    const CompileReply reply =
        client.submit(tiny_request(2 + i, static_cast<std::uint64_t>(i + 1)));
    EXPECT_EQ(reply.error_count, 0);
    EXPECT_TRUE(client.ping());
  }
  EXPECT_EQ(server.requests_served(), 3u);
  server.stop();
}

// ---------------------------------------------------------------------------
// The acceptance scenario: a stalled client cancels only its own jobs.
// ---------------------------------------------------------------------------

TEST(ServeMultiplex, StalledClientCancelsOnlyItsOwnJobs) {
  ServerOptions options;
  options.unix_path = unique_socket_path("stalled");
  options.readers = 2;
  // One worker per session: if the dead client's runaway job were NOT
  // cancelled, every other client below would starve behind it for the
  // better part of a minute and the test would time out.
  options.jobs = 1;
  CompileServer server(options);
  server.start();

  // The stalled client: submits a ~40 s GA budget (at full run) on the
  // same model everyone else uses, never reads a byte of its reply, and
  // then vanishes. Raw channel, not CompileClient — stalling is the point.
  auto stalled = std::make_unique<LineChannel>(
      serve::connect_unix(options.unix_path));
  {
    CompileRequest runaway = tiny_request(9, /*seed=*/77);
    runaway.scenarios[0].label = "runaway";
    runaway.scenarios[0].options.ga.generations = 1'000'000;
    runaway.simulate = false;
    runaway.id = 424242;
    stalled->write_line(serve::to_json(runaway).dump(-1));
  }
  // Give the runaway job time to be admitted and occupy the worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Eight live clients pile on while the runaway job holds the only worker.
  constexpr int kClients = 8;
  std::vector<CompileReply> replies(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      CompileClient client = CompileClient::connect(server.endpoint());
      replies[static_cast<std::size_t>(c)] = client.submit(
          tiny_request(2 + (c % 3), static_cast<std::uint64_t>(c + 1)));
    });
  }

  // The stalled client hangs up. The reader observes EOF, cancels the
  // runaway job mid-GA (observed within one generation), and the worker
  // moves on to the live clients' jobs.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto hangup = std::chrono::steady_clock::now();
  stalled->shutdown_both();
  stalled.reset();

  for (std::thread& thread : clients) thread.join();
  const double drain_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - hangup)
          .count();

  // Everyone else was served, correctly and promptly — nowhere near the
  // ~40 s the runaway budget would have held the worker.
  for (int c = 0; c < kClients; ++c) {
    const CompileReply& reply = replies[static_cast<std::size_t>(c)];
    ASSERT_EQ(reply.outcomes.size(), 1u) << "client " << c;
    EXPECT_TRUE(reply.outcomes[0].ok)
        << "client " << c << ": " << reply.outcomes[0].error;
  }
  EXPECT_LT(drain_seconds, 20.0);

  // Exactly the stalled client's job was cancelled, nobody else's.
  EXPECT_EQ(server.jobs_cancelled(), 1u);
  EXPECT_EQ(server.requests_served(), static_cast<std::uint64_t>(kClients));
  server.stop();
}

TEST(ServeMultiplex, DisconnectBeforeJobsStartCancelsTheWholeBatch) {
  ServerOptions options;
  options.unix_path = unique_socket_path("earlydrop");
  options.jobs = 1;
  CompileServer server(options);
  server.start();

  // A batch of three jobs, then an immediate hangup: whichever jobs have
  // not started are cancelled before ever reaching a pipeline stage.
  {
    LineChannel channel(serve::connect_unix(options.unix_path));
    CompileRequest request = tiny_request(2, /*seed=*/5);
    for (int i = 0; i < 2; ++i) {
      ScenarioSpec spec;
      spec.label = "extra-" + std::to_string(i);
      spec.options = tiny_options(3 + i, /*seed=*/6 + i);
      spec.options.ga.generations = 200'000;
      request.scenarios.push_back(std::move(spec));
    }
    request.scenarios[0].options.ga.generations = 200'000;
    channel.write_line(serve::to_json(request).dump(-1));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }  // channel closes here: EOF on the reader

  // A fresh client compiles immediately — the dead batch is not in its way.
  const auto t0 = std::chrono::steady_clock::now();
  CompileClient client = CompileClient::connect(server.endpoint());
  const CompileReply reply = client.submit(tiny_request(4, /*seed=*/9));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(reply.error_count, 0);
  EXPECT_LT(seconds, 20.0);
  EXPECT_GE(server.jobs_cancelled(), 2u);  // at least the two queued jobs
  server.stop();
}

}  // namespace
}  // namespace pimcomp
