// Regression coverage for the Logger race fixed by the thread-safety
// audit: `level_` used to be a plain (non-atomic) static that set_level()
// wrote while session workers called log() — a data race TSan flags even
// when the torn value happens to be benign. With the atomic in place this
// hammer must run clean under the TSan CI leg, and the threshold semantics
// it asserts must hold on every build.
#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/thread_annotations.hpp"

namespace pimcomp {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = Logger::level(); }
  void TearDown() override { Logger::set_level(previous_); }

 private:
  LogLevel previous_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, ThresholdFiltersBelowLevel) {
  Logger::set_level(LogLevel::kError);
  EXPECT_EQ(Logger::level(), LogLevel::kError);

  std::ostringstream captured;
  auto* old = std::cerr.rdbuf(captured.rdbuf());
  Logger::log(LogLevel::kWarn, "filtered");
  Logger::log(LogLevel::kError, "emitted");
  std::cerr.rdbuf(old);

  EXPECT_EQ(captured.str(), "[pimcomp ERROR] emitted\n");
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::set_level(LogLevel::kOff);
  std::ostringstream captured;
  auto* old = std::cerr.rdbuf(captured.rdbuf());
  Logger::log(LogLevel::kError, "dropped");
  std::cerr.rdbuf(old);
  EXPECT_TRUE(captured.str().empty());
}

TEST_F(LoggingTest, ConcurrentSetLevelAndLogIsRaceFree) {
  // The regression proper: writers flip the threshold while readers log.
  // Pre-fix, TSan reports a data race on level_ here.
  std::ostringstream captured;
  auto* old = std::cerr.rdbuf(captured.rdbuf());
  Thread flipper([] {
    for (int i = 0; i < 2000; ++i) {
      Logger::set_level(i % 2 == 0 ? LogLevel::kOff : LogLevel::kError);
    }
  });
  Thread writer([] {
    for (int i = 0; i < 2000; ++i) {
      Logger::log(LogLevel::kWarn, "spin");
    }
  });
  flipper.join();
  writer.join();
  std::cerr.rdbuf(old);
  // kWarn never passes either threshold the flipper installs.
  EXPECT_TRUE(captured.str().empty());
}

}  // namespace
}  // namespace pimcomp
