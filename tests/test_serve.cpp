// End-to-end tests of the pimcompd serving stack: an in-process
// CompileServer, real sockets, concurrent CompileClients, and the
// acceptance triad — (a) progress events stream before outcomes, (b) a
// second client's duplicate work hits the shared session's caches, and
// (c) wire results are bit-identical to a direct CompilerSession run.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "backend/instruction_stream.hpp"
#include "core/compile_report.hpp"
#include "core/session.hpp"
#include "graph/builder.hpp"
#include "graph/serialize.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace pimcomp {
namespace {

using serve::CompileClient;
using serve::CompileReply;
using serve::CompileRequest;
using serve::CompileServer;
using serve::ScenarioSpec;
using serve::ServeError;
using serve::ServerOptions;

Graph small_cnn() {
  GraphBuilder b("serve-cnn", {3, 16, 16});
  NodeId x = b.input();
  x = b.conv_relu(x, 8, 3, /*stride=*/1, /*padding=*/1, "conv1");
  x = b.max_pool(x, 2, 2, 0, "pool1");
  x = b.conv_relu(x, 16, 3, 1, 1, "conv2");
  x = b.fc(b.flatten(x, "flatten"), 10, "classifier");
  b.softmax(x, "prob");
  return b.build();
}

CompileOptions tiny_options(int parallelism) {
  CompileOptions options;
  options.mode = PipelineMode::kHighThroughput;
  options.parallelism_degree = parallelism;
  options.ga.population = 8;
  options.ga.generations = 4;
  return options;
}

ScenarioSpec scenario(int parallelism) {
  ScenarioSpec spec;
  spec.label = "P=" + std::to_string(parallelism);
  spec.options = tiny_options(parallelism);
  return spec;
}

CompileRequest inline_graph_request(std::vector<int> parallelisms) {
  CompileRequest request;
  request.graph = graph_to_json(small_cnn());
  for (int p : parallelisms) request.scenarios.push_back(scenario(p));
  return request;
}

/// Timings differ run to run by construction; everything else must be
/// bit-identical between the wire result and a direct session compile.
Json strip_stage_times(const Json& compile) {
  Json out = Json::object();
  for (const auto& [key, value] : compile.items()) {
    if (key != "stage_times") out[key] = value;
  }
  return out;
}

std::string unique_socket_path(const std::string& tag) {
  return "/tmp/pimcomp-test-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

int count_cache_hits(const std::vector<PipelineEvent>& events,
                     const std::string& cache) {
  return static_cast<int>(std::count_if(
      events.begin(), events.end(), [&](const PipelineEvent& event) {
        return event.kind == PipelineEvent::Kind::kCacheHit &&
               event.name == cache;
      }));
}

// ---------------------------------------------------------------------------
// The acceptance scenario: two concurrent clients, overlapping batches.
// ---------------------------------------------------------------------------

TEST(ServeEndToEnd, ConcurrentClientsShareOneSessionAndMatchDirectCompile) {
  ServerOptions options;
  options.unix_path = unique_socket_path("e2e");
  options.jobs = 2;  // exercise the parallel batch path inside the session
  CompileServer server(options);
  server.start();

  // Client A and client B overlap on P=2; together they cover P=2,3,4.
  CompileReply reply_a;
  CompileReply reply_b;
  std::thread thread_a([&] {
    CompileClient client = CompileClient::connect(server.endpoint());
    reply_a = client.submit(inline_graph_request({2, 3}));
  });
  std::thread thread_b([&] {
    CompileClient client = CompileClient::connect(server.endpoint());
    reply_b = client.submit(inline_graph_request({2, 4}));
  });
  thread_a.join();
  thread_b.join();
  EXPECT_EQ(server.session_count(), 1u);  // one shared session for both
  server.stop();

  for (const CompileReply* reply : {&reply_a, &reply_b}) {
    ASSERT_EQ(reply->outcomes.size(), 2u);
    EXPECT_EQ(reply->error_count, 0);
    for (const serve::OutcomeMessage& outcome : reply->outcomes) {
      EXPECT_TRUE(outcome.ok) << outcome.error;
      EXPECT_TRUE(outcome.simulation.is_object());
    }
    // Outcomes come back in enqueue order with their batch indices.
    EXPECT_EQ(reply->outcomes[0].index, 0);
    EXPECT_EQ(reply->outcomes[1].index, 1);

    // (a) Progress events arrived strictly before the first outcome frame.
    ASSERT_FALSE(reply->events.empty());
    const auto& order = reply->frame_order;
    const auto first_event = std::find(order.begin(), order.end(), "event");
    const auto first_outcome =
        std::find(order.begin(), order.end(), "outcome");
    ASSERT_NE(first_event, order.end());
    ASSERT_NE(first_outcome, order.end());
    EXPECT_LT(first_event - order.begin(), first_outcome - order.begin());

    // Per-request observer routing: every streamed event belongs to one of
    // this client's own scenarios, never the other client's.
    const std::vector<std::string> own_labels = {reply->outcomes[0].label,
                                                 reply->outcomes[1].label};
    for (const PipelineEvent& event : reply->events) {
      EXPECT_NE(std::find(own_labels.begin(), own_labels.end(),
                          event.scenario),
                own_labels.end())
          << "foreign event for scenario '" << event.scenario << "'";
    }
  }

  // (b) The shared session's caches fired across the two requests: whoever
  // ran second re-used the other's partitioned workload, and the duplicated
  // P=2 scenario re-used a whole mapping result.
  std::vector<PipelineEvent> all_events = reply_a.events;
  all_events.insert(all_events.end(), reply_b.events.begin(),
                    reply_b.events.end());
  EXPECT_GE(count_cache_hits(all_events, cache_names::kWorkload), 1);
  EXPECT_GE(count_cache_hits(all_events, cache_names::kMapping), 1);

  // (c) Wire results are bit-identical to a direct CompilerSession batch at
  // the same seeds (modulo wall-clock stage times).
  Graph reference_graph = graph_from_json(graph_to_json(small_cnn()));
  const HardwareConfig hw =
      fit_core_count(reference_graph, HardwareConfig::puma_default(), 3.0);
  CompilerSession reference(std::move(reference_graph), hw);
  for (int p : {2, 3, 4}) {
    reference.enqueue(tiny_options(p), "P=" + std::to_string(p));
  }
  std::map<std::string, std::string> expected;
  for (const ScenarioOutcome& outcome : reference.compile_all()) {
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    expected[outcome.label] =
        strip_stage_times(compile_result_to_json(*outcome.result)).dump(0);
  }
  for (const CompileReply* reply : {&reply_a, &reply_b}) {
    for (const serve::OutcomeMessage& outcome : reply->outcomes) {
      EXPECT_EQ(strip_stage_times(outcome.compile).dump(0),
                expected.at(outcome.label))
          << "wire result diverged for " << outcome.label;
    }
  }
}

// ---------------------------------------------------------------------------
// Structured per-scenario errors keep the connection alive.
// ---------------------------------------------------------------------------

TEST(ServeEndToEnd, InfeasibleScenarioReportsErrorWithoutKillingConnection) {
  ServerOptions options;
  options.unix_path = unique_socket_path("infeasible");
  CompileServer server(options);
  server.start();

  CompileRequest request = inline_graph_request({2});
  // A deliberately infeasible design point: one core with a single crossbar
  // cannot hold the model even unreplicated.
  ScenarioSpec cramped;
  cramped.label = "cramped";
  cramped.options = tiny_options(2);
  Json tiny_hw = Json::object();
  tiny_hw["core_count"] = 1;
  tiny_hw["xbars_per_core"] = 1;
  cramped.hardware = tiny_hw;
  request.scenarios.push_back(cramped);

  CompileClient client = CompileClient::connect(server.endpoint());
  const CompileReply reply = client.submit(request);

  ASSERT_EQ(reply.outcomes.size(), 2u);
  EXPECT_TRUE(reply.outcomes[0].ok) << reply.outcomes[0].error;
  EXPECT_FALSE(reply.outcomes[1].ok);
  EXPECT_FALSE(reply.outcomes[1].error.empty());
  // The machine-readable classification travels the wire: clients branch
  // on "capacity" instead of string-matching the what() text.
  EXPECT_EQ(reply.outcomes[1].error_kind, to_string(ErrorKind::kCapacity));
  EXPECT_EQ(reply.ok_count, 1);
  EXPECT_EQ(reply.error_count, 1);

  // The failure was scoped to its scenario: the connection still serves.
  EXPECT_TRUE(client.ping());
  const CompileReply again = client.submit(inline_graph_request({3}));
  EXPECT_EQ(again.error_count, 0);

  server.stop();
}

// ---------------------------------------------------------------------------
// v4 artifact frames: lowered streams ride the wire next to their outcomes.
// ---------------------------------------------------------------------------

TEST(ServeEndToEnd, LoweredScenariosStreamArtifactFramesInOrder) {
  ServerOptions options;
  options.unix_path = unique_socket_path("artifact");
  CompileServer server(options);
  server.start();

  // Three scenarios: two lowered (by different backends), one not.
  CompileRequest request = inline_graph_request({2, 3, 4});
  request.scenarios[0].options.backend = "isa-json";
  request.scenarios[2].options.backend = "sim";

  CompileClient client = CompileClient::connect(server.endpoint());
  const CompileReply reply = client.submit(request);
  server.stop();

  ASSERT_EQ(reply.outcomes.size(), 3u);
  EXPECT_EQ(reply.error_count, 0);
  ASSERT_EQ(reply.artifacts.size(), 2u);

  // Each artifact names its scenario and parses back into a validated
  // stream emitted by the backend that scenario asked for.
  EXPECT_EQ(reply.artifacts[0].index, 0);
  EXPECT_EQ(reply.artifacts[0].label, "P=2");
  EXPECT_EQ(reply.artifacts[1].index, 2);
  EXPECT_EQ(reply.artifacts[1].label, "P=4");
  const InstructionStream first =
      InstructionStream::from_json(reply.artifacts[0].artifact);
  EXPECT_EQ(first.backend, "isa-json");
  EXPECT_GT(first.total_ops, 0u);
  const InstructionStream second =
      InstructionStream::from_json(reply.artifacts[1].artifact);
  EXPECT_EQ(second.backend, "sim");

  // Wire order: each artifact frame follows its scenario's outcome, and
  // the un-lowered scenario contributes no artifact frame.
  std::vector<std::string> tail;
  for (const std::string& kind : reply.frame_order) {
    if (kind != "event") tail.push_back(kind);
  }
  const std::vector<std::string> expected = {"outcome", "artifact", "outcome",
                                             "outcome", "artifact", "done"};
  EXPECT_EQ(tail, expected);
}

TEST(ServeEndToEnd, RequestHardwareCoreCountIsNotRefitAway) {
  ServerOptions options;
  options.unix_path = unique_socket_path("pinned-cores");
  CompileServer server(options);
  server.start();

  // The client pins an infeasible machine through the request-level
  // hardware JSON (no `cores` field). Auto-fit must NOT kick in and
  // silently compile for a bigger machine: the scenario has to fail.
  CompileRequest request = inline_graph_request({2});
  Json tiny_hw = Json::object();
  tiny_hw["core_count"] = 1;
  tiny_hw["xbars_per_core"] = 1;
  request.hardware = tiny_hw;

  CompileClient client = CompileClient::connect(server.endpoint());
  const CompileReply reply = client.submit(request);
  ASSERT_EQ(reply.outcomes.size(), 1u);
  EXPECT_FALSE(reply.outcomes[0].ok)
      << "auto-fit overrode the request's pinned core_count";
  EXPECT_FALSE(reply.outcomes[0].error.empty());

  server.stop();
}

TEST(ServeEndToEnd, RequestLevelErrorThrowsButConnectionSurvives) {
  ServerOptions options;
  options.unix_path = unique_socket_path("reqerror");
  CompileServer server(options);
  server.start();

  CompileClient client = CompileClient::connect(server.endpoint());
  CompileRequest bad;
  bad.model = "not-a-model";
  bad.scenarios.push_back(scenario(2));
  EXPECT_THROW(client.submit(bad), ServeError);

  EXPECT_TRUE(client.ping());
  const CompileReply reply = client.submit(inline_graph_request({2}));
  EXPECT_EQ(reply.error_count, 0);

  server.stop();
}

// ---------------------------------------------------------------------------
// TCP transport and lifecycle.
// ---------------------------------------------------------------------------

TEST(ServeEndToEnd, TcpEphemeralPortServesAndStopsGracefully) {
  ServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;  // ephemeral: the server reports what it bound
  CompileServer server(options);
  server.start();
  ASSERT_GT(server.port(), 0);

  CompileClient client =
      CompileClient::connect_tcp("127.0.0.1", server.port());
  EXPECT_TRUE(client.ping());
  const CompileReply reply = client.submit(inline_graph_request({2}));
  EXPECT_EQ(reply.error_count, 0);
  EXPECT_EQ(server.requests_served(), 1u);

  server.stop();
  EXPECT_FALSE(server.running());
  // stop() is idempotent and the server restarts cleanly on a fresh port.
  server.stop();
  EXPECT_THROW(CompileClient::connect_tcp("127.0.0.1", server.port()),
               ServeError);
}

TEST(ServeEndToEnd, RefusesToReplaceANonSocketFileButReclaimsStaleSockets) {
  // A mistyped --unix pointing at a regular file must not delete it.
  const std::string file_path = unique_socket_path("notasocket");
  FILE* f = ::fopen(file_path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  ::fputs("precious\n", f);
  ::fclose(f);
  ServerOptions options;
  options.unix_path = file_path;
  CompileServer server(options);
  EXPECT_THROW(server.start(), ServeError);
  EXPECT_EQ(::access(file_path.c_str(), F_OK), 0);  // file survived
  ::unlink(file_path.c_str());

  // A stale socket file with no listener behind it is reclaimed.
  const std::string stale_path = unique_socket_path("stale");
  {
    serve::Socket dead = serve::listen_unix(stale_path);
  }  // closed without unlink: exactly what an unclean daemon death leaves
  ASSERT_EQ(::access(stale_path.c_str(), F_OK), 0);
  ServerOptions stale_options;
  stale_options.unix_path = stale_path;
  CompileServer reclaimer(stale_options);
  reclaimer.start();
  CompileClient client = CompileClient::connect(reclaimer.endpoint());
  EXPECT_TRUE(client.ping());
  reclaimer.stop();
}

TEST(ServeEndToEnd, StopRemovesTheUnixSocketFile) {
  ServerOptions options;
  options.unix_path = unique_socket_path("cleanup");
  CompileServer server(options);
  server.start();
  EXPECT_EQ(::access(options.unix_path.c_str(), F_OK), 0);

  // A second daemon must not steal a live daemon's socket path.
  CompileServer usurper(options);
  EXPECT_THROW(usurper.start(), ServeError);
  EXPECT_EQ(::access(options.unix_path.c_str(), F_OK), 0);

  server.stop();
  EXPECT_NE(::access(options.unix_path.c_str(), F_OK), 0);

  // With the first daemon gone the path is genuinely free again.
  usurper.start();
  CompileClient client = CompileClient::connect(usurper.endpoint());
  EXPECT_TRUE(client.ping());
  usurper.stop();
}

}  // namespace
}  // namespace pimcomp
