// Pinned fingerprint goldens. The disk tier names persisted artifacts by
// fingerprint(Graph/HardwareConfig/CompileOptions) and
// combine_fingerprints, so these values are an on-disk schema shared
// across processes and releases: if any of them drifts, every warm cache
// silently goes cold (or worse, a changed-but-colliding hash serves stale
// artifacts). A failure here is a one-bit decision, made explicit:
//  * unintended drift — revert the change that altered hashing; or
//  * intended drift — bump kCacheSchemaVersion in src/cache/ AND update
//    these goldens in the same commit.
//
// The values are pinned for the platform CI runs on (x86-64 Linux, LP64):
// scalar fields are hashed through their in-memory bytes, so a different
// ABI would legitimately produce different keys — and gets a disjoint
// cache namespace for free.

#include <gtest/gtest.h>

#include <string>

#include "cache/cache_store.hpp"
#include "core/session.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp {
namespace {

std::string hex_fingerprint(std::uint64_t fp) { return cache_key_hex(fp); }

TEST(FingerprintGoldens, CombineFingerprintsIsPinned) {
  EXPECT_EQ(hex_fingerprint(combine_fingerprints(0, 0)),
            "88201fb960ff6465");
  EXPECT_EQ(hex_fingerprint(combine_fingerprints(1, 2)),
            "7717980363c8e066");
  // Order-dependent by design: (a, b) and (b, a) are different identities.
  EXPECT_NE(combine_fingerprints(1, 2), combine_fingerprints(2, 1));
}

TEST(FingerprintGoldens, DefaultHardwareIsPinned) {
  EXPECT_EQ(hex_fingerprint(fingerprint(HardwareConfig::puma_default())),
            "ddb7cc463b90c234");
}

TEST(FingerprintGoldens, DefaultOptionsArePinned) {
  // v2: the lowering backend key joined the hash; v3: the island-model GA
  // knobs (ga.islands, ga.migration_interval) joined it (each schema bump
  // recorded in kCacheSchemaVersion).
  EXPECT_EQ(hex_fingerprint(fingerprint(CompileOptions{})),
            "f28d664c108e4262");

  // The persistent-cache config is execution environment, not identity: a
  // cache-enabled run must reuse artifacts a cache-less run produced.
  CompileOptions cached;
  cached.cache.dir = "/somewhere/else";
  cached.cache.read_only = true;
  EXPECT_EQ(fingerprint(cached), fingerprint(CompileOptions{}));

  // The seed IS identity (equal seeds are the bit-identical contract).
  CompileOptions reseeded;
  reseeded.seed = 2;
  EXPECT_NE(fingerprint(reseeded), fingerprint(CompileOptions{}));

  // The lowering backend is identity too: an artifact with a stream must
  // never be served to a requester that asked for a different backend
  // (or none at all).
  CompileOptions lowered;
  lowered.backend = "isa-json";
  EXPECT_NE(fingerprint(lowered), fingerprint(CompileOptions{}));

  // The island-model GA knobs are identity: islands=1 and islands=4 walk
  // different GA trajectories, so their artifacts must never be confused.
  CompileOptions single_island;
  single_island.ga.islands = 1;
  EXPECT_NE(fingerprint(single_island), fingerprint(CompileOptions{}));
  CompileOptions eager_migration;
  eager_migration.ga.migration_interval = 1;
  EXPECT_NE(fingerprint(eager_migration), fingerprint(CompileOptions{}));
}

TEST(FingerprintGoldens, ZooModelGraphsArePinned) {
  Graph squeezenet = zoo::build("squeezenet", 32);
  squeezenet.finalize();
  EXPECT_EQ(hex_fingerprint(fingerprint(squeezenet)), "d5637a2f49526308");

  Graph resnet = zoo::build("resnet18", 64);
  resnet.finalize();
  EXPECT_EQ(hex_fingerprint(fingerprint(resnet)), "84e1f5241a11110f");
}

TEST(FingerprintGoldens, ComposedCacheKeysArePinned) {
  // The exact keys the disk tier files artifacts under for the two zoo
  // models at default hardware and default options — end-to-end pins of
  // fingerprint() x combine_fingerprints() together.
  Graph squeezenet = zoo::build("squeezenet", 32);
  squeezenet.finalize();
  const std::uint64_t workload_fp = combine_fingerprints(
      fingerprint(squeezenet), fingerprint(HardwareConfig::puma_default()));
  const std::uint64_t mapping_key =
      combine_fingerprints(workload_fp, fingerprint(CompileOptions{}));
  EXPECT_EQ(hex_fingerprint(workload_fp), "8eed0b2275a84a85");
  EXPECT_EQ(hex_fingerprint(mapping_key), "8f5cc47c4268f4be");
}

}  // namespace
}  // namespace pimcomp
