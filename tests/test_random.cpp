#include "common/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

namespace pimcomp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ReseedRestoresStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(17);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 17);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(5);
  std::vector<bool> seen(8, false);
  for (int i = 0; i < 1000; ++i) seen[static_cast<std::size_t>(rng.uniform_int(8))] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Rng, UniformIntLargeBoundStaysInRange) {
  Rng rng(23);
  const int bound = std::numeric_limits<int>::max();
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(bound);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, bound);
  }
}

TEST(Rng, UniformIntIsUnbiasedAcrossBuckets) {
  // Regression for the old modulo implementation: with Lemire rejection
  // sampling every bucket of a non-power-of-two bound is hit ~equally
  // (expectation 400 per bucket; bounds are ~5 sigma, and the seed is
  // fixed so the test is deterministic).
  Rng rng(29);
  const int bound = 3 * 7 * 11;
  std::vector<int> counts(static_cast<std::size_t>(bound), 0);
  for (int i = 0; i < bound * 400; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(bound))];
  }
  for (int count : counts) {
    EXPECT_GT(count, 300);
    EXPECT_LT(count, 500);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_range(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, PickIndexValid) {
  Rng rng(19);
  const std::vector<int> v{1, 2, 3};
  for (int i = 0; i < 100; ++i) {
    const int idx = rng.pick_index(v);
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 3);
  }
}

}  // namespace
}  // namespace pimcomp
