// Island-model GA contracts (docs/api.md "Genetic-algorithm configuration"):
//
//  * islands=1 replays the pre-island sequential GA bit for bit — pinned
//    against goldens captured from the sequential implementation (same
//    chromosome digest, same final fitness, same evaluation count);
//  * equal (seed, islands) is bit-reproducible at ANY thread count — the
//    pool is execution environment, never identity;
//  * the SoA PopulationEvaluator computes bitwise the same fitness as the
//    scalar ht_fitness / LLFitnessContext::evaluate it restructures;
//  * at a realistic budget, the island model's final fitness is no worse
//    than the sequential trajectory's at an equal generation budget.
//
// A digest drift here is a one-bit decision exactly like the fingerprint
// goldens: revert the drift, or re-pin alongside a kCacheSchemaVersion bump
// (the GA trajectory is cache identity through fingerprint(CompileOptions)).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/session.hpp"
#include "graph/builder.hpp"
#include "graph/zoo/zoo.hpp"
#include "mapping/fitness.hpp"
#include "mapping/genetic_mapper.hpp"

namespace pimcomp {
namespace {

/// FNV-1a over the encoded chromosome: a compact pin of the whole solution.
std::uint64_t digest(const std::vector<std::int64_t>& chromosome) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::int64_t g : chromosome) {
    for (int b = 0; b < 8; ++b) {
      h ^= static_cast<unsigned char>(g >> (8 * b));
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

/// A small conv net that is NOT in the zoo: exercises the mapper on a graph
/// shape the other tests don't share, and keeps the goldens cheap.
Graph small_cnn() {
  GraphBuilder b("island-cnn", {3, 16, 16});
  NodeId x = b.input();
  x = b.conv_relu(x, 8, 3, 1, 1, "conv1");
  x = b.max_pool(x, 2, 2, 0, "pool1");
  x = b.conv_relu(x, 16, 3, 1, 1, "conv2");
  x = b.fc(b.flatten(x, "flatten"), 10, "classifier");
  b.softmax(x, "prob");
  return b.build();
}

struct GoldenCase {
  const char* model;  // "cnn" or "squeezenet"
  PipelineMode mode;
  std::uint64_t seed;
  std::uint64_t digest;
  double final_best;
  int evaluations;
};

// Captured from the sequential (pre-island) GeneticMapper at population 12,
// generations 10, auto-fitted cores (3x headroom), before the island
// rewrite landed. islands=1 must reproduce every field exactly.
const GoldenCase kSequentialGoldens[] = {
    {"cnn", PipelineMode::kHighThroughput, 1, 0x19978f96afe29497ull,
     1000000.0, 75},
    {"cnn", PipelineMode::kHighThroughput, 7, 0x82441887aba5f1dfull,
     1000000.0, 79},
    {"cnn", PipelineMode::kLowLatency, 1, 0x43e15c37e848df21ull, 4214000.0,
     65},
    {"cnn", PipelineMode::kLowLatency, 7, 0x23455214f9fcae91ull, 4210000.0,
     58},
    {"squeezenet", PipelineMode::kHighThroughput, 1, 0x42893a24f6c47f56ull,
     3709000.0, 67},
    {"squeezenet", PipelineMode::kHighThroughput, 7, 0x42893a24f6c47f56ull,
     3709000.0, 66},
    {"squeezenet", PipelineMode::kLowLatency, 1, 0x8fe26aeda71284afull,
     20014722.842025705, 67},
    {"squeezenet", PipelineMode::kLowLatency, 7, 0x64269e34c0a171bfull,
     19958945.064247925, 65},
};

Graph golden_graph(const std::string& model) {
  return model == "cnn" ? small_cnn() : zoo::build("squeezenet", 32);
}

TEST(IslandGa, SingleIslandReproducesSequentialGoldens) {
  for (const GoldenCase& c : kSequentialGoldens) {
    SCOPED_TRACE(std::string(c.model) + " " + to_string(c.mode) + " seed=" +
                 std::to_string(c.seed));
    Graph graph = golden_graph(c.model);
    const HardwareConfig hw =
        fit_core_count(graph, HardwareConfig::puma_default(), 3.0);
    const Workload workload(graph, hw);
    GaConfig config;
    config.population = 12;
    config.generations = 10;
    config.islands = 1;
    GeneticMapper mapper(config);
    MapperOptions options;
    options.mode = c.mode;
    options.seed = c.seed;
    const MappingSolution s = mapper.map(workload, options);
    EXPECT_EQ(digest(s.encode()), c.digest);
    EXPECT_EQ(mapper.last_stats().final_best, c.final_best);
    EXPECT_EQ(mapper.last_stats().evaluations, c.evaluations);
  }
}

TEST(IslandGa, BitIdenticalAcrossThreadCounts) {
  // Equal (seed, islands) must produce byte-identical solutions whether the
  // islands run on 1, 2, or 8 workers — or on the mapper's own default
  // pool. This is the wire/caching contract: fingerprint(CompileOptions)
  // hashes ga.islands but no thread count exists to hash.
  Graph graph = zoo::build("squeezenet", 32);
  const HardwareConfig hw =
      fit_core_count(graph, HardwareConfig::puma_default(), 3.0);
  const Workload workload(graph, hw);
  for (const auto mode :
       {PipelineMode::kHighThroughput, PipelineMode::kLowLatency}) {
    SCOPED_TRACE(to_string(mode));
    GaConfig config;
    config.population = 16;
    config.generations = 8;
    config.islands = 4;
    config.migration_interval = 3;

    std::vector<std::vector<std::int64_t>> encodings;
    std::vector<double> finals;
    for (const int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      GeneticMapper mapper(config);
      MapperOptions options;
      options.mode = mode;
      options.seed = 42;
      options.pool = &pool;
      const MappingSolution s = mapper.map(workload, options);
      encodings.push_back(s.encode());
      finals.push_back(mapper.last_stats().final_best);
    }
    {
      // Default pool (options.pool == nullptr): same contract.
      GeneticMapper mapper(config);
      MapperOptions options;
      options.mode = mode;
      options.seed = 42;
      const MappingSolution s = mapper.map(workload, options);
      encodings.push_back(s.encode());
      finals.push_back(mapper.last_stats().final_best);
    }
    for (std::size_t i = 1; i < encodings.size(); ++i) {
      EXPECT_EQ(encodings[i], encodings[0]) << "pool variant " << i;
      EXPECT_EQ(finals[i], finals[0]) << "pool variant " << i;
    }
  }
}

TEST(IslandGa, PopulationEvaluatorMatchesScalarFitness) {
  // The SoA evaluator is a restructuring, not a reimplementation: on any
  // solution it must produce bitwise the fitness of the scalar paths it
  // replaced (same operations in the same association order).
  Graph graph = zoo::build("squeezenet", 32);
  const HardwareConfig hw =
      fit_core_count(graph, HardwareConfig::puma_default(), 3.0);
  const Workload workload(graph, hw);
  const FitnessParams params = FitnessParams::from(hw, 1);
  const LLFitnessContext ll_context(workload);
  MapperOptions options;

  for (const auto mode :
       {PipelineMode::kHighThroughput, PipelineMode::kLowLatency}) {
    SCOPED_TRACE(to_string(mode));
    PopulationEvaluator evaluator(workload, params, mode, ll_context,
                                  /*slots=*/1, options.max_nodes_per_core);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      SCOPED_TRACE("seed=" + std::to_string(seed));
      // Varied solutions: whatever a short GA run lands on at this seed.
      GaConfig config;
      config.population = 6;
      config.generations = 3;
      config.seed_baseline = seed % 2 == 0;
      GeneticMapper mapper(config);
      MapperOptions run = options;
      run.mode = mode;
      run.seed = seed;
      const MappingSolution s = mapper.map(workload, run);

      evaluator.load(0, s);
      const double expected = mode == PipelineMode::kHighThroughput
                                  ? ht_fitness(s, params)
                                  : ll_context.evaluate(s, params);
      EXPECT_EQ(evaluator.evaluate(0), expected);  // bitwise, not NEAR
    }
  }
}

TEST(IslandGa, IslandsNoWorseThanSequentialAtEqualBudget) {
  // The acceptance bar for turning islands on by default: at an equal
  // generation budget (the default 40 x 60, migrations actually firing),
  // the island model's final fitness must match or beat the sequential
  // trajectory's. Two stochastic searches don't dominate each other on
  // every seed — the contract is the mean over a fixed seed set (the
  // per-island memetic baseline seeding is what makes it hold; see
  // GeneticMapper::map). Both searches are deterministic per (seed,
  // islands), so this is a pinned comparison, not a flaky one.
  Graph graph = zoo::build("squeezenet", 32);
  const HardwareConfig hw =
      fit_core_count(graph, HardwareConfig::puma_default(), 3.0);
  const Workload workload(graph, hw);
  for (const auto mode :
       {PipelineMode::kHighThroughput, PipelineMode::kLowLatency}) {
    SCOPED_TRACE(to_string(mode));
    double sum[2] = {0.0, 0.0};
    for (const std::uint64_t seed : {1ull, 7ull, 13ull}) {
      for (const int islands : {1, 4}) {
        GaConfig config;
        config.population = 40;
        config.generations = 60;
        config.islands = islands;
        GeneticMapper mapper(config);
        MapperOptions options;
        options.mode = mode;
        options.seed = seed;
        mapper.map(workload, options);
        sum[islands == 1 ? 0 : 1] += mapper.last_stats().final_best;
      }
    }
    EXPECT_LE(sum[1], sum[0]);
  }
}

TEST(IslandGa, IslandCountClampsToPopulation) {
  // More islands than individuals degrades gracefully: islands are clamped
  // to the population, never built empty.
  Graph graph = small_cnn();
  const HardwareConfig hw =
      fit_core_count(graph, HardwareConfig::puma_default(), 3.0);
  const Workload workload(graph, hw);
  GaConfig config;
  config.population = 3;
  config.generations = 4;
  config.islands = 64;
  config.migration_interval = 2;
  GeneticMapper mapper(config);
  MapperOptions options;
  options.seed = 9;
  const MappingSolution s = mapper.map(workload, options);
  EXPECT_NO_THROW(s.validate());
  EXPECT_GT(mapper.last_stats().evaluations, 0);
}

}  // namespace
}  // namespace pimcomp
