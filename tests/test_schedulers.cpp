#include <gtest/gtest.h>

#include <map>

#include "graph/zoo/zoo.hpp"
#include "mapping/genetic_mapper.hpp"
#include "mapping/puma_mapper.hpp"
#include "schedule/ht_scheduler.hpp"
#include "schedule/ll_scheduler.hpp"

namespace pimcomp {
namespace {

/// Verifies the per-channel FIFO pairing invariant the simulator relies on:
/// on every (src, dst, tag) channel, the k-th send's byte count equals the
/// k-th recv's, and no channel has more recvs than sends.
void expect_channels_consistent(const Schedule& schedule) {
  std::map<std::tuple<int, int, int>, std::vector<std::int64_t>> sends, recvs;
  for (int c = 0; c < schedule.core_count(); ++c) {
    for (const Operation& op :
         schedule.programs[static_cast<std::size_t>(c)]) {
      if (op.kind == OpKind::kCommSend) {
        sends[{c, op.peer, op.tag}].push_back(op.bytes);
      } else if (op.kind == OpKind::kCommRecv) {
        recvs[{op.peer, c, op.tag}].push_back(op.bytes);
      }
    }
  }
  for (const auto& [key, recv_list] : recvs) {
    const auto it = sends.find(key);
    ASSERT_NE(it, sends.end()) << "recvs without sends";
    ASSERT_GE(it->second.size(), recv_list.size()) << "more recvs than sends";
    for (std::size_t i = 0; i < recv_list.size(); ++i) {
      ASSERT_EQ(it->second[i], recv_list[i])
          << "byte mismatch at message " << i;
    }
  }
}

std::int64_t expected_mvms(const MappingSolution& solution) {
  // Every AG performs one MVM per window of its replica's range.
  std::int64_t total = 0;
  const Workload& w = solution.workload();
  for (const NodePartition& p : w.partitions()) {
    const int replication = solution.replication(p.node);
    const int cyc = solution.cycles(p.node);
    for (int r = 0; r < replication; ++r) {
      const int begin = std::min(p.windows, r * cyc);
      const int end = std::min(p.windows, (r + 1) * cyc);
      total += static_cast<std::int64_t>(end - begin) * p.ags_per_replica();
    }
  }
  return total;
}

class SchedulerFixture : public ::testing::Test {
 protected:
  SchedulerFixture() : graph_(zoo::squeezenet(64)) {
    hw_ = HardwareConfig::puma_default();
    hw_.core_count = 36;
    workload_ = std::make_unique<Workload>(graph_, hw_);
    GaConfig ga;
    ga.population = 10;
    ga.generations = 8;
    GeneticMapper mapper(ga);
    MapperOptions options;
    solution_ =
        std::make_unique<MappingSolution>(mapper.map(*workload_, options));
  }

  Graph graph_;
  HardwareConfig hw_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<MappingSolution> solution_;
};

TEST_F(SchedulerFixture, HtChannelsConsistent) {
  const Schedule s = schedule_ht(*solution_, {});
  expect_channels_consistent(s);
  EXPECT_EQ(s.core_count(), 36);
  EXPECT_GT(s.total_ops, 0);
}

TEST_F(SchedulerFixture, HtEmitsEveryMvm) {
  const Schedule s = schedule_ht(*solution_, {});
  EXPECT_EQ(s.count(OpKind::kMvm), expected_mvms(*solution_));
}

TEST_F(SchedulerFixture, HtStagesThroughGlobalMemory) {
  const Schedule s = schedule_ht(*solution_, {});
  EXPECT_GT(s.count(OpKind::kLoadGlobal), 0);
  EXPECT_GT(s.count(OpKind::kStoreGlobal), 0);
  // Stores carry every output activation of every replica's windows:
  // sum over partitions of windows * matrix_cols * act_bytes.
  std::int64_t expected_store = 0;
  for (const NodePartition& p : workload_->partitions()) {
    expected_store +=
        static_cast<std::int64_t>(p.windows) * p.matrix_cols * 2;
  }
  // Standalone VEC nodes also store their outputs; stores must cover at
  // least the crossbar outputs.
  EXPECT_GE(s.total_bytes(OpKind::kStoreGlobal), expected_store);
}

TEST_F(SchedulerFixture, HtFlushWindowsControlsBatches) {
  HtScheduleOptions opt1;
  opt1.flush_windows = 1;
  HtScheduleOptions opt8;
  opt8.flush_windows = 8;
  const Schedule s1 = schedule_ht(*solution_, opt1);
  const Schedule s8 = schedule_ht(*solution_, opt8);
  // Same MVM work, but smaller batches mean more load/store operations.
  EXPECT_EQ(s1.count(OpKind::kMvm), s8.count(OpKind::kMvm));
  EXPECT_GT(s1.count(OpKind::kLoadGlobal), s8.count(OpKind::kLoadGlobal));
}

TEST_F(SchedulerFixture, HtMemoryPoliciesOrderPeakUsage) {
  HtScheduleOptions naive;
  naive.memory_policy = MemoryPolicy::kNaive;
  HtScheduleOptions ag;
  ag.memory_policy = MemoryPolicy::kAgReuse;
  const Schedule s_naive = schedule_ht(*solution_, naive);
  const Schedule s_ag = schedule_ht(*solution_, ag);
  std::int64_t peak_naive = 0, peak_ag = 0, spill_naive = 0, spill_ag = 0;
  for (std::int64_t v : s_naive.peak_local_bytes) peak_naive = std::max(peak_naive, v);
  for (std::int64_t v : s_ag.peak_local_bytes) peak_ag = std::max(peak_ag, v);
  for (std::int64_t v : s_naive.spill_bytes) spill_naive += v;
  for (std::int64_t v : s_ag.spill_bytes) spill_ag += v;
  EXPECT_GE(peak_naive, peak_ag);
  EXPECT_GE(spill_naive, spill_ag);  // reuse reduces global overflow traffic
}

TEST_F(SchedulerFixture, HtUsageStampsBounded) {
  const Schedule s = schedule_ht(*solution_, {});
  for (const auto& program : s.programs) {
    for (const Operation& op : program) {
      if (op.local_usage >= 0) {
        EXPECT_LE(op.local_usage, hw_.local_memory_bytes);
      }
    }
  }
}

TEST_F(SchedulerFixture, LlChannelsConsistent) {
  const Schedule s = schedule_ll(*solution_, {});
  expect_channels_consistent(s);
  EXPECT_GT(s.count(OpKind::kCommSend), 0);
}

TEST_F(SchedulerFixture, LlEmitsEveryMvm) {
  const Schedule s = schedule_ll(*solution_, {});
  EXPECT_EQ(s.count(OpKind::kMvm), expected_mvms(*solution_));
}

TEST_F(SchedulerFixture, LlPolicyInvariantMvmCount) {
  LlScheduleOptions naive;
  naive.memory_policy = MemoryPolicy::kNaive;
  LlScheduleOptions ag;
  ag.memory_policy = MemoryPolicy::kAgReuse;
  EXPECT_EQ(schedule_ll(*solution_, naive).count(OpKind::kMvm),
            schedule_ll(*solution_, ag).count(OpKind::kMvm));
}

TEST_F(SchedulerFixture, LlMemoryPoliciesOrderPeakUsage) {
  std::map<MemoryPolicy, std::int64_t> peak;
  for (MemoryPolicy policy : {MemoryPolicy::kNaive, MemoryPolicy::kAddReuse,
                              MemoryPolicy::kAgReuse}) {
    LlScheduleOptions opt;
    opt.memory_policy = policy;
    const Schedule s = schedule_ll(*solution_, opt);
    std::int64_t p = 0;
    for (std::int64_t v : s.peak_local_bytes) p = std::max(p, v);
    peak[policy] = p;
  }
  EXPECT_GE(peak[MemoryPolicy::kNaive], peak[MemoryPolicy::kAddReuse]);
  EXPECT_GE(peak[MemoryPolicy::kAddReuse], peak[MemoryPolicy::kAgReuse]);
  EXPECT_GT(peak[MemoryPolicy::kNaive], peak[MemoryPolicy::kAgReuse]);
}

TEST_F(SchedulerFixture, LlLoadsInputAndStoresResult) {
  const Schedule s = schedule_ll(*solution_, {});
  EXPECT_GT(s.count(OpKind::kLoadGlobal), 0);
  EXPECT_GT(s.count(OpKind::kStoreGlobal), 0);
}

TEST(SchedulerTopology, ResnetResidualsScheduleInBothModes) {
  Graph g = zoo::resnet18(64);
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 288;
  const Workload w(g, hw);
  PumaMapper mapper;
  MapperOptions options;
  const MappingSolution s = mapper.map(w, options);
  const Schedule ht = schedule_ht(s, {});
  const Schedule ll = schedule_ll(s, {});
  expect_channels_consistent(ht);
  expect_channels_consistent(ll);
  EXPECT_EQ(ht.count(OpKind::kMvm), ll.count(OpKind::kMvm));
}

TEST(SchedulerTopology, GooglenetConcatsScheduleInBothModes) {
  Graph g = zoo::googlenet(64);
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 180;
  const Workload w(g, hw);
  PumaMapper mapper;
  MapperOptions options;
  const MappingSolution s = mapper.map(w, options);
  expect_channels_consistent(schedule_ht(s, {}));
  expect_channels_consistent(schedule_ll(s, {}));
}

}  // namespace
}  // namespace pimcomp
