// Cross-restart warm start of pimcompd: a daemon with --cache-dir compiles
// a batch, is torn down completely, and a brand-new daemon on the same
// directory serves the identical request from the disk tier — the client
// sees a `cache_hit` frame whose source is "disk", no mapping stage ever
// runs, and the wire results are byte-identical modulo stage times.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "cache/cache_config.hpp"
#include "core/session.hpp"
#include "core/trace.hpp"
#include "graph/builder.hpp"
#include "graph/serialize.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace pimcomp {
namespace {

using serve::CompileClient;
using serve::CompileReply;
using serve::CompileRequest;
using serve::CompileServer;
using serve::ScenarioSpec;
using serve::ServerOptions;

namespace fs = std::filesystem;

struct TempDir {
  TempDir() {
    std::string pattern =
        (fs::temp_directory_path() / "pimcomp-serve-cache-XXXXXX").string();
    char* made = ::mkdtemp(pattern.data());
    EXPECT_NE(made, nullptr);
    path = pattern;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

Graph small_cnn() {
  GraphBuilder b("restart-cnn", {3, 16, 16});
  NodeId x = b.input();
  x = b.conv_relu(x, 8, 3, /*stride=*/1, /*padding=*/1, "conv1");
  x = b.fc(b.flatten(x, "flatten"), 10, "classifier");
  b.softmax(x, "prob");
  return b.build();
}

CompileRequest request_for(std::vector<int> parallelisms) {
  CompileRequest request;
  request.graph = graph_to_json(small_cnn());
  for (int p : parallelisms) {
    ScenarioSpec spec;
    spec.label = "P=" + std::to_string(p);
    spec.options.mode = PipelineMode::kLowLatency;
    spec.options.parallelism_degree = p;
    spec.options.ga.population = 6;
    spec.options.ga.generations = 3;
    request.scenarios.push_back(std::move(spec));
  }
  return request;
}

std::string socket_path(const std::string& tag) {
  return "/tmp/pimcomp-restart-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

Json strip_stage_times(const Json& compile) {
  Json out = Json::object();
  for (const auto& [key, value] : compile.items()) {
    if (key != "stage_times") out[key] = value;
  }
  return out;
}

int count_events(const std::vector<PipelineEvent>& events,
                 PipelineEvent::Kind kind, const std::string& name,
                 const std::string& source = "") {
  return static_cast<int>(std::count_if(
      events.begin(), events.end(), [&](const PipelineEvent& event) {
        return event.kind == kind && event.name == name &&
               (source.empty() || event.source == source);
      }));
}

TEST(ServeRestart, FirstRequestAfterRestartIsServedFromTheDiskTier) {
  TempDir cache_dir;

  // --- First daemon lifetime: populate the cache over the wire. -----------
  CompileReply cold;
  {
    ServerOptions options;
    options.unix_path = socket_path("cold");
    options.cache.dir = cache_dir.path;
    CompileServer server(options);
    server.start();
    CompileClient client = CompileClient::connect(server.endpoint());
    cold = client.submit(request_for({2, 3}));
    server.stop();
  }  // daemon gone; only the cache directory survives
  ASSERT_EQ(cold.outcomes.size(), 2u);
  ASSERT_TRUE(cold.all_ok());
  // The cold batch computed: mapping stages ran, artifacts were persisted
  // (cache_store frames with source "disk" streamed to the client).
  EXPECT_GE(count_events(cold.events, PipelineEvent::Kind::kStageBegin,
                         stage_names::kMapping),
            1);
  EXPECT_EQ(count_events(cold.events, PipelineEvent::Kind::kCacheStore,
                         cache_names::kMapping, cache_sources::kDisk),
            2);

  // --- Second daemon lifetime: same directory, fresh everything. ----------
  ServerOptions options;
  options.unix_path = socket_path("warm");
  options.cache.dir = cache_dir.path;
  CompileServer server(options);
  server.start();
  CompileClient client = CompileClient::connect(server.endpoint());
  const CompileReply warm = client.submit(request_for({2, 3}));
  server.stop();

  ASSERT_EQ(warm.outcomes.size(), 2u);
  ASSERT_TRUE(warm.all_ok());

  // The acceptance frame: a cache_hit whose source is "disk".
  EXPECT_EQ(count_events(warm.events, PipelineEvent::Kind::kCacheHit,
                         cache_names::kMapping, cache_sources::kDisk),
            2);
  // And the mapping stage never ran after the restart.
  EXPECT_EQ(count_events(warm.events, PipelineEvent::Kind::kStageBegin,
                         stage_names::kMapping),
            0);

  // Wire results byte-identical to the cold run's, modulo stage times
  // (the warm ones are zero — nothing ran).
  for (std::size_t i = 0; i < warm.outcomes.size(); ++i) {
    SCOPED_TRACE(warm.outcomes[i].label);
    EXPECT_EQ(strip_stage_times(warm.outcomes[i].compile).dump(2),
              strip_stage_times(cold.outcomes[i].compile).dump(2));
    EXPECT_EQ(warm.outcomes[i].simulation.dump(2),
              cold.outcomes[i].simulation.dump(2));
    EXPECT_EQ(warm.outcomes[i].compile.at("stage_times").get("mapping_s",
                                                             -1.0),
              0.0);
  }
}

TEST(ServeRestart, DaemonWithoutCacheDirStaysCold) {
  // Control: no --cache-dir, a restart forgets everything (guards against
  // the cache accidentally becoming non-optional).
  CompileReply first;
  {
    ServerOptions options;
    options.unix_path = socket_path("nocache-a");
    CompileServer server(options);
    server.start();
    CompileClient client = CompileClient::connect(server.endpoint());
    first = client.submit(request_for({2}));
    server.stop();
  }
  ServerOptions options;
  options.unix_path = socket_path("nocache-b");
  CompileServer server(options);
  server.start();
  CompileClient client = CompileClient::connect(server.endpoint());
  const CompileReply second = client.submit(request_for({2}));
  server.stop();

  EXPECT_EQ(count_events(second.events, PipelineEvent::Kind::kCacheHit,
                         cache_names::kMapping),
            0);
  EXPECT_GE(count_events(second.events, PipelineEvent::Kind::kStageBegin,
                         stage_names::kMapping),
            1);
  // Determinism across processes even without the cache: equal seeds.
  ASSERT_TRUE(first.all_ok());
  ASSERT_TRUE(second.all_ok());
  EXPECT_EQ(strip_stage_times(second.outcomes[0].compile).dump(2),
            strip_stage_times(first.outcomes[0].compile).dump(2));
}

}  // namespace
}  // namespace pimcomp
