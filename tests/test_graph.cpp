#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/builder.hpp"

namespace pimcomp {
namespace {

Node input_node(TensorShape shape) {
  Node n;
  n.type = OpType::kInput;
  n.name = "input";
  n.output_shape = shape;
  return n;
}

TEST(TensorShape, ElementsAndBytes) {
  const TensorShape s{3, 224, 224};
  EXPECT_EQ(s.elements(), 3 * 224 * 224);
  EXPECT_EQ(s.bytes(16), 3 * 224 * 224 * 2);
  EXPECT_EQ(s.to_string(), "3x224x224");
  EXPECT_TRUE(s.valid());
  EXPECT_FALSE(TensorShape{}.valid());
  EXPECT_FALSE((TensorShape{0, 3, 3}).valid());
}

TEST(OpType, RoundTripNames) {
  for (OpType t : {OpType::kInput, OpType::kConv, OpType::kFC, OpType::kPool,
                   OpType::kRelu, OpType::kConcat, OpType::kEltwise,
                   OpType::kFlatten, OpType::kSoftmax}) {
    EXPECT_EQ(op_type_from_string(to_string(t)), t);
  }
  EXPECT_THROW(op_type_from_string("bogus"), GraphError);
}

TEST(OpType, Classification) {
  EXPECT_TRUE(is_crossbar_op(OpType::kConv));
  EXPECT_TRUE(is_crossbar_op(OpType::kFC));
  EXPECT_FALSE(is_crossbar_op(OpType::kPool));
  EXPECT_TRUE(is_vector_op(OpType::kRelu));
  EXPECT_TRUE(is_vector_op(OpType::kEltwise));
  EXPECT_FALSE(is_vector_op(OpType::kConcat));
  EXPECT_FALSE(is_vector_op(OpType::kConv));
}

TEST(Graph, AddAssignsSequentialIds) {
  Graph g("test");
  EXPECT_EQ(g.add_node(input_node({3, 8, 8})), 0);
  Node conv;
  conv.type = OpType::kConv;
  conv.inputs = {0};
  conv.conv = {8, 3, 3, 1, 1, 1};
  EXPECT_EQ(g.add_node(conv), 1);
  EXPECT_EQ(g.node_count(), 2);
}

TEST(Graph, RejectsForwardReferences) {
  Graph g("test");
  g.add_node(input_node({3, 8, 8}));
  Node bad;
  bad.type = OpType::kRelu;
  bad.inputs = {5};  // refers to a node that does not exist yet
  EXPECT_THROW(g.add_node(bad), GraphError);
}

TEST(Graph, FinalizeRequiresInputFirst) {
  Graph g("test");
  Node conv;
  conv.type = OpType::kConv;
  conv.output_shape = {1, 1, 1};
  EXPECT_THROW(
      {
        g.add_node(conv);
        g.finalize();
      },
      GraphError);
}

TEST(Graph, FinalizeRejectsSecondInput) {
  Graph g("test");
  g.add_node(input_node({3, 8, 8}));
  g.add_node(input_node({3, 8, 8}));
  EXPECT_THROW(g.finalize(), GraphError);
}

TEST(Graph, FinalizeRejectsOrphanNodes) {
  Graph g("test");
  g.add_node(input_node({3, 8, 8}));
  Node orphan;
  orphan.type = OpType::kRelu;  // no inputs
  g.add_node(orphan);
  EXPECT_THROW(g.finalize(), GraphError);
}

TEST(Graph, ConsumersAndSinks) {
  GraphBuilder b("t", {3, 8, 8});
  const NodeId c1 = b.conv(b.input(), 4, 3, 1, 1, "c1");
  const NodeId r1 = b.relu(c1);
  const NodeId c2 = b.conv(r1, 4, 3, 1, 1, "c2a");
  const NodeId c3 = b.conv(r1, 4, 3, 1, 1, "c2b");
  Graph g = b.build();

  EXPECT_EQ(g.consumers(c1).size(), 1u);
  EXPECT_EQ(g.consumers(r1).size(), 2u);
  ASSERT_EQ(g.sinks().size(), 2u);
  EXPECT_EQ(g.sinks()[0], c2);
  EXPECT_EQ(g.sinks()[1], c3);
}

TEST(Graph, WeightAndMacTotals) {
  GraphBuilder b("t", {3, 8, 8});
  NodeId x = b.conv(b.input(), 4, 3, 1, 1, "c");  // 3*3*3*4 = 108 params
  x = b.fc(b.flatten(x), 10);                     // 4*8*8*10 = 2560 params
  Graph g = b.build();
  EXPECT_EQ(g.total_weight_params(), 108 + 2560);
  // conv MACs = params * out_h * out_w = 108 * 64; fc MACs = params.
  EXPECT_EQ(g.total_macs(), 108 * 64 + 2560);
  EXPECT_EQ(g.crossbar_node_count(), 2);
}

TEST(Graph, CannotAddAfterFinalize) {
  GraphBuilder b("t", {3, 8, 8});
  b.conv(b.input(), 4, 3);
  Graph g = b.build();
  Node extra;
  extra.type = OpType::kRelu;
  extra.inputs = {0};
  EXPECT_THROW(g.add_node(extra), ConfigError);
}

TEST(Graph, AutoNamesUnnamedNodes) {
  GraphBuilder b("t", {3, 8, 8});
  const NodeId c = b.conv(b.input(), 4, 3);
  Graph g = b.build();
  EXPECT_FALSE(g.node(c).name.empty());
}

}  // namespace
}  // namespace pimcomp
