#include "core/compiler.hpp"

#include <gtest/gtest.h>

#include "core/compile_report.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp {
namespace {

GaConfig tiny_ga() {
  GaConfig ga;
  ga.population = 10;
  ga.generations = 8;
  return ga;
}

TEST(FitCoreCount, RoundsToChipsAndFits) {
  Graph g = zoo::resnet18(64);
  const HardwareConfig hw =
      fit_core_count(g, HardwareConfig::puma_default(), 3.0);
  EXPECT_EQ(hw.core_count % hw.cores_per_chip, 0);
  Graph g2 = zoo::resnet18(64);
  EXPECT_NO_THROW(Workload(g2, hw));  // after finalize inside Workload
}

TEST(Compiler, EndToEndHighThroughput) {
  Graph g = zoo::squeezenet(64);
  HardwareConfig hw = HardwareConfig::puma_default();
  Compiler compiler(std::move(g), hw);
  CompileOptions opt;
  opt.mode = PipelineMode::kHighThroughput;
  opt.ga = tiny_ga();
  const CompileResult result = compiler.compile(opt);
  EXPECT_GT(result.schedule.total_ops, 0);
  EXPECT_GT(result.estimated_fitness, 0.0);
  EXPECT_EQ(result.mapper_name, "pimcomp-ga");
  EXPECT_GT(result.stage_times.total(), 0.0);

  const SimReport sim = compiler.simulate(result);
  EXPECT_GT(sim.makespan, 0);
  EXPECT_GT(sim.throughput_per_sec(), 0.0);
  EXPECT_GT(sim.mvm_ops, 0);
}

TEST(Compiler, EndToEndLowLatency) {
  Graph g = zoo::squeezenet(64);
  Compiler compiler(std::move(g), HardwareConfig::puma_default());
  CompileOptions opt;
  opt.mode = PipelineMode::kLowLatency;
  opt.ga = tiny_ga();
  const CompileResult result = compiler.compile(opt);
  const SimReport sim = compiler.simulate(result);
  EXPECT_GT(sim.makespan, 0);
  EXPECT_GT(sim.comm_messages, 0);
}

TEST(Compiler, DeterministicBySeed) {
  auto run = [](std::uint64_t seed) {
    Graph g = zoo::squeezenet(64);
    Compiler compiler(std::move(g), HardwareConfig::puma_default());
    CompileOptions opt;
    opt.ga = tiny_ga();
    // The baseline seed is deterministic by construction; exercise the
    // stochastic path.
    opt.ga.seed_baseline = false;
    opt.seed = seed;
    const CompileResult r = compiler.compile(opt);
    return std::make_pair(r.solution.encode(), r.schedule.total_ops);
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7).first, run(8).first);
}

TEST(Compiler, AllBuiltinMappersWork) {
  for (MapperKind kind :
       {MapperKind::kGenetic, MapperKind::kPumaLike, MapperKind::kGreedy}) {
    Graph g = zoo::squeezenet(64);
    Compiler compiler(std::move(g), HardwareConfig::puma_default());
    CompileOptions opt;
    opt.mapper = registry_key(kind);
    opt.ga = tiny_ga();
    const CompileResult result = compiler.compile(opt);
    EXPECT_EQ(result.mapper_name, to_string(kind));
    EXPECT_NO_THROW(compiler.simulate(result));
  }
}

TEST(Compiler, MemoryPolicyOrderingInLLMode) {
  Graph g = zoo::squeezenet(64);
  Compiler compiler(std::move(g), HardwareConfig::puma_default());
  double avg_naive = 0.0, avg_ag = 0.0;
  for (MemoryPolicy policy : {MemoryPolicy::kNaive, MemoryPolicy::kAgReuse}) {
    CompileOptions opt;
    opt.mode = PipelineMode::kLowLatency;
    opt.memory_policy = policy;
    opt.ga = tiny_ga();
    const SimReport sim = compiler.simulate(compiler.compile(opt));
    if (policy == MemoryPolicy::kNaive) {
      avg_naive = sim.avg_local_memory_bytes;
    } else {
      avg_ag = sim.avg_local_memory_bytes;
    }
  }
  // Fig 10 (LL): AG-reuse uses less local memory than naive.
  EXPECT_LT(avg_ag, avg_naive);
}

TEST(Compiler, MemoryPolicyReducesGlobalTrafficInHT) {
  Graph g = zoo::squeezenet(64);
  Compiler compiler(std::move(g), HardwareConfig::puma_default());
  std::int64_t traffic_naive = 0, traffic_ag = 0;
  for (MemoryPolicy policy : {MemoryPolicy::kNaive, MemoryPolicy::kAgReuse}) {
    CompileOptions opt;
    opt.mode = PipelineMode::kHighThroughput;
    opt.memory_policy = policy;
    opt.ga = tiny_ga();
    const SimReport sim = compiler.simulate(compiler.compile(opt));
    if (policy == MemoryPolicy::kNaive) {
      traffic_naive = sim.global_traffic_bytes;
    } else {
      traffic_ag = sim.global_traffic_bytes;
    }
  }
  // Fig 10 (HT): AG-reuse reduces global memory accesses.
  EXPECT_LE(traffic_ag, traffic_naive);
}

TEST(Compiler, HigherParallelismNeverSlower) {
  Graph g = zoo::squeezenet(64);
  Compiler compiler(std::move(g), HardwareConfig::puma_default());
  CompileOptions opt;
  opt.mapper = "puma";  // deterministic mapping across runs
  opt.parallelism_degree = 1;
  const SimReport slow = compiler.simulate(compiler.compile(opt));
  opt.parallelism_degree = 200;
  const SimReport fast = compiler.simulate(compiler.compile(opt));
  EXPECT_LE(fast.makespan, slow.makespan);
}

TEST(Compiler, ReportsRender) {
  Graph g = zoo::squeezenet(64);
  Compiler compiler(std::move(g), HardwareConfig::puma_default());
  CompileOptions opt;
  opt.ga = tiny_ga();
  const CompileResult result = compiler.compile(opt);
  const std::string text = describe(result);
  EXPECT_NE(text.find("squeezenet"), std::string::npos);
  EXPECT_NE(text.find("pimcomp-ga"), std::string::npos);

  const Json cj = compile_result_to_json(result);
  EXPECT_EQ(cj.at("model").as_string(), "squeezenet");
  EXPECT_GT(cj.at("mvm_ops").as_int(), 0);

  const SimReport sim = compiler.simulate(result);
  const Json sj = sim_report_to_json(sim);
  EXPECT_GT(sj.at("makespan_us").as_number(), 0.0);
  EXPECT_FALSE(sim.to_string().empty());
}

class AllNetworksBothModes
    : public ::testing::TestWithParam<std::tuple<std::string, PipelineMode>> {
};

TEST_P(AllNetworksBothModes, CompilesAndSimulates) {
  const auto& [name, mode] = GetParam();
  const int size = name == "inception-v3" ? 96 : 64;
  Graph g = zoo::build(name, size);
  const HardwareConfig hw =
      fit_core_count(g, HardwareConfig::puma_default(), 3.0);
  Compiler compiler(std::move(g), hw);
  CompileOptions opt;
  opt.mode = mode;
  opt.ga = tiny_ga();
  const CompileResult result = compiler.compile(opt);
  const SimReport sim = compiler.simulate(result);
  EXPECT_GT(sim.makespan, 0);
  EXPECT_EQ(sim.mvm_ops, result.schedule.count(OpKind::kMvm));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllNetworksBothModes,
    ::testing::Combine(::testing::Values("vgg16", "resnet18", "googlenet",
                                         "inception-v3", "squeezenet"),
                       ::testing::Values(PipelineMode::kHighThroughput,
                                         PipelineMode::kLowLatency)));

}  // namespace
}  // namespace pimcomp
