// Negative compile test: releasing a capability that is not held must be
// rejected by -Wthread-safety (unlock() is annotated
// PIMCOMP_RELEASE, so the analysis knows the caller must own the mutex).
#include "common/thread_annotations.hpp"

int main() {
  pimcomp::Mutex mu;
  mu.unlock();  // BUG (intentional): mu is not held here.
  return 0;
}
