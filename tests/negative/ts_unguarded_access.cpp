// Negative compile test: touching a PIMCOMP_GUARDED_BY field without its
// mutex must be rejected by -Wthread-safety. CMake builds this expecting
// FAILURE and additionally asserts the diagnostic text mentions
// "-Wthread-safety" so an unrelated compile error cannot masquerade as a
// pass.
#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void increment_without_lock() {
    ++value_;  // BUG (intentional): value_ requires mutex_.
  }

 private:
  mutable pimcomp::Mutex mutex_;
  int value_ PIMCOMP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment_without_lock();
  return 0;
}
