// Positive control for the thread-safety negative compile tests: this file
// uses the annotation vocabulary correctly and MUST compile cleanly under
// -Wthread-safety -Werror=thread-safety. If it stops compiling, the
// negative tests below it prove nothing (a broken header would "fail" them
// for the wrong reason), so CMake requires this one to succeed first.
#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void increment() PIMCOMP_EXCLUDES(mutex_) {
    pimcomp::MutexLock lock(mutex_);
    ++value_;
    changed_.notify_all();
  }

  int wait_until_at_least(int threshold) PIMCOMP_EXCLUDES(mutex_) {
    pimcomp::MutexLock lock(mutex_);
    while (value_ < threshold) {
      changed_.wait(mutex_);
    }
    return value_;
  }

 private:
  mutable pimcomp::Mutex mutex_;
  pimcomp::CondVar changed_;
  int value_ PIMCOMP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return counter.wait_until_at_least(1) == 1 ? 0 : 1;
}
