#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/zoo/zoo.hpp"
#include "mapping/fitness.hpp"
#include "mapping/genetic_mapper.hpp"
#include "mapping/greedy_mapper.hpp"
#include "mapping/puma_mapper.hpp"

namespace pimcomp {
namespace {

class MapperFixture : public ::testing::Test {
 protected:
  MapperFixture() : graph_(zoo::squeezenet(64)) {
    hw_ = HardwareConfig::puma_default();
    hw_.core_count = 36;
    workload_ = std::make_unique<Workload>(graph_, hw_);
  }

  GaConfig small_ga() const {
    GaConfig ga;
    ga.population = 16;
    ga.generations = 12;
    return ga;
  }

  Graph graph_;
  HardwareConfig hw_;
  std::unique_ptr<Workload> workload_;
};

TEST_F(MapperFixture, GeneticProducesValidSolution) {
  GeneticMapper mapper(small_ga());
  MapperOptions options;
  options.mode = PipelineMode::kHighThroughput;
  MappingSolution s = mapper.map(*workload_, options);
  EXPECT_NO_THROW(s.validate());
  for (const NodePartition& p : workload_->partitions()) {
    EXPECT_GE(s.replication(p.node), 1);
    EXPECT_LE(s.replication(p.node), p.windows);
  }
}

TEST_F(MapperFixture, GeneticDeterministicBySeed) {
  GeneticMapper mapper(small_ga());
  MapperOptions options;
  options.seed = 99;
  const MappingSolution a = mapper.map(*workload_, options);
  const MappingSolution b = mapper.map(*workload_, options);
  EXPECT_EQ(a.encode(), b.encode());
}

TEST_F(MapperFixture, GeneticSeedChangesResult) {
  // Disable the deterministic baseline seed so the stochastic search path
  // is what's under test.
  GaConfig ga = small_ga();
  ga.seed_baseline = false;
  GeneticMapper mapper(ga);
  MapperOptions options;
  options.seed = 1;
  const MappingSolution a = mapper.map(*workload_, options);
  options.seed = 2;
  const MappingSolution b = mapper.map(*workload_, options);
  EXPECT_NE(a.encode(), b.encode());
}

TEST_F(MapperFixture, GeneticNeverRegresses) {
  GeneticMapper mapper(small_ga());
  MapperOptions options;
  options.mode = PipelineMode::kHighThroughput;
  mapper.map(*workload_, options);
  const GaStats& stats = mapper.last_stats();
  EXPECT_LE(stats.final_best, stats.initial_best);
  // Elitism makes the best-so-far monotone non-increasing.
  for (std::size_t i = 1; i < stats.best_history.size(); ++i) {
    EXPECT_LE(stats.best_history[i], stats.best_history[i - 1] + 1e-9);
  }
  EXPECT_GT(stats.evaluations, 0);
}

TEST_F(MapperFixture, GeneticLLModeUsesLLFitness) {
  GeneticMapper mapper(small_ga());
  MapperOptions options;
  options.mode = PipelineMode::kLowLatency;
  MappingSolution s = mapper.map(*workload_, options);
  const FitnessParams params = FitnessParams::from(hw_, options.parallelism_degree);
  const LLFitnessContext ctx(*workload_);
  EXPECT_NEAR(mapper.last_stats().final_best, ctx.evaluate(s, params), 1e-6);
}

TEST_F(MapperFixture, MutationAblationStillValid) {
  for (int disabled = 0; disabled < 4; ++disabled) {
    GaConfig ga = small_ga();
    ga.enable_grow = disabled != 0;
    ga.enable_shrink = disabled != 1;
    ga.enable_spread = disabled != 2;
    ga.enable_merge = disabled != 3;
    GeneticMapper mapper(ga);
    MapperOptions options;
    MappingSolution s = mapper.map(*workload_, options);
    EXPECT_NO_THROW(s.validate());
  }
  GaConfig none = small_ga();
  none.enable_grow = none.enable_shrink = none.enable_spread =
      none.enable_merge = false;
  GeneticMapper broken(none);
  MapperOptions options;
  EXPECT_THROW(broken.map(*workload_, options), ConfigError);
}

TEST_F(MapperFixture, PumaBalancedReplicationShape) {
  const std::vector<int> replication =
      PumaMapper::balanced_replication(*workload_, 0.9);
  ASSERT_EQ(replication.size(),
            static_cast<std::size_t>(workload_->partition_count()));
  std::int64_t used = 0;
  for (int i = 0; i < workload_->partition_count(); ++i) {
    const NodePartition& p =
        workload_->partitions()[static_cast<std::size_t>(i)];
    const int r = replication[static_cast<std::size_t>(i)];
    EXPECT_GE(r, 1);
    EXPECT_LE(r, p.windows);
    used += static_cast<std::int64_t>(r) * p.xbars_per_replica();
  }
  EXPECT_LE(used, static_cast<std::int64_t>(
                      0.9 * static_cast<double>(
                                workload_->total_xbars_available())) +
                      1);
  // Pipeline balancing: nodes with more windows get at least as many
  // replicas (early conv layers dominate).
  int max_windows_idx = 0;
  int min_windows_idx = 0;
  for (int i = 0; i < workload_->partition_count(); ++i) {
    const auto& parts = workload_->partitions();
    if (parts[static_cast<std::size_t>(i)].windows >
        parts[static_cast<std::size_t>(max_windows_idx)].windows) {
      max_windows_idx = i;
    }
    if (parts[static_cast<std::size_t>(i)].windows <
        parts[static_cast<std::size_t>(min_windows_idx)].windows) {
      min_windows_idx = i;
    }
  }
  EXPECT_GE(replication[static_cast<std::size_t>(max_windows_idx)],
            replication[static_cast<std::size_t>(min_windows_idx)]);
}

TEST_F(MapperFixture, PumaMapperValidAndDeterministic) {
  PumaMapper mapper;
  MapperOptions options;
  MappingSolution a = mapper.map(*workload_, options);
  MappingSolution b = mapper.map(*workload_, options);
  EXPECT_NO_THROW(a.validate());
  EXPECT_EQ(a.encode(), b.encode());
}

TEST_F(MapperFixture, GreedyMapsOneReplicaEach) {
  GreedyMapper mapper;
  MapperOptions options;
  MappingSolution s = mapper.map(*workload_, options);
  EXPECT_NO_THROW(s.validate());
  for (const NodePartition& p : workload_->partitions()) {
    EXPECT_EQ(s.replication(p.node), 1);
  }
}

TEST_F(MapperFixture, GeneticBeatsGreedyOnFitness) {
  GeneticMapper ga(small_ga());
  GreedyMapper greedy;
  MapperOptions options;
  options.mode = PipelineMode::kHighThroughput;
  const MappingSolution s_ga = ga.map(*workload_, options);
  const MappingSolution s_greedy = greedy.map(*workload_, options);
  const FitnessParams params =
      FitnessParams::from(hw_, options.parallelism_degree);
  EXPECT_LT(ht_fitness(s_ga, params), ht_fitness(s_greedy, params));
}

TEST(MapperScaling, GeneticHandlesMultiChipConfigs) {
  Graph g = zoo::resnet18(64);
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 288;
  const Workload w(g, hw);
  GaConfig ga;
  ga.population = 8;
  ga.generations = 5;
  GeneticMapper mapper(ga);
  MapperOptions options;
  MappingSolution s = mapper.map(w, options);
  EXPECT_NO_THROW(s.validate());
}

TEST(MapperScaling, ThrowsWhenEvenOneReplicaCannotFit) {
  Graph g = zoo::resnet18(64);
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 90;  // fits min crossbars but max_nodes_per_core=1 breaks it
  const Workload w(g, hw);
  GaConfig ga;
  ga.population = 4;
  ga.generations = 2;
  GeneticMapper mapper(ga);
  MapperOptions options;
  options.max_nodes_per_core = 1;
  EXPECT_THROW(mapper.map(w, options), CapacityError);
}

}  // namespace
}  // namespace pimcomp
