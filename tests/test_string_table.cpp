#include <gtest/gtest.h>

#include "common/string_util.hpp"
#include "common/table.hpp"

namespace pimcomp {
namespace {

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

TEST(StringUtil, FormatRatio) {
  EXPECT_EQ(format_ratio(1.6), "1.60x");
  EXPECT_EQ(format_ratio(2.4, 1), "2.4x");
}

TEST(StringUtil, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(64.0 * 1024), "64.0 kB");
  EXPECT_EQ(format_bytes(4.0 * 1024 * 1024), "4.0 MB");
}

TEST(StringUtil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("pimcomp-ga", "pimcomp"));
  EXPECT_FALSE(starts_with("ga", "pimcomp"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Table, RendersAlignedColumns) {
  Table t("title");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // All rendered rows have equal width.
  std::size_t width = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t end = out.find('\n', pos);
    if (end == std::string::npos) break;
    const std::string line = out.substr(pos, end - pos);
    if (!line.empty() && line[0] == '|') {
      if (width == 0) width = line.size();
      EXPECT_EQ(line.size(), width);
    }
    pos = end + 1;
  }
}

TEST(Table, PadsShortRows) {
  Table t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

TEST(Table, EmptyTable) {
  Table t("empty");
  EXPECT_NE(t.to_string().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace pimcomp
