// The backend subsystem's acceptance surface: the registry ships the two
// built-in backends, every zoo model lowers into an instruction stream that
// round-trips its JSON artifact losslessly, tampered or foreign artifacts
// are rejected, the `sim` backend's reports are bit-identical to the legacy
// simulator, lowered streams survive the disk cache byte-identically, and
// two small models' artifact fingerprints are pinned as goldens (the
// kIsaVersion bump protocol, mirroring tests/test_fingerprint_goldens.cpp).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "backend/instruction_stream.hpp"
#include "cache/cache_store.hpp"
#include "common/error.hpp"
#include "core/session.hpp"
#include "graph/builder.hpp"
#include "graph/zoo/zoo.hpp"
#include "sim/simulator.hpp"

namespace pimcomp {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  TempDir() {
    std::string pattern =
        (fs::temp_directory_path() / "pimcomp-backend-XXXXXX").string();
    char* made = ::mkdtemp(pattern.data());
    EXPECT_NE(made, nullptr);
    path = pattern;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

/// Smallest feasible zoo resolution per model (input-size constraints).
int small_input(const std::string& model) {
  return model == "inception-v3" ? 96 : 32;
}

CompileOptions tiny_options(const std::string& backend) {
  CompileOptions options;
  options.mode = PipelineMode::kLowLatency;
  options.ga.population = 4;
  options.ga.generations = 2;
  options.seed = 1;
  options.backend = backend;
  return options;
}

Graph small_cnn() {
  GraphBuilder b("backend-cnn", {3, 16, 16});
  NodeId x = b.input();
  x = b.conv_relu(x, 8, 3, /*stride=*/1, /*padding=*/1, "conv1");
  x = b.max_pool(x, 2, 2, 0, "pool1");
  x = b.conv_relu(x, 16, 3, 1, 1, "conv2");
  x = b.fc(b.flatten(x, "flatten"), 10, "classifier");
  b.softmax(x, "prob");
  return b.build();
}

HardwareConfig fitted(const Graph& graph) {
  return fit_core_count(graph, HardwareConfig::puma_default(),
                        /*headroom=*/3.0);
}

CompileResult compile_small(const std::string& backend) {
  Graph graph = small_cnn();
  HardwareConfig hw = fitted(graph);
  return Compiler(std::move(graph), hw).compile(tiny_options(backend));
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(BackendRegistry, ShipsTheBuiltinBackends) {
  EXPECT_TRUE(BackendRegistry::contains("isa-json"));
  EXPECT_TRUE(BackendRegistry::contains("sim"));
  const std::vector<std::string> keys = BackendRegistry::keys();
  EXPECT_GE(keys.size(), 2u);

  try {
    BackendRegistry::create("no-such-backend");
    FAIL() << "unknown backend key must throw";
  } catch (const ConfigError& e) {
    // The error must teach the fix: it lists what is registered.
    EXPECT_NE(std::string(e.what()).find("isa-json"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("sim"), std::string::npos);
  }
}

TEST(BackendRegistry, OnlySimExecutes) {
  EXPECT_FALSE(BackendRegistry::create("isa-json")->can_execute());
  EXPECT_TRUE(BackendRegistry::create("sim")->can_execute());

  const CompileResult result = compile_small("isa-json");
  ASSERT_NE(result.stream, nullptr);
  EXPECT_THROW(BackendRegistry::create("isa-json")
                   ->execute(*result.stream, HardwareConfig::puma_default()),
               ConfigError);
}

// ---------------------------------------------------------------------------
// Opcodes.
// ---------------------------------------------------------------------------

TEST(InstructionStream, OpcodesRoundTripLosslessly) {
  const Opcode opcodes[] = {Opcode::kMvm,  Opcode::kValu, Opcode::kSend,
                            Opcode::kRecv, Opcode::kLoad, Opcode::kStore};
  for (Opcode opcode : opcodes) {
    EXPECT_EQ(opcode_from_string(to_string(opcode)), opcode);
    EXPECT_EQ(opcode_from_op_kind(op_kind_from_opcode(opcode)), opcode);
  }
  EXPECT_THROW(opcode_from_string("JMP"), InstructionStreamError);
}

// ---------------------------------------------------------------------------
// Lowering and round-trips.
// ---------------------------------------------------------------------------

TEST(InstructionStream, CompilerWithoutBackendEmitsNoStream) {
  const CompileResult result = compile_small("");
  EXPECT_EQ(result.stream, nullptr);
  EXPECT_EQ(result.stage_times.lowering, 0.0);
}

TEST(InstructionStream, EveryZooModelLowersAndRoundTrips) {
  for (const std::string& model : zoo::model_names()) {
    SCOPED_TRACE(model);
    Graph graph = zoo::build(model, small_input(model));
    HardwareConfig hw = fitted(graph);
    const CompileResult result =
        Compiler(std::move(graph), hw).compile(tiny_options("isa-json"));

    ASSERT_NE(result.stream, nullptr);
    const InstructionStream& stream = *result.stream;
    EXPECT_EQ(stream.backend, "isa-json");
    EXPECT_NE(stream.mapping_key, 0u);
    EXPECT_EQ(stream.core_count(), result.schedule.core_count());
    EXPECT_EQ(stream.total_ops, result.schedule.total_ops);
    EXPECT_GT(result.stage_times.lowering, 0.0);

    // JSON round-trip: re-parsing (which re-validates) reproduces the
    // exact artifact, so the content fingerprint is stable across hops.
    const Json artifact = stream.to_json();
    const InstructionStream reparsed =
        InstructionStream::from_json(artifact, stream.mapping_key);
    EXPECT_EQ(reparsed.to_json().dump(-1), artifact.dump(-1));
    EXPECT_EQ(reparsed.content_fingerprint(), stream.content_fingerprint());

    // Schedule round-trip: lowering is lossless against the scheduler's
    // representation, so re-lowering the recovered schedule is a fixpoint.
    const InstructionStream relowered = InstructionStream::from_schedule(
        reparsed.to_schedule(), stream.mode, stream.parallelism_degree,
        stream.backend, stream.mapping_key);
    EXPECT_EQ(relowered.content_fingerprint(), stream.content_fingerprint());
  }
}

TEST(InstructionStream, RejectsAForeignMappingKey) {
  const CompileResult result = compile_small("isa-json");
  ASSERT_NE(result.stream, nullptr);
  const Json artifact = result.stream->to_json();

  EXPECT_NO_THROW(
      InstructionStream::from_json(artifact, result.stream->mapping_key));
  try {
    InstructionStream::from_json(artifact,
                                 result.stream->mapping_key ^ 0xdeadbeefULL);
    FAIL() << "a stream bound to another compilation must be rejected";
  } catch (const InstructionStreamError& e) {
    EXPECT_NE(std::string(e.what()).find("bound to mapping"),
              std::string::npos);
  }
}

TEST(InstructionStream, ValidationCatchesTampering) {
  const CompileResult result = compile_small("isa-json");
  ASSERT_NE(result.stream, nullptr);
  const Json artifact = result.stream->to_json();

  {  // Wrong ISA version: a future artifact must not half-parse.
    Json tampered = artifact;
    tampered["isa"] = kIsaVersion + 1;
    EXPECT_THROW(InstructionStream::from_json(tampered),
                 InstructionStreamError);
  }
  {  // total_ops disagreeing with the per-core programs.
    Json tampered = artifact;
    tampered["total_ops"] = tampered.at("total_ops").as_int() + 1;
    EXPECT_THROW(InstructionStream::from_json(tampered),
                 InstructionStreamError);
  }
  {  // An MVM waiting on an AG outside the declared domain.
    Json tampered = artifact;
    tampered["ag_count"] = 0;
    EXPECT_THROW(InstructionStream::from_json(tampered),
                 InstructionStreamError);
  }
  {  // Unparseable binding.
    Json tampered = artifact;
    tampered["mapping_key"] = "not-hex";
    EXPECT_THROW(InstructionStream::from_json(tampered),
                 InstructionStreamError);
  }
}

// ---------------------------------------------------------------------------
// The sim backend is the legacy simulator, bit for bit.
// ---------------------------------------------------------------------------

TEST(SimBackend, BitIdenticalWithLegacySimulatorOnEveryZooModel) {
  for (const std::string& model : zoo::model_names()) {
    SCOPED_TRACE(model);
    Graph graph = zoo::build(model, small_input(model));
    HardwareConfig hw = fitted(graph);
    const CompileResult result =
        Compiler(std::move(graph), hw).compile(tiny_options("sim"));
    ASSERT_NE(result.stream, nullptr);
    EXPECT_EQ(result.stream->backend, "sim");

    SimOptions sim_options;
    sim_options.parallelism_degree = result.options.parallelism_degree;
    sim_options.mode = result.options.mode;
    const SimReport legacy = Simulator(hw, sim_options).run(result.schedule);
    const SimReport replay =
        BackendRegistry::create("sim")->execute(*result.stream, hw);

    // EXPECT_EQ (not NEAR) throughout: the interpreter must execute the
    // same integer/double arithmetic in the same order, so every field —
    // including the accumulated energies — matches exactly.
    EXPECT_EQ(replay.makespan, legacy.makespan);
    EXPECT_EQ(replay.core_finish, legacy.core_finish);
    EXPECT_EQ(replay.core_busy, legacy.core_busy);
    EXPECT_EQ(replay.dynamic_energy.mvm, legacy.dynamic_energy.mvm);
    EXPECT_EQ(replay.dynamic_energy.vfu, legacy.dynamic_energy.vfu);
    EXPECT_EQ(replay.dynamic_energy.local_memory,
              legacy.dynamic_energy.local_memory);
    EXPECT_EQ(replay.dynamic_energy.global_memory,
              legacy.dynamic_energy.global_memory);
    EXPECT_EQ(replay.dynamic_energy.noc, legacy.dynamic_energy.noc);
    EXPECT_EQ(replay.leakage_energy, legacy.leakage_energy);
    EXPECT_EQ(replay.avg_local_memory_bytes, legacy.avg_local_memory_bytes);
    EXPECT_EQ(replay.peak_local_memory_bytes,
              legacy.peak_local_memory_bytes);
    EXPECT_EQ(replay.global_traffic_bytes, legacy.global_traffic_bytes);
    EXPECT_EQ(replay.spill_traffic_bytes, legacy.spill_traffic_bytes);
    EXPECT_EQ(replay.mvm_ops, legacy.mvm_ops);
    EXPECT_EQ(replay.vfu_ops, legacy.vfu_ops);
    EXPECT_EQ(replay.comm_messages, legacy.comm_messages);
    EXPECT_EQ(replay.comm_bytes, legacy.comm_bytes);
    EXPECT_EQ(replay.active_cores, legacy.active_cores);
  }
}

// ---------------------------------------------------------------------------
// Pinned artifact goldens (the kIsaVersion bump protocol).
// ---------------------------------------------------------------------------

TEST(InstructionStream, ContentFingerprintGoldensArePinned) {
  // Two small zoo models, tiny GA, seed 1, auto-fitted cores: if either
  // value drifts, the artifact bytes changed — revert the drift or bump
  // kIsaVersion and re-pin in the same commit.
  struct GoldenCase {
    const char* model;
    const char* fingerprint;
  };
  // Re-pinned when the island-model GA became the default mapper
  // trajectory (ga.islands = 4): the mapping — and therefore the lowered
  // stream — legitimately changed, recorded by the kCacheSchemaVersion
  // bump to v3.
  const GoldenCase cases[] = {
      {"squeezenet", "659ed7bf9701c252"},
      {"resnet18", "24070a180ea26957"},
  };
  for (const GoldenCase& c : cases) {
    SCOPED_TRACE(c.model);
    Graph graph = zoo::build(c.model, small_input(c.model));
    HardwareConfig hw = fitted(graph);
    const CompileResult result =
        Compiler(std::move(graph), hw).compile(tiny_options("isa-json"));
    ASSERT_NE(result.stream, nullptr);
    EXPECT_EQ(cache_key_hex(result.stream->content_fingerprint()),
              c.fingerprint);
  }
}

// ---------------------------------------------------------------------------
// Disk-cache round-trip across a session restart.
// ---------------------------------------------------------------------------

TEST(DiskCache, LoweredStreamRoundTripsByteIdentically) {
  TempDir dir;
  CacheConfig cache;
  cache.dir = dir.path;
  CompileOptions options = tiny_options("isa-json");

  std::string cold_artifact;
  {
    CompilerSession session(small_cnn(), fitted(small_cnn()), cache);
    const CompileResult result = session.compile(options);
    ASSERT_NE(result.stream, nullptr);
    cold_artifact = result.stream->to_json().dump(-1);
  }  // every trace of in-process state dies with the session

  {
    CompilerSession session(small_cnn(), fitted(small_cnn()), cache);
    const CompileResult warm = session.compile(options);
    ASSERT_NE(warm.stream, nullptr);
    // Served from disk: no stage ran, and the artifact is byte-identical.
    EXPECT_EQ(warm.stage_times.total(), 0.0);
    EXPECT_EQ(warm.stream->to_json().dump(-1), cold_artifact);
  }

  {
    // A different backend key is a different cache identity: the session
    // must recompile (and re-lower through the requested backend), never
    // serve the isa-json stream.
    CompilerSession session(small_cnn(), fitted(small_cnn()), cache);
    const CompileResult other = session.compile(tiny_options("sim"));
    ASSERT_NE(other.stream, nullptr);
    EXPECT_EQ(other.stream->backend, "sim");
    EXPECT_GT(other.stage_times.total(), 0.0);
  }
}

}  // namespace
}  // namespace pimcomp
