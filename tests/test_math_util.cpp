#include "common/math_util.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace pimcomp {
namespace {

TEST(CeilDiv, ExactDivision) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(0, 7), 0);
}

TEST(CeilDiv, RoundsUp) {
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(1, 128), 1);
  EXPECT_EQ(ceil_div<std::int64_t>(25088, 128), 196);
}

TEST(RoundUp, Basics) {
  EXPECT_EQ(round_up(0, 4), 0);
  EXPECT_EQ(round_up(1, 4), 4);
  EXPECT_EQ(round_up(8, 4), 8);
  EXPECT_EQ(round_up(37, 36), 72);
}

TEST(Clamp, Basics) {
  EXPECT_EQ(clamp(5, 0, 10), 5);
  EXPECT_EQ(clamp(-5, 0, 10), 0);
  EXPECT_EQ(clamp(15, 0, 10), 10);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(Isqrt, Values) {
  EXPECT_EQ(isqrt(0), 0);
  EXPECT_EQ(isqrt(1), 1);
  EXPECT_EQ(isqrt(35), 5);
  EXPECT_EQ(isqrt(36), 6);
  EXPECT_EQ(isqrt(37), 6);
}

TEST(CheckedInt, PassesAndThrows) {
  EXPECT_EQ(checked_int(42), 42);
  EXPECT_EQ(checked_int(2147483647LL), 2147483647);
  EXPECT_THROW(checked_int(2147483648LL), Error);
  EXPECT_THROW(checked_int(-1), Error);
}

TEST(Units, Conversions) {
  EXPECT_EQ(from_ns(1.0), 1000);
  EXPECT_EQ(from_us(1.0), 1000000);
  EXPECT_DOUBLE_EQ(to_ns(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_us(from_us(12.5)), 12.5);
  EXPECT_DOUBLE_EQ(to_seconds(kPsPerSec), 1.0);
}

TEST(Units, EnergyFromPower) {
  // 1 mW for 1 second = 1 mJ = 1e9 pJ.
  EXPECT_DOUBLE_EQ(energy_mw_ps(1.0, kPsPerSec), 1e9);
  // 100 mW for 1 us = 0.1 uJ = 1e5 pJ.
  EXPECT_DOUBLE_EQ(energy_mw_ps(100.0, kPsPerUs), 1e5);
}

class CeilDivProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CeilDivProperty, InverseOfMultiplication) {
  const auto [a, b] = GetParam();
  const int q = ceil_div(a, b);
  EXPECT_GE(q * b, a);
  EXPECT_LT((q - 1) * b, a);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CeilDivProperty,
    ::testing::Values(std::pair{1, 1}, std::pair{7, 3}, std::pair{128, 128},
                      std::pair{129, 128}, std::pair{4096, 17},
                      std::pair{999, 1000}, std::pair{1000, 999}));

}  // namespace
}  // namespace pimcomp
