#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "graph/builder.hpp"
#include "graph/zoo/zoo.hpp"
#include "mapping/gene.hpp"
#include "mapping/mapping_solution.hpp"

namespace pimcomp {
namespace {

TEST(Gene, PaperEncodingExample) {
  // "1030025 represents 25 AGs of the 103rd node" (paper §IV-C1).
  const Gene g{103, 25};
  EXPECT_EQ(encode_gene(g), 1030025);
  const Gene back = decode_gene(1030025);
  EXPECT_EQ(back.node, 103);
  EXPECT_EQ(back.ag_count, 25);
}

TEST(Gene, EmptySlotIsZero) {
  EXPECT_EQ(encode_gene(Gene{}), 0);
  const Gene empty = decode_gene(0);
  EXPECT_EQ(empty.node, -1);
  EXPECT_EQ(empty.ag_count, 0);
}

TEST(Gene, RejectsOutOfRangeCounts) {
  EXPECT_THROW(encode_gene(Gene{1, 10000}), ConfigError);
  EXPECT_THROW(encode_gene(Gene{1, -3}), ConfigError);
  EXPECT_NO_THROW(encode_gene(Gene{1, kMaxAgCountPerGene}));
  EXPECT_THROW(decode_gene(-5), ConfigError);
  EXPECT_THROW(decode_gene(30000), ConfigError);  // zero ag_count
}

class SolutionTest : public ::testing::Test {
 protected:
  SolutionTest()
      : graph_(zoo::squeezenet(64)), hw_(HardwareConfig::puma_default()) {
    hw_.core_count = 36;
    workload_ = std::make_unique<Workload>(graph_, hw_);
  }

  Graph graph_;
  HardwareConfig hw_;
  std::unique_ptr<Workload> workload_;
};

TEST_F(SolutionTest, AddMergesIntoOneGenePerNodePerCore) {
  MappingSolution s(*workload_, 8);
  const NodeId node = workload_->partitions()[0].node;
  ASSERT_TRUE(s.can_add(0, node, 1));
  s.add(0, node, 1);
  s.add(0, node, 2);
  EXPECT_EQ(s.gene_count(0), 1);
  EXPECT_EQ(s.genes(0)[0].ag_count, 3);
  EXPECT_EQ(s.total_ags(node), 3);
}

TEST_F(SolutionTest, CapacityEnforced) {
  MappingSolution s(*workload_, 8);
  const NodePartition& p = workload_->partitions()[0];
  const int fit = hw_.xbars_per_core / p.xbars_per_ag;
  EXPECT_TRUE(s.can_add(0, p.node, fit));
  EXPECT_FALSE(s.can_add(0, p.node, fit + 1));
  s.add(0, p.node, fit);
  EXPECT_FALSE(s.can_add(0, p.node, 1));
  EXPECT_EQ(s.free_xbars(0), hw_.xbars_per_core - fit * p.xbars_per_ag);
}

TEST_F(SolutionTest, NodeSlotBoundEnforced) {
  MappingSolution s(*workload_, 2);
  s.add(0, workload_->partitions()[0].node, 1);
  s.add(0, workload_->partitions()[1].node, 1);
  EXPECT_FALSE(s.can_add(0, workload_->partitions()[2].node, 1));
  // Existing nodes can still grow.
  EXPECT_TRUE(s.can_add(0, workload_->partitions()[0].node, 1));
}

TEST_F(SolutionTest, RemoveReturnsActualCount) {
  MappingSolution s(*workload_, 8);
  const NodeId node = workload_->partitions()[0].node;
  s.add(0, node, 3);
  EXPECT_EQ(s.remove(0, node, 2), 2);
  EXPECT_EQ(s.remove(0, node, 5), 1);  // only one left
  EXPECT_EQ(s.remove(0, node, 1), 0);  // gene gone
  EXPECT_EQ(s.gene_count(0), 0);
}

TEST_F(SolutionTest, ReplicationAndCycles) {
  MappingSolution s(*workload_, 8);
  const NodePartition& p = workload_->partitions()[0];
  s.add(0, p.node, p.ags_per_replica());
  EXPECT_EQ(s.replication(p.node), 1);
  EXPECT_EQ(s.cycles(p.node), p.windows);
  s.add(1, p.node, p.ags_per_replica());
  EXPECT_EQ(s.replication(p.node), 2);
  EXPECT_EQ(s.cycles(p.node), (p.windows + 1) / 2);
}

TEST_F(SolutionTest, ValidateCatchesMissingReplicas) {
  MappingSolution s(*workload_, 8);
  // Give only the first node a replica; everything else is missing.
  s.add(0, workload_->partitions()[0].node,
        workload_->partitions()[0].ags_per_replica());
  EXPECT_THROW(s.validate(), Error);
}

TEST_F(SolutionTest, ValidateCatchesPartialReplicaTotals) {
  MappingSolution s(*workload_, 8);
  for (const NodePartition& p : workload_->partitions()) {
    int remaining = p.ags_per_replica();
    int guard = 0;
    for (int c = 0; remaining > 0; ++c) {
      ASSERT_LT(++guard, 100000) << "placement did not converge";
      int add = std::min(remaining, 4);
      while (add > 0 && !s.can_add(c % 36, p.node, add)) --add;
      if (add > 0) {
        s.add(c % 36, p.node, add);
        remaining -= add;
      }
    }
  }
  EXPECT_NO_THROW(s.validate());
  // Now break one node's total.
  const NodePartition& p0 = workload_->partitions()[0];
  if (p0.ags_per_replica() > 1) {
    for (int c = 0; c < 36; ++c) {
      if (s.remove(c, p0.node, 1) == 1) break;
    }
    EXPECT_THROW(s.validate(), Error);
  }
}

TEST_F(SolutionTest, EncodeDecodeRoundTrip) {
  MappingSolution s(*workload_, 8);
  for (const NodePartition& p : workload_->partitions()) {
    int remaining = p.ags_per_replica();
    int core = p.node % 36;
    int guard = 0;
    while (remaining > 0) {
      ASSERT_LT(++guard, 100000) << "placement did not converge";
      int add = std::min(remaining, 3);
      while (add > 0 && !s.can_add(core, p.node, add)) --add;
      if (add > 0) {
        s.add(core, p.node, add);
        remaining -= add;
      } else {
        core = (core + 1) % 36;
      }
    }
  }
  const std::vector<std::int64_t> chromosome = s.encode();
  EXPECT_EQ(chromosome.size(), 36u * 8u);
  MappingSolution restored = MappingSolution::decode(*workload_, 8, chromosome);
  EXPECT_EQ(restored.encode(), chromosome);
  for (const NodePartition& p : workload_->partitions()) {
    EXPECT_EQ(restored.total_ags(p.node), s.total_ags(p.node));
  }
}

TEST_F(SolutionTest, InstantiateKeepsWholeReplicasLocal) {
  MappingSolution s(*workload_, 8);
  std::vector<bool> whole_replica(
      static_cast<std::size_t>(graph_.node_count()), false);
  for (const NodePartition& p : workload_->partitions()) {
    // Two whole replicas on distinct cores where one fits a core; nodes
    // whose replica exceeds a core's crossbars scatter AG by AG.
    if (p.xbars_per_replica() <= hw_.xbars_per_core) {
      int placed = 0;
      for (int c = 0; c < 36 && placed < 2; ++c) {
        if (s.can_add(c, p.node, p.ags_per_replica())) {
          s.add(c, p.node, p.ags_per_replica());
          ++placed;
        }
      }
      ASSERT_GE(placed, 1);
      whole_replica[static_cast<std::size_t>(p.node)] = true;
    } else {
      int remaining = p.ags_per_replica();
      int guard = 0;
      for (int c = 0; remaining > 0; ++c) {
        ASSERT_LT(++guard, 100000);
        if (s.can_add(c % 36, p.node, 1)) {
          s.add(c % 36, p.node, 1);
          --remaining;
        }
      }
    }
  }
  const std::vector<AgInstance> instances = s.instantiate();
  // Whole-replica nodes: every (replica, chunk) accumulation group must
  // live on exactly one core (instantiate's pass-1 guarantee).
  std::map<std::tuple<NodeId, int, int>, int> group_core;
  for (const AgInstance& ag : instances) {
    if (!whole_replica[static_cast<std::size_t>(ag.node)]) continue;
    const auto key = std::make_tuple(ag.node, ag.replica, ag.col_chunk);
    auto it = group_core.find(key);
    if (it == group_core.end()) {
      group_core[key] = ag.core;
    } else {
      EXPECT_EQ(it->second, ag.core) << "scattered group for node " << ag.node;
    }
  }
}

TEST_F(SolutionTest, InstantiateCountsMatchTotals) {
  MappingSolution s(*workload_, 8);
  for (const NodePartition& p : workload_->partitions()) {
    int remaining = 2 * p.ags_per_replica();
    int guard = 0;
    for (int c = 0; remaining > 0; ++c) {
      ASSERT_LT(++guard, 100000) << "placement did not converge";
      int add = std::min(remaining, 2);
      while (add > 0 && !s.can_add(c % 36, p.node, add)) --add;
      if (add > 0) {
        s.add(c % 36, p.node, add);
        remaining -= add;
      }
    }
    ASSERT_EQ(remaining, 0);
  }
  const auto instances = s.instantiate();
  std::map<NodeId, int> counts;
  for (const AgInstance& ag : instances) ++counts[ag.node];
  for (const NodePartition& p : workload_->partitions()) {
    EXPECT_EQ(counts[p.node], s.total_ags(p.node));
    EXPECT_EQ(counts[p.node], 2 * p.ags_per_replica());
  }
}

}  // namespace
}  // namespace pimcomp
