#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/session.hpp"
#include "graph/builder.hpp"

namespace pimcomp {
namespace {

Graph small_cnn(const std::string& name = "pipeline-cnn") {
  GraphBuilder b(name, {3, 16, 16});
  NodeId x = b.input();
  x = b.conv_relu(x, 8, 3, /*stride=*/1, /*padding=*/1, "conv1");
  x = b.max_pool(x, 2, 2, 0, "pool1");
  x = b.conv_relu(x, 16, 3, 1, 1, "conv2");
  x = b.fc(b.flatten(x, "flatten"), 10, "classifier");
  b.softmax(x, "prob");
  return b.build();
}

CompileOptions tiny_options(PipelineMode mode = PipelineMode::kHighThroughput) {
  CompileOptions options;
  options.mode = mode;
  options.ga.population = 8;
  options.ga.generations = 4;
  return options;
}

/// Records every callback: (stage, begin/end, scenario index).
class CountingObserver : public PipelineObserver {
 public:
  struct Event {
    std::string stage;
    bool begin = false;
    int scenario_index = -1;
    double seconds = 0.0;
  };

  void on_stage_begin(const StageInfo& info) override {
    events.push_back({info.stage, true, info.scenario_index, info.seconds});
  }
  void on_stage_end(const StageInfo& info) override {
    events.push_back({info.stage, false, info.scenario_index, info.seconds});
  }

  int begins(const std::string& stage) const { return count(stage, true); }
  int ends(const std::string& stage) const { return count(stage, false); }

  std::vector<Event> events;

 private:
  int count(const std::string& stage, bool begin) const {
    return static_cast<int>(
        std::count_if(events.begin(), events.end(), [&](const Event& e) {
          return e.stage == stage && e.begin == begin;
        }));
  }
};

// ---------------------------------------------------------------------------
// Registries.
// ---------------------------------------------------------------------------

TEST(MapperRegistry, BuiltinsAreRegistered) {
  for (const char* key : {"ga", "puma", "greedy"}) {
    EXPECT_TRUE(MapperRegistry::contains(key)) << key;
  }
  const std::vector<std::string> keys = MapperRegistry::keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_GE(keys.size(), 3u);
}

TEST(MapperRegistry, CreateResolvesTheRightStrategy) {
  const CompileOptions options;
  EXPECT_EQ(MapperRegistry::create("ga", options)->name(), "pimcomp-ga");
  EXPECT_EQ(MapperRegistry::create("puma", options)->name(), "puma-like");
  EXPECT_EQ(MapperRegistry::create("greedy", options)->name(),
            "greedy-norep");
}

TEST(MapperRegistry, UnknownKeyThrowsListingAlternatives) {
  const CompileOptions options;
  EXPECT_FALSE(MapperRegistry::contains("does-not-exist"));
  try {
    MapperRegistry::create("does-not-exist", options);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("does-not-exist"), std::string::npos);
    EXPECT_NE(what.find("ga"), std::string::npos);  // lists registered keys
  }
}

TEST(MapperRegistry, DuplicateKeyIsRecordedAndReportedAtFirstUse) {
  // add() runs from static initializers, where throwing would terminate
  // before main() with no usable message — so a duplicate is recorded and
  // reported at the first create()/keys() call instead.
  EXPECT_TRUE(MapperRegistry::add("ga", [](const CompileOptions&) {
    return std::unique_ptr<Mapper>();
  }));
  try {
    MapperRegistry::keys();
    FAIL() << "expected ConfigError reporting the duplicate";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("'ga'"), std::string::npos);
  }
  // Reported once; the registry stays usable and the first registration
  // (the real GA) stays in effect.
  EXPECT_NO_THROW(MapperRegistry::keys());
  EXPECT_EQ(MapperRegistry::create("ga", CompileOptions())->name(),
            "pimcomp-ga");
}

TEST(SchedulerRegistry, BuiltinsAreRegistered) {
  EXPECT_TRUE(SchedulerRegistry::contains("ht"));
  EXPECT_TRUE(SchedulerRegistry::contains("ll"));
  EXPECT_EQ(SchedulerRegistry::create("ht")->name(), "ht-dataflow");
  EXPECT_EQ(SchedulerRegistry::create("ll")->name(), "ll-dataflow");
  EXPECT_THROW(SchedulerRegistry::create("nope"), ConfigError);
}

TEST(CompileOptions, SchedulerKeyDerivesFromMode) {
  CompileOptions options;
  options.mode = PipelineMode::kHighThroughput;
  EXPECT_EQ(options.scheduler_key(), "ht");
  options.mode = PipelineMode::kLowLatency;
  EXPECT_EQ(options.scheduler_key(), "ll");
  options.scheduler = "ht";  // explicit key wins over the mode
  EXPECT_EQ(options.scheduler_key(), "ht");
}

TEST(MapperKind, LegacyAliasesMapToRegistryKeys) {
  EXPECT_EQ(registry_key(MapperKind::kGenetic), "ga");
  EXPECT_EQ(registry_key(MapperKind::kPumaLike), "puma");
  EXPECT_EQ(registry_key(MapperKind::kGreedy), "greedy");
  for (MapperKind kind :
       {MapperKind::kGenetic, MapperKind::kPumaLike, MapperKind::kGreedy}) {
    EXPECT_TRUE(MapperRegistry::contains(registry_key(kind)));
  }
}

// ---------------------------------------------------------------------------
// Observer callbacks and the stage loop.
// ---------------------------------------------------------------------------

TEST(PipelineObserver, StagesFireInOrderWithPairedCallbacks) {
  Compiler compiler(small_cnn(), HardwareConfig::puma_default());
  CountingObserver observer;
  const CompileResult result =
      compiler.compile(tiny_options(), &observer);
  EXPECT_GT(result.schedule.total_ops, 0);

  ASSERT_EQ(observer.events.size(), 6u);  // 3 stages x begin+end
  const char* expected[] = {stage_names::kPartitioning, stage_names::kMapping,
                            stage_names::kScheduling};
  for (int stage = 0; stage < 3; ++stage) {
    const auto& begin = observer.events[2 * stage];
    const auto& end = observer.events[2 * stage + 1];
    EXPECT_EQ(begin.stage, expected[stage]);
    EXPECT_TRUE(begin.begin);
    EXPECT_EQ(begin.seconds, 0.0);
    EXPECT_EQ(end.stage, expected[stage]);
    EXPECT_FALSE(end.begin);
    EXPECT_GE(end.seconds, 0.0);
  }
}

TEST(PipelineObserver, StageTimesComeFromTheSameLoop) {
  Compiler compiler(small_cnn(), HardwareConfig::puma_default());
  CountingObserver observer;
  const CompileResult result = compiler.compile(tiny_options(), &observer);
  double observed_total = 0.0;
  for (const auto& event : observer.events) observed_total += event.seconds;
  EXPECT_NEAR(result.stage_times.total(), observed_total, 1e-9);
  EXPECT_GT(result.stage_times.mapping, 0.0);
}

// ---------------------------------------------------------------------------
// Session workload cache.
// ---------------------------------------------------------------------------

TEST(CompilerSession, BatchOfThreeRunsPartitioningOnce) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  CountingObserver observer;
  session.set_observer(&observer);

  for (int parallelism : {1, 20, 200}) {
    CompileOptions options = tiny_options();
    options.parallelism_degree = parallelism;
    session.enqueue(options, "P=" + std::to_string(parallelism));
  }
  EXPECT_EQ(session.pending(), 3);
  const std::vector<ScenarioOutcome> outcomes = session.compile_all();
  EXPECT_EQ(session.pending(), 0);
  ASSERT_EQ(outcomes.size(), 3u);
  std::vector<const CompileResult*> results;
  for (const ScenarioOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    results.push_back(&*outcome.result);
  }

  // The tentpole claim: one partitioning pass for the whole batch.
  EXPECT_EQ(observer.begins(stage_names::kPartitioning), 1);
  EXPECT_EQ(observer.ends(stage_names::kPartitioning), 1);
  EXPECT_EQ(observer.begins(stage_names::kMapping), 3);
  EXPECT_EQ(observer.begins(stage_names::kScheduling), 3);
  EXPECT_EQ(session.cached_workloads(), 1u);

  // Scenario indices flow through to the callbacks in batch order.
  EXPECT_EQ(observer.events.front().scenario_index, 0);
  EXPECT_EQ(observer.events.back().scenario_index, 2);

  // All three scenarios share one workload object.
  EXPECT_EQ(results[0]->workload.get(), results[1]->workload.get());
  EXPECT_EQ(results[1]->workload.get(), results[2]->workload.get());

  // Cached runs report no partitioning time.
  EXPECT_GT(results[0]->stage_times.partitioning, 0.0);
  EXPECT_EQ(results[1]->stage_times.partitioning, 0.0);
  EXPECT_EQ(results[2]->stage_times.partitioning, 0.0);
}

TEST(CompilerSession, HardwareOverridePartitionsPerFingerprint) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  CountingObserver observer;
  session.set_observer(&observer);

  HardwareConfig wide = HardwareConfig::puma_default();
  wide.core_count = 2 * wide.cores_per_chip;

  session.enqueue(Scenario{"default", tiny_options(), std::nullopt});
  session.enqueue(Scenario{"wide", tiny_options(), wide});
  session.enqueue(Scenario{"default-again", tiny_options(), std::nullopt});
  session.compile_all();

  // Two distinct hardware fingerprints => exactly two partitioning passes.
  EXPECT_EQ(observer.begins(stage_names::kPartitioning), 2);
  EXPECT_EQ(session.cached_workloads(), 2u);
}

TEST(CompilerSession, FingerprintSeparatesGraphAndHardware) {
  const Graph a = small_cnn("net-a");
  const Graph b = small_cnn("net-b");
  EXPECT_NE(fingerprint(a), fingerprint(b));  // name participates
  EXPECT_EQ(fingerprint(a), fingerprint(small_cnn("net-a")));

  HardwareConfig hw = HardwareConfig::puma_default();
  const std::uint64_t base = fingerprint(hw);
  EXPECT_EQ(base, fingerprint(HardwareConfig::puma_default()));
  hw.core_count += hw.cores_per_chip;
  EXPECT_NE(base, fingerprint(hw));
}

// ---------------------------------------------------------------------------
// Back-compat: the session path must reproduce Compiler::compile() bit for
// bit at the same seed.
// ---------------------------------------------------------------------------

TEST(CompilerSession, MatchesSingleShotCompilerAtSameSeed) {
  const HardwareConfig hw = HardwareConfig::puma_default();
  for (PipelineMode mode :
       {PipelineMode::kHighThroughput, PipelineMode::kLowLatency}) {
    CompileOptions options = tiny_options(mode);
    options.ga.seed_baseline = false;  // exercise the stochastic path
    options.seed = 99;

    Compiler compiler(small_cnn(), hw);
    const CompileResult single = compiler.compile(options);

    CompilerSession session(small_cnn(), hw);
    const CompileResult warm = session.compile(options);   // cache miss
    const CompileResult cached = session.compile(options); // cache hit

    for (const CompileResult* result : {&warm, &cached}) {
      EXPECT_EQ(result->solution.encode(), single.solution.encode());
      EXPECT_EQ(result->schedule.total_ops, single.schedule.total_ops);
      EXPECT_EQ(result->estimated_fitness, single.estimated_fitness);
      EXPECT_EQ(result->mapper_name, single.mapper_name);
    }
  }
}

TEST(CompilerSession, UnknownMapperKeyFailsBeforeAnyStageRuns) {
  CompilerSession session(small_cnn(), HardwareConfig::puma_default());
  CountingObserver observer;
  session.set_observer(&observer);
  CompileOptions options = tiny_options();
  options.mapper = "not-a-mapper";
  EXPECT_THROW(session.compile(options), ConfigError);
  // Fail-fast: the key is resolved before partitioning is paid for.
  EXPECT_TRUE(observer.events.empty());
}

TEST(PipelineObserver, CallbacksStayPairedWhenAStageThrows) {
  HardwareConfig hw = HardwareConfig::puma_default();
  // A one-crossbar machine: partitioning throws CapacityError.
  hw.core_count = 1;
  hw.cores_per_chip = 1;
  hw.xbars_per_core = 1;
  Compiler compiler(small_cnn(), hw);
  CountingObserver observer;
  EXPECT_THROW(compiler.compile(tiny_options(), &observer), CapacityError);
  ASSERT_EQ(observer.events.size(), 2u);
  EXPECT_EQ(observer.events[0].stage, stage_names::kPartitioning);
  EXPECT_TRUE(observer.events[0].begin);
  EXPECT_EQ(observer.events[1].stage, stage_names::kPartitioning);
  EXPECT_FALSE(observer.events[1].begin);
}

}  // namespace
}  // namespace pimcomp
