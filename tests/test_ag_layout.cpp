#include "schedule/ag_layout.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/zoo/zoo.hpp"
#include "mapping/puma_mapper.hpp"
#include "schedule/operation.hpp"

namespace pimcomp {
namespace {

class LayoutFixture : public ::testing::Test {
 protected:
  LayoutFixture() : graph_(zoo::squeezenet(64)) {
    hw_ = HardwareConfig::puma_default();
    hw_.core_count = 36;
    workload_ = std::make_unique<Workload>(graph_, hw_);
    PumaMapper mapper;
    MapperOptions options;
    solution_ =
        std::make_unique<MappingSolution>(mapper.map(*workload_, options));
    layout_ = AgLayout::build(*solution_);
  }

  Graph graph_;
  HardwareConfig hw_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<MappingSolution> solution_;
  AgLayout layout_;
};

TEST_F(LayoutFixture, InstanceCountMatchesSolution) {
  std::int64_t expected = 0;
  for (const NodePartition& p : workload_->partitions()) {
    expected += solution_->total_ags(p.node);
  }
  EXPECT_EQ(static_cast<std::int64_t>(layout_.instances.size()), expected);
}

TEST_F(LayoutFixture, GroupsHaveAllRowSlices) {
  for (const AccumGroup& g : layout_.groups) {
    const NodePartition& p =
        workload_->partitions()[static_cast<std::size_t>(g.partition)];
    ASSERT_EQ(static_cast<int>(g.members.size()), p.row_slices);
    // Members are sorted by row slice and cover 0..row_slices-1.
    for (int i = 0; i < p.row_slices; ++i) {
      EXPECT_EQ(layout_.instances[static_cast<std::size_t>(g.members[
                    static_cast<std::size_t>(i)])].row_slice,
                i);
    }
  }
}

TEST_F(LayoutFixture, OwnerIsFirstRowSliceCore) {
  for (const AccumGroup& g : layout_.groups) {
    const AgInstance& first =
        layout_.instances[static_cast<std::size_t>(g.members.front())];
    EXPECT_EQ(g.owner_core, first.core);
    EXPECT_EQ(first.row_slice, 0);
  }
}

TEST_F(LayoutFixture, WindowRangesPartitionTheWindows) {
  // Per (node, chunk): the replica window ranges tile [0, windows) without
  // overlap.
  for (const NodePartition& p : workload_->partitions()) {
    const int chunks = p.col_chunks;
    for (int cc = 0; cc < chunks; ++cc) {
      std::vector<std::pair<int, int>> ranges;
      for (int gid :
           layout_.partition_groups[static_cast<std::size_t>(
               workload_->partition_index(p.node))]) {
        const AccumGroup& g = layout_.groups[static_cast<std::size_t>(gid)];
        if (g.chunk != cc) continue;
        if (!g.empty()) ranges.push_back({g.window_begin, g.window_end});
      }
      std::sort(ranges.begin(), ranges.end());
      int covered = 0;
      for (const auto& [begin, end] : ranges) {
        EXPECT_EQ(begin, covered) << "gap or overlap for node " << p.node;
        covered = end;
      }
      EXPECT_EQ(covered, p.windows);
    }
  }
}

TEST_F(LayoutFixture, CoreInstancesConsistent) {
  std::size_t total = 0;
  for (int c = 0; c < 36; ++c) {
    for (int idx : layout_.core_instances[static_cast<std::size_t>(c)]) {
      EXPECT_EQ(layout_.instances[static_cast<std::size_t>(idx)].core, c);
      ++total;
    }
  }
  EXPECT_EQ(total, layout_.instances.size());
}

TEST_F(LayoutFixture, HostCoresAreSortedAndExact) {
  for (const NodePartition& p : workload_->partitions()) {
    const auto& hosts = layout_.partition_host_cores[static_cast<std::size_t>(
        workload_->partition_index(p.node))];
    EXPECT_TRUE(std::is_sorted(hosts.begin(), hosts.end()));
    std::set<int> expected;
    for (const AgInstance& ag : layout_.instances) {
      if (ag.node == p.node) expected.insert(ag.core);
    }
    EXPECT_EQ(std::set<int>(hosts.begin(), hosts.end()), expected);
  }
}

TEST_F(LayoutFixture, SliceRowsCoverMatrix) {
  for (const NodePartition& p : workload_->partitions()) {
    // Sum of slice rows over one replica's row slices equals matrix_rows.
    const auto& gids = layout_.partition_groups[static_cast<std::size_t>(
        workload_->partition_index(p.node))];
    ASSERT_FALSE(gids.empty());
    const AccumGroup& g = layout_.groups[static_cast<std::size_t>(gids[0])];
    int total_rows = 0;
    for (int member : g.members) {
      total_rows += AgLayout::slice_rows(
          p, layout_.instances[static_cast<std::size_t>(member)], hw_);
    }
    EXPECT_EQ(total_rows, p.matrix_rows);
  }
}

TEST(OperationStats, CountAndBytesHelpers) {
  Schedule s;
  s.programs.resize(2);
  Operation send;
  send.kind = OpKind::kCommSend;
  send.bytes = 100;
  Operation load;
  load.kind = OpKind::kLoadGlobal;
  load.bytes = 300;
  s.programs[0] = {send, load};
  s.programs[1] = {send};
  EXPECT_EQ(s.count(OpKind::kCommSend), 2);
  EXPECT_EQ(s.count(OpKind::kMvm), 0);
  EXPECT_EQ(s.total_bytes(OpKind::kCommSend), 200);
  EXPECT_EQ(s.total_bytes(OpKind::kLoadGlobal), 300);
  EXPECT_EQ(s.core_count(), 2);
}

TEST(OperationStats, KindNames) {
  EXPECT_EQ(to_string(OpKind::kMvm), "MVM");
  EXPECT_EQ(to_string(OpKind::kVfu), "VFU");
  EXPECT_EQ(to_string(OpKind::kCommSend), "SEND");
  EXPECT_EQ(to_string(OpKind::kCommRecv), "RECV");
  EXPECT_EQ(to_string(OpKind::kLoadGlobal), "LOAD");
  EXPECT_EQ(to_string(OpKind::kStoreGlobal), "STORE");
}

}  // namespace
}  // namespace pimcomp
