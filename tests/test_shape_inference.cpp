#include "graph/shape_inference.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/builder.hpp"
#include "graph/graph.hpp"

namespace pimcomp {
namespace {

TEST(WindowExtent, Formula) {
  // floor((in + 2p - k)/s) + 1
  EXPECT_EQ(window_output_extent(224, 3, 1, 1, "t"), 224);
  EXPECT_EQ(window_output_extent(224, 7, 2, 3, "t"), 112);
  EXPECT_EQ(window_output_extent(112, 3, 2, 1, "t"), 56);
  EXPECT_EQ(window_output_extent(8, 2, 2, 0, "t"), 4);
  EXPECT_EQ(window_output_extent(5, 3, 2, 0, "t"), 2);
}

TEST(WindowExtent, KernelTooLargeThrows) {
  EXPECT_THROW(window_output_extent(4, 7, 1, 0, "t"), GraphError);
  EXPECT_NO_THROW(window_output_extent(4, 7, 1, 2, "t"));  // padding saves it
}

TEST(ShapeInference, ConvBasic) {
  GraphBuilder b("t", {3, 32, 32});
  const NodeId c = b.conv(b.input(), 16, 3, 1, 1);
  Graph g = b.build();
  EXPECT_EQ(g.node(c).output_shape, (TensorShape{16, 32, 32}));
  EXPECT_EQ(g.node(c).weight_params, 3 * 3 * 3 * 16);
  EXPECT_EQ(g.node(c).macs, static_cast<std::int64_t>(3 * 3 * 3 * 16) * 32 * 32);
}

TEST(ShapeInference, ConvStridedAndAsymmetric) {
  GraphBuilder b("t", {8, 17, 17});
  const NodeId c = b.conv_rect(b.input(), 12, 1, 7, 1, 0, 3);
  Graph g = b.build();
  // 1x7 kernel, pad (0,3): height unchanged formulaically, width preserved.
  EXPECT_EQ(g.node(c).output_shape, (TensorShape{12, 17, 17}));
  EXPECT_EQ(g.node(c).weight_params, 1 * 7 * 8 * 12);
}

TEST(ShapeInference, FCFlattensInput) {
  GraphBuilder b("t", {4, 5, 5});
  const NodeId f = b.fc(b.input(), 10);
  Graph g = b.build();
  EXPECT_EQ(g.node(f).output_shape, (TensorShape{10, 1, 1}));
  EXPECT_EQ(g.node(f).weight_params, 4 * 5 * 5 * 10);
}

TEST(ShapeInference, PoolVariants) {
  GraphBuilder b("t", {8, 32, 32});
  const NodeId mp = b.max_pool(b.input(), 2, 2);
  const NodeId ap = b.avg_pool(mp, 3, 1, 1);
  const NodeId gp = b.global_avg_pool(ap);
  Graph g = b.build();
  EXPECT_EQ(g.node(mp).output_shape, (TensorShape{8, 16, 16}));
  EXPECT_EQ(g.node(ap).output_shape, (TensorShape{8, 16, 16}));
  EXPECT_EQ(g.node(gp).output_shape, (TensorShape{8, 1, 1}));
}

TEST(ShapeInference, ConcatSumsChannels) {
  GraphBuilder b("t", {3, 16, 16});
  const NodeId a = b.conv(b.input(), 4, 1);
  const NodeId c = b.conv(b.input(), 6, 1);
  const NodeId cat = b.concat({a, c});
  Graph g = b.build();
  EXPECT_EQ(g.node(cat).output_shape, (TensorShape{10, 16, 16}));
}

TEST(ShapeInference, ConcatRejectsSpatialMismatch) {
  GraphBuilder b("t", {3, 16, 16});
  const NodeId a = b.conv(b.input(), 4, 1);
  const NodeId c = b.conv(b.input(), 4, 3, 2, 1);  // 8x8
  b.concat({a, c});
  EXPECT_THROW(b.build(), GraphError);
}

TEST(ShapeInference, EltwiseRequiresIdenticalShapes) {
  GraphBuilder b("t", {3, 16, 16});
  const NodeId a = b.conv(b.input(), 4, 1);
  const NodeId c = b.conv(b.input(), 6, 1);
  b.eltwise_add(a, c);
  EXPECT_THROW(b.build(), GraphError);
}

TEST(ShapeInference, FlattenAndSoftmax) {
  GraphBuilder b("t", {4, 3, 3});
  const NodeId f = b.flatten(b.input());
  const NodeId s = b.softmax(f);
  Graph g = b.build();
  EXPECT_EQ(g.node(f).output_shape, (TensorShape{36, 1, 1}));
  EXPECT_EQ(g.node(s).output_shape, (TensorShape{36, 1, 1}));
}

struct ConvCase {
  int in, k, s, p;
};

class ConvShapeSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvShapeSweep, MatchesReferenceFormula) {
  const ConvCase c = GetParam();
  GraphBuilder b("t", {2, c.in, c.in});
  const NodeId conv = b.conv(b.input(), 3, c.k, c.s, c.p);
  Graph g = b.build();
  const int expected = (c.in + 2 * c.p - c.k) / c.s + 1;
  EXPECT_EQ(g.node(conv).output_shape.height, expected);
  EXPECT_EQ(g.node(conv).output_shape.width, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvShapeSweep,
    ::testing::Values(ConvCase{32, 3, 1, 1}, ConvCase{32, 3, 2, 1},
                      ConvCase{224, 7, 2, 3}, ConvCase{8, 1, 1, 0},
                      ConvCase{15, 5, 3, 2}, ConvCase{64, 11, 4, 2},
                      ConvCase{28, 5, 1, 2}));

}  // namespace
}  // namespace pimcomp
