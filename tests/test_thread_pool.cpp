#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace pimcomp {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int wave = 1; wave <= 3; ++wave) {
    for (int i = 0; i < 10; ++i) pool.submit([&done] { done.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(done.load(), wave * 10);
  }
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      });
    }
  }  // ~ThreadPool waits for the queue, it does not cancel
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, ThreadCountIsClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, PriorityOrdersTheQueueTiesStayFifo) {
  ThreadPool pool(1);
  std::mutex mutex;
  std::vector<int> order;
  std::atomic<bool> release{false};
  // Park the single worker so every subsequent submit is provably queued.
  pool.submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  const auto record = [&](int id) {
    return [&, id] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(id);
    };
  };
  pool.submit(record(1), /*priority=*/0);
  pool.submit(record(2), /*priority=*/0);
  pool.submit(record(3), /*priority=*/7);  // jumps both
  pool.submit(record(4), /*priority=*/7);  // FIFO within priority 7
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{3, 4, 1, 2}));
}

TEST(ThreadPool, RunOneExecutesInlineAndReportsEmptiness) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  pool.submit([&started, &release] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  // The worker must own the parking task before we drain inline, or
  // run_one() below could pop it and spin this thread on itself.
  while (!started.load()) std::this_thread::yield();
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1); });
  pool.submit([&done] { done.fetch_add(1); });
  // The external caller drains the queue itself while the worker is stuck.
  EXPECT_TRUE(pool.run_one());
  EXPECT_TRUE(pool.run_one());
  EXPECT_EQ(done.load(), 2);
  EXPECT_FALSE(pool.run_one());  // queue empty, no blocking
  release.store(true);
  pool.wait_idle();
}

TEST(ThreadPool, CurrentIdentifiesWorkerThreads) {
  EXPECT_EQ(ThreadPool::current(), nullptr);  // the test thread is external
  ThreadPool pool(1);
  const ThreadPool* seen = nullptr;
  pool.submit([&seen] { seen = ThreadPool::current(); });
  pool.wait_idle();
  EXPECT_EQ(seen, &pool);
}

TEST(ThreadPool, TasksActuallyFanOutAcrossThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  std::atomic<int> rendezvous{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] {
      rendezvous.fetch_add(1);
      // Hold every worker until all four tasks are in flight, proving the
      // tasks run on four distinct threads rather than one worker looping.
      while (rendezvous.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace pimcomp
