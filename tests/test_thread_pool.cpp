#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

namespace pimcomp {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int wave = 1; wave <= 3; ++wave) {
    for (int i = 0; i < 10; ++i) pool.submit([&done] { done.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(done.load(), wave * 10);
  }
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      });
    }
  }  // ~ThreadPool waits for the queue, it does not cancel
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, ThreadCountIsClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, TasksActuallyFanOutAcrossThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  std::atomic<int> rendezvous{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] {
      rendezvous.fetch_add(1);
      // Hold every worker until all four tasks are in flight, proving the
      // tasks run on four distinct threads rather than one worker looping.
      while (rendezvous.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace pimcomp
