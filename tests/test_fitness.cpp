#include "mapping/fitness.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp {
namespace {

FitnessParams params_for(int parallelism) {
  HardwareConfig hw = HardwareConfig::puma_default();
  return FitnessParams::from(hw, parallelism);
}

TEST(CycleTime, PaperFormula) {
  // f(n) = n * T_interval when issue-bound (n > T_MVM / T_interval),
  // else T_MVM (paper Fig 5).
  const FitnessParams p1 = params_for(1);    // T_int = T_MVM
  const FitnessParams p20 = params_for(20);  // T_int = T_MVM / 20
  const Picoseconds t_mvm = HardwareConfig::puma_default().mvm_latency;

  EXPECT_EQ(cycle_time(1, p1), t_mvm);
  EXPECT_EQ(cycle_time(4, p1), 4 * t_mvm);
  EXPECT_EQ(cycle_time(1, p20), t_mvm);
  EXPECT_EQ(cycle_time(20, p20), t_mvm);      // exactly at the knee
  EXPECT_EQ(cycle_time(40, p20), 2 * t_mvm);  // issue-bound
  EXPECT_EQ(cycle_time(0, p20), 0);
}

/// Two parallel 1-AG-per-replica convolutions from one tiny input:
///  X: 1x1 conv, 4x5 output -> 20 windows; replicated 2x -> 10 cycles/AG.
///  Y: 2x2 conv, 3x4 output -> 12 windows; replicated 3x -> 4 cycles/AG.
class StaircaseFixture : public ::testing::Test {
 protected:
  StaircaseFixture() {
    GraphBuilder b("stairs", {1, 4, 5});
    x_ = b.conv(b.input(), 4, 1, 1, 0, "x");
    y_ = b.conv(b.input(), 4, 2, 1, 0, "y");
    graph_ = b.build();
    hw_ = HardwareConfig::puma_default();
    hw_.core_count = 36;
    workload_ = std::make_unique<Workload>(graph_, hw_);
  }

  NodeId x_ = -1, y_ = -1;
  Graph graph_;
  HardwareConfig hw_;
  std::unique_ptr<Workload> workload_;
};

TEST_F(StaircaseFixture, HandComputedStaircase) {
  ASSERT_EQ(workload_->partition_of(x_).ags_per_replica(), 1);
  ASSERT_EQ(workload_->partition_of(y_).ags_per_replica(), 1);

  MappingSolution s(*workload_, 8);
  s.add(0, x_, 2);  // cycles 10
  s.add(0, y_, 3);  // cycles 4
  s.validate();
  EXPECT_EQ(s.cycles(x_), 10);
  EXPECT_EQ(s.cycles(y_), 4);

  // P=1: f(5) = 5 T, f(2) = 2 T. time = 4*f(5) + 6*f(2) = 32 T.
  const FitnessParams p1 = params_for(1);
  const double t = static_cast<double>(hw_.mvm_latency);
  EXPECT_DOUBLE_EQ(ht_fitness(s, p1), 32.0 * t);

  // P=20: both cycle times clamp to T_MVM. time = 10 cycles * T = 10 T.
  const FitnessParams p20 = params_for(20);
  EXPECT_DOUBLE_EQ(ht_fitness(s, p20), 10.0 * t);
}

TEST_F(StaircaseFixture, MaxAcrossCores) {
  MappingSolution s(*workload_, 8);
  s.add(0, x_, 2);  // core 0: 10 cycles
  s.add(1, y_, 3);  // core 1: 4 cycles
  const FitnessParams p1 = params_for(1);
  const double t = static_cast<double>(hw_.mvm_latency);
  const auto times = ht_core_times(s, p1);
  EXPECT_DOUBLE_EQ(times[0], 10 * 2 * t);  // f(2) per cycle
  EXPECT_DOUBLE_EQ(times[1], 4 * 3 * t);   // f(3) per cycle
  EXPECT_DOUBLE_EQ(ht_fitness(s, p1), 20.0 * t);
}

TEST_F(StaircaseFixture, ReplicationReducesFitness) {
  MappingSolution low(*workload_, 8);
  low.add(0, x_, 1);
  low.add(1, y_, 1);
  MappingSolution high(*workload_, 8);
  high.add(0, x_, 2);
  high.add(1, x_, 2);
  high.add(2, y_, 2);
  high.add(3, y_, 2);
  const FitnessParams p = params_for(20);
  EXPECT_LT(ht_fitness(high, p), ht_fitness(low, p));
}

class LLFixture : public ::testing::Test {
 protected:
  LLFixture() {
    GraphBuilder b("chain", {4, 10, 10});
    c1_ = b.conv_relu(b.input(), 8, 3, 1, 1, "c1");   // 10x10 out
    c2_ = b.conv(c1_, 8, 3, 1, 1, "c2");              // 10x10 out
    f_ = b.fc(b.flatten(c2_), 10, "fc");
    graph_ = b.build();
    hw_ = HardwareConfig::puma_default();
    hw_.core_count = 36;
    workload_ = std::make_unique<Workload>(graph_, hw_);
  }

  NodeId c1_ = -1, c2_ = -1, f_ = -1;
  Graph graph_;
  HardwareConfig hw_;
  std::unique_ptr<Workload> workload_;
};

TEST_F(LLFixture, WaitingFractions) {
  const LLFitnessContext ctx(*workload_);
  ASSERT_EQ(ctx.edges().size(), 3u);

  // c1 reads the graph input: provider -1, available at t=0.
  ASSERT_EQ(ctx.edges()[0].size(), 1u);
  EXPECT_EQ(ctx.edges()[0][0].provider, -1);
  EXPECT_DOUBLE_EQ(ctx.edges()[0][0].waiting_fraction, 0.0);

  // c2's first window needs c1 up to (rd, cd) = (2, 2) of its 10x10 output
  // (3x3 kernel, padding 1): fraction = ((2-1)*10 + 2) / 100 = 0.12.
  ASSERT_EQ(ctx.edges()[1].size(), 1u);
  EXPECT_EQ(ctx.edges()[1][0].provider, 0);
  EXPECT_DOUBLE_EQ(ctx.edges()[1][0].waiting_fraction, 0.12);

  // The FC needs everything: waiting fraction 1.
  ASSERT_EQ(ctx.edges()[2].size(), 1u);
  EXPECT_EQ(ctx.edges()[2][0].provider, 1);
  EXPECT_DOUBLE_EQ(ctx.edges()[2][0].waiting_fraction, 1.0);
}

TEST_F(LLFixture, FinishTimesRespectTopology) {
  MappingSolution s(*workload_, 8);
  for (const NodePartition& p : workload_->partitions()) {
    int core = 0;
    while (!s.can_add(core, p.node, p.ags_per_replica())) ++core;
    s.add(core, p.node, p.ags_per_replica());
  }
  const LLFitnessContext ctx(*workload_);
  const FitnessParams p = params_for(20);
  const auto finish = ctx.finish_times(s, p);
  ASSERT_EQ(finish.size(), 3u);
  EXPECT_LT(finish[0], finish[1]);
  EXPECT_LT(finish[1], finish[2]);
  EXPECT_DOUBLE_EQ(ctx.evaluate(s, p), finish[2]);
}

TEST_F(LLFixture, ReplicationShortensLatency) {
  MappingSolution base(*workload_, 8);
  MappingSolution replicated(*workload_, 8);
  for (const NodePartition& p : workload_->partitions()) {
    int core = 0;
    while (!base.can_add(core, p.node, p.ags_per_replica())) ++core;
    base.add(core, p.node, p.ags_per_replica());
    core = 0;
    for (int r = 0; r < 2; ++r) {
      while (!replicated.can_add(core, p.node, p.ags_per_replica())) ++core;
      replicated.add(core, p.node, p.ags_per_replica());
    }
  }
  const LLFitnessContext ctx(*workload_);
  const FitnessParams p = params_for(20);
  EXPECT_LT(ctx.evaluate(replicated, p), ctx.evaluate(base, p));
}

TEST(LLEdges, EltwisePassesRequirementsThrough) {
  // Residual pattern: two convs feeding an eltwise feeding a conv.
  GraphBuilder b("res", {4, 8, 8});
  const NodeId a = b.conv(b.input(), 8, 3, 1, 1, "a");
  const NodeId c = b.conv(b.input(), 8, 3, 1, 1, "c");
  const NodeId add = b.eltwise_add(a, c, "add");
  const NodeId d = b.conv(add, 8, 3, 1, 1, "d");
  Graph g = b.build();
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 36;
  const Workload w(g, hw);
  const LLFitnessContext ctx(w);
  // d (partition 2) must have waiting edges to both a and c with identical
  // fractions (the eltwise passes positions through unchanged).
  const auto& edges = ctx.edges()[static_cast<std::size_t>(w.partition_index(d))];
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_DOUBLE_EQ(edges[0].waiting_fraction, edges[1].waiting_fraction);
  EXPECT_GT(edges[0].waiting_fraction, 0.0);
  EXPECT_LT(edges[0].waiting_fraction, 1.0);
}

TEST(LLEdges, PoolingStretchesReceptiveField) {
  GraphBuilder b("pools", {4, 16, 16});
  const NodeId a = b.conv(b.input(), 8, 3, 1, 1, "a");
  const NodeId p = b.max_pool(a, 2, 2, 0, "pool");
  const NodeId c = b.conv(p, 8, 3, 1, 1, "c");
  Graph g = b.build();
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.core_count = 36;
  const Workload w(g, hw);
  const LLFitnessContext ctx(w);
  const auto& edges = ctx.edges()[static_cast<std::size_t>(w.partition_index(c))];
  ASSERT_EQ(edges.size(), 1u);
  // c's first window needs pool rows 1..2 -> conv rows 1..4 of 16:
  // the pooled receptive field needs a deeper slice than a direct conv
  // consumer would (which would need rows 1..2).
  EXPECT_GT(edges[0].waiting_fraction, 2.0 / 16.0);
}

}  // namespace
}  // namespace pimcomp
