#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "cache/cache_store.hpp"
#include "core/session.hpp"
#include "serve/net.hpp"

namespace pimcomp {
namespace {

using serve::ArtifactMessage;
using serve::CompileRequest;
using serve::DoneMessage;
using serve::ErrorMessage;
using serve::EventMessage;
using serve::OutcomeMessage;
using serve::PongMessage;
using serve::ServeError;
using serve::ServerMessage;

/// Wire round-trip: what every frame goes through (dump compact, one line,
/// reparse).
Json wire(const Json& json) {
  const std::string line = json.dump(-1);
  EXPECT_EQ(line.find('\n'), std::string::npos) << line;
  return Json::parse(line);
}

// ---------------------------------------------------------------------------
// CompileOptions JSON.
// ---------------------------------------------------------------------------

TEST(ServeProtocol, OptionsRoundTripPreservesFingerprint) {
  CompileOptions options;
  options.mode = PipelineMode::kLowLatency;
  options.parallelism_degree = 7;
  options.memory_policy = MemoryPolicy::kNaive;
  options.mapper = "puma";
  options.scheduler = "ht";  // explicitly diverge from the mode-derived key
  options.ga.population = 13;
  options.ga.generations = 17;
  options.ga.elite = 4;
  options.ga.tournament_size = 5;
  options.ga.mutations_per_child = 3;
  options.ga.target_fill = 0.75;
  options.ga.enable_grow = false;
  options.ga.enable_merge = false;
  options.ga.seed_baseline = false;
  options.max_nodes_per_core = 11;
  options.ht_flush_windows = 5;
  options.seed = 424242;

  const CompileOptions parsed =
      serve::options_from_json(wire(serve::options_to_json(options)));
  EXPECT_EQ(fingerprint(parsed), fingerprint(options));
  EXPECT_EQ(parsed.mapper, "puma");
  EXPECT_EQ(parsed.scheduler_key(), "ht");
}

TEST(ServeProtocol, OptionsPartialJsonKeepsDefaults) {
  Json json = Json::object();
  json["mode"] = "ll";
  json["parallelism"] = 3;
  const CompileOptions parsed = serve::options_from_json(json);
  const CompileOptions defaults;
  EXPECT_EQ(parsed.mode, PipelineMode::kLowLatency);
  EXPECT_EQ(parsed.parallelism_degree, 3);
  EXPECT_EQ(parsed.mapper, defaults.mapper);
  EXPECT_EQ(parsed.ga.population, defaults.ga.population);
  EXPECT_EQ(parsed.seed, defaults.seed);
}

TEST(ServeProtocol, OptionsJsonLayersOverCallerBase) {
  CompileOptions base;
  base.mode = PipelineMode::kLowLatency;
  base.ga.population = 8;
  base.ga.generations = 4;
  base.seed = 99;

  Json json = Json::object();
  json["parallelism"] = 40;
  const CompileOptions parsed = serve::options_from_json(json, base);
  EXPECT_EQ(parsed.parallelism_degree, 40);
  EXPECT_EQ(parsed.mode, PipelineMode::kLowLatency);
  EXPECT_EQ(parsed.ga.population, 8);   // not GaConfig's 100
  EXPECT_EQ(parsed.ga.generations, 4);  // not GaConfig's 200
  EXPECT_EQ(parsed.seed, 99u);

  // A scenario entry without an "options" object is exactly the base.
  Json entry = Json::object();
  entry["label"] = "as-is";
  const serve::ScenarioSpec spec =
      serve::scenario_spec_from_json(entry, 0, base);
  EXPECT_EQ(fingerprint(spec.options), fingerprint(base));
}

TEST(ServeProtocol, OptionsRejectBadMode) {
  Json json = Json::object();
  json["mode"] = "warp-speed";
  EXPECT_THROW(serve::options_from_json(json), ServeError);
}

TEST(ServeProtocol, AbsurdWireNumericsAreRejected) {
  // One request must never be able to OOM the shared daemon: allocation
  // drivers carry the same sanity ceilings as the CLI.
  Json huge_pop = Json::object();
  Json ga = Json::object();
  ga["population"] = 2'000'000'000;
  huge_pop["ga"] = ga;
  EXPECT_THROW(serve::options_from_json(huge_pop), ServeError);

  Json huge_par = Json::object();
  huge_par["parallelism"] = (1 << 20) + 1;
  EXPECT_THROW(serve::options_from_json(huge_par), ServeError);

  Json huge_cores = Json::object();
  huge_cores["core_count"] = 2'000'000'000;
  EXPECT_THROW(serve::hardware_from_json(huge_cores), ServeError);

  Json request = Json::object();
  request["type"] = "compile";
  request["model"] = "vgg16";
  request["cores"] = 2'000'000'000;
  Json scenarios = Json::array();
  scenarios.push_back(Json::object());
  request["scenarios"] = scenarios;
  EXPECT_THROW(serve::request_from_json(request), ServeError);
}

TEST(ServeProtocol, MisspelledKeysAreRejectedNotIgnored) {
  // "parallelism_degree" is the C++ field name; the wire key is
  // "parallelism" — silently ignoring the typo would compile the default
  // configuration under the requested label.
  Json options = Json::object();
  options["parallelism_degree"] = 40;
  EXPECT_THROW(serve::options_from_json(options), ServeError);

  // GA keys belong inside the "ga" object.
  Json flat_ga = Json::object();
  flat_ga["generations"] = 5;
  EXPECT_THROW(serve::options_from_json(flat_ga), ServeError);

  Json bad_ga = Json::object();
  Json ga = Json::object();
  ga["popsize"] = 10;
  bad_ga["ga"] = ga;
  EXPECT_THROW(serve::options_from_json(bad_ga), ServeError);

  Json hw = Json::object();
  hw["cores"] = 8;  // wire key is "core_count"
  EXPECT_THROW(serve::hardware_from_json(hw), ServeError);

  Json entry = Json::object();
  entry["options "] = Json::object();  // stray space
  EXPECT_THROW(serve::scenario_spec_from_json(entry, 0), ServeError);
}

// ---------------------------------------------------------------------------
// HardwareConfig JSON.
// ---------------------------------------------------------------------------

TEST(ServeProtocol, HardwareRoundTripPreservesFingerprint) {
  HardwareConfig hw = HardwareConfig::puma_default();
  hw.xbar_rows = 256;
  hw.cell_bits = 4;
  hw.core_count = 72;
  hw.cores_per_chip = 18;
  hw.connection = CoreConnection::kBus;
  hw.vfu_ops_per_ns = 3.5;
  hw.local_memory_bytes = 128 * 1024;
  hw.noc_hop_latency = from_ns(3.0);
  hw.mvm_latency = from_ns(750.0);

  const HardwareConfig parsed =
      serve::hardware_from_json(wire(serve::hardware_to_json(hw)));
  EXPECT_EQ(fingerprint(parsed), fingerprint(hw));
}

TEST(ServeProtocol, HardwarePartialOverrideKeepsBaseFields) {
  Json json = Json::object();
  json["core_count"] = 4;
  const HardwareConfig base = HardwareConfig::puma_default();
  const HardwareConfig parsed = serve::hardware_from_json(json, base);
  EXPECT_EQ(parsed.core_count, 4);
  EXPECT_EQ(parsed.xbar_rows, base.xbar_rows);
  EXPECT_EQ(parsed.mvm_latency, base.mvm_latency);
}

// ---------------------------------------------------------------------------
// Events.
// ---------------------------------------------------------------------------

TEST(ServeProtocol, EventRoundTripsAllKinds) {
  PipelineEvent stage_end;
  stage_end.kind = PipelineEvent::Kind::kStageEnd;
  stage_end.name = "mapping";
  stage_end.scenario = "P=20";
  stage_end.scenario_index = 2;
  stage_end.seconds = 1.25;

  PipelineEvent parsed = event_from_json(wire(event_to_json(stage_end)));
  EXPECT_EQ(parsed.kind, PipelineEvent::Kind::kStageEnd);
  EXPECT_EQ(parsed.name, "mapping");
  EXPECT_EQ(parsed.scenario, "P=20");
  EXPECT_EQ(parsed.scenario_index, 2);
  EXPECT_DOUBLE_EQ(parsed.seconds, 1.25);

  PipelineEvent hit;
  hit.kind = PipelineEvent::Kind::kCacheHit;
  hit.name = cache_names::kWorkload;
  hit.scenario = "P=1";
  hit.scenario_index = 0;
  hit.hits = 9;
  parsed = event_from_json(wire(event_to_json(hit)));
  EXPECT_EQ(parsed.kind, PipelineEvent::Kind::kCacheHit);
  EXPECT_EQ(parsed.name, cache_names::kWorkload);
  EXPECT_EQ(parsed.hits, 9u);

  // v3: cache events carry their serving tier, and stores are events too.
  hit.source = cache_sources::kDisk;
  parsed = event_from_json(wire(event_to_json(hit)));
  EXPECT_EQ(parsed.source, cache_sources::kDisk);

  PipelineEvent store;
  store.kind = PipelineEvent::Kind::kCacheStore;
  store.name = cache_names::kMapping;
  store.scenario = "P=1";
  store.hits = 2;
  store.source = cache_sources::kDisk;
  parsed = event_from_json(wire(event_to_json(store)));
  EXPECT_EQ(parsed.kind, PipelineEvent::Kind::kCacheStore);
  EXPECT_EQ(parsed.name, cache_names::kMapping);
  EXPECT_EQ(parsed.hits, 2u);
  EXPECT_EQ(parsed.source, cache_sources::kDisk);

  PipelineEvent begin;
  begin.kind = PipelineEvent::Kind::kStageBegin;
  begin.name = "partitioning";
  parsed = event_from_json(wire(event_to_json(begin)));
  EXPECT_EQ(parsed.kind, PipelineEvent::Kind::kStageBegin);
  EXPECT_EQ(parsed.scenario_index, -1);
}

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

TEST(ServeProtocol, CompileRequestRoundTrip) {
  CompileRequest request;
  request.id = 42;
  request.model = "squeezenet";
  request.input_size = 64;
  request.cores = 12;
  request.simulate = false;
  serve::ScenarioSpec spec;
  spec.label = "tight";
  spec.options.parallelism_degree = 5;
  Json hw_override = Json::object();
  hw_override["core_count"] = 1;
  spec.hardware = hw_override;
  request.scenarios.push_back(spec);

  const CompileRequest parsed =
      serve::request_from_json(wire(serve::to_json(request)));
  EXPECT_EQ(parsed.id, 42);
  EXPECT_EQ(parsed.model, "squeezenet");
  EXPECT_EQ(parsed.input_size, 64);
  EXPECT_EQ(parsed.cores, 12);
  EXPECT_FALSE(parsed.simulate);
  ASSERT_EQ(parsed.scenarios.size(), 1u);
  EXPECT_EQ(parsed.scenarios[0].label, "tight");
  EXPECT_EQ(parsed.scenarios[0].options.parallelism_degree, 5);
  ASSERT_TRUE(parsed.scenarios[0].hardware.has_value());
  EXPECT_EQ(parsed.scenarios[0].hardware->get("core_count", 0), 1);
}

TEST(ServeProtocol, RequestNeedsModelOrGraphAndScenarios) {
  Json no_model = Json::object();
  no_model["type"] = "compile";
  Json scenarios = Json::array();
  scenarios.push_back(Json::object());
  no_model["scenarios"] = scenarios;
  EXPECT_THROW(serve::request_from_json(no_model), ServeError);

  Json no_scenarios = Json::object();
  no_scenarios["type"] = "compile";
  no_scenarios["model"] = "vgg16";
  EXPECT_THROW(serve::request_from_json(no_scenarios), ServeError);

  Json both = Json::object();
  both["type"] = "compile";
  both["model"] = "vgg16";
  both["graph"] = Json::object();
  both["scenarios"] = scenarios;
  EXPECT_THROW(serve::request_from_json(both), ServeError);
}

TEST(ServeProtocol, RequestRejectsNewerProtocolVersion) {
  Json json = Json::object();
  json["type"] = "compile";
  json["version"] = serve::kProtocolVersion + 1;
  json["model"] = "vgg16";
  Json scenarios = Json::array();
  scenarios.push_back(Json::object());
  json["scenarios"] = scenarios;
  EXPECT_THROW(serve::request_from_json(json), ServeError);
}

// ---------------------------------------------------------------------------
// Server messages.
// ---------------------------------------------------------------------------

TEST(ServeProtocol, ServerMessagesRoundTripThroughVariant) {
  EventMessage event;
  event.id = 7;
  event.event.kind = PipelineEvent::Kind::kStageBegin;
  event.event.name = "scheduling";
  ServerMessage message = serve::server_message_from_json(
      wire(serve::to_json(event)));
  ASSERT_TRUE(std::holds_alternative<EventMessage>(message));
  EXPECT_EQ(std::get<EventMessage>(message).id, 7);
  EXPECT_EQ(std::get<EventMessage>(message).event.name, "scheduling");

  OutcomeMessage ok;
  ok.id = 7;
  ok.label = "P=20";
  ok.index = 1;
  ok.ok = true;
  Json compile = Json::object();
  compile["model"] = "x";
  ok.compile = compile;
  message = serve::server_message_from_json(wire(serve::to_json(ok)));
  ASSERT_TRUE(std::holds_alternative<OutcomeMessage>(message));
  EXPECT_TRUE(std::get<OutcomeMessage>(message).ok);
  EXPECT_EQ(std::get<OutcomeMessage>(message).compile.get("model",
                                                          std::string()),
            "x");

  OutcomeMessage bad;
  bad.id = 7;
  bad.label = "P=1M";
  bad.index = 0;
  bad.ok = false;
  bad.error = "CapacityError: does not fit";
  bad.error_kind = to_string(ErrorKind::kCapacity);
  message = serve::server_message_from_json(wire(serve::to_json(bad)));
  ASSERT_TRUE(std::holds_alternative<OutcomeMessage>(message));
  EXPECT_FALSE(std::get<OutcomeMessage>(message).ok);
  EXPECT_EQ(std::get<OutcomeMessage>(message).error,
            "CapacityError: does not fit");
  EXPECT_EQ(std::get<OutcomeMessage>(message).error_kind, "capacity");

  message = serve::server_message_from_json(
      wire(serve::to_json(DoneMessage{7, 3, 1})));
  ASSERT_TRUE(std::holds_alternative<DoneMessage>(message));
  EXPECT_EQ(std::get<DoneMessage>(message).ok_count, 3);
  EXPECT_EQ(std::get<DoneMessage>(message).error_count, 1);

  message = serve::server_message_from_json(
      wire(serve::to_json(ErrorMessage{7, "unknown model"})));
  ASSERT_TRUE(std::holds_alternative<ErrorMessage>(message));
  EXPECT_EQ(std::get<ErrorMessage>(message).error, "unknown model");

  message = serve::server_message_from_json(
      wire(serve::to_json(PongMessage{7, serve::kProtocolVersion})));
  ASSERT_TRUE(std::holds_alternative<PongMessage>(message));
}

TEST(ServeProtocol, UnknownServerMessageTypeThrows) {
  Json json = Json::object();
  json["type"] = "telegram";
  EXPECT_THROW(serve::server_message_from_json(json), ServeError);
}

// ---------------------------------------------------------------------------
// Structured errors on the wire (PR 4).
// ---------------------------------------------------------------------------

TEST(ServeProtocol, ErrorKindRoundTripsEveryValue) {
  for (const ErrorKind kind :
       {ErrorKind::kCapacity, ErrorKind::kConfig, ErrorKind::kCancelled,
        ErrorKind::kInternal}) {
    OutcomeMessage failed;
    failed.id = 11;
    failed.label = "broken";
    failed.ok = false;
    failed.error = "some failure";
    failed.error_kind = to_string(kind);
    const ServerMessage message =
        serve::server_message_from_json(wire(serve::to_json(failed)));
    ASSERT_TRUE(std::holds_alternative<OutcomeMessage>(message));
    const OutcomeMessage& parsed = std::get<OutcomeMessage>(message);
    EXPECT_EQ(parsed.error_kind, to_string(kind));
    // Clients branch on the enum, not the string.
    EXPECT_EQ(error_kind_from_string(parsed.error_kind), kind);
  }

  // Successful outcomes carry no error_kind key at all.
  OutcomeMessage good;
  good.id = 11;
  good.ok = true;
  good.compile = Json::object();
  const Json frame = wire(serve::to_json(good));
  EXPECT_FALSE(frame.contains("error_kind"));
  // A v1 failure frame (no error_kind) still parses, as "unspecified".
  Json legacy = Json::object();
  legacy["type"] = "outcome";
  legacy["id"] = 3;
  legacy["ok"] = false;
  legacy["error"] = "old server";
  const ServerMessage from_v1 = serve::server_message_from_json(legacy);
  EXPECT_TRUE(std::get<OutcomeMessage>(from_v1).error_kind.empty());
}

TEST(ServeProtocol, BackendOptionsKeyIsOptInOnTheWire) {
  // No backend selected: the key is absent, so the serialized options are
  // byte-compatible with what a pre-v4 server's known-key check accepts.
  EXPECT_FALSE(serve::options_to_json(CompileOptions{}).contains("backend"));

  CompileOptions lowered;
  lowered.backend = "isa-json";
  const Json json = wire(serve::options_to_json(lowered));
  EXPECT_EQ(json.get("backend", std::string()), "isa-json");
  const CompileOptions parsed = serve::options_from_json(json);
  EXPECT_EQ(parsed.backend, "isa-json");
  EXPECT_EQ(fingerprint(parsed), fingerprint(lowered));
}

TEST(ServeProtocol, ArtifactFrameRoundTrips) {
  ArtifactMessage message;
  message.id = 21;
  message.label = "P=4";
  message.index = 2;
  Json payload = Json::object();
  payload["isa"] = 1;
  message.artifact = payload;

  const ServerMessage parsed =
      serve::server_message_from_json(wire(serve::to_json(message)));
  const ArtifactMessage& artifact = std::get<ArtifactMessage>(parsed);
  EXPECT_EQ(artifact.id, 21);
  EXPECT_EQ(artifact.label, "P=4");
  EXPECT_EQ(artifact.index, 2);
  EXPECT_EQ(artifact.artifact.get("isa", 0), 1);
}

TEST(ServeProtocol, DoneFrameGatesV4FieldsOnRequesterVersion) {
  DoneMessage done;
  done.id = 5;
  done.ok_count = 2;
  done.error_count = 1;
  done.artifact_count = 2;

  // A v3 requester's done frame is byte-identical to the historical shape.
  done.protocol_version = 3;
  const Json v3 = serve::to_json(done);
  EXPECT_FALSE(v3.contains("version"));
  EXPECT_FALSE(v3.contains("artifacts"));
  // A v3 frame parses with the tolerant defaults.
  const DoneMessage from_v3 =
      std::get<DoneMessage>(serve::server_message_from_json(wire(v3)));
  EXPECT_EQ(from_v3.ok_count, 2);
  EXPECT_EQ(from_v3.artifact_count, 0);

  // A v4 requester sees the advisory version echo min(ours, theirs) — its
  // done frames stay byte-identical to what a v4 server sent (v5 gating).
  done.protocol_version = 4;
  const Json v4 = serve::to_json(done);
  EXPECT_EQ(v4.get("version", 0), 4);
  EXPECT_EQ(v4.get("artifacts", 0), 2);
  const DoneMessage from_v4 =
      std::get<DoneMessage>(serve::server_message_from_json(wire(v4)));
  EXPECT_EQ(from_v4.artifact_count, 2);

  // A current-version requester sees ours.
  done.protocol_version = serve::kProtocolVersion;
  EXPECT_EQ(serve::to_json(done).get("version", 0), serve::kProtocolVersion);
}

TEST(ServeProtocol, RequestPriorityRoundTripsAndIsBounded) {
  CompileRequest request;
  request.model = "squeezenet";
  request.priority = 9;
  request.scenarios.push_back(serve::ScenarioSpec{});
  const CompileRequest parsed =
      serve::request_from_json(wire(serve::to_json(request)));
  EXPECT_EQ(parsed.priority, 9);

  // Absent priority means 0; absurd values are rejected, not clamped.
  Json json = serve::to_json(request);
  json["priority"] = 1'000'000;
  EXPECT_THROW(serve::request_from_json(json), ServeError);
}

// ---------------------------------------------------------------------------
// v5: deadlines, auth, cache peering, stats.
// ---------------------------------------------------------------------------

TEST(ServeProtocol, DeadlineAndAuthRoundTripAndAreOptInOnTheWire) {
  CompileRequest request;
  request.model = "squeezenet";
  request.scenarios.push_back(serve::ScenarioSpec{});

  // Opt-in: a request without a deadline or auth must not grow new keys —
  // that is what keeps v4 requesters byte-compatible.
  const Json bare = serve::to_json(request);
  EXPECT_FALSE(bare.contains("deadline_ms"));
  EXPECT_FALSE(bare.contains("auth"));

  request.deadline_ms = 1500;
  request.auth = "token";
  const CompileRequest parsed =
      serve::request_from_json(wire(serve::to_json(request)));
  EXPECT_EQ(parsed.deadline_ms, 1500);
  EXPECT_EQ(parsed.auth, "token");

  // Negative and absurd budgets are rejected, not clamped.
  Json json = serve::to_json(request);
  json["deadline_ms"] = -1;
  EXPECT_THROW(serve::request_from_json(json), ServeError);
  // Past the ~10-year wire cap.
  json["deadline_ms"] = static_cast<std::int64_t>(400'000'000'000LL);
  EXPECT_THROW(serve::request_from_json(json), ServeError);
}

TEST(ServeProtocol, CacheGetPutStatsRequestsRoundTrip) {
  serve::CacheGetRequest get;
  get.id = 11;
  get.key = 0xdeadbeef12345678ull;
  get.auth = "t";
  const serve::CacheGetRequest get_parsed =
      serve::cache_get_request_from_json(wire(serve::to_json(get)));
  EXPECT_EQ(get_parsed.id, 11);
  EXPECT_EQ(get_parsed.key, get.key);
  EXPECT_EQ(get_parsed.auth, "t");

  serve::CachePutRequest put;
  put.id = 12;
  put.key = 0x0000000000000001ull;  // leading zeros must survive the hex trip
  put.artifact = Json::object();
  put.artifact["payload"] = std::string("x");
  const serve::CachePutRequest put_parsed =
      serve::cache_put_request_from_json(wire(serve::to_json(put)));
  EXPECT_EQ(put_parsed.key, put.key);
  EXPECT_EQ(put_parsed.artifact.get("payload", std::string()), "x");

  serve::StatsRequest stats;
  stats.id = 13;
  const serve::StatsRequest stats_parsed =
      serve::stats_request_from_json(wire(serve::to_json(stats)));
  EXPECT_EQ(stats_parsed.id, 13);
}

TEST(ServeProtocol, CacheRequestsRejectMalformedKeysAndMissingArtifacts) {
  Json get = Json::object();
  get["type"] = "cache_get";
  get["id"] = 1;
  get["key"] = std::string("not-hex");
  EXPECT_THROW(serve::cache_get_request_from_json(get), ServeError);
  get["key"] = std::string("abcd");  // too short: must be exactly 16 hex
  EXPECT_THROW(serve::cache_get_request_from_json(get), ServeError);

  Json keyless = Json::object();
  keyless["type"] = "cache_get";
  keyless["id"] = 1;
  EXPECT_THROW(serve::cache_get_request_from_json(keyless), ServeError);

  Json put = Json::object();
  put["type"] = "cache_put";
  put["id"] = 2;
  put["key"] = cache_key_hex(7);
  EXPECT_THROW(serve::cache_put_request_from_json(put), ServeError);  // no artifact
  put["artifact"] = std::string("not-an-object");
  EXPECT_THROW(serve::cache_put_request_from_json(put), ServeError);

  // Misspellings are rejected, not ignored — same contract as compile.
  Json stats = Json::object();
  stats["type"] = "stats";
  stats["id"] = 3;
  stats["auht"] = std::string("t");
  EXPECT_THROW(serve::stats_request_from_json(stats), ServeError);
}

TEST(ServeProtocol, CacheResultAndStatsMessagesRoundTrip) {
  serve::CacheResultMessage found;
  found.id = 5;
  found.key = 0xabcdef0123456789ull;
  found.found = true;
  found.artifact = Json::object();
  found.artifact["v"] = 1;
  const Json found_wire = wire(serve::to_json(found));
  ServerMessage message = serve::server_message_from_json(found_wire);
  ASSERT_TRUE(std::holds_alternative<serve::CacheResultMessage>(message));
  const auto& parsed = std::get<serve::CacheResultMessage>(message);
  EXPECT_EQ(parsed.key, found.key);
  EXPECT_TRUE(parsed.found);
  EXPECT_EQ(parsed.artifact.get("v", 0), 1);

  // A miss carries no artifact payload at all.
  serve::CacheResultMessage miss;
  miss.id = 6;
  miss.key = 42;
  const Json miss_wire = wire(serve::to_json(miss));
  EXPECT_FALSE(miss_wire.contains("artifact"));
  message = serve::server_message_from_json(miss_wire);
  ASSERT_TRUE(std::holds_alternative<serve::CacheResultMessage>(message));
  EXPECT_FALSE(std::get<serve::CacheResultMessage>(message).found);

  serve::StatsMessage stats;
  stats.id = 7;
  stats.stats = Json::object();
  stats.stats["role"] = std::string("daemon");
  message = serve::server_message_from_json(wire(serve::to_json(stats)));
  ASSERT_TRUE(std::holds_alternative<serve::StatsMessage>(message));
  EXPECT_EQ(std::get<serve::StatsMessage>(message).stats.get(
                "role", std::string()),
            "daemon");
}

}  // namespace
}  // namespace pimcomp
