// Unit tests of the src/cache/ stores: the extracted in-memory tier, the
// persistent disk tier (atomic writes, corrupt-entry self-healing, LRU
// eviction, read-only mode), and their read-through/write-through
// composition. These run under the CI ThreadSanitizer job like every other
// test, which keeps the concurrent store paths race-free.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/cache_store.hpp"
#include "cache/disk_store.hpp"
#include "cache/memory_store.hpp"
#include "cache/tiered_store.hpp"

namespace pimcomp {
namespace {

namespace fs = std::filesystem;

/// RAII temp directory for disk-store tests.
struct TempDir {
  TempDir() {
    std::string pattern = (fs::temp_directory_path() /
                           "pimcomp-cache-test-XXXXXX")
                              .string();
    char* made = ::mkdtemp(pattern.data());
    EXPECT_NE(made, nullptr);
    path = pattern;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

Json payload(int value) {
  Json json = Json::object();
  json["value"] = value;
  return json;
}

CacheEntry artifact_entry(int value) {
  CacheEntry entry;
  entry.artifact = payload(value);
  return entry;
}

CacheEntry decoded_entry(int value) {
  CacheEntry entry;
  entry.decoded = std::make_shared<const int>(value);
  return entry;
}

int decoded_value(const CacheEntry& entry) {
  return *std::static_pointer_cast<const int>(entry.decoded);
}

// ---------------------------------------------------------------------------
// Hex keys.
// ---------------------------------------------------------------------------

TEST(CacheKeyHex, RoundTripsAndRejectsGarbage) {
  for (std::uint64_t key :
       {0ull, 1ull, 0xdeadbeefull, 0xffffffffffffffffull,
        0x0123456789abcdefull}) {
    const std::string hex = cache_key_hex(key);
    EXPECT_EQ(hex.size(), 16u);
    ASSERT_TRUE(cache_key_from_hex(hex).has_value());
    EXPECT_EQ(*cache_key_from_hex(hex), key);
  }
  EXPECT_EQ(cache_key_hex(0xdeadbeefull), "00000000deadbeef");
  EXPECT_FALSE(cache_key_from_hex("").has_value());
  EXPECT_FALSE(cache_key_from_hex("deadbeef").has_value());          // short
  EXPECT_FALSE(cache_key_from_hex("00000000DEADBEEF").has_value());  // upper
  EXPECT_FALSE(cache_key_from_hex("00000000deadbeeg").has_value());
}

// ---------------------------------------------------------------------------
// InMemoryStore.
// ---------------------------------------------------------------------------

TEST(InMemoryStoreTest, MissThenStoreThenHit) {
  InMemoryStore store;
  EXPECT_FALSE(store.load(1).has_value());
  EXPECT_STREQ(store.store(1, decoded_entry(42)), cache_sources::kMemory);
  const auto hit = store.load(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_STREQ(hit->source, cache_sources::kMemory);
  EXPECT_EQ(decoded_value(hit->entry), 42);
  const CacheStoreStats stats = store.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(InMemoryStoreTest, FirstWriterWins) {
  InMemoryStore store;
  EXPECT_NE(store.store(7, decoded_entry(1)), nullptr);
  EXPECT_EQ(store.store(7, decoded_entry(2)), nullptr);  // kept the first
  EXPECT_EQ(decoded_value(store.load(7)->entry), 1);
}

TEST(InMemoryStoreTest, FifoEvictionRespectsBound) {
  InMemoryStore store(/*max_entries=*/2);
  store.store(1, decoded_entry(1));
  store.store(2, decoded_entry(2));
  store.store(3, decoded_entry(3));  // evicts key 1
  EXPECT_FALSE(store.load(1).has_value());
  EXPECT_TRUE(store.load(2).has_value());
  EXPECT_TRUE(store.load(3).has_value());
  EXPECT_EQ(store.stats().entries, 2u);
  EXPECT_EQ(store.stats().evictions, 1u);
}

TEST(InMemoryStoreTest, DropsRedundantArtifactWhenDecodedPresent) {
  InMemoryStore store;
  CacheEntry both = artifact_entry(5);
  both.decoded = std::make_shared<const int>(5);
  store.store(1, both);
  const auto hit = store.load(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->entry.has_artifact());  // decoded-only in memory
  EXPECT_EQ(decoded_value(hit->entry), 5);

  // Artifact-only entries are kept as-is (pure-JSON store still works).
  store.store(2, artifact_entry(9));
  ASSERT_TRUE(store.load(2).has_value());
  EXPECT_EQ(store.load(2)->entry.artifact.get("value", 0), 9);
}

TEST(InMemoryStoreTest, EraseAndPurge) {
  InMemoryStore store;
  store.store(1, decoded_entry(1));
  store.store(2, decoded_entry(2));
  store.erase(1);
  EXPECT_FALSE(store.load(1).has_value());
  EXPECT_EQ(store.purge(), 1u);
  EXPECT_EQ(store.stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// DiskStore.
// ---------------------------------------------------------------------------

CacheConfig disk_config(const std::string& dir,
                        std::uint64_t max_bytes = 0) {
  CacheConfig config;
  config.dir = dir;
  config.max_bytes = max_bytes;
  return config;
}

TEST(DiskStoreTest, StoreThenLoadRoundTripsThroughTheFilesystem) {
  TempDir dir;
  DiskStore store(disk_config(dir.path));
  EXPECT_FALSE(store.load(0xabcdef).has_value());
  EXPECT_STREQ(store.store(0xabcdef, artifact_entry(42)),
               cache_sources::kDisk);

  // A fresh store instance (a new process, conceptually) sees the entry.
  DiskStore reopened(disk_config(dir.path));
  const auto hit = reopened.load(0xabcdef);
  ASSERT_TRUE(hit.has_value());
  EXPECT_STREQ(hit->source, cache_sources::kDisk);
  EXPECT_EQ(hit->entry.artifact.get("value", 0), 42);
  EXPECT_EQ(hit->entry.decoded, nullptr);
  // The envelope was stamped on the way in.
  EXPECT_EQ(hit->entry.artifact.get("schema", -1), kCacheSchemaVersion);
  EXPECT_EQ(hit->entry.artifact.get("key", std::string()),
            cache_key_hex(0xabcdef));
}

TEST(DiskStoreTest, NeverRewritesAnExistingArtifact) {
  TempDir dir;
  DiskStore store(disk_config(dir.path));
  EXPECT_NE(store.store(1, artifact_entry(1)), nullptr);
  EXPECT_EQ(store.store(1, artifact_entry(2)), nullptr);
  EXPECT_EQ(store.load(1)->entry.artifact.get("value", 0), 1);
}

TEST(DiskStoreTest, DecodedOnlyEntriesAreNotPersisted) {
  TempDir dir;
  DiskStore store(disk_config(dir.path));
  EXPECT_EQ(store.store(1, decoded_entry(1)), nullptr);
  EXPECT_FALSE(store.load(1).has_value());
}

TEST(DiskStoreTest, CorruptArtifactIsAMissAndSelfHeals) {
  TempDir dir;
  DiskStore store(disk_config(dir.path));
  store.store(1, artifact_entry(42));

  // Truncate the artifact mid-file, as a crashed writer without the atomic
  // rename discipline would have.
  const std::string path = store.artifact_path(1);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "{\"schema\": 1, \"ke";
  }
  EXPECT_FALSE(store.load(1).has_value());
  EXPECT_FALSE(fs::exists(path));  // the garbage was unlinked...
  EXPECT_NE(store.store(1, artifact_entry(42)), nullptr);  // ...so a fresh
  EXPECT_TRUE(store.load(1).has_value());                  // store heals it
}

TEST(DiskStoreTest, WrongSchemaOrForeignKeyIsAMiss) {
  TempDir dir;
  DiskStore store(disk_config(dir.path));
  store.store(1, artifact_entry(42));

  // Rewrite the artifact under key 2's path: the envelope still says key 1,
  // so serving it for key 2 would be path aliasing — must be a miss.
  const std::string source_path = store.artifact_path(1);
  const std::string target_path = store.artifact_path(2);
  fs::create_directories(fs::path(target_path).parent_path());
  fs::copy_file(source_path, target_path);
  EXPECT_FALSE(store.load(2).has_value());
  EXPECT_TRUE(store.load(1).has_value());
}

TEST(DiskStoreTest, ReadOnlyModeNeverWrites) {
  TempDir dir;
  {
    DiskStore writer(disk_config(dir.path));
    writer.store(1, artifact_entry(42));
  }
  CacheConfig config = disk_config(dir.path);
  config.read_only = true;
  DiskStore store(config);
  EXPECT_TRUE(store.load(1).has_value());
  EXPECT_EQ(store.store(2, artifact_entry(2)), nullptr);
  EXPECT_FALSE(store.load(2).has_value());
  store.erase(1);
  EXPECT_TRUE(store.load(1).has_value());  // erase was a no-op
  EXPECT_EQ(store.purge(), 0u);
  EXPECT_TRUE(store.load(1).has_value());
}

TEST(DiskStoreTest, EvictsOldestWhenOverBudget) {
  TempDir dir;
  // Budget of one artifact-ish: every store pushes the total over and
  // evicts back down to the newest entries that fit.
  DiskStore probe(disk_config(dir.path));
  probe.store(1, artifact_entry(1));
  const std::uint64_t one_artifact = probe.stats().bytes;
  ASSERT_GT(one_artifact, 0u);
  probe.purge();

  DiskStore store(disk_config(dir.path, /*max_bytes=*/one_artifact * 2));
  store.store(1, artifact_entry(1));
  // mtime granularity on some filesystems is coarse; force distinct ages.
  fs::last_write_time(store.artifact_path(1),
                      fs::file_time_type::clock::now() -
                          std::chrono::hours(2));
  store.store(2, artifact_entry(2));
  fs::last_write_time(store.artifact_path(2),
                      fs::file_time_type::clock::now() -
                          std::chrono::hours(1));
  store.store(3, artifact_entry(3));  // over budget: key 1 (oldest) goes
  EXPECT_FALSE(store.load(1).has_value());
  EXPECT_TRUE(store.load(2).has_value());
  EXPECT_TRUE(store.load(3).has_value());
  EXPECT_GE(store.stats().evictions, 1u);
}

TEST(DiskStoreTest, LoadBumpsRecencySoHotEntriesSurviveEviction) {
  TempDir dir;
  DiskStore probe(disk_config(dir.path));
  probe.store(1, artifact_entry(1));
  const std::uint64_t one_artifact = probe.stats().bytes;
  probe.purge();

  DiskStore store(disk_config(dir.path, /*max_bytes=*/one_artifact * 2));
  store.store(1, artifact_entry(1));
  store.store(2, artifact_entry(2));
  // Age both, then touch key 1 via a load: key 2 becomes the LRU victim.
  for (std::uint64_t key : {1ull, 2ull}) {
    fs::last_write_time(store.artifact_path(key),
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(key + 1));
  }
  ASSERT_TRUE(store.load(1).has_value());
  store.store(3, artifact_entry(3));
  EXPECT_TRUE(store.load(1).has_value());
  EXPECT_FALSE(store.load(2).has_value());
  EXPECT_TRUE(store.load(3).has_value());
}

TEST(DiskStoreTest, PurgeRemovesEverythingStatsReflectIt) {
  TempDir dir;
  DiskStore store(disk_config(dir.path));
  store.store(1, artifact_entry(1));
  store.store(2, artifact_entry(2));
  EXPECT_EQ(store.stats().entries, 2u);
  EXPECT_GT(store.stats().bytes, 0u);
  EXPECT_EQ(store.purge(), 2u);
  EXPECT_EQ(store.stats().entries, 0u);
  EXPECT_EQ(store.stats().bytes, 0u);
}

TEST(DiskStoreTest, DestructiveOperationsNeverTouchForeignFiles) {
  // A --cache-dir pointed at a populated directory must be harmless: only
  // files matching the store's own layout (v<N>/<2-hex>/<16-hex>.json and
  // its temp pattern) are eligible for purge or eviction.
  TempDir dir;
  const fs::path root(dir.path);
  fs::create_directories(root / "data");
  const std::vector<fs::path> foreign = {
      root / "report.json",                // .json, but not in the layout
      root / "data" / "results.json",      // nested foreign .json
      root / "data" / "notes.txt",         // old non-json file
      root / "v1" / "ab" / "readme.txt",   // inside the layout dirs, wrong
  };                                       // name shape
  fs::create_directories(root / "v1" / "ab");
  for (const fs::path& path : foreign) {
    std::ofstream out(path);
    out << "precious";
    // Old enough that an unscoped temp sweep would have taken it.
    out.close();
    fs::last_write_time(path, fs::file_time_type::clock::now() -
                                  std::chrono::hours(48));
  }

  DiskStore store(disk_config(dir.path, /*max_bytes=*/1));  // evict always
  store.store(1, artifact_entry(1));
  store.store(2, artifact_entry(2));  // budget of 1 byte: eviction runs
  EXPECT_EQ(store.stats().entries, 0u);
  EXPECT_EQ(store.purge(), 0u);
  for (const fs::path& path : foreign) {
    EXPECT_TRUE(fs::exists(path)) << path;
  }
}

TEST(DiskStoreTest, ConcurrentStoresAndLoadsAreSafe) {
  TempDir dir;
  DiskStore store(disk_config(dir.path));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 16; ++i) {
        const auto key = static_cast<std::uint64_t>(i % 8);
        store.store(key, artifact_entry(static_cast<int>(key)));
        const auto hit = store.load(key);
        if (hit.has_value()) {
          EXPECT_EQ(hit->entry.artifact.get("value", -1),
                    static_cast<int>(key));
        }
      }
      (void)t;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(store.stats().entries, 8u);
}

// ---------------------------------------------------------------------------
// TieredStore.
// ---------------------------------------------------------------------------

std::unique_ptr<TieredStore> memory_over_disk(const std::string& dir,
                                              InMemoryStore** memory_out,
                                              DiskStore** disk_out) {
  auto memory = std::make_unique<InMemoryStore>();
  auto disk = std::make_unique<DiskStore>(disk_config(dir));
  *memory_out = memory.get();
  *disk_out = disk.get();
  std::vector<std::unique_ptr<CacheStore>> tiers;
  tiers.push_back(std::move(memory));
  tiers.push_back(std::move(disk));
  return std::make_unique<TieredStore>(std::move(tiers));
}

TEST(TieredStoreTest, WritesThroughAndReportsDeepestTier) {
  TempDir dir;
  InMemoryStore* memory = nullptr;
  DiskStore* disk = nullptr;
  auto tiered = memory_over_disk(dir.path, &memory, &disk);

  CacheEntry entry = artifact_entry(42);
  entry.decoded = std::make_shared<const int>(42);
  EXPECT_STREQ(tiered->store(1, entry), cache_sources::kDisk);
  EXPECT_TRUE(memory->load(1).has_value());
  EXPECT_TRUE(disk->load(1).has_value());

  // Decoded-only entries only land in memory — the deepest acceptor is
  // then the memory tier.
  EXPECT_STREQ(tiered->store(2, decoded_entry(2)), cache_sources::kMemory);
}

TEST(TieredStoreTest, ReadsThroughInTierOrder) {
  TempDir dir;
  InMemoryStore* memory = nullptr;
  DiskStore* disk = nullptr;
  auto tiered = memory_over_disk(dir.path, &memory, &disk);

  CacheEntry entry = artifact_entry(42);
  entry.decoded = std::make_shared<const int>(42);
  tiered->store(1, entry);

  // Served by the memory tier while it holds the key...
  EXPECT_STREQ(tiered->load(1)->source, cache_sources::kMemory);

  // ...and by the disk tier once memory forgets (a restart, conceptually).
  memory->purge();
  const auto hit = tiered->load(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_STREQ(hit->source, cache_sources::kDisk);
  // No auto-promotion: the caller decodes and re-stores.
  EXPECT_FALSE(memory->load(1).has_value());
  CacheEntry promoted;
  promoted.artifact = hit->entry.artifact;
  promoted.decoded = std::make_shared<const int>(42);
  tiered->store(1, promoted);
  EXPECT_STREQ(tiered->load(1)->source, cache_sources::kMemory);
}

TEST(TieredStoreTest, EraseAndPurgeCoverEveryTier) {
  TempDir dir;
  InMemoryStore* memory = nullptr;
  DiskStore* disk = nullptr;
  auto tiered = memory_over_disk(dir.path, &memory, &disk);
  CacheEntry entry = artifact_entry(1);
  entry.decoded = std::make_shared<const int>(1);
  tiered->store(1, entry);
  tiered->store(2, entry);

  tiered->erase(1);
  EXPECT_FALSE(memory->load(1).has_value());
  EXPECT_FALSE(disk->load(1).has_value());
  EXPECT_EQ(tiered->purge(), 2u);  // one memory + one disk entry
  EXPECT_FALSE(tiered->load(2).has_value());
}

}  // namespace
}  // namespace pimcomp
