// Command-line driver: the end-to-end toolchain in one binary.
//
//   pimcomp_cli <model> [options]          compile locally (default)
//   pimcomp_cli lower <model> [options]    lower to an instruction stream
//   pimcomp_cli serve ...                  run the compile-server daemon
//   pimcomp_cli submit --server E ...      submit a batch to a daemon
//   pimcomp_cli cache stats|purge ...      inspect / empty a --cache-dir
//
// Local compilation:
//   pimcomp_cli <model> [options]
//     <model>            zoo name (vgg16, resnet18, googlenet, inception-v3,
//                        squeezenet) or a path to a PIMCOMP JSON graph
//   --mode ht|ll         pipeline mode                   (default ll)
//   --parallelism N[,N...]  AGs computing per core       (default 20);
//                        a comma-separated list sweeps the values as one
//                        session batch
//   --jobs N|auto        worker threads for the batch ('auto' = one per
//                        hardware thread)                (default 1)
//   --mapper KEY         a MapperRegistry key            (default ga)
//   --scheduler KEY      a SchedulerRegistry key         (default: the mode's)
//   --backend KEY        lower through a BackendRegistry key (local mode:
//                        adds the lowering stage; reports stay unchanged)
//   --policy naive|add|ag                                (default ag)
//   --input N            zoo input resolution            (default 64/96)
//   --cores N            core count (default: auto-fit with 3x headroom)
//   --pop N --gens N     GA budget                       (default 40 x 60)
//   --seed N             RNG seed                        (default 1)
//   --ga-islands N       island count of the parallel GA (default 4;
//                        1 replays the historical sequential trajectory)
//   --ga-migration-interval N  generations between island ring
//                        migrations                      (default 10)
//   --dump-stream CORE   print a core's instruction stream (single run only)
//   --trace FILE         write the per-stage event timeline as JSON
//   --json               emit machine-readable JSON reports
//   --cache-dir PATH     persistent mapping cache: identical compilations
//                        (same model, hardware, and options) are reused
//                        across runs instead of re-running the GA
//   --list-mappers       print the registered mapper keys
//   --list-schedulers    print the registered scheduler keys
//   --list-backends      print the registered backend keys
//
// Lowering (see docs/backends.md for the artifact schema):
//   pimcomp_cli lower <model|graph.json> [compile options]
//                     [--backend KEY] [--out FILE] [--run] [--json]
//     --backend KEY      which backend emits the stream  (default isa-json)
//     --out FILE         write the artifact JSON to FILE
//     --run              execute the stream on the backend (needs an
//                        executing backend, e.g. 'sim') and report
//     --json             one JSON object on stdout: "stream" (when no
//                        --out) and "simulation" (with --run)
//
// Cache maintenance (the on-disk artifact store a --cache-dir run or a
// `pimcompd --cache-dir` daemon fills):
//   pimcomp_cli cache stats --cache-dir PATH [--json]
//   pimcomp_cli cache purge --cache-dir PATH
//
// Live cache counters (per-tier memory/disk/remote hit/miss/store numbers
// from a running daemon, or per-backend counters from a router):
//   pimcomp_cli cache stats --server ENDPOINT [--auth-token TOKEN] [--json]
//
// Serving (see docs/serving.md for the wire protocol and fleet topology):
//   pimcomp_cli serve (--unix PATH | --port N [--host ADDR])
//                     [--jobs N|auto] [--max-sessions N] [--cache-dir PATH]
//                     [--peer ENDPOINT]... [--auth-token TOKEN]
//   pimcomp_cli submit --server (unix:PATH | HOST:PORT) <model|graph.json>
//                     [compile options: --mode --parallelism --mapper
//                      --policy --input --cores --pop --gens --seed
//                      --ga-islands --ga-migration-interval]
//                     [--scenarios FILE] [--no-simulate] [--timeout SEC]
//                     [--priority N] [--deadline-ms N] [--auth-token TOKEN]
//                     [--trace FILE] [--json]
//
//   submit exit codes: 0 = every scenario compiled, 1 = some scenario
//   failed (or a simulation did), 2 = request/connection failure —
//   including a --timeout expiry — so scripts can branch without parsing.
//
// Examples:
//   ./build/examples/pimcomp_cli resnet18 --mode ll --parallelism 20
//   ./build/examples/pimcomp_cli resnet18 --parallelism 1,20,200 --jobs auto
//   ./build/examples/pimcomp_cli serve --unix /tmp/pimcompd.sock
//   ./build/examples/pimcomp_cli submit --server unix:/tmp/pimcompd.sock \
//       squeezenet --input 64 --parallelism 1,20

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "backend/instruction_stream.hpp"
#include "cache/disk_store.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/compile_report.hpp"
#include "core/pipeline.hpp"
#include "core/session.hpp"
#include "core/stream_printer.hpp"
#include "core/trace.hpp"
#include "graph/serialize.hpp"
#include "graph/zoo/zoo.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace pimcomp;

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " <model|graph.json> [--mode ht|ll] [--parallelism N[,N...]]\n"
         "       [--jobs N|auto] [--mapper KEY] [--scheduler KEY]\n"
         "       [--backend KEY] [--policy naive|add|ag]\n"
         "       [--input N] [--cores N] [--pop N] [--gens N]\n"
         "       [--seed N] [--ga-islands N] [--ga-migration-interval N]\n"
         "       [--dump-stream CORE] [--trace FILE] [--json]\n"
         "       [--cache-dir PATH] [--list-mappers] [--list-schedulers]\n"
         "       [--list-backends]\n"
         "   or: " << argv0
      << " lower <model|graph.json> [compile options] [--backend KEY]\n"
         "       [--out FILE] [--run] [--json] [--cache-dir PATH]\n"
         "   or: " << argv0
      << " serve (--unix PATH | --port N [--host ADDR])\n"
         "       [--jobs N|auto] [--max-sessions N] [--cache-dir PATH]\n"
         "       [--peer ENDPOINT]... [--auth-token TOKEN]\n"
         "   or: " << argv0
      << " submit --server (unix:PATH | HOST:PORT) <model|graph.json>\n"
         "       [compile options] [--scenarios FILE] [--no-simulate]\n"
         "       [--timeout SEC] [--priority N] [--deadline-ms N]\n"
         "       [--auth-token TOKEN] [--trace FILE] [--json]\n"
         "   or: " << argv0
      << " cache stats (--cache-dir PATH | --server ENDPOINT\n"
         "       [--auth-token TOKEN]) [--json]\n"
         "   or: " << argv0
      << " cache purge --cache-dir PATH\n";
  std::exit(2);
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "pimcomp: " << message << '\n';
  std::exit(2);
}

/// Strict decimal parse: the whole token must be numeric and >= min_value.
/// Rejects the silent-zero behavior of atoi ("--pop abc" compiled with 0).
long long parse_integer(const std::string& flag, const std::string& token,
                        long long min_value) {
  const std::optional<long long> value = parse_decimal(token);
  if (!value.has_value()) {
    fail(flag + " needs a number, got '" + token + "'");
  }
  if (*value < min_value) {
    fail(flag + " must be >= " + std::to_string(min_value) + ", got '" +
         token + "'");
  }
  return *value;
}

int parse_int(const std::string& flag, const std::string& token,
              long long min_value,
              long long max_value = std::numeric_limits<int>::max()) {
  const long long value = parse_integer(flag, token, min_value);
  if (value > max_value) {
    fail(flag + " is out of range: '" + token + "' (max " +
         std::to_string(max_value) + ")");
  }
  return static_cast<int>(value);
}

/// Worker-thread count: a positive integer or the literal 'auto' (one
/// worker per hardware thread). '0' used to mean auto and now errors, so a
/// script relying on the old magic number fails loudly instead of silently
/// changing meaning if we ever repurpose it. The rule itself lives in
/// serve::parse_jobs_flag so pimcompd and this binary cannot drift.
int parse_jobs(const std::string& flag, const std::string& token) {
  (void)flag;
  try {
    return serve::parse_jobs_flag(token);
  } catch (const serve::ServeError& e) {
    fail(e.what());
  }
}

/// Comma-separated positive parallelism degrees; rejects empty lists and
/// empty/garbage entries ("1,,2", "1,2,").
std::vector<int> parse_parallelism_list(const std::string& flag,
                                        const std::string& token) {
  constexpr long long kMaxParallelism = 1 << 20;
  std::vector<int> values;
  for (const std::string& piece : split(token, ',')) {
    values.push_back(parse_int(flag, piece, 1, kMaxParallelism));
  }
  if (values.empty()) {
    fail(flag + " needs a non-empty comma-separated list of degrees");
  }
  return values;
}

// Sanity ceilings: values past these make the backend allocate per-core /
// per-individual state until the machine keels over, long before any
// meaningful compile.
constexpr long long kMaxCores = 1 << 20;
constexpr long long kMaxGaBudget = 1'000'000;
constexpr long long kMaxGaIslands = 4096;  // matches the wire bound

bool is_zoo_model(const std::string& name) {
  for (const std::string& m : zoo::model_names()) {
    if (m == name) return true;
  }
  return false;
}

/// The CLI's zoo resolution when --input is omitted — one definition for
/// local and submit mode (the header's "default 64/96").
int default_zoo_input(const std::string& model) {
  return model == "inception-v3" ? 96 : 64;
}

/// The CLI's compile defaults (LL mode, 40x60 GA) — one definition for
/// local and submit mode, layered under every flag and scenario file.
CompileOptions default_cli_options() {
  CompileOptions options;
  options.mode = PipelineMode::kLowLatency;
  options.ga.population = 40;
  options.ga.generations = 60;
  return options;
}

/// The one registry-listing shape every --list-* flag prints ("name: k1
/// k2 ..."), so the three registries can never drift apart in format.
void list_keys(const char* name, const std::vector<std::string>& keys) {
  std::cout << name << ':';
  for (const std::string& key : keys) std::cout << ' ' << key;
  std::cout << '\n';
}

void list_mappers() { list_keys("mappers", MapperRegistry::keys()); }
void list_schedulers() { list_keys("schedulers", SchedulerRegistry::keys()); }
void list_backends() { list_keys("backends", BackendRegistry::keys()); }

void list_registries() {
  list_mappers();
  list_schedulers();
  list_backends();
}

/// Fail-fast validation of a registry-keyed flag: an unknown key prints
/// every registered key of every registry and exits 2, so a typo'd
/// --mapper/--scheduler/--backend never reaches the (expensive) pipeline.
std::string require_registry_key(const char* what, const std::string& key,
                                 bool (*contains)(const std::string&)) {
  if (!contains(key)) {
    std::cerr << "pimcomp: unknown " << what << " '" << key << "'\n";
    list_registries();
    std::exit(2);
  }
  return key;
}

/// The compile-options flag surface shared verbatim by local compilation,
/// `lower`, and `submit` (one copy, so the modes cannot drift): --mode,
/// --parallelism, --mapper, --scheduler, --backend, --policy, --input,
/// --cores, --pop, --gens, --seed, --ga-islands, --ga-migration-interval.
/// Returns true when `arg` was consumed.
/// Registry keys are validated against the local registries in every mode
/// (the daemon ships the same strategy set).
bool parse_compile_flag(const std::string& arg,
                        const std::function<std::string()>& next,
                        const char* argv0, CompileOptions& options,
                        std::vector<int>& parallelism_sweep, int& input_size,
                        int& cores) {
  if (arg == "--mode") {
    const std::string v = next();
    if (v == "ht") options.mode = PipelineMode::kHighThroughput;
    else if (v == "ll") options.mode = PipelineMode::kLowLatency;
    else usage(argv0);
  } else if (arg == "--parallelism") {
    parallelism_sweep = parse_parallelism_list(arg, next());
    options.parallelism_degree = parallelism_sweep.front();
  } else if (arg == "--mapper") {
    options.mapper =
        require_registry_key("mapper", next(), &MapperRegistry::contains);
  } else if (arg == "--scheduler") {
    options.scheduler = require_registry_key("scheduler", next(),
                                             &SchedulerRegistry::contains);
  } else if (arg == "--backend") {
    options.backend =
        require_registry_key("backend", next(), &BackendRegistry::contains);
  } else if (arg == "--policy") {
    const std::string v = next();
    if (v == "naive") options.memory_policy = MemoryPolicy::kNaive;
    else if (v == "add") options.memory_policy = MemoryPolicy::kAddReuse;
    else if (v == "ag") options.memory_policy = MemoryPolicy::kAgReuse;
    else usage(argv0);
  } else if (arg == "--input") {
    input_size = parse_int(arg, next(), 1);
  } else if (arg == "--cores") {
    cores = parse_int(arg, next(), 1, kMaxCores);
  } else if (arg == "--pop") {
    options.ga.population = parse_int(arg, next(), 1, kMaxGaBudget);
  } else if (arg == "--gens") {
    options.ga.generations = parse_int(arg, next(), 0, kMaxGaBudget);
  } else if (arg == "--ga-islands") {
    options.ga.islands = parse_int(arg, next(), 1, kMaxGaIslands);
  } else if (arg == "--ga-migration-interval") {
    options.ga.migration_interval = parse_int(arg, next(), 1, kMaxGaBudget);
  } else if (arg == "--seed") {
    options.seed = static_cast<std::uint64_t>(parse_integer(arg, next(), 0));
  } else {
    return false;
  }
  return true;
}

void write_trace(const TraceRecorder& recorder, const std::string& path) {
  try {
    json_to_file(recorder.to_json(), path);
    std::cerr << "pimcomp: wrote " << recorder.size() << " trace event(s) to "
              << path << '\n';
  } catch (const std::exception& e) {
    std::cerr << "pimcomp: failed to write trace file: " << e.what() << '\n';
  }
}

// ---------------------------------------------------------------------------
// `pimcomp_cli serve`
// ---------------------------------------------------------------------------

int run_serve(int argc, char** argv, const char* argv0) {
  (void)argv0;
  // One daemon frontend for both binaries: flag grammar, lifecycle, and
  // diagnostics live in serve::run_daemon (pimcompd delegates identically).
  return serve::run_daemon(argc, argv, "pimcomp serve");
}

// ---------------------------------------------------------------------------
// `pimcomp_cli submit`
// ---------------------------------------------------------------------------

void print_event(const PipelineEvent& event) {
  const std::string who =
      event.scenario.empty() ? std::string("-") : event.scenario;
  const std::string tier =
      event.source.empty() ? std::string() : " from " + event.source;
  switch (event.kind) {
    case PipelineEvent::Kind::kStageBegin:
      std::cerr << ".. [" << who << "] " << event.name << " started\n";
      break;
    case PipelineEvent::Kind::kStageEnd:
      std::cerr << ".. [" << who << "] " << event.name << " done ("
                << format_double(event.seconds, 3) << "s)\n";
      break;
    case PipelineEvent::Kind::kCacheHit:
      std::cerr << ".. [" << who << "] " << event.name << " cache hit" << tier
                << " (#" << event.hits << ")\n";
      break;
    case PipelineEvent::Kind::kCacheStore:
      std::cerr << ".. [" << who << "] " << event.name << " cached" << tier
                << " (#" << event.hits << ")\n";
      break;
  }
}

int run_submit(int argc, char** argv, const char* argv0) {
  std::string server_endpoint;
  std::string model;
  std::string scenarios_path;
  std::string trace_path;
  CompileOptions options = default_cli_options();
  std::vector<int> parallelism_sweep;
  int input_size = 0;
  int cores = 0;
  int timeout_seconds = 0;  // 0 = wait forever (the historical behavior)
  int priority = 0;
  long long deadline_ms = 0;  // 0 = no deadline
  std::string auth_token;
  bool simulate = true;
  bool emit_json = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv0);
      return argv[++i];
    };
    if (parse_compile_flag(arg, next, argv0, options, parallelism_sweep,
                           input_size, cores)) {
      continue;
    }
    if (arg == "--server") {
      server_endpoint = next();
    } else if (arg == "--scenarios") {
      scenarios_path = next();
    } else if (arg == "--no-simulate") {
      simulate = false;
    } else if (arg == "--timeout") {
      // Scripting guard: a hung or wedged daemon turns into exit code 2
      // after this many seconds of frame silence instead of hanging the
      // pipeline that invoked us.
      timeout_seconds = parse_int(arg, next(), 1, 24 * 3600);
    } else if (arg == "--priority") {
      priority = parse_int(arg, next(), -1000, 1000);
    } else if (arg == "--deadline-ms") {
      // Freshness guard: a scenario still queued when the budget expires
      // is dropped by the daemon with error_kind "deadline" instead of
      // burning compile time on an answer nobody is waiting for.
      deadline_ms = parse_integer(arg, next(), 1);
    } else if (arg == "--auth-token") {
      auth_token = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--json") {
      emit_json = true;
    } else if (!arg.empty() && arg[0] != '-' && model.empty()) {
      model = arg;
    } else {
      usage(argv0);
    }
  }
  if (server_endpoint.empty()) fail("submit needs --server (unix:PATH|HOST:PORT)");
  if (model.empty()) fail("submit needs a model name or graph.json path");

  try {
    serve::CompileRequest request;
    if (is_zoo_model(model)) {
      request.model = model;
      // Same default as local mode: sending 0 would let the server resolve
      // the canonical 224-class resolution — a vastly bigger compile than
      // `pimcomp_cli <model>` runs.
      request.input_size =
          input_size != 0 ? input_size : default_zoo_input(model);
    } else {
      request.graph = json_from_file(model);
    }
    request.cores = cores;
    request.simulate = simulate;
    request.priority = priority;
    request.deadline_ms = deadline_ms;

    if (!scenarios_path.empty()) {
      if (!parallelism_sweep.empty()) {
        fail("--scenarios and --parallelism are mutually exclusive");
      }
      const Json entries = json_from_file(scenarios_path);
      if (!entries.is_array() || entries.size() == 0) {
        fail("--scenarios file must hold a non-empty JSON array");
      }
      for (std::size_t i = 0; i < entries.size(); ++i) {
        // The CLI's flag-built options are the base: an entry that sets
        // only {"parallelism": 40} inherits --mode/--pop/--gens/--seed
        // instead of silently reverting to GaConfig's 100x200 defaults.
        request.scenarios.push_back(
            serve::scenario_spec_from_json(entries.at(i), i, options));
      }
    } else {
      if (parallelism_sweep.empty()) {
        parallelism_sweep.push_back(options.parallelism_degree);
      }
      for (int parallelism : parallelism_sweep) {
        serve::ScenarioSpec spec;
        spec.label = "P=" + std::to_string(parallelism);
        spec.options = options;
        spec.options.parallelism_degree = parallelism;
        request.scenarios.push_back(std::move(spec));
      }
    }

    serve::CompileClient client = serve::CompileClient::connect(server_endpoint);
    if (timeout_seconds > 0) client.set_timeout(timeout_seconds);
    if (!auth_token.empty()) client.set_auth_token(auth_token);
    TraceRecorder recorder;
    const serve::CompileReply reply =
        client.submit(request, [&](const PipelineEvent& event) {
          recorder.record(event);
          if (!emit_json) print_event(event);
        });

    if (!trace_path.empty()) write_trace(recorder, trace_path);

    // A delivered batch with any failing scenario exits 1 — belt and
    // braces via both the per-outcome flags and the done frame's error
    // count, so a lost outcome frame can never turn a failure into exit 0.
    bool any_failed = reply.error_count > 0;
    if (emit_json) {
      Json out = Json::array();
      for (const serve::OutcomeMessage& outcome : reply.outcomes) {
        out.push_back(serve::to_json(outcome));
        if (!outcome.ok) any_failed = true;
      }
      std::cout << out.dump(2) << '\n';
    } else {
      Table table(model + " via " + server_endpoint);
      table.set_header({"scenario", "compile (s)", "latency (us)",
                        "throughput (inf/s)"});
      for (const serve::OutcomeMessage& outcome : reply.outcomes) {
        if (!outcome.ok) {
          std::cerr << "pimcomp: scenario '" << outcome.label << "' failed";
          if (!outcome.error_kind.empty()) {
            std::cerr << " (" << outcome.error_kind << ")";
          }
          std::cerr << ": " << outcome.error << '\n';
          any_failed = true;
          continue;
        }
        const bool has_sim = outcome.simulation.is_object();
        table.add_row(
            {outcome.label,
             format_double(serve::stage_seconds_from_json(outcome.compile), 2),
             has_sim ? format_double(
                           outcome.simulation.get("makespan_us", 0.0), 1)
                     : "-",
             has_sim ? format_double(
                           outcome.simulation.get("throughput_per_s", 0.0), 1)
                     : "-"});
      }
      table.print();
    }
    return any_failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "pimcomp: " << e.what() << '\n';
    return 2;
  }
}

// ---------------------------------------------------------------------------
// `pimcomp_cli lower` — compile and emit the lowered instruction stream.
// ---------------------------------------------------------------------------

int run_lower(int argc, char** argv, const char* argv0) {
  std::string model;
  std::string out_path;
  CompileOptions options = default_cli_options();
  options.backend = "isa-json";  // the reference emitter, unless overridden
  std::vector<int> parallelism_sweep;
  int input_size = 0;
  int cores = 0;
  bool run_stream = false;
  bool emit_json = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv0);
      return argv[++i];
    };
    if (parse_compile_flag(arg, next, argv0, options, parallelism_sweep,
                           input_size, cores)) {
      continue;
    }
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--run") {
      run_stream = true;
    } else if (arg == "--json") {
      emit_json = true;
    } else if (arg == "--cache-dir") {
      options.cache.dir = next();
    } else if (arg == "--list-backends") {
      list_backends();
      return 0;
    } else if (!arg.empty() && arg[0] != '-' && model.empty()) {
      model = arg;
    } else {
      usage(argv0);
    }
  }
  if (model.empty()) fail("lower needs a model name or graph.json path");
  if (parallelism_sweep.size() > 1) {
    fail("lower takes a single --parallelism value");
  }

  try {
    Graph graph = is_zoo_model(model)
                      ? zoo::build(model, input_size != 0
                                              ? input_size
                                              : default_zoo_input(model))
                      : load_graph(model);
    HardwareConfig hw = HardwareConfig::puma_default();
    if (cores > 0) {
      hw.core_count = cores;
    } else {
      hw = fit_core_count(graph, hw, 3.0);
    }

    CompilerSession session(std::move(graph), hw, options.cache);
    const CompileResult result = session.compile(options);
    PIMCOMP_CHECK(result.stream != nullptr,
                  "backend '" + options.backend +
                      "' produced no instruction stream");
    const InstructionStream& stream = *result.stream;
    const Json artifact = stream.to_json();

    if (!out_path.empty()) {
      json_to_file(artifact, out_path);
      std::cerr << "pimcomp: wrote instruction stream ("
                << stream.total_ops << " ops over " << stream.core_count()
                << " cores) to " << out_path << '\n';
    }

    Json report = Json::object();
    if (run_stream) {
      // Re-instantiate the backend that lowered the stream to execute it;
      // a pure emitter (isa-json) refuses with a pointer at 'sim'.
      const SimReport sim = BackendRegistry::create(options.backend)
                                ->execute(stream, hw);
      report["simulation"] = sim_report_to_json(sim);
      if (!emit_json) std::cout << sim.to_string() << '\n';
    }

    if (emit_json) {
      Json out = Json::object();
      if (out_path.empty()) out["stream"] = artifact;
      for (const auto& [key, value] : report.items()) out[key] = value;
      std::cout << out.dump(2) << '\n';
    } else if (out_path.empty()) {
      std::cout << "lowered '" << model << "' via " << stream.backend
                << ": " << stream.total_ops << " ops over "
                << stream.core_count() << " cores (isa v" << kIsaVersion
                << ", fingerprint "
                << cache_key_hex(stream.content_fingerprint())
                << "); use --out FILE or --json to capture the artifact\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "pimcomp: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// `pimcomp_cli cache` — maintenance of a persistent --cache-dir.
// ---------------------------------------------------------------------------

/// `cache stats --server`: render a daemon's per-tier counters (or a
/// router's per-backend counters) from its `stats` reply.
int print_server_stats(const std::string& endpoint,
                       const std::string& auth_token, bool emit_json) {
  try {
    serve::CompileClient client = serve::CompileClient::connect(endpoint);
    client.set_timeout(30);
    if (!auth_token.empty()) client.set_auth_token(auth_token);
    const Json payload = client.stats();
    if (emit_json) {
      std::cout << payload.dump(2) << '\n';
      return 0;
    }
    const std::string role = payload.get("role", std::string("daemon"));
    std::cout << role << ' ' << endpoint << ": "
              << payload.get("requests_served", static_cast<std::int64_t>(0))
              << " request(s) over "
              << payload.get("connections", static_cast<std::int64_t>(0))
              << " connection(s)\n";
    if (payload.contains("cache")) {
      const Json& tiers = payload.at("cache");
      for (std::size_t i = 0; i < tiers.size(); ++i) {
        const Json& row = tiers.at(i);
        std::cout << "  " << row.get("tier", std::string("?")) << ": "
                  << row.get("entries", static_cast<std::int64_t>(0))
                  << " artifact(s), "
                  << format_double(
                         static_cast<double>(row.get(
                             "bytes", static_cast<std::int64_t>(0))) /
                             1024.0,
                         1)
                  << " KiB, hits="
                  << row.get("hits", static_cast<std::int64_t>(0))
                  << " misses="
                  << row.get("misses", static_cast<std::int64_t>(0))
                  << " stores="
                  << row.get("stores", static_cast<std::int64_t>(0))
                  << " evictions="
                  << row.get("evictions", static_cast<std::int64_t>(0))
                  << '\n';
      }
    }
    if (payload.contains("backends")) {
      const Json& backends = payload.at("backends");
      for (std::size_t i = 0; i < backends.size(); ++i) {
        const Json& row = backends.at(i);
        std::cout << "  " << row.get("endpoint", std::string("?"))
                  << (row.get("healthy", false) ? " healthy" : " DOWN")
                  << ", requests="
                  << row.get("requests", static_cast<std::int64_t>(0))
                  << " retries="
                  << row.get("retries", static_cast<std::int64_t>(0))
                  << " failures="
                  << row.get("failures", static_cast<std::int64_t>(0))
                  << '\n';
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "pimcomp: " << e.what() << '\n';
    return 1;
  }
}

int run_cache(int argc, char** argv, const char* argv0) {
  std::string action;
  std::string dir;
  std::string server_endpoint;
  std::string auth_token;
  bool emit_json = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv0);
      return argv[++i];
    };
    if (arg == "--cache-dir") {
      dir = next();
    } else if (arg == "--server") {
      server_endpoint = next();
    } else if (arg == "--auth-token") {
      auth_token = next();
    } else if (arg == "--json") {
      emit_json = true;
    } else if (!arg.empty() && arg[0] != '-' && action.empty()) {
      action = arg;
    } else {
      usage(argv0);
    }
  }
  if (action != "stats" && action != "purge") {
    fail("cache wants an action: stats | purge");
  }
  if (!server_endpoint.empty()) {
    // Live mode: ask a running daemon (or router) for its counters — the
    // only way to see memory/remote tiers and hit/miss rates, which exist
    // per process, not on disk.
    if (action != "stats") fail("cache purge is local-only (--cache-dir)");
    if (!dir.empty()) fail("--cache-dir and --server are mutually exclusive");
    return print_server_stats(server_endpoint, auth_token, emit_json);
  }
  if (dir.empty()) fail("cache " + action + " needs --cache-dir PATH");

  try {
    CacheConfig config;
    config.dir = dir;
    config.max_bytes = 0;  // maintenance must never trigger eviction
    DiskStore store(config);

    if (action == "purge") {
      const std::uint64_t removed = store.purge();
      std::cout << "purged " << removed << " artifact(s) from " << dir
                << '\n';
      return 0;
    }

    const CacheStoreStats stats = store.stats();
    if (emit_json) {
      Json out = Json::object();
      out["dir"] = dir;
      out["schema_version"] = kCacheSchemaVersion;
      out["entries"] = static_cast<std::int64_t>(stats.entries);
      out["bytes"] = static_cast<std::int64_t>(stats.bytes);
      std::cout << out.dump(2) << '\n';
    } else {
      std::cout << "cache " << dir << " (schema v" << kCacheSchemaVersion
                << "): " << stats.entries << " artifact(s), "
                << format_double(static_cast<double>(stats.bytes) / 1024.0, 1)
                << " KiB on disk\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "pimcomp: " << e.what() << '\n';
    return 1;
  }
}

// ---------------------------------------------------------------------------
// Local compilation (the original mode).
// ---------------------------------------------------------------------------

int run_local(int argc, char** argv) {
  const char* argv0 = argv[0];
  if (argc == 2 && std::string(argv[1]) == "--list-mappers") {
    list_mappers();
    return 0;
  }
  if (argc == 2 && std::string(argv[1]) == "--list-schedulers") {
    list_schedulers();
    return 0;
  }
  if (argc == 2 && std::string(argv[1]) == "--list-backends") {
    list_backends();
    return 0;
  }
  if (argc < 2) usage(argv0);
  const std::string model = argv[1];

  CompileOptions options = default_cli_options();
  std::vector<int> parallelism_sweep;  // >1 entries = a session batch
  int jobs = 1;
  int input_size = 0;
  int cores = 0;
  int dump_core = -1;
  bool emit_json = false;
  std::string trace_path;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv0);
      return argv[++i];
    };
    if (parse_compile_flag(arg, next, argv0, options, parallelism_sweep,
                           input_size, cores)) {
      continue;
    }
    if (arg == "--jobs") {
      jobs = parse_jobs(arg, next());
    } else if (arg == "--dump-stream") {
      dump_core = parse_int(arg, next(), 0);
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--json") {
      emit_json = true;
    } else if (arg == "--cache-dir") {
      options.cache.dir = next();
    } else if (arg == "--list-mappers") {
      list_mappers();
      return 0;
    } else if (arg == "--list-schedulers") {
      list_schedulers();
      return 0;
    } else if (arg == "--list-backends") {
      list_backends();
      return 0;
    } else {
      usage(argv0);
    }
  }

  try {
    Graph graph = is_zoo_model(model)
                      ? zoo::build(model, input_size != 0
                                              ? input_size
                                              : default_zoo_input(model))
                      : load_graph(model);

    HardwareConfig hw = HardwareConfig::puma_default();
    if (cores > 0) {
      hw.core_count = cores;
    } else {
      hw = fit_core_count(graph, hw, 3.0);
    }

    CompilerSession session(std::move(graph), hw, options.cache);
    session.set_jobs(jobs);

    TraceRecorder recorder;
    if (!trace_path.empty()) session.set_observer(&recorder);

    if (parallelism_sweep.size() > 1) {
      // A parallelism sweep through the asynchronous job API: every point
      // is submitted up front as a CompileJob on the session's resident
      // --jobs workers, then awaited in submission order — per-scenario
      // outcomes, so a failing point reports its error without killing
      // the sweep.
      if (dump_core >= 0) {
        fail("--dump-stream needs a single --parallelism value");
      }
      std::vector<CompileJob> sweep_jobs;
      for (std::size_t i = 0; i < parallelism_sweep.size(); ++i) {
        CompileOptions point = options;
        point.parallelism_degree = parallelism_sweep[i];
        JobOptions job_options;
        job_options.index = static_cast<int>(i);
        sweep_jobs.push_back(session.submit(
            point, "P=" + std::to_string(parallelism_sweep[i]),
            job_options));
      }
      for (const CompileJob& job : sweep_jobs) job.wait();
      if (!trace_path.empty()) write_trace(recorder, trace_path);

      bool any_failed = false;
      if (emit_json) {
        Json out = Json::array();
        for (const CompileJob& job : sweep_jobs) {
          // wait() is idempotent and hands back a reference — no copy of
          // the (large) CompileResult is ever taken.
          const ScenarioOutcome& outcome = job.wait();
          Json entry = Json::object();
          entry["scenario"] = outcome.label;
          if (outcome.ok()) {
            entry["compile"] = compile_result_to_json(*outcome.result);
            // A simulation failure stays scoped to its scenario, matching
            // the batch's per-scenario error isolation (and the server).
            try {
              entry["simulation"] =
                  sim_report_to_json(session.simulate(*outcome.result));
            } catch (const std::exception& e) {
              entry["error"] = std::string("simulation failed: ") + e.what();
              any_failed = true;
            }
          } else {
            entry["error"] = outcome.error;
            entry["error_kind"] = to_string(outcome.error_kind);
            any_failed = true;
          }
          out.push_back(std::move(entry));
        }
        std::cout << out.dump(2) << '\n';
      } else {
        const bool ht = options.mode == PipelineMode::kHighThroughput;
        Table table(model + " parallelism sweep (" +
                    std::string(ht ? "HT" : "LL") + " mode, jobs=" +
                    std::to_string(session.jobs()) + ")");
        table.set_header({"scenario", "compile (s)",
                          ht ? "throughput (inf/s)" : "latency (us)"});
        for (const CompileJob& job : sweep_jobs) {
          const ScenarioOutcome& outcome = job.wait();
          if (!outcome.ok()) {
            std::cerr << "pimcomp: scenario '" << outcome.label << "' failed ("
                      << to_string(outcome.error_kind)
                      << "): " << outcome.error << '\n';
            any_failed = true;
            continue;
          }
          try {
            const SimReport sim = session.simulate(*outcome.result);
            table.add_row(
                {outcome.label,
                 format_double(outcome.result->stage_times.total(), 2),
                 format_double(ht ? sim.throughput_per_sec()
                                  : to_us(sim.makespan),
                               1)});
          } catch (const std::exception& e) {
            std::cerr << "pimcomp: scenario '" << outcome.label
                      << "' simulation failed: " << e.what() << '\n';
            any_failed = true;
          }
        }
        table.print();
      }
      return any_failed ? 1 : 0;
    }

    const CompileResult result = session.compile(options);
    const SimReport sim = session.simulate(result);
    if (!trace_path.empty()) write_trace(recorder, trace_path);

    if (emit_json) {
      Json out = Json::object();
      out["compile"] = compile_result_to_json(result);
      out["simulation"] = sim_report_to_json(sim);
      std::cout << out.dump(2) << '\n';
    } else {
      std::cout << describe(result) << '\n'
                << print_schedule_summary(result.schedule) << '\n'
                << sim.to_string() << '\n';
      if (options.mode == PipelineMode::kHighThroughput) {
        std::cout << "throughput: " << sim.throughput_per_sec()
                  << " inferences/s\n";
      } else {
        std::cout << "latency: " << to_us(sim.makespan) << " us\n";
      }
    }
    if (dump_core >= 0) {
      std::cout << '\n'
                << print_core_stream(result.schedule, session.graph(),
                                     dump_core);
    }
  } catch (const std::exception& e) {
    std::cerr << "pimcomp: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string subcommand = argv[1];
    if (subcommand == "lower") {
      return run_lower(argc - 2, argv + 2, argv[0]);
    }
    if (subcommand == "serve") {
      return run_serve(argc - 2, argv + 2, argv[0]);
    }
    if (subcommand == "submit") {
      return run_submit(argc - 2, argv + 2, argv[0]);
    }
    if (subcommand == "cache") {
      return run_cache(argc - 2, argv + 2, argv[0]);
    }
  }
  return run_local(argc, argv);
}
