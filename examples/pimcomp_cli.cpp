// Command-line driver: the end-to-end toolchain in one binary.
//
//   pimcomp_cli <model> [options]
//     <model>            zoo name (vgg16, resnet18, googlenet, inception-v3,
//                        squeezenet) or a path to a PIMCOMP JSON graph
//   --mode ht|ll         pipeline mode                   (default ll)
//   --parallelism N[,N...]  AGs computing per core       (default 20);
//                        a comma-separated list sweeps the values as one
//                        session batch
//   --jobs N             worker threads for the batch (0 = one per
//                        hardware thread)                (default 1)
//   --mapper KEY         a MapperRegistry key            (default ga)
//   --policy naive|add|ag                                (default ag)
//   --input N            zoo input resolution            (default 64/96)
//   --cores N            core count (default: auto-fit with 3x headroom)
//   --pop N --gens N     GA budget                       (default 40 x 60)
//   --seed N             RNG seed                        (default 1)
//   --dump-stream CORE   print a core's instruction stream (single run only)
//   --json               emit machine-readable JSON reports
//   --list-mappers       print the registered mapper/scheduler keys
//
// Examples:
//   ./build/examples/pimcomp_cli resnet18 --mode ll --parallelism 20
//   ./build/examples/pimcomp_cli resnet18 --parallelism 1,20,200 --jobs 0

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/compile_report.hpp"
#include "core/pipeline.hpp"
#include "core/session.hpp"
#include "core/stream_printer.hpp"
#include "graph/serialize.hpp"
#include "graph/zoo/zoo.hpp"

namespace {

using namespace pimcomp;

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <model|graph.json> [--mode ht|ll] [--parallelism N[,N...]]\n"
               "       [--jobs N] [--mapper KEY] [--policy naive|add|ag]\n"
               "       [--input N] [--cores N] [--pop N] [--gens N]\n"
               "       [--seed N] [--dump-stream CORE] [--json]\n"
               "       [--list-mappers]\n";
  std::exit(2);
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "pimcomp: " << message << '\n';
  std::exit(2);
}

/// Strict decimal parse: the whole token must be numeric and >= min_value.
/// Rejects the silent-zero behavior of atoi ("--pop abc" compiled with 0).
long long parse_integer(const std::string& flag, const std::string& token,
                        long long min_value) {
  if (token.empty()) fail(flag + " needs a number, got ''");
  std::size_t consumed = 0;
  long long value = 0;
  try {
    value = std::stoll(token, &consumed, 10);
  } catch (const std::exception&) {
    fail(flag + " needs a number, got '" + token + "'");
  }
  if (consumed != token.size()) {
    fail(flag + " needs a number, got '" + token + "'");
  }
  if (value < min_value) {
    fail(flag + " must be >= " + std::to_string(min_value) + ", got '" +
         token + "'");
  }
  return value;
}

int parse_int(const std::string& flag, const std::string& token,
              long long min_value,
              long long max_value = std::numeric_limits<int>::max()) {
  const long long value = parse_integer(flag, token, min_value);
  if (value > max_value) {
    fail(flag + " is out of range: '" + token + "' (max " +
         std::to_string(max_value) + ")");
  }
  return static_cast<int>(value);
}

// Sanity ceilings: values past these make the backend allocate per-core /
// per-individual state until the machine keels over, long before any
// meaningful compile.
constexpr long long kMaxCores = 1 << 20;
constexpr long long kMaxParallelism = 1 << 20;
constexpr long long kMaxGaBudget = 1'000'000;

bool is_zoo_model(const std::string& name) {
  for (const std::string& m : zoo::model_names()) {
    if (m == name) return true;
  }
  return false;
}

void list_registries() {
  std::cout << "mappers:";
  for (const std::string& key : MapperRegistry::keys()) {
    std::cout << ' ' << key;
  }
  std::cout << "\nschedulers:";
  for (const std::string& key : SchedulerRegistry::keys()) {
    std::cout << ' ' << key;
  }
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--list-mappers") {
    list_registries();
    return 0;
  }
  if (argc < 2) usage(argv[0]);
  const std::string model = argv[1];

  CompileOptions options;
  options.mode = PipelineMode::kLowLatency;
  options.ga.population = 40;
  options.ga.generations = 60;
  std::vector<int> parallelism_sweep;  // >1 entries = a session batch
  int jobs = 1;
  int input_size = 0;
  int cores = 0;
  int dump_core = -1;
  bool emit_json = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--mode") {
      const std::string v = next();
      if (v == "ht") options.mode = PipelineMode::kHighThroughput;
      else if (v == "ll") options.mode = PipelineMode::kLowLatency;
      else usage(argv[0]);
    } else if (arg == "--parallelism") {
      parallelism_sweep.clear();
      for (const std::string& token : split(next(), ',')) {
        parallelism_sweep.push_back(
            parse_int(arg, token, 1, kMaxParallelism));
      }
      options.parallelism_degree = parallelism_sweep.front();
    } else if (arg == "--jobs") {
      jobs = parse_int(arg, next(), 0, 1 << 10);
    } else if (arg == "--mapper") {
      const std::string v = next();
      if (!MapperRegistry::contains(v)) {
        std::cerr << "pimcomp: unknown mapper '" << v << "'\n";
        list_registries();
        return 2;
      }
      options.mapper = v;
    } else if (arg == "--policy") {
      const std::string v = next();
      if (v == "naive") options.memory_policy = MemoryPolicy::kNaive;
      else if (v == "add") options.memory_policy = MemoryPolicy::kAddReuse;
      else if (v == "ag") options.memory_policy = MemoryPolicy::kAgReuse;
      else usage(argv[0]);
    } else if (arg == "--input") {
      input_size = parse_int(arg, next(), 1);
    } else if (arg == "--cores") {
      cores = parse_int(arg, next(), 1, kMaxCores);
    } else if (arg == "--pop") {
      options.ga.population = parse_int(arg, next(), 1, kMaxGaBudget);
    } else if (arg == "--gens") {
      options.ga.generations = parse_int(arg, next(), 0, kMaxGaBudget);
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(parse_integer(arg, next(), 0));
    } else if (arg == "--dump-stream") {
      dump_core = parse_int(arg, next(), 0);
    } else if (arg == "--json") {
      emit_json = true;
    } else if (arg == "--list-mappers") {
      list_registries();
      return 0;
    } else {
      usage(argv[0]);
    }
  }

  try {
    Graph graph = is_zoo_model(model)
                      ? zoo::build(model, input_size != 0
                                              ? input_size
                                              : (model == "inception-v3"
                                                     ? 96
                                                     : 64))
                      : load_graph(model);

    HardwareConfig hw = HardwareConfig::puma_default();
    if (cores > 0) {
      hw.core_count = cores;
    } else {
      hw = fit_core_count(graph, hw, 3.0);
    }

    CompilerSession session(std::move(graph), hw);
    session.set_jobs(jobs);

    if (parallelism_sweep.size() > 1) {
      // A parallelism sweep: one session batch fanned out over --jobs
      // workers, with per-scenario outcomes (a failing point reports its
      // error without killing the sweep).
      if (dump_core >= 0) {
        fail("--dump-stream needs a single --parallelism value");
      }
      for (int parallelism : parallelism_sweep) {
        CompileOptions point = options;
        point.parallelism_degree = parallelism;
        session.enqueue(point, "P=" + std::to_string(parallelism));
      }
      const std::vector<ScenarioOutcome> outcomes = session.compile_all();

      bool any_failed = false;
      if (emit_json) {
        Json out = Json::array();
        for (const ScenarioOutcome& outcome : outcomes) {
          Json entry = Json::object();
          entry["scenario"] = outcome.label;
          if (outcome.ok()) {
            entry["compile"] = compile_result_to_json(*outcome.result);
            entry["simulation"] =
                sim_report_to_json(session.simulate(*outcome.result));
          } else {
            entry["error"] = outcome.error;
            any_failed = true;
          }
          out.push_back(std::move(entry));
        }
        std::cout << out.dump(2) << '\n';
      } else {
        const bool ht = options.mode == PipelineMode::kHighThroughput;
        Table table(model + " parallelism sweep (" +
                    std::string(ht ? "HT" : "LL") + " mode, jobs=" +
                    std::to_string(session.jobs()) + ")");
        table.set_header({"scenario", "compile (s)",
                          ht ? "throughput (inf/s)" : "latency (us)"});
        for (const ScenarioOutcome& outcome : outcomes) {
          if (!outcome.ok()) {
            std::cerr << "pimcomp: scenario '" << outcome.label
                      << "' failed: " << outcome.error << '\n';
            any_failed = true;
            continue;
          }
          const SimReport sim = session.simulate(*outcome.result);
          table.add_row(
              {outcome.label,
               format_double(outcome.result->stage_times.total(), 2),
               format_double(ht ? sim.throughput_per_sec()
                                : to_us(sim.makespan),
                             1)});
        }
        table.print();
      }
      return any_failed ? 1 : 0;
    }

    const CompileResult result = session.compile(options);
    const SimReport sim = session.simulate(result);

    if (emit_json) {
      Json out = Json::object();
      out["compile"] = compile_result_to_json(result);
      out["simulation"] = sim_report_to_json(sim);
      std::cout << out.dump(2) << '\n';
    } else {
      std::cout << describe(result) << '\n'
                << print_schedule_summary(result.schedule) << '\n'
                << sim.to_string() << '\n';
      if (options.mode == PipelineMode::kHighThroughput) {
        std::cout << "throughput: " << sim.throughput_per_sec()
                  << " inferences/s\n";
      } else {
        std::cout << "latency: " << to_us(sim.makespan) << " us\n";
      }
    }
    if (dump_core >= 0) {
      std::cout << '\n'
                << print_core_stream(result.schedule, session.graph(),
                                     dump_core);
    }
  } catch (const std::exception& e) {
    std::cerr << "pimcomp: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
