// Low-latency vision scenario: an intermittent camera stream needs every
// single frame answered fast, so compile ResNet-18 in LL mode (fine-grained
// inter-layer pipeline) and compare PIMCOMP's GA against the PUMA-like
// baseline.
//
//   ./build/examples/low_latency_vision [input_size]

#include <cstdlib>
#include <iostream>

#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/session.hpp"
#include "graph/zoo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace pimcomp;

  const int input_size = argc > 1 ? std::atoi(argv[1]) : 64;
  Graph graph = zoo::resnet18(input_size);
  const HardwareConfig hw =
      fit_core_count(graph, HardwareConfig::puma_default(), 3.0);
  std::cout << "resnet18 @ " << input_size << ", " << hw.core_count
            << " cores\n\n";
  // Both mappers as one session batch over a shared partitioned workload,
  // compiled on parallel workers; the strategies are registry keys, so a
  // plugin mapper slots in by name.
  CompilerSession session(std::move(graph), hw);
  session.set_jobs(0);  // one worker per hardware thread
  for (const std::string& mapper : {std::string("ga"), std::string("puma")}) {
    CompileOptions options;
    options.mode = PipelineMode::kLowLatency;
    options.parallelism_degree = 20;
    options.mapper = mapper;
    options.ga.population = 60;
    options.ga.generations = 80;
    session.enqueue(options, mapper);
  }

  Table table("LL latency: PIMCOMP GA vs PUMA-like baseline");
  table.set_header({"mapper", "latency (us)", "messages", "comm (kB)",
                    "leakage (uJ)", "active cores"});
  double latency_ga = 0.0, latency_puma = 0.0;
  for (const ScenarioOutcome& outcome : session.compile_all()) {
    if (!outcome.ok()) {
      std::cerr << "scenario '" << outcome.label << "' failed: "
                << outcome.error << '\n';
      continue;
    }
    const CompileResult& result = *outcome.result;
    const SimReport sim = session.simulate(result);
    table.add_row({result.mapper_name, format_double(to_us(sim.makespan), 1),
                   std::to_string(sim.comm_messages),
                   format_double(static_cast<double>(sim.comm_bytes) / 1024, 0),
                   format_double(to_uj(sim.leakage_energy), 0),
                   std::to_string(sim.active_cores)});
    (result.options.mapper == "ga" ? latency_ga : latency_puma) =
        to_us(sim.makespan);
  }
  table.print();
  std::cout << "\nPIMCOMP speedup over PUMA-like: "
            << format_ratio(latency_puma / latency_ga) << '\n';
  return 0;
}
