// Custom-network workflow: author a model with the builder, persist it in
// the PIMCOMP JSON graph format (the ONNX-stand-in frontend), reload it, and
// compile under both pipeline modes.
//
//   ./build/examples/custom_network [output.json]

#include <iostream>

#include "core/compile_report.hpp"
#include "core/session.hpp"
#include "graph/builder.hpp"
#include "graph/serialize.hpp"

int main(int argc, char** argv) {
  using namespace pimcomp;

  // A small branched detector backbone: stem, two inception-ish branches,
  // residual merge, classifier.
  GraphBuilder b("custom-backbone", {3, 64, 64});
  NodeId x = b.conv_relu(b.input(), 32, 3, 2, 1, "stem");
  NodeId left = b.conv_relu(x, 32, 1, 1, 0, "branch1x1");
  NodeId right = b.conv_relu(x, 16, 1, 1, 0, "branch3x3_reduce");
  right = b.conv_relu(right, 32, 3, 1, 1, "branch3x3");
  NodeId merged = b.eltwise_add(left, right, "merge");
  merged = b.max_pool(merged, 2, 2, 0, "pool");
  NodeId out = b.conv_relu(merged, 64, 3, 1, 1, "head");
  out = b.global_avg_pool(out, "gap");
  out = b.fc(b.flatten(out, "flatten"), 100, "fc");
  b.softmax(out, "prob");
  Graph graph = b.build();

  // Persist and reload through the JSON graph format.
  const std::string path = argc > 1 ? argv[1] : "/tmp/custom_backbone.json";
  save_graph(graph, path);
  Graph reloaded = load_graph(path);
  std::cout << "saved and reloaded '" << reloaded.name() << "' ("
            << reloaded.node_count() << " nodes) via " << path << "\n\n";

  // Both modes as one session batch: node partitioning runs once, the
  // cached workload is shared by the two scenarios, and the scenarios
  // compile on separate workers.
  CompilerSession session(std::move(reloaded), HardwareConfig::puma_default());
  session.set_jobs(0);  // one worker per hardware thread
  for (PipelineMode mode :
       {PipelineMode::kHighThroughput, PipelineMode::kLowLatency}) {
    CompileOptions options;
    options.mode = mode;
    options.ga.population = 30;
    options.ga.generations = 30;
    session.enqueue(options, to_string(mode));
  }
  for (const ScenarioOutcome& outcome : session.compile_all()) {
    if (!outcome.ok()) {
      std::cerr << "scenario '" << outcome.label << "' failed: "
                << outcome.error << '\n';
      continue;
    }
    const CompileResult& result = *outcome.result;
    const SimReport sim = session.simulate(result);
    std::cout << describe(result);
    std::cout << "  simulated " << to_string(result.options.mode) << ": "
              << to_us(sim.makespan) << " us, energy "
              << to_uj(sim.total_energy()) << " uJ\n\n";
  }
  return 0;
}
