// High-throughput serving scenario: compile VGG-16 in HT mode (the paper's
// inference-granularity pipeline) and sweep the parallelism degree to find
// the throughput/bandwidth sweet spot.
//
//   ./build/examples/throughput_server [input_size]

#include <cstdlib>
#include <iostream>

#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/session.hpp"
#include "graph/zoo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace pimcomp;

  const int input_size = argc > 1 ? std::atoi(argv[1]) : 64;
  Graph graph = zoo::vgg16(input_size);
  std::cout << "vgg16 @ " << input_size << "x" << input_size << ": "
            << graph.total_weight_params() / 1000000.0 << "M weights, "
            << graph.total_macs() / 1.0e9 << " GMACs/inference\n";

  // Size the machine so every layer fits with 3x replication headroom.
  const HardwareConfig hw =
      fit_core_count(graph, HardwareConfig::puma_default(), 3.0);
  std::cout << "using " << hw.core_count << " cores across "
            << hw.chip_count() << " chip(s)\n\n";

  // The parallelism sweep is a session batch: the four scenarios share one
  // node-partitioning pass through the session's workload cache and fan out
  // across worker threads.
  CompilerSession session(std::move(graph), hw);
  session.set_jobs(0);  // one worker per hardware thread
  for (int parallelism : {1, 20, 40, 200}) {
    CompileOptions options;
    options.mode = PipelineMode::kHighThroughput;
    options.parallelism_degree = parallelism;
    options.ga.population = 40;
    options.ga.generations = 40;
    session.enqueue(options, "P=" + std::to_string(parallelism));
  }

  Table table("HT throughput vs parallelism degree (vgg16)");
  table.set_header({"parallelism", "throughput (inf/s)", "busiest core (us)",
                    "dynamic energy (uJ)", "compile (s)"});
  for (const ScenarioOutcome& outcome : session.compile_all()) {
    if (!outcome.ok()) {
      std::cerr << "scenario '" << outcome.label << "' failed: "
                << outcome.error << '\n';
      continue;
    }
    const CompileResult& result = *outcome.result;
    const SimReport sim = session.simulate(result);
    table.add_row({std::to_string(result.options.parallelism_degree),
                   format_double(sim.throughput_per_sec(), 1),
                   format_double(to_us(sim.makespan), 1),
                   format_double(to_uj(sim.dynamic_energy.total()), 1),
                   format_double(result.stage_times.total(), 2)});
  }
  table.print();
  return 0;
}
