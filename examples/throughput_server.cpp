// High-throughput serving scenario: compile VGG-16 in HT mode (the paper's
// inference-granularity pipeline) and sweep the parallelism degree to find
// the throughput/bandwidth sweet spot.
//
// Since PR 3 this example exercises the real serving stack end to end: it
// boots a pimcompd CompileServer in-process on a private Unix socket,
// submits the sweep through the CompileClient, and renders the table from
// the wire outcomes — the same newline-delimited JSON protocol a remote
// client would speak, progress events included.
//
//   ./build/examples/throughput_server [input_size]

#include <unistd.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/string_util.hpp"
#include "common/table.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

int main(int argc, char** argv) {
  using namespace pimcomp;

  const int input_size = argc > 1 ? std::atoi(argv[1]) : 64;

  // One daemon, one client, one request. The socket lives in /tmp so the
  // example needs no privileges; the server removes it on stop().
  serve::ServerOptions server_options;
  server_options.unix_path =
      "/tmp/pimcomp-throughput-" + std::to_string(::getpid()) + ".sock";
  server_options.jobs = 0;  // one batch worker per hardware thread

  try {
    serve::CompileServer server(std::move(server_options));
    server.start();
    std::cout << "compile server on " << server.endpoint() << "\n\n";

    serve::CompileRequest request;
    request.model = "vgg16";
    request.input_size = input_size;
    // cores stay 0: the server auto-fits the machine with 3x replication
    // headroom, as the in-process version of this example did.
    for (int parallelism : {1, 20, 40, 200}) {
      serve::ScenarioSpec spec;
      spec.label = "P=" + std::to_string(parallelism);
      spec.options.mode = PipelineMode::kHighThroughput;
      spec.options.parallelism_degree = parallelism;
      spec.options.ga.population = 40;
      spec.options.ga.generations = 40;
      request.scenarios.push_back(std::move(spec));
    }

    serve::CompileClient client =
        serve::CompileClient::connect(server.endpoint());
    int stage_events = 0;
    int cache_hits = 0;
    const serve::CompileReply reply =
        client.submit(request, [&](const PipelineEvent& event) {
          if (event.kind == PipelineEvent::Kind::kCacheHit) {
            ++cache_hits;
          } else if (event.kind == PipelineEvent::Kind::kStageEnd) {
            ++stage_events;
            std::cout << "  [" << event.scenario << "] " << event.name
                      << " " << format_double(event.seconds, 2) << "s\n";
          }
        });

    std::cout << '\n'
              << stage_events << " stage event(s), " << cache_hits
              << " cache hit(s) streamed during compilation\n\n";

    Table table("HT throughput vs parallelism degree (vgg16, via pimcompd)");
    table.set_header({"parallelism", "throughput (inf/s)",
                      "busiest core (us)", "dynamic energy (uJ)",
                      "compile (s)"});
    for (const serve::OutcomeMessage& outcome : reply.outcomes) {
      if (!outcome.ok) {
        std::cerr << "scenario '" << outcome.label
                  << "' failed: " << outcome.error << '\n';
        continue;
      }
      const Json& compile = outcome.compile;
      const Json& sim = outcome.simulation;
      const double compile_seconds =
          serve::stage_seconds_from_json(compile);
      table.add_row(
          {std::to_string(compile.get("parallelism", 0)),
           format_double(sim.get("throughput_per_s", 0.0), 1),
           format_double(sim.get("makespan_us", 0.0), 1),
           format_double(sim.at("energy").get("dynamic_uj", 0.0), 1),
           format_double(compile_seconds, 2)});
    }
    table.print();

    server.stop();
    return reply.all_ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "throughput_server: " << e.what() << '\n';
    return 1;
  }
}
