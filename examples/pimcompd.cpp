// pimcompd — the PIMCOMP compile-server daemon.
//
// Listens on a Unix-domain or TCP socket for newline-delimited JSON compile
// requests (see docs/serving.md for the message reference), serves them
// through shared long-lived CompilerSessions (one per distinct
// (graph, hardware) identity, so clients reuse each other's partitioned
// workloads and mapping results), and streams per-stage progress events
// followed by per-scenario outcomes. SIGTERM/SIGINT shut down gracefully:
// in-flight batches finish, then the socket is closed and removed.
//
//   pimcompd --unix /run/pimcompd.sock [--jobs N|auto] [--max-sessions N]
//   pimcompd --port 7878 [--host 127.0.0.1] [--jobs N|auto]
//   pimcompd --unix /run/pimcompd.sock --cache-dir /var/cache/pimcomp
//
// --cache-dir enables the persistent mapping-artifact cache: identical
// compilations are served from disk across daemon restarts (clients see
// `cache_hit` frames whose "source" is "disk"), and several daemons may
// share one directory safely.
//
// Submit with `pimcomp_cli submit --server unix:/run/pimcompd.sock ...`,
// the C++ client (src/serve/client.hpp), or by hand:
//
//   printf '%s\n' '{"type":"compile","model":"squeezenet","input_size":64,
//     "scenarios":[{"label":"p20","options":{"mode":"ll"}}]}' \
//     | nc -U /run/pimcompd.sock
//
// `pimcomp_cli serve` is the same frontend (serve::run_daemon) under the
// toolchain binary; this standalone entry point exists so deployments ship
// one small daemon executable.

#include "serve/server.hpp"

int main(int argc, char** argv) {
  return pimcomp::serve::run_daemon(argc - 1, argv + 1, "pimcompd");
}
