// Design-space exploration: PIMCOMP is "universal" in the sense that the
// whole backend is driven by the HardwareConfig. This example retargets the
// same network across crossbar geometries and reports the
// performance / area / energy trade-off of each design point.
//
//   ./build/examples/design_space_exploration

#include <iostream>

#include "arch/area_model.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/compiler.hpp"
#include "graph/zoo/zoo.hpp"

int main() {
  using namespace pimcomp;

  struct DesignPoint {
    const char* label;
    int xbar_rows;
    int xbar_cols;
    int xbars_per_core;
  };
  const DesignPoint points[] = {
      {"64x64, 128 xbars/core", 64, 64, 128},
      {"128x128, 64 xbars/core (PUMA)", 128, 128, 64},
      {"256x256, 16 xbars/core", 256, 256, 16},
      {"128x128, 32 xbars/core", 128, 128, 32},
  };

  Table table("resnet18 @64 across crossbar design points (LL mode, P=20)");
  table.set_header({"design", "cores", "latency (us)", "chip area (mm2)",
                    "energy (uJ)", "xbar util"});
  for (const DesignPoint& point : points) {
    HardwareConfig hw = HardwareConfig::puma_default();
    hw.xbar_rows = point.xbar_rows;
    hw.xbar_cols = point.xbar_cols;
    hw.xbars_per_core = point.xbars_per_core;

    Graph graph = zoo::resnet18(64);
    hw = fit_core_count(graph, hw, 3.0);
    Compiler compiler(std::move(graph), hw);

    CompileOptions options;
    options.mode = PipelineMode::kLowLatency;
    options.ga.population = 30;
    options.ga.generations = 40;
    const CompileResult result = compiler.compile(options);
    const SimReport sim = compiler.simulate(result);
    const AreaReport area = compute_area(hw);

    const double utilization =
        static_cast<double>(result.solution.total_xbars_used()) /
        static_cast<double>(result.workload->total_xbars_available());
    table.add_row({point.label, std::to_string(hw.core_count),
                   format_double(to_us(sim.makespan), 1),
                   format_double(area.total_mm2, 1),
                   format_double(to_uj(sim.total_energy()), 0),
                   format_double(100.0 * utilization, 1) + "%"});
  }
  table.print();
  return 0;
}
