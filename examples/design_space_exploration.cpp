// Design-space exploration: PIMCOMP is "universal" in the sense that the
// whole backend is driven by the HardwareConfig. This example retargets the
// same network across crossbar geometries and reports the
// performance / area / energy trade-off of each design point.
//
// The sweep runs through the session's asynchronous job API: the model is
// built once, each design point is submitted as a CompileJob with a
// hardware override (the session caches the partitioned workload per
// hardware fingerprint), and the results are awaited in submission order.
//
//   ./build/examples/design_space_exploration

#include <iostream>

#include "arch/area_model.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/session.hpp"
#include "graph/zoo/zoo.hpp"

int main() {
  using namespace pimcomp;

  struct DesignPoint {
    const char* label;
    int xbar_rows;
    int xbar_cols;
    int xbars_per_core;
  };
  const DesignPoint points[] = {
      {"64x64, 128 xbars/core", 64, 64, 128},
      {"128x128, 64 xbars/core (PUMA)", 128, 128, 64},
      {"256x256, 16 xbars/core", 256, 256, 16},
      {"128x128, 32 xbars/core", 128, 128, 32},
  };

  CompilerSession session(zoo::resnet18(64), HardwareConfig::puma_default());
  session.set_jobs(0);  // fan the design points out, one worker per thread
  std::vector<CompileJob> sweep;
  int index = 0;
  for (const DesignPoint& point : points) {
    HardwareConfig hw = HardwareConfig::puma_default();
    hw.xbar_rows = point.xbar_rows;
    hw.xbar_cols = point.xbar_cols;
    hw.xbars_per_core = point.xbars_per_core;
    hw = fit_core_count(session.graph(), hw, 3.0);

    CompileOptions options;
    options.mode = PipelineMode::kLowLatency;
    options.ga.population = 30;
    options.ga.generations = 40;
    JobOptions job;
    job.index = index++;
    sweep.push_back(
        session.submit(Scenario{point.label, options, hw}, job));
  }

  Table table("resnet18 @64 across crossbar design points (LL mode, P=20)");
  table.set_header({"design", "cores", "latency (us)", "chip area (mm2)",
                    "energy (uJ)", "xbar util"});
  for (const CompileJob& job : sweep) {
    const ScenarioOutcome& outcome = job.wait();
    // An infeasible geometry reports its error and leaves the rest of the
    // sweep intact instead of aborting the whole exploration.
    if (!outcome.ok()) {
      std::cerr << "design point '" << outcome.label << "' failed ("
                << to_string(outcome.error_kind) << "): " << outcome.error
                << '\n';
      continue;
    }
    const CompileResult& result = *outcome.result;
    const HardwareConfig& hw = result.workload->hardware();
    const SimReport sim = session.simulate(result);
    const AreaReport area = compute_area(hw);

    const double utilization =
        static_cast<double>(result.solution.total_xbars_used()) /
        static_cast<double>(result.workload->total_xbars_available());
    table.add_row({points[outcome.index].label, std::to_string(hw.core_count),
                   format_double(to_us(sim.makespan), 1),
                   format_double(area.total_mm2, 1),
                   format_double(to_uj(sim.total_energy()), 0),
                   format_double(100.0 * utilization, 1) + "%"});
  }
  table.print();
  return 0;
}
