// Quickstart: compile a small CNN for a crossbar PIM accelerator and run it
// on the cycle-accurate simulator.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/compile_report.hpp"
#include "core/session.hpp"
#include "graph/builder.hpp"

int main() {
  using namespace pimcomp;

  // 1. Describe the DNN. The builder checks shapes as you go.
  GraphBuilder builder("quickstart-cnn", {3, 32, 32});
  NodeId x = builder.input();
  x = builder.conv_relu(x, 16, 3, /*stride=*/1, /*padding=*/1, "conv1");
  x = builder.max_pool(x, 2, 2, 0, "pool1");
  x = builder.conv_relu(x, 32, 3, 1, 1, "conv2");
  x = builder.max_pool(x, 2, 2, 0, "pool2");
  x = builder.fc(builder.flatten(x, "flatten"), 10, "classifier");
  builder.softmax(x, "prob");
  Graph graph = builder.build();
  std::cout << graph.to_string() << '\n';

  // 2. Describe the hardware. puma_default() is the paper's Table I
  //    instantiation: 36 cores/chip, 64 crossbars of 128x128 2-bit cells.
  const HardwareConfig hw = HardwareConfig::puma_default();
  std::cout << hw.to_string() << "\n\n";

  // 3. Compile. Low-latency mode pipelines layers at window granularity;
  //    the mapper is picked from the registry by key ("ga" is the paper's
  //    genetic algorithm — try "puma" or "greedy" for the baselines).
  CompilerSession session(std::move(graph), hw);
  CompileOptions options;
  options.mode = PipelineMode::kLowLatency;
  options.parallelism_degree = 20;
  options.mapper = "ga";
  options.ga.population = 40;
  options.ga.generations = 40;
  const CompileResult result = session.compile(options);
  std::cout << describe(result) << '\n';

  // 4. Simulate the compiled dataflow.
  const SimReport sim = session.simulate(result);
  std::cout << sim.to_string() << '\n';
  std::cout << "\nInference latency: " << to_us(sim.makespan) << " us\n";
  return 0;
}
