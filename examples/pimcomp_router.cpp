// pimcomp_router — a thin front daemon for a pimcompd fleet.
//
// Speaks the same newline-delimited JSON protocol as pimcompd (clients and
// scripts need no changes), but compiles nothing itself: each compile
// request is sharded by its (graph, hardware) fingerprint onto one backend
// daemon — identical workloads always reach the same daemon's warm session
// and caches — and the reply frames are relayed back verbatim. Backends
// are health-checked with active pings; a backend that dies mid-request is
// skipped and the request retried on the next one (compile requests are
// idempotent and content-addressed, and already-relayed scenarios are
// deduplicated, so the client just sees the batch complete). SIGTERM/
// SIGINT drain: in-flight requests finish before the router exits.
//
//   pimcomp_router --unix /run/pimcomp_router.sock \
//     --backend unix:/run/pimcompd-a.sock --backend unix:/run/pimcompd-b.sock
//   pimcomp_router --port 7900 --backend 10.0.0.1:7878 --backend 10.0.0.2:7878 \
//     --auth-token SECRET
//
// --auth-token sets the one fleet-wide secret: required of router clients
// and presented to the backend daemons (start them with the same token).
// See docs/serving.md ("Fleet topology") for the full deployment story.

#include "fleet/router.hpp"

int main(int argc, char** argv) {
  return pimcomp::fleet::run_router(argc - 1, argv + 1, "pimcomp_router");
}
