# Negative compile tests for the Clang Thread Safety annotations
# (src/common/thread_annotations.hpp). Run at configure time when
# PIMCOMP_THREAD_SAFETY=ON:
#
#   1. A positive control that uses the vocabulary correctly must compile
#      cleanly — otherwise the header itself is broken and the negative
#      results below would be meaningless.
#   2. Each negative case must FAIL to compile, and its diagnostic output
#      must mention "-Wthread-safety" — so an unrelated error (missing
#      header, syntax slip) cannot masquerade as the analysis firing.
#
# Uses the classic try_compile signature (works on CMake 3.16+).

function(pimcomp_ts_try_compile result_var source)
  try_compile(
    ${result_var}
    ${CMAKE_BINARY_DIR}/ts_checks
    ${source}
    CMAKE_FLAGS
      "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
      "-DCMAKE_CXX_STANDARD=20"
      "-DCMAKE_CXX_STANDARD_REQUIRED=ON"
    COMPILE_DEFINITIONS "-Wthread-safety" "-Werror=thread-safety"
    OUTPUT_VARIABLE ${result_var}_output
  )
  set(${result_var} ${${result_var}} PARENT_SCOPE)
  set(${result_var}_output "${${result_var}_output}" PARENT_SCOPE)
endfunction()

function(pimcomp_thread_safety_checks)
  set(negative_dir ${CMAKE_CURRENT_SOURCE_DIR}/tests/negative)

  pimcomp_ts_try_compile(ts_positive
      ${negative_dir}/ts_positive_control.cpp)
  if(NOT ts_positive)
    message(FATAL_ERROR
        "thread-safety positive control failed to compile — the annotation "
        "header is broken, so the negative tests would prove nothing:\n"
        "${ts_positive_output}")
  endif()
  message(STATUS "thread-safety positive control: compiles clean")

  foreach(case ts_unguarded_access ts_unlock_without_lock)
    pimcomp_ts_try_compile(${case} ${negative_dir}/${case}.cpp)
    if(${case})
      message(FATAL_ERROR
          "negative compile test ${case}.cpp compiled when it must be "
          "rejected — -Wthread-safety is not catching the seeded defect")
    endif()
    if(NOT ${case}_output MATCHES "Wthread-safety")
      message(FATAL_ERROR
          "negative compile test ${case}.cpp failed for the wrong reason "
          "(diagnostics do not mention -Wthread-safety):\n"
          "${${case}_output}")
    endif()
    message(STATUS "negative compile test ${case}: rejected as expected")
  endforeach()
endfunction()
