#!/usr/bin/env python3
"""Two-sided clang-tidy warning-count ratchet.

The CI clang-tidy job writes `clang-tidy-count.json` ({"warnings": N});
this gate compares it against the checked-in baseline
tools/analysis/tidy_baseline.json and fails in BOTH directions:

  * count > baseline  — a regression: new warnings crept in. Fix them.
  * count < baseline  — progress that must be banked: lower the baseline
    in the same change, or the headroom silently erodes back.
  * count == baseline — pass.

Usage: check_tidy_ratchet.py <count.json> [<baseline.json>]
Exit: 0 pass, 1 ratchet violation, 2 bad input.
"""

import json
import pathlib
import sys


def read_warnings(path, what):
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        print(f"tidy-ratchet: cannot read {what} {path}: {e}",
              file=sys.stderr)
        raise SystemExit(2)
    count = data.get("warnings")
    if not isinstance(count, int) or count < 0:
        print(f"tidy-ratchet: {what} {path} needs a non-negative integer "
              "`warnings` field", file=sys.stderr)
        raise SystemExit(2)
    return count


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    count_path = pathlib.Path(argv[1])
    baseline_path = pathlib.Path(argv[2]) if len(argv) == 3 else \
        pathlib.Path(__file__).resolve().parent.parent / "tools" / \
        "analysis" / "tidy_baseline.json"

    count = read_warnings(count_path, "count file")
    baseline = read_warnings(baseline_path, "baseline")

    if count > baseline:
        print(f"tidy-ratchet: FAIL — {count} clang-tidy warnings exceed "
              f"the baseline of {baseline} ({baseline_path}). Fix the new "
              "warnings; the baseline only moves down.")
        return 1
    if count < baseline:
        print(f"tidy-ratchet: FAIL — {count} clang-tidy warnings are "
              f"BELOW the baseline of {baseline}. Bank the progress: set "
              f"\"warnings\": {count} in {baseline_path} in this change.")
        return 1
    print(f"tidy-ratchet: OK — {count} warnings == baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
