#!/usr/bin/env bash
# Smoke test of the serving stack with the real binaries: boots pimcompd on
# a Unix socket, submits a two-scenario batch — one feasible, one
# deliberately infeasible (a 1-core / 1-crossbar machine) — through
# `pimcomp_cli submit`, and asserts exactly one success and one structured
# per-scenario error. A second leg speaks the wire protocol directly and
# checks the v4 artifact/done framing (version-gated, so a pre-v4 daemon
# still passes). Run from the repo root after a build:
#
#   scripts/serve_smoke.sh [build-dir]
set -euo pipefail

BUILD=${1:-build}
SOCK=/tmp/pimcompd-smoke-$$.sock
SCENARIOS=$(mktemp /tmp/pimcompd-smoke-scenarios-XXXXXX.json)
OUTCOMES=$(mktemp /tmp/pimcompd-smoke-outcomes-XXXXXX.json)
SERVER_PID=

# Trap-based cleanup so a failing assertion anywhere mid-script (set -e)
# cannot leak a running pimcompd and its socket into the CI runner: the
# daemon is TERMed, given a bounded grace period to exit, KILLed if it
# ignores that, and reaped with `wait` before its files are removed.
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    for _ in $(seq 50); do
      kill -0 "$SERVER_PID" 2>/dev/null || break
      sleep 0.1
    done
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
  rm -f "$SOCK" "$SCENARIOS" "$OUTCOMES"
}
trap cleanup EXIT

cat > "$SCENARIOS" <<'EOF'
[
  {"label": "feasible",
   "options": {"mode": "ll", "parallelism": 8,
               "ga": {"population": 6, "generations": 3}}},
  {"label": "infeasible",
   "options": {"mode": "ll", "parallelism": 8,
               "ga": {"population": 6, "generations": 3}},
   "hardware": {"core_count": 1, "xbars_per_core": 1}}
]
EOF

"$BUILD"/examples/pimcompd --unix "$SOCK" --jobs 2 &
SERVER_PID=$!

for _ in $(seq 50); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "pimcompd never bound $SOCK" >&2; exit 1; }

# Exit 1 is expected: submit reports per-scenario failures through its exit
# code, and this batch deliberately contains one. --timeout bounds the wait
# on a wedged daemon (exit 2), far above this batch's real compile time.
SUBMIT_EXIT=0
"$BUILD"/examples/pimcomp_cli submit --server "unix:$SOCK" --timeout 300 \
  squeezenet --input 64 --scenarios "$SCENARIOS" --json > "$OUTCOMES" \
  || SUBMIT_EXIT=$?
[ "$SUBMIT_EXIT" -eq 1 ] || {
  echo "submit exit $SUBMIT_EXIT, want 1 (one failing scenario)" >&2
  exit 1
}

python3 - "$OUTCOMES" <<'EOF'
import json, sys

outcomes = json.load(open(sys.argv[1]))
assert len(outcomes) == 2, f"want 2 outcomes, got {len(outcomes)}"
ok = [o for o in outcomes if o.get("ok")]
bad = [o for o in outcomes if not o.get("ok")]
assert len(ok) == 1, f"want exactly 1 success: {outcomes}"
assert len(bad) == 1, f"want exactly 1 failure: {outcomes}"
assert ok[0]["scenario"] == "feasible", ok[0]
assert "compile" in ok[0] and "simulation" in ok[0], ok[0]
assert bad[0]["scenario"] == "infeasible", bad[0]
assert bad[0].get("error"), f"failure must carry a structured error: {bad[0]}"
assert bad[0].get("error_kind") == "capacity", \
    f"failure must carry the machine-readable kind: {bad[0]}"
print("serve smoke OK:",
      f"'{ok[0]['scenario']}' compiled,",
      f"'{bad[0]['scenario']}' rejected with: {bad[0]['error'][:90]}")
EOF

# v4 wire check with a raw client: a requester that declares version 4 and
# selects a lowering backend gets an artifact frame right after its outcome,
# and the done frame advertises the protocol version and artifact count.
# The assertions are version-gated on the done frame so the script still
# passes against a pre-v4 daemon (which never emits those fields).
python3 - "$SOCK" <<'EOF'
import json, socket, sys

sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
sock.connect(sys.argv[1])
request = {
    "type": "compile", "version": 4, "id": 7,
    "model": "squeezenet", "input_size": 32, "simulate": False,
    "scenarios": [{"label": "lowered",
                   "options": {"mode": "ll", "parallelism": 4,
                               "ga": {"population": 6, "generations": 3},
                               "backend": "isa-json"}}],
}
sock.sendall((json.dumps(request) + "\n").encode())

frames, buf = [], b""
while not (frames and frames[-1].get("type") in ("done", "error")):
    chunk = sock.recv(65536)
    assert chunk, "server closed the connection mid-request"
    buf += chunk
    while b"\n" in buf:
        line, buf = buf.split(b"\n", 1)
        if line.strip():
            frames.append(json.loads(line))
sock.close()

done = frames[-1]
assert done["type"] == "done", f"request failed: {done}"
kinds = [f["type"] for f in frames if f["type"] != "event"]
if done.get("version", 3) >= 4:
    assert kinds == ["outcome", "artifact", "done"], kinds
    assert done.get("artifacts") == 1, done
    stream = next(f for f in frames if f["type"] == "artifact")["artifact"]
    assert stream.get("isa") == 1, stream
    assert stream.get("backend") == "isa-json", stream
    assert stream.get("total_ops", 0) > 0, stream
    print("v4 smoke OK: artifact frame carried",
          f"{stream['total_ops']} ops; done advertises version",
          f"{done['version']} with {done['artifacts']} artifact(s)")
else:
    assert kinds == ["outcome", "done"], kinds
    print("v4 smoke skipped: pre-v4 daemon answered a legacy done frame")
EOF

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=
echo "pimcompd shut down cleanly"
