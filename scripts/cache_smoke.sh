#!/usr/bin/env bash
# Smoke test of the persistent two-tier cache with the real CLI binary:
# compile a model twice with the same --cache-dir and assert that the
# second run (a fresh process — the in-memory tier is gone)
#   1. reports at least one disk-tier cache hit,
#   2. never invokes the mapping stage,
#   3. produces byte-identical reports modulo wall-clock stage times
#      (a cache hit reports zeroed times by convention; the cold run's are
#      real — everything else must match exactly),
# then checks `pimcomp_cli cache stats`/`purge` round-trip the directory,
# and finally that a lowered instruction stream (`pimcomp_cli lower`)
# rides the disk tier byte-identically across processes.
# Run from the repo root after a build:
#
#   scripts/cache_smoke.sh [build-dir]
set -euo pipefail

BUILD=${1:-build}
CACHE_DIR=$(mktemp -d /tmp/pimcomp-cache-smoke-XXXXXX)
COLD_JSON=$(mktemp /tmp/pimcomp-cache-cold-XXXXXX.json)
WARM_JSON=$(mktemp /tmp/pimcomp-cache-warm-XXXXXX.json)
COLD_TRACE=$(mktemp /tmp/pimcomp-cache-coldtrace-XXXXXX.json)
WARM_TRACE=$(mktemp /tmp/pimcomp-cache-warmtrace-XXXXXX.json)
COLD_STREAM=$(mktemp /tmp/pimcomp-cache-coldstream-XXXXXX.json)
WARM_STREAM=$(mktemp /tmp/pimcomp-cache-warmstream-XXXXXX.json)

cleanup() {
  rm -rf "$CACHE_DIR"
  rm -f "$COLD_JSON" "$WARM_JSON" "$COLD_TRACE" "$WARM_TRACE" \
    "$COLD_STREAM" "$WARM_STREAM"
}
trap cleanup EXIT

COMPILE=(squeezenet --input 32 --parallelism 4,8 --pop 6 --gens 3
         --cache-dir "$CACHE_DIR" --json)

"$BUILD"/examples/pimcomp_cli "${COMPILE[@]}" --trace "$COLD_TRACE" \
  > "$COLD_JSON"
"$BUILD"/examples/pimcomp_cli "${COMPILE[@]}" --trace "$WARM_TRACE" \
  > "$WARM_JSON"

python3 - "$COLD_TRACE" "$WARM_TRACE" "$COLD_JSON" "$WARM_JSON" <<'EOF'
import json, sys

cold_trace = json.load(open(sys.argv[1]))["events"]
warm_trace = json.load(open(sys.argv[2]))["events"]

# The cold run computed and persisted both scenarios.
cold_stores = [e for e in cold_trace
               if e["event"] == "cache_store" and e.get("source") == "disk"]
assert len(cold_stores) == 2, f"cold run must persist 2 artifacts: {cold_trace}"

# The warm run never mapped and took its results from the disk tier.
warm_mapping = [e for e in warm_trace
                if e["event"] == "stage_begin" and e.get("stage") == "mapping"]
assert not warm_mapping, f"warm run invoked the mapping stage: {warm_trace}"
warm_disk_hits = [e for e in warm_trace
                  if e["event"] == "cache_hit" and e.get("source") == "disk"]
assert len(warm_disk_hits) >= 1, f"warm run saw no disk hit: {warm_trace}"

# Byte-identical reports modulo stage times.
cold = json.load(open(sys.argv[3]))
warm = json.load(open(sys.argv[4]))
for report in cold + warm:
    assert "error" not in report, f"scenario failed: {report}"
    report["compile"]["stage_times"] = {}
cold_bytes = json.dumps(cold, sort_keys=False)
warm_bytes = json.dumps(warm, sort_keys=False)
assert cold_bytes == warm_bytes, "warm report differs from cold report"
print(f"cache smoke OK: {len(cold_stores)} artifacts persisted,",
      f"{len(warm_disk_hits)} disk hit(s), 0 warm mapping invocations,",
      "byte-identical reports")
EOF

STATS=$("$BUILD"/examples/pimcomp_cli cache stats --cache-dir "$CACHE_DIR")
echo "$STATS"
echo "$STATS" | grep -q "2 artifact(s)" || {
  echo "cache stats should report 2 artifacts" >&2
  exit 1
}
"$BUILD"/examples/pimcomp_cli cache purge --cache-dir "$CACHE_DIR" \
  | grep -q "purged 2" || {
  echo "cache purge should remove 2 artifacts" >&2
  exit 1
}
echo "cache purge OK"

# Lowered artifacts ride the same disk tier: a cold `lower` persists the
# instruction stream inside its cache artifact, and a warm re-run in a
# fresh process (in-memory tier gone) replays it byte-identically.
LOWER=(lower squeezenet --input 32 --parallelism 4 --pop 6 --gens 3
       --backend isa-json --cache-dir "$CACHE_DIR")
"$BUILD"/examples/pimcomp_cli "${LOWER[@]}" --out "$COLD_STREAM" 2>/dev/null
"$BUILD"/examples/pimcomp_cli "${LOWER[@]}" --out "$WARM_STREAM" 2>/dev/null
cmp -s "$COLD_STREAM" "$WARM_STREAM" || {
  echo "lowered artifact differs between cold and warm runs" >&2
  exit 1
}
"$BUILD"/examples/pimcomp_cli cache stats --cache-dir "$CACHE_DIR" \
  | grep -q "1 artifact(s)" || {
  echo "lower legs should leave exactly 1 cached artifact" >&2
  exit 1
}
echo "lower cache OK: warm instruction stream byte-identical to cold"
