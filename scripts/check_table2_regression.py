#!/usr/bin/env python3
"""Compile-time regression gate over the Table II stage-time artifact.

Usage: check_table2_regression.py ARTIFACT.json BASELINE.json [--slack 0.25]

ARTIFACT is what `bench/table2_compile_time` writes under
PIMCOMP_BENCH_JSON=...; BASELINE is the checked-in
bench/table2_baseline.json. Both carry a `calibration_seconds` yardstick (a
fixed-budget compile run in the same process), so the gate compares
MACHINE-NORMALIZED totals — total / calibration on each side — making the
25% threshold meaningful even though the baseline was recorded on different
hardware than whatever runner CI landed on. The gate fails (exit 1) when
the normalized total regresses more than --slack, and refuses to compare
(exit 2) when the GA budgets differ — a changed budget needs a regenerated
baseline, not a silently skewed comparison. Per-model ratios are printed
for the humans reading the CI log; only cross-model sums gate, because
single small models are too noisy on shared runners.

Two sums gate independently, each against the same --slack:
  * the TOTAL stage time (the historical gate); and
  * the MAPPING stage alone (summed over every row) — the island-model GA
    parallelized exactly this stage, so a mapping-only regression must not
    be able to hide inside a total dominated by scheduling. Skipped with a
    notice when the baseline predates the `mapping_seconds` field.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact")
    parser.add_argument("baseline")
    parser.add_argument("--slack", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args()

    with open(args.artifact) as f:
        artifact = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    for key in ("population", "generations"):
        got = artifact["config"][key]
        want = baseline["config"][key]
        if got != want:
            print(f"error: artifact GA {key} = {got} but baseline was "
                  f"recorded at {want}; regenerate the baseline "
                  f"(see its _comment) instead of comparing apples to "
                  f"oranges", file=sys.stderr)
            return 2

    rows = {f'{r["model"]}/{r["mode"]}': r["total_s"]
            for r in artifact["stages"]}
    for name, base_s in sorted(baseline.get("per_model_seconds", {}).items()):
        got_s = rows.get(name)
        if got_s is None:
            print(f"error: artifact is missing row '{name}'", file=sys.stderr)
            return 2
        ratio = got_s / base_s if base_s > 0 else float("inf")
        print(f"  {name:24s} {got_s:8.3f}s vs baseline {base_s:8.3f}s "
              f"({ratio:5.2f}x)")

    calibration = artifact.get("calibration_seconds", 0.0)
    base_calibration = baseline.get("calibration_seconds", 0.0)
    if calibration <= 0 or base_calibration <= 0:
        print("error: artifact or baseline lacks a positive "
              "calibration_seconds; regenerate both with the current bench",
              file=sys.stderr)
        return 2

    def gate(label: str, total: float, base_total: float) -> bool:
        normalized = total / calibration
        base_normalized = base_total / base_calibration
        ratio = (normalized / base_normalized if base_normalized > 0
                 else float("inf"))
        print(f"{label}: {total:.3f}s over calibration "
              f"{calibration:.3f}s = {normalized:.2f}; baseline "
              f"{base_total:.3f}s over {base_calibration:.3f}s = "
              f"{base_normalized:.2f} ({ratio:.2f}x normalized)")
        if ratio > 1.0 + args.slack:
            print(f"FAIL: normalized {label} regressed "
                  f"{100 * (ratio - 1):.1f}% "
                  f"(> {100 * args.slack:.0f}% allowed)", file=sys.stderr)
            return False
        print(f"OK: normalized {label} within budget")
        return True

    ok = gate("total stage time", artifact["scenario_seconds"],
              baseline["scenario_seconds"])

    base_mapping = baseline.get("mapping_seconds")
    if base_mapping is None:
        print("notice: baseline lacks mapping_seconds; mapping-only gate "
              "skipped (regenerate the baseline to arm it)")
    else:
        mapping = sum(r["mapping_s"] for r in artifact["stages"])
        ok = gate("mapping stage time", mapping, base_mapping) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
