#!/usr/bin/env python3
"""Validate a lowered PIMCOMP instruction-stream artifact.

Usage: check_isa_artifact.py ARTIFACT.json [SCHEMA.json]

SCHEMA.json defaults to isa_artifact_schema.json next to this script.

The CI image carries no jsonschema package, so this is a deliberately
small validator covering exactly the JSON Schema subset the ISA schema
uses: type, const, enum, pattern, minimum, required, properties,
additionalProperties, items, prefixItems, minItems, maxItems. After the
structural pass it cross-checks what a schema cannot express: total_ops
must equal the instruction row count, and the per-core byte arrays must
line up with the core list.
"""

import json
import os
import re
import sys


class ValidationError(Exception):
    pass


def type_ok(value, kind):
    if kind == "object":
        return isinstance(value, dict)
    if kind == "array":
        return isinstance(value, list)
    if kind == "string":
        return isinstance(value, str)
    if kind == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if kind == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    if kind == "boolean":
        return isinstance(value, bool)
    raise ValidationError(f"schema uses unsupported type '{kind}'")


def validate(value, schema, path="$"):
    if "const" in schema and value != schema["const"]:
        raise ValidationError(
            f"{path}: expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        raise ValidationError(
            f"{path}: {value!r} not one of {schema['enum']}")
    if "type" in schema and not type_ok(value, schema["type"]):
        raise ValidationError(
            f"{path}: expected {schema['type']}, got {type(value).__name__}")
    if "pattern" in schema and not re.search(schema["pattern"], value):
        raise ValidationError(
            f"{path}: {value!r} does not match /{schema['pattern']}/")
    if "minimum" in schema and value < schema["minimum"]:
        raise ValidationError(
            f"{path}: {value} is below the minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                raise ValidationError(f"{path}: missing required key '{key}'")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}")
        if schema.get("additionalProperties") is False:
            extra = sorted(set(value) - set(properties))
            if extra:
                raise ValidationError(f"{path}: unexpected keys {extra}")

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            raise ValidationError(
                f"{path}: {len(value)} items, need >= {schema['minItems']}")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            raise ValidationError(
                f"{path}: {len(value)} items, allow <= {schema['maxItems']}")
        prefix = schema.get("prefixItems", [])
        for i, sub in enumerate(prefix):
            if i < len(value):
                validate(value[i], sub, f"{path}[{i}]")
        if "items" in schema:
            for i, item in enumerate(value[len(prefix):], start=len(prefix)):
                validate(item, schema["items"], f"{path}[{i}]")


def cross_check(artifact):
    cores = artifact["cores"]
    rows = sum(len(program) for program in cores)
    if rows != artifact["total_ops"]:
        raise ValidationError(
            f"total_ops says {artifact['total_ops']} but the cores "
            f"section holds {rows} instruction row(s)")
    for key in ("spill_bytes", "peak_local_bytes"):
        if len(artifact[key]) != len(cores):
            raise ValidationError(
                f"{key} has {len(artifact[key])} entries for "
                f"{len(cores)} core(s)")


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    artifact_path = argv[1]
    schema_path = argv[2] if len(argv) == 3 else os.path.join(
        os.path.dirname(os.path.abspath(argv[0])),
        "isa_artifact_schema.json")
    with open(artifact_path) as f:
        artifact = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)
    try:
        validate(artifact, schema)
        cross_check(artifact)
    except ValidationError as error:
        print(f"{artifact_path}: INVALID: {error}", file=sys.stderr)
        return 1
    print(f"{artifact_path}: valid isa v{artifact['isa']} artifact — "
          f"backend '{artifact['backend']}', {artifact['total_ops']} ops "
          f"over {len(artifact['cores'])} core(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
