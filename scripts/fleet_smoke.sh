#!/usr/bin/env bash
# Smoke test of the fleet serving stack with the real binaries: three
# pimcompd daemons — each with its own cache directory and the other two
# as --peer endpoints — behind one pimcomp_router, all sharing one
# --auth-token. The legs:
#
#   1. A four-scenario batch through the router. Once the router's stats
#      show which backend the batch sharded onto, that daemon is SIGKILLed
#      mid-stream. The batch must still exit 0 with every scenario ok
#      (the router retries on the next backend; already-relayed outcomes
#      are deduplicated) and the router must report the failover.
#   2. The killed daemon is restarted with a FRESH cache directory and the
#      same batch is submitted to it directly: every mapping must come
#      from the network cache tier (cache_hit events with source
#      "remote"), the mapping stage must never run, and the reports must
#      be byte-identical to the router batch modulo wall-clock stage
#      times.
#   3. A raw requester that declares protocol version 4 gets a done frame
#      gated back to version 4 — fleet features are opt-in on the wire
#      and pre-v5 clients round-trip unchanged.
#
# Run from the repo root after a build:
#
#   scripts/fleet_smoke.sh [build-dir]
set -euo pipefail

BUILD=${1:-build}
BASE=$(mktemp -d /tmp/pimcomp-fleet-smoke-XXXXXX)
TOKEN=fleet-smoke-token
ROUTER_SOCK="$BASE/router.sock"
SCENARIOS="$BASE/scenarios.json"
BATCH_JSON="$BASE/batch.json"
REPLAY_JSON="$BASE/replay.json"
REPLAY_TRACE="$BASE/replay-trace.json"
STATS_JSON="$BASE/stats.json"

DAEMON_PIDS=(0 0 0)
ROUTER_PID=

# Every daemon and the router die with the script, whichever assertion
# tripped: TERM first, a bounded grace, then KILL, then reap.
stop_pid() {
  local pid=$1
  [ -n "$pid" ] && [ "$pid" != 0 ] || return 0
  if kill -0 "$pid" 2>/dev/null; then
    kill -TERM "$pid" 2>/dev/null || true
    for _ in $(seq 50); do
      kill -0 "$pid" 2>/dev/null || break
      sleep 0.1
    done
    kill -KILL "$pid" 2>/dev/null || true
  fi
  wait "$pid" 2>/dev/null || true
}
cleanup() {
  stop_pid "$ROUTER_PID"
  for pid in "${DAEMON_PIDS[@]}"; do stop_pid "$pid"; done
  rm -rf "$BASE"
}
trap cleanup EXIT

wait_socket() {
  for _ in $(seq 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "no daemon ever bound $1" >&2
  return 1
}

# start_daemon INDEX CACHE_DIR: pimcompd on $BASE/dINDEX.sock, peered with
# the other two daemons. --jobs 1 keeps the batch's scenarios serial so
# the SIGKILL below reliably lands mid-batch.
start_daemon() {
  local index=$1 cache_dir=$2
  local peers=()
  for other in 0 1 2; do
    [ "$other" != "$index" ] && peers+=(--peer "unix:$BASE/d$other.sock")
  done
  mkdir -p "$cache_dir"
  "$BUILD"/examples/pimcompd --unix "$BASE/d$index.sock" --jobs 1 \
    --cache-dir "$cache_dir" --auth-token "$TOKEN" "${peers[@]}" &
  DAEMON_PIDS[index]=$!
}

for i in 0 1 2; do start_daemon "$i" "$BASE/cache$i"; done
for i in 0 1 2; do wait_socket "$BASE/d$i.sock"; done

"$BUILD"/examples/pimcomp_router --unix "$ROUTER_SOCK" \
  --backend "unix:$BASE/d0.sock" --backend "unix:$BASE/d1.sock" \
  --backend "unix:$BASE/d2.sock" --auth-token "$TOKEN" &
ROUTER_PID=$!
wait_socket "$ROUTER_SOCK"

# Scenario 0 is near-instant — its outcome is relayed before the kill, so
# the retry's deduplication is exercised for real. The heavy GA budgets
# hold the (single-job) backend long enough that the SIGKILL lands while
# the batch is streaming, even on a fast machine.
cat > "$SCENARIOS" <<'EOF'
[
  {"label": "light", "options": {"mode": "ll", "parallelism": 4,
   "ga": {"population": 6, "generations": 3}}},
  {"label": "heavy-a", "options": {"mode": "ll", "parallelism": 8,
   "ga": {"population": 512, "generations": 500}}},
  {"label": "heavy-b", "options": {"mode": "ll", "parallelism": 12,
   "ga": {"population": 512, "generations": 500}}},
  {"label": "heavy-c", "options": {"mode": "ll", "parallelism": 16,
   "ga": {"population": 512, "generations": 500}}}
]
EOF

"$BUILD"/examples/pimcomp_cli submit --server "unix:$ROUTER_SOCK" \
  --auth-token "$TOKEN" --timeout 300 squeezenet --input 64 \
  --scenarios "$SCENARIOS" --json > "$BATCH_JSON" &
SUBMIT_PID=$!

# The whole batch is one request, so the router sharded it onto exactly
# one backend: poll the router's per-backend counters to find it.
BUSY_EP=
for _ in $(seq 100); do
  "$BUILD"/examples/pimcomp_cli cache stats --server "unix:$ROUTER_SOCK" \
    --auth-token "$TOKEN" --json > "$STATS_JSON" 2>/dev/null || true
  BUSY_EP=$(python3 - "$STATS_JSON" <<'EOF'
import json, sys
try:
    stats = json.load(open(sys.argv[1]))
except Exception:
    sys.exit(0)
for row in stats.get("backends", []):
    if row.get("requests", 0) > 0:
        print(row["endpoint"])
        break
EOF
)
  [ -n "$BUSY_EP" ] && break
  sleep 0.1
done
[ -n "$BUSY_EP" ] || { echo "router never dispatched the batch" >&2; exit 1; }

# Give the backend a beat to get into the heavy scenarios, then kill it
# without ceremony — SIGKILL, no drain, mid-compile.
sleep 1
KILLED=
for i in 0 1 2; do
  [ "$BUSY_EP" = "unix:$BASE/d$i.sock" ] && KILLED=$i
done
[ -n "$KILLED" ] || { echo "unknown busy endpoint $BUSY_EP" >&2; exit 1; }
kill -KILL "${DAEMON_PIDS[KILLED]}"
wait "${DAEMON_PIDS[KILLED]}" 2>/dev/null || true
DAEMON_PIDS[KILLED]=0
# SIGKILL leaves the socket file behind; remove it now so wait_socket
# below observes the *reborn* daemon's bind, not this corpse.
rm -f "$BASE/d$KILLED.sock"
echo "SIGKILLed daemon $KILLED ($BUSY_EP) mid-batch"

SUBMIT_EXIT=0
wait "$SUBMIT_PID" || SUBMIT_EXIT=$?
[ "$SUBMIT_EXIT" -eq 0 ] || {
  echo "batch through the router exited $SUBMIT_EXIT, want 0" >&2
  cat "$BATCH_JSON" >&2 || true
  exit 1
}

"$BUILD"/examples/pimcomp_cli cache stats --server "unix:$ROUTER_SOCK" \
  --auth-token "$TOKEN" --json > "$STATS_JSON"
python3 - "$BATCH_JSON" "$STATS_JSON" <<'EOF'
import json, sys

outcomes = json.load(open(sys.argv[1]))
assert len(outcomes) == 4, f"want 4 outcomes, got {len(outcomes)}"
for outcome in outcomes:
    assert outcome.get("ok"), f"scenario failed despite failover: {outcome}"

stats = json.load(open(sys.argv[2]))
retries = sum(r.get("retries", 0) for r in stats.get("backends", []))
failures = sum(r.get("failures", 0) for r in stats.get("backends", []))
assert retries >= 1, f"router reported no failover retry: {stats}"
assert failures >= 1, f"router reported no backend failure: {stats}"
print(f"failover OK: 4/4 scenarios ok after SIGKILL,",
      f"{failures} backend failure(s), {retries} retry(s)")
EOF

# Restart the killed daemon with a FRESH cache directory: its memory and
# disk tiers know nothing. The same batch submitted to it directly must be
# served entirely from its peers' disks over the network cache tier.
start_daemon "$KILLED" "$BASE/cache-reborn"
wait_socket "$BASE/d$KILLED.sock"

REPLAY_EXIT=0
"$BUILD"/examples/pimcomp_cli submit --server "unix:$BASE/d$KILLED.sock" \
  --auth-token "$TOKEN" --timeout 300 squeezenet --input 64 \
  --scenarios "$SCENARIOS" --trace "$REPLAY_TRACE" --json \
  > "$REPLAY_JSON" || REPLAY_EXIT=$?
[ "$REPLAY_EXIT" -eq 0 ] || {
  echo "replay against the reborn daemon exited $REPLAY_EXIT" >&2
  exit 1
}

python3 - "$REPLAY_TRACE" "$BATCH_JSON" "$REPLAY_JSON" <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))["events"]
mapping = [e for e in trace
           if e["event"] == "stage_begin" and e.get("stage") == "mapping"]
assert not mapping, f"reborn daemon recomputed a mapping: {trace}"
remote = [e for e in trace
          if e["event"] == "cache_hit" and e.get("source") == "remote"]
assert len(remote) == 4, \
    f"want 4 remote cache hits, got {len(remote)}: {trace}"

batch = json.load(open(sys.argv[2]))
replay = json.load(open(sys.argv[3]))
for report in batch + replay:
    report["compile"]["stage_times"] = {}
assert json.dumps(batch) == json.dumps(replay), \
    "replay reports differ from the router batch"
print("network cache OK: 4 remote hit(s), 0 mapping invocations,",
      "byte-identical reports")
EOF

# Pre-v5 gating: a version-4 requester gets a version-4 done frame back
# through the router — no fleet-era framing leaks into old clients.
python3 - "$ROUTER_SOCK" "$TOKEN" <<'EOF'
import json, socket, sys

sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
sock.connect(sys.argv[1])
request = {
    "type": "compile", "version": 4, "id": 11, "auth": sys.argv[2],
    "model": "squeezenet", "input_size": 32, "simulate": False,
    "scenarios": [{"label": "v4",
                   "options": {"mode": "ll", "parallelism": 4,
                               "ga": {"population": 6, "generations": 3}}}],
}
sock.sendall((json.dumps(request) + "\n").encode())

frames, buf = [], b""
while not (frames and frames[-1].get("type") in ("done", "error")):
    chunk = sock.recv(65536)
    assert chunk, "router closed the connection mid-request"
    buf += chunk
    while b"\n" in buf:
        line, buf = buf.split(b"\n", 1)
        if line.strip():
            frames.append(json.loads(line))
sock.close()

done = frames[-1]
assert done["type"] == "done", f"v4 request failed: {done}"
assert done.get("version") == 4, \
    f"done frame not gated to the requester's version: {done}"
kinds = [f["type"] for f in frames if f["type"] not in ("event", "cache_hit")]
assert kinds == ["outcome", "done"], kinds
print("v4 gating OK: done frame answered at version 4 through the router")
EOF

# Graceful drain: TERM the router, then the daemons; all must exit 0.
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID"
ROUTER_PID=
for i in 0 1 2; do
  pid=${DAEMON_PIDS[$i]}
  [ "$pid" != 0 ] || continue
  kill -TERM "$pid"
  wait "$pid"
  DAEMON_PIDS[i]=0
done
echo "fleet smoke OK: router and daemons drained cleanly"
