#!/usr/bin/env python3
"""Repo-invariant concurrency linter (stdlib only, no pip installs).

Enforces the locking discipline that makes the Clang Thread Safety analysis
(-Wthread-safety, see src/common/thread_annotations.hpp) trustworthy:

  1. No naked standard-library synchronization primitives in src/ outside
     the wrapper header: std::mutex and friends, std::condition_variable,
     and the scoped-lock family must go through pimcomp::Mutex / MutexLock /
     CondVar, whose capability annotations the analysis can see.
  2. No raw `std::thread` *type* uses (pimcomp::Thread is the same type,
     but the alias marks audited spawn sites); nested names such as
     std::thread::id and std::this_thread stay allowed.
  3. No `.detach()` — detached threads outlive every lock hierarchy and
     cannot be joined on shutdown.
  4. No `#include <mutex>` / `<condition_variable>` outside the wrapper
     (`<thread>` is allowed: std::this_thread and std::thread::id are fine).
  5. Every mutable static is either of a known-safe shape (const,
     constexpr, thread_local, std::atomic, std::once_flag, pimcomp
     Mutex/CondVar) or carries an explicit
     `// pimcomp-lint: internally-synchronized` marker on the same or the
     preceding line, so unsynchronized global state cannot slip in
     unreviewed.

Exit status 0 when clean; 1 with one `path:line: message` per finding.
Run from the repository root (CMake registers it as ctest test
`concurrency_lint`).
"""

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
WRAPPER = SRC_ROOT / "common" / "thread_annotations.hpp"
MARKER = "pimcomp-lint: internally-synchronized"

BANNED_TYPES = [
    "std::mutex",
    "std::recursive_mutex",
    "std::timed_mutex",
    "std::recursive_timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::condition_variable_any",
    "std::condition_variable",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
]
BANNED_TYPES_RE = re.compile(
    "|".join(re.escape(t) + r"\b" for t in BANNED_TYPES))

# `std::thread` as a type (declaration, construction) — but not nested
# names: std::thread::id, std::thread::hardware_concurrency().
RAW_THREAD_RE = re.compile(r"std::thread\b(?!\s*::)")
DETACH_RE = re.compile(r"(?:\.|->)\s*detach\s*\(")
BANNED_INCLUDE_RE = re.compile(r"#\s*include\s*<(mutex|condition_variable)>")

# A static data declaration. Function declarations are filtered out below
# (an unparenthesized or `=`-initialized declarator is data; `name(...)`
# without a preceding `=` is a function).
STATIC_DECL_RE = re.compile(
    r"^\s*(?:\[\[[^\]]*\]\]\s*)?(?:inline\s+)?static\s+(?!assert\b)(?!cast\b)")
SAFE_STATIC_RE = re.compile(
    r"\bconst\b|\bconstexpr\b|\bthread_local\b|std::atomic\b|"
    r"std::once_flag\b|\bMutex\b|\bCondVar\b")


def strip_comments(text):
    """Blank out // and /* */ comments and string/char literals, preserving
    line structure, so banned tokens in prose or strings don't fire."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                mode = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == mode:
                mode = None
            out.append(c if c in (mode, "\n", "\"", "'") else " ")
        i += 1
    return "".join(out)


def looks_like_function_decl(code_line):
    """`static T name(args...)` is a function unless an `=` precedes the
    paren (then the paren belongs to an initializer expression)."""
    paren = code_line.find("(")
    if paren < 0:
        return False
    eq = code_line.find("=")
    return eq < 0 or eq > paren


def check_file(path, findings):
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.splitlines()
    code_lines = strip_comments(raw).splitlines()
    is_wrapper = path == WRAPPER

    for idx, code in enumerate(code_lines):
        lineno = idx + 1
        raw_line = raw_lines[idx] if idx < len(raw_lines) else ""

        if not is_wrapper:
            m = BANNED_TYPES_RE.search(code)
            if m:
                findings.append((path, lineno,
                                 f"naked {m.group(0)} — use the pimcomp "
                                 "wrappers from common/thread_annotations.hpp"))
            if RAW_THREAD_RE.search(code):
                findings.append((path, lineno,
                                 "raw std::thread type — spell it "
                                 "pimcomp::Thread (alias marking audited "
                                 "spawn sites)"))
            if BANNED_INCLUDE_RE.search(code):
                findings.append((path, lineno,
                                 "direct #include of a synchronization "
                                 "header — include "
                                 "common/thread_annotations.hpp instead"))

        if DETACH_RE.search(code):
            findings.append((path, lineno,
                             ".detach() — detached threads cannot be "
                             "joined on shutdown"))

        if STATIC_DECL_RE.search(code):
            if looks_like_function_decl(code):
                continue
            if SAFE_STATIC_RE.search(code):
                continue
            prev = raw_lines[idx - 1] if idx > 0 else ""
            if MARKER in raw_line or MARKER in prev:
                continue
            findings.append((path, lineno,
                             "mutable static without a known-safe shape — "
                             "make it const/constexpr/thread_local/atomic, "
                             "guard it, or annotate the line above with "
                             f"`// {MARKER}`"))


def main():
    findings = []
    for path in sorted(SRC_ROOT.rglob("*")):
        if path.suffix in (".hpp", ".cpp", ".h", ".cc"):
            check_file(path, findings)
    for path, lineno, message in findings:
        rel = path.relative_to(REPO_ROOT)
        print(f"{rel}:{lineno}: {message}")
    if findings:
        print(f"\n{len(findings)} finding(s).", file=sys.stderr)
        return 1
    print("concurrency lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
