#!/usr/bin/env python3
"""Thin shim: the concurrency lint now lives in pimcomp-analyze.

The checker logic moved to tools/analysis/pimcomp_analyze.py as the
`concurrency` checker (one driver, one report format, one exemption-marker
grammar — see docs/analysis.md). This entry point stays so the ctest case
`concurrency_lint`, CI's lint job, and muscle memory keep working; it is
exactly equivalent to:

    tools/analysis/pimcomp_analyze.py --checker concurrency
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools" / "analysis"))

import pimcomp_analyze  # noqa: E402


if __name__ == "__main__":
    sys.exit(pimcomp_analyze.run(
        ["--root", str(REPO_ROOT), "--checker", "concurrency"]))
