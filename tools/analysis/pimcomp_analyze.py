#!/usr/bin/env python3
"""pimcomp-analyze — the repo's static-analysis suite (stdlib only, no pip
installs required; clang.cindex is used opportunistically when present).

Four checkers run over the tree from one driver:

  fingerprint   Cache-key completeness: for every struct participating in
                cache identity (tools/analysis/fingerprint_contracts.json),
                every field must be referenced by every listed
                fingerprint()/to_json/from_json body, or carry an explicit
                `// pimcomp-fp-exempt: <rationale>` marker. Exclusion
                contracts invert the rule: fields that are execution
                environment (CacheConfig) must NOT leak into fingerprint
                bodies. Stale markers (exempt but covered everywhere) fail
                too, so the marker set stays honest.

  wire-schema   Wire-protocol discipline: every JSON key string read or
                written at a key position in the serving/fleet codecs must
                appear in the versioned manifest
                (tools/analysis/wire_schema.json), every manifest entry must
                still be referenced, and every entry must carry a valid
                min-version gate (`since` in [1, kProtocolVersion]).

  layering      Subsystem include DAG: src/<dir> ranks are declared in
                tools/analysis/layers.json; an include whose target ranks
                above the including file's directory (upward) or equal but
                different (lateral) fails unless the include carries a
                `// pimcomp-layer-exempt: <rationale>` marker. Markers on
                compliant includes fail as stale.

  concurrency   The PR-7 concurrency lint (no naked std::mutex family, raw
                std::thread types, .detach(), synchronization includes
                outside src/common/thread_annotations.hpp, no unreviewed
                mutable statics), absorbed behind this driver; the old
                scripts/check_concurrency_lint.py entry point is a shim.

Engines: `--engine regex` (default fallback) runs everywhere on the stdlib;
`--engine libclang` parses struct definitions from the clang AST via
clang.cindex + compile_commands.json, so macros or unusual declarator
syntax cannot fool the field lists (body coverage matching is token-based
in both engines — identifiers referenced inside the function body).
`--engine auto` prefers libclang and falls back to regex with a notice.

Exit status: 0 clean, 1 findings, 2 configuration/usage error. Every
finding is one `path:line: [checker] message` line; `--json-report` writes
the same findings machine-readably.
"""

import argparse
import json
import pathlib
import re
import sys

DEFAULT_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
ANALYSIS_DIR_NAME = pathlib.Path("tools") / "analysis"

FP_EXEMPT_MARKER = "pimcomp-fp-exempt:"
LAYER_EXEMPT_MARKER = "pimcomp-layer-exempt:"
CONCURRENCY_MARKER = "pimcomp-lint: internally-synchronized"

CHECKER_NAMES = ("fingerprint", "wire-schema", "layering", "concurrency")


class ConfigError(Exception):
    """A checker's configuration (not the tree) is broken."""


class Finding:
    def __init__(self, path, line, checker, message):
        self.path = path  # pathlib.Path, relative to the analysis root
        self.line = line  # 1-based; 0 when no line applies
        self.checker = checker
        self.message = message

    def render(self):
        return f"{self.path}:{self.line}: [{self.checker}] {self.message}"

    def to_json(self):
        return {
            "file": str(self.path),
            "line": self.line,
            "checker": self.checker,
            "message": self.message,
        }


# ---------------------------------------------------------------------------
# Text utilities.
# ---------------------------------------------------------------------------


def strip_comments(text):
    """Blank out // and /* */ comments and string/char literals, preserving
    line structure, so tokens in prose or strings don't fire. Used by the
    concurrency and layering checkers and for struct/function extraction;
    the wire-schema checker uses strip_comments_keep_strings below."""
    return _strip(text, keep_strings=False)


def strip_comments_keep_strings(text):
    """Like strip_comments but string literal contents survive — the
    wire-schema checker matches JSON key literals."""
    return _strip(text, keep_strings=True)


def _strip(text, keep_strings):
    out = []
    i, n = 0, len(text)
    mode = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == "'" and i > 0 and (text[i - 1].isalnum()
                                       or text[i - 1] == "_"):
                # C++14 digit separator (1'000'000) or literal suffix, not
                # a character literal.
                out.append(c)
                i += 1
                continue
            if c in "\"'":
                mode = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # string or char literal
            if c == "\\":
                out.append(text[i : i + 2] if keep_strings else "  ")
                i += 2
                continue
            if c == mode:
                mode = None
                out.append(c)
            elif keep_strings:
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
            i += 1
            continue
        i += 1
    return "".join(out)


def line_of_offset(text, offset):
    return text.count("\n", 0, offset) + 1


def match_brace(text, open_idx):
    """Index of the `}` closing the `{` at open_idx (text must already be
    comment/string-stripped)."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    raise ConfigError(f"unbalanced braces after offset {open_idx}")


def has_marker_above(raw_lines, lineno, marker):
    """True when `marker` appears on line `lineno` (1-based) or on the
    contiguous run of // comment lines directly above it. Returns the
    rationale text after the marker, or None."""
    idx = lineno - 1
    candidates = [raw_lines[idx]] if idx < len(raw_lines) else []
    j = idx - 1
    while j >= 0 and raw_lines[j].lstrip().startswith(("//", "///")):
        candidates.append(raw_lines[j])
        j -= 1
    for line in candidates:
        pos = line.find(marker)
        if pos >= 0:
            return line[pos + len(marker) :].strip()
    return None


# ---------------------------------------------------------------------------
# Struct / function extraction engines.
# ---------------------------------------------------------------------------


class Field:
    def __init__(self, name, line, exempt_rationale):
        self.name = name
        self.line = line
        self.exempt_rationale = exempt_rationale  # str | None


def _looks_like_function_decl(code_line):
    """`T name(args...)` is a function unless an `=` precedes the paren
    (then the paren belongs to an initializer expression)."""
    paren = code_line.find("(")
    if paren < 0:
        return False
    eq = code_line.find("=")
    return eq < 0 or eq > paren


_FIELD_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*$")
_FIELD_SKIP_RE = re.compile(
    r"^\s*(public|private|protected|using|typedef|friend|static|template"
    r"|struct|class|enum|#)\b|^\s*[{}]|^\s*$")


class RegexEngine:
    """Pure-stdlib extraction: brace matching over comment-stripped text.
    Reliable for the clang-format'd declarations this repo contains;
    documented limits: one declaration per line, no macros expanding to
    fields, no bitfields."""

    name = "regex"

    def struct_fields(self, path, struct_name):
        raw = path.read_text(encoding="utf-8")
        raw_lines = raw.splitlines()
        stripped = strip_comments(raw)
        m = re.search(r"\bstruct\s+" + re.escape(struct_name) + r"\b[^;{]*\{",
                      stripped)
        if m is None:
            raise ConfigError(
                f"struct {struct_name} not found in {path}")
        open_idx = stripped.index("{", m.start())
        close_idx = match_brace(stripped, open_idx)
        base_line = line_of_offset(stripped, open_idx)
        body_lines = stripped[open_idx + 1 : close_idx].split("\n")

        fields = []
        depth = 0
        for i, code in enumerate(body_lines):
            lineno = base_line + i if i > 0 else base_line
            if depth == 0 and not _FIELD_SKIP_RE.search(code):
                decl = code.strip()
                if decl.endswith(";") and not _looks_like_function_decl(code):
                    head = decl.split("=", 1)[0].rstrip("; \t")
                    name_match = _FIELD_NAME_RE.search(head)
                    if name_match:
                        rationale = has_marker_above(
                            raw_lines, lineno, FP_EXEMPT_MARKER)
                        fields.append(
                            Field(name_match.group(1), lineno, rationale))
            depth += code.count("{") - code.count("}")
        return fields

    def function_body(self, path, signature):
        """(identifier set referenced in the body, 1-based body start line).
        `signature` is a unique source substring ending before the body's
        opening brace."""
        raw = path.read_text(encoding="utf-8")
        stripped = strip_comments(raw)
        idx = stripped.find(signature)
        if idx < 0:
            # clang-format may have re-wrapped the parameter list; retry with
            # whitespace-tolerant matching.
            pattern = re.compile(
                r"\s*".join(re.escape(tok) for tok in signature.split()))
            m = pattern.search(stripped)
            if m is None:
                raise ConfigError(
                    f"function signature '{signature}' not found in {path}")
            idx = m.start()
        open_idx = stripped.index("{", idx)
        close_idx = match_brace(stripped, open_idx)
        body = stripped[open_idx + 1 : close_idx]
        names = set(re.findall(r"[A-Za-z_]\w*", body))
        return names, line_of_offset(stripped, idx)


class LibclangEngine(RegexEngine):
    """clang.cindex-backed field extraction: struct field lists come from
    the AST (FIELD_DECL cursors), so macro tricks or exotic declarators
    cannot desynchronize the contract. Function-body coverage stays
    token-based (inherited), which is the documented matching semantics of
    both engines. Exemption markers are always read from the source text —
    they are comments, which ASTs do not carry."""

    name = "libclang"

    def __init__(self, compile_commands):
        import clang.cindex  # noqa: deferred import; optional dependency

        self._cindex = clang.cindex
        self._index = clang.cindex.Index.create()
        self._args_by_file = {}
        self._default_args = ["-std=c++20"]
        if compile_commands is not None and compile_commands.exists():
            for entry in json.loads(
                    compile_commands.read_text(encoding="utf-8")):
                args = [
                    a for a in entry.get("command", "").split()[1:]
                    if a.startswith(("-I", "-D", "-std="))
                ]
                src = pathlib.Path(entry["directory"]) / entry["file"]
                self._args_by_file[src.resolve()] = args
                for arg in args:
                    if arg not in self._default_args:
                        self._default_args.append(arg)
        self._tu_cache = {}

    def _translation_unit(self, path):
        resolved = path.resolve()
        if resolved in self._tu_cache:
            return self._tu_cache[resolved]
        args = self._args_by_file.get(resolved, self._default_args)
        tu = self._index.parse(str(resolved), args=args)
        self._tu_cache[resolved] = tu
        return tu

    def struct_fields(self, path, struct_name):
        cindex = self._cindex
        tu = self._translation_unit(path)
        raw_lines = path.read_text(encoding="utf-8").splitlines()
        resolved = str(path.resolve())

        def walk(cursor):
            for child in cursor.get_children():
                location_file = child.location.file
                if location_file is None or \
                        str(pathlib.Path(location_file.name).resolve()) \
                        != resolved:
                    continue
                if child.kind in (cindex.CursorKind.STRUCT_DECL,
                                  cindex.CursorKind.CLASS_DECL) and \
                        child.spelling == struct_name and \
                        child.is_definition():
                    return child
                found = walk(child)
                if found is not None:
                    return found
            return None

        decl = walk(tu.cursor)
        if decl is None:
            # Header may need a TU that includes it; fall back to the
            # regex extraction rather than failing the whole run.
            return RegexEngine.struct_fields(self, path, struct_name)
        fields = []
        for child in decl.get_children():
            if child.kind == cindex.CursorKind.FIELD_DECL:
                lineno = child.location.line
                rationale = has_marker_above(
                    raw_lines, lineno, FP_EXEMPT_MARKER)
                fields.append(Field(child.spelling, lineno, rationale))
        return fields


def make_engine(requested, compile_commands, notices):
    if requested in ("libclang", "auto"):
        try:
            return LibclangEngine(compile_commands)
        except Exception as e:  # ImportError, LibclangError, ...
            if requested == "libclang":
                raise ConfigError(
                    f"--engine libclang unavailable: {e}") from e
            notices.append(
                f"note: clang.cindex unavailable ({e.__class__.__name__}); "
                "falling back to the regex engine")
    return RegexEngine()


# ---------------------------------------------------------------------------
# Checker 1: fingerprint coverage.
# ---------------------------------------------------------------------------


def load_json_config(path, what):
    if not path.exists():
        raise ConfigError(f"{what} config not found: {path}")
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as e:
        raise ConfigError(f"{what} config {path} is not valid JSON: {e}")


def check_fingerprint(root, config_path, engine, findings):
    config = load_json_config(config_path, "fingerprint")
    for contract in config.get("contracts", []):
        name = contract.get("name", "<unnamed>")
        mode = contract.get("mode", "cover")
        if mode not in ("cover", "exclude"):
            raise ConfigError(
                f"contract {name}: mode must be cover|exclude, got {mode}")
        struct_spec = contract["struct"]
        struct_file = root / struct_spec["file"]
        if not struct_file.exists():
            raise ConfigError(
                f"contract {name}: struct file {struct_spec['file']} "
                "does not exist")
        fields = engine.struct_fields(struct_file, struct_spec["name"])
        if not fields:
            raise ConfigError(
                f"contract {name}: no fields extracted from "
                f"{struct_spec['name']} in {struct_spec['file']}")
        aliases = contract.get("aliases", {})

        bodies = []
        for body_spec in contract["bodies"]:
            body_file = root / body_spec["file"]
            if not body_file.exists():
                raise ConfigError(
                    f"contract {name}: body file {body_spec['file']} "
                    "does not exist")
            names, start_line = engine.function_body(
                body_file, body_spec["signature"])
            bodies.append((body_spec, names, start_line))

        rel_struct = struct_file.relative_to(root)
        for field in fields:
            accepted = {field.name, *aliases.get(field.name, [])}
            covering = [b for b in bodies if accepted & b[1]]
            if mode == "exclude":
                for body_spec, _, start_line in covering:
                    findings.append(Finding(
                        pathlib.Path(body_spec["file"]), start_line,
                        "fingerprint",
                        f"{struct_spec['name']}::{field.name} is excluded "
                        f"from cache identity (contract {name}) but is "
                        "referenced by this body — excluded configuration "
                        "must never influence a fingerprint"))
                continue
            # mode == "cover"
            missing = [b for b in bodies if b not in covering]
            if field.exempt_rationale is not None:
                if not field.exempt_rationale:
                    findings.append(Finding(
                        rel_struct, field.line, "fingerprint",
                        f"{struct_spec['name']}::{field.name}: "
                        f"{FP_EXEMPT_MARKER} marker needs a rationale "
                        "after the colon"))
                elif not missing:
                    findings.append(Finding(
                        rel_struct, field.line, "fingerprint",
                        f"{struct_spec['name']}::{field.name} carries a "
                        f"{FP_EXEMPT_MARKER} marker but every contract "
                        "body covers it — remove the stale marker"))
                continue
            for body_spec, _, start_line in missing:
                findings.append(Finding(
                    rel_struct, field.line, "fingerprint",
                    f"{struct_spec['name']}::{field.name} is not referenced "
                    f"by {body_spec['file']}:{start_line} "
                    f"({body_spec['signature'].strip()}) — fingerprint/codec "
                    "coverage is incomplete; hash or serialize the field, "
                    f"or mark it `// {FP_EXEMPT_MARKER} <rationale>`"))


# ---------------------------------------------------------------------------
# Checker 2: wire schema.
# ---------------------------------------------------------------------------

_WIRE_KEY_PATTERNS = (
    # json["key"] subscripts (reads and writes).
    re.compile(r"\[\s*\"([A-Za-z_]\w*)\"\s*\]"),
    # json.get("key", ...) / json.at("key") / json.contains("key"),
    # through either . or -> access.
    re.compile(
        r"(?:\.|->)\s*(?:get|at|contains)\s*\(\s*\"([A-Za-z_]\w*)\"", re.S),
    # bounded_int(json, "key", ...) — the bounded read helper.
    re.compile(r"\bbounded_int\s*\(\s*\w+\s*,\s*\"([A-Za-z_]\w*)\"", re.S),
)
_KNOWN_KEYS_CALL_RE = re.compile(r"\brequire_known_keys\s*\(", re.S)
_STRING_LITERAL_RE = re.compile(r"\"([A-Za-z_]\w*)\"")


def extract_wire_keys(text):
    """{key: first line number} for every string literal at a JSON-key
    position in `text` (comment-stripped, strings preserved)."""
    keys = {}

    def note(key, offset):
        keys.setdefault(key, line_of_offset(text, offset))

    for pattern in _WIRE_KEY_PATTERNS:
        for m in pattern.finditer(text):
            note(m.group(1), m.start(1))
    for m in _KNOWN_KEYS_CALL_RE.finditer(text):
        brace = text.find("{", m.end())
        if brace < 0:
            continue
        close = match_brace(text, brace)
        for lit in _STRING_LITERAL_RE.finditer(text, brace, close):
            note(lit.group(1), lit.start(1))
    return keys


def check_wire_schema(root, manifest_path, findings):
    manifest = load_json_config(manifest_path, "wire-schema")
    version = manifest.get("protocol_version")
    if not isinstance(version, int) or version < 1:
        raise ConfigError(
            f"{manifest_path}: protocol_version must be a positive integer")

    header_rel = manifest.get("protocol_header")
    if header_rel:
        header = root / header_rel
        if not header.exists():
            raise ConfigError(
                f"{manifest_path}: protocol_header {header_rel} "
                "does not exist")
        m = re.search(r"kProtocolVersion\s*=\s*(\d+)",
                      header.read_text(encoding="utf-8"))
        if m is None:
            raise ConfigError(
                f"{header_rel}: kProtocolVersion not found")
        if int(m.group(1)) != version:
            findings.append(Finding(
                manifest_path.relative_to(root)
                if manifest_path.is_relative_to(root) else manifest_path,
                0, "wire-schema",
                f"manifest protocol_version {version} disagrees with "
                f"kProtocolVersion {m.group(1)} in {header_rel} — a "
                "protocol bump must update the schema manifest"))

    entries = manifest.get("keys", {})
    manifest_text = manifest_path.read_text(encoding="utf-8")
    manifest_rel = (manifest_path.relative_to(root)
                    if manifest_path.is_relative_to(root) else manifest_path)

    def manifest_line(key):
        m = re.search(r'"' + re.escape(key) + r'"\s*:', manifest_text)
        return line_of_offset(manifest_text, m.start()) if m else 0

    used = {}  # key -> (rel path, line) of first use
    for file_rel in manifest.get("files", []):
        path = root / file_rel
        if not path.exists():
            raise ConfigError(
                f"{manifest_path}: scanned file {file_rel} does not exist")
        text = strip_comments_keep_strings(
            path.read_text(encoding="utf-8"))
        for key, line in extract_wire_keys(text).items():
            used.setdefault(key, (pathlib.Path(file_rel), line))

    for key, (rel, line) in sorted(used.items()):
        if key not in entries:
            findings.append(Finding(
                rel, line, "wire-schema",
                f"wire key \"{key}\" is not in the schema manifest "
                f"({manifest_rel}) — add it with its minimum protocol "
                "version and documentation, or stop emitting it"))

    for key, entry in entries.items():
        since = entry.get("since") if isinstance(entry, dict) else None
        if not isinstance(since, int) or not 1 <= since <= version:
            findings.append(Finding(
                manifest_rel, manifest_line(key), "wire-schema",
                f"manifest entry \"{key}\" needs an integer `since` "
                f"version gate in [1, {version}]"))
        elif not entry.get("doc"):
            findings.append(Finding(
                manifest_rel, manifest_line(key), "wire-schema",
                f"manifest entry \"{key}\" needs a non-empty `doc` string"))
        if key not in used:
            findings.append(Finding(
                manifest_rel, manifest_line(key), "wire-schema",
                f"manifest entry \"{key}\" is referenced by none of the "
                "scanned codecs — remove the stale entry (protocol "
                "deprecations must prune the manifest)"))


# ---------------------------------------------------------------------------
# Checker 3: layering.
# ---------------------------------------------------------------------------

_INCLUDE_RE = re.compile(r"^\s*#\s*include\s*\"([^\"]+)\"")


def check_layering(root, config_path, findings):
    config = load_json_config(config_path, "layering")
    ranks = config.get("layers")
    if not isinstance(ranks, dict) or not ranks:
        raise ConfigError(f"{config_path}: needs a non-empty `layers` map")
    src_root = root / config.get("src", "src")
    if not src_root.is_dir():
        raise ConfigError(f"{config_path}: src root {src_root} not found")

    unranked_reported = set()
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in (".hpp", ".cpp", ".h", ".cc"):
            continue
        rel = path.relative_to(root)
        dir0 = path.relative_to(src_root).parts[0]
        if dir0 not in ranks:
            if dir0 not in unranked_reported:
                unranked_reported.add(dir0)
                findings.append(Finding(
                    rel, 0, "layering",
                    f"directory {src_root.name}/{dir0}/ has no rank in "
                    f"{config_path.name} — new subsystems must declare "
                    "their layer"))
            continue
        raw_lines = path.read_text(encoding="utf-8").splitlines()
        for idx, raw_line in enumerate(raw_lines):
            m = _INCLUDE_RE.match(raw_line)
            if m is None:
                continue
            target = m.group(1).split("/")[0] if "/" in m.group(1) else None
            lineno = idx + 1
            rationale = has_marker_above(
                raw_lines, lineno, LAYER_EXEMPT_MARKER)
            if target is None or target not in ranks:
                continue
            upward = ranks[target] > ranks[dir0]
            lateral = ranks[target] == ranks[dir0] and target != dir0
            if upward or lateral:
                if rationale:
                    continue
                if rationale is not None:
                    findings.append(Finding(
                        rel, lineno, "layering",
                        f"{LAYER_EXEMPT_MARKER} marker needs a rationale "
                        "after the colon"))
                    continue
                kind = "upward" if upward else "lateral"
                findings.append(Finding(
                    rel, lineno, "layering",
                    f"{kind} include: {dir0}/ (layer {ranks[dir0]}) must "
                    f"not include {m.group(1)} (layer {ranks[target]}) — "
                    "invert the dependency or mark the include with "
                    f"`// {LAYER_EXEMPT_MARKER} <rationale>`"))
            elif rationale is not None:
                findings.append(Finding(
                    rel, lineno, "layering",
                    f"stale {LAYER_EXEMPT_MARKER} marker: including "
                    f"{m.group(1)} from {dir0}/ is layer-compliant — "
                    "remove the marker"))


# ---------------------------------------------------------------------------
# Checker 4: concurrency (absorbed PR-7 lint).
# ---------------------------------------------------------------------------

_BANNED_SYNC_TYPES = [
    "std::mutex",
    "std::recursive_mutex",
    "std::timed_mutex",
    "std::recursive_timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::condition_variable_any",
    "std::condition_variable",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
]
_BANNED_SYNC_RE = re.compile(
    "|".join(re.escape(t) + r"\b" for t in _BANNED_SYNC_TYPES))
_RAW_THREAD_RE = re.compile(r"std::thread\b(?!\s*::)")
_DETACH_RE = re.compile(r"(?:\.|->)\s*detach\s*\(")
_BANNED_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(mutex|condition_variable)>")
_STATIC_DECL_RE = re.compile(
    r"^\s*(?:\[\[[^\]]*\]\]\s*)?(?:inline\s+)?static\s+(?!assert\b)(?!cast\b)")
_SAFE_STATIC_RE = re.compile(
    r"\bconst\b|\bconstexpr\b|\bthread_local\b|std::atomic\b|"
    r"std::once_flag\b|\bMutex\b|\bCondVar\b")


def check_concurrency(root, findings):
    src_root = root / "src"
    if not src_root.is_dir():
        raise ConfigError(f"concurrency: src root {src_root} not found")
    wrapper = src_root / "common" / "thread_annotations.hpp"

    for path in sorted(src_root.rglob("*")):
        if path.suffix not in (".hpp", ".cpp", ".h", ".cc"):
            continue
        raw = path.read_text(encoding="utf-8")
        raw_lines = raw.splitlines()
        code_lines = strip_comments(raw).splitlines()
        is_wrapper = path == wrapper
        rel = path.relative_to(root)

        for idx, code in enumerate(code_lines):
            lineno = idx + 1
            raw_line = raw_lines[idx] if idx < len(raw_lines) else ""

            if not is_wrapper:
                m = _BANNED_SYNC_RE.search(code)
                if m:
                    findings.append(Finding(
                        rel, lineno, "concurrency",
                        f"naked {m.group(0)} — use the pimcomp wrappers "
                        "from common/thread_annotations.hpp"))
                if _RAW_THREAD_RE.search(code):
                    findings.append(Finding(
                        rel, lineno, "concurrency",
                        "raw std::thread type — spell it pimcomp::Thread "
                        "(alias marking audited spawn sites)"))
                if _BANNED_INCLUDE_RE.search(code):
                    findings.append(Finding(
                        rel, lineno, "concurrency",
                        "direct #include of a synchronization header — "
                        "include common/thread_annotations.hpp instead"))

            if _DETACH_RE.search(code):
                findings.append(Finding(
                    rel, lineno, "concurrency",
                    ".detach() — detached threads cannot be joined on "
                    "shutdown"))

            if _STATIC_DECL_RE.search(code):
                if _looks_like_function_decl(code):
                    continue
                if _SAFE_STATIC_RE.search(code):
                    continue
                prev = raw_lines[idx - 1] if idx > 0 else ""
                if CONCURRENCY_MARKER in raw_line or \
                        CONCURRENCY_MARKER in prev:
                    continue
                findings.append(Finding(
                    rel, lineno, "concurrency",
                    "mutable static without a known-safe shape — make it "
                    "const/constexpr/thread_local/atomic, guard it, or "
                    "annotate the line above with "
                    f"`// {CONCURRENCY_MARKER}`"))


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------


def run(argv=None):
    parser = argparse.ArgumentParser(
        prog="pimcomp-analyze",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=pathlib.Path, default=DEFAULT_ROOT,
                        help="repository (or fixture) root to analyze")
    parser.add_argument("--checker", action="append", choices=CHECKER_NAMES,
                        help="run only the named checker(s); default: all")
    parser.add_argument("--engine", choices=("auto", "regex", "libclang"),
                        default="auto",
                        help="struct/function extraction engine")
    parser.add_argument("--compile-commands", type=pathlib.Path,
                        help="compile_commands.json for the libclang engine "
                             "(default: <root>/build/compile_commands.json)")
    parser.add_argument("--fingerprint-contracts", type=pathlib.Path,
                        help="override tools/analysis/"
                             "fingerprint_contracts.json")
    parser.add_argument("--wire-schema", type=pathlib.Path,
                        help="override tools/analysis/wire_schema.json")
    parser.add_argument("--layers", type=pathlib.Path,
                        help="override tools/analysis/layers.json")
    parser.add_argument("--json-report", type=pathlib.Path,
                        help="write findings as JSON to this path")
    parser.add_argument("--list-checkers", action="store_true",
                        help="print checker names and exit")
    args = parser.parse_args(argv)

    if args.list_checkers:
        print("\n".join(CHECKER_NAMES))
        return 0

    root = args.root.resolve()
    analysis_dir = root / ANALYSIS_DIR_NAME
    contracts = args.fingerprint_contracts or \
        analysis_dir / "fingerprint_contracts.json"
    wire_schema = args.wire_schema or analysis_dir / "wire_schema.json"
    layers = args.layers or analysis_dir / "layers.json"
    compile_commands = args.compile_commands or \
        root / "build" / "compile_commands.json"
    checkers = args.checker or list(CHECKER_NAMES)

    notices = []
    findings = []
    engine = None
    try:
        if "fingerprint" in checkers:
            engine = make_engine(args.engine, compile_commands, notices)
            check_fingerprint(root, contracts, engine, findings)
        if "wire-schema" in checkers:
            check_wire_schema(root, wire_schema, findings)
        if "layering" in checkers:
            check_layering(root, layers, findings)
        if "concurrency" in checkers:
            check_concurrency(root, findings)
    except ConfigError as e:
        print(f"pimcomp-analyze: configuration error: {e}", file=sys.stderr)
        return 2

    for notice in notices:
        print(notice, file=sys.stderr)
    for finding in findings:
        print(finding.render())

    if args.json_report is not None:
        report = {
            "tool": "pimcomp-analyze",
            "report_version": 1,
            "engine": engine.name if engine is not None else None,
            "checkers": checkers,
            "total_findings": len(findings),
            "findings": [f.to_json() for f in findings],
        }
        args.json_report.write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8")

    if findings:
        print(f"\n{len(findings)} finding(s).", file=sys.stderr)
        return 1
    print(f"pimcomp-analyze: clean ({', '.join(checkers)})")
    return 0


if __name__ == "__main__":
    sys.exit(run())
