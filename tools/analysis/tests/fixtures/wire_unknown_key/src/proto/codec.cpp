#include <string>

// Known-bad on purpose: reads the key "zorble", which the fixture manifest
// does not declare, while the manifest's "ghost_key" entry is referenced by
// nothing here. The self-test asserts the wire-schema checker reports both
// directions.
namespace fixture {

struct Json {
  int get(const char*, int) const { return 0; }
  bool contains(const char*) const { return false; }
};

int decode(const Json& json) {
  int good = json.get("good_key", 0);
  int bad = json.get("zorble", 0);
  return good + bad;
}

}  // namespace fixture
