#ifndef FIXTURE_PROTO_HPP
#define FIXTURE_PROTO_HPP

inline constexpr int kProtocolVersion = 2;

#endif  // FIXTURE_PROTO_HPP
