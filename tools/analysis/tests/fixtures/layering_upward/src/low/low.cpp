// Known-bad on purpose: low/ (layer 0) reaches up into high/ (layer 1)
// without a pimcomp-layer-exempt marker. The self-test asserts the
// layering checker reports the upward edge.
#include "high/high.hpp"

namespace fixture {
int low_value() { return high_value() - 1; }
}  // namespace fixture
