#ifndef FIXTURE_HIGH_HPP
#define FIXTURE_HIGH_HPP

namespace fixture {
int high_value();
}  // namespace fixture

#endif  // FIXTURE_HIGH_HPP
