// Known-bad on purpose: naked standard synchronization instead of the
// pimcomp wrappers, plus an unreviewed mutable static. The self-test
// asserts the concurrency checker reports all three.
#include <mutex>

namespace fixture {

std::mutex g_lock;
static int g_counter = 0;

int bump() {
  std::lock_guard<std::mutex> guard(g_lock);
  return ++g_counter;
}

}  // namespace fixture
