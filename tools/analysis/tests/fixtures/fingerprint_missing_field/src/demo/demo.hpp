#ifndef FIXTURE_DEMO_HPP
#define FIXTURE_DEMO_HPP

#include <cstdint>
#include <string>

namespace fixture {

// Known-bad on purpose: `beta` is hashed by neither body below and carries
// no pimcomp-fp-exempt marker, while `gamma` has a marker that is STALE
// (both bodies cover it). The self-test asserts the fingerprint checker
// reports both.
struct DemoOptions {
  int alpha = 0;
  std::string beta;
  // pimcomp-fp-exempt: stale on purpose — both bodies reference gamma.
  double gamma = 1.0;
};

std::uint64_t fingerprint(const DemoOptions& options);

}  // namespace fixture

#endif  // FIXTURE_DEMO_HPP
