#include "demo/demo.hpp"

namespace fixture {

std::uint64_t fingerprint(const DemoOptions& options) {
  std::uint64_t hash = 1469598103934665603ULL;
  hash = hash * 1099511628211ULL + static_cast<std::uint64_t>(options.alpha);
  hash = hash * 1099511628211ULL +
         static_cast<std::uint64_t>(options.gamma * 1000.0);
  // BUG under test: options.beta is never hashed.
  return hash;
}

void to_json_demo(const DemoOptions& options) {
  (void)options.alpha;
  (void)options.gamma;
  // BUG under test: options.beta is never serialized either.
}

}  // namespace fixture
