#!/usr/bin/env python3
"""Negative self-tests for pimcomp-analyze and the tidy ratchet.

Each fixture under fixtures/ is a deliberately-broken mini-tree; a checker
that fails to flag it is itself broken (the PR-7 negative-compile-test
pattern applied to the analyzers). Every case asserts the exact exit
status AND that each expected diagnostic substring appears — plus, for
checker cases, that nothing unexpected fires (finding count matches).

Usage: run_self_tests.py [case ...]     (no args = all cases)
Cases: """ + "see CASES below." + """
Exit: 0 all pass, 1 any failure.
"""

import pathlib
import subprocess
import sys

TESTS_DIR = pathlib.Path(__file__).resolve().parent
FIXTURES = TESTS_DIR / "fixtures"
ANALYZE = TESTS_DIR.parent / "pimcomp_analyze.py"
REPO_ROOT = TESTS_DIR.parent.parent.parent
RATCHET = REPO_ROOT / "scripts" / "check_tidy_ratchet.py"


def analyze_cmd(fixture, checker, *config):
    return [sys.executable, str(ANALYZE), "--engine", "regex",
            "--root", str(FIXTURES / fixture), "--checker", checker, *config]


def fp(fixture):
    return str(FIXTURES / fixture)


# name -> (argv, expected exit, expected stdout substrings, expected finding
# count or None to skip the count check)
CASES = {
    "fingerprint_missing_field": (
        analyze_cmd("fingerprint_missing_field", "fingerprint",
                    "--fingerprint-contracts",
                    fp("fingerprint_missing_field") + "/contracts.json"),
        1,
        ["DemoOptions::beta is not referenced",
         "DemoOptions::gamma carries a",
         "stale marker"],
        3,  # beta missing from both bodies + one stale-gamma finding
    ),
    "wire_unknown_key": (
        analyze_cmd("wire_unknown_key", "wire-schema",
                    "--wire-schema",
                    fp("wire_unknown_key") + "/wire_schema.json"),
        1,
        ["\"zorble\" is not in the schema manifest",
         "\"ghost_key\" is referenced by none"],
        2,
    ),
    "layering_upward": (
        analyze_cmd("layering_upward", "layering",
                    "--layers", fp("layering_upward") + "/layers.json"),
        1,
        ["upward include",
         "low/ (layer 0) must not include high/high.hpp (layer 1)"],
        1,
    ),
    "concurrency_naked_mutex": (
        analyze_cmd("concurrency_naked_mutex", "concurrency"),
        1,
        ["naked std::mutex",
         "naked std::lock_guard",
         "direct #include of a synchronization header",
         "mutable static"],
        4,
    ),
    "tidy_ratchet_regressed": (
        [sys.executable, str(RATCHET),
         str(FIXTURES / "tidy_ratchet" / "count_regressed.json"),
         str(FIXTURES / "tidy_ratchet" / "baseline.json")],
        1,
        ["7 clang-tidy warnings exceed the baseline of 5"],
        None,
    ),
    "tidy_ratchet_improved": (
        [sys.executable, str(RATCHET),
         str(FIXTURES / "tidy_ratchet" / "count_improved.json"),
         str(FIXTURES / "tidy_ratchet" / "baseline.json")],
        1,
        ["BELOW the baseline", "Bank the progress"],
        None,
    ),
    "tidy_ratchet_equal": (
        [sys.executable, str(RATCHET),
         str(FIXTURES / "tidy_ratchet" / "count_equal.json"),
         str(FIXTURES / "tidy_ratchet" / "baseline.json")],
        0,
        ["5 warnings == baseline"],
        None,
    ),
}


def run_case(name):
    argv, want_exit, want_snippets, want_count = CASES[name]
    proc = subprocess.run(argv, capture_output=True, text=True)
    problems = []
    if proc.returncode != want_exit:
        problems.append(
            f"exit {proc.returncode}, wanted {want_exit}")
    for snippet in want_snippets:
        if snippet not in proc.stdout:
            problems.append(f"missing diagnostic: {snippet!r}")
    if want_count is not None:
        got = sum(1 for line in proc.stdout.splitlines()
                  if ": [" in line and "] " in line)
        if got != want_count:
            problems.append(f"{got} findings, wanted exactly {want_count}")
    if problems:
        print(f"FAIL {name}")
        for p in problems:
            print(f"  - {p}")
        print("  stdout:")
        for line in proc.stdout.splitlines():
            print(f"    {line}")
        if proc.stderr.strip():
            print("  stderr:")
            for line in proc.stderr.splitlines():
                print(f"    {line}")
        return False
    print(f"ok   {name}")
    return True


def main(argv):
    names = argv[1:] or list(CASES)
    unknown = [n for n in names if n not in CASES]
    if unknown:
        print(f"unknown case(s): {', '.join(unknown)}; "
              f"known: {', '.join(CASES)}", file=sys.stderr)
        return 1
    ok = all([run_case(n) for n in names])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
