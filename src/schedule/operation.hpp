#ifndef PIMCOMP_SCHEDULE_OPERATION_HPP
#define PIMCOMP_SCHEDULE_OPERATION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "graph/node.hpp"

namespace pimcomp {

/// Basic operation classes of the execution model (paper §III-B): MVM by the
/// PIM matrix unit, vector work by the VFU, inter-core communication, and
/// global memory access.
enum class OpKind : std::uint8_t {
  kMvm,          ///< one MVM on one Array Group's crossbars
  kVfu,          ///< vector work (accumulate/activate/pool/eltwise/softmax)
  kCommSend,     ///< enqueue a message toward another core (non-blocking)
  kCommRecv,     ///< dequeue a message from another core (blocking)
  kLoadGlobal,   ///< read from global memory into local memory
  kStoreGlobal,  ///< write from local memory to global memory
};

std::string to_string(OpKind kind);

/// One operation in a core's static operation sequence. The format is
/// deliberately lean (the streams run to millions of entries): data
/// dependencies on out-of-order MVM completions are expressed via the `ag`
/// wait handle, everything else is program order.
struct Operation {
  OpKind kind = OpKind::kVfu;
  NodeId node = -1;

  /// kMvm: the global AG-instance index this MVM runs on (also its wait
  /// handle). Other kinds: the AG whose most recent MVM must complete before
  /// this op starts, or -1 for no MVM dependency.
  std::int32_t ag = -1;

  /// Sliding-window index for MVMs (diagnostics).
  std::int32_t window = -1;

  /// Payload size for comm/memory ops, in bytes.
  std::int64_t bytes = 0;

  /// Element count for VFU ops.
  std::int64_t elements = 0;

  /// Peer core for comm ops.
  std::int32_t peer = -1;

  /// Logical channel class for comm ops: messages only pair with the same
  /// tag on the same (src, dst) pair. The LL scheduler separates row-packet
  /// forwarding (tag 0) from partial-sum accumulation (tag 1) so their FIFO
  /// orders stay independent.
  std::int32_t tag = 0;

  /// kMvm: crossbars energized (for energy accounting).
  std::int32_t xbars = 0;

  /// Absolute local-memory bytes in use after this op, or -1 when unchanged.
  /// The simulator integrates this into the time-weighted usage of Fig 10.
  std::int64_t local_usage = -1;
};

/// A whole compiled dataflow: one static operation sequence per core plus
/// the facts the simulator needs to size its state.
struct Schedule {
  std::vector<std::vector<Operation>> programs;  ///< per core
  int ag_count = 0;          ///< AG instances (wait-handle domain)
  std::int64_t total_ops = 0;

  /// Extra global traffic from local-memory overflow spills, per core
  /// (schedule-time estimate from the memory planner).
  std::vector<std::int64_t> spill_bytes;

  /// Peak local-memory bytes per core (schedule-time).
  std::vector<std::int64_t> peak_local_bytes;

  int core_count() const { return static_cast<int>(programs.size()); }

  /// Ops of one kind across all cores (test/report helper).
  std::int64_t count(OpKind kind) const;

  /// Sum of a payload field across all cores (test/report helper).
  std::int64_t total_bytes(OpKind kind) const;
};

}  // namespace pimcomp

#endif  // PIMCOMP_SCHEDULE_OPERATION_HPP
