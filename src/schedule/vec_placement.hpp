#ifndef PIMCOMP_SCHEDULE_VEC_PLACEMENT_HPP
#define PIMCOMP_SCHEDULE_VEC_PLACEMENT_HPP

#include <cstdint>
#include <vector>

#include "arch/hardware_config.hpp"
#include "graph/graph.hpp"
#include "partition/workload.hpp"

namespace pimcomp {

/// Per-inference VFU element cost of a non-crossbar node: how many scalar
/// element operations the vector unit performs to realize it. CONCAT and
/// FLATTEN are pure local-memory addressing (zero VFU cost).
std::int64_t vfu_elements(const Graph& graph, NodeId node);

/// True for ReLU nodes that directly consume a crossbar node's output; those
/// are fused into the producer's activation step (Algorithm 1 line 8 /
/// the LL forwarding path) instead of being scheduled separately.
bool is_fused_activation(const Graph& graph, NodeId node);

/// Input/output byte volumes of a node per inference at a given activation
/// precision (for HT global-memory staging of VEC nodes).
std::int64_t node_input_bytes(const Graph& graph, NodeId node,
                              const HardwareConfig& hw);
std::int64_t node_output_bytes(const Graph& graph, NodeId node,
                               const HardwareConfig& hw);

/// Non-crossbar, non-fused nodes in topological order (the "other
/// operations" Algorithm 1 line 10 distributes among cores).
std::vector<NodeId> standalone_vec_nodes(const Graph& graph);

/// Total VFU elements of the VEC chain hanging off crossbar node `node`
/// downstream, up to (excluding) the next crossbar nodes. Shared chains
/// (e.g. an eltwise fed by two convolutions) split their cost evenly among
/// their crossbar providers, so summing over all partitions charges each
/// VEC node exactly once. Used by the LL scheduler, which executes VEC work
/// on the producer's replica cores (paper §IV-D2).
std::int64_t downstream_vec_elements(const Workload& workload, NodeId node);

}  // namespace pimcomp

#endif  // PIMCOMP_SCHEDULE_VEC_PLACEMENT_HPP
