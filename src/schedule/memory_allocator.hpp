#ifndef PIMCOMP_SCHEDULE_MEMORY_ALLOCATOR_HPP
#define PIMCOMP_SCHEDULE_MEMORY_ALLOCATOR_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace pimcomp {

/// On-chip memory reuse policies of Fig 7. Each level subsumes the previous:
///  * kNaive      — a fresh block per operation result; nothing is reclaimed
///                  until the next flush epoch;
///  * kAddReuse   — accumulation chains update their accumulator block in
///                  place instead of allocating per ADD;
///  * kAgReuse    — additionally, AG partial-sum buffers and consumed input
///                  rows are reclaimed the moment their last reader is done.
enum class MemoryPolicy { kNaive, kAddReuse, kAgReuse };

std::string to_string(MemoryPolicy policy);

/// Classes of locally-buffered data; the policy decides which are
/// reclaimable.
enum class BlockClass {
  kInput,        ///< staged input rows / received packets
  kPartial,      ///< per-AG MVM partial sums
  kAccumulator,  ///< cross-AG accumulation results
  kOther,
};

/// Schedule-time planner for one core's scratchpad. The schedulers drive it
/// with alloc/free/flush calls while emitting operations, and stamp the
/// running `usage()` into `Operation::local_usage` so the simulator can
/// integrate time-weighted occupancy (Fig 10).
///
/// The planner also models *overflow spill*: an allocation that would push
/// usage past the physical capacity is redirected to global memory instead
/// (usage does not grow, but 2x the bytes — write + later read-back — are
/// charged as extra global traffic). This is what makes the naive policy
/// cost global-memory accesses that AG-reuse avoids (Fig 10, HT mode).
class LocalMemoryPlanner {
 public:
  /// `spill_on_overflow` selects what happens when usage would exceed the
  /// physical capacity: true (HT mode) redirects the block to global memory
  /// and charges spill traffic; false (LL mode) lets usage grow past the
  /// capacity so the report can show by how much a policy *would* overflow
  /// the 64 kB design target (paper Fig 10, LL).
  LocalMemoryPlanner(MemoryPolicy policy, std::int64_t capacity_bytes,
                     bool spill_on_overflow = true);

  /// Allocates a block and returns its id (monotonically increasing). A
  /// block that overflowed to global memory still gets an id; freeing it is
  /// a no-op on local usage.
  int alloc(std::int64_t bytes, BlockClass block_class);

  /// Reuses `accumulator_block` in place for another accumulation step.
  /// Under kNaive this allocates a fresh block instead (returning its id);
  /// under the reuse policies it returns the same id with no usage growth.
  int accumulate_into(int accumulator_block, std::int64_t bytes);

  /// Marks a block dead. Reclaims immediately under kAgReuse (for kInput /
  /// kPartial classes) and for kAccumulator under kAddReuse+; otherwise the
  /// space is held until the next flush().
  void free(int block);

  /// Reclaims a block immediately under every policy. Used for frees that
  /// are dataflow necessities (e.g. LL sliding-window retirement) rather
  /// than reuse optimizations; the policies differ in *when* the schedulers
  /// call this, not in whether it reclaims.
  void force_free(int block);

  /// Epoch boundary (HT batch flush / LL node completion): every surviving
  /// block is reclaimed under all policies.
  void flush();

  std::int64_t usage() const { return usage_; }
  std::int64_t peak_usage() const { return peak_; }

  /// Extra global-memory traffic caused by overflow spills so far.
  std::int64_t spill_traffic_bytes() const { return spill_traffic_; }

  MemoryPolicy policy() const { return policy_; }
  std::int64_t capacity() const { return capacity_; }

 private:
  struct Block {
    std::int64_t bytes = 0;
    BlockClass block_class = BlockClass::kOther;
    bool live = false;
    bool spilled = false;
  };

  bool reclaim_on_free(BlockClass block_class) const;

  MemoryPolicy policy_;
  std::int64_t capacity_;
  bool spill_on_overflow_;
  std::int64_t usage_ = 0;
  std::int64_t peak_ = 0;
  std::int64_t spill_traffic_ = 0;
  std::vector<Block> blocks_;
};

}  // namespace pimcomp

#endif  // PIMCOMP_SCHEDULE_MEMORY_ALLOCATOR_HPP
