#ifndef PIMCOMP_SCHEDULE_HT_SCHEDULER_HPP
#define PIMCOMP_SCHEDULE_HT_SCHEDULER_HPP

#include "mapping/mapping_solution.hpp"
#include "schedule/memory_allocator.hpp"
#include "schedule/operation.hpp"

namespace pimcomp {

/// Options of the High-Throughput dataflow generator.
struct HtScheduleOptions {
  MemoryPolicy memory_policy = MemoryPolicy::kAgReuse;

  /// Windows each AG processes between global-memory flushes; the paper's
  /// memory evaluation uses 2 ("after each AG performs 2 MVM operations",
  /// §V-B3).
  int flush_windows = 2;
};

/// Generates the HT-mode dataflow (paper Algorithm 1). Layers pipeline
/// across inferences, so the per-core streams carry no inter-layer
/// dependencies; each batch loads inputs from global memory, runs one MVM
/// per unfinished AG per window, accumulates partial sums within and across
/// cores, applies the fused activation, and stores results back. Standalone
/// vector operations (POOL/ELTWISE/SOFTMAX/...) are distributed round-robin
/// over the cores (Algorithm 1 line 10).
Schedule schedule_ht(const MappingSolution& solution,
                     const HtScheduleOptions& options);

}  // namespace pimcomp

#endif  // PIMCOMP_SCHEDULE_HT_SCHEDULER_HPP
