#include "schedule/receptive_field.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "partition/workload.hpp"

namespace pimcomp {

double StreamPos::fraction(int height, int width) const {
  if (full) return 1.0;
  PIMCOMP_ASSERT(height > 0 && width > 0, "stream extent must be positive");
  const double covered =
      static_cast<double>(row - 1) * width + static_cast<double>(col);
  return clamp(covered / (static_cast<double>(height) * width), 0.0, 1.0);
}

StreamPos StreamPos::later(const StreamPos& a, const StreamPos& b) {
  if (a.full || b.full) return whole();
  if (a.row != b.row) return a.row > b.row ? a : b;
  return a.col >= b.col ? a : b;
}

std::string StreamPos::to_string() const {
  if (full) return "(full)";
  std::ostringstream oss;
  oss << "(" << row << "," << col << ")";
  return oss.str();
}

namespace {

/// rd = min(H, K + s*(r-1) - p), clamped to at least 1 (windows that start
/// entirely inside the padding still need the first real input row).
int required_extent(int input_extent, int kernel, int stride, int padding,
                    int r) {
  const int last = kernel + stride * (r - 1) - padding;
  return clamp(last, 1, input_extent);
}

}  // namespace

StreamPos window_requirement(const Node& node, const TensorShape& input_shape,
                             int r, int c) {
  switch (node.type) {
    case OpType::kConv: {
      const ConvAttrs& a = node.conv;
      return StreamPos::at(
          required_extent(input_shape.height, a.kernel_h, a.stride,
                          a.padding_h, r),
          required_extent(input_shape.width, a.kernel_w, a.stride,
                          a.padding_w, c));
    }
    case OpType::kPool: {
      const PoolAttrs& a = node.pool;
      if (a.kind == PoolKind::kGlobalAverage) return StreamPos::whole();
      return StreamPos::at(
          required_extent(input_shape.height, a.kernel, a.stride, a.padding,
                          r),
          required_extent(input_shape.width, a.kernel, a.stride, a.padding,
                          c));
    }
    case OpType::kRelu:
    case OpType::kConcat:
    case OpType::kEltwise:
      // Element-wise / channel-wise: output (r, c) needs input (r, c).
      return StreamPos::at(std::min(r, input_shape.height),
                           std::min(c, input_shape.width));
    case OpType::kFC:
    case OpType::kFlatten:
    case OpType::kSoftmax:
      return StreamPos::whole();
    case OpType::kInput:
      break;
  }
  throw GraphError("window_requirement: unsupported op " +
                   to_string(node.type));
}

StreamPos prefix_requirement(const Node& node, const TensorShape& input_shape,
                             int out_width, const StreamPos& pos) {
  if (pos.full) {
    // Producing the whole output needs the whole input for every op type.
    return StreamPos::whole();
  }
  StreamPos need = window_requirement(node, input_shape, pos.row, pos.col);
  if (pos.row > 1) {
    // Earlier full rows of the prefix may extend the column requirement to
    // the end of the input rows they touch.
    need = StreamPos::later(
        need, window_requirement(node, input_shape, pos.row - 1, out_width));
  }
  return need;
}

std::vector<ProviderRequirement> trace_requirements(const Workload& workload,
                                                    NodeId consumer, int r,
                                                    int c) {
  const Graph& graph = workload.graph();
  const Node& consumer_node = graph.node(consumer);

  std::vector<ProviderRequirement> result;
  auto record = [&result](int provider, const StreamPos& pos) {
    for (ProviderRequirement& req : result) {
      if (req.provider == provider) {
        req.pos = StreamPos::later(req.pos, pos);
        return;
      }
    }
    result.push_back({provider, pos});
  };

  std::vector<std::pair<NodeId, StreamPos>> work;
  for (NodeId producer : consumer_node.inputs) {
    work.emplace_back(producer,
                      window_requirement(
                          consumer_node, graph.node(producer).output_shape, r,
                          c));
  }
  while (!work.empty()) {
    auto [producer, need] = work.back();
    work.pop_back();
    const Node& p = graph.node(producer);
    if (p.type == OpType::kInput) {
      record(-1, need);
      continue;
    }
    if (p.is_crossbar()) {
      record(workload.partition_index(producer), need);
      continue;
    }
    for (NodeId upstream : p.inputs) {
      work.emplace_back(upstream,
                        prefix_requirement(p,
                                           graph.node(upstream).output_shape,
                                           p.output_shape.width, need));
    }
  }
  return result;
}

}  // namespace pimcomp
