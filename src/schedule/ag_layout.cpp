#include "schedule/ag_layout.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace pimcomp {

int AgLayout::slice_rows(const NodePartition& p, const AgInstance& ag,
                         const HardwareConfig& hw) {
  const int begin = ag.row_slice * hw.logical_rows_per_xbar();
  const int end = std::min(p.matrix_rows, begin + hw.logical_rows_per_xbar());
  PIMCOMP_ASSERT(end > begin, "AG row slice outside the weight matrix");
  return end - begin;
}

AgLayout AgLayout::build(const MappingSolution& solution) {
  const Workload& workload = solution.workload();
  AgLayout layout;
  layout.instances = solution.instantiate();

  layout.partition_groups.resize(
      static_cast<std::size_t>(workload.partition_count()));
  layout.partition_host_cores.resize(
      static_cast<std::size_t>(workload.partition_count()));
  layout.core_instances.resize(
      static_cast<std::size_t>(solution.core_count()));

  std::map<std::tuple<NodeId, int, int>, std::vector<int>> group_members;
  for (std::size_t i = 0; i < layout.instances.size(); ++i) {
    const AgInstance& ag = layout.instances[i];
    group_members[{ag.node, ag.replica, ag.col_chunk}].push_back(
        static_cast<int>(i));
    layout.core_instances[static_cast<std::size_t>(ag.core)].push_back(
        static_cast<int>(i));
    auto& hosts = layout.partition_host_cores[static_cast<std::size_t>(
        workload.partition_index(ag.node))];
    if (std::find(hosts.begin(), hosts.end(), ag.core) == hosts.end()) {
      hosts.push_back(ag.core);
    }
  }
  for (auto& hosts : layout.partition_host_cores) {
    std::sort(hosts.begin(), hosts.end());
  }

  for (auto& [key, members] : group_members) {
    const auto [node, replica, chunk] = key;
    const int pidx = workload.partition_index(node);
    const NodePartition& p =
        workload.partitions()[static_cast<std::size_t>(pidx)];

    std::sort(members.begin(), members.end(), [&](int a, int b) {
      return layout.instances[static_cast<std::size_t>(a)].row_slice <
             layout.instances[static_cast<std::size_t>(b)].row_slice;
    });
    PIMCOMP_ASSERT(static_cast<int>(members.size()) == p.row_slices,
                   "accumulation group missing row slices");

    AccumGroup group;
    group.node = node;
    group.partition = pidx;
    group.replica = replica;
    group.chunk = chunk;
    group.members = members;
    group.owner_core =
        layout.instances[static_cast<std::size_t>(members.front())].core;
    const int cyc = solution.cycles(node);
    group.window_begin = std::min(p.windows, replica * cyc);
    group.window_end = std::min(p.windows, (replica + 1) * cyc);
    group.cols = p.chunk_cols(chunk);

    const int gid = static_cast<int>(layout.groups.size());
    layout.groups.push_back(std::move(group));
    layout.partition_groups[static_cast<std::size_t>(pidx)].push_back(gid);
  }
  return layout;
}

}  // namespace pimcomp
