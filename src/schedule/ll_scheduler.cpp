#include "schedule/ll_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/math_util.hpp"
// pimcomp-layer-exempt: self-registration into the scheduler registry —
// the plugin seam every strategy TU uses, not a dependency on core logic.
#include "core/pipeline.hpp"
#include "mapping/fitness.hpp"
#include "schedule/ag_layout.hpp"
#include "schedule/receptive_field.hpp"
#include "schedule/vec_placement.hpp"

namespace pimcomp {

namespace {

constexpr int kRowInf = std::numeric_limits<int>::max() / 2;

/// One row packet registered on a (src core -> dst core) channel at
/// generation time. `provider` is the producing partition (or -1 for graph
/// input rows); `row` the provider-grid row it completes.
struct PacketGen {
  int provider = -1;
  int row = 0;
  std::int64_t bytes = 0;
};

/// Generation-time channel bookkeeping: packets sent, in order, and how far
/// the consumer core has drained.
struct ChannelGen {
  std::vector<PacketGen> packets;
  std::size_t drained = 0;
};

/// A packet resident in a consumer core's scratchpad awaiting retirement.
struct HeldPacket {
  int provider = -1;
  int row = 0;
  int block = -1;
};

struct CoreCtx {
  std::vector<Operation> program;
  LocalMemoryPlanner planner;
  std::int64_t last_stamp = -1;
  std::vector<HeldPacket> held;
  std::map<int, std::map<int, int>> floors;  // provider -> consumer -> floor
  int input_rows_loaded = 0;

  CoreCtx(MemoryPolicy policy, std::int64_t capacity)
      : planner(policy, capacity, /*spill_on_overflow=*/false) {}

  void emit(Operation op) { program.push_back(op); }

  void stamp() {
    if (program.empty()) return;
    if (planner.usage() != last_stamp) {
      program.back().local_usage = planner.usage();
      last_stamp = planner.usage();
    }
  }
};

/// Per-(group, row) accumulation state while the row is in flight.
struct RowAcc {
  int windows = 0;                      ///< windows of this group in the row
  int owner_acc_block = -1;             ///< accumulator on the owner core
  std::map<int, int> remote_row_block;  ///< member core -> row buffer block
  std::vector<std::pair<int, int>> transients;  ///< (core, block) to retire
};

}  // namespace

Schedule schedule_ll(const MappingSolution& solution,
                     const LlScheduleOptions& options) {
  const Workload& workload = solution.workload();
  const Graph& graph = workload.graph();
  const HardwareConfig& hw = workload.hardware();
  const AgLayout layout = AgLayout::build(solution);
  const std::int64_t act_bytes = hw.activation_bits / 8;
  const int cores = solution.core_count();
  const int part_count = workload.partition_count();
  const MemoryPolicy policy = options.memory_policy;

  std::vector<CoreCtx> ctx;
  ctx.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    ctx.emplace_back(policy, hw.local_memory_bytes);
  }

  std::map<std::pair<int, int>, ChannelGen> channels;

  // --- Static per-partition facts --------------------------------------------
  struct ProviderInfo {
    int provider = -1;
    int span_rows = 1;  ///< provider rows the first window needs
    bool full = false;  ///< whole-stream consumer (FC-like)
  };
  std::vector<std::vector<int>> subscribers(
      static_cast<std::size_t>(part_count));
  std::vector<std::vector<ProviderInfo>> providers(
      static_cast<std::size_t>(part_count));
  std::vector<bool> has_crossbar_consumer(static_cast<std::size_t>(part_count),
                                          false);
  std::vector<std::int64_t> vec_per_row_unit(
      static_cast<std::size_t>(part_count), 0);

  for (int pi = 0; pi < part_count; ++pi) {
    const NodePartition& p =
        workload.partitions()[static_cast<std::size_t>(pi)];
    for (const ProviderRequirement& req :
         trace_requirements(workload, p.node, 1, 1)) {
      ProviderInfo info;
      info.provider = req.provider;
      info.full = req.pos.full;
      info.span_rows = req.pos.full ? kRowInf : req.pos.row;
      providers[static_cast<std::size_t>(pi)].push_back(info);
      if (req.provider >= 0) {
        has_crossbar_consumer[static_cast<std::size_t>(req.provider)] = true;
        auto& subs = subscribers[static_cast<std::size_t>(req.provider)];
        for (int host :
             layout.partition_host_cores[static_cast<std::size_t>(pi)]) {
          if (std::find(subs.begin(), subs.end(), host) == subs.end()) {
            subs.push_back(host);
          }
        }
      }
    }
    const std::int64_t row_units =
        static_cast<std::int64_t>(p.out_height) * p.col_chunks;
    vec_per_row_unit[static_cast<std::size_t>(pi)] =
        downstream_vec_elements(workload, p.node) /
        std::max<std::int64_t>(1, row_units);
  }
  for (auto& subs : subscribers) std::sort(subs.begin(), subs.end());

  const std::int64_t input_row_bytes =
      static_cast<std::int64_t>(graph.node(0).output_shape.width) *
      graph.node(0).output_shape.channels * act_bytes;
  const int input_rows = graph.node(0).output_shape.height;

  // Reuse-less policies hold one extra receptive span before retiring
  // consumed rows (coarse line buffering); AG-reuse retires exactly.
  auto retention_margin = [&](int span_rows) {
    return policy == MemoryPolicy::kAgReuse ? 0 : span_rows;
  };

  auto retire_packets = [&](int c, int provider) {
    CoreCtx& core = ctx[static_cast<std::size_t>(c)];
    auto floors_it = core.floors.find(provider);
    if (floors_it == core.floors.end()) return;
    int floor = kRowInf;
    for (const auto& [consumer, f] : floors_it->second) {
      floor = std::min(floor, f);
    }
    if (floor <= 0) return;
    bool freed = false;
    for (HeldPacket& held : core.held) {
      if (held.provider == provider && held.block >= 0 && held.row < floor) {
        core.planner.force_free(held.block);
        held.block = -1;
        freed = true;
      }
    }
    if (freed) core.stamp();
  };

  // Makes provider data up to `need_row` resident on core `c` (drains
  // channels / stages graph input). Idempotent per (core, provider, row).
  auto ensure_available = [&](int c, const ProviderInfo& info, int need_row) {
    CoreCtx& core = ctx[static_cast<std::size_t>(c)];
    if (info.provider < 0) {
      const int target = std::min(need_row, input_rows);
      if (target > core.input_rows_loaded) {
        const int new_rows = target - core.input_rows_loaded;
        const std::int64_t bytes = new_rows * input_row_bytes;
        const int block = core.planner.alloc(bytes, BlockClass::kInput);
        Operation load;
        load.kind = OpKind::kLoadGlobal;
        load.node = 0;
        load.bytes = bytes;
        core.emit(load);
        core.held.push_back({-1, target, block});
        core.input_rows_loaded = target;
        core.stamp();
      }
      return;
    }
    for (int gid :
         layout.partition_groups[static_cast<std::size_t>(info.provider)]) {
      const AccumGroup& g = layout.groups[static_cast<std::size_t>(gid)];
      if (g.empty()) continue;
      auto it = channels.find({g.owner_core, c});
      if (it == channels.end()) continue;
      ChannelGen& ch = it->second;
      std::size_t target = ch.drained;
      for (std::size_t i = ch.drained; i < ch.packets.size(); ++i) {
        if (ch.packets[i].provider == info.provider &&
            ch.packets[i].row <= need_row) {
          target = i + 1;
        }
      }
      while (ch.drained < target) {
        const PacketGen& pkt = ch.packets[ch.drained];
        const int block = core.planner.alloc(pkt.bytes, BlockClass::kInput);
        if (g.owner_core != c) {
          Operation recv;
          recv.kind = OpKind::kCommRecv;
          recv.node =
              workload.partitions()[static_cast<std::size_t>(pkt.provider)]
                  .node;
          recv.peer = g.owner_core;
          recv.bytes = pkt.bytes;
          core.emit(recv);
        }
        core.held.push_back({pkt.provider, pkt.row, block});
        ++ch.drained;
        core.stamp();
      }
    }
  };

  auto publish_row = [&](const AccumGroup& g, int row, std::int64_t bytes) {
    CoreCtx& owner = ctx[static_cast<std::size_t>(g.owner_core)];
    for (int sub : subscribers[static_cast<std::size_t>(g.partition)]) {
      ChannelGen& ch = channels[{g.owner_core, sub}];
      ch.packets.push_back({g.partition, row, bytes});
      if (sub == g.owner_core) continue;
      Operation send;
      send.kind = OpKind::kCommSend;
      send.node = g.node;
      send.peer = sub;
      send.bytes = bytes;
      owner.emit(send);
    }
  };

  // --- Main emission: partitions in topological order, rows in stream order.
  for (int pi = 0; pi < part_count; ++pi) {
    const NodePartition& p =
        workload.partitions()[static_cast<std::size_t>(pi)];
    const int w_out = p.out_width;
    const auto& group_ids =
        layout.partition_groups[static_cast<std::size_t>(pi)];
    const auto& provider_infos = providers[static_cast<std::size_t>(pi)];

    // Reusable per-member output slots (AG-reuse policy).
    std::map<int, int> member_slot;

    for (int row = 0; row < p.out_height; ++row) {
      std::map<int, RowAcc> row_accs;  // gid -> state

      for (int w = row * w_out; w < (row + 1) * w_out; ++w) {
        const int r = row + 1;
        const int col = w - row * w_out + 1;

        std::vector<ProviderRequirement> needs;
        if (!provider_infos.empty()) {
          needs = trace_requirements(workload, p.node, r, col);
        }

        for (int gid : group_ids) {
          const AccumGroup& g = layout.groups[static_cast<std::size_t>(gid)];
          if (w < g.window_begin || w >= g.window_end) continue;
          RowAcc& acc = row_accs[gid];
          ++acc.windows;

          // Distinct cores participating in this group.
          std::set<int> member_cores;
          for (int member : g.members) {
            member_cores.insert(
                layout.instances[static_cast<std::size_t>(member)].core);
          }

          // Stage inputs + advance retirement floors on every member core.
          for (int member_core : member_cores) {
            CoreCtx& core = ctx[static_cast<std::size_t>(member_core)];
            for (const ProviderRequirement& need : needs) {
              const ProviderInfo* info = nullptr;
              for (const ProviderInfo& cand : provider_infos) {
                if (cand.provider == need.provider) info = &cand;
              }
              PIMCOMP_ASSERT(info != nullptr, "untracked provider");
              const int need_row = need.pos.full ? kRowInf : need.pos.row;
              ensure_available(member_core, *info, need_row);
              if (!info->full) {
                const int floor = need_row - info->span_rows -
                                  retention_margin(info->span_rows);
                auto& f = core.floors[info->provider][pi];
                if (floor > f) {
                  f = floor;
                  retire_packets(member_core, info->provider);
                }
              }
            }
          }

          // MVMs + partial folds.
          for (int member : g.members) {
            const AgInstance& ag =
                layout.instances[static_cast<std::size_t>(member)];
            CoreCtx& core = ctx[static_cast<std::size_t>(ag.core)];
            const std::int64_t partial_bytes =
                static_cast<std::int64_t>(g.cols) * act_bytes;

            if (policy == MemoryPolicy::kAgReuse) {
              if (member_slot.find(member) == member_slot.end()) {
                member_slot[member] =
                    core.planner.alloc(partial_bytes, BlockClass::kPartial);
              }
            } else {
              acc.transients.emplace_back(
                  ag.core, core.planner.alloc(partial_bytes,
                                              BlockClass::kPartial));
            }

            Operation mvm;
            mvm.kind = OpKind::kMvm;
            mvm.node = p.node;
            mvm.ag = member;
            mvm.window = w;
            mvm.xbars = ag.xbars;
            core.emit(mvm);
            core.stamp();

            // Fold the partial into the row buffer: on the owner core for
            // local members, into the member core's row buffer otherwise.
            const std::int64_t row_buffer_bytes =
                static_cast<std::int64_t>(w_out) * g.cols * act_bytes;
            Operation fold;
            fold.kind = OpKind::kVfu;
            fold.node = p.node;
            fold.ag = member;
            fold.elements = g.cols;
            if (ag.core == g.owner_core) {
              core.emit(fold);
              const int before = acc.owner_acc_block;
              acc.owner_acc_block = core.planner.accumulate_into(
                  acc.owner_acc_block, row_buffer_bytes);
              if (acc.owner_acc_block != before) {
                acc.transients.emplace_back(ag.core, acc.owner_acc_block);
              }
              core.stamp();
            } else {
              core.emit(fold);
              auto slot = acc.remote_row_block.find(ag.core);
              if (slot == acc.remote_row_block.end()) {
                acc.remote_row_block[ag.core] = core.planner.alloc(
                    row_buffer_bytes, BlockClass::kAccumulator);
              } else if (policy == MemoryPolicy::kNaive) {
                // Fresh block per fold under naive; retire with the row.
                acc.transients.emplace_back(
                    ag.core, core.planner.alloc(partial_bytes,
                                                BlockClass::kAccumulator));
              }
              core.stamp();
            }
          }
        }
      }

      // Row retirement per group (ascending gid keeps channel FIFOs and
      // the deadlock-freedom ordering argument intact).
      for (int gid : group_ids) {
        auto it = row_accs.find(gid);
        if (it == row_accs.end() || it->second.windows == 0) continue;
        const AccumGroup& g = layout.groups[static_cast<std::size_t>(gid)];
        RowAcc& acc = it->second;
        CoreCtx& owner = ctx[static_cast<std::size_t>(g.owner_core)];
        const std::int64_t row_bytes =
            static_cast<std::int64_t>(acc.windows) * g.cols * act_bytes;

        // Remote member cores ship their row buffers to the owner.
        for (const auto& [member_core, row_block] : acc.remote_row_block) {
          CoreCtx& member = ctx[static_cast<std::size_t>(member_core)];
          Operation send;
          send.kind = OpKind::kCommSend;
          send.node = g.node;
          send.peer = g.owner_core;
          send.bytes = row_bytes;
          send.tag = 1;  // partial-accumulation channel class
          member.emit(send);
          member.planner.force_free(row_block);
          member.stamp();

          Operation recv;
          recv.kind = OpKind::kCommRecv;
          recv.node = g.node;
          recv.peer = member_core;
          recv.bytes = row_bytes;
          recv.tag = 1;
          owner.emit(recv);
          const int recv_block =
              owner.planner.alloc(row_bytes, BlockClass::kPartial);
          Operation add;
          add.kind = OpKind::kVfu;
          add.node = g.node;
          add.elements = static_cast<std::int64_t>(acc.windows) * g.cols;
          owner.emit(add);
          acc.owner_acc_block =
              owner.planner.accumulate_into(acc.owner_acc_block, row_bytes);
          owner.planner.force_free(recv_block);
          owner.stamp();
        }
        if (acc.owner_acc_block < 0) {
          acc.owner_acc_block =
              owner.planner.alloc(row_bytes, BlockClass::kAccumulator);
        }

        // Downstream vector work amortized per (group, row).
        if (vec_per_row_unit[static_cast<std::size_t>(pi)] > 0) {
          Operation vec;
          vec.kind = OpKind::kVfu;
          vec.node = g.node;
          vec.elements = vec_per_row_unit[static_cast<std::size_t>(pi)];
          owner.emit(vec);
        }

        if (has_crossbar_consumer[static_cast<std::size_t>(pi)]) {
          publish_row(g, row, row_bytes);
        } else {
          Operation store;
          store.kind = OpKind::kStoreGlobal;
          store.node = g.node;
          store.bytes = row_bytes;
          owner.emit(store);
        }

        for (const auto& [core_id, block] : acc.transients) {
          ctx[static_cast<std::size_t>(core_id)].planner.force_free(block);
          ctx[static_cast<std::size_t>(core_id)].stamp();
        }
        owner.planner.force_free(acc.owner_acc_block);
        owner.stamp();
      }
    }

    // Node complete: release reusable member slots and lift retirement
    // floors so fully-consumed provider packets retire everywhere.
    for (const auto& [member, block] : member_slot) {
      const AgInstance& ag =
          layout.instances[static_cast<std::size_t>(member)];
      ctx[static_cast<std::size_t>(ag.core)].planner.force_free(block);
      ctx[static_cast<std::size_t>(ag.core)].stamp();
    }
    for (const ProviderInfo& info : provider_infos) {
      for (int host :
           layout.partition_host_cores[static_cast<std::size_t>(pi)]) {
        CoreCtx& core = ctx[static_cast<std::size_t>(host)];
        core.floors[info.provider][pi] = kRowInf;
        retire_packets(host, info.provider);
      }
    }
  }

  Schedule schedule;
  schedule.ag_count = static_cast<int>(layout.instances.size());
  schedule.programs.reserve(static_cast<std::size_t>(cores));
  schedule.spill_bytes.reserve(static_cast<std::size_t>(cores));
  schedule.peak_local_bytes.reserve(static_cast<std::size_t>(cores));
  for (CoreCtx& core : ctx) {
    schedule.total_ops += static_cast<std::int64_t>(core.program.size());
    schedule.spill_bytes.push_back(core.planner.spill_traffic_bytes());
    schedule.peak_local_bytes.push_back(core.planner.peak_usage());
    schedule.programs.push_back(std::move(core.program));
  }
  return schedule;
}

namespace {

/// LL mode as a pluggable pipeline strategy: the fine-grained inter-layer
/// pipeline dataflow plus the F_LL objective (paper Fig 6).
class LlScheduler : public Scheduler {
 public:
  std::string name() const override { return "ll-dataflow"; }

  Schedule build(const MappingSolution& solution,
                 const CompileOptions& options) const override {
    LlScheduleOptions ll;
    ll.memory_policy = options.memory_policy;
    return schedule_ll(solution, ll);
  }

  double estimate_fitness(const Workload& workload,
                          const MappingSolution& solution,
                          const FitnessParams& params) const override {
    return LLFitnessContext(workload).evaluate(solution, params);
  }
};

}  // namespace

PIMCOMP_REGISTER_SCHEDULER("ll", [] { return std::make_unique<LlScheduler>(); });

}  // namespace pimcomp
