#include "schedule/operation.hpp"

namespace pimcomp {

std::string to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kMvm: return "MVM";
    case OpKind::kVfu: return "VFU";
    case OpKind::kCommSend: return "SEND";
    case OpKind::kCommRecv: return "RECV";
    case OpKind::kLoadGlobal: return "LOAD";
    case OpKind::kStoreGlobal: return "STORE";
  }
  return "?";
}

std::int64_t Schedule::count(OpKind kind) const {
  std::int64_t n = 0;
  for (const auto& program : programs) {
    for (const Operation& op : program) {
      if (op.kind == kind) ++n;
    }
  }
  return n;
}

std::int64_t Schedule::total_bytes(OpKind kind) const {
  std::int64_t n = 0;
  for (const auto& program : programs) {
    for (const Operation& op : program) {
      if (op.kind == kind) n += op.bytes;
    }
  }
  return n;
}

}  // namespace pimcomp
