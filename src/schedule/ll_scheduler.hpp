#ifndef PIMCOMP_SCHEDULE_LL_SCHEDULER_HPP
#define PIMCOMP_SCHEDULE_LL_SCHEDULER_HPP

#include "mapping/mapping_solution.hpp"
#include "schedule/memory_allocator.hpp"
#include "schedule/operation.hpp"

namespace pimcomp {

/// Options of the Low-Latency dataflow generator.
struct LlScheduleOptions {
  MemoryPolicy memory_policy = MemoryPolicy::kAgReuse;
};

/// Generates the LL-mode dataflow (paper §IV-D2): every node forwards its
/// outputs to its consumers as soon as they exist, and a consumer window
/// starts once the receptive-field readiness condition (rd, cd) is met.
///
/// Concretely, per output row of each accumulation group the owner core
/// accumulates partials (pulling cross-core contributions), applies the
/// downstream vector work, and sends a row packet to every core hosting AGs
/// of a consumer node. Consumer cores pull packets on demand — draining
/// their channels in FIFO order — right before the first window that needs
/// them. Local-memory residency follows the selected reuse policy: naive
/// holds each op result until row/node retirement with fresh blocks per ADD,
/// ADD-reuse folds accumulation in place, and AG-reuse additionally recycles
/// partials immediately and retires consumed input rows by the sliding
/// receptive-field bound.
Schedule schedule_ll(const MappingSolution& solution,
                     const LlScheduleOptions& options);

}  // namespace pimcomp

#endif  // PIMCOMP_SCHEDULE_LL_SCHEDULER_HPP
