#include "schedule/ht_scheduler.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/math_util.hpp"
// pimcomp-layer-exempt: self-registration into the scheduler registry —
// the plugin seam every strategy TU uses, not a dependency on core logic.
#include "core/pipeline.hpp"
#include "mapping/fitness.hpp"
#include "schedule/ag_layout.hpp"
#include "schedule/vec_placement.hpp"

namespace pimcomp {

namespace {

/// Emission context for one core: its program plus the scratchpad planner.
struct CoreCtx {
  std::vector<Operation> program;
  LocalMemoryPlanner planner;
  std::int64_t last_stamp = -1;

  CoreCtx(MemoryPolicy policy, std::int64_t capacity)
      : planner(policy, capacity, /*spill_on_overflow=*/true) {}

  Operation& emit(Operation op) {
    program.push_back(op);
    return program.back();
  }

  /// Stamps the current planner usage onto the most recent op when changed.
  void stamp() {
    if (program.empty()) return;
    if (planner.usage() != last_stamp) {
      program.back().local_usage = planner.usage();
      last_stamp = planner.usage();
    }
  }
};

/// Windows of group `g` processed in its batch `k`.
int batch_windows(const AccumGroup& g, int k, int flush) {
  const int begin = g.window_begin + k * flush;
  const int end = std::min(g.window_end, begin + flush);
  return std::max(0, end - begin);
}

}  // namespace

Schedule schedule_ht(const MappingSolution& solution,
                     const HtScheduleOptions& options) {
  PIMCOMP_CHECK(options.flush_windows >= 1, "flush_windows must be >= 1");
  const Workload& workload = solution.workload();
  const Graph& graph = workload.graph();
  const HardwareConfig& hw = workload.hardware();
  const AgLayout layout = AgLayout::build(solution);
  const std::int64_t act_bytes = hw.activation_bits / 8;
  const int flush = options.flush_windows;
  const int cores = solution.core_count();

  std::vector<CoreCtx> ctx;
  ctx.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    ctx.emplace_back(options.memory_policy, hw.local_memory_bytes);
  }

  // Group ids each core participates in (sorted ascending = the globally
  // consistent iteration order that keeps channel FIFOs matched).
  std::vector<std::vector<int>> core_groups(static_cast<std::size_t>(cores));
  // Member instances per (group, core).
  std::vector<std::vector<std::pair<int, std::vector<int>>>> group_core_members(
      layout.groups.size());
  for (std::size_t gid = 0; gid < layout.groups.size(); ++gid) {
    const AccumGroup& g = layout.groups[gid];
    if (g.empty()) continue;
    for (int member : g.members) {
      const int core = layout.instances[static_cast<std::size_t>(member)].core;
      auto& per_core = group_core_members[gid];
      auto it = std::find_if(per_core.begin(), per_core.end(),
                             [core](const auto& e) { return e.first == core; });
      if (it == per_core.end()) {
        per_core.push_back({core, {member}});
        core_groups[static_cast<std::size_t>(core)].push_back(
            static_cast<int>(gid));
      } else {
        it->second.push_back(member);
      }
    }
  }
  for (auto& groups : core_groups) std::sort(groups.begin(), groups.end());

  const int fused_bit_count = graph.node_count();
  std::vector<bool> has_fused_act(static_cast<std::size_t>(fused_bit_count),
                                  false);
  for (const Node& node : graph.nodes()) {
    if (is_fused_activation(graph, node.id)) {
      has_fused_act[static_cast<std::size_t>(node.inputs[0])] = true;
    }
  }

  // Deferred cross-core accumulation work per owner core: (gid, batch,
  // payload bytes, add elements), drained after the MVM stream.
  struct DrainEntry {
    int gid = 0;
    int batch = 0;
    std::int64_t payload = 0;
    std::int64_t add_elems = 0;
  };
  std::vector<std::vector<DrainEntry>> drain_entries(
      static_cast<std::size_t>(cores));

  // --- Crossbar-node batches (Algorithm 1 lines 1-9) -------------------------
  for (int c = 0; c < cores; ++c) {
    CoreCtx& core = ctx[static_cast<std::size_t>(c)];
    const auto& groups = core_groups[static_cast<std::size_t>(c)];
    int total_batches = 0;
    for (int gid : groups) {
      const AccumGroup& g = layout.groups[static_cast<std::size_t>(gid)];
      total_batches =
          std::max(total_batches, ceil_div(g.window_count(), flush));
    }

    for (int k = 0; k < total_batches; ++k) {
      // Partial-sum block per (instance, batch); indexed by instance id.
      std::vector<std::pair<int, int>> partial_blocks;  // (instance, block)

      // Load input slices for every node active on this core in batch k.
      // Sliding windows overlap, so steady state only fetches the *new*
      // input pixels each window uncovers (stride_h * stride_w * Cin
      // elements); the overlapping rest stays resident in local memory and
      // is broadcast to the node's AGs (paper §IV-B). Each AG charges its
      // row-slice share of that traffic.
      std::vector<std::pair<NodeId, std::int64_t>> load_bytes;
      for (int gid : groups) {
        const AccumGroup& g = layout.groups[static_cast<std::size_t>(gid)];
        const int b = batch_windows(g, k, flush);
        if (b == 0) continue;
        const NodePartition& p =
            workload.partitions()[static_cast<std::size_t>(g.partition)];
        const Node& node = graph.node(g.node);
        std::int64_t new_elems_per_window = p.matrix_rows;  // FC: everything
        if (node.type == OpType::kConv) {
          const TensorShape in_shape =
              graph.node(node.inputs[0]).output_shape;
          new_elems_per_window = std::min<std::int64_t>(
              p.matrix_rows, static_cast<std::int64_t>(in_shape.channels) *
                                 node.conv.stride * node.conv.stride);
        }
        std::int64_t bytes = 0;
        for (const auto& [core_id, members] :
             group_core_members[static_cast<std::size_t>(gid)]) {
          if (core_id != c) continue;
          for (int m : members) {
            const double slice_share =
                static_cast<double>(AgLayout::slice_rows(
                    p, layout.instances[static_cast<std::size_t>(m)], hw)) /
                static_cast<double>(p.matrix_rows);
            bytes += static_cast<std::int64_t>(
                static_cast<double>(b) *
                static_cast<double>(new_elems_per_window) * slice_share *
                static_cast<double>(act_bytes));
          }
        }
        if (bytes == 0) continue;
        auto it = std::find_if(load_bytes.begin(), load_bytes.end(),
                               [&](const auto& e) { return e.first == g.node; });
        if (it == load_bytes.end()) {
          load_bytes.push_back({g.node, bytes});
        } else {
          it->second += bytes;
        }
      }
      for (const auto& [node, bytes] : load_bytes) {
        core.planner.alloc(bytes, BlockClass::kInput);
        Operation op;
        op.kind = OpKind::kLoadGlobal;
        op.node = node;
        op.bytes = bytes;
        core.emit(op);
        core.stamp();
      }

      // One MVM per unfinished AG per window (Algorithm 1 lines 4-5).
      for (int w_off = 0; w_off < flush; ++w_off) {
        for (int gid : groups) {
          const AccumGroup& g = layout.groups[static_cast<std::size_t>(gid)];
          const int b = batch_windows(g, k, flush);
          if (w_off >= b) continue;
          const int window = g.window_begin + k * flush + w_off;
          for (const auto& [core_id, members] :
               group_core_members[static_cast<std::size_t>(gid)]) {
            if (core_id != c) continue;
            for (int m : members) {
              const AgInstance& ag =
                  layout.instances[static_cast<std::size_t>(m)];
              if (w_off == 0) {
                const int block = core.planner.alloc(
                    static_cast<std::int64_t>(b) * g.cols * act_bytes,
                    BlockClass::kPartial);
                partial_blocks.push_back({m, block});
              }
              Operation op;
              op.kind = OpKind::kMvm;
              op.node = g.node;
              op.ag = m;
              op.window = window;
              op.xbars = ag.xbars;
              core.emit(op);
              core.stamp();
            }
          }
        }
      }

      auto partial_block_of = [&partial_blocks](int instance) {
        for (const auto& [m, block] : partial_blocks) {
          if (m == instance) return block;
        }
        return -1;
      };

      // Accumulate within and across cores, activate, store (lines 6-9).
      for (int gid : groups) {
        const AccumGroup& g = layout.groups[static_cast<std::size_t>(gid)];
        const int b = batch_windows(g, k, flush);
        if (b == 0) continue;
        const std::int64_t payload =
            static_cast<std::int64_t>(b) * g.cols * act_bytes;
        const std::int64_t add_elems = static_cast<std::int64_t>(b) * g.cols;

        std::vector<int> members_here;
        for (const auto& [core_id, members] :
             group_core_members[static_cast<std::size_t>(gid)]) {
          if (core_id == c) members_here = members;
        }
        if (members_here.empty()) continue;

        // Local accumulation chain: the first local partial becomes (or
        // feeds) the accumulator; a zero-element VFU op pins the MVM
        // dependency of the seed partial.
        int acc = partial_block_of(members_here.front());
        {
          Operation seed;
          seed.kind = OpKind::kVfu;
          seed.node = g.node;
          seed.ag = members_here.front();
          seed.elements = 0;
          core.emit(seed);
        }
        for (std::size_t i = 1; i < members_here.size(); ++i) {
          Operation add;
          add.kind = OpKind::kVfu;
          add.node = g.node;
          add.ag = members_here[i];
          add.elements = add_elems;
          core.emit(add);
          acc = core.planner.accumulate_into(acc, payload);
          core.planner.free(partial_block_of(members_here[i]));
          core.stamp();
        }

        if (g.owner_core == c) {
          bool has_remote = false;
          for (const auto& [core_id, members] :
               group_core_members[static_cast<std::size_t>(gid)]) {
            if (core_id != c) has_remote = true;
          }
          if (has_remote) {
            // Cross-core accumulation is deferred to the drain phase: in HT
            // the pipeline stages work on different inferences, so pulling
            // batch k's remote partials must not stall batch k+1's MVM
            // issue. The partial is staged (double-buffered) and folded
            // after this core's own MVM stream finishes.
            drain_entries[static_cast<std::size_t>(c)].push_back(
                {gid, k, payload, add_elems});
            core.planner.free(acc);
            core.stamp();
          } else {
            if (has_fused_act[static_cast<std::size_t>(g.node)]) {
              Operation act;
              act.kind = OpKind::kVfu;
              act.node = g.node;
              act.elements = add_elems;
              core.emit(act);
            }
            Operation store;
            store.kind = OpKind::kStoreGlobal;
            store.node = g.node;
            store.bytes = payload;
            core.emit(store);
            core.planner.free(acc);
            core.stamp();
          }
        } else {
          // Ship the locally-reduced partial to the owner core.
          Operation send;
          send.kind = OpKind::kCommSend;
          send.node = g.node;
          send.ag = members_here.front();
          send.peer = g.owner_core;
          send.bytes = payload;
          core.emit(send);
          core.planner.free(acc);
          core.stamp();
        }
      }

      core.planner.flush();
      core.stamp();
    }

    // Drain phase: fold remote partials for the groups this core owns.
    // Entries are ordered (batch, gid), matching every member core's send
    // order on its channel, so FIFO pairing holds.
    for (const DrainEntry& entry : drain_entries[static_cast<std::size_t>(c)]) {
      const AccumGroup& g =
          layout.groups[static_cast<std::size_t>(entry.gid)];
      const int acc =
          core.planner.alloc(entry.payload, BlockClass::kAccumulator);
      for (const auto& [core_id, members] :
           group_core_members[static_cast<std::size_t>(entry.gid)]) {
        if (core_id == c) continue;
        Operation recv;
        recv.kind = OpKind::kCommRecv;
        recv.node = g.node;
        recv.peer = core_id;
        recv.bytes = entry.payload;
        core.emit(recv);
        const int staging =
            core.planner.alloc(entry.payload, BlockClass::kPartial);
        Operation add;
        add.kind = OpKind::kVfu;
        add.node = g.node;
        add.elements = entry.add_elems;
        core.emit(add);
        core.planner.force_free(staging);
        core.stamp();
      }
      if (has_fused_act[static_cast<std::size_t>(g.node)]) {
        Operation act;
        act.kind = OpKind::kVfu;
        act.node = g.node;
        act.elements = entry.add_elems;
        core.emit(act);
      }
      Operation store;
      store.kind = OpKind::kStoreGlobal;
      store.node = g.node;
      store.bytes = entry.payload;
      core.emit(store);
      core.planner.force_free(acc);
      core.stamp();
    }
  }

  // --- Standalone vector operations (Algorithm 1 line 10) --------------------
  int rr_core = 0;
  for (NodeId v : standalone_vec_nodes(graph)) {
    CoreCtx& core = ctx[static_cast<std::size_t>(rr_core)];
    rr_core = (rr_core + 1) % cores;
    const std::int64_t in_bytes = node_input_bytes(graph, v, hw);
    const std::int64_t out_bytes = node_output_bytes(graph, v, hw);
    core.planner.alloc(in_bytes + out_bytes, BlockClass::kOther);
    Operation load;
    load.kind = OpKind::kLoadGlobal;
    load.node = v;
    load.bytes = in_bytes;
    core.emit(load);
    core.stamp();
    const std::int64_t elems = vfu_elements(graph, v);
    if (elems > 0) {
      Operation vec;
      vec.kind = OpKind::kVfu;
      vec.node = v;
      vec.elements = elems;
      core.emit(vec);
    }
    Operation store;
    store.kind = OpKind::kStoreGlobal;
    store.node = v;
    store.bytes = out_bytes;
    core.emit(store);
    core.planner.flush();
    core.stamp();
  }

  Schedule schedule;
  schedule.ag_count = static_cast<int>(layout.instances.size());
  schedule.programs.reserve(static_cast<std::size_t>(cores));
  schedule.spill_bytes.reserve(static_cast<std::size_t>(cores));
  schedule.peak_local_bytes.reserve(static_cast<std::size_t>(cores));
  for (CoreCtx& core : ctx) {
    schedule.total_ops += static_cast<std::int64_t>(core.program.size());
    schedule.spill_bytes.push_back(core.planner.spill_traffic_bytes());
    schedule.peak_local_bytes.push_back(core.planner.peak_usage());
    schedule.programs.push_back(std::move(core.program));
  }
  return schedule;
}

namespace {

/// HT mode as a pluggable pipeline strategy: Algorithm 1 dataflow plus the
/// F_HT objective (paper Fig 5).
class HtScheduler : public Scheduler {
 public:
  std::string name() const override { return "ht-dataflow"; }

  Schedule build(const MappingSolution& solution,
                 const CompileOptions& options) const override {
    HtScheduleOptions ht;
    ht.memory_policy = options.memory_policy;
    ht.flush_windows = options.ht_flush_windows;
    return schedule_ht(solution, ht);
  }

  double estimate_fitness(const Workload&, const MappingSolution& solution,
                          const FitnessParams& params) const override {
    return ht_fitness(solution, params);
  }
};

}  // namespace

PIMCOMP_REGISTER_SCHEDULER("ht", [] { return std::make_unique<HtScheduler>(); });

}  // namespace pimcomp
