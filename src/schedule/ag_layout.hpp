#ifndef PIMCOMP_SCHEDULE_AG_LAYOUT_HPP
#define PIMCOMP_SCHEDULE_AG_LAYOUT_HPP

#include <vector>

#include "mapping/mapping_solution.hpp"
#include "partition/array_group.hpp"

namespace pimcomp {

/// One accumulation group: the AGs of a (node, replica, col_chunk) triple.
/// Their per-window partial sums must be added together; the paper routes
/// them "to the core where the first AG of this replicated weight block is
/// located" — the owner.
struct AccumGroup {
  NodeId node = -1;
  int partition = -1;  ///< partition index of the node
  int replica = 0;
  int chunk = 0;
  std::vector<int> members;  ///< AG instance ids, sorted by row_slice
  int owner_core = -1;       ///< core of the first (lowest row-slice) AG
  int window_begin = 0;      ///< replica's first window (inclusive)
  int window_end = 0;        ///< replica's last window (exclusive)
  int cols = 0;              ///< output columns this chunk produces

  int window_count() const { return window_end - window_begin; }
  bool empty() const { return window_count() <= 0; }
};

/// Concrete execution layout of a mapping: AG instances, accumulation
/// groups, and per-core / per-partition indexes that both schedulers build
/// their operation streams from.
struct AgLayout {
  std::vector<AgInstance> instances;
  std::vector<AccumGroup> groups;

  /// Per partition index: ids of this node's accumulation groups and the
  /// distinct cores hosting any of its AGs.
  std::vector<std::vector<int>> partition_groups;
  std::vector<std::vector<int>> partition_host_cores;

  /// Per core: AG instance ids resident there.
  std::vector<std::vector<int>> core_instances;

  /// Rows of the weight matrix an AG instance actually occupies (the last
  /// row slice may be partial).
  static int slice_rows(const NodePartition& p, const AgInstance& ag,
                        const HardwareConfig& hw);

  static AgLayout build(const MappingSolution& solution);
};

}  // namespace pimcomp

#endif  // PIMCOMP_SCHEDULE_AG_LAYOUT_HPP
