#ifndef PIMCOMP_SCHEDULE_RECEPTIVE_FIELD_HPP
#define PIMCOMP_SCHEDULE_RECEPTIVE_FIELD_HPP

#include <string>

#include "graph/graph.hpp"

namespace pimcomp {

/// A position in a producer's output stream. Activations stream pixel-major
/// (row-major over (row, col), all channels of a pixel together), matching
/// the sliding-window production order of crossbar nodes. `full` marks
/// operators that need the complete tensor (FC, softmax, global pooling,
/// flatten feeding an FC).
struct StreamPos {
  bool full = false;
  int row = 0;  ///< 1-based last required row (valid when !full)
  int col = 0;  ///< 1-based last required column

  static StreamPos whole() { return {true, 0, 0}; }
  static StreamPos at(int r, int c) { return {false, r, c}; }

  /// Fraction of an H x W stream covered by this position (1.0 when full).
  double fraction(int height, int width) const;

  /// Later of two positions in stream order.
  static StreamPos later(const StreamPos& a, const StreamPos& b);

  bool operator==(const StreamPos&) const = default;
  std::string to_string() const;
};

/// The paper's (rd, cd) formula (§IV-D2): the last input-stream position a
/// node needs in order to compute its output window (r, c) (1-based).
/// CONV/POOL apply `min(H, K + s*(r-1) - p)`; FC and other whole-tensor ops
/// return `whole()`; element-wise ops pass (r, c) through unchanged.
StreamPos window_requirement(const Node& node, const TensorShape& input_shape,
                             int r, int c);

/// The last input-stream position a node needs to produce its *output stream
/// prefix* up to (r, c): the window requirement of (r, c) joined with that of
/// (r-1, out_width) — earlier rows need the full input width. Used when
/// chaining requirements through intermediate (non-crossbar) operators.
StreamPos prefix_requirement(const Node& node, const TensorShape& input_shape,
                             int out_width, const StreamPos& pos);

class Workload;

/// One resolved upstream dependency of a crossbar node's output window:
/// which crossbar provider (partition index; -1 = the graph input) must have
/// produced its stream up to `pos`.
struct ProviderRequirement {
  int provider = -1;
  StreamPos pos;
};

/// Chains `window_requirement` / `prefix_requirement` upward from crossbar
/// node `consumer`'s output window (r, c) through all intermediate operators
/// until crossbar nodes or the graph input are reached. Requirements that
/// reach the same provider along several paths are merged with the later
/// stream position. This is the paper's §IV-D2 readiness condition in
/// provider coordinates; the LL scheduler calls it per window and the LL
/// fitness uses its (1,1) fractions as the waiting percentages W.
std::vector<ProviderRequirement> trace_requirements(const Workload& workload,
                                                    NodeId consumer, int r,
                                                    int c);

}  // namespace pimcomp

#endif  // PIMCOMP_SCHEDULE_RECEPTIVE_FIELD_HPP
