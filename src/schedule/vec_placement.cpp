#include "schedule/vec_placement.hpp"

#include <vector>

#include "common/error.hpp"

namespace pimcomp {

std::int64_t vfu_elements(const Graph& graph, NodeId node_id) {
  const Node& node = graph.node(node_id);
  const std::int64_t out = node.output_shape.elements();
  switch (node.type) {
    case OpType::kRelu:
      return out;
    case OpType::kPool: {
      if (node.pool.kind == PoolKind::kGlobalAverage) {
        return graph.node(node.inputs[0]).output_shape.elements();
      }
      return out * node.pool.kernel * node.pool.kernel;
    }
    case OpType::kEltwise:
      return out * static_cast<std::int64_t>(node.inputs.size() - 1);
    case OpType::kSoftmax:
      // exp + sum + divide passes.
      return out * 3;
    case OpType::kConcat:
    case OpType::kFlatten:
      return 0;  // realized by local-memory addressing
    case OpType::kInput:
    case OpType::kConv:
    case OpType::kFC:
      return 0;
  }
  return 0;
}

bool is_fused_activation(const Graph& graph, NodeId node_id) {
  const Node& node = graph.node(node_id);
  if (node.type != OpType::kRelu) return false;
  return graph.node(node.inputs[0]).is_crossbar();
}

std::int64_t node_input_bytes(const Graph& graph, NodeId node_id,
                              const HardwareConfig& hw) {
  const Node& node = graph.node(node_id);
  std::int64_t total = 0;
  for (NodeId in : node.inputs) {
    total += graph.node(in).output_shape.bytes(hw.activation_bits);
  }
  return total;
}

std::int64_t node_output_bytes(const Graph& graph, NodeId node_id,
                               const HardwareConfig& hw) {
  return graph.node(node_id).output_shape.bytes(hw.activation_bits);
}

std::vector<NodeId> standalone_vec_nodes(const Graph& graph) {
  std::vector<NodeId> nodes;
  for (const Node& node : graph.nodes()) {
    if (node.type == OpType::kInput || node.is_crossbar()) continue;
    if (is_fused_activation(graph, node.id)) continue;
    nodes.push_back(node.id);
  }
  return nodes;
}

namespace {

/// Counts the crossbar nodes that reach `node` through non-crossbar ops
/// (the producers that share a VEC node's cost).
int crossbar_provider_count(const Graph& graph, NodeId node_id) {
  int count = 0;
  std::vector<NodeId> work = graph.node(node_id).inputs;
  std::vector<bool> seen(static_cast<std::size_t>(graph.node_count()), false);
  while (!work.empty()) {
    const NodeId current = work.back();
    work.pop_back();
    if (seen[static_cast<std::size_t>(current)]) continue;
    seen[static_cast<std::size_t>(current)] = true;
    const Node& n = graph.node(current);
    if (n.is_crossbar() || n.type == OpType::kInput) {
      ++count;
      continue;
    }
    for (NodeId in : n.inputs) work.push_back(in);
  }
  return count == 0 ? 1 : count;
}

}  // namespace

std::int64_t downstream_vec_elements(const Workload& workload, NodeId node_id) {
  const Graph& graph = workload.graph();
  PIMCOMP_CHECK(graph.node(node_id).is_crossbar(),
                "downstream_vec_elements expects a crossbar node");
  double total = 0.0;
  std::vector<NodeId> work{node_id};
  std::vector<bool> seen(static_cast<std::size_t>(graph.node_count()), false);
  while (!work.empty()) {
    const NodeId current = work.back();
    work.pop_back();
    for (NodeId consumer : graph.consumers(current)) {
      if (seen[static_cast<std::size_t>(consumer)]) continue;
      seen[static_cast<std::size_t>(consumer)] = true;
      const Node& c = graph.node(consumer);
      if (c.is_crossbar()) continue;  // stop at the next crossbar layer
      total += static_cast<double>(vfu_elements(graph, consumer)) /
               crossbar_provider_count(graph, consumer);
      work.push_back(consumer);
    }
  }
  return static_cast<std::int64_t>(total);
}

}  // namespace pimcomp
