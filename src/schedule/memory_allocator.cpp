#include "schedule/memory_allocator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pimcomp {

std::string to_string(MemoryPolicy policy) {
  switch (policy) {
    case MemoryPolicy::kNaive: return "naive";
    case MemoryPolicy::kAddReuse: return "add-reuse";
    case MemoryPolicy::kAgReuse: return "ag-reuse";
  }
  return "unknown";
}

LocalMemoryPlanner::LocalMemoryPlanner(MemoryPolicy policy,
                                       std::int64_t capacity_bytes,
                                       bool spill_on_overflow)
    : policy_(policy),
      capacity_(capacity_bytes),
      spill_on_overflow_(spill_on_overflow) {
  PIMCOMP_CHECK(capacity_bytes > 0, "local memory capacity must be positive");
}

int LocalMemoryPlanner::alloc(std::int64_t bytes, BlockClass block_class) {
  PIMCOMP_ASSERT(bytes >= 0, "negative allocation");
  Block block;
  block.bytes = bytes;
  block.block_class = block_class;
  block.live = true;
  if (spill_on_overflow_ && usage_ + bytes > capacity_) {
    // Overflow: this block lives in global memory instead (write now, read
    // back at use). Usage does not grow.
    block.spilled = true;
    spill_traffic_ += 2 * bytes;
  } else {
    usage_ += bytes;
    peak_ = std::max(peak_, usage_);
  }
  blocks_.push_back(block);
  return static_cast<int>(blocks_.size()) - 1;
}

int LocalMemoryPlanner::accumulate_into(int accumulator_block,
                                        std::int64_t bytes) {
  if (policy_ == MemoryPolicy::kNaive || accumulator_block < 0) {
    return alloc(bytes, BlockClass::kAccumulator);
  }
  PIMCOMP_ASSERT(
      accumulator_block < static_cast<int>(blocks_.size()) &&
          blocks_[static_cast<std::size_t>(accumulator_block)].live,
      "accumulate_into on a dead block");
  return accumulator_block;
}

bool LocalMemoryPlanner::reclaim_on_free(BlockClass block_class) const {
  switch (policy_) {
    case MemoryPolicy::kNaive:
      return false;
    case MemoryPolicy::kAddReuse:
      // Only collapsed accumulator chains benefit; partials and inputs wait
      // for the flush.
      return block_class == BlockClass::kAccumulator;
    case MemoryPolicy::kAgReuse:
      return true;
  }
  return false;
}

void LocalMemoryPlanner::free(int block) {
  if (block < 0) return;  // spilled blocks have no local residence
  PIMCOMP_ASSERT(block < static_cast<int>(blocks_.size()), "bad block id");
  Block& b = blocks_[static_cast<std::size_t>(block)];
  if (!b.live) return;
  if (!reclaim_on_free(b.block_class)) return;  // held until flush()
  b.live = false;
  if (!b.spilled) usage_ -= b.bytes;
}

void LocalMemoryPlanner::force_free(int block) {
  if (block < 0) return;
  PIMCOMP_ASSERT(block < static_cast<int>(blocks_.size()), "bad block id");
  Block& b = blocks_[static_cast<std::size_t>(block)];
  if (!b.live) return;
  b.live = false;
  if (!b.spilled) usage_ -= b.bytes;
}

void LocalMemoryPlanner::flush() {
  for (Block& b : blocks_) {
    if (b.live && !b.spilled) usage_ -= b.bytes;
    b.live = false;
  }
  blocks_.clear();
  PIMCOMP_ASSERT(usage_ == 0, "flush left residual usage");
}

}  // namespace pimcomp
