#ifndef PIMCOMP_COMMON_THREAD_POOL_HPP
#define PIMCOMP_COMMON_THREAD_POOL_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/thread_annotations.hpp"

namespace pimcomp {

/// A fixed-size worker pool over a priority-aware task queue. Workers are
/// resident: CompilerSession keeps one pool alive across batches and feeds
/// it submitted CompileJobs, so back-to-back batches never pay thread
/// creation again. Still small by design — no futures, no work stealing.
///
/// Ordering: higher `priority` runs sooner; tasks of equal priority run in
/// strict submission (FIFO) order, which is what keeps a one-worker pool
/// behaviorally identical to the old inline sequential batch loop.
///
/// Tasks must not let exceptions escape — a throwing task terminates the
/// process (std::thread unwinding). Callers that can fail wrap their work in
/// a try/catch and encode the failure in their own result slot, as
/// CompilerSession's job runner does with ScenarioOutcome.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Joins all workers. Pending tasks are still drained first: destruction
  /// waits for the queue to empty, it does not cancel. (Callers wanting a
  /// fast teardown cancel their tasks' own work first, as CompilerSession's
  /// destructor does with its jobs' CancelTokens.)
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Higher `priority` is dequeued first; ties run FIFO.
  void submit(std::function<void()> task, int priority = 0)
      PIMCOMP_EXCLUDES(mutex_);

  /// Runs the best queued task inline on the calling thread; returns false
  /// without blocking when the queue is empty. This is how a worker that
  /// must wait for another task's completion (a nested batch submitted from
  /// inside a running task) makes progress instead of deadlocking on
  /// itself — see CompileJob::wait().
  bool run_one() PIMCOMP_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished and the queue is empty.
  void wait_idle() PIMCOMP_EXCLUDES(mutex_);

  /// Runs fn(0) .. fn(count-1) across the pool's workers plus the calling
  /// thread, returning once every index has completed. Indices are claimed
  /// from a shared cursor, so which thread runs which index is not
  /// deterministic — callers needing reproducible results make fn(i) depend
  /// only on i (the island GA's per-island RNG streams are the canonical
  /// example). The calling thread drains indices itself and never steals
  /// unrelated queued tasks, so a parallel_for issued from inside a running
  /// task cannot recurse into foreign work. Exceptions from fn are caught
  /// per index and the one from the LOWEST index is rethrown after the last
  /// index retires, making error reporting independent of interleaving.
  /// `priority` is the queue priority of the helper tasks.
  void parallel_for(int count, const std::function<void(int)>& fn,
                    int priority = 0) PIMCOMP_EXCLUDES(mutex_);

  int size() const { return static_cast<int>(workers_.size()); }

  /// The pool whose worker loop is running on the calling thread, or
  /// nullptr for threads the pool does not own. Lets blocking waits detect
  /// "I am waiting on work only I can run" and switch to run_one() helping.
  static const ThreadPool* current();

  /// std::thread::hardware_concurrency with a sane floor (the standard
  /// allows it to report 0).
  static int hardware_threads();

 private:
  struct Entry {
    int priority = 0;
    std::uint64_t seq = 0;  ///< submission order, breaks priority ties FIFO
    std::function<void()> task;
  };
  struct EntryOrder {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;  // earlier submission first within a priority
    }
  };

  void worker_loop() PIMCOMP_EXCLUDES(mutex_);
  /// Pops the best entry and counts it active; the caller runs it unlocked
  /// and hands it to finish_task().
  std::function<void()> take_task_locked() PIMCOMP_REQUIRES(mutex_);
  /// Runs `task` (lock NOT held), then re-locks to retire it from the
  /// active count and signal idleness.
  void finish_task(std::function<void()> task) PIMCOMP_EXCLUDES(mutex_);

  std::vector<Thread> workers_;
  std::priority_queue<Entry, std::vector<Entry>, EntryOrder> tasks_
      PIMCOMP_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ PIMCOMP_GUARDED_BY(mutex_) = 0;
  mutable Mutex mutex_;
  CondVar work_available_;
  CondVar idle_;
  int active_ PIMCOMP_GUARDED_BY(mutex_) = 0;
  bool stopping_ PIMCOMP_GUARDED_BY(mutex_) = false;
};

}  // namespace pimcomp

#endif  // PIMCOMP_COMMON_THREAD_POOL_HPP
