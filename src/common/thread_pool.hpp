#ifndef PIMCOMP_COMMON_THREAD_POOL_HPP
#define PIMCOMP_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pimcomp {

/// A fixed-size worker pool over a FIFO task queue. Small by design: enough
/// for CompilerSession to fan a scenario batch out across threads, nothing
/// speculative (no futures, no work stealing).
///
/// Tasks must not let exceptions escape — a throwing task terminates the
/// process (std::thread unwinding). Callers that can fail wrap their work in
/// a try/catch and encode the failure in their own result slot, as
/// CompilerSession::compile_all() does with ScenarioOutcome.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Joins all workers. Pending tasks are still drained first: destruction
  /// waits for the queue to empty, it does not cancel.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for the next free worker.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished and the queue is empty.
  void wait_idle();

  int size() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a sane floor (the standard
  /// allows it to report 0).
  static int hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  int active_ = 0;
  bool stopping_ = false;
};

}  // namespace pimcomp

#endif  // PIMCOMP_COMMON_THREAD_POOL_HPP
