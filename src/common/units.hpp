#ifndef PIMCOMP_COMMON_UNITS_HPP
#define PIMCOMP_COMMON_UNITS_HPP

#include <cstdint>

namespace pimcomp {

/// All simulated time is carried as 64-bit integer picoseconds so that event
/// ordering is exact (no floating-point ties). One simulated second is 1e12
/// ps, so int64 gives ~106 days of headroom.
using Picoseconds = std::int64_t;

inline constexpr Picoseconds kPsPerNs = 1'000;
inline constexpr Picoseconds kPsPerUs = 1'000'000;
inline constexpr Picoseconds kPsPerMs = 1'000'000'000;
inline constexpr Picoseconds kPsPerSec = 1'000'000'000'000;

constexpr Picoseconds from_ns(double ns) {
  return static_cast<Picoseconds>(ns * static_cast<double>(kPsPerNs));
}
constexpr Picoseconds from_us(double us) {
  return static_cast<Picoseconds>(us * static_cast<double>(kPsPerUs));
}
constexpr double to_ns(Picoseconds ps) {
  return static_cast<double>(ps) / static_cast<double>(kPsPerNs);
}
constexpr double to_us(Picoseconds ps) {
  return static_cast<double>(ps) / static_cast<double>(kPsPerUs);
}
constexpr double to_ms(Picoseconds ps) {
  return static_cast<double>(ps) / static_cast<double>(kPsPerMs);
}
constexpr double to_seconds(Picoseconds ps) {
  return static_cast<double>(ps) / static_cast<double>(kPsPerSec);
}

/// Energy bookkeeping unit: picojoules, kept as double (energies accumulate,
/// they never order events).
using Picojoules = double;

inline constexpr double kPjPerNj = 1'000.0;
inline constexpr double kPjPerUj = 1'000'000.0;
inline constexpr double kPjPerMj = 1'000'000'000.0;

constexpr double to_uj(Picojoules pj) { return pj / kPjPerUj; }
constexpr double to_mj(Picojoules pj) { return pj / kPjPerMj; }

/// milliwatts * picoseconds -> picojoules. (1 mW = 1e-3 J/s = 1e9 pJ / 1e12 ps
/// = 1e-3 pJ/ps.)
constexpr Picojoules energy_mw_ps(double milliwatts, Picoseconds duration) {
  return milliwatts * 1e-3 * static_cast<double>(duration);
}

}  // namespace pimcomp

#endif  // PIMCOMP_COMMON_UNITS_HPP
