#ifndef PIMCOMP_COMMON_LOGGING_HPP
#define PIMCOMP_COMMON_LOGGING_HPP

#include <atomic>
#include <sstream>
#include <string>

namespace pimcomp {

/// Log severities in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal process-wide logger. The compiler is a library, so logging defaults
/// to warnings-and-up on stderr; hosts may raise or silence it.
class Logger {
 public:
  /// Global verbosity threshold.
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Emits one formatted line if `level` passes the threshold.
  static void log(LogLevel level, const std::string& message);

 private:
  // Atomic: set_level() may race with log()/level() calls from session
  // workers and pimcompd reader threads (relaxed is enough — the threshold
  // is advisory, no data is published through it).
  static std::atomic<LogLevel> level_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::log(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace pimcomp

#define PIMCOMP_LOG_DEBUG ::pimcomp::detail::LogLine(::pimcomp::LogLevel::kDebug)
#define PIMCOMP_LOG_INFO ::pimcomp::detail::LogLine(::pimcomp::LogLevel::kInfo)
#define PIMCOMP_LOG_WARN ::pimcomp::detail::LogLine(::pimcomp::LogLevel::kWarn)
#define PIMCOMP_LOG_ERROR ::pimcomp::detail::LogLine(::pimcomp::LogLevel::kError)

#endif  // PIMCOMP_COMMON_LOGGING_HPP
