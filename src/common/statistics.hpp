#ifndef PIMCOMP_COMMON_STATISTICS_HPP
#define PIMCOMP_COMMON_STATISTICS_HPP

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace pimcomp {

/// Streaming scalar statistics (count / mean / min / max / stddev) without
/// storing samples. Used for per-op latencies and memory footprints.
class RunningStats {
 public:
  void add(double x);
  std::int64_t count() const { return count_; }
  double mean() const;
  double min() const;
  double max() const;
  double variance() const;
  double stddev() const;

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. the paper's
/// "local memory usage on average (kB)" (Fig 10) which weights each usage
/// level by how long it persists.
class TimeWeightedAverage {
 public:
  /// Records that the signal changed to `value` at time `t`. Times must be
  /// non-decreasing.
  void record(Picoseconds t, double value);

  /// Closes the signal at time `t` and returns the time-weighted mean.
  double finish(Picoseconds end_time);

  double peak() const { return peak_; }

 private:
  bool started_ = false;
  Picoseconds last_time_ = 0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
  Picoseconds total_time_ = 0;
  double peak_ = 0.0;
};

/// Geometric mean of a set of positive values; the paper reports average
/// speedups which are conventionally geomeans.
double geomean(const std::vector<double>& values);

}  // namespace pimcomp

#endif  // PIMCOMP_COMMON_STATISTICS_HPP
