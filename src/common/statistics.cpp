#include "common/statistics.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pimcomp {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }
double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void TimeWeightedAverage::record(Picoseconds t, double value) {
  if (started_) {
    PIMCOMP_ASSERT(t >= last_time_, "time-weighted samples must be ordered");
    const Picoseconds dt = t - last_time_;
    weighted_sum_ += last_value_ * static_cast<double>(dt);
    total_time_ += dt;
  }
  started_ = true;
  last_time_ = t;
  last_value_ = value;
  if (value > peak_) peak_ = value;
}

double TimeWeightedAverage::finish(Picoseconds end_time) {
  if (!started_) return 0.0;
  record(end_time, last_value_);
  if (total_time_ == 0) return last_value_;
  return weighted_sum_ / static_cast<double>(total_time_);
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    PIMCOMP_ASSERT(v > 0.0, "geomean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace pimcomp
