#include "common/table.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>

namespace pimcomp {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  if (columns == 0) return title_ + "\n(empty table)\n";

  std::vector<std::size_t> widths(columns, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  auto render_row = [&](const std::vector<std::string>& row,
                        std::ostringstream& oss) {
    oss << "|";
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      oss << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    oss << '\n';
  };

  std::ostringstream oss;
  std::size_t total = 1;
  for (std::size_t w : widths) total += w + 3;
  const std::string rule(total, '-');
  if (!title_.empty()) oss << title_ << '\n';
  oss << rule << '\n';
  if (!header_.empty()) {
    render_row(header_, oss);
    oss << rule << '\n';
  }
  for (const auto& row : rows_) render_row(row, oss);
  oss << rule << '\n';
  return oss.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

}  // namespace pimcomp
