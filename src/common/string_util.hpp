#ifndef PIMCOMP_COMMON_STRING_UTIL_HPP
#define PIMCOMP_COMMON_STRING_UTIL_HPP

#include <optional>
#include <string>
#include <vector>

namespace pimcomp {

/// Formats a double with `digits` places after the decimal point.
std::string format_double(double value, int digits = 2);

/// Formats a value as "1.23x" multiplier notation used in the paper's plots.
std::string format_ratio(double value, int digits = 2);

/// Formats a byte count with a binary-unit suffix (e.g. "63.4 kB").
std::string format_bytes(double bytes);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Strict base-10 integer parse: the whole token must be numeric (no
/// trailing characters, no empty string), else nullopt. The single home of
/// the stoll+fully-consumed idiom every flag/endpoint parser shares —
/// range checks and error wording stay with the callers.
std::optional<long long> parse_decimal(const std::string& token);

}  // namespace pimcomp

#endif  // PIMCOMP_COMMON_STRING_UTIL_HPP
