#include "common/string_util.hpp"

#include <cstdio>
#include <sstream>

namespace pimcomp {

std::string format_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

std::string format_ratio(double value, int digits) {
  return format_double(value, digits) + "x";
}

std::string format_bytes(double bytes) {
  const char* units[] = {"B", "kB", "MB", "GB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 3) {
    bytes /= 1024.0;
    ++unit;
  }
  return format_double(bytes, unit == 0 ? 0 : 1) + " " + units[unit];
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) oss << sep;
    oss << parts[i];
  }
  return oss.str();
}

std::optional<long long> parse_decimal(const std::string& token) {
  if (token.empty()) return std::nullopt;
  std::size_t consumed = 0;
  long long value = 0;
  try {
    value = std::stoll(token, &consumed, 10);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (consumed != token.size()) return std::nullopt;
  return value;
}

}  // namespace pimcomp
