#ifndef PIMCOMP_COMMON_JSON_HPP
#define PIMCOMP_COMMON_JSON_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace pimcomp {

/// Raised on malformed JSON input.
class JsonError : public Error {
 public:
  explicit JsonError(const std::string& message) : Error(message) {}
};

/// Minimal JSON value used for the graph serialization format and machine-
/// readable reports. Supports null / bool / number / string / array / object.
/// Objects preserve key order for stable, diffable output.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}               // NOLINT
  Json(double d) : type_(Type::kNumber), number_(d) {}         // NOLINT
  Json(int i) : type_(Type::kNumber), number_(i) {}            // NOLINT
  Json(std::int64_t i)                                          // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}    // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {} // NOLINT

  /// Creates an empty array / object.
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw JsonError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  /// Array access.
  std::size_t size() const;
  const Json& at(std::size_t index) const;
  void push_back(Json value);

  /// Object access. `operator[]` on a mutable object inserts; `at` throws if
  /// the key is missing; `get` returns a fallback.
  bool contains(const std::string& key) const;
  const Json& at(const std::string& key) const;
  Json& operator[](const std::string& key);
  const std::vector<std::pair<std::string, Json>>& items() const;

  double get(const std::string& key, double fallback) const;
  std::int64_t get(const std::string& key, std::int64_t fallback) const;
  int get(const std::string& key, int fallback) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  bool get(const std::string& key, bool fallback) const;

  /// Serializes; `indent < 0` emits compact single-line output.
  std::string dump(int indent = 2) const;

  /// Parses a complete JSON document (trailing whitespace allowed).
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;
  void expect(Type t, const char* what) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Reads a whole file into a Json value (throws Error on I/O failure).
Json json_from_file(const std::string& path);

/// Writes a Json value to a file, pretty-printed.
void json_to_file(const Json& value, const std::string& path);

}  // namespace pimcomp

#endif  // PIMCOMP_COMMON_JSON_HPP
