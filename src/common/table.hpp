#ifndef PIMCOMP_COMMON_TABLE_HPP
#define PIMCOMP_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace pimcomp {

/// ASCII table printer used by the benchmark harness to reproduce the paper's
/// tables and figure data series in a terminal-friendly layout.
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row.
  void set_header(std::vector<std::string> header);

  /// Appends one data row; rows shorter than the header are right-padded.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with column alignment and separators.
  std::string to_string() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pimcomp

#endif  // PIMCOMP_COMMON_TABLE_HPP
