#ifndef PIMCOMP_COMMON_CANCEL_HPP
#define PIMCOMP_COMMON_CANCEL_HPP

#include <atomic>
#include <memory>

#include "common/error.hpp"

namespace pimcomp {

/// Cooperative cancellation flag shared between a job's owner and the code
/// running it. Copies observe one underlying flag (a simplified
/// std::stop_token): the owner calls request(), long-running code polls
/// cancelled() at natural boundaries — the pipeline between stages, the GA
/// between generations — and bails out with CancelledError. Cancellation is
/// therefore prompt but not preemptive: a stage that never polls runs to
/// completion.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Idempotent, safe from any thread.
  void request() { state_->store(true, std::memory_order_relaxed); }

  bool cancelled() const { return state_->load(std::memory_order_relaxed); }

  /// Polling helper for stage/generation boundaries: throws CancelledError
  /// naming `where` once cancellation has been requested.
  void throw_if_cancelled(const char* where) const {
    if (cancelled()) {
      throw CancelledError(std::string("cancelled before ") + where);
    }
  }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

}  // namespace pimcomp

#endif  // PIMCOMP_COMMON_CANCEL_HPP
