#ifndef PIMCOMP_COMMON_RANDOM_HPP
#define PIMCOMP_COMMON_RANDOM_HPP

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace pimcomp {

/// Deterministic, seedable PRNG (xoshiro256**). Every stochastic component of
/// PIMCOMP (GA initialization, mutation choice) draws from an explicitly
/// seeded Rng so compilations are reproducible bit-for-bit.
/// Derives the seed of deterministic sub-stream `index` from a base seed.
/// Stream 0 *is* the base seed, so a single-stream consumer (the islands=1
/// GA) replays the exact pre-split trajectory; higher indices pass through
/// the SplitMix64 finalizer so neighboring streams land in unrelated
/// regions of the seed space. Used by the island-model GA to give every
/// island its own Rng: results then depend on (seed, stream count) only,
/// never on how many threads happen to run the streams.
inline std::uint64_t split_seed(std::uint64_t seed, std::uint64_t index) {
  if (index == 0) return seed;
  std::uint64_t z = seed + index * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initializes state from a single seed via SplitMix64 expansion.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  ///
  /// Bias-free via Lemire's multiply-shift rejection method (arXiv
  /// 1805.10941): the earlier `next_u64() % bound` over-weighted small
  /// values whenever bound did not divide 2^64 — negligible for GA-sized
  /// bounds but measurable for large ones, and cheap to do right.
  int uniform_int(int bound) {
    PIMCOMP_ASSERT(bound > 0, "uniform_int bound must be positive");
    const std::uint32_t range = static_cast<std::uint32_t>(bound);
    std::uint32_t x = static_cast<std::uint32_t>(next_u64() >> 32);
    std::uint64_t product = static_cast<std::uint64_t>(x) * range;
    std::uint32_t low = static_cast<std::uint32_t>(product);
    if (low < range) {
      // Reject the partial interval at the bottom of the 2^32 space; the
      // loop redraws with probability < range / 2^32.
      const std::uint32_t threshold = (0u - range) % range;
      while (low < threshold) {
        x = static_cast<std::uint32_t>(next_u64() >> 32);
        product = static_cast<std::uint64_t>(x) * range;
        low = static_cast<std::uint32_t>(product);
      }
    }
    return static_cast<int>(product >> 32);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_range(int lo, int hi) {
    PIMCOMP_ASSERT(lo <= hi, "uniform_range requires lo <= hi");
    return lo + uniform_int(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Picks a uniformly random element index of a non-empty container.
  template <typename Container>
  int pick_index(const Container& c) {
    PIMCOMP_ASSERT(!c.empty(), "pick_index on empty container");
    return uniform_int(static_cast<int>(c.size()));
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      std::swap(v[static_cast<std::size_t>(i)],
                v[static_cast<std::size_t>(uniform_int(i + 1))]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace pimcomp

#endif  // PIMCOMP_COMMON_RANDOM_HPP
