#include "common/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace pimcomp {

namespace {
/// Set for the duration of worker_loop() so ThreadPool::current() can tell
/// pool workers apart from external threads. run_one() deliberately leaves
/// it untouched: a task helped along on a worker still reports that worker's
/// pool, and an external helper still reports none.
thread_local const ThreadPool* tl_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (Thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task, int priority) {
  {
    MutexLock lock(mutex_);
    tasks_.push(Entry{priority, next_seq_++, std::move(task)});
  }
  work_available_.notify_one();
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  {
    MutexLock lock(mutex_);
    if (tasks_.empty()) return false;
    task = take_task_locked();
  }
  finish_task(std::move(task));
  return true;
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!tasks_.empty() || active_ != 0) idle_.wait(mutex_);
}

const ThreadPool* ThreadPool::current() { return tl_current_pool; }

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::function<void()> ThreadPool::take_task_locked() {
  // priority_queue::top() is const; the task is moved out via const_cast,
  // which is safe because pop() removes the node before anyone else can
  // observe it.
  std::function<void()> task = std::move(const_cast<Entry&>(tasks_.top()).task);
  tasks_.pop();
  ++active_;
  return task;
}

void ThreadPool::finish_task(std::function<void()> task) {
  task();
  // Destroy the closure (and everything it captured) *before* the pool
  // counts the task as done: after wait_idle() returns, no task state —
  // including shared_ptrs captured in completion callbacks — survives on a
  // worker. CompileServer's teardown relies on this to never run a session
  // destructor on that session's own worker thread.
  task = nullptr;
  MutexLock lock(mutex_);
  --active_;
  if (tasks_.empty() && active_ == 0) idle_.notify_all();
}

void ThreadPool::worker_loop() {
  tl_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) work_available_.wait(mutex_);
      if (tasks_.empty()) return;  // stopping_ with a drained queue
      task = take_task_locked();
    }
    finish_task(std::move(task));
  }
}

}  // namespace pimcomp
