#include "common/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace pimcomp {

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace pimcomp
