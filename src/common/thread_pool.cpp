#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

namespace pimcomp {

namespace {
/// Set for the duration of worker_loop() so ThreadPool::current() can tell
/// pool workers apart from external threads. run_one() deliberately leaves
/// it untouched: a task helped along on a worker still reports that worker's
/// pool, and an external helper still reports none.
thread_local const ThreadPool* tl_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (Thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task, int priority) {
  {
    MutexLock lock(mutex_);
    tasks_.push(Entry{priority, next_seq_++, std::move(task)});
  }
  work_available_.notify_one();
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  {
    MutexLock lock(mutex_);
    if (tasks_.empty()) return false;
    task = take_task_locked();
  }
  finish_task(std::move(task));
  return true;
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!tasks_.empty() || active_ != 0) idle_.wait(mutex_);
}

void ThreadPool::parallel_for(int count, const std::function<void(int)>& fn,
                              int priority) {
  if (count <= 0) return;
  if (count == 1) {
    fn(0);
    return;
  }

  // Shared by the caller and the helper tasks. Helpers hold it via
  // shared_ptr because a helper may be dequeued *after* the caller already
  // drained every index and returned — it then finds the cursor exhausted
  // and retires without touching `fn` (only claimed indices ever call fn,
  // and the caller waits for all of those to complete).
  struct State {
    explicit State(const std::function<void(int)>& f, int n)
        : fn(&f), count(n) {}
    const std::function<void(int)>* fn;
    int count;
    Mutex mutex;
    CondVar all_done;
    int next PIMCOMP_GUARDED_BY(mutex) = 0;
    int completed PIMCOMP_GUARDED_BY(mutex) = 0;
    int error_index PIMCOMP_GUARDED_BY(mutex) = -1;
    std::exception_ptr error PIMCOMP_GUARDED_BY(mutex);
  };
  auto state = std::make_shared<State>(fn, count);

  auto drain = [](State& s) {
    for (;;) {
      int index;
      {
        MutexLock lock(s.mutex);
        if (s.next >= s.count) return;
        index = s.next++;
      }
      try {
        (*s.fn)(index);
      } catch (...) {
        MutexLock lock(s.mutex);
        if (s.error_index < 0 || index < s.error_index) {
          s.error_index = index;
          s.error = std::current_exception();
        }
      }
      MutexLock lock(s.mutex);
      if (++s.completed == s.count) s.all_done.notify_all();
    }
  };

  const int helpers = std::min(count - 1, size());
  for (int h = 0; h < helpers; ++h) {
    submit([state, drain] { drain(*state); }, priority);
  }
  drain(*state);

  std::exception_ptr error;
  {
    MutexLock lock(state->mutex);
    while (state->completed < state->count) state->all_done.wait(state->mutex);
    // Move, don't copy: a late helper may release the last State reference
    // on a worker thread, and libstdc++'s exception_ptr refcount is opaque
    // to TSan — taking sole ownership keeps the exception's destruction on
    // the calling thread, ordered after the rethrow below.
    error = std::move(state->error);
  }
  if (error) std::rethrow_exception(error);
}

const ThreadPool* ThreadPool::current() { return tl_current_pool; }

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::function<void()> ThreadPool::take_task_locked() {
  // priority_queue::top() is const; the task is moved out via const_cast,
  // which is safe because pop() removes the node before anyone else can
  // observe it.
  std::function<void()> task = std::move(const_cast<Entry&>(tasks_.top()).task);
  tasks_.pop();
  ++active_;
  return task;
}

void ThreadPool::finish_task(std::function<void()> task) {
  task();
  // Destroy the closure (and everything it captured) *before* the pool
  // counts the task as done: after wait_idle() returns, no task state —
  // including shared_ptrs captured in completion callbacks — survives on a
  // worker. CompileServer's teardown relies on this to never run a session
  // destructor on that session's own worker thread.
  task = nullptr;
  MutexLock lock(mutex_);
  --active_;
  if (tasks_.empty() && active_ == 0) idle_.notify_all();
}

void ThreadPool::worker_loop() {
  tl_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) work_available_.wait(mutex_);
      if (tasks_.empty()) return;  // stopping_ with a drained queue
      task = take_task_locked();
    }
    finish_task(std::move(task));
  }
}

}  // namespace pimcomp
