#ifndef PIMCOMP_COMMON_ERROR_HPP
#define PIMCOMP_COMMON_ERROR_HPP

#include <stdexcept>
#include <string>

namespace pimcomp {

/// Base exception for all PIMCOMP failures. Carries a human-readable message
/// with enough context to diagnose the failing compilation stage.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// Raised when user-provided configuration (hardware parameters, compiler
/// options) is inconsistent or out of range.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& message) : Error(message) {}
};

/// Raised when a DNN graph is malformed (cycles, dangling edges, shape
/// mismatches).
class GraphError : public Error {
 public:
  explicit GraphError(const std::string& message) : Error(message) {}
};

/// Raised when a workload cannot be placed on the configured hardware
/// (e.g. insufficient crossbar capacity for even one replica of each node).
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& message) : Error(message) {}
};

/// Raised when the simulator detects an ill-formed operation stream
/// (mismatched COMM pairs, deadlock, use of unallocated memory).
class SimulationError : public Error {
 public:
  explicit SimulationError(const std::string& message) : Error(message) {}
};

/// Raised when a compilation observes its CancelToken (common/cancel.hpp)
/// at a stage or GA-generation boundary after cancellation was requested.
/// Not an input or system failure: the job's owner asked for the abort.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& message) : Error(message) {}
};

namespace detail {
[[noreturn]] void assertion_failure(const char* expr, const char* file,
                                    int line, const std::string& message);
}  // namespace detail

}  // namespace pimcomp

/// Internal invariant check; always on (the library is not performance bound
/// by these and silent corruption is worse than a crash in a compiler).
#define PIMCOMP_ASSERT(expr, message)                                       \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::pimcomp::detail::assertion_failure(#expr, __FILE__, __LINE__,       \
                                           (message));                     \
    }                                                                       \
  } while (false)

/// Precondition check on user-facing API boundaries: throws ConfigError.
#define PIMCOMP_CHECK(expr, message)                                        \
  do {                                                                      \
    if (!(expr)) {                                                          \
      throw ::pimcomp::ConfigError(std::string("precondition failed: ") +   \
                                   (message));                             \
    }                                                                       \
  } while (false)

#endif  // PIMCOMP_COMMON_ERROR_HPP
