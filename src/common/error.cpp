#include "common/error.hpp"

#include <sstream>

namespace pimcomp::detail {

void assertion_failure(const char* expr, const char* file, int line,
                       const std::string& message) {
  std::ostringstream oss;
  oss << "internal invariant violated: " << message << " [" << expr << "] at "
      << file << ":" << line;
  throw Error(oss.str());
}

}  // namespace pimcomp::detail
