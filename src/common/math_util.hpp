#ifndef PIMCOMP_COMMON_MATH_UTIL_HPP
#define PIMCOMP_COMMON_MATH_UTIL_HPP

#include <cstdint>
#include <type_traits>

#include "common/error.hpp"

namespace pimcomp {

/// ceil(a / b) for non-negative integers; b must be positive.
template <typename T>
constexpr T ceil_div(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return (a + b - 1) / b;
}

/// Rounds `a` up to the next multiple of `m` (m > 0).
template <typename T>
constexpr T round_up(T a, T m) {
  static_assert(std::is_integral_v<T>);
  return ceil_div(a, m) * m;
}

/// Saturating clamp to [lo, hi].
template <typename T>
constexpr T clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Integer square root (floor).
constexpr std::int64_t isqrt(std::int64_t n) {
  std::int64_t r = 0;
  while ((r + 1) * (r + 1) <= n) ++r;
  return r;
}

/// Checked narrowing from 64-bit to int; throws on overflow. Used at API
/// boundaries where sizes come from 64-bit arithmetic.
inline int checked_int(std::int64_t v) {
  PIMCOMP_ASSERT(v >= 0 && v <= 2147483647, "value does not fit in int");
  return static_cast<int>(v);
}

}  // namespace pimcomp

#endif  // PIMCOMP_COMMON_MATH_UTIL_HPP
