#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pimcomp {

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

void Json::expect(Type t, const char* what) const {
  if (type_ != t) {
    throw JsonError(std::string("json value is not ") + what);
  }
}

bool Json::as_bool() const {
  expect(Type::kBool, "a bool");
  return bool_;
}

double Json::as_number() const {
  expect(Type::kNumber, "a number");
  return number_;
}

std::int64_t Json::as_int() const {
  expect(Type::kNumber, "a number");
  return static_cast<std::int64_t>(std::llround(number_));
}

const std::string& Json::as_string() const {
  expect(Type::kString, "a string");
  return string_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  throw JsonError("json value has no size");
}

const Json& Json::at(std::size_t index) const {
  expect(Type::kArray, "an array");
  if (index >= array_.size()) throw JsonError("json array index out of range");
  return array_[index];
}

void Json::push_back(Json value) {
  expect(Type::kArray, "an array");
  array_.push_back(std::move(value));
}

bool Json::contains(const std::string& key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  expect(Type::kObject, "an object");
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  throw JsonError("missing json key: " + key);
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  expect(Type::kObject, "an object");
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(key, Json());
  return object_.back().second;
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  expect(Type::kObject, "an object");
  return object_;
}

double Json::get(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_number() : fallback;
}

std::int64_t Json::get(const std::string& key, std::int64_t fallback) const {
  return contains(key) ? at(key).as_int() : fallback;
}

int Json::get(const std::string& key, int fallback) const {
  return contains(key) ? static_cast<int>(at(key).as_int()) : fallback;
}

std::string Json::get(const std::string& key,
                      const std::string& fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Json::get(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

namespace {

void escape_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void format_number(double d, std::string& out) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(std::llround(d)));
    out += buf;
  } else {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent >= 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                  : std::string();
  const std::string closing_pad =
      indent >= 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                  : std::string();
  const char* nl = indent >= 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: format_number(number_, out); break;
    case Type::kString: escape_string(string_, out); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += "[";
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ",";
        out += nl;
      }
      out += closing_pad;
      out += "]";
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += "{";
      out += nl;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        escape_string(object_[i].first, out);
        out += indent >= 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < object_.size()) out += ",";
        out += nl;
      }
      out += closing_pad;
      out += "}";
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream oss;
    oss << "json parse error at line " << line << " col " << col << ": "
        << why;
    throw JsonError(oss.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect_char(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_word("true"); return Json(true);
      case 'f': expect_word("false"); return Json(false);
      case 'n': expect_word("null"); return Json();
      default: return parse_number();
    }
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("invalid literal");
      ++pos_;
    }
  }

  std::string parse_string() {
    expect_char('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = take();
      if (c == '"') break;
      if (c == '\\') {
        char esc = take();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad unicode escape");
            }
            // Encode as UTF-8 (basic multilingual plane only).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("bad escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid number");
    try {
      return Json(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("invalid number");
    }
  }

  Json parse_array() {
    expect_char('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
    return arr;
  }

  Json parse_object() {
    expect_char('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect_char(':');
      obj[key] = parse_value();
      skip_ws();
      char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
    return obj;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

Json json_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open file for reading: " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return Json::parse(oss.str());
}

void json_to_file(const Json& value, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open file for writing: " + path);
  out << value.dump(2) << '\n';
}

}  // namespace pimcomp
