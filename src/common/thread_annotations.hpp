#ifndef PIMCOMP_COMMON_THREAD_ANNOTATIONS_HPP
#define PIMCOMP_COMMON_THREAD_ANNOTATIONS_HPP

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

/// Clang Thread Safety Analysis support: capability-annotated wrappers over
/// the std synchronization primitives, plus the annotation macros the rest
/// of the codebase attaches to guarded fields and lock-holding functions.
///
/// Under Clang with -Wthread-safety (CMake option PIMCOMP_THREAD_SAFETY=ON,
/// on for the Clang CI leg) the locking protocol becomes a compile-time
/// proof: reading a PIMCOMP_GUARDED_BY(mu) field without holding `mu`, or
/// releasing a Mutex that is not held, is a build error. On every other
/// compiler the macros expand to nothing and the wrappers cost exactly a
/// std::mutex / std::condition_variable.
///
/// Conventions (see docs/concurrency.md for the full rules and the global
/// lock hierarchy):
///  * every mutex in src/ is a pimcomp::Mutex or pimcomp::RecursiveMutex —
///    scripts/check_concurrency_lint.py bans the naked std types outside
///    this header;
///  * every field a mutex protects carries PIMCOMP_GUARDED_BY(that_mutex);
///  * private helpers that expect a lock already held are suffixed
///    `_locked` and annotated PIMCOMP_REQUIRES(that_mutex);
///  * condition waits are explicit while-loops around CondVar::wait so the
///    guarded reads in the predicate stay visible to the analysis (a lambda
///    predicate would be analyzed as a lock-free function and rejected).
#if defined(__clang__)
#define PIMCOMP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PIMCOMP_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability ("mutex" in diagnostics).
#define PIMCOMP_CAPABILITY(x) PIMCOMP_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability at construction and
/// releases it at destruction (MutexLock below).
#define PIMCOMP_SCOPED_CAPABILITY PIMCOMP_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads and writes require holding the named mutex.
#define PIMCOMP_GUARDED_BY(x) PIMCOMP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field annotation: the pointee (not the pointer) is guarded.
#define PIMCOMP_PT_GUARDED_BY(x) PIMCOMP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function annotation: the caller must hold the named mutex(es); the
/// function neither acquires nor releases them.
#define PIMCOMP_REQUIRES(...) \
  PIMCOMP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function annotations: the function acquires / releases the capability.
#define PIMCOMP_ACQUIRE(...) \
  PIMCOMP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PIMCOMP_RELEASE(...) \
  PIMCOMP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PIMCOMP_TRY_ACQUIRE(...) \
  PIMCOMP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the named mutex(es) —
/// documents (and checks) deadlock-avoidance contracts like "completion
/// callbacks run outside all session locks".
#define PIMCOMP_EXCLUDES(...) \
  PIMCOMP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Tells the analysis a capability is held without acquiring it (runtime
/// assertion points).
#define PIMCOMP_ASSERT_CAPABILITY(x) \
  PIMCOMP_THREAD_ANNOTATION(assert_capability(x))

/// Returns-a-reference-to-a-capability annotation.
#define PIMCOMP_RETURN_CAPABILITY(x) PIMCOMP_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for bodies whose protocol the analysis cannot model (e.g.
/// conditional release tracked by a runtime bool). The *interface*
/// annotations still apply to callers; only the body is exempt. Every use
/// must carry a comment saying why.
#define PIMCOMP_NO_THREAD_SAFETY_ANALYSIS \
  PIMCOMP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pimcomp {

/// The project's thread type. An alias, not a wrapper — semantics are
/// exactly std::thread's. It exists so the concurrency linter can ban raw
/// `std::thread` construction outside this header: thread ownership then
/// only appears where a join discipline is documented. (std::thread::id and
/// std::this_thread stay allowed everywhere; detach() is banned outright.)
using Thread = std::thread;

/// Capability-annotated std::mutex. Prefer MutexLock over manual
/// lock()/unlock(); the manual pair exists for the analysis' sake and for
/// adoption by CondVar.
class PIMCOMP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PIMCOMP_ACQUIRE() { mu_.lock(); }
  void unlock() PIMCOMP_RELEASE() { mu_.unlock(); }
  bool try_lock() PIMCOMP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Capability-annotated std::recursive_mutex, for the one place the design
/// needs re-entrancy: CompilerSession's observer serialization, where an
/// observer callback may legally re-enter the session on its own thread.
class PIMCOMP_CAPABILITY("mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;
  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void lock() PIMCOMP_ACQUIRE() { mu_.lock(); }
  void unlock() PIMCOMP_RELEASE() { mu_.unlock(); }

 private:
  std::recursive_mutex mu_;
};

/// RAII scoped lock over Mutex (the std::lock_guard / std::unique_lock
/// replacement). unlock()/lock() support the unlock-work-relock pattern;
/// the destructor only releases when still held.
class PIMCOMP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PIMCOMP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

  // The conditional release below is tracked by a runtime bool the static
  // analysis cannot see; the interface annotation is what callers check
  // against.
  ~MutexLock() PIMCOMP_RELEASE() PIMCOMP_NO_THREAD_SAFETY_ANALYSIS {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() PIMCOMP_RELEASE() PIMCOMP_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock();
    held_ = false;
  }

  void lock() PIMCOMP_ACQUIRE() PIMCOMP_NO_THREAD_SAFETY_ANALYSIS {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// RAII scoped lock over RecursiveMutex.
class PIMCOMP_SCOPED_CAPABILITY RecursiveMutexLock {
 public:
  explicit RecursiveMutexLock(RecursiveMutex& mu) PIMCOMP_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock();
  }
  ~RecursiveMutexLock() PIMCOMP_RELEASE() { mu_.unlock(); }

  RecursiveMutexLock(const RecursiveMutexLock&) = delete;
  RecursiveMutexLock& operator=(const RecursiveMutexLock&) = delete;

 private:
  RecursiveMutex& mu_;
};

/// Condition variable over Mutex. wait()/wait_for() take the *mutex* (not
/// the scoped lock), which is what lets the analysis check REQUIRES: the
/// caller must already hold `mu`, typically through a MutexLock in the
/// enclosing scope. There are deliberately no predicate overloads — write
/// the while-loop at the call site so the predicate's guarded reads are
/// checked in a context that holds the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires `mu` before returning.
  void wait(Mutex& mu) PIMCOMP_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() afterwards hands ownership back to the caller's scoped
    // lock without unlocking.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// wait() with a timeout; returns std::cv_status::timeout on expiry. The
  /// mutex is held again on return either way.
  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      PIMCOMP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pimcomp

#endif  // PIMCOMP_COMMON_THREAD_ANNOTATIONS_HPP
