#include "common/logging.hpp"

#include <iostream>

namespace pimcomp {

std::atomic<LogLevel> Logger::level_{LogLevel::kWarn};

void Logger::set_level(LogLevel level) {
  level_.store(level, std::memory_order_relaxed);
}

LogLevel Logger::level() { return level_.load(std::memory_order_relaxed); }

void Logger::log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      static_cast<int>(level_.load(std::memory_order_relaxed))) {
    return;
  }
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "DEBUG"; break;
    case LogLevel::kInfo: tag = "INFO"; break;
    case LogLevel::kWarn: tag = "WARN"; break;
    case LogLevel::kError: tag = "ERROR"; break;
    case LogLevel::kOff: return;
  }
  // Compose the full line first and write it with a single stream insertion:
  // piecewise `<<` from concurrent threads interleaves fragments mid-line.
  std::string line;
  line.reserve(message.size() + 16);
  line.append("[pimcomp ").append(tag).append("] ").append(message).append(
      "\n");
  std::cerr << line;
}

}  // namespace pimcomp
