#include "common/logging.hpp"

#include <iostream>

namespace pimcomp {

LogLevel Logger::level_ = LogLevel::kWarn;

void Logger::set_level(LogLevel level) { level_ = level; }

LogLevel Logger::level() { return level_; }

void Logger::log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "DEBUG"; break;
    case LogLevel::kInfo: tag = "INFO"; break;
    case LogLevel::kWarn: tag = "WARN"; break;
    case LogLevel::kError: tag = "ERROR"; break;
    case LogLevel::kOff: return;
  }
  std::cerr << "[pimcomp " << tag << "] " << message << '\n';
}

}  // namespace pimcomp
