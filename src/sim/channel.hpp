#ifndef PIMCOMP_SIM_CHANNEL_HPP
#define PIMCOMP_SIM_CHANNEL_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <tuple>

#include "common/units.hpp"

namespace pimcomp {

/// Rendezvous channels between cores. Sends are non-blocking (the message is
/// deposited with its arrival timestamp); receives block until a matching
/// message is available. FIFO order per (src, dst, tag) triple — the
/// schedulers guarantee matched emission order per logical channel, which
/// the simulator verifies by checking byte counts.
class ChannelNetwork {
 public:
  struct Message {
    Picoseconds arrival = 0;
    std::int64_t bytes = 0;
  };

  /// Deposits a message on (src -> dst, tag).
  void send(int src, int dst, int tag, Picoseconds arrival,
            std::int64_t bytes);

  /// True when (src -> dst, tag) has a pending message.
  bool has_message(int src, int dst, int tag) const;

  /// Pops the head message of (src -> dst, tag); must be non-empty.
  Message pop(int src, int dst, int tag);

  /// Total messages currently in flight (deadlock diagnostics).
  std::int64_t in_flight() const;

 private:
  std::map<std::tuple<int, int, int>, std::deque<Message>> queues_;
};

}  // namespace pimcomp

#endif  // PIMCOMP_SIM_CHANNEL_HPP
