#include "sim/sim_report.hpp"

#include <sstream>

#include "common/string_util.hpp"

namespace pimcomp {

std::string SimReport::to_string() const {
  std::ostringstream oss;
  oss << "SimReport{\n"
      << "  makespan: " << format_double(to_us(makespan), 3) << " us\n"
      << "  active cores: " << active_cores << "\n"
      << "  mvm ops: " << mvm_ops << ", vfu ops: " << vfu_ops
      << ", messages: " << comm_messages << " ("
      << format_bytes(static_cast<double>(comm_bytes)) << ")\n"
      << "  dynamic energy: " << format_double(to_uj(dynamic_energy.total()), 2)
      << " uJ (mvm " << format_double(to_uj(dynamic_energy.mvm), 2) << ", vfu "
      << format_double(to_uj(dynamic_energy.vfu), 2) << ", local "
      << format_double(to_uj(dynamic_energy.local_memory), 2) << ", global "
      << format_double(to_uj(dynamic_energy.global_memory), 2) << ", noc "
      << format_double(to_uj(dynamic_energy.noc), 2) << ")\n"
      << "  leakage energy: " << format_double(to_uj(leakage_energy), 2)
      << " uJ\n"
      << "  local memory: avg "
      << format_bytes(avg_local_memory_bytes) << ", peak "
      << format_bytes(static_cast<double>(peak_local_memory_bytes)) << "\n"
      << "  global traffic: "
      << format_bytes(static_cast<double>(global_traffic_bytes)) << " (spill "
      << format_bytes(static_cast<double>(spill_traffic_bytes)) << ")\n"
      << "}";
  return oss.str();
}

}  // namespace pimcomp
