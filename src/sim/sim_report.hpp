#ifndef PIMCOMP_SIM_SIM_REPORT_HPP
#define PIMCOMP_SIM_SIM_REPORT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace pimcomp {

/// Dynamic-energy breakdown by component (picojoules).
struct EnergyBreakdown {
  Picojoules mvm = 0.0;
  Picojoules vfu = 0.0;
  Picojoules local_memory = 0.0;
  Picojoules global_memory = 0.0;
  Picojoules noc = 0.0;

  Picojoules total() const {
    return mvm + vfu + local_memory + global_memory + noc;
  }
};

/// Everything the cycle-accurate simulator measures for one compiled
/// dataflow: timing, energy (dynamic + leakage), memory behaviour and
/// utilization. These numbers feed every figure of the evaluation.
struct SimReport {
  // --- Timing -----------------------------------------------------------------
  Picoseconds makespan = 0;            ///< end-to-end finish time
  std::vector<Picoseconds> core_finish;  ///< per-core last-op completion
  std::vector<Picoseconds> core_busy;    ///< per-core busy (non-idle) time

  /// HT interpretation: one inference's worth of work per core, pipelined
  /// across inferences -> throughput = 1 / makespan.
  double throughput_per_sec() const {
    return makespan > 0 ? 1.0 / to_seconds(makespan) : 0.0;
  }

  // --- Energy ------------------------------------------------------------------
  EnergyBreakdown dynamic_energy;
  Picojoules leakage_energy = 0.0;
  Picojoules total_energy() const {
    return dynamic_energy.total() + leakage_energy;
  }

  // --- Memory -------------------------------------------------------------------
  /// Time-weighted average local-memory occupancy, averaged over the cores
  /// that executed work (paper Fig 10 y-axis).
  double avg_local_memory_bytes = 0.0;
  std::int64_t peak_local_memory_bytes = 0;
  std::int64_t global_traffic_bytes = 0;  ///< loads + stores + spills
  std::int64_t spill_traffic_bytes = 0;   ///< overflow component of the above

  // --- Counters -----------------------------------------------------------------
  std::int64_t mvm_ops = 0;
  std::int64_t vfu_ops = 0;
  std::int64_t comm_messages = 0;
  std::int64_t comm_bytes = 0;
  int active_cores = 0;

  /// Multi-line human-readable summary.
  std::string to_string() const;
};

}  // namespace pimcomp

#endif  // PIMCOMP_SIM_SIM_REPORT_HPP
