#include "sim/channel.hpp"

#include "common/error.hpp"

namespace pimcomp {

void ChannelNetwork::send(int src, int dst, int tag, Picoseconds arrival,
                          std::int64_t bytes) {
  queues_[{src, dst, tag}].push_back({arrival, bytes});
}

bool ChannelNetwork::has_message(int src, int dst, int tag) const {
  auto it = queues_.find({src, dst, tag});
  return it != queues_.end() && !it->second.empty();
}

ChannelNetwork::Message ChannelNetwork::pop(int src, int dst, int tag) {
  auto it = queues_.find({src, dst, tag});
  PIMCOMP_ASSERT(it != queues_.end() && !it->second.empty(),
                 "pop on empty channel");
  Message m = it->second.front();
  it->second.pop_front();
  return m;
}

std::int64_t ChannelNetwork::in_flight() const {
  std::int64_t total = 0;
  for (const auto& [key, queue] : queues_) {
    total += static_cast<std::int64_t>(queue.size());
  }
  return total;
}

}  // namespace pimcomp
