#ifndef PIMCOMP_SIM_SIMULATOR_HPP
#define PIMCOMP_SIM_SIMULATOR_HPP

#include "arch/hardware_config.hpp"
#include "mapping/mapper.hpp"
#include "schedule/operation.hpp"
#include "sim/sim_report.hpp"

namespace pimcomp {

/// Knobs of one simulation run.
struct SimOptions {
  /// Max AGs computing simultaneously per core (on-chip bandwidth limit;
  /// the paper's Fig 8 parallelism sweep). Sets the MVM issue interval.
  int parallelism_degree = 20;

  /// Leakage accounting mode. HT: each core leaks over its own busy window
  /// (layers pipeline independently). LL: every active core leaks until the
  /// overall finish, since cross-core data dependencies keep them powered
  /// (paper §V-B2).
  PipelineMode mode = PipelineMode::kHighThroughput;
};

/// The cycle-accurate simulator of the paper's evaluation (§V-A2): executes
/// the compiled operation streams modeling
///  * structural conflicts — an AG's crossbars serve one MVM at a time;
///  * per-core MVM issue bandwidth — consecutive issues are spaced by
///    T_MVM / parallelism;
///  * data dependencies — ops wait on the MVM completions they consume and
///    on rendezvous channel messages;
///  * shared global-memory bandwidth and NoC/HyperTransport transfer time;
///  * on-chip local memory occupancy over time;
///  * dynamic energy per operation and leakage over active time.
///
/// The execution loop sweeps cores round-robin, running each program
/// in order until it blocks on an empty channel; absence of progress with
/// unfinished programs raises SimulationError (deadlock) with diagnostics.
class Simulator {
 public:
  Simulator(const HardwareConfig& hw, const SimOptions& options);

  /// Runs a schedule to completion and returns the measurements.
  SimReport run(const Schedule& schedule) const;

 private:
  HardwareConfig hw_;
  SimOptions options_;
};

}  // namespace pimcomp

#endif  // PIMCOMP_SIM_SIMULATOR_HPP
