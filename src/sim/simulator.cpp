#include "sim/simulator.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <vector>

#include "arch/energy_model.hpp"
#include "arch/noc.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/statistics.hpp"
#include "sim/channel.hpp"

namespace pimcomp {

namespace {

/// Transfer duration of `bytes` at `gbps` (GB/s) in picoseconds.
Picoseconds bandwidth_time(std::int64_t bytes, double gbps) {
  if (bytes <= 0) return 0;
  return static_cast<Picoseconds>(static_cast<double>(bytes) * 1000.0 / gbps);
}

struct CoreState {
  std::size_t pc = 0;
  Picoseconds clock = 0;        ///< completion of the last in-order op
  Picoseconds issue_clock = 0;  ///< next MVM issue slot
  Picoseconds last_event = 0;   ///< latest completion incl. MVM drains
  Picoseconds busy = 0;
  TimeWeightedAverage usage;
  Picoseconds last_usage_time = 0;
  bool started = false;
};

}  // namespace

Simulator::Simulator(const HardwareConfig& hw, const SimOptions& options)
    : hw_(hw), options_(options) {
  hw_.validate();
  PIMCOMP_CHECK(options.parallelism_degree >= 1,
                "parallelism degree must be >= 1");
}

SimReport Simulator::run(const Schedule& schedule) const {
  const int cores = schedule.core_count();
  PIMCOMP_CHECK(cores > 0, "schedule has no cores");
  PIMCOMP_CHECK(cores <= hw_.core_count,
                "schedule uses more cores than the hardware has");

  const EnergyModel energy(hw_);
  const NocModel noc(hw_);
  const Picoseconds t_mvm = hw_.mvm_latency;
  const Picoseconds t_issue = hw_.mvm_issue_interval(options_.parallelism_degree);
  const std::int64_t act_bytes = hw_.activation_bits / 8;

  std::vector<CoreState> cs(static_cast<std::size_t>(cores));
  std::vector<Picoseconds> ag_done(static_cast<std::size_t>(schedule.ag_count),
                                   0);
  ChannelNetwork channels;
  Picoseconds gmem_free = 0;

  SimReport report;

  auto record_usage = [&](CoreState& core, Picoseconds t,
                          std::int64_t usage) {
    const Picoseconds at = std::max(t, core.last_usage_time);
    core.usage.record(at, static_cast<double>(usage));
    core.last_usage_time = at;
  };

  auto execute = [&](int c, const Operation& op) {
    CoreState& core = cs[static_cast<std::size_t>(c)];
    const Picoseconds dep =
        (op.kind != OpKind::kMvm && op.ag >= 0)
            ? ag_done[static_cast<std::size_t>(op.ag)]
            : 0;
    Picoseconds effect_time = 0;

    switch (op.kind) {
      case OpKind::kMvm: {
        PIMCOMP_ASSERT(op.ag >= 0 && op.ag < schedule.ag_count,
                       "MVM references an unknown AG");
        Picoseconds start = std::max(core.issue_clock, core.clock);
        start = std::max(start, ag_done[static_cast<std::size_t>(op.ag)]);
        core.issue_clock = start + t_issue;
        ag_done[static_cast<std::size_t>(op.ag)] = start + t_mvm;
        core.last_event = std::max(core.last_event, start + t_mvm);
        core.busy += t_issue;
        report.dynamic_energy.mvm += energy.mvm_energy_per_xbar() * op.xbars;
        ++report.mvm_ops;
        effect_time = start;
        break;
      }
      case OpKind::kVfu: {
        const Picoseconds start = std::max(core.clock, dep);
        const double ns = static_cast<double>(op.elements) / hw_.vfu_ops_per_ns;
        const Picoseconds dur = from_ns(ns);
        core.clock = start + dur;
        core.last_event = std::max(core.last_event, core.clock);
        core.busy += dur;
        report.dynamic_energy.vfu +=
            energy.vfu_energy_per_element() * static_cast<double>(op.elements);
        report.dynamic_energy.local_memory +=
            energy.local_mem_energy_per_byte() *
            static_cast<double>(2 * op.elements * act_bytes);
        ++report.vfu_ops;
        effect_time = core.clock;
        break;
      }
      case OpKind::kLoadGlobal:
      case OpKind::kStoreGlobal: {
        Picoseconds start = std::max(core.clock, dep);
        start = std::max(start, gmem_free);
        const Picoseconds dur = bandwidth_time(op.bytes, hw_.global_memory_gbps);
        gmem_free = start + dur;
        core.clock = start + dur;
        core.last_event = std::max(core.last_event, core.clock);
        core.busy += dur;
        report.dynamic_energy.global_memory +=
            energy.global_mem_energy_per_byte() * static_cast<double>(op.bytes);
        report.dynamic_energy.local_memory +=
            energy.local_mem_energy_per_byte() * static_cast<double>(op.bytes);
        report.global_traffic_bytes += op.bytes;
        effect_time = core.clock;
        break;
      }
      case OpKind::kCommSend: {
        const Picoseconds start = std::max(core.clock, dep);
        const Picoseconds inject = bandwidth_time(op.bytes, hw_.local_memory_gbps);
        core.clock = start + inject;
        core.busy += inject;
        const Picoseconds arrival =
            core.clock + noc.transfer_latency(c, op.peer, op.bytes);
        channels.send(c, op.peer, op.tag, arrival, op.bytes);
        core.last_event = std::max(core.last_event, core.clock);
        report.dynamic_energy.noc +=
            energy.noc_energy_per_flit_hop() *
            static_cast<double>(noc.flits(op.bytes) *
                                std::max(1, noc.hops(c, op.peer)));
        if (noc.crosses_chip(c, op.peer)) {
          report.dynamic_energy.noc +=
              energy.ht_energy_per_byte() * static_cast<double>(op.bytes);
        }
        report.dynamic_energy.local_memory +=
            energy.local_mem_energy_per_byte() * static_cast<double>(op.bytes);
        ++report.comm_messages;
        report.comm_bytes += op.bytes;
        effect_time = core.clock;
        break;
      }
      case OpKind::kCommRecv: {
        const ChannelNetwork::Message msg = channels.pop(op.peer, c, op.tag);
        if (msg.bytes != op.bytes) {
          std::ostringstream oss;
          oss << "channel byte mismatch on " << op.peer << "->" << c
              << ": sent " << msg.bytes << ", receiver expected " << op.bytes;
          throw SimulationError(oss.str());
        }
        Picoseconds start = std::max(core.clock, msg.arrival);
        start = std::max(start, dep);
        const Picoseconds dur = bandwidth_time(op.bytes, hw_.local_memory_gbps);
        core.clock = start + dur;
        core.last_event = std::max(core.last_event, core.clock);
        core.busy += dur;
        report.dynamic_energy.local_memory +=
            energy.local_mem_energy_per_byte() * static_cast<double>(op.bytes);
        effect_time = core.clock;
        break;
      }
    }

    if (op.local_usage >= 0) {
      record_usage(core, effect_time, op.local_usage);
    }
  };

  // Globally time-ordered execution: always advance the core whose next
  // operation can start earliest. This keeps shared-resource arbitration
  // (the global-memory bandwidth server) causal — a core that was blocked
  // on a late message cannot steal bandwidth slots from logically-earlier
  // accesses. Cores blocked on empty channels park until a matching send
  // executes.
  auto next_ready = [&](int c) -> Picoseconds {
    const CoreState& core = cs[static_cast<std::size_t>(c)];
    const auto& program = schedule.programs[static_cast<std::size_t>(c)];
    PIMCOMP_ASSERT(core.pc < program.size(), "next_ready past program end");
    const Operation& op = program[core.pc];
    const Picoseconds dep =
        (op.kind != OpKind::kMvm && op.ag >= 0)
            ? ag_done[static_cast<std::size_t>(op.ag)]
            : 0;
    switch (op.kind) {
      case OpKind::kMvm:
        return std::max({core.issue_clock, core.clock,
                         ag_done[static_cast<std::size_t>(op.ag)]});
      case OpKind::kCommRecv:
        // Caller guarantees a message is queued.
        return std::max(core.clock, dep);
      default:
        return std::max(core.clock, dep);
    }
  };

  // Min-heap of (ready time, core); parked cores wait for channel arrivals.
  std::priority_queue<std::pair<Picoseconds, int>,
                      std::vector<std::pair<Picoseconds, int>>,
                      std::greater<>>
      ready_queue;
  std::vector<bool> parked(static_cast<std::size_t>(cores), false);
  std::vector<bool> queued(static_cast<std::size_t>(cores), false);

  auto enqueue = [&](int c) {
    const CoreState& core = cs[static_cast<std::size_t>(c)];
    const auto& program = schedule.programs[static_cast<std::size_t>(c)];
    if (core.pc >= program.size()) return;
    const Operation& op = program[core.pc];
    if (op.kind == OpKind::kCommRecv &&
        !channels.has_message(op.peer, c, op.tag)) {
      parked[static_cast<std::size_t>(c)] = true;
      return;
    }
    parked[static_cast<std::size_t>(c)] = false;
    if (!queued[static_cast<std::size_t>(c)]) {
      ready_queue.push({next_ready(c), c});
      queued[static_cast<std::size_t>(c)] = true;
    }
  };

  for (int c = 0; c < cores; ++c) enqueue(c);

  while (!ready_queue.empty()) {
    const auto [key, c] = ready_queue.top();
    ready_queue.pop();
    queued[static_cast<std::size_t>(c)] = false;
    CoreState& core = cs[static_cast<std::size_t>(c)];
    const auto& program = schedule.programs[static_cast<std::size_t>(c)];
    if (core.pc >= program.size()) continue;
    const Operation& op = program[core.pc];
    execute(c, op);
    ++core.pc;
    if (op.kind == OpKind::kCommSend && parked[static_cast<std::size_t>(op.peer)]) {
      enqueue(op.peer);
    }
    enqueue(c);
  }

  for (int c = 0; c < cores; ++c) {
    const CoreState& core = cs[static_cast<std::size_t>(c)];
    const auto& program = schedule.programs[static_cast<std::size_t>(c)];
    if (core.pc < program.size()) {
      const Operation& op = program[core.pc];
      std::ostringstream oss;
      oss << "deadlock: core " << c << " blocked at op " << core.pc << "/"
          << program.size() << " (" << to_string(op.kind) << " from core "
          << op.peer << ", node " << op.node << "); " << channels.in_flight()
          << " messages in flight";
      throw SimulationError(oss.str());
    }
  }

  // --- Aggregate ---------------------------------------------------------------
  report.core_finish.resize(static_cast<std::size_t>(cores), 0);
  report.core_busy.resize(static_cast<std::size_t>(cores), 0);
  double usage_sum = 0.0;
  for (int c = 0; c < cores; ++c) {
    CoreState& core = cs[static_cast<std::size_t>(c)];
    const bool active = !schedule.programs[static_cast<std::size_t>(c)].empty();
    report.core_finish[static_cast<std::size_t>(c)] = core.last_event;
    report.core_busy[static_cast<std::size_t>(c)] = core.busy;
    report.makespan = std::max(report.makespan, core.last_event);
    if (active) {
      ++report.active_cores;
      usage_sum += core.usage.finish(core.last_event);
      report.peak_local_memory_bytes =
          std::max(report.peak_local_memory_bytes,
                   static_cast<std::int64_t>(core.usage.peak()));
    }
  }
  if (report.active_cores > 0) {
    report.avg_local_memory_bytes = usage_sum / report.active_cores;
  }

  // Spill traffic estimated by the schedule-time memory planner.
  for (std::int64_t spill : schedule.spill_bytes) {
    report.spill_traffic_bytes += spill;
  }
  report.global_traffic_bytes += report.spill_traffic_bytes;

  // Leakage: HT cores leak over their own busy window (independent pipeline
  // stages); LL cores stay powered until the inference completes.
  Picojoules leakage = 0.0;
  for (int c = 0; c < cores; ++c) {
    if (schedule.programs[static_cast<std::size_t>(c)].empty()) continue;
    const Picoseconds active_time =
        options_.mode == PipelineMode::kHighThroughput
            ? report.core_finish[static_cast<std::size_t>(c)]
            : report.makespan;
    leakage += energy.core_leakage_energy(1, active_time);
  }
  leakage += energy.chip_leakage_energy(hw_.chip_count(), report.makespan);
  report.leakage_energy = leakage;

  return report;
}

}  // namespace pimcomp
