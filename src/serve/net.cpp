#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.hpp"

namespace pimcomp::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw ServeError(what + ": " + std::strerror(errno));
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw ServeError("unix socket path must be 1.." +
                     std::to_string(sizeof(addr.sun_path) - 1) +
                     " bytes, got '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (port < 0 || port > 65535) {
    throw ServeError("tcp port out of range: " + std::to_string(port));
  }
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw ServeError("bad IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::set_send_timeout(int seconds) {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void Socket::set_recv_timeout(int seconds) {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

Socket listen_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  Socket socket(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!socket.valid()) throw_errno("socket(AF_UNIX)");
  struct stat st {};
  if (::lstat(path.c_str(), &st) == 0) {
    // Something already exists at the path. Only a socket is ours to
    // reclaim — a mistyped --unix pointing at a regular file must not cost
    // the user that file.
    if (!S_ISSOCK(st.st_mode)) {
      throw ServeError("'" + path +
                       "' exists and is not a socket; refusing to replace it");
    }
    // Only remove the socket if nothing answers a connect probe (a daemon
    // that died uncleanly): unlinking a *live* daemon's endpoint would
    // silently steal its address.
    bool live = false;
    try {
      Socket probe = connect_unix(path);
      live = true;
    } catch (const ServeError&) {
    }
    if (live) {
      throw ServeError("'" + path +
                       "' already has a listening daemon; stop it first or "
                       "pick another socket path");
    }
    ::unlink(path.c_str());
  }
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind('" + path + "')");
  }
  if (::listen(socket.fd(), SOMAXCONN) != 0) throw_errno("listen");
  return socket;
}

Socket listen_tcp(const std::string& host, int port, int* bound_port) {
  sockaddr_in addr = tcp_address(host, port);
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(socket.fd(), SOMAXCONN) != 0) throw_errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&actual),
                      &len) != 0) {
      throw_errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return socket;
}

Socket connect_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  Socket socket(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!socket.valid()) throw_errno("socket(AF_UNIX)");
  if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect('" + path + "')");
  }
  return socket;
}

Socket connect_tcp(const std::string& host, int port) {
  const sockaddr_in addr = tcp_address(host, port);
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) throw_errno("socket(AF_INET)");
  if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return socket;
}

Socket connect_endpoint(const std::string& endpoint) {
  constexpr const char kUnixPrefix[] = "unix:";
  if (endpoint.rfind(kUnixPrefix, 0) == 0) {
    return connect_unix(endpoint.substr(sizeof(kUnixPrefix) - 1));
  }
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    throw ServeError("endpoint must be 'unix:PATH' or 'HOST:PORT', got '" +
                     endpoint + "'");
  }
  const std::string host =
      colon == 0 ? std::string("127.0.0.1") : endpoint.substr(0, colon);
  const std::optional<long long> port =
      parse_decimal(endpoint.substr(colon + 1));
  if (!port.has_value() || *port <= 0 || *port > 65535) {
    throw ServeError("bad port in endpoint '" + endpoint + "'");
  }
  return connect_tcp(host, static_cast<int>(*port));
}

bool constant_time_equal(const std::string& a, const std::string& b) {
  // Fold the length mismatch into the accumulator instead of returning
  // early, and always walk max(len) bytes: the loop's duration leaks only
  // lengths, which the attacker already controls.
  unsigned char diff = a.size() == b.size() ? 0 : 1;
  const std::size_t steps = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < steps; ++i) {
    const unsigned char ca = i < a.size() ? static_cast<unsigned char>(a[i]) : 0;
    const unsigned char cb = i < b.size() ? static_cast<unsigned char>(b[i]) : 0;
    diff = static_cast<unsigned char>(diff | (ca ^ cb));
  }
  return diff == 0;
}

std::optional<Socket> accept_connection(const Socket& listener,
                                        const std::atomic<bool>* stop) {
  while (stop == nullptr || !stop->load()) {
    pollfd pfd{listener.fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll(listener)");
    }
    if (ready == 0) continue;  // timeout: re-check the stop flag
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
      return std::nullopt;  // listener shut down underneath us
    }
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EINVAL || errno == EBADF) return std::nullopt;  // shut down
    throw_errno("accept");
  }
  return std::nullopt;
}

std::optional<std::string> LineChannel::take_line() {
  const std::size_t newline = buffer_.find('\n');
  if (newline == std::string::npos) {
    if (buffer_.size() > kMaxLineBytes) {
      throw ServeError("frame exceeds " + std::to_string(kMaxLineBytes) +
                       " bytes without a newline");
    }
    return std::nullopt;
  }
  std::string line = buffer_.substr(0, newline);
  buffer_.erase(0, newline + 1);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

bool LineChannel::fill_from_socket() {
  char chunk[16384];
  for (;;) {
    // MSG_DONTWAIT keeps a multiplexed reader honest: even if poll(2) woke
    // us spuriously, the recv returns EAGAIN instead of parking the reader
    // thread on one connection.
    const ssize_t n =
        ::recv(socket_.fd(), chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      if (buffer_.size() > kMaxLineBytes && buffer_.find('\n') == std::string::npos) {
        throw ServeError("frame exceeds " + std::to_string(kMaxLineBytes) +
                         " bytes without a newline");
      }
      return true;
    }
    if (n == 0) {
      // Clean EOF. A partial trailing line without '\n' is dropped: the
      // peer died mid-frame and the fragment is unparseable anyway.
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // no data yet
    throw_errno("recv");
  }
}

std::optional<std::string> LineChannel::read_line() {
  for (;;) {
    if (std::optional<std::string> line = take_line()) return line;
    char chunk[16384];
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      // Clean EOF (see fill_from_socket on partial trailing lines).
      return std::nullopt;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO expired: the server went quiet past the caller's
      // deadline (`--timeout`), which must read as a request failure, not
      // a generic socket error.
      throw ServeError("receive timed out: no server frame arrived in time");
    }
    throw_errno("recv");
  }
}

void LineChannel::write_line(const std::string& line) {
  MutexLock lock(write_mutex_);
  write_locked(line);
}

void LineChannel::write_locked(const std::string& line) {
  std::string frame = line;
  frame.push_back('\n');
  const char* data = frame.data();
  std::size_t remaining = frame.size();
  while (remaining > 0) {
    // MSG_NOSIGNAL: a disconnected peer yields EPIPE instead of killing the
    // process with SIGPIPE.
    const ssize_t n = ::send(socket_.fd(), data, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the peer has stopped reading.
        throw ServeError("send timed out: peer is not reading");
      }
      throw_errno("send");
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
}

}  // namespace pimcomp::serve
