#ifndef PIMCOMP_SERVE_SERVER_HPP
#define PIMCOMP_SERVE_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/session.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace pimcomp::serve {

/// Where and how `pimcompd` listens. Exactly one transport is active: a
/// non-empty `unix_path` selects a Unix-domain socket, otherwise `host:port`
/// TCP (port 0 picks an ephemeral port, readable back via
/// CompileServer::port()).
struct ServerOptions {
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;

  /// Resident worker threads per CompilerSession: how many of one session's
  /// jobs compile concurrently (CompilerSession::set_jobs; 0 = one per
  /// hardware thread).
  int jobs = 1;

  /// Reader threads multiplexing all connections via poll(2). Each
  /// connection is pinned to one reader; 2 is plenty, because readers only
  /// parse requests and submit jobs — compilation happens on the sessions'
  /// workers.
  int readers = 2;

  /// Bound on concurrently cached sessions (distinct (graph, hardware)
  /// identities). Oldest-created sessions are evicted first; in-flight
  /// requests keep evicted sessions alive until they finish.
  std::size_t max_sessions = 8;

  /// Outbound stall bound: a peer with queued frames that accepts no bytes
  /// for this long is declared gone — its connection drops and its
  /// remaining jobs are cancelled. (All socket writes are non-blocking and
  /// performed by the reader pool, so a stalled peer never blocks a
  /// session worker for even a moment.)
  int send_timeout_seconds = 30;

  /// Persistent mapping-artifact cache shared by every session this daemon
  /// creates (`--cache-dir`). With a directory set, a restarted daemon
  /// serves previously compiled configurations from disk (`cache_hit`
  /// frames with source "disk") instead of re-running the GA; several
  /// daemons may point at one directory (writes are atomic renames). Its
  /// `peers` list (`--peer`, repeatable) additionally wires every session's
  /// remote tier *and* lets this daemon answer other daemons' cache_get /
  /// cache_put requests from its own disk tier.
  CacheConfig cache;

  /// Shared secret (`--auth-token`): when non-empty, every request frame
  /// must carry a matching "auth" key (compared constant-time) or it is
  /// rejected with an error frame. The same token is attached to this
  /// daemon's own outgoing peer requests, so one fleet shares one token.
  std::string auth_token;
};

/// Resolved identity of one compile request: the built graph, the resolved
/// hardware, and the (graph, hardware) fingerprint the request caches —
/// and, in a fleet, shards — under.
struct ResolvedRequest {
  Graph graph;
  HardwareConfig hardware;
  std::uint64_t fingerprint = 0;
};

/// The one definition of how a wire request maps to a compile identity:
/// builds the graph (zoo model or inline JSON), resolves the hardware
/// (request overrides on the PUMA default, with core-count auto-fit only
/// when the client pinned cores nowhere), and fingerprints the pair with
/// the session's own combinator. Shared by the daemon's session registry
/// and the router's sharding so the two can never disagree about which
/// backend owns a request. Throws on unknown models / bad hardware.
ResolvedRequest resolve_compile_request(const CompileRequest& request);

/// The compile-server daemon core: accepts connections, reads
/// newline-delimited JSON requests, and serves each through a shared
/// long-lived CompilerSession keyed by (graph fingerprint, hardware
/// fingerprint) — so two clients compiling the same model reuse one
/// another's partitioned workloads and mapping results, observed as
/// `cache_hit` events on the wire.
///
/// Concurrency model (PR 4): a small fixed reader pool multiplexes every
/// connection via poll(2); each wire scenario becomes a CompileJob on the
/// session's shared priority queue (CompilerSession::submit), its
/// completion callback streams the outcome frame, and per-job tags route
/// the merged observer event stream back to exactly the request that owns
/// each job. There is no thread per connection and no per-session FIFO
/// turn: requests from many clients interleave at job granularity on the
/// session's resident workers. A client that disconnects — or stops
/// reading past the send timeout — has its own jobs cancelled
/// (cooperatively, mid-GA included) without touching anyone else's.
class CompileServer {
 public:
  explicit CompileServer(ServerOptions options);

  /// stop()s if still running.
  ~CompileServer();

  CompileServer(const CompileServer&) = delete;
  CompileServer& operator=(const CompileServer&) = delete;

  /// Binds the socket and spawns the accept thread plus the reader pool.
  /// Throws ServeError when the endpoint cannot be bound.
  void start();

  /// Graceful shutdown: stops accepting, unblocks the readers, cancels
  /// every outstanding job, waits for the sessions' workers to go idle,
  /// joins all threads, and removes the Unix socket file. Idempotent.
  void stop();

  /// Blocks until stop() is called from another thread (or a signal
  /// handler's thread via the helpers below).
  void wait();

  bool running() const { return running_; }

  /// Actually bound TCP port (resolves port 0), 0 for Unix transport.
  int port() const { return bound_port_; }

  /// Human-readable endpoint ("unix:/run/pimcompd.sock", "127.0.0.1:7878"),
  /// in the form CompileClient::connect() accepts.
  std::string endpoint() const;

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t connections_accepted() const { return connections_accepted_; }
  /// Jobs cancelled because their client disconnected or stopped reading.
  std::uint64_t jobs_cancelled() const { return jobs_cancelled_; }
  std::size_t session_count() const;

 private:
  struct Connection;
  struct RequestState;
  struct SessionEntry;
  struct Reader;

  /// Routes tagged observer events of one shared session back to the
  /// connection whose request owns each job. Installed as the session's
  /// observer once, at SessionEntry creation; events are best-effort
  /// (advisory frames past the outbound budget are dropped) so a slow
  /// reader can never stall the pipeline.
  class JobRouter final : public PipelineObserver {
   public:
    /// `protocol_version` is the requester's declared version: pre-v3
    /// parsers reject the `cache_store` event kind, so those frames are
    /// filtered per route instead of sent.
    void add(std::uint64_t tag, std::weak_ptr<Connection> connection,
             std::int64_t request_id, int protocol_version);
    void remove(std::uint64_t tag);

    void on_stage_begin(const StageInfo& info) override;
    void on_stage_end(const StageInfo& info) override;
    void on_cache_hit(const CacheEvent& event) override;
    void on_cache_store(const CacheEvent& event) override;

   private:
    struct Route {
      std::weak_ptr<Connection> connection;
      std::int64_t request_id = 0;
      int protocol_version = 0;
    };
    void route(const PipelineEvent& event);

    Mutex mutex_;
    std::unordered_map<std::uint64_t, Route> routes_
        PIMCOMP_GUARDED_BY(mutex_);
  };

  void accept_loop();
  void reader_loop(Reader& reader);
  static void wake_reader(Reader& reader);

  /// Serializes `json` onto the connection's outbound queue (the pinned
  /// reader pumps it with non-blocking sends). Advisory frames (progress
  /// events) are dropped when the queue is already deep; mandatory frames
  /// past the hard cap mark the connection broken. Never blocks, never
  /// throws.
  static void enqueue_frame(Connection& connection, const Json& json,
                            bool advisory);
  /// Drains as much outbound as the socket accepts right now (reader
  /// thread only); send errors mark the connection broken.
  static void pump_outbound(Connection& connection);
  /// True when queued output has made no progress past the stall bound.
  bool outbound_stalled(Connection& connection) const;

  /// Parses and answers one request line (replies go through the outbound
  /// queue, so this never blocks on the peer).
  void dispatch_line(const std::shared_ptr<Connection>& connection,
                     const std::string& line);
  void handle_compile(const std::shared_ptr<Connection>& connection,
                      const Json& json);

  /// Fleet requests (v5). cache_get/cache_put answer from this daemon's own
  /// disk tier ONLY — a daemon never forwards a lookup to its peers, which
  /// keeps fleet cache traffic one hop and loop-free by construction.
  void handle_cache_get(const std::shared_ptr<Connection>& connection,
                        const Json& json);
  void handle_cache_put(const std::shared_ptr<Connection>& connection,
                        const Json& json);
  void handle_stats(const std::shared_ptr<Connection>& connection,
                    const Json& json);
  /// The stats payload: daemon counters plus per-tier cache counters
  /// aggregated across every live and retired session.
  Json stats_payload() const;

  /// Job-completion fan-in (runs on session workers): converts the outcome
  /// to a wire frame (simulating if requested) and streams every frame
  /// that is ready in enqueue order.
  void on_job_complete(const std::shared_ptr<RequestState>& request,
                       std::uint64_t tag, const ScenarioOutcome& outcome);
  void flush_outcomes(const std::shared_ptr<RequestState>& request);

  /// Cancels a request's still-outstanding jobs (counted in
  /// jobs_cancelled_) — the isolation primitive behind "a dead client
  /// cancels only its own work".
  void cancel_request_jobs(const std::shared_ptr<RequestState>& request);

  /// Declares a connection dead: marks it broken, shuts the socket down,
  /// and cancels the jobs of every request it still owns.
  void disconnect(const std::shared_ptr<Connection>& connection);

  /// Returns the shared session for (graph, hw), creating (and possibly
  /// retiring) under the registry lock. `graph` is consumed on the create
  /// path only.
  std::shared_ptr<SessionEntry> resolve_session(Graph&& graph,
                                                const HardwareConfig& hw);
  /// Destroys retired sessions nobody references anymore. Keeps session
  /// destruction off the sessions' own workers.
  void prune_retired_locked() PIMCOMP_REQUIRES(session_mutex_);

  ServerOptions options_;
  /// Daemon-level disk store answering peer cache_get/cache_put requests
  /// (nullptr without --cache-dir: peers get found=false/stored=false).
  /// Separate from the sessions' own disk tiers only in object identity —
  /// it reads and writes the same directory.
  std::unique_ptr<DiskStore> peer_store_;
  // listener_, bound_port_, readers_ are deliberately unannotated: they are
  // written only inside start() (before any thread that reads them exists)
  // and torn down only by the single winning stopper of stop() — the
  // stop_requested_ latch below serializes stoppers, so no mutex guards
  // these between start and that stopper.
  Socket listener_;
  int bound_port_ = 0;
  Thread accept_thread_;

  std::atomic<bool> running_{false};
  std::atomic<bool> accept_stop_{false};
  std::atomic<bool> reader_stop_{false};
  bool stop_requested_ PIMCOMP_GUARDED_BY(lifecycle_mutex_) = false;
  mutable Mutex lifecycle_mutex_;
  CondVar stopped_;

  std::vector<std::unique_ptr<Reader>> readers_;
  std::size_t next_reader_ = 0;  // accept-thread only: round-robin pinning

  // Every live connection, so stop() can shut them all down.
  std::vector<std::weak_ptr<Connection>> connections_
      PIMCOMP_GUARDED_BY(conn_mutex_);
  Mutex conn_mutex_;

  // Session registry: fingerprint -> shared session, plus creation order
  // for FIFO eviction. Evicted entries move to retired_ until their last
  // outstanding job finishes (see prune_retired_locked).
  std::unordered_map<std::uint64_t, std::shared_ptr<SessionEntry>> sessions_
      PIMCOMP_GUARDED_BY(session_mutex_);
  std::deque<std::uint64_t> session_order_ PIMCOMP_GUARDED_BY(session_mutex_);
  std::vector<std::shared_ptr<SessionEntry>> retired_
      PIMCOMP_GUARDED_BY(session_mutex_);
  mutable Mutex session_mutex_;

  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> jobs_cancelled_{0};
};

/// Signal plumbing for daemon mains (pimcompd, `pimcomp_cli serve`): call
/// block_shutdown_signals() *before* CompileServer::start() (threads inherit
/// the mask, so SIGINT/SIGTERM can only be consumed by
/// wait_for_shutdown_signal()), then wait and stop():
///
///   block_shutdown_signals();
///   server.start();
///   int sig = wait_for_shutdown_signal();  // blocks in sigwait
///   server.stop();
void block_shutdown_signals();
int wait_for_shutdown_signal();

/// The one definition of the `--jobs` flag rule every frontend (pimcompd,
/// `pimcomp_cli serve`/`submit`, local batches) shares: a positive worker
/// count or the literal "auto" (returned as 0 = one per hardware thread).
/// Throws ServeError for 0 — with a pointer at "auto" — negatives, and
/// garbage, so the two daemon binaries can never drift apart on spelling.
int parse_jobs_flag(const std::string& value);

/// The complete daemon frontend shared by `pimcompd` and
/// `pimcomp_cli serve` — one flag grammar, one lifecycle, two binaries that
/// cannot drift. Parses `--unix PATH | --port N [--host ADDR]`,
/// `[--jobs N|auto] [--readers N] [--max-sessions N] [--cache-dir PATH]
/// [--peer ENDPOINT]... [--auth-token TOKEN]`
/// from argv (NOT
/// including the program/subcommand name), masks SIGINT/SIGTERM, starts a
/// CompileServer, prints "<program> listening on <endpoint>" on stdout,
/// blocks until a shutdown signal, and stops gracefully. Returns the
/// process exit code (2 = bad usage; errors print to stderr prefixed with
/// `program`).
int run_daemon(int argc, char** argv, const std::string& program);

}  // namespace pimcomp::serve

#endif  // PIMCOMP_SERVE_SERVER_HPP
