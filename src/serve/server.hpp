#ifndef PIMCOMP_SERVE_SERVER_HPP
#define PIMCOMP_SERVE_SERVER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/session.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace pimcomp::serve {

/// Where and how `pimcompd` listens. Exactly one transport is active: a
/// non-empty `unix_path` selects a Unix-domain socket, otherwise `host:port`
/// TCP (port 0 picks an ephemeral port, readable back via
/// CompileServer::port()).
struct ServerOptions {
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;

  /// Worker threads each CompilerSession fans a scenario batch over
  /// (CompilerSession::set_jobs: 0 = one per hardware thread).
  int jobs = 1;

  /// Bound on concurrently cached sessions (distinct (graph, hardware)
  /// identities). Oldest-created sessions are evicted first; in-flight
  /// requests keep evicted sessions alive until they finish.
  std::size_t max_sessions = 8;
};

/// The compile-server daemon core: accepts connections, reads
/// newline-delimited JSON requests, and serves each through a shared
/// long-lived CompilerSession keyed by (graph fingerprint, hardware
/// fingerprint) — so two clients compiling the same model reuse one
/// another's partitioned workloads and mapping results, observed as
/// `cache_hit` events on the wire.
///
/// Concurrency model: one handler thread per connection; requests that
/// resolve to the same session are served in arrival order (a per-session
/// FIFO queue), which is what makes observer events attributable to exactly
/// one request; requests for different sessions run fully in parallel, and
/// a single request's scenario batch additionally fans out over
/// `options.jobs` workers inside its session.
class CompileServer {
 public:
  explicit CompileServer(ServerOptions options);

  /// stop()s if still running.
  ~CompileServer();

  CompileServer(const CompileServer&) = delete;
  CompileServer& operator=(const CompileServer&) = delete;

  /// Binds the socket and spawns the accept thread. Throws ServeError when
  /// the endpoint cannot be bound.
  void start();

  /// Graceful shutdown: stops accepting, unblocks every connection (their
  /// in-flight compilations finish and their final messages are attempted),
  /// joins all threads, and removes the Unix socket file. Idempotent.
  void stop();

  /// Blocks until stop() is called from another thread (or a signal
  /// handler's thread via the helpers below).
  void wait();

  bool running() const { return running_; }

  /// Actually bound TCP port (resolves port 0), 0 for Unix transport.
  int port() const { return bound_port_; }

  /// Human-readable endpoint ("unix:/run/pimcompd.sock", "127.0.0.1:7878"),
  /// in the form CompileClient::connect() accepts.
  std::string endpoint() const;

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t connections_accepted() const { return connections_accepted_; }
  std::size_t session_count() const;

 private:
  /// One shared CompilerSession plus the FIFO ticket lock serializing the
  /// requests routed to it (std::mutex makes no fairness promise; tickets
  /// do, and the order requests join the queue is the order clients see
  /// their batches served).
  struct SessionEntry {
    SessionEntry(Graph graph, HardwareConfig hw)
        : session(std::move(graph), hw) {}

    CompilerSession session;
    std::mutex mutex;
    std::condition_variable turn;
    std::uint64_t next_ticket = 0;
    std::uint64_t serving = 0;

    struct Turn {
      explicit Turn(SessionEntry& entry);
      ~Turn();
      SessionEntry& entry;
    };
  };

  void accept_loop();
  void handle_connection(std::shared_ptr<LineChannel> channel);
  void handle_compile(LineChannel& channel, const Json& json);

  /// Joins handler threads that announced completion (conn_mutex_ held).
  void reap_finished_locked();

  /// Returns the shared session for (graph, hw), creating (and possibly
  /// evicting) under the registry lock. `graph` is consumed on the create
  /// path only.
  std::shared_ptr<SessionEntry> resolve_session(Graph&& graph,
                                                const HardwareConfig& hw);

  ServerOptions options_;
  Socket listener_;
  int bound_port_ = 0;
  std::thread accept_thread_;

  std::atomic<bool> running_{false};
  std::atomic<bool> accept_stop_{false};
  bool stop_requested_ = false;  // guarded by lifecycle_mutex_
  mutable std::mutex lifecycle_mutex_;
  std::condition_variable stopped_;

  // Connection bookkeeping so stop() can unblock handler threads stuck in
  // read_line() and join them, and so a long-lived daemon reaps finished
  // handler threads instead of accumulating them.
  std::vector<std::thread> connection_threads_;   // guarded by conn_mutex_
  std::vector<std::thread::id> finished_ids_;     // same guard
  std::vector<std::weak_ptr<LineChannel>> live_channels_;  // same guard
  std::mutex conn_mutex_;

  // Session registry: fingerprint -> shared session, plus creation order
  // for FIFO eviction.
  std::unordered_map<std::uint64_t, std::shared_ptr<SessionEntry>> sessions_;
  std::deque<std::uint64_t> session_order_;
  mutable std::mutex session_mutex_;

  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
};

/// Signal plumbing for daemon mains (pimcompd, `pimcomp_cli serve`): call
/// block_shutdown_signals() *before* CompileServer::start() (threads inherit
/// the mask, so SIGINT/SIGTERM can only be consumed by
/// wait_for_shutdown_signal()), then wait and stop():
///
///   block_shutdown_signals();
///   server.start();
///   int sig = wait_for_shutdown_signal();  // blocks in sigwait
///   server.stop();
void block_shutdown_signals();
int wait_for_shutdown_signal();

/// The one definition of the `--jobs` flag rule every frontend (pimcompd,
/// `pimcomp_cli serve`/`submit`, local batches) shares: a positive worker
/// count or the literal "auto" (returned as 0 = one per hardware thread).
/// Throws ServeError for 0 — with a pointer at "auto" — negatives, and
/// garbage, so the two daemon binaries can never drift apart on spelling.
int parse_jobs_flag(const std::string& value);

/// The complete daemon frontend shared by `pimcompd` and
/// `pimcomp_cli serve` — one flag grammar, one lifecycle, two binaries that
/// cannot drift. Parses `--unix PATH | --port N [--host ADDR]`,
/// `[--jobs N|auto] [--max-sessions N]` from argv (NOT including the
/// program/subcommand name), masks SIGINT/SIGTERM, starts a CompileServer,
/// prints "<program> listening on <endpoint>" on stdout, blocks until a
/// shutdown signal, and stops gracefully. Returns the process exit code
/// (2 = bad usage; errors print to stderr prefixed with `program`).
int run_daemon(int argc, char** argv, const std::string& program);

}  // namespace pimcomp::serve

#endif  // PIMCOMP_SERVE_SERVER_HPP
