#ifndef PIMCOMP_SERVE_CLIENT_HPP
#define PIMCOMP_SERVE_CLIENT_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace pimcomp::serve {

/// Everything one submit() call brought back, in wire order.
struct CompileReply {
  std::int64_t id = 0;
  std::vector<OutcomeMessage> outcomes;  ///< one per scenario, index order
  std::vector<PipelineEvent> events;     ///< progress stream, arrival order
  /// Lowered instruction streams (v4), arrival order — one per scenario
  /// whose options selected a backend. ArtifactMessage::index says which
  /// scenario each belongs to.
  std::vector<ArtifactMessage> artifacts;
  int ok_count = 0;
  int error_count = 0;

  /// Frame kinds in arrival order (events, then outcomes, then done) — lets
  /// callers assert streaming behavior without instrumenting callbacks.
  std::vector<std::string> frame_order;

  bool all_ok() const { return error_count == 0; }
};

/// Blocking client for a `pimcompd` compile server. One instance owns one
/// connection and is not thread-safe; open one client per thread. Requests
/// are answered in submission order on the connection, so a client can
/// submit any number of batches back-to-back.
class CompileClient {
 public:
  /// "unix:/path/to.sock" or "host:port". Throws ServeError on refused
  /// connections or unparseable endpoints.
  static CompileClient connect(const std::string& endpoint);
  static CompileClient connect_unix(const std::string& path);
  static CompileClient connect_tcp(const std::string& host, int port);

  /// Invoked for every progress event, on the calling thread, in wire order,
  /// before submit() returns.
  using EventCallback = std::function<void(const PipelineEvent&)>;

  /// Sends `request` and blocks until its terminal message. Per-scenario
  /// failures (infeasible design points) come back as outcomes with
  /// `ok == false`; a request-level failure (unknown model, malformed
  /// hardware) or a dropped connection throws ServeError.
  CompileReply submit(const CompileRequest& request,
                      const EventCallback& on_event = {});

  /// Round-trips a ping; false when the server answered garbage, throws
  /// ServeError when the connection is gone.
  bool ping();

  /// Round-trips a stats request (v5) and returns the peer's stats payload
  /// (per-tier cache counters on a daemon, per-backend counters on the
  /// router). Throws ServeError on rejection or a dropped connection.
  Json stats();

  /// Token attached to every subsequent submit()/ping()/stats() — required
  /// when the daemon/router was started with --auth-token. A request that
  /// already carries its own auth keeps it.
  void set_auth_token(std::string token) { auth_token_ = std::move(token); }

  /// Bounds every wait for a server frame: once set, a submit()/ping() that
  /// sees no frame for `seconds` throws ServeError("receive timed out ...")
  /// instead of blocking forever on a hung daemon (the CLI's `--timeout`).
  /// 0 restores the default unbounded wait.
  void set_timeout(int seconds) { channel_.set_recv_timeout(seconds); }

  void close() { channel_.shutdown_both(); }

 private:
  explicit CompileClient(Socket socket) : channel_(std::move(socket)) {}

  LineChannel channel_;
  std::int64_t next_id_ = 1;
  std::string auth_token_;
};

}  // namespace pimcomp::serve

#endif  // PIMCOMP_SERVE_CLIENT_HPP
