#ifndef PIMCOMP_SERVE_PROTOCOL_HPP
#define PIMCOMP_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "arch/hardware_config.hpp"
#include "common/json.hpp"
#include "core/compiler.hpp"
#include "core/trace.hpp"

namespace pimcomp::serve {

/// Bumped when a message shape changes incompatibly. The server rejects
/// requests declaring a newer version than it speaks. v2 added the
/// machine-readable `error_kind` on failed outcomes and the request-level
/// `priority` hint; v3 added the cache tier attribution ("source") on
/// cache events plus the `cache_store` event kind — the server keeps
/// `cache_store` frames away from requests declaring v1/v2, whose
/// event parsers would reject the unknown kind; v4 added the `backend`
/// options key and `artifact` frames carrying lowered instruction streams
/// — both withheld from pre-v4 requesters, plus the advisory `version`
/// and `artifacts` fields on `done`; v5 added the fleet vocabulary — the
/// `cache_get`/`cache_put`/`stats` request types with their
/// `cache_result`/`stats` replies, the request-level `deadline_ms` budget
/// (expired jobs fail with error_kind "deadline"), and the `auth` token
/// field — all reachable only through the new request types or new keys,
/// so every frame a pre-v5 requester triggers stays byte-identical (the
/// advisory `done` version echoes min(ours, theirs)). Older requests are
/// still accepted. v6 added the island-model GA knobs — the
/// `options.ga.islands` and `options.ga.migration_interval` request keys
/// (absent keys mean the server defaults, so pre-v6 requests parse
/// unchanged; the keys also appear in the echoed options of v6 replies).
inline constexpr int kProtocolVersion = 6;

// ---------------------------------------------------------------------------
// Field (de)serialization shared by requests and tooling.
// ---------------------------------------------------------------------------

/// CompileOptions <-> JSON. Serialization covers every field that
/// participates in fingerprint(CompileOptions) so two options objects that
/// round-trip compare fingerprint-equal; deserialization starts from `base`
/// (default: a default-constructed CompileOptions — the protocol's
/// documented meaning of an absent key) and applies the keys present, so
/// requests stay terse ({"mode": "ll", "parallelism": 20}). Callers with
/// their own defaults (the CLI's flag-built options under --scenarios)
/// pass them as `base`.
Json options_to_json(const CompileOptions& options);
CompileOptions options_from_json(const Json& json,
                                 const CompileOptions& base = {});

/// HardwareConfig <-> JSON, same contract: every fingerprinted field is
/// emitted, absent keys keep the values of `base` (default: the paper's
/// PUMA instantiation), so requests override only what they change.
Json hardware_to_json(const HardwareConfig& hw);
HardwareConfig hardware_from_json(const Json& json,
                                  const HardwareConfig& base =
                                      HardwareConfig::puma_default());

// ---------------------------------------------------------------------------
// Client -> server.
// ---------------------------------------------------------------------------

/// One scenario of a request batch. The per-scenario hardware override (if
/// any) is kept as raw JSON: it is applied on top of the *request's*
/// resolved hardware — which may itself involve server-side core-count
/// auto-fit — so it cannot be resolved to a HardwareConfig at parse time.
struct ScenarioSpec {
  std::string label;
  CompileOptions options;
  std::optional<Json> hardware;
};

/// A compile request: one model, one (possibly overridden) hardware config,
/// and a batch of scenarios compiled through the server's shared
/// CompilerSession for that (graph, hardware) identity.
struct CompileRequest {
  std::int64_t id = 0;            ///< echoed on every response (0: client picks)
  std::string model;              ///< zoo model name; exclusive with `graph`
  std::optional<Json> graph;      ///< inline PIMCOMP graph JSON
  int input_size = 0;             ///< zoo resolution (0 = canonical)
  int cores = 0;                  ///< core count (0 = auto-fit, 3x headroom)
  std::optional<Json> hardware;   ///< overrides on HardwareConfig::puma_default
  bool simulate = true;           ///< attach a SimReport to each ok outcome
  /// Job-queue priority of every scenario in this request (higher runs
  /// sooner on the shared session; ties are FIFO). Default 0.
  int priority = 0;
  /// Client deadline budget in milliseconds from request receipt (v5).
  /// A scenario job whose deadline has passed before it starts is dropped
  /// with error_kind "deadline" instead of compiling into a result nobody
  /// is waiting for. 0 = no deadline.
  std::int64_t deadline_ms = 0;
  /// Authentication token (v5); required (constant-time compared) when the
  /// daemon/router was started with --auth-token. Empty = none sent.
  std::string auth;
  std::vector<ScenarioSpec> scenarios;
  /// Version the requester declared (parsed from the wire; defaults to
  /// ours). The server tailors advisory frames to it — pre-v3 parsers
  /// never see a `cache_store` event.
  int protocol_version = kProtocolVersion;
};

/// Parses one scenario entry ({"label": ..., "options": {...},
/// "hardware": {...}}); `index` names unlabeled scenarios "scenario-N" and
/// `base_options` seeds fields the entry leaves unset. Shared by request
/// parsing and `pimcomp_cli submit --scenarios FILE`.
ScenarioSpec scenario_spec_from_json(const Json& json, std::size_t index,
                                     const CompileOptions& base_options = {});

Json to_json(const CompileRequest& request);
/// Throws ServeError on structural problems (no model and no graph, empty
/// scenario list, unsupported protocol version).
CompileRequest request_from_json(const Json& json);

/// Connection liveness probe; the server echoes a pong with the same id.
/// `auth` (v5) is emitted only when non-empty, keeping the frame
/// byte-identical to older clients' pings otherwise.
struct PingRequest {
  std::int64_t id = 0;
  std::string auth;
};

Json to_json(const PingRequest& request);

// ---------------------------------------------------------------------------
// Fleet requests (v5): the remote cache tier and operational stats.
// ---------------------------------------------------------------------------

/// Asks a daemon for the cached artifact under `key` (its disk tier only —
/// a daemon never forwards a cache_get to its own peers, which keeps fleet
/// lookups one hop and loop-free). Answered with a CacheResultMessage.
struct CacheGetRequest {
  std::int64_t id = 0;
  std::uint64_t key = 0;
  std::string auth;
};

/// Offers a freshly computed artifact to a daemon's disk tier (first
/// writer wins, exactly like a local store). Answered with a
/// CacheResultMessage whose `stored` says whether it was newly accepted.
struct CachePutRequest {
  std::int64_t id = 0;
  std::uint64_t key = 0;
  Json artifact;
  std::string auth;
};

/// Asks a daemon (or the router) for its operational counters. Answered
/// with a StatsMessage.
struct StatsRequest {
  std::int64_t id = 0;
  std::string auth;
};

Json to_json(const CacheGetRequest& request);
Json to_json(const CachePutRequest& request);
Json to_json(const StatsRequest& request);
/// Throw ServeError on malformed frames (bad key, missing artifact,
/// unsupported version).
CacheGetRequest cache_get_request_from_json(const Json& json);
CachePutRequest cache_put_request_from_json(const Json& json);
StatsRequest stats_request_from_json(const Json& json);

// ---------------------------------------------------------------------------
// Server -> client.
// ---------------------------------------------------------------------------

/// Progress: one PipelineObserver callback bridged from the session running
/// the request, streamed while the batch compiles. The payload shape is
/// exactly core/trace.hpp's event_to_json, plus the request id.
struct EventMessage {
  std::int64_t id = 0;
  PipelineEvent event;
};

/// Terminal record of one scenario — the wire form of ScenarioOutcome.
/// `ok == false` carries the structured error of an infeasible,
/// misconfigured, or cancelled design point: the human-readable message
/// plus the machine-readable `error_kind` ("capacity" / "config" /
/// "cancelled" / "internal", see pimcomp::ErrorKind), so clients branch on
/// the kind instead of string-matching what() text. The connection and the
/// rest of the batch are unaffected.
struct OutcomeMessage {
  std::int64_t id = 0;
  std::string label;
  int index = -1;
  bool ok = false;
  std::string error;       ///< !ok only
  std::string error_kind;  ///< !ok only: to_string(ErrorKind)
  Json compile;            ///< ok only: core/compile_report.hpp JSON
  Json simulation;         ///< ok && request.simulate only
};

/// One lowered instruction stream (v4+): emitted right after the outcome
/// of a scenario whose options selected a lowering backend, carrying the
/// backend/instruction_stream.hpp artifact JSON verbatim. Never sent to
/// requests declaring v1..v3 — their dispatchers would reject the unknown
/// frame type.
struct ArtifactMessage {
  std::int64_t id = 0;
  std::string label;
  int index = -1;
  Json artifact;  ///< InstructionStream::to_json()
};

/// End of a request: every scenario has reported its outcome.
/// `protocol_version` is the *requester's* declared version (not
/// serialized as-is): to_json emits the advisory "version" and
/// "artifacts" fields only when it is >= 4, keeping the frame
/// byte-identical for older requesters.
struct DoneMessage {
  std::int64_t id = 0;
  int ok_count = 0;
  int error_count = 0;
  int artifact_count = 0;  ///< artifact frames that preceded this done
  int protocol_version = kProtocolVersion;
};

/// Request-level failure (malformed JSON, unknown model, bad hardware):
/// terminal for the request, not for the connection.
struct ErrorMessage {
  std::int64_t id = 0;
  std::string error;
};

struct PongMessage {
  std::int64_t id = 0;
  int protocol_version = kProtocolVersion;
};

/// Answer to a cache_get (found/artifact meaningful) or cache_put (stored
/// meaningful). The artifact travels verbatim — the requester revalidates
/// its envelope and content exactly like a disk artifact.
struct CacheResultMessage {
  std::int64_t id = 0;
  std::uint64_t key = 0;
  bool found = false;
  bool stored = false;
  Json artifact;
};

/// Answer to a stats request: a free-form JSON payload (per-tier cache
/// counters on a daemon, per-backend counters on the router) so tooling
/// renders whatever the peer knows without a schema lockstep.
struct StatsMessage {
  std::int64_t id = 0;
  Json stats;
};

Json to_json(const EventMessage& message);
Json to_json(const OutcomeMessage& message);
Json to_json(const ArtifactMessage& message);
Json to_json(const DoneMessage& message);
Json to_json(const ErrorMessage& message);
Json to_json(const PongMessage& message);
Json to_json(const CacheResultMessage& message);
Json to_json(const StatsMessage& message);

/// Any server-to-client message, for client-side dispatch.
using ServerMessage = std::variant<EventMessage, OutcomeMessage,
                                   ArtifactMessage, DoneMessage, ErrorMessage,
                                   PongMessage, CacheResultMessage,
                                   StatsMessage>;

/// Parses one server line; throws ServeError on unknown/missing "type".
ServerMessage server_message_from_json(const Json& json);

/// Total compile seconds of a wire `compile` document (the sum of its
/// "stage_times" rows); 0.0 when the document carries none. Shared by every
/// client rendering compile times from outcomes.
double stage_seconds_from_json(const Json& compile);

}  // namespace pimcomp::serve

#endif  // PIMCOMP_SERVE_PROTOCOL_HPP
