#include "serve/client.hpp"

#include <utility>

namespace pimcomp::serve {

CompileClient CompileClient::connect(const std::string& endpoint) {
  return CompileClient(connect_endpoint(endpoint));
}

CompileClient CompileClient::connect_unix(const std::string& path) {
  return CompileClient(serve::connect_unix(path));
}

CompileClient CompileClient::connect_tcp(const std::string& host, int port) {
  return CompileClient(serve::connect_tcp(host, port));
}

CompileReply CompileClient::submit(const CompileRequest& request,
                                   const EventCallback& on_event) {
  CompileRequest sent = request;
  if (sent.id == 0) sent.id = next_id_++;
  if (sent.auth.empty()) sent.auth = auth_token_;

  channel_.write_line(to_json(sent).dump(-1));

  CompileReply reply;
  reply.id = sent.id;
  for (;;) {
    std::optional<std::string> line = channel_.read_line();
    if (!line.has_value()) {
      throw ServeError("server closed the connection mid-request");
    }
    if (line->empty()) continue;

    ServerMessage message = server_message_from_json(Json::parse(*line));

    if (auto* event = std::get_if<EventMessage>(&message)) {
      if (event->id != sent.id) continue;  // stale frame from a prior request
      reply.frame_order.push_back("event");
      reply.events.push_back(event->event);
      if (on_event) on_event(event->event);
      continue;
    }
    if (auto* outcome = std::get_if<OutcomeMessage>(&message)) {
      if (outcome->id != sent.id) continue;
      reply.frame_order.push_back("outcome");
      reply.outcomes.push_back(std::move(*outcome));
      continue;
    }
    if (auto* artifact = std::get_if<ArtifactMessage>(&message)) {
      if (artifact->id != sent.id) continue;
      reply.frame_order.push_back("artifact");
      reply.artifacts.push_back(std::move(*artifact));
      continue;
    }
    if (auto* done = std::get_if<DoneMessage>(&message)) {
      if (done->id != sent.id) continue;
      reply.frame_order.push_back("done");
      reply.ok_count = done->ok_count;
      reply.error_count = done->error_count;
      return reply;
    }
    if (auto* error = std::get_if<ErrorMessage>(&message)) {
      // id 0 means the server could not attribute the failure to a request
      // (it couldn't parse the line); on this synchronous connection that
      // can only be ours. Any other foreign id is a stale frame from an
      // abandoned earlier request — skip it like stale events/outcomes.
      if (error->id != sent.id && error->id != 0) continue;
      // Request-level failure: the server already dropped the request, so
      // surfacing it as an exception keeps ok()/error outcomes meaningful.
      throw ServeError("server rejected request " + std::to_string(sent.id) +
                       ": " + error->error);
    }
    // Pong frames mid-request would be a server bug; ignore them.
  }
}

bool CompileClient::ping() {
  PingRequest request{next_id_++, auth_token_};
  channel_.write_line(to_json(request).dump(-1));
  for (;;) {
    std::optional<std::string> line = channel_.read_line();
    if (!line.has_value()) {
      throw ServeError("server closed the connection during ping");
    }
    if (line->empty()) continue;
    ServerMessage message = server_message_from_json(Json::parse(*line));
    if (auto* pong = std::get_if<PongMessage>(&message)) {
      return pong->id == request.id &&
             pong->protocol_version == kProtocolVersion;
    }
    if (auto* error = std::get_if<ErrorMessage>(&message)) {
      if (error->id == request.id || error->id == 0) {
        throw ServeError("server rejected ping: " + error->error);
      }
    }
    // Leftover frames from an abandoned request (e.g. an event callback
    // that threw mid-submit) are skipped, same as submit() does — a
    // healthy server must not read as "answered garbage".
  }
}

Json CompileClient::stats() {
  StatsRequest request{next_id_++, auth_token_};
  channel_.write_line(to_json(request).dump(-1));
  for (;;) {
    std::optional<std::string> line = channel_.read_line();
    if (!line.has_value()) {
      throw ServeError("server closed the connection during stats");
    }
    if (line->empty()) continue;
    ServerMessage message = server_message_from_json(Json::parse(*line));
    if (auto* stats = std::get_if<StatsMessage>(&message)) {
      if (stats->id != request.id) continue;
      return stats->stats;
    }
    if (auto* error = std::get_if<ErrorMessage>(&message)) {
      if (error->id == request.id || error->id == 0) {
        throw ServeError("server rejected stats: " + error->error);
      }
    }
    // Stale frames from earlier requests are skipped, same as submit().
  }
}

}  // namespace pimcomp::serve
