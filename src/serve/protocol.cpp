#include "serve/protocol.hpp"

#include <algorithm>
#include <initializer_list>
#include <utility>

#include "cache/cache_store.hpp"
#include "common/units.hpp"
#include "serve/net.hpp"

namespace pimcomp::serve {

namespace {

/// Rejects misspelled request fields loudly: a typo'd option
/// ("parallelism_degree" for "parallelism", "generations" outside "ga")
/// must not silently compile the default configuration under the
/// requested label.
void require_known_keys(const Json& json, const char* what,
                        std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : json.items()) {
    const bool known = std::any_of(
        allowed.begin(), allowed.end(),
        [&key](const char* candidate) { return key == candidate; });
    if (!known) {
      std::string message = std::string(what) + ": unknown key '" + key +
                            "' (known keys:";
      for (const char* candidate : allowed) {
        message += ' ';
        message += candidate;
      }
      throw ServeError(message + ")");
    }
  }
}

std::string mode_to_string(PipelineMode mode) {
  return mode == PipelineMode::kHighThroughput ? "ht" : "ll";
}

PipelineMode mode_from_string(const std::string& s) {
  if (s == "ht" || s == "high-throughput") return PipelineMode::kHighThroughput;
  if (s == "ll" || s == "low-latency") return PipelineMode::kLowLatency;
  throw ServeError("unknown pipeline mode '" + s + "' (want ht|ll)");
}

std::string policy_to_string(MemoryPolicy policy) {
  return to_string(policy);  // "naive" / "add-reuse" / "ag-reuse"
}

MemoryPolicy policy_from_string(const std::string& s) {
  if (s == "naive") return MemoryPolicy::kNaive;
  if (s == "add" || s == "add-reuse") return MemoryPolicy::kAddReuse;
  if (s == "ag" || s == "ag-reuse") return MemoryPolicy::kAgReuse;
  throw ServeError("unknown memory policy '" + s + "' (want naive|add|ag)");
}

CoreConnection connection_from_string(const std::string& s) {
  if (s == "noc") return CoreConnection::kNoC;
  if (s == "bus") return CoreConnection::kBus;
  throw ServeError("unknown core connection '" + s + "' (want noc|bus)");
}

std::int64_t require_id(const Json& json) {
  return json.get("id", static_cast<std::int64_t>(0));
}

// Sanity ceilings on wire numerics (mirroring the CLI's): values past
// these make the backend allocate per-core / per-individual / per-pixel
// state until the daemon keels over — and one request must never be able
// to take the shared daemon down.
constexpr long long kMaxWireCores = 1 << 20;
constexpr long long kMaxWireParallelism = 1 << 20;
constexpr long long kMaxWireGaBudget = 1'000'000;
/// Islands bound (v6): each island costs a population-sized SoA evaluator,
/// so the cap is far tighter than the generation/population budget.
constexpr long long kMaxWireGaIslands = 4096;
constexpr long long kMaxWireDimension = 1 << 20;   // xbar/core geometry
constexpr long long kMaxWireInputSize = 1 << 16;
/// ~10 years in ms: deadlines past this are configuration errors, not
/// budgets.
constexpr long long kMaxWireDeadlineMs = 315'360'000'000LL;

/// Rejects requests declaring a protocol newer than this build speaks —
/// one wording for every request type.
void require_supported_version(const Json& json) {
  const int version = json.get("version", kProtocolVersion);
  if (version > kProtocolVersion) {
    throw ServeError("request speaks protocol v" + std::to_string(version) +
                     ", this server speaks v" +
                     std::to_string(kProtocolVersion));
  }
}

/// Parses the 16-hex-digit cache key every fleet cache frame carries.
std::uint64_t require_cache_key(const Json& json, const char* what) {
  const std::string hex = json.get("key", std::string());
  const std::optional<std::uint64_t> key = cache_key_from_hex(hex);
  if (!key.has_value()) {
    throw ServeError(std::string(what) +
                     ".key wants 16 hex digits, got '" + hex + "'");
  }
  return *key;
}

/// Bounded read of an optional integer field; `fallback` (the base value)
/// bypasses the check so layering over an already-accepted base never
/// re-rejects it.
int bounded_int(const Json& json, const char* key, int fallback,
                long long min, long long max, const char* what) {
  if (!json.contains(key)) return fallback;
  const std::int64_t value = json.at(key).as_int();
  if (value < min || value > max) {
    throw ServeError(std::string(what) + "." + key + " wants " +
                     std::to_string(min) + ".." + std::to_string(max) +
                     ", got " + std::to_string(value));
  }
  return static_cast<int>(value);
}

}  // namespace

// ---------------------------------------------------------------------------
// CompileOptions.
// ---------------------------------------------------------------------------

Json options_to_json(const CompileOptions& options) {
  Json json = Json::object();
  json["mode"] = mode_to_string(options.mode);
  json["parallelism"] = options.parallelism_degree;
  json["memory_policy"] = policy_to_string(options.memory_policy);
  json["mapper"] = options.mapper;
  if (!options.scheduler.empty()) json["scheduler"] = options.scheduler;
  // Emitted only when selected (like "scheduler"): a pre-v4 server rejects
  // the key, and requests that don't lower shouldn't declare it.
  if (!options.backend.empty()) json["backend"] = options.backend;
  json["max_nodes_per_core"] = options.max_nodes_per_core;
  json["ht_flush_windows"] = options.ht_flush_windows;
  json["seed"] = static_cast<std::int64_t>(options.seed);

  Json ga = Json::object();
  ga["population"] = options.ga.population;
  ga["generations"] = options.ga.generations;
  ga["elite"] = options.ga.elite;
  ga["tournament_size"] = options.ga.tournament_size;
  ga["mutations_per_child"] = options.ga.mutations_per_child;
  ga["target_fill"] = options.ga.target_fill;
  ga["enable_grow"] = options.ga.enable_grow;
  ga["enable_shrink"] = options.ga.enable_shrink;
  ga["enable_spread"] = options.ga.enable_spread;
  ga["enable_merge"] = options.ga.enable_merge;
  ga["seed_baseline"] = options.ga.seed_baseline;
  ga["islands"] = options.ga.islands;
  ga["migration_interval"] = options.ga.migration_interval;
  json["ga"] = std::move(ga);
  return json;
}

CompileOptions options_from_json(const Json& json,
                                 const CompileOptions& base) {
  require_known_keys(json, "options",
                     {"mode", "parallelism", "memory_policy", "mapper",
                      "scheduler", "backend", "max_nodes_per_core",
                      "ht_flush_windows", "seed", "ga"});
  CompileOptions options = base;
  if (json.contains("mode")) {
    options.mode = mode_from_string(json.at("mode").as_string());
  }
  options.parallelism_degree =
      bounded_int(json, "parallelism", options.parallelism_degree, 1,
                  kMaxWireParallelism, "options");
  if (json.contains("memory_policy")) {
    options.memory_policy =
        policy_from_string(json.at("memory_policy").as_string());
  }
  options.mapper = json.get("mapper", options.mapper);
  options.scheduler = json.get("scheduler", options.scheduler);
  options.backend = json.get("backend", options.backend);
  options.max_nodes_per_core =
      bounded_int(json, "max_nodes_per_core", options.max_nodes_per_core, 1,
                  1 << 12, "options");
  options.ht_flush_windows =
      bounded_int(json, "ht_flush_windows", options.ht_flush_windows, 1,
                  kMaxWireGaBudget, "options");
  options.seed = static_cast<std::uint64_t>(
      json.get("seed", static_cast<std::int64_t>(options.seed)));

  if (json.contains("ga")) {
    const Json& ga = json.at("ga");
    require_known_keys(ga, "options.ga",
                       {"population", "generations", "elite",
                        "tournament_size", "mutations_per_child",
                        "target_fill", "enable_grow", "enable_shrink",
                        "enable_spread", "enable_merge", "seed_baseline",
                        "islands", "migration_interval"});
    options.ga.population =
        bounded_int(ga, "population", options.ga.population, 1,
                    kMaxWireGaBudget, "options.ga");
    options.ga.generations =
        bounded_int(ga, "generations", options.ga.generations, 0,
                    kMaxWireGaBudget, "options.ga");
    options.ga.elite = ga.get("elite", options.ga.elite);
    options.ga.tournament_size =
        ga.get("tournament_size", options.ga.tournament_size);
    options.ga.mutations_per_child =
        ga.get("mutations_per_child", options.ga.mutations_per_child);
    options.ga.target_fill = ga.get("target_fill", options.ga.target_fill);
    options.ga.enable_grow = ga.get("enable_grow", options.ga.enable_grow);
    options.ga.enable_shrink =
        ga.get("enable_shrink", options.ga.enable_shrink);
    options.ga.enable_spread =
        ga.get("enable_spread", options.ga.enable_spread);
    options.ga.enable_merge = ga.get("enable_merge", options.ga.enable_merge);
    options.ga.seed_baseline =
        ga.get("seed_baseline", options.ga.seed_baseline);
    // v6 keys: island-model parallelism. Bounded like the other GA knobs so
    // a hostile request cannot demand absurd island counts; the mapper
    // additionally clamps islands to the population.
    options.ga.islands = bounded_int(ga, "islands", options.ga.islands, 1,
                                     kMaxWireGaIslands, "options.ga");
    options.ga.migration_interval =
        bounded_int(ga, "migration_interval", options.ga.migration_interval,
                    1, kMaxWireGaBudget, "options.ga");
  }
  return options;
}

// ---------------------------------------------------------------------------
// HardwareConfig.
// ---------------------------------------------------------------------------

Json hardware_to_json(const HardwareConfig& hw) {
  Json json = Json::object();
  json["xbar_rows"] = hw.xbar_rows;
  json["xbar_cols"] = hw.xbar_cols;
  json["cell_bits"] = hw.cell_bits;
  json["weight_bits"] = hw.weight_bits;
  json["activation_bits"] = hw.activation_bits;
  json["xbars_per_core"] = hw.xbars_per_core;
  json["core_count"] = hw.core_count;
  json["cores_per_chip"] = hw.cores_per_chip;
  json["connection"] = to_string(hw.connection);
  json["vfus_per_core"] = hw.vfus_per_core;
  json["vfu_ops_per_ns"] = hw.vfu_ops_per_ns;
  json["local_memory_bytes"] = hw.local_memory_bytes;
  json["local_memory_gbps"] = hw.local_memory_gbps;
  json["global_memory_bytes"] = hw.global_memory_bytes;
  json["global_memory_gbps"] = hw.global_memory_gbps;
  json["noc_flit_bytes"] = hw.noc_flit_bytes;
  json["noc_link_gbps"] = hw.noc_link_gbps;
  json["noc_hop_latency_ns"] = to_ns(hw.noc_hop_latency);
  json["ht_link_gbps"] = hw.ht_link_gbps;
  json["ht_latency_ns"] = to_ns(hw.ht_latency);
  json["mvm_latency_ns"] = to_ns(hw.mvm_latency);
  return json;
}

HardwareConfig hardware_from_json(const Json& json,
                                  const HardwareConfig& base) {
  require_known_keys(
      json, "hardware",
      {"xbar_rows", "xbar_cols", "cell_bits", "weight_bits",
       "activation_bits", "xbars_per_core", "core_count", "cores_per_chip",
       "connection", "vfus_per_core", "vfu_ops_per_ns",
       "local_memory_bytes", "local_memory_gbps", "global_memory_bytes",
       "global_memory_gbps", "noc_flit_bytes", "noc_link_gbps",
       "noc_hop_latency_ns", "ht_link_gbps", "ht_latency_ns",
       "mvm_latency_ns"});
  HardwareConfig hw = base;
  hw.xbar_rows = bounded_int(json, "xbar_rows", hw.xbar_rows, 1,
                             kMaxWireDimension, "hardware");
  hw.xbar_cols = bounded_int(json, "xbar_cols", hw.xbar_cols, 1,
                             kMaxWireDimension, "hardware");
  hw.cell_bits = json.get("cell_bits", hw.cell_bits);
  hw.weight_bits = json.get("weight_bits", hw.weight_bits);
  hw.activation_bits = json.get("activation_bits", hw.activation_bits);
  hw.xbars_per_core = bounded_int(json, "xbars_per_core", hw.xbars_per_core,
                                  1, kMaxWireDimension, "hardware");
  hw.core_count = bounded_int(json, "core_count", hw.core_count, 1,
                              kMaxWireCores, "hardware");
  hw.cores_per_chip = bounded_int(json, "cores_per_chip", hw.cores_per_chip,
                                  1, kMaxWireCores, "hardware");
  if (json.contains("connection")) {
    hw.connection = connection_from_string(json.at("connection").as_string());
  }
  hw.vfus_per_core = json.get("vfus_per_core", hw.vfus_per_core);
  hw.vfu_ops_per_ns = json.get("vfu_ops_per_ns", hw.vfu_ops_per_ns);
  hw.local_memory_bytes =
      json.get("local_memory_bytes", hw.local_memory_bytes);
  hw.local_memory_gbps = json.get("local_memory_gbps", hw.local_memory_gbps);
  hw.global_memory_bytes =
      json.get("global_memory_bytes", hw.global_memory_bytes);
  hw.global_memory_gbps =
      json.get("global_memory_gbps", hw.global_memory_gbps);
  hw.noc_flit_bytes = json.get("noc_flit_bytes", hw.noc_flit_bytes);
  hw.noc_link_gbps = json.get("noc_link_gbps", hw.noc_link_gbps);
  if (json.contains("noc_hop_latency_ns")) {
    hw.noc_hop_latency = from_ns(json.at("noc_hop_latency_ns").as_number());
  }
  hw.ht_link_gbps = json.get("ht_link_gbps", hw.ht_link_gbps);
  if (json.contains("ht_latency_ns")) {
    hw.ht_latency = from_ns(json.at("ht_latency_ns").as_number());
  }
  if (json.contains("mvm_latency_ns")) {
    hw.mvm_latency = from_ns(json.at("mvm_latency_ns").as_number());
  }
  return hw;
}

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

Json to_json(const CompileRequest& request) {
  Json json = Json::object();
  json["type"] = "compile";
  json["version"] = kProtocolVersion;
  json["id"] = request.id;
  if (!request.model.empty()) json["model"] = request.model;
  if (request.graph.has_value()) json["graph"] = *request.graph;
  if (request.input_size > 0) json["input_size"] = request.input_size;
  if (request.cores > 0) json["cores"] = request.cores;
  if (request.hardware.has_value()) json["hardware"] = *request.hardware;
  json["simulate"] = request.simulate;
  if (request.priority != 0) json["priority"] = request.priority;
  if (request.deadline_ms > 0) json["deadline_ms"] = request.deadline_ms;
  if (!request.auth.empty()) json["auth"] = request.auth;

  Json scenarios = Json::array();
  for (const ScenarioSpec& spec : request.scenarios) {
    Json entry = Json::object();
    entry["label"] = spec.label;
    entry["options"] = options_to_json(spec.options);
    if (spec.hardware.has_value()) entry["hardware"] = *spec.hardware;
    scenarios.push_back(std::move(entry));
  }
  json["scenarios"] = std::move(scenarios);
  return json;
}

CompileRequest request_from_json(const Json& json) {
  require_supported_version(json);

  require_known_keys(json, "request",
                     {"type", "version", "id", "model", "graph",
                      "input_size", "cores", "hardware", "simulate",
                      "priority", "deadline_ms", "auth", "scenarios"});
  CompileRequest request;
  request.protocol_version = json.get("version", kProtocolVersion);
  request.id = require_id(json);
  request.model = json.get("model", std::string());
  if (json.contains("graph")) request.graph = json.at("graph");
  if (request.model.empty() && !request.graph.has_value()) {
    throw ServeError("compile request needs a 'model' name or inline 'graph'");
  }
  if (!request.model.empty() && request.graph.has_value()) {
    throw ServeError("'model' and 'graph' are mutually exclusive");
  }
  request.input_size =
      bounded_int(json, "input_size", 0, 0, kMaxWireInputSize, "request");
  request.cores = bounded_int(json, "cores", 0, 0, kMaxWireCores, "request");
  if (json.contains("hardware")) request.hardware = json.at("hardware");
  request.simulate = json.get("simulate", true);
  request.priority =
      bounded_int(json, "priority", 0, -1000, 1000, "request");
  if (json.contains("deadline_ms")) {
    const std::int64_t deadline = json.at("deadline_ms").as_int();
    if (deadline < 0 || deadline > kMaxWireDeadlineMs) {
      throw ServeError("request.deadline_ms wants 0.." +
                       std::to_string(kMaxWireDeadlineMs) + ", got " +
                       std::to_string(deadline));
    }
    request.deadline_ms = deadline;
  }
  request.auth = json.get("auth", std::string());

  if (!json.contains("scenarios") || !json.at("scenarios").is_array() ||
      json.at("scenarios").size() == 0) {
    throw ServeError("compile request needs a non-empty 'scenarios' array");
  }
  const Json& scenarios = json.at("scenarios");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    request.scenarios.push_back(scenario_spec_from_json(scenarios.at(i), i));
  }
  return request;
}

ScenarioSpec scenario_spec_from_json(const Json& json, std::size_t index,
                                     const CompileOptions& base_options) {
  require_known_keys(json, "scenario", {"label", "options", "hardware"});
  ScenarioSpec spec;
  spec.label = json.get("label", "scenario-" + std::to_string(index));
  spec.options = base_options;
  if (json.contains("options")) {
    spec.options = options_from_json(json.at("options"), base_options);
  }
  if (json.contains("hardware")) spec.hardware = json.at("hardware");
  return spec;
}

Json to_json(const PingRequest& request) {
  Json json = Json::object();
  json["type"] = "ping";
  json["id"] = request.id;
  if (!request.auth.empty()) json["auth"] = request.auth;
  return json;
}

// ---------------------------------------------------------------------------
// Fleet requests (v5).
// ---------------------------------------------------------------------------

Json to_json(const CacheGetRequest& request) {
  Json json = Json::object();
  json["type"] = "cache_get";
  json["version"] = kProtocolVersion;
  json["id"] = request.id;
  json["key"] = cache_key_hex(request.key);
  if (!request.auth.empty()) json["auth"] = request.auth;
  return json;
}

Json to_json(const CachePutRequest& request) {
  Json json = Json::object();
  json["type"] = "cache_put";
  json["version"] = kProtocolVersion;
  json["id"] = request.id;
  json["key"] = cache_key_hex(request.key);
  json["artifact"] = request.artifact;
  if (!request.auth.empty()) json["auth"] = request.auth;
  return json;
}

Json to_json(const StatsRequest& request) {
  Json json = Json::object();
  json["type"] = "stats";
  json["version"] = kProtocolVersion;
  json["id"] = request.id;
  if (!request.auth.empty()) json["auth"] = request.auth;
  return json;
}

CacheGetRequest cache_get_request_from_json(const Json& json) {
  require_supported_version(json);
  require_known_keys(json, "cache_get",
                     {"type", "version", "id", "key", "auth"});
  CacheGetRequest request;
  request.id = require_id(json);
  request.key = require_cache_key(json, "cache_get");
  request.auth = json.get("auth", std::string());
  return request;
}

CachePutRequest cache_put_request_from_json(const Json& json) {
  require_supported_version(json);
  require_known_keys(json, "cache_put",
                     {"type", "version", "id", "key", "artifact", "auth"});
  CachePutRequest request;
  request.id = require_id(json);
  request.key = require_cache_key(json, "cache_put");
  if (!json.contains("artifact") || !json.at("artifact").is_object()) {
    throw ServeError("cache_put needs an 'artifact' object");
  }
  request.artifact = json.at("artifact");
  request.auth = json.get("auth", std::string());
  return request;
}

StatsRequest stats_request_from_json(const Json& json) {
  require_supported_version(json);
  require_known_keys(json, "stats", {"type", "version", "id", "auth"});
  StatsRequest request;
  request.id = require_id(json);
  request.auth = json.get("auth", std::string());
  return request;
}

// ---------------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------------

Json to_json(const EventMessage& message) {
  // The event payload is flattened into the frame (not nested) so the stream
  // is directly greppable; event_to_json's "event" key carries the kind and
  // "type" distinguishes the frame.
  Json json = event_to_json(message.event);
  Json framed = Json::object();
  framed["type"] = "event";
  framed["id"] = message.id;
  for (const auto& [key, value] : json.items()) framed[key] = value;
  return framed;
}

Json to_json(const OutcomeMessage& message) {
  Json json = Json::object();
  json["type"] = "outcome";
  json["id"] = message.id;
  json["scenario"] = message.label;
  json["index"] = message.index;
  json["ok"] = message.ok;
  if (message.ok) {
    json["compile"] = message.compile;
    if (!message.simulation.is_null()) json["simulation"] = message.simulation;
  } else {
    json["error"] = message.error;
    if (!message.error_kind.empty()) json["error_kind"] = message.error_kind;
  }
  return json;
}

Json to_json(const ArtifactMessage& message) {
  Json json = Json::object();
  json["type"] = "artifact";
  json["id"] = message.id;
  json["scenario"] = message.label;
  json["index"] = message.index;
  json["artifact"] = message.artifact;
  return json;
}

Json to_json(const DoneMessage& message) {
  Json json = Json::object();
  json["type"] = "done";
  json["id"] = message.id;
  json["ok"] = message.ok_count;
  json["errors"] = message.error_count;
  if (message.protocol_version >= 4) {
    // Advisory v4 fields, withheld from older requesters so their done
    // frames stay byte-identical to what v3 servers emitted. The version
    // echoes min(ours, theirs): a v4 requester keeps seeing "version": 4,
    // byte-identical to a v4 server's frame.
    json["version"] = std::min(kProtocolVersion, message.protocol_version);
    json["artifacts"] = message.artifact_count;
  }
  return json;
}

Json to_json(const ErrorMessage& message) {
  Json json = Json::object();
  json["type"] = "error";
  json["id"] = message.id;
  json["error"] = message.error;
  return json;
}

Json to_json(const PongMessage& message) {
  Json json = Json::object();
  json["type"] = "pong";
  json["id"] = message.id;
  json["version"] = message.protocol_version;
  return json;
}

Json to_json(const CacheResultMessage& message) {
  Json json = Json::object();
  json["type"] = "cache_result";
  json["id"] = message.id;
  json["key"] = cache_key_hex(message.key);
  json["found"] = message.found;
  json["stored"] = message.stored;
  if (message.found && !message.artifact.is_null()) {
    json["artifact"] = message.artifact;
  }
  return json;
}

Json to_json(const StatsMessage& message) {
  Json json = Json::object();
  json["type"] = "stats";
  json["id"] = message.id;
  json["stats"] = message.stats;
  return json;
}

ServerMessage server_message_from_json(const Json& json) {
  const std::string type = json.get("type", std::string());
  if (type == "event") {
    EventMessage message;
    message.id = require_id(json);
    message.event = event_from_json(json);
    return message;
  }
  if (type == "outcome") {
    OutcomeMessage message;
    message.id = require_id(json);
    message.label = json.get("scenario", std::string());
    message.index = json.get("index", -1);
    message.ok = json.get("ok", false);
    if (message.ok) {
      if (json.contains("compile")) message.compile = json.at("compile");
      if (json.contains("simulation")) {
        message.simulation = json.at("simulation");
      }
    } else {
      message.error = json.get("error", std::string("unknown error"));
      message.error_kind = json.get("error_kind", std::string());
    }
    return message;
  }
  if (type == "artifact") {
    ArtifactMessage message;
    message.id = require_id(json);
    message.label = json.get("scenario", std::string());
    message.index = json.get("index", -1);
    if (json.contains("artifact")) message.artifact = json.at("artifact");
    return message;
  }
  if (type == "done") {
    DoneMessage message;
    message.id = require_id(json);
    message.ok_count = json.get("ok", 0);
    message.error_count = json.get("errors", 0);
    // Tolerant reads: v3 servers emit neither field.
    message.artifact_count = json.get("artifacts", 0);
    message.protocol_version = json.get("version", 3);
    return message;
  }
  if (type == "error") {
    ErrorMessage message;
    message.id = require_id(json);
    message.error = json.get("error", std::string("unknown error"));
    return message;
  }
  if (type == "pong") {
    PongMessage message;
    message.id = require_id(json);
    message.protocol_version = json.get("version", kProtocolVersion);
    return message;
  }
  if (type == "cache_result") {
    CacheResultMessage message;
    message.id = require_id(json);
    message.key =
        cache_key_from_hex(json.get("key", std::string())).value_or(0);
    message.found = json.get("found", false);
    message.stored = json.get("stored", false);
    if (json.contains("artifact")) message.artifact = json.at("artifact");
    return message;
  }
  if (type == "stats") {
    StatsMessage message;
    message.id = require_id(json);
    if (json.contains("stats")) message.stats = json.at("stats");
    return message;
  }
  throw ServeError("unknown server message type '" + type + "'");
}

double stage_seconds_from_json(const Json& compile) {
  if (!compile.is_object() || !compile.contains("stage_times")) return 0.0;
  const Json& times = compile.at("stage_times");
  return times.get("partitioning_s", 0.0) + times.get("mapping_s", 0.0) +
         times.get("scheduling_s", 0.0) + times.get("lowering_s", 0.0);
}

}  // namespace pimcomp::serve
