#include "serve/server.hpp"

#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <exception>
#include <iostream>
#include <optional>
#include <utility>

#include "backend/instruction_stream.hpp"
#include "cache/disk_store.hpp"
#include "common/string_util.hpp"
#include "core/compile_report.hpp"
#include "core/compiler.hpp"
#include "core/trace.hpp"
#include "graph/serialize.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp::serve {

namespace {

std::string compact(const Json& json) { return json.dump(-1); }

std::int64_t message_id(const Json& json) {
  return json.get("id", static_cast<std::int64_t>(0));
}

}  // namespace

// ---------------------------------------------------------------------------
// Per-connection / per-request state.
// ---------------------------------------------------------------------------

/// One client connection. The pinned reader owns both socket directions:
/// it parses inbound lines, and it pumps the outbound frame queue with
/// non-blocking sends when poll(2) reports writability — producers
/// (session workers finishing jobs, the event router, the reader itself
/// answering pings) only enqueue. That is what keeps one stalled client
/// from ever blocking a session worker: the expensive threads never touch
/// a socket. `broken` is the one-way "this peer is gone or not reading"
/// latch: the pump sets it on send errors, outbound overflow, or stalls,
/// and the owning reader observes it and disconnects (cancelling the
/// connection's outstanding jobs).
struct CompileServer::Connection {
  explicit Connection(Socket socket) : channel(std::move(socket)) {}

  LineChannel channel;
  std::atomic<bool> broken{false};
  Reader* reader = nullptr;  ///< pinned reader, for outbound wakeups

  Mutex mutex;
  std::vector<std::weak_ptr<RequestState>> requests PIMCOMP_GUARDED_BY(mutex);

  // Outbound frame queue. Frames carry their trailing '\n'; `offset` is how
  // much of the front frame already went out; `last_progress` drives the
  // stall timeout.
  Mutex out_mutex;
  std::deque<std::string> outbound PIMCOMP_GUARDED_BY(out_mutex);
  std::size_t out_bytes PIMCOMP_GUARDED_BY(out_mutex) = 0;
  std::size_t offset PIMCOMP_GUARDED_BY(out_mutex) = 0;
  std::chrono::steady_clock::time_point last_progress
      PIMCOMP_GUARDED_BY(out_mutex){};

  /// Advisory frames (progress events) are dropped once this much output
  /// is already queued — a slow reader loses progress, never outcomes.
  static constexpr std::size_t kAdvisoryBudget = 4u << 20;
  /// Hard cap: a peer that reads nothing while mandatory frames pile past
  /// this is declared broken (bounds a hostile/stuck client's memory cost).
  static constexpr std::size_t kOutboundCap = 256u << 20;
};

/// One in-flight compile request: N jobs fanning into an in-order outcome
/// stream. Outcome frames are emitted strictly in scenario-enqueue order
/// (a finished-early job parks in `ready` until its turn), so the wire
/// contract — events*, outcomes in index order, done — survives the
/// job-granular concurrency underneath.
struct CompileServer::RequestState {
  std::shared_ptr<Connection> connection;
  std::shared_ptr<SessionEntry> entry;  ///< keeps the session alive
  std::int64_t id = 0;
  bool simulate = true;
  std::size_t total = 0;
  /// Version the requester declared. Artifact frames (and the advisory v4
  /// done fields) are only emitted when this is >= 4 — an older dispatcher
  /// would reject the unknown frame type.
  int protocol_version = kProtocolVersion;

  Mutex mutex;
  std::vector<CompileJob> jobs PIMCOMP_GUARDED_BY(mutex);
  /// finished, awaiting turn
  std::map<std::size_t, OutcomeMessage> ready PIMCOMP_GUARDED_BY(mutex);
  /// Lowered instruction streams keyed like `ready`; emitted immediately
  /// after their scenario's outcome frame so the wire contract stays
  /// "events*, (outcome artifact?)* in index order, done".
  std::map<std::size_t, Json> ready_artifacts PIMCOMP_GUARDED_BY(mutex);
  std::size_t next_emit PIMCOMP_GUARDED_BY(mutex) = 0;
  std::size_t completed PIMCOMP_GUARDED_BY(mutex) = 0;
  int ok_count PIMCOMP_GUARDED_BY(mutex) = 0;
  int error_count PIMCOMP_GUARDED_BY(mutex) = 0;
  int artifact_count PIMCOMP_GUARDED_BY(mutex) = 0;
  bool done_handled PIMCOMP_GUARDED_BY(mutex) = false;

  /// Serializes the pop-and-write sequence so two workers finishing jobs
  /// back-to-back cannot interleave their in-order frame runs. Never held
  /// together with `mutex` across a write (writes block up to the send
  /// timeout; `mutex` must stay cheap for cancellation paths).
  Mutex emit_mutex;
};

/// One shared CompilerSession plus the event router that attributes its
/// merged observer stream. `next_tag` mints the session-unique job tags.
struct CompileServer::SessionEntry {
  SessionEntry(Graph graph, HardwareConfig hw, CacheConfig cache)
      : session(std::move(graph), hw, std::move(cache)) {
    session.set_observer(&router);
  }

  CompilerSession session;
  JobRouter router;
  std::atomic<std::uint64_t> next_tag{1};
};

/// One reader of the fixed pool: a thread multiplexing its pinned
/// connections via poll(2), woken through a self-pipe when the accept loop
/// hands it a new connection or stop() flips the flag.
struct CompileServer::Reader {
  ~Reader() {
    if (wake_read >= 0) ::close(wake_read);
    if (wake_write >= 0) ::close(wake_write);
  }

  Thread thread;
  int wake_read = -1;
  int wake_write = -1;

  Mutex mutex;
  std::vector<std::shared_ptr<Connection>> incoming PIMCOMP_GUARDED_BY(mutex);
};

// ---------------------------------------------------------------------------
// JobRouter.
// ---------------------------------------------------------------------------

void CompileServer::JobRouter::add(std::uint64_t tag,
                                   std::weak_ptr<Connection> connection,
                                   std::int64_t request_id,
                                   int protocol_version) {
  MutexLock lock(mutex_);
  routes_[tag] = Route{std::move(connection), request_id, protocol_version};
}

void CompileServer::JobRouter::remove(std::uint64_t tag) {
  MutexLock lock(mutex_);
  routes_.erase(tag);
}

void CompileServer::JobRouter::on_stage_begin(const StageInfo& info) {
  route(PipelineEvent::stage_begin(info));
}

void CompileServer::JobRouter::on_stage_end(const StageInfo& info) {
  route(PipelineEvent::stage_end(info));
}

void CompileServer::JobRouter::on_cache_hit(const CacheEvent& event) {
  route(PipelineEvent::cache_hit(event));
}

void CompileServer::JobRouter::on_cache_store(const CacheEvent& event) {
  route(PipelineEvent::cache_store(event));
}

void CompileServer::JobRouter::route(const PipelineEvent& event) {
  if (event.tag == 0) return;  // not one of our jobs (direct session use)
  std::shared_ptr<Connection> connection;
  std::int64_t request_id = 0;
  {
    MutexLock lock(mutex_);
    const auto it = routes_.find(event.tag);
    if (it == routes_.end()) return;  // request already finished/unroutable
    if (event.kind == PipelineEvent::Kind::kCacheStore &&
        it->second.protocol_version < 3) {
      // A pre-v3 event parser rejects the cache_store kind outright; the
      // frame is advisory, so an old client simply doesn't get it.
      return;
    }
    connection = it->second.connection.lock();
    request_id = it->second.request_id;
  }
  if (connection == nullptr ||
      connection->broken.load(std::memory_order_relaxed)) {
    return;
  }
  // Progress events are advisory: a slow reader loses events (the outbound
  // queue drops them past its advisory budget), never outcomes — and this
  // enqueue never blocks the pipeline that is calling us.
  enqueue_frame(*connection, to_json(EventMessage{request_id, event}),
                /*advisory=*/true);
}

// ---------------------------------------------------------------------------
// Outbound pumping.
// ---------------------------------------------------------------------------

void CompileServer::enqueue_frame(Connection& connection, const Json& json,
                                  bool advisory) {
  std::string line;
  try {
    line = compact(json);
  } catch (const std::exception&) {
    // Serialization failure (allocation) of a mandatory frame: the stream
    // would be missing a frame the client waits on, so the connection is
    // declared broken rather than silently incomplete.
    if (!advisory) {
      connection.broken.store(true, std::memory_order_relaxed);
      connection.channel.shutdown_both();
    }
    return;
  }
  line.push_back('\n');

  bool wake = false;
  {
    MutexLock lock(connection.out_mutex);
    if (connection.broken.load(std::memory_order_relaxed)) return;
    if (advisory && connection.out_bytes > Connection::kAdvisoryBudget) {
      return;  // slow reader: drop progress, keep outcomes
    }
    if (connection.out_bytes > Connection::kOutboundCap) {
      connection.broken.store(true, std::memory_order_relaxed);
      connection.channel.shutdown_both();
      return;
    }
    if (connection.outbound.empty()) {
      connection.last_progress = std::chrono::steady_clock::now();
      wake = true;  // the reader needs to start polling POLLOUT
    }
    connection.out_bytes += line.size();
    connection.outbound.push_back(std::move(line));
  }
  if (wake && connection.reader != nullptr) wake_reader(*connection.reader);
}

void CompileServer::pump_outbound(Connection& connection) {
  MutexLock lock(connection.out_mutex);
  while (!connection.outbound.empty()) {
    const std::string& front = connection.outbound.front();
    const ssize_t n =
        ::send(connection.channel.fd(), front.data() + connection.offset,
               front.size() - connection.offset,
               MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n > 0) {
      connection.offset += static_cast<std::size_t>(n);
      connection.last_progress = std::chrono::steady_clock::now();
      if (connection.offset == front.size()) {
        connection.out_bytes -= front.size();
        connection.outbound.pop_front();
        connection.offset = 0;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EPIPE / ECONNRESET / shutdown: the peer is gone.
    connection.broken.store(true, std::memory_order_relaxed);
    break;
  }
}

bool CompileServer::outbound_stalled(Connection& connection) const {
  MutexLock lock(connection.out_mutex);
  if (connection.outbound.empty()) return false;
  const double stalled_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() -
                               connection.last_progress)
                               .count();
  return stalled_s > options_.send_timeout_seconds;
}

// ---------------------------------------------------------------------------
// Lifecycle.
// ---------------------------------------------------------------------------

CompileServer::CompileServer(ServerOptions options)
    : options_(std::move(options)) {
  options_.max_sessions = std::max<std::size_t>(options_.max_sessions, 1);
  options_.readers = std::max(options_.readers, 1);
  options_.send_timeout_seconds = std::max(options_.send_timeout_seconds, 1);
  if (options_.cache.enabled()) {
    // The store peers read from (cache_get) and push into (cache_put).
    // Constructing it is free — DiskStore touches the filesystem lazily.
    peer_store_ = std::make_unique<DiskStore>(options_.cache);
  }
}

CompileServer::~CompileServer() { stop(); }

void CompileServer::start() {
  MutexLock lock(lifecycle_mutex_);
  if (running_) throw ServeError("compile server is already running");
  if (!options_.unix_path.empty()) {
    listener_ = listen_unix(options_.unix_path);
    bound_port_ = 0;
  } else {
    listener_ = listen_tcp(options_.host, options_.port, &bound_port_);
  }
  accept_stop_ = false;
  reader_stop_ = false;
  stop_requested_ = false;

  readers_.clear();
  next_reader_ = 0;
  for (int i = 0; i < options_.readers; ++i) {
    auto reader = std::make_unique<Reader>();
    int fds[2];
    if (::pipe(fds) != 0) {
      // Unwind the readers already spawned: destroying a joinable
      // std::thread is std::terminate, so a half-started server must stop
      // and join them before reporting the failure.
      reader_stop_ = true;
      for (const std::unique_ptr<Reader>& started : readers_) {
        wake_reader(*started);
      }
      for (const std::unique_ptr<Reader>& started : readers_) {
        if (started->thread.joinable()) started->thread.join();
      }
      readers_.clear();
      reader_stop_ = false;
      listener_.close();
      throw ServeError("pipe(reader wakeup) failed");
    }
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
    reader->wake_read = fds[0];
    reader->wake_write = fds[1];
    Reader* raw = reader.get();
    reader->thread = Thread([this, raw] { reader_loop(*raw); });
    readers_.push_back(std::move(reader));
  }

  running_ = true;
  accept_thread_ = Thread([this] { accept_loop(); });
}

void CompileServer::stop() {
  {
    MutexLock lock(lifecycle_mutex_);
    if (!running_) return;
    if (stop_requested_) {
      // Another thread is tearing down; wait for it to finish.
      while (running_) stopped_.wait(lifecycle_mutex_);
      return;
    }
    stop_requested_ = true;
  }

  accept_stop_ = true;
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();

  // Stop the reader pool, then cut every connection: pending client reads
  // see EOF, worker writes fail fast, all outstanding jobs get cancelled.
  reader_stop_ = true;
  for (const std::unique_ptr<Reader>& reader : readers_) wake_reader(*reader);
  for (const std::unique_ptr<Reader>& reader : readers_) {
    if (reader->thread.joinable()) reader->thread.join();
  }
  std::vector<std::shared_ptr<Connection>> connections;
  {
    MutexLock lock(conn_mutex_);
    for (const std::weak_ptr<Connection>& weak : connections_) {
      if (std::shared_ptr<Connection> connection = weak.lock()) {
        connections.push_back(std::move(connection));
      }
    }
    connections_.clear();
  }
  for (const std::shared_ptr<Connection>& connection : connections) {
    disconnect(connection);
  }

  // Drain the sessions while the registry still holds them: cancelled jobs
  // finalize quickly, their completion callbacks run (writes fail fast on
  // the shut-down sockets), and — because the pool destroys each task
  // closure before counting it done — no worker still holds a RequestState
  // (and through it a SessionEntry) once wait_jobs_idle() returns. Only
  // then is it safe to drop the registry references and destroy sessions
  // on this thread.
  std::vector<std::shared_ptr<SessionEntry>> entries;
  {
    MutexLock lock(session_mutex_);
    for (const auto& [key, entry] : sessions_) entries.push_back(entry);
    for (const std::shared_ptr<SessionEntry>& entry : retired_) {
      entries.push_back(entry);
    }
  }
  for (const std::shared_ptr<SessionEntry>& entry : entries) {
    entry->session.cancel_all_jobs();
  }
  for (const std::shared_ptr<SessionEntry>& entry : entries) {
    entry->session.wait_jobs_idle();
  }
  {
    MutexLock lock(session_mutex_);
    sessions_.clear();
    session_order_.clear();
    retired_.clear();
  }
  entries.clear();
  connections.clear();
  readers_.clear();

  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());

  {
    MutexLock lock(lifecycle_mutex_);
    running_ = false;
  }
  stopped_.notify_all();
}

void CompileServer::wait() {
  MutexLock lock(lifecycle_mutex_);
  while (running_) stopped_.wait(lifecycle_mutex_);
}

std::string CompileServer::endpoint() const {
  if (!options_.unix_path.empty()) return "unix:" + options_.unix_path;
  return options_.host + ":" + std::to_string(bound_port_);
}

std::size_t CompileServer::session_count() const {
  MutexLock lock(session_mutex_);
  return sessions_.size();
}

// ---------------------------------------------------------------------------
// Accepting and reading.
// ---------------------------------------------------------------------------

void CompileServer::accept_loop() {
  for (;;) {
    std::optional<Socket> socket;
    try {
      socket = accept_connection(listener_, &accept_stop_);
    } catch (const ServeError&) {
      break;  // listener torn down underneath us
    }
    if (!socket.has_value()) break;
    ++connections_accepted_;

    auto connection = std::make_shared<Connection>(std::move(*socket));
    {
      MutexLock lock(conn_mutex_);
      connections_.erase(
          std::remove_if(connections_.begin(), connections_.end(),
                         [](const std::weak_ptr<Connection>& weak) {
                           return weak.expired();
                         }),
          connections_.end());
      connections_.push_back(connection);
    }

    // Pin the connection to a reader round-robin; the reader owns both
    // socket directions from here on (inbound parsing, outbound pumping).
    Reader& reader = *readers_[next_reader_++ % readers_.size()];
    connection->reader = &reader;
    {
      MutexLock lock(reader.mutex);
      reader.incoming.push_back(std::move(connection));
    }
    wake_reader(reader);
  }
}

void CompileServer::wake_reader(Reader& reader) {
  const char byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(reader.wake_write, &byte, 1);
}

void CompileServer::reader_loop(Reader& reader) {
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<pollfd> fds;
  while (!reader_stop_.load()) {
    {
      MutexLock lock(reader.mutex);
      for (std::shared_ptr<Connection>& incoming : reader.incoming) {
        connections.push_back(std::move(incoming));
      }
      reader.incoming.clear();
    }
    // Reap connections the pump (or an enqueue overflow) declared broken,
    // and those whose queued output stalled past the send timeout:
    // cancel their jobs, drop them.
    for (std::shared_ptr<Connection>& connection : connections) {
      if (!connection->broken.load() && outbound_stalled(*connection)) {
        connection->broken.store(true);
      }
      if (connection->broken.load()) {
        disconnect(connection);
        connection = nullptr;
      }
    }
    connections.erase(std::remove(connections.begin(), connections.end(),
                                  nullptr),
                      connections.end());

    fds.clear();
    fds.push_back(pollfd{reader.wake_read, POLLIN, 0});
    for (const std::shared_ptr<Connection>& connection : connections) {
      short events = POLLIN;
      {
        MutexLock lock(connection->out_mutex);
        if (!connection->outbound.empty()) events |= POLLOUT;
      }
      fds.push_back(pollfd{connection->channel.fd(), events, 0});
    }
    // The timeout is a safety net: the broken/stall reaping above must not
    // wait on socket traffic forever.
    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 500);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // poll on our own fds failing is unrecoverable
    }
    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(reader.wake_read, drain, sizeof(drain)) > 0) {
      }
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      std::shared_ptr<Connection>& connection = connections[i - 1];
      if (fds[i].revents == 0) continue;
      if ((fds[i].revents & POLLOUT) != 0) pump_outbound(*connection);
      bool drop = false;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) != 0) {
        try {
          if (!connection->channel.fill_from_socket()) {
            drop = true;  // clean EOF: the client hung up
          } else {
            while (std::optional<std::string> line =
                       connection->channel.take_line()) {
              if (!line->empty()) dispatch_line(connection, *line);
            }
          }
        } catch (const std::exception&) {
          drop = true;  // read error, oversized frame, or allocation failure
        }
      }
      if (drop) {
        disconnect(connection);
        connection = nullptr;
      }
    }
    connections.erase(std::remove(connections.begin(), connections.end(),
                                  nullptr),
                      connections.end());
  }
  // stop(): the registry walk shuts every connection down; nothing to do.
}

void CompileServer::dispatch_line(
    const std::shared_ptr<Connection>& connection, const std::string& line) {
  Json json;
  try {
    json = Json::parse(line);
  } catch (const JsonError& e) {
    // Line framing keeps the stream synchronized, so a malformed document
    // is a request-level error, not a connection killer.
    enqueue_frame(*connection,
                  to_json(ErrorMessage{0, std::string("bad json: ") +
                                              e.what()}),
                  /*advisory=*/false);
    return;
  }

  const std::string type = json.get("type", std::string("compile"));
  try {
    if (!options_.auth_token.empty() &&
        !constant_time_equal(json.get("auth", std::string()),
                             options_.auth_token)) {
      // One uniform rejection for every request type, after the
      // constant-time compare — neither the timing nor the message reveals
      // how close the presented token was.
      enqueue_frame(*connection,
                    to_json(ErrorMessage{message_id(json),
                                         "unauthorized: missing or bad auth "
                                         "token"}),
                    /*advisory=*/false);
      return;
    }
    if (type == "ping") {
      enqueue_frame(*connection, to_json(PongMessage{message_id(json)}),
                    /*advisory=*/false);
    } else if (type == "compile") {
      handle_compile(connection, json);
    } else if (type == "cache_get") {
      handle_cache_get(connection, json);
    } else if (type == "cache_put") {
      handle_cache_put(connection, json);
    } else if (type == "stats") {
      handle_stats(connection, json);
    } else {
      enqueue_frame(*connection,
                    to_json(ErrorMessage{message_id(json),
                                         "unknown request type '" + type +
                                             "'"}),
                    /*advisory=*/false);
    }
  } catch (const std::exception& e) {
    // Nothing a request does may take the daemon down: an exception that
    // slipped through handle_compile's own handlers becomes a
    // request-level error. (Replies never block or throw — delivery
    // problems surface through the outbound pump's broken flag.)
    enqueue_frame(*connection,
                  to_json(ErrorMessage{message_id(json), e.what()}),
                  /*advisory=*/false);
  }
}

// ---------------------------------------------------------------------------
// Compile requests.
// ---------------------------------------------------------------------------

ResolvedRequest resolve_compile_request(const CompileRequest& request) {
  ResolvedRequest resolved;
  resolved.graph = request.graph.has_value()
                       ? graph_from_json(*request.graph)
                       : zoo::build(request.model, request.input_size);

  resolved.hardware = request.hardware.has_value()
                          ? hardware_from_json(*request.hardware)
                          : HardwareConfig::puma_default();
  if (request.cores > 0) {
    resolved.hardware.core_count = request.cores;
  } else if (!request.hardware.has_value() ||
             !request.hardware->contains("core_count")) {
    // Auto-fit only when the client pinned the core count nowhere — a
    // request-level hardware override of core_count is as explicit as
    // `cores` and must not be silently re-fitted away.
    resolved.hardware = fit_core_count(resolved.graph, resolved.hardware, 3.0);
  }
  resolved.hardware.validate();

  if (!resolved.graph.finalized()) resolved.graph.finalize();
  resolved.fingerprint = combine_fingerprints(fingerprint(resolved.graph),
                                              fingerprint(resolved.hardware));
  return resolved;
}

void CompileServer::handle_compile(
    const std::shared_ptr<Connection>& connection, const Json& json) {
  std::int64_t id = message_id(json);

  // Phase 1 — resolve the request to a session and a scenario batch. Every
  // failure here (malformed request, unknown model, bad hardware) is a
  // request-level error: reported, and the connection lives on.
  struct Prepared {
    std::shared_ptr<SessionEntry> entry;
    std::vector<Scenario> batch;
    bool simulate = true;
    int priority = 0;
    int protocol_version = serve::kProtocolVersion;
    std::chrono::steady_clock::time_point deadline{};
  };
  Prepared prepared;
  try {
    const CompileRequest request = request_from_json(json);
    id = request.id;

    ResolvedRequest resolved = resolve_compile_request(request);

    for (const ScenarioSpec& spec : request.scenarios) {
      Scenario scenario{spec.label, spec.options, std::nullopt};
      if (spec.hardware.has_value()) {
        scenario.hardware =
            hardware_from_json(*spec.hardware, resolved.hardware);
        scenario.hardware->validate();
      }
      prepared.batch.push_back(std::move(scenario));
    }
    prepared.simulate = request.simulate;
    prepared.priority = request.priority;
    prepared.protocol_version = request.protocol_version;
    if (request.deadline_ms > 0) {
      // Anchored at parse time: queueing delay counts against the budget,
      // which is the point — a deadline bounds how stale a reply may be.
      prepared.deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(request.deadline_ms);
    }
    prepared.entry =
        resolve_session(std::move(resolved.graph), resolved.hardware);
  } catch (const std::exception& e) {
    enqueue_frame(*connection, to_json(ErrorMessage{id, e.what()}),
                  /*advisory=*/false);
    return;
  }

  // Phase 2 — every scenario becomes one CompileJob on the shared session.
  // The per-job tag routes streamed observer events to this request; the
  // completion callback (on the session's workers) streams the outcome
  // frames in enqueue order and, after the last one, the done frame. The
  // reader returns to its poll loop immediately: requests from any number
  // of clients interleave at job granularity.
  auto request_state = std::make_shared<RequestState>();
  request_state->connection = connection;
  request_state->entry = prepared.entry;
  request_state->id = id;
  request_state->simulate = prepared.simulate;
  request_state->total = prepared.batch.size();
  request_state->protocol_version = prepared.protocol_version;
  {
    MutexLock lock(connection->mutex);
    connection->requests.erase(
        std::remove_if(connection->requests.begin(),
                       connection->requests.end(),
                       [](const std::weak_ptr<RequestState>& weak) {
                         return weak.expired();
                       }),
        connection->requests.end());
    connection->requests.push_back(request_state);
  }

  for (std::size_t i = 0; i < prepared.batch.size(); ++i) {
    const std::uint64_t tag = prepared.entry->next_tag.fetch_add(1);
    // Route before submit: the first observer event may fire before
    // submit() even returns.
    prepared.entry->router.add(tag, connection, id,
                               prepared.protocol_version);

    JobOptions job_options;
    job_options.index = static_cast<int>(i);
    job_options.tag = tag;
    job_options.priority = prepared.priority;
    job_options.deadline = prepared.deadline;
    job_options.on_complete =
        [this, request_state, tag](const ScenarioOutcome& outcome) {
          on_job_complete(request_state, tag, outcome);
        };
    CompileJob job = prepared.entry->session.submit(
        std::move(prepared.batch[i]), std::move(job_options));
    MutexLock lock(request_state->mutex);
    request_state->jobs.push_back(std::move(job));
  }

  // The client may have died mid-submission (its disconnect ran against a
  // partial job list); sweep once more so none of its jobs outlive it.
  if (connection->broken.load()) cancel_request_jobs(request_state);
}

void CompileServer::on_job_complete(
    const std::shared_ptr<RequestState>& request, std::uint64_t tag,
    const ScenarioOutcome& outcome) {
  request->entry->router.remove(tag);

  OutcomeMessage message;
  message.id = request->id;
  message.label = outcome.label;
  message.index = outcome.index;
  std::optional<Json> artifact;
  // This runs on a session pool worker, where an escaping exception would
  // terminate the whole daemon (ThreadPool's documented task contract) —
  // so serialization failures of any type degrade to an error outcome.
  try {
    if (outcome.ok()) {
      message.ok = true;
      message.compile = compile_result_to_json(*outcome.result);
      if (request->protocol_version >= 4 &&
          outcome.result->stream != nullptr) {
        artifact = outcome.result->stream->to_json();
      }
      // Simulation is skipped for a broken connection: nobody will receive
      // the frame, and the cycles belong to live clients.
      if (request->simulate && !request->connection->broken.load()) {
        try {
          message.simulation = sim_report_to_json(
              request->entry->session.simulate(*outcome.result));
        } catch (const std::exception& e) {
          message.ok = false;
          message.compile = Json();
          message.error = std::string("simulation failed: ") + e.what();
          message.error_kind = to_string(error_kind_of(e));
        }
      }
    } else {
      message.error = outcome.error;
      message.error_kind = to_string(outcome.error_kind);
    }
  } catch (const std::exception& e) {
    message.ok = false;
    message.compile = Json();
    message.simulation = Json();
    message.error = std::string("failed to serialize result: ") + e.what();
    message.error_kind = to_string(ErrorKind::kInternal);
  }

  {
    MutexLock lock(request->mutex);
    (message.ok ? request->ok_count : request->error_count) += 1;
    if (message.ok && artifact.has_value()) {
      // An artifact never accompanies an error outcome (a late simulation
      // failure downgrades the scenario after lowering succeeded).
      request->ready_artifacts.emplace(static_cast<std::size_t>(outcome.index),
                                       std::move(*artifact));
    }
    request->ready.emplace(static_cast<std::size_t>(outcome.index),
                           std::move(message));
    ++request->completed;
  }
  flush_outcomes(request);
}

void CompileServer::flush_outcomes(
    const std::shared_ptr<RequestState>& request) {
  MutexLock emit_lock(request->emit_mutex);
  for (;;) {
    std::optional<OutcomeMessage> message;
    std::optional<Json> artifact;
    bool emit_done = false;
    int ok_count = 0;
    int error_count = 0;
    int artifact_count = 0;
    {
      MutexLock lock(request->mutex);
      const auto it = request->ready.find(request->next_emit);
      if (it != request->ready.end()) {
        message = std::move(it->second);
        request->ready.erase(it);
        const auto art = request->ready_artifacts.find(request->next_emit);
        if (art != request->ready_artifacts.end()) {
          artifact = std::move(art->second);
          request->ready_artifacts.erase(art);
          ++request->artifact_count;
        }
        ++request->next_emit;
      } else if (request->completed == request->total &&
                 request->next_emit == request->total &&
                 !request->done_handled) {
        request->done_handled = true;
        emit_done = true;
        ok_count = request->ok_count;
        error_count = request->error_count;
        artifact_count = request->artifact_count;
      } else {
        return;  // the next frame in order is still compiling
      }
    }

    // This runs on a pool worker, but enqueue_frame never blocks and never
    // throws: the frames land on the connection's outbound queue and the
    // pinned reader pumps them — delivery failures surface through the
    // broken flag (the reader then cancels the request's remaining jobs).
    Connection& connection = *request->connection;
    if (message.has_value()) {
      if (!connection.broken.load()) {
        const std::string label = message->label;
        const int index = message->index;
        enqueue_frame(connection, to_json(*message), /*advisory=*/false);
        if (artifact.has_value()) {
          enqueue_frame(connection,
                        to_json(ArtifactMessage{request->id, label, index,
                                                std::move(*artifact)}),
                        /*advisory=*/false);
        }
      }
      continue;  // keep draining frames that are already in order
    }
    if (!emit_done) return;

    // Terminal done frame: the request is fully answered. A broken
    // connection's request drained (its cancelled jobs completed) but was
    // never answered, so it does not count as served. The counter ticks
    // before the enqueue — a client acting on the done frame must never
    // observe a server that hasn't counted its request yet.
    if (!connection.broken.load()) {
      ++requests_served_;
      enqueue_frame(connection,
                    to_json(DoneMessage{request->id, ok_count, error_count,
                                        artifact_count,
                                        request->protocol_version}),
                    /*advisory=*/false);
    }
    return;
  }
}

void CompileServer::cancel_request_jobs(
    const std::shared_ptr<RequestState>& request) {
  std::vector<CompileJob> jobs;
  {
    MutexLock lock(request->mutex);
    jobs = request->jobs;
  }
  // cancel() outside the request lock: a still-queued job may finalize (and
  // re-enter this request's bookkeeping via its completion callback) on
  // another thread while we iterate.
  for (const CompileJob& job : jobs) {
    if (job.cancel()) ++jobs_cancelled_;
  }
}

void CompileServer::disconnect(const std::shared_ptr<Connection>& connection) {
  connection->broken.store(true);
  connection->channel.shutdown_both();
  std::vector<std::shared_ptr<RequestState>> requests;
  {
    MutexLock lock(connection->mutex);
    for (const std::weak_ptr<RequestState>& weak : connection->requests) {
      if (std::shared_ptr<RequestState> request = weak.lock()) {
        requests.push_back(std::move(request));
      }
    }
    connection->requests.clear();
  }
  for (const std::shared_ptr<RequestState>& request : requests) {
    cancel_request_jobs(request);
  }
}

// ---------------------------------------------------------------------------
// Peer cache + stats requests.
// ---------------------------------------------------------------------------

void CompileServer::handle_cache_get(
    const std::shared_ptr<Connection>& connection, const Json& json) {
  const CacheGetRequest request = cache_get_request_from_json(json);
  CacheResultMessage reply;
  reply.id = request.id;
  reply.key = request.key;
  // Peer lookups are answered from the local disk tier only — never from
  // this daemon's own RemoteStore — so a fleet of mutually peered daemons
  // resolves every miss in exactly one hop, with no forwarding loops.
  if (peer_store_ != nullptr) {
    if (std::optional<CacheHit> hit = peer_store_->load(request.key)) {
      reply.found = true;
      reply.artifact = std::move(hit->entry.artifact);
    }
  }
  enqueue_frame(*connection, to_json(reply), /*advisory=*/false);
}

void CompileServer::handle_cache_put(
    const std::shared_ptr<Connection>& connection, const Json& json) {
  const CachePutRequest request = cache_put_request_from_json(json);
  CacheResultMessage reply;
  reply.id = request.id;
  reply.key = request.key;
  if (peer_store_ != nullptr) {
    CacheEntry entry;
    entry.artifact = request.artifact;
    // DiskStore stamps the schema/key envelope itself and applies the same
    // first-writer-wins rule as a local store; `stored` is false when the
    // key already existed or the artifact was refused.
    reply.stored = peer_store_->store(request.key, entry) != nullptr;
  }
  enqueue_frame(*connection, to_json(reply), /*advisory=*/false);
}

void CompileServer::handle_stats(
    const std::shared_ptr<Connection>& connection, const Json& json) {
  const StatsRequest request = stats_request_from_json(json);
  enqueue_frame(*connection, to_json(StatsMessage{request.id, stats_payload()}),
                /*advisory=*/false);
}

Json CompileServer::stats_payload() const {
  // Snapshot the session entries under the lock, then read their counters
  // outside it: mapping_tier_stats() takes per-store mutexes of its own and
  // must not nest under session_mutex_.
  std::vector<std::shared_ptr<SessionEntry>> entries;
  std::size_t live_sessions = 0;
  {
    MutexLock lock(session_mutex_);
    live_sessions = sessions_.size();
    entries.reserve(sessions_.size() + retired_.size());
    for (const auto& item : sessions_) entries.push_back(item.second);
    for (const auto& entry : retired_) entries.push_back(entry);
  }

  // Fixed tier order; hit/miss/store counters sum across every session
  // (retired sessions' hits happened and still count).
  std::vector<std::string> order{cache_sources::kMemory};
  if (options_.cache.enabled()) order.push_back(cache_sources::kDisk);
  if (options_.cache.remote_enabled()) order.push_back(cache_sources::kRemote);
  std::unordered_map<std::string, CacheStoreStats> totals;
  for (const std::shared_ptr<SessionEntry>& entry : entries) {
    for (const auto& [tier, stats] : entry->session.mapping_tier_stats()) {
      CacheStoreStats& total = totals[tier];
      total.entries += stats.entries;
      total.bytes += stats.bytes;
      total.hits += stats.hits;
      total.misses += stats.misses;
      total.stores += stats.stores;
      total.evictions += stats.evictions;
    }
  }
  if (peer_store_ != nullptr) {
    // Every session's disk tier shares one directory — summing their walks
    // would count each artifact once per session. One authoritative walk.
    const CacheStoreStats disk = peer_store_->stats();
    totals[cache_sources::kDisk].entries = disk.entries;
    totals[cache_sources::kDisk].bytes = disk.bytes;
  }

  Json tiers = Json::array();
  for (const std::string& tier : order) {
    const CacheStoreStats& stats = totals[tier];
    Json row = Json::object();
    row["tier"] = Json(tier);
    row["entries"] = Json(static_cast<std::int64_t>(stats.entries));
    row["bytes"] = Json(static_cast<std::int64_t>(stats.bytes));
    row["hits"] = Json(static_cast<std::int64_t>(stats.hits));
    row["misses"] = Json(static_cast<std::int64_t>(stats.misses));
    row["stores"] = Json(static_cast<std::int64_t>(stats.stores));
    row["evictions"] = Json(static_cast<std::int64_t>(stats.evictions));
    tiers.push_back(std::move(row));
  }

  Json payload = Json::object();
  payload["role"] = Json(std::string("daemon"));
  payload["requests_served"] =
      Json(static_cast<std::int64_t>(requests_served_.load()));
  payload["connections"] =
      Json(static_cast<std::int64_t>(connections_accepted_.load()));
  payload["jobs_cancelled"] =
      Json(static_cast<std::int64_t>(jobs_cancelled_.load()));
  payload["sessions"] = Json(static_cast<std::int64_t>(live_sessions));
  payload["cache"] = std::move(tiers);
  return payload;
}

// ---------------------------------------------------------------------------
// Session registry.
// ---------------------------------------------------------------------------

std::shared_ptr<CompileServer::SessionEntry> CompileServer::resolve_session(
    Graph&& graph, const HardwareConfig& hw) {
  if (!graph.finalized()) graph.finalize();
  const std::uint64_t key =
      combine_fingerprints(fingerprint(graph), fingerprint(hw));

  MutexLock lock(session_mutex_);
  prune_retired_locked();
  const auto it = sessions_.find(key);
  if (it != sessions_.end()) return it->second;

  auto entry =
      std::make_shared<SessionEntry>(std::move(graph), hw, options_.cache);
  entry->session.set_jobs(options_.jobs);
  sessions_.emplace(key, entry);
  session_order_.push_back(key);
  // FIFO eviction keeps a daemon sweeping many models bounded. Evicted
  // entries are parked in retired_ (not dropped): in-flight jobs still
  // reference them through their RequestStates, and the registry must keep
  // the last reference so a session is never destroyed — never joins its
  // own workers — from one of its own worker threads.
  while (sessions_.size() > options_.max_sessions) {
    const auto evicted = sessions_.find(session_order_.front());
    if (evicted != sessions_.end()) {
      retired_.push_back(evicted->second);
      sessions_.erase(evicted);
    }
    session_order_.pop_front();
  }
  return entry;
}

void CompileServer::prune_retired_locked() {
  retired_.erase(
      std::remove_if(retired_.begin(), retired_.end(),
                     [](const std::shared_ptr<SessionEntry>& entry) {
                       // use_count == 1: only the registry holds it — no
                       // job closure, request, or handler can resurrect
                       // it, so destroying here (a server thread) is safe.
                       return entry.use_count() == 1;
                     }),
      retired_.end());
}

// ---------------------------------------------------------------------------
// Daemon frontend.
// ---------------------------------------------------------------------------

void block_shutdown_signals() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

int wait_for_shutdown_signal() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  int signal = 0;
  while (sigwait(&set, &signal) != 0) {
  }
  return signal;
}

int run_daemon(int argc, char** argv, const std::string& program) {
  const auto usage = [&program]() -> int {
    std::cerr << "usage: " << program
              << " (--unix PATH | --port N [--host ADDR])\n"
                 "       [--jobs N|auto] [--readers N] [--max-sessions N]\n"
                 "       [--cache-dir PATH] [--peer ENDPOINT]...\n"
                 "       [--auth-token TOKEN]\n";
    return 2;
  };
  const auto parse_int_flag = [&program](const std::string& flag,
                                         const std::string& token, long long min,
                                         long long max) -> std::optional<int> {
    const std::optional<long long> value = parse_decimal(token);
    if (!value.has_value() || *value < min || *value > max) {
      std::cerr << program << ": " << flag << " wants an integer in [" << min
                << ", " << max << "], got '" << token << "'\n";
      return std::nullopt;
    }
    return static_cast<int>(*value);
  };

  ServerOptions options;
  bool endpoint_given = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--unix" && has_next) {
      options.unix_path = argv[++i];
      endpoint_given = true;
    } else if (arg == "--port" && has_next) {
      const std::optional<int> port = parse_int_flag(arg, argv[++i], 0, 65535);
      if (!port.has_value()) return 2;
      options.port = *port;
      endpoint_given = true;
    } else if (arg == "--host" && has_next) {
      options.host = argv[++i];
    } else if (arg == "--jobs" && has_next) {
      try {
        options.jobs = parse_jobs_flag(argv[++i]);
      } catch (const ServeError& e) {
        std::cerr << program << ": " << e.what() << '\n';
        return 2;
      }
    } else if (arg == "--readers" && has_next) {
      const std::optional<int> readers = parse_int_flag(arg, argv[++i], 1, 64);
      if (!readers.has_value()) return 2;
      options.readers = *readers;
    } else if (arg == "--max-sessions" && has_next) {
      const std::optional<int> max =
          parse_int_flag(arg, argv[++i], 1, 1 << 16);
      if (!max.has_value()) return 2;
      options.max_sessions = static_cast<std::size_t>(*max);
    } else if (arg == "--cache-dir" && has_next) {
      // Persistent mapping cache: previously compiled configurations —
      // including ones from before a restart, or from another daemon on
      // the same directory — are served from disk instead of re-mapped.
      options.cache.dir = argv[++i];
    } else if (arg == "--peer" && has_next) {
      // Repeatable. Each peer is another pimcompd whose disk tier answers
      // this daemon's cache misses over cache_get before anything is
      // re-mapped locally.
      options.cache.peers.push_back(argv[++i]);
    } else if (arg == "--auth-token" && has_next) {
      // One fleet-wide token: enforced on every inbound request, and
      // attached to the outbound peer requests this daemon makes.
      options.auth_token = argv[++i];
      options.cache.auth_token = options.auth_token;
    } else {
      return usage();
    }
  }
  if (!endpoint_given) return usage();

  try {
    // Mask before start() so every server thread inherits it and the
    // signal is only ever consumed by the sigwait below.
    block_shutdown_signals();

    CompileServer server(std::move(options));
    server.start();
    std::cout << program << " listening on " << server.endpoint()
              << std::endl;

    const int signal = wait_for_shutdown_signal();
    std::cout << program << ": caught signal " << signal << ", shutting down"
              << std::endl;
    server.stop();
    std::cout << program << ": served " << server.requests_served()
              << " request(s) over " << server.connections_accepted()
              << " connection(s)" << std::endl;
  } catch (const std::exception& e) {
    std::cerr << program << ": " << e.what() << '\n';
    return 1;
  }
  return 0;
}

int parse_jobs_flag(const std::string& value) {
  if (value == "auto") return 0;  // CompilerSession::set_jobs: 0 = hw threads
  if (value == "0") {
    throw ServeError(
        "--jobs must be >= 1; use '--jobs auto' for one worker per "
        "hardware thread");
  }
  const std::optional<long long> parsed = parse_decimal(value);
  if (!parsed.has_value() || *parsed < 1 || *parsed > (1 << 10)) {
    throw ServeError("--jobs wants 1.." + std::to_string(1 << 10) +
                     " or 'auto', got '" + value + "'");
  }
  return static_cast<int>(*parsed);
}

}  // namespace pimcomp::serve
