#include "serve/server.hpp"

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <exception>
#include <iostream>
#include <optional>
#include <utility>

#include "common/string_util.hpp"
#include "core/compile_report.hpp"
#include "core/compiler.hpp"
#include "graph/serialize.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp::serve {

namespace {

std::string compact(const Json& json) { return json.dump(-1); }

/// Upper bound on any single blocking send to a client. A peer that stops
/// reading for this long is declared gone (its connection drops); progress
/// events never block at all (see the try_write_line sink below).
constexpr int kSendTimeoutSeconds = 30;

std::int64_t message_id(const Json& json) {
  return json.get("id", static_cast<std::int64_t>(0));
}

/// Clears the session observer even when the batch throws, so the next
/// request routed to this session can never stream into our connection.
struct ObserverGuard {
  explicit ObserverGuard(CompilerSession& session) : session(session) {}
  ~ObserverGuard() { session.set_observer(nullptr); }
  CompilerSession& session;
};

}  // namespace

CompileServer::SessionEntry::Turn::Turn(SessionEntry& entry) : entry(entry) {
  std::unique_lock<std::mutex> lock(entry.mutex);
  const std::uint64_t ticket = entry.next_ticket++;
  entry.turn.wait(lock, [&] { return entry.serving == ticket; });
}

CompileServer::SessionEntry::Turn::~Turn() {
  {
    std::lock_guard<std::mutex> lock(entry.mutex);
    ++entry.serving;
  }
  entry.turn.notify_all();
}

CompileServer::CompileServer(ServerOptions options)
    : options_(std::move(options)) {
  options_.max_sessions = std::max<std::size_t>(options_.max_sessions, 1);
}

CompileServer::~CompileServer() { stop(); }

void CompileServer::start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (running_) throw ServeError("compile server is already running");
  if (!options_.unix_path.empty()) {
    listener_ = listen_unix(options_.unix_path);
    bound_port_ = 0;
  } else {
    listener_ = listen_tcp(options_.host, options_.port, &bound_port_);
  }
  accept_stop_ = false;
  stop_requested_ = false;
  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void CompileServer::stop() {
  {
    std::unique_lock<std::mutex> lock(lifecycle_mutex_);
    if (!running_) return;
    if (stop_requested_) {
      // Another thread is tearing down; wait for it to finish.
      stopped_.wait(lock, [this] { return !running_; });
      return;
    }
    stop_requested_ = true;
  }

  accept_stop_ = true;
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();

  // Unblock handler threads sitting in read_line(); their in-flight
  // compilations finish, their final writes fail fast, and they exit.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const std::weak_ptr<LineChannel>& weak : live_channels_) {
      if (std::shared_ptr<LineChannel> channel = weak.lock()) {
        channel->shutdown_both();
      }
    }
    threads.swap(connection_threads_);
    live_channels_.clear();
    finished_ids_.clear();
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  {
    // The threads just joined pushed their ids into finished_ids_ on exit
    // (after the clear above). Drop them: a stale id surviving into a
    // restarted server could alias a reused thread id and make
    // reap_finished_locked() join a live connection.
    std::lock_guard<std::mutex> lock(conn_mutex_);
    finished_ids_.clear();
  }

  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());

  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    running_ = false;
  }
  stopped_.notify_all();
}

void CompileServer::wait() {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  stopped_.wait(lock, [this] { return !running_; });
}

std::string CompileServer::endpoint() const {
  if (!options_.unix_path.empty()) return "unix:" + options_.unix_path;
  return options_.host + ":" + std::to_string(bound_port_);
}

std::size_t CompileServer::session_count() const {
  std::lock_guard<std::mutex> lock(session_mutex_);
  return sessions_.size();
}

void CompileServer::accept_loop() {
  for (;;) {
    std::optional<Socket> socket;
    try {
      socket = accept_connection(listener_, &accept_stop_);
    } catch (const ServeError&) {
      break;  // listener torn down underneath us
    }
    if (!socket.has_value()) break;
    ++connections_accepted_;

    socket->set_send_timeout(kSendTimeoutSeconds);
    auto channel = std::make_shared<LineChannel>(std::move(*socket));
    std::lock_guard<std::mutex> lock(conn_mutex_);
    reap_finished_locked();
    live_channels_.push_back(channel);
    connection_threads_.emplace_back([this, channel] {
      handle_connection(channel);
      std::lock_guard<std::mutex> done_lock(conn_mutex_);
      finished_ids_.push_back(std::this_thread::get_id());
    });
  }
}

void CompileServer::reap_finished_locked() {
  for (const std::thread::id id : finished_ids_) {
    const auto it = std::find_if(
        connection_threads_.begin(), connection_threads_.end(),
        [id](const std::thread& thread) { return thread.get_id() == id; });
    if (it != connection_threads_.end()) {
      it->join();
      connection_threads_.erase(it);
    }
  }
  finished_ids_.clear();
  live_channels_.erase(
      std::remove_if(live_channels_.begin(), live_channels_.end(),
                     [](const std::weak_ptr<LineChannel>& weak) {
                       return weak.expired();
                     }),
      live_channels_.end());
}

void CompileServer::handle_connection(std::shared_ptr<LineChannel> channel) {
  for (;;) {
    std::optional<std::string> line;
    try {
      line = channel->read_line();
    } catch (const ServeError&) {
      return;  // read error or oversized frame: drop the connection
    }
    if (!line.has_value()) return;  // clean EOF
    if (line->empty()) continue;

    Json json;
    try {
      json = Json::parse(*line);
    } catch (const JsonError& e) {
      // Line framing keeps the stream synchronized, so a malformed document
      // is a request-level error, not a connection killer.
      try {
        channel->write_line(
            compact(to_json(ErrorMessage{0, std::string("bad json: ") +
                                                e.what()})));
      } catch (const ServeError&) {
        return;
      }
      continue;
    }

    const std::string type = json.get("type", std::string("compile"));
    try {
      if (type == "ping") {
        channel->write_line(compact(to_json(PongMessage{message_id(json)})));
      } else if (type == "compile") {
        handle_compile(*channel, json);
      } else {
        channel->write_line(compact(to_json(
            ErrorMessage{message_id(json),
                         "unknown request type '" + type + "'"})));
      }
    } catch (const ServeError&) {
      return;  // write failed: the peer is gone
    } catch (const std::exception& e) {
      // Nothing a request does may take the daemon down: an exception that
      // slipped through handle_compile's own handlers becomes a
      // request-level error, and only a failing write drops the connection.
      try {
        channel->write_line(
            compact(to_json(ErrorMessage{message_id(json), e.what()})));
      } catch (const ServeError&) {
        return;
      }
    }
  }
}

void CompileServer::handle_compile(LineChannel& channel, const Json& json) {
  std::int64_t id = message_id(json);

  // Phase 1 — resolve the request to a session and a scenario batch. Every
  // failure here (malformed request, unknown model, bad hardware) is a
  // request-level error: reported, and the connection lives on.
  struct Prepared {
    std::shared_ptr<SessionEntry> entry;
    std::vector<Scenario> batch;
    bool simulate = true;
  };
  Prepared prepared;
  try {
    const CompileRequest request = request_from_json(json);
    id = request.id;

    Graph graph = request.graph.has_value()
                      ? graph_from_json(*request.graph)
                      : zoo::build(request.model, request.input_size);

    HardwareConfig hw = request.hardware.has_value()
                            ? hardware_from_json(*request.hardware)
                            : HardwareConfig::puma_default();
    if (request.cores > 0) {
      hw.core_count = request.cores;
    } else if (!request.hardware.has_value() ||
               !request.hardware->contains("core_count")) {
      // Auto-fit only when the client pinned the core count nowhere — a
      // request-level hardware override of core_count is as explicit as
      // `cores` and must not be silently re-fitted away.
      hw = fit_core_count(graph, hw, 3.0);
    }
    hw.validate();

    for (const ScenarioSpec& spec : request.scenarios) {
      Scenario scenario{spec.label, spec.options, std::nullopt};
      if (spec.hardware.has_value()) {
        scenario.hardware = hardware_from_json(*spec.hardware, hw);
        scenario.hardware->validate();
      }
      prepared.batch.push_back(std::move(scenario));
    }
    prepared.simulate = request.simulate;
    prepared.entry = resolve_session(std::move(graph), hw);
  } catch (const std::exception& e) {
    channel.write_line(compact(to_json(ErrorMessage{id, e.what()})));
    return;
  }

  // Phase 2 — run the batch through the shared session, streaming observer
  // callbacks to the client as they happen. Two isolation rules keep one
  // client from hurting the others: a client that disconnects mid-stream
  // must not fail the compilation (another request may be queued behind it
  // on the same caches), so write failures flip `broken` and the batch runs
  // to completion silently; and a client that merely reads slowly must not
  // stall the pipeline (these callbacks run while the session turn is
  // held), so events are best-effort — try_write_line drops an event
  // instead of blocking when the peer's buffer is full.
  std::atomic<bool> broken{false};
  EventBridge bridge([&](const PipelineEvent& event) {
    if (broken.load(std::memory_order_relaxed)) return;
    try {
      channel.try_write_line(compact(to_json(EventMessage{id, event})));
    } catch (const ServeError&) {
      broken.store(true, std::memory_order_relaxed);
    }
  });

  CompilerSession& session = prepared.entry->session;
  std::vector<ScenarioOutcome> outcomes;
  try {
    SessionEntry::Turn turn(*prepared.entry);
    ObserverGuard guard(session);
    session.set_observer(&bridge);
    for (Scenario& scenario : prepared.batch) {
      session.enqueue(std::move(scenario));
    }
    outcomes = session.compile_all();
  } catch (const std::exception& e) {
    // compile_all() never throws for a scenario failure; reaching this is a
    // batch-level breakdown (e.g. allocation failure).
    channel.write_line(compact(to_json(ErrorMessage{id, e.what()})));
    return;
  }

  if (broken.load()) {
    // The event stream already failed: the peer is gone or stopped reading,
    // and a timed-out send may have cut a frame mid-line, so the byte
    // stream is no longer trustworthy. Drop the connection now — the
    // client gets EOF and a clean "connection closed" error instead of
    // waiting forever for outcome frames — and skip the per-scenario
    // simulations nobody will receive.
    channel.shutdown_both();
    return;
  }

  // Phase 3 — per-scenario outcomes, then the terminal done record. The
  // turn is already released: serializing JSON and simulating happen off
  // the session's request queue.
  int ok_count = 0;
  int error_count = 0;
  std::vector<OutcomeMessage> messages;
  for (const ScenarioOutcome& outcome : outcomes) {
    OutcomeMessage message;
    message.id = id;
    message.label = outcome.label;
    message.index = outcome.index;
    if (outcome.ok()) {
      message.ok = true;
      message.compile = compile_result_to_json(*outcome.result);
      if (prepared.simulate) {
        try {
          message.simulation =
              sim_report_to_json(session.simulate(*outcome.result));
        } catch (const std::exception& e) {
          message.ok = false;
          message.compile = Json();
          message.error = std::string("simulation failed: ") + e.what();
        }
      }
    } else {
      message.error = outcome.error;
    }
    (message.ok ? ok_count : error_count) += 1;
    messages.push_back(std::move(message));
  }

  for (const OutcomeMessage& message : messages) {
    channel.write_line(compact(to_json(message)));
  }
  channel.write_line(compact(to_json(DoneMessage{id, ok_count, error_count})));
  ++requests_served_;
}

std::shared_ptr<CompileServer::SessionEntry> CompileServer::resolve_session(
    Graph&& graph, const HardwareConfig& hw) {
  if (!graph.finalized()) graph.finalize();
  const std::uint64_t key =
      combine_fingerprints(fingerprint(graph), fingerprint(hw));

  std::lock_guard<std::mutex> lock(session_mutex_);
  const auto it = sessions_.find(key);
  if (it != sessions_.end()) return it->second;

  auto entry = std::make_shared<SessionEntry>(std::move(graph), hw);
  entry->session.set_jobs(options_.jobs);
  sessions_.emplace(key, entry);
  session_order_.push_back(key);
  // FIFO eviction keeps a daemon sweeping many models bounded; entries held
  // by in-flight requests stay alive through their shared_ptr.
  while (sessions_.size() > options_.max_sessions) {
    sessions_.erase(session_order_.front());
    session_order_.pop_front();
  }
  return entry;
}

void block_shutdown_signals() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

int wait_for_shutdown_signal() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  int signal = 0;
  while (sigwait(&set, &signal) != 0) {
  }
  return signal;
}

int run_daemon(int argc, char** argv, const std::string& program) {
  const auto usage = [&program]() -> int {
    std::cerr << "usage: " << program
              << " (--unix PATH | --port N [--host ADDR])\n"
                 "       [--jobs N|auto] [--max-sessions N]\n";
    return 2;
  };
  const auto parse_int_flag = [&program](const std::string& flag,
                                         const std::string& token, long long min,
                                         long long max) -> std::optional<int> {
    const std::optional<long long> value = parse_decimal(token);
    if (!value.has_value() || *value < min || *value > max) {
      std::cerr << program << ": " << flag << " wants an integer in [" << min
                << ", " << max << "], got '" << token << "'\n";
      return std::nullopt;
    }
    return static_cast<int>(*value);
  };

  ServerOptions options;
  bool endpoint_given = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--unix" && has_next) {
      options.unix_path = argv[++i];
      endpoint_given = true;
    } else if (arg == "--port" && has_next) {
      const std::optional<int> port = parse_int_flag(arg, argv[++i], 0, 65535);
      if (!port.has_value()) return 2;
      options.port = *port;
      endpoint_given = true;
    } else if (arg == "--host" && has_next) {
      options.host = argv[++i];
    } else if (arg == "--jobs" && has_next) {
      try {
        options.jobs = parse_jobs_flag(argv[++i]);
      } catch (const ServeError& e) {
        std::cerr << program << ": " << e.what() << '\n';
        return 2;
      }
    } else if (arg == "--max-sessions" && has_next) {
      const std::optional<int> max =
          parse_int_flag(arg, argv[++i], 1, 1 << 16);
      if (!max.has_value()) return 2;
      options.max_sessions = static_cast<std::size_t>(*max);
    } else {
      return usage();
    }
  }
  if (!endpoint_given) return usage();

  try {
    // Mask before start() so every server thread inherits it and the
    // signal is only ever consumed by the sigwait below.
    block_shutdown_signals();

    CompileServer server(std::move(options));
    server.start();
    std::cout << program << " listening on " << server.endpoint()
              << std::endl;

    const int signal = wait_for_shutdown_signal();
    std::cout << program << ": caught signal " << signal << ", shutting down"
              << std::endl;
    server.stop();
    std::cout << program << ": served " << server.requests_served()
              << " request(s) over " << server.connections_accepted()
              << " connection(s)" << std::endl;
  } catch (const std::exception& e) {
    std::cerr << program << ": " << e.what() << '\n';
    return 1;
  }
  return 0;
}

int parse_jobs_flag(const std::string& value) {
  if (value == "auto") return 0;  // CompilerSession::set_jobs: 0 = hw threads
  if (value == "0") {
    throw ServeError(
        "--jobs must be >= 1; use '--jobs auto' for one worker per "
        "hardware thread");
  }
  const std::optional<long long> parsed = parse_decimal(value);
  if (!parsed.has_value() || *parsed < 1 || *parsed > (1 << 10)) {
    throw ServeError("--jobs wants 1.." + std::to_string(1 << 10) +
                     " or 'auto', got '" + value + "'");
  }
  return static_cast<int>(*parsed);
}

}  // namespace pimcomp::serve
