#ifndef PIMCOMP_SERVE_NET_HPP
#define PIMCOMP_SERVE_NET_HPP

#include <atomic>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace pimcomp::serve {

/// Raised on socket / framing failures in the serving subsystem (bind,
/// connect, broken pipe, oversized frame, protocol violations).
class ServeError : public Error {
 public:
  explicit ServeError(const std::string& message) : Error(message) {}
};

/// RAII file descriptor. Move-only; closing is idempotent.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  void close();

  /// shutdown(SHUT_RDWR): unblocks a peer thread sitting in recv()/accept()
  /// on this descriptor without racing its eventual close().
  void shutdown_both();

  /// SO_SNDTIMEO: bounds every send() so a peer that stops reading turns
  /// into a ServeError after `seconds` instead of blocking a writer forever.
  void set_send_timeout(int seconds);

  /// SO_RCVTIMEO: bounds every blocking recv() so a peer that stops sending
  /// turns into a "receive timed out" ServeError after `seconds` (the
  /// client-side `--timeout` knob).
  void set_recv_timeout(int seconds);

 private:
  int fd_ = -1;
};

/// Listener factories. `listen_unix` removes a stale socket file at `path`
/// first (a previous daemon that died without cleanup); `listen_tcp` binds
/// `host:port` and reports the actually-bound port (ephemeral port 0
/// resolution) through `bound_port` when non-null. Both throw ServeError.
Socket listen_unix(const std::string& path);
Socket listen_tcp(const std::string& host, int port, int* bound_port = nullptr);

/// Client-side connection factories; throw ServeError when nothing listens.
Socket connect_unix(const std::string& path);
Socket connect_tcp(const std::string& host, int port);

/// Connects to "unix:PATH" or "HOST:PORT" (bare ":PORT" means 127.0.0.1).
/// The one endpoint grammar shared by the CLI, the remote cache tier, and
/// the router's backend list. Throws ServeError on malformed endpoints or
/// connection failures.
Socket connect_endpoint(const std::string& endpoint);

/// Timing-safe string comparison for auth tokens: runs in time dependent
/// only on the lengths, never on where the bytes first differ, so an
/// attacker cannot binary-search a token byte by byte off response latency.
bool constant_time_equal(const std::string& a, const std::string& b);

/// Blocking accept with periodic wakeups: returns the next connection, or
/// std::nullopt when `*stop` became true (polled every ~100ms) or the
/// listener was shut down. Throws ServeError on unexpected accept failures.
std::optional<Socket> accept_connection(const Socket& listener,
                                        const std::atomic<bool>* stop);

/// Newline-delimited message framing over a connected socket: one complete
/// JSON document per line, which is what makes the protocol scriptable with
/// nc/socat. Reads are buffered and single-threaded (the connection's
/// handler thread); writes are mutex-serialized so a compile worker
/// streaming events and the handler writing outcomes never interleave
/// partial lines.
class LineChannel {
 public:
  explicit LineChannel(Socket socket) : socket_(std::move(socket)) {}

  /// Next complete line without its trailing '\n'; std::nullopt on clean
  /// EOF. Throws ServeError on read errors, receive timeouts (when a recv
  /// timeout is set), or lines above kMaxLineBytes (a malformed peer must
  /// not make the server buffer unboundedly).
  std::optional<std::string> read_line();

  /// Non-blocking half of read_line() for multiplexed readers: performs one
  /// MSG_DONTWAIT recv() into the buffer — call it after poll(2) reported
  /// readability. Returns false on clean EOF (a spurious wakeup with no
  /// data returns true with nothing buffered). Throws ServeError on read
  /// errors or an oversized buffered frame.
  bool fill_from_socket();

  /// Extracts the next complete buffered line without touching the socket;
  /// std::nullopt when no full line is buffered yet. Pair with
  /// fill_from_socket() in a poll loop.
  std::optional<std::string> take_line();

  /// See Socket::set_recv_timeout (affects blocking read_line() only).
  void set_recv_timeout(int seconds) { socket_.set_recv_timeout(seconds); }

  /// Writes `line` plus a trailing '\n' atomically with respect to other
  /// write_line() callers. Throws ServeError when the peer is gone (or,
  /// with a send timeout set, has stopped reading).
  void write_line(const std::string& line) PIMCOMP_EXCLUDES(write_mutex_);

  /// Unblocks a read_line() in progress on another thread.
  void shutdown_both() { socket_.shutdown_both(); }

  int fd() const { return socket_.fd(); }

  /// 64 MiB: far above any real request (graphs are ~100 KB) yet small
  /// enough to bound a hostile peer's memory cost.
  static constexpr std::size_t kMaxLineBytes = 64u << 20;

 private:
  void write_locked(const std::string& line) PIMCOMP_REQUIRES(write_mutex_);

  Socket socket_;
  /// Read-side accumulation. Deliberately unguarded: reads are owned by a
  /// single thread at a time (the connection's reader), per the class
  /// contract above — only writes are cross-thread.
  std::string buffer_;
  Mutex write_mutex_;
};

}  // namespace pimcomp::serve

#endif  // PIMCOMP_SERVE_NET_HPP
