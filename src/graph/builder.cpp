#include "graph/builder.hpp"

#include "common/error.hpp"
#include "graph/shape_inference.hpp"

namespace pimcomp {

GraphBuilder::GraphBuilder(std::string name, TensorShape input_shape)
    : graph_(std::move(name)) {
  PIMCOMP_CHECK(input_shape.valid(), "input shape must be positive");
  Node in;
  in.type = OpType::kInput;
  in.name = "input";
  in.output_shape = input_shape;
  graph_.add_node(std::move(in));
}

NodeId GraphBuilder::append(Node node) {
  PIMCOMP_CHECK(!built_, "GraphBuilder reused after build()");
  return graph_.add_node(std::move(node));
}

NodeId GraphBuilder::conv(NodeId in, int out_channels, int kernel, int stride,
                          int padding, const std::string& name) {
  return conv_rect(in, out_channels, kernel, kernel, stride, padding, padding,
                   name);
}

NodeId GraphBuilder::conv_rect(NodeId in, int out_channels, int kernel_h,
                               int kernel_w, int stride, int padding_h,
                               int padding_w, const std::string& name) {
  Node n;
  n.type = OpType::kConv;
  n.name = name;
  n.inputs = {in};
  n.conv = {out_channels, kernel_h, kernel_w, stride, padding_h, padding_w};
  return append(std::move(n));
}

NodeId GraphBuilder::conv_relu(NodeId in, int out_channels, int kernel,
                               int stride, int padding,
                               const std::string& name) {
  const NodeId c = conv(in, out_channels, kernel, stride, padding, name);
  return relu(c, name.empty() ? "" : name + "_relu");
}

NodeId GraphBuilder::relu(NodeId in, const std::string& name) {
  Node n;
  n.type = OpType::kRelu;
  n.name = name;
  n.inputs = {in};
  return append(std::move(n));
}

NodeId GraphBuilder::max_pool(NodeId in, int kernel, int stride, int padding,
                              const std::string& name) {
  Node n;
  n.type = OpType::kPool;
  n.name = name;
  n.inputs = {in};
  n.pool = {PoolKind::kMax, kernel, stride, padding};
  return append(std::move(n));
}

NodeId GraphBuilder::avg_pool(NodeId in, int kernel, int stride, int padding,
                              const std::string& name) {
  Node n;
  n.type = OpType::kPool;
  n.name = name;
  n.inputs = {in};
  n.pool = {PoolKind::kAverage, kernel, stride, padding};
  return append(std::move(n));
}

NodeId GraphBuilder::global_avg_pool(NodeId in, const std::string& name) {
  Node n;
  n.type = OpType::kPool;
  n.name = name;
  n.inputs = {in};
  n.pool = {PoolKind::kGlobalAverage, 0, 1, 0};
  return append(std::move(n));
}

NodeId GraphBuilder::concat(const std::vector<NodeId>& ins,
                            const std::string& name) {
  Node n;
  n.type = OpType::kConcat;
  n.name = name;
  n.inputs = ins;
  return append(std::move(n));
}

NodeId GraphBuilder::eltwise_add(NodeId a, NodeId b, const std::string& name) {
  Node n;
  n.type = OpType::kEltwise;
  n.name = name;
  n.inputs = {a, b};
  n.eltwise = {EltwiseKind::kAdd};
  return append(std::move(n));
}

NodeId GraphBuilder::flatten(NodeId in, const std::string& name) {
  Node n;
  n.type = OpType::kFlatten;
  n.name = name;
  n.inputs = {in};
  return append(std::move(n));
}

NodeId GraphBuilder::fc(NodeId in, int units, const std::string& name) {
  Node n;
  n.type = OpType::kFC;
  n.name = name;
  n.inputs = {in};
  n.fc_units = units;
  return append(std::move(n));
}

NodeId GraphBuilder::fc_relu(NodeId in, int units, const std::string& name) {
  const NodeId f = fc(in, units, name);
  return relu(f, name.empty() ? "" : name + "_relu");
}

NodeId GraphBuilder::softmax(NodeId in, const std::string& name) {
  Node n;
  n.type = OpType::kSoftmax;
  n.name = name;
  n.inputs = {in};
  return append(std::move(n));
}

TensorShape GraphBuilder::shape_of(NodeId id) const {
  // Incremental inference: shapes are needed while building (e.g. to size FC
  // layers after pooling), so run inference over the prefix on demand.
  Graph copy = graph_;
  infer_shapes(copy);
  return copy.node(id).output_shape;
}

Graph GraphBuilder::build() {
  PIMCOMP_CHECK(!built_, "GraphBuilder reused after build()");
  built_ = true;
  graph_.finalize();
  return std::move(graph_);
}

}  // namespace pimcomp
