#include "graph/node.hpp"

#include <sstream>

namespace pimcomp {

std::string Node::to_string() const {
  std::ostringstream oss;
  oss << "#" << id << " " << name << " [" << pimcomp::to_string(type) << "]";
  switch (type) {
    case OpType::kConv:
      oss << " k=" << conv.kernel_h << "x" << conv.kernel_w
          << " s=" << conv.stride << " p=" << conv.padding_h << "/"
          << conv.padding_w << " cout=" << conv.out_channels;
      break;
    case OpType::kFC:
      oss << " units=" << fc_units;
      break;
    case OpType::kPool:
      oss << " " << pimcomp::to_string(pool.kind);
      if (pool.kind != PoolKind::kGlobalAverage) {
        oss << " k=" << pool.kernel << " s=" << pool.stride
            << " p=" << pool.padding;
      }
      break;
    case OpType::kEltwise:
      oss << " " << pimcomp::to_string(eltwise.kind);
      break;
    default:
      break;
  }
  oss << " -> " << output_shape.to_string();
  return oss.str();
}

}  // namespace pimcomp
