#ifndef PIMCOMP_GRAPH_TENSOR_HPP
#define PIMCOMP_GRAPH_TENSOR_HPP

#include <cstdint>
#include <string>

namespace pimcomp {

/// Shape of a single-inference activation tensor in CHW layout (the batch
/// dimension is always 1: the compiler reasons about one inference; batching
/// is expressed by the HT pipeline, not by tensor shapes).
struct TensorShape {
  int channels = 0;
  int height = 0;
  int width = 0;

  constexpr TensorShape() = default;
  constexpr TensorShape(int c, int h, int w)
      : channels(c), height(h), width(w) {}

  /// Total element count.
  std::int64_t elements() const {
    return static_cast<std::int64_t>(channels) * height * width;
  }

  /// Size in bytes for the given activation precision.
  std::int64_t bytes(int bits_per_element) const {
    return elements() * bits_per_element / 8;
  }

  /// A shape is valid when every extent is positive.
  bool valid() const { return channels > 0 && height > 0 && width > 0; }

  bool operator==(const TensorShape& other) const = default;

  /// "CxHxW" debug form.
  std::string to_string() const;
};

}  // namespace pimcomp

#endif  // PIMCOMP_GRAPH_TENSOR_HPP
