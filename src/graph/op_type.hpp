#ifndef PIMCOMP_GRAPH_OP_TYPE_HPP
#define PIMCOMP_GRAPH_OP_TYPE_HPP

#include <string>

namespace pimcomp {

/// Operator set covered by the compiler. CONV and FC lower to crossbar MVMs
/// (the paper's node partitioning targets); the rest execute on the VFU or
/// are realized through local-memory addressing (CONCAT/FLATTEN).
enum class OpType {
  kInput,      ///< graph entry; produces the inference input tensor
  kConv,       ///< 2-D convolution (mapped to crossbars)
  kFC,         ///< fully connected / GEMM (mapped to crossbars)
  kPool,       ///< max or average pooling (VFU)
  kRelu,       ///< rectified linear activation (VFU)
  kConcat,     ///< channel-wise concatenation (local memory)
  kEltwise,    ///< element-wise add/mul, e.g. residual connections (VFU)
  kFlatten,    ///< reshape to a vector (local memory)
  kSoftmax,    ///< final classifier normalization (VFU)
};

/// Pooling flavours.
enum class PoolKind { kMax, kAverage, kGlobalAverage };

/// Element-wise flavours.
enum class EltwiseKind { kAdd, kMul };

/// Canonical lower-case name used in serialized graphs and reports.
std::string to_string(OpType type);
std::string to_string(PoolKind kind);
std::string to_string(EltwiseKind kind);

/// Parses the canonical names; throws GraphError on unknown input.
OpType op_type_from_string(const std::string& name);
PoolKind pool_kind_from_string(const std::string& name);
EltwiseKind eltwise_kind_from_string(const std::string& name);

/// True for operators whose weights are programmed into crossbars and that
/// therefore go through node partitioning (CONV and FC).
bool is_crossbar_op(OpType type);

/// True for operators executed by the vector functional unit.
bool is_vector_op(OpType type);

}  // namespace pimcomp

#endif  // PIMCOMP_GRAPH_OP_TYPE_HPP
