#include "graph/serialize.hpp"

#include "common/error.hpp"

namespace pimcomp {

Json graph_to_json(const Graph& graph) {
  Json root = Json::object();
  root["name"] = graph.name();
  const TensorShape in = graph.node(0).output_shape;
  Json input = Json::array();
  input.push_back(in.channels);
  input.push_back(in.height);
  input.push_back(in.width);
  root["input"] = std::move(input);

  Json nodes = Json::array();
  for (const Node& n : graph.nodes()) {
    if (n.type == OpType::kInput) continue;
    Json jn = Json::object();
    jn["name"] = n.name;
    jn["op"] = to_string(n.type);
    Json inputs = Json::array();
    for (NodeId id : n.inputs) inputs.push_back(id);
    jn["inputs"] = std::move(inputs);
    switch (n.type) {
      case OpType::kConv: {
        jn["out_channels"] = n.conv.out_channels;
        Json kernel = Json::array();
        kernel.push_back(n.conv.kernel_h);
        kernel.push_back(n.conv.kernel_w);
        jn["kernel"] = std::move(kernel);
        jn["stride"] = n.conv.stride;
        Json padding = Json::array();
        padding.push_back(n.conv.padding_h);
        padding.push_back(n.conv.padding_w);
        jn["padding"] = std::move(padding);
        break;
      }
      case OpType::kFC:
        jn["units"] = n.fc_units;
        break;
      case OpType::kPool:
        jn["kind"] = to_string(n.pool.kind);
        if (n.pool.kind != PoolKind::kGlobalAverage) {
          jn["kernel_size"] = n.pool.kernel;
          jn["stride"] = n.pool.stride;
          jn["padding"] = n.pool.padding;
        }
        break;
      case OpType::kEltwise:
        jn["kind"] = to_string(n.eltwise.kind);
        break;
      default:
        break;
    }
    nodes.push_back(std::move(jn));
  }
  root["nodes"] = std::move(nodes);
  return root;
}

Graph graph_from_json(const Json& json) {
  Graph graph(json.get("name", std::string("unnamed")));

  const Json& input = json.at("input");
  if (!input.is_array() || input.size() != 3) {
    throw GraphError("graph json: 'input' must be [C, H, W]");
  }
  Node in;
  in.type = OpType::kInput;
  in.name = "input";
  in.output_shape = {static_cast<int>(input.at(0).as_int()),
                     static_cast<int>(input.at(1).as_int()),
                     static_cast<int>(input.at(2).as_int())};
  graph.add_node(std::move(in));

  const Json& nodes = json.at("nodes");
  if (!nodes.is_array()) throw GraphError("graph json: 'nodes' must be array");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Json& jn = nodes.at(i);
    Node n;
    n.name = jn.get("name", std::string());
    n.type = op_type_from_string(jn.at("op").as_string());
    const Json& inputs = jn.at("inputs");
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      n.inputs.push_back(static_cast<NodeId>(inputs.at(k).as_int()));
    }
    switch (n.type) {
      case OpType::kInput:
        throw GraphError("graph json: extra input node in 'nodes'");
      case OpType::kConv: {
        n.conv.out_channels = jn.get("out_channels", 0);
        const Json& kernel = jn.at("kernel");
        n.conv.kernel_h = static_cast<int>(kernel.at(0).as_int());
        n.conv.kernel_w = static_cast<int>(kernel.at(1).as_int());
        n.conv.stride = jn.get("stride", 1);
        if (jn.contains("padding")) {
          const Json& padding = jn.at("padding");
          if (padding.is_array()) {
            n.conv.padding_h = static_cast<int>(padding.at(0).as_int());
            n.conv.padding_w = static_cast<int>(padding.at(1).as_int());
          } else {
            n.conv.padding_h = static_cast<int>(padding.as_int());
            n.conv.padding_w = n.conv.padding_h;
          }
        }
        break;
      }
      case OpType::kFC:
        n.fc_units = jn.get("units", 0);
        break;
      case OpType::kPool:
        n.pool.kind = pool_kind_from_string(jn.get("kind", std::string("max")));
        n.pool.kernel = jn.get("kernel_size", 0);
        n.pool.stride = jn.get("stride", 1);
        n.pool.padding = jn.get("padding", 0);
        break;
      case OpType::kEltwise:
        n.eltwise.kind =
            eltwise_kind_from_string(jn.get("kind", std::string("add")));
        break;
      default:
        break;
    }
    graph.add_node(std::move(n));
  }
  graph.finalize();
  return graph;
}

void save_graph(const Graph& graph, const std::string& path) {
  json_to_file(graph_to_json(graph), path);
}

Graph load_graph(const std::string& path) {
  return graph_from_json(json_from_file(path));
}

}  // namespace pimcomp
