#include "graph/tensor.hpp"

#include <sstream>

namespace pimcomp {

std::string TensorShape::to_string() const {
  std::ostringstream oss;
  oss << channels << "x" << height << "x" << width;
  return oss.str();
}

}  // namespace pimcomp
