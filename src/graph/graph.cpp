#include "graph/graph.hpp"

#include <sstream>

#include "common/error.hpp"
#include "graph/shape_inference.hpp"

namespace pimcomp {

NodeId Graph::add_node(Node node) {
  PIMCOMP_CHECK(!finalized_, "cannot add nodes to a finalized graph");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  for (NodeId input : node.inputs) {
    if (input < 0 || input >= id) {
      throw GraphError("node '" + node.name +
                       "' references out-of-order input id " +
                       std::to_string(input));
    }
  }
  node.id = id;
  if (node.name.empty()) {
    node.name = pimcomp::to_string(node.type) + "_" + std::to_string(id);
  }
  nodes_.push_back(std::move(node));
  return id;
}

const Node& Graph::node(NodeId id) const {
  PIMCOMP_ASSERT(id >= 0 && id < node_count(), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

Node& Graph::mutable_node(NodeId id) {
  PIMCOMP_ASSERT(id >= 0 && id < node_count(), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

const std::vector<NodeId>& Graph::consumers(NodeId id) const {
  PIMCOMP_ASSERT(finalized_, "consumers() requires a finalized graph");
  PIMCOMP_ASSERT(id >= 0 && id < node_count(), "node id out of range");
  return consumers_[static_cast<std::size_t>(id)];
}

void Graph::finalize() {
  if (finalized_) return;
  if (nodes_.empty()) throw GraphError("graph '" + name_ + "' has no nodes");
  if (nodes_[0].type != OpType::kInput) {
    throw GraphError("node 0 must be the input node");
  }
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].type == OpType::kInput) {
      throw GraphError("graph has more than one input node");
    }
    if (nodes_[i].inputs.empty()) {
      throw GraphError("node '" + nodes_[i].name + "' has no inputs");
    }
  }

  infer_shapes(*this);

  consumers_.assign(nodes_.size(), {});
  for (const Node& n : nodes_) {
    for (NodeId input : n.inputs) {
      consumers_[static_cast<std::size_t>(input)].push_back(n.id);
    }
  }
  sinks_.clear();
  for (const Node& n : nodes_) {
    if (consumers_[static_cast<std::size_t>(n.id)].empty()) {
      sinks_.push_back(n.id);
    }
  }
  finalized_ = true;
}

std::int64_t Graph::total_weight_params() const {
  std::int64_t total = 0;
  for (const Node& n : nodes_) total += n.weight_params;
  return total;
}

std::int64_t Graph::total_macs() const {
  std::int64_t total = 0;
  for (const Node& n : nodes_) total += n.macs;
  return total;
}

int Graph::crossbar_node_count() const {
  int count = 0;
  for (const Node& n : nodes_) {
    if (n.is_crossbar()) ++count;
  }
  return count;
}

std::string Graph::to_string() const {
  std::ostringstream oss;
  oss << "graph '" << name_ << "' (" << nodes_.size() << " nodes)\n";
  for (const Node& n : nodes_) oss << "  " << n.to_string() << '\n';
  return oss.str();
}

}  // namespace pimcomp
