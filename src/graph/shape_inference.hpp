#ifndef PIMCOMP_GRAPH_SHAPE_INFERENCE_HPP
#define PIMCOMP_GRAPH_SHAPE_INFERENCE_HPP

#include "graph/tensor.hpp"

namespace pimcomp {

class Graph;
struct Node;

/// Computes every node's `output_shape`, `weight_params` and `macs` in
/// topological (= id) order. The input node must already carry its shape.
/// Throws GraphError on inconsistent shapes (e.g. eltwise operands differ,
/// conv kernel larger than padded input).
void infer_shapes(Graph& graph);

/// Output spatial extent of a strided window op:
/// floor((in + 2*pad - kernel) / stride) + 1. Throws GraphError if the
/// window does not fit.
int window_output_extent(int input, int kernel, int stride, int padding,
                         const char* what);

}  // namespace pimcomp

#endif  // PIMCOMP_GRAPH_SHAPE_INFERENCE_HPP
