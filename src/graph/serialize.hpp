#ifndef PIMCOMP_GRAPH_SERIALIZE_HPP
#define PIMCOMP_GRAPH_SERIALIZE_HPP

#include <string>

#include "common/json.hpp"
#include "graph/graph.hpp"

namespace pimcomp {

/// Serializes a finalized graph to the PIMCOMP JSON graph format:
///
///   { "name": "...", "input": [C, H, W],
///     "nodes": [ {"name": "...", "op": "conv", "inputs": [0],
///                 "out_channels": 64, "kernel": [3,3],
///                 "stride": 1, "padding": 1}, ... ] }
///
/// This format stands in for the paper's ONNX frontend (see DESIGN.md §3):
/// it carries exactly the post-parse information PIMCOMP's backend consumes
/// (node attributes + topology).
Json graph_to_json(const Graph& graph);

/// Parses the JSON graph format and returns a finalized graph.
/// Throws GraphError / JsonError on malformed input.
Graph graph_from_json(const Json& json);

/// File convenience wrappers.
void save_graph(const Graph& graph, const std::string& path);
Graph load_graph(const std::string& path);

}  // namespace pimcomp

#endif  // PIMCOMP_GRAPH_SERIALIZE_HPP
