#include "graph/op_type.hpp"

#include "common/error.hpp"

namespace pimcomp {

std::string to_string(OpType type) {
  switch (type) {
    case OpType::kInput: return "input";
    case OpType::kConv: return "conv";
    case OpType::kFC: return "fc";
    case OpType::kPool: return "pool";
    case OpType::kRelu: return "relu";
    case OpType::kConcat: return "concat";
    case OpType::kEltwise: return "eltwise";
    case OpType::kFlatten: return "flatten";
    case OpType::kSoftmax: return "softmax";
  }
  return "unknown";
}

std::string to_string(PoolKind kind) {
  switch (kind) {
    case PoolKind::kMax: return "max";
    case PoolKind::kAverage: return "avg";
    case PoolKind::kGlobalAverage: return "global_avg";
  }
  return "unknown";
}

std::string to_string(EltwiseKind kind) {
  switch (kind) {
    case EltwiseKind::kAdd: return "add";
    case EltwiseKind::kMul: return "mul";
  }
  return "unknown";
}

OpType op_type_from_string(const std::string& name) {
  if (name == "input") return OpType::kInput;
  if (name == "conv") return OpType::kConv;
  if (name == "fc") return OpType::kFC;
  if (name == "pool") return OpType::kPool;
  if (name == "relu") return OpType::kRelu;
  if (name == "concat") return OpType::kConcat;
  if (name == "eltwise") return OpType::kEltwise;
  if (name == "flatten") return OpType::kFlatten;
  if (name == "softmax") return OpType::kSoftmax;
  throw GraphError("unknown op type: " + name);
}

PoolKind pool_kind_from_string(const std::string& name) {
  if (name == "max") return PoolKind::kMax;
  if (name == "avg") return PoolKind::kAverage;
  if (name == "global_avg") return PoolKind::kGlobalAverage;
  throw GraphError("unknown pool kind: " + name);
}

EltwiseKind eltwise_kind_from_string(const std::string& name) {
  if (name == "add") return EltwiseKind::kAdd;
  if (name == "mul") return EltwiseKind::kMul;
  throw GraphError("unknown eltwise kind: " + name);
}

bool is_crossbar_op(OpType type) {
  return type == OpType::kConv || type == OpType::kFC;
}

bool is_vector_op(OpType type) {
  switch (type) {
    case OpType::kPool:
    case OpType::kRelu:
    case OpType::kEltwise:
    case OpType::kSoftmax:
      return true;
    default:
      return false;
  }
}

}  // namespace pimcomp
