#ifndef PIMCOMP_GRAPH_NODE_HPP
#define PIMCOMP_GRAPH_NODE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "graph/op_type.hpp"
#include "graph/tensor.hpp"

namespace pimcomp {

/// Identifier of a node inside its graph (dense, 0-based).
using NodeId = int;

/// Attributes of CONV nodes. FC nodes reuse this with kernel 1x1 over a
/// flattened input (the paper treats FC as a special convolution).
/// Padding may differ per axis to express the 1x7 / 7x1 factorized
/// convolutions of inception-v3.
struct ConvAttrs {
  int out_channels = 0;
  int kernel_h = 0;
  int kernel_w = 0;
  int stride = 1;
  int padding_h = 0;
  int padding_w = 0;

  bool operator==(const ConvAttrs&) const = default;
};

/// Attributes of POOL nodes.
struct PoolAttrs {
  PoolKind kind = PoolKind::kMax;
  int kernel = 0;    ///< square window; ignored when kind == kGlobalAverage
  int stride = 1;
  int padding = 0;

  bool operator==(const PoolAttrs&) const = default;
};

/// Attributes of ELTWISE nodes.
struct EltwiseAttrs {
  EltwiseKind kind = EltwiseKind::kAdd;

  bool operator==(const EltwiseAttrs&) const = default;
};

/// One operator instance in the DNN graph. In this work "node" and "layer"
/// share the same meaning (paper, Section IV-A).
struct Node {
  NodeId id = -1;
  std::string name;
  OpType type = OpType::kInput;

  /// Producers of this node's inputs, in positional order.
  std::vector<NodeId> inputs;

  /// Populated per `type`; unused attribute structs stay default-valued.
  ConvAttrs conv;
  PoolAttrs pool;
  EltwiseAttrs eltwise;
  int fc_units = 0;  ///< output features for FC nodes

  /// Filled in by shape inference.
  TensorShape output_shape;

  /// Weight parameter count for crossbar ops (conv: k*k*Cin*Cout, fc:
  /// in*out); zero for all other operators. Filled by shape inference.
  std::int64_t weight_params = 0;

  /// Multiply-accumulate count per inference for crossbar ops; zero
  /// otherwise. Filled by shape inference.
  std::int64_t macs = 0;

  bool is_crossbar() const { return is_crossbar_op(type); }

  /// One-line human readable description.
  std::string to_string() const;
};

}  // namespace pimcomp

#endif  // PIMCOMP_GRAPH_NODE_HPP
