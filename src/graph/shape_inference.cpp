#include "graph/shape_inference.hpp"

#include <string>

#include "common/error.hpp"
#include "graph/graph.hpp"

namespace pimcomp {

int window_output_extent(int input, int kernel, int stride, int padding,
                         const char* what) {
  PIMCOMP_CHECK(stride >= 1, "stride must be >= 1");
  const int padded = input + 2 * padding;
  if (kernel > padded) {
    throw GraphError(std::string(what) + ": kernel " + std::to_string(kernel) +
                     " exceeds padded input " + std::to_string(padded));
  }
  return (padded - kernel) / stride + 1;
}

namespace {

TensorShape input_shape_of(const Graph& graph, const Node& node,
                           std::size_t index) {
  PIMCOMP_ASSERT(index < node.inputs.size(), "input index out of range");
  return graph.node(node.inputs[index]).output_shape;
}

void infer_node(Graph& graph, Node& node) {
  switch (node.type) {
    case OpType::kInput: {
      if (!node.output_shape.valid()) {
        throw GraphError("input node must carry a valid shape");
      }
      return;
    }
    case OpType::kConv: {
      const TensorShape in = input_shape_of(graph, node, 0);
      const ConvAttrs& a = node.conv;
      PIMCOMP_CHECK(a.out_channels > 0, "conv out_channels must be positive");
      PIMCOMP_CHECK(a.kernel_h > 0 && a.kernel_w > 0,
                    "conv kernel must be positive");
      const int oh = window_output_extent(in.height, a.kernel_h, a.stride,
                                          a.padding_h, node.name.c_str());
      const int ow = window_output_extent(in.width, a.kernel_w, a.stride,
                                          a.padding_w, node.name.c_str());
      node.output_shape = {a.out_channels, oh, ow};
      node.weight_params = static_cast<std::int64_t>(a.kernel_h) * a.kernel_w *
                           in.channels * a.out_channels;
      node.macs = node.weight_params * oh * ow;
      return;
    }
    case OpType::kFC: {
      const TensorShape in = input_shape_of(graph, node, 0);
      PIMCOMP_CHECK(node.fc_units > 0, "fc units must be positive");
      node.output_shape = {node.fc_units, 1, 1};
      node.weight_params = in.elements() * node.fc_units;
      node.macs = node.weight_params;
      return;
    }
    case OpType::kPool: {
      const TensorShape in = input_shape_of(graph, node, 0);
      const PoolAttrs& a = node.pool;
      if (a.kind == PoolKind::kGlobalAverage) {
        node.output_shape = {in.channels, 1, 1};
        return;
      }
      PIMCOMP_CHECK(a.kernel > 0, "pool kernel must be positive");
      const int oh = window_output_extent(in.height, a.kernel, a.stride,
                                          a.padding, node.name.c_str());
      const int ow = window_output_extent(in.width, a.kernel, a.stride,
                                          a.padding, node.name.c_str());
      node.output_shape = {in.channels, oh, ow};
      return;
    }
    case OpType::kRelu:
    case OpType::kSoftmax: {
      node.output_shape = input_shape_of(graph, node, 0);
      return;
    }
    case OpType::kFlatten: {
      const TensorShape in = input_shape_of(graph, node, 0);
      node.output_shape = {static_cast<int>(in.elements()), 1, 1};
      return;
    }
    case OpType::kConcat: {
      if (node.inputs.size() < 2) {
        throw GraphError("concat '" + node.name + "' needs >= 2 inputs");
      }
      TensorShape first = input_shape_of(graph, node, 0);
      int channels = first.channels;
      for (std::size_t i = 1; i < node.inputs.size(); ++i) {
        const TensorShape s = input_shape_of(graph, node, i);
        if (s.height != first.height || s.width != first.width) {
          throw GraphError("concat '" + node.name +
                           "' operands have mismatched spatial dims: " +
                           first.to_string() + " vs " + s.to_string());
        }
        channels += s.channels;
      }
      node.output_shape = {channels, first.height, first.width};
      return;
    }
    case OpType::kEltwise: {
      if (node.inputs.size() < 2) {
        throw GraphError("eltwise '" + node.name + "' needs >= 2 inputs");
      }
      const TensorShape first = input_shape_of(graph, node, 0);
      for (std::size_t i = 1; i < node.inputs.size(); ++i) {
        const TensorShape s = input_shape_of(graph, node, i);
        if (!(s == first)) {
          throw GraphError("eltwise '" + node.name +
                           "' operands have mismatched shapes: " +
                           first.to_string() + " vs " + s.to_string());
        }
      }
      node.output_shape = first;
      return;
    }
  }
  throw GraphError("unhandled op type in shape inference");
}

}  // namespace

void infer_shapes(Graph& graph) {
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    infer_node(graph, graph.mutable_node(id));
    if (!graph.node(id).output_shape.valid()) {
      throw GraphError("node '" + graph.node(id).name +
                       "' inferred an invalid shape " +
                       graph.node(id).output_shape.to_string());
    }
  }
}

}  // namespace pimcomp
