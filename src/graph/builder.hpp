#ifndef PIMCOMP_GRAPH_BUILDER_HPP
#define PIMCOMP_GRAPH_BUILDER_HPP

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace pimcomp {

/// Fluent construction API for DNN graphs. Layers are appended in topological
/// order; `build()` finalizes (validates + infers shapes) and returns the
/// graph. Example:
///
///   GraphBuilder b("toy", {3, 32, 32});
///   NodeId x = b.input();
///   x = b.conv_relu(x, 16, 3, 1, 1);
///   x = b.max_pool(x, 2, 2);
///   x = b.fc(b.flatten(x), 10);
///   Graph g = b.build();
class GraphBuilder {
 public:
  GraphBuilder(std::string name, TensorShape input_shape);

  /// Id of the (single) input node.
  NodeId input() const { return 0; }

  /// 2-D convolution with square or rectangular kernel; `conv_rect` allows
  /// per-axis padding for factorized 1xN / Nx1 kernels.
  NodeId conv(NodeId in, int out_channels, int kernel, int stride = 1,
              int padding = 0, const std::string& name = "");
  NodeId conv_rect(NodeId in, int out_channels, int kernel_h, int kernel_w,
                   int stride, int padding_h, int padding_w,
                   const std::string& name = "");

  /// Convolution followed by ReLU (the dominant idiom in the zoo models).
  NodeId conv_relu(NodeId in, int out_channels, int kernel, int stride = 1,
                   int padding = 0, const std::string& name = "");

  NodeId relu(NodeId in, const std::string& name = "");
  NodeId max_pool(NodeId in, int kernel, int stride, int padding = 0,
                  const std::string& name = "");
  NodeId avg_pool(NodeId in, int kernel, int stride, int padding = 0,
                  const std::string& name = "");
  NodeId global_avg_pool(NodeId in, const std::string& name = "");
  NodeId concat(const std::vector<NodeId>& ins, const std::string& name = "");
  NodeId eltwise_add(NodeId a, NodeId b, const std::string& name = "");
  NodeId flatten(NodeId in, const std::string& name = "");
  NodeId fc(NodeId in, int units, const std::string& name = "");
  NodeId fc_relu(NodeId in, int units, const std::string& name = "");
  NodeId softmax(NodeId in, const std::string& name = "");

  /// Shape of a node added so far (shapes are inferred incrementally so that
  /// zoo builders can branch on intermediate extents).
  TensorShape shape_of(NodeId id) const;

  /// Finalizes and returns the graph. The builder must not be reused after.
  Graph build();

 private:
  NodeId append(Node node);
  Graph graph_;
  bool built_ = false;
};

}  // namespace pimcomp

#endif  // PIMCOMP_GRAPH_BUILDER_HPP
