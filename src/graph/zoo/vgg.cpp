#include "common/error.hpp"
#include "graph/builder.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp::zoo {

Graph vgg16(int input_size) {
  if (input_size == 0) input_size = 224;
  PIMCOMP_CHECK(input_size >= 32 && input_size % 32 == 0,
                "vgg16 input size must be a positive multiple of 32");

  GraphBuilder b("vgg16", {3, input_size, input_size});
  NodeId x = b.input();

  const int stage_channels[5] = {64, 128, 256, 512, 512};
  const int stage_depth[5] = {2, 2, 3, 3, 3};
  int conv_index = 1;
  for (int stage = 0; stage < 5; ++stage) {
    for (int i = 0; i < stage_depth[stage]; ++i) {
      x = b.conv_relu(x, stage_channels[stage], 3, 1, 1,
                      "conv" + std::to_string(conv_index));
      ++conv_index;
    }
    x = b.max_pool(x, 2, 2, 0, "pool" + std::to_string(stage + 1));
  }

  x = b.flatten(x, "flatten");
  x = b.fc_relu(x, 4096, "fc6");
  x = b.fc_relu(x, 4096, "fc7");
  x = b.fc(x, 1000, "fc8");
  b.softmax(x, "prob");
  return b.build();
}

}  // namespace pimcomp::zoo
