#include "common/error.hpp"
#include "graph/builder.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp::zoo {

namespace {

/// Inception-v3 module A (35x35 grid in the canonical network): 1x1, 5x5
/// (factored through 1x1), double-3x3, and pooled-projection branches.
NodeId module_a(GraphBuilder& b, NodeId in, int pool_features,
                const std::string& name) {
  NodeId b1 = b.conv_relu(in, 64, 1, 1, 0, name + "_1x1");
  NodeId b2 = b.conv_relu(in, 48, 1, 1, 0, name + "_5x5_reduce");
  b2 = b.conv_relu(b2, 64, 5, 1, 2, name + "_5x5");
  NodeId b3 = b.conv_relu(in, 64, 1, 1, 0, name + "_dbl3x3_reduce");
  b3 = b.conv_relu(b3, 96, 3, 1, 1, name + "_dbl3x3_1");
  b3 = b.conv_relu(b3, 96, 3, 1, 1, name + "_dbl3x3_2");
  NodeId b4 = b.avg_pool(in, 3, 1, 1, name + "_pool");
  b4 = b.conv_relu(b4, pool_features, 1, 1, 0, name + "_pool_proj");
  return b.concat({b1, b2, b3, b4}, name + "_concat");
}

/// Grid-size reduction module B: strided 3x3, strided double-3x3, and a
/// strided max pool, concatenated.
NodeId module_b(GraphBuilder& b, NodeId in, const std::string& name) {
  NodeId b1 = b.conv_relu(in, 384, 3, 2, 0, name + "_3x3");
  NodeId b2 = b.conv_relu(in, 64, 1, 1, 0, name + "_dbl3x3_reduce");
  b2 = b.conv_relu(b2, 96, 3, 1, 1, name + "_dbl3x3_1");
  b2 = b.conv_relu(b2, 96, 3, 2, 0, name + "_dbl3x3_2");
  NodeId b3 = b.max_pool(in, 3, 2, 0, name + "_pool");
  return b.concat({b1, b2, b3}, name + "_concat");
}

/// Module C (17x17 grid): asymmetric 1x7/7x1 factorized convolutions.
NodeId module_c(GraphBuilder& b, NodeId in, int c7, const std::string& name) {
  NodeId b1 = b.conv_relu(in, 192, 1, 1, 0, name + "_1x1");

  NodeId b2 = b.conv_relu(in, c7, 1, 1, 0, name + "_7x7_reduce");
  b2 = b.conv_rect(b2, c7, 1, 7, 1, 0, 3, name + "_1x7");
  b2 = b.relu(b2, name + "_1x7_relu");
  b2 = b.conv_rect(b2, 192, 7, 1, 1, 3, 0, name + "_7x1");
  b2 = b.relu(b2, name + "_7x1_relu");

  NodeId b3 = b.conv_relu(in, c7, 1, 1, 0, name + "_dbl7x7_reduce");
  b3 = b.conv_rect(b3, c7, 7, 1, 1, 3, 0, name + "_dbl7x1_1");
  b3 = b.relu(b3, name + "_dbl7x1_1_relu");
  b3 = b.conv_rect(b3, c7, 1, 7, 1, 0, 3, name + "_dbl1x7_1");
  b3 = b.relu(b3, name + "_dbl1x7_1_relu");
  b3 = b.conv_rect(b3, c7, 7, 1, 1, 3, 0, name + "_dbl7x1_2");
  b3 = b.relu(b3, name + "_dbl7x1_2_relu");
  b3 = b.conv_rect(b3, 192, 1, 7, 1, 0, 3, name + "_dbl1x7_2");
  b3 = b.relu(b3, name + "_dbl1x7_2_relu");

  NodeId b4 = b.avg_pool(in, 3, 1, 1, name + "_pool");
  b4 = b.conv_relu(b4, 192, 1, 1, 0, name + "_pool_proj");
  return b.concat({b1, b2, b3, b4}, name + "_concat");
}

/// Grid-size reduction module D: strided 3x3 (through 1x1) and a 7x7-
/// factorized strided branch plus max pool.
NodeId module_d(GraphBuilder& b, NodeId in, const std::string& name) {
  NodeId b1 = b.conv_relu(in, 192, 1, 1, 0, name + "_3x3_reduce");
  b1 = b.conv_relu(b1, 320, 3, 2, 0, name + "_3x3");
  NodeId b2 = b.conv_relu(in, 192, 1, 1, 0, name + "_7x7_reduce");
  b2 = b.conv_rect(b2, 192, 1, 7, 1, 0, 3, name + "_1x7");
  b2 = b.relu(b2, name + "_1x7_relu");
  b2 = b.conv_rect(b2, 192, 7, 1, 1, 3, 0, name + "_7x1");
  b2 = b.relu(b2, name + "_7x1_relu");
  b2 = b.conv_relu(b2, 192, 3, 2, 0, name + "_3x3b");
  NodeId b3 = b.max_pool(in, 3, 2, 0, name + "_pool");
  return b.concat({b1, b2, b3}, name + "_concat");
}

/// Module E (8x8 grid): expanded-filter-bank branches with parallel 1x3 and
/// 3x1 convolutions concatenated inside each branch.
NodeId module_e(GraphBuilder& b, NodeId in, const std::string& name) {
  NodeId b1 = b.conv_relu(in, 320, 1, 1, 0, name + "_1x1");

  NodeId b2 = b.conv_relu(in, 384, 1, 1, 0, name + "_3x3_reduce");
  NodeId b2a = b.conv_rect(b2, 384, 1, 3, 1, 0, 1, name + "_1x3");
  b2a = b.relu(b2a, name + "_1x3_relu");
  NodeId b2b = b.conv_rect(b2, 384, 3, 1, 1, 1, 0, name + "_3x1");
  b2b = b.relu(b2b, name + "_3x1_relu");
  NodeId b2c = b.concat({b2a, b2b}, name + "_3x3_concat");

  NodeId b3 = b.conv_relu(in, 448, 1, 1, 0, name + "_dbl3x3_reduce");
  b3 = b.conv_relu(b3, 384, 3, 1, 1, name + "_dbl3x3");
  NodeId b3a = b.conv_rect(b3, 384, 1, 3, 1, 0, 1, name + "_dbl1x3");
  b3a = b.relu(b3a, name + "_dbl1x3_relu");
  NodeId b3b = b.conv_rect(b3, 384, 3, 1, 1, 1, 0, name + "_dbl3x1");
  b3b = b.relu(b3b, name + "_dbl3x1_relu");
  NodeId b3c = b.concat({b3a, b3b}, name + "_dbl3x3_concat");

  NodeId b4 = b.avg_pool(in, 3, 1, 1, name + "_pool");
  b4 = b.conv_relu(b4, 192, 1, 1, 0, name + "_pool_proj");
  return b.concat({b1, b2c, b3c, b4}, name + "_concat");
}

}  // namespace

Graph inception_v3(int input_size) {
  if (input_size == 0) input_size = 299;
  PIMCOMP_CHECK(input_size >= 96,
                "inception-v3 input size must be at least 96");

  GraphBuilder b("inception-v3", {3, input_size, input_size});
  NodeId x = b.input();

  // Stem.
  x = b.conv_relu(x, 32, 3, 2, 0, "conv1");
  x = b.conv_relu(x, 32, 3, 1, 0, "conv2");
  x = b.conv_relu(x, 64, 3, 1, 1, "conv3");
  x = b.max_pool(x, 3, 2, 0, "pool1");
  x = b.conv_relu(x, 80, 1, 1, 0, "conv4");
  x = b.conv_relu(x, 192, 3, 1, 0, "conv5");
  x = b.max_pool(x, 3, 2, 0, "pool2");

  // 3 x module A, reduction B.
  x = module_a(b, x, 32, "mixed5b");
  x = module_a(b, x, 64, "mixed5c");
  x = module_a(b, x, 64, "mixed5d");
  x = module_b(b, x, "mixed6a");

  // 4 x module C, reduction D.
  x = module_c(b, x, 128, "mixed6b");
  x = module_c(b, x, 160, "mixed6c");
  x = module_c(b, x, 160, "mixed6d");
  x = module_c(b, x, 192, "mixed6e");
  x = module_d(b, x, "mixed7a");

  // 2 x module E.
  x = module_e(b, x, "mixed7b");
  x = module_e(b, x, "mixed7c");

  x = b.global_avg_pool(x, "gap");
  x = b.fc(b.flatten(x, "flatten"), 1000, "fc");
  b.softmax(x, "prob");
  return b.build();
}

}  // namespace pimcomp::zoo
