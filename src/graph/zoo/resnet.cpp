#include "common/error.hpp"
#include "graph/builder.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp::zoo {

namespace {

/// Standard ResNet basic block: two 3x3 convolutions with a residual add.
/// When the block changes stride or channel count, the shortcut is a strided
/// 1x1 projection convolution. Batch norms are folded into the convolutions.
NodeId basic_block(GraphBuilder& b, NodeId in, int channels, int stride,
                   bool project_shortcut, const std::string& name) {
  NodeId main = b.conv_relu(in, channels, 3, stride, 1, name + "_conv1");
  main = b.conv(main, channels, 3, 1, 1, name + "_conv2");
  NodeId shortcut = in;
  if (project_shortcut) {
    shortcut = b.conv(in, channels, 1, stride, 0, name + "_downsample");
  }
  NodeId sum = b.eltwise_add(main, shortcut, name + "_add");
  return b.relu(sum, name + "_relu");
}

}  // namespace

Graph resnet18(int input_size) {
  if (input_size == 0) input_size = 224;
  PIMCOMP_CHECK(input_size >= 32 && input_size % 32 == 0,
                "resnet18 input size must be a positive multiple of 32");

  GraphBuilder b("resnet18", {3, input_size, input_size});
  NodeId x = b.input();
  x = b.conv_relu(x, 64, 7, 2, 3, "conv1");
  x = b.max_pool(x, 3, 2, 1, "pool1");

  const int stage_channels[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    const int channels = stage_channels[stage];
    const int first_stride = stage == 0 ? 1 : 2;
    const bool project = stage != 0;
    const std::string prefix = "layer" + std::to_string(stage + 1);
    x = basic_block(b, x, channels, first_stride, project, prefix + "_block1");
    x = basic_block(b, x, channels, 1, false, prefix + "_block2");
  }

  x = b.global_avg_pool(x, "gap");
  x = b.fc(b.flatten(x, "flatten"), 1000, "fc");
  b.softmax(x, "prob");
  return b.build();
}

}  // namespace pimcomp::zoo
