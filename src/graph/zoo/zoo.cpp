#include "graph/zoo/zoo.hpp"

#include "common/error.hpp"

namespace pimcomp::zoo {

const std::vector<std::string>& model_names() {
  static const std::vector<std::string> names = {
      "vgg16", "resnet18", "googlenet", "inception-v3", "squeezenet"};
  return names;
}

Graph build(const std::string& name, int input_size) {
  if (name == "vgg16") return vgg16(input_size);
  if (name == "resnet18") return resnet18(input_size);
  if (name == "squeezenet") return squeezenet(input_size);
  if (name == "googlenet") return googlenet(input_size);
  if (name == "inception-v3" || name == "inception_v3") {
    return inception_v3(input_size);
  }
  throw GraphError("unknown zoo model: " + name);
}

}  // namespace pimcomp::zoo
