#ifndef PIMCOMP_GRAPH_ZOO_ZOO_HPP
#define PIMCOMP_GRAPH_ZOO_ZOO_HPP

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace pimcomp::zoo {

/// The five benchmark networks of the paper's evaluation (Section V-A2).
/// Each builder reproduces the reference architecture's layer configuration
/// (batch-norm folded into the preceding convolution, as is standard for
/// inference compilation). `input_size` is the square input resolution;
/// passing 0 selects the canonical resolution (224, or 299 for
/// inception-v3). Smaller resolutions shrink activation maps but keep the
/// network topology, which is what the compile-time and shape-driven
/// behaviour depends on.

/// VGG-16 (Simonyan & Zisserman): 13 conv + 3 FC. Requires input_size to be
/// a positive multiple of 32.
Graph vgg16(int input_size = 0);

/// ResNet-18 (He et al.): 7x7 stem + 4 stages of 2 basic blocks with
/// residual eltwise-adds + FC. Requires a multiple of 32.
Graph resnet18(int input_size = 0);

/// SqueezeNet v1.1 (Iandola et al.): 8 fire modules (squeeze/expand/concat)
/// + final 1x1 classifier conv. Requires a multiple of 16.
Graph squeezenet(int input_size = 0);

/// GoogLeNet / Inception-v1 (Szegedy et al.): 9 inception modules with four
/// parallel branches each. Requires a multiple of 32.
Graph googlenet(int input_size = 0);

/// Inception-v3 (Szegedy et al.): factorized 7x7 and asymmetric 1x7/7x1
/// convolutions across A/B/C/D/E module families. Canonical input 299;
/// any input >= 96 is accepted.
Graph inception_v3(int input_size = 0);

/// Names accepted by `build()`, in the paper's presentation order.
const std::vector<std::string>& model_names();

/// Builds a zoo model by name; throws GraphError for unknown names.
Graph build(const std::string& name, int input_size = 0);

}  // namespace pimcomp::zoo

#endif  // PIMCOMP_GRAPH_ZOO_ZOO_HPP
