#include "common/error.hpp"
#include "graph/builder.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp::zoo {

namespace {

/// SqueezeNet fire module: a 1x1 squeeze convolution feeding parallel 1x1
/// and 3x3 expand convolutions whose outputs are concatenated channel-wise.
NodeId fire(GraphBuilder& b, NodeId in, int squeeze, int expand1,
            int expand3, const std::string& name) {
  NodeId s = b.conv_relu(in, squeeze, 1, 1, 0, name + "_squeeze1x1");
  NodeId e1 = b.conv_relu(s, expand1, 1, 1, 0, name + "_expand1x1");
  NodeId e3 = b.conv_relu(s, expand3, 3, 1, 1, name + "_expand3x3");
  return b.concat({e1, e3}, name + "_concat");
}

}  // namespace

Graph squeezenet(int input_size) {
  if (input_size == 0) input_size = 224;
  PIMCOMP_CHECK(input_size >= 32 && input_size % 16 == 0,
                "squeezenet input size must be a multiple of 16 (>= 32)");

  GraphBuilder b("squeezenet", {3, input_size, input_size});
  NodeId x = b.input();

  // SqueezeNet v1.1 layout.
  x = b.conv_relu(x, 64, 3, 2, 0, "conv1");
  x = b.max_pool(x, 3, 2, 0, "pool1");
  x = fire(b, x, 16, 64, 64, "fire2");
  x = fire(b, x, 16, 64, 64, "fire3");
  x = b.max_pool(x, 3, 2, 0, "pool3");
  x = fire(b, x, 32, 128, 128, "fire4");
  x = fire(b, x, 32, 128, 128, "fire5");
  x = b.max_pool(x, 3, 2, 0, "pool5");
  x = fire(b, x, 48, 192, 192, "fire6");
  x = fire(b, x, 48, 192, 192, "fire7");
  x = fire(b, x, 64, 256, 256, "fire8");
  x = fire(b, x, 64, 256, 256, "fire9");

  x = b.conv_relu(x, 1000, 1, 1, 0, "conv10");
  x = b.global_avg_pool(x, "gap");
  b.softmax(x, "prob");
  return b.build();
}

}  // namespace pimcomp::zoo
