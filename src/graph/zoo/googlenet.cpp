#include "common/error.hpp"
#include "graph/builder.hpp"
#include "graph/zoo/zoo.hpp"

namespace pimcomp::zoo {

namespace {

/// GoogLeNet inception module (Szegedy et al., figure 2b): four parallel
/// branches — 1x1, 1x1->3x3, 1x1->5x5, and 3x3 maxpool->1x1 — concatenated
/// channel-wise.
NodeId inception(GraphBuilder& b, NodeId in, int c1, int r3, int c3, int r5,
                 int c5, int cp, const std::string& name) {
  NodeId b1 = b.conv_relu(in, c1, 1, 1, 0, name + "_1x1");
  NodeId b2 = b.conv_relu(in, r3, 1, 1, 0, name + "_3x3_reduce");
  b2 = b.conv_relu(b2, c3, 3, 1, 1, name + "_3x3");
  NodeId b3 = b.conv_relu(in, r5, 1, 1, 0, name + "_5x5_reduce");
  b3 = b.conv_relu(b3, c5, 5, 1, 2, name + "_5x5");
  NodeId b4 = b.max_pool(in, 3, 1, 1, name + "_pool");
  b4 = b.conv_relu(b4, cp, 1, 1, 0, name + "_pool_proj");
  return b.concat({b1, b2, b3, b4}, name + "_concat");
}

}  // namespace

Graph googlenet(int input_size) {
  if (input_size == 0) input_size = 224;
  PIMCOMP_CHECK(input_size >= 32 && input_size % 32 == 0,
                "googlenet input size must be a positive multiple of 32");

  GraphBuilder b("googlenet", {3, input_size, input_size});
  NodeId x = b.input();

  x = b.conv_relu(x, 64, 7, 2, 3, "conv1");
  x = b.max_pool(x, 3, 2, 1, "pool1");
  x = b.conv_relu(x, 64, 1, 1, 0, "conv2_reduce");
  x = b.conv_relu(x, 192, 3, 1, 1, "conv2");
  x = b.max_pool(x, 3, 2, 1, "pool2");

  x = inception(b, x, 64, 96, 128, 16, 32, 32, "inception3a");
  x = inception(b, x, 128, 128, 192, 32, 96, 64, "inception3b");
  x = b.max_pool(x, 3, 2, 1, "pool3");

  x = inception(b, x, 192, 96, 208, 16, 48, 64, "inception4a");
  x = inception(b, x, 160, 112, 224, 24, 64, 64, "inception4b");
  x = inception(b, x, 128, 128, 256, 24, 64, 64, "inception4c");
  x = inception(b, x, 112, 144, 288, 32, 64, 64, "inception4d");
  x = inception(b, x, 256, 160, 320, 32, 128, 128, "inception4e");
  x = b.max_pool(x, 3, 2, 1, "pool4");

  x = inception(b, x, 256, 160, 320, 32, 128, 128, "inception5a");
  x = inception(b, x, 384, 192, 384, 48, 128, 128, "inception5b");

  x = b.global_avg_pool(x, "gap");
  x = b.fc(b.flatten(x, "flatten"), 1000, "fc");
  b.softmax(x, "prob");
  return b.build();
}

}  // namespace pimcomp::zoo
