#ifndef PIMCOMP_GRAPH_GRAPH_HPP
#define PIMCOMP_GRAPH_GRAPH_HPP

#include <string>
#include <vector>

#include "graph/node.hpp"

namespace pimcomp {

/// A DNN model as a DAG of operator nodes. The graph owns its nodes; node
/// ids are dense indices into `nodes()`. Exactly one kInput node is required
/// and it must be node 0. Graphs are immutable once `finalize()` has run
/// (the builder calls it).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends a node; assigns and returns its id. Inputs must reference
  /// already-added nodes (the graph is constructed in topological order).
  NodeId add_node(Node node);

  int node_count() const { return static_cast<int>(nodes_.size()); }
  const Node& node(NodeId id) const;
  Node& mutable_node(NodeId id);
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Consumers of each node (reverse edges); available after finalize().
  const std::vector<NodeId>& consumers(NodeId id) const;

  /// Nodes with no consumers; available after finalize().
  const std::vector<NodeId>& sinks() const { return sinks_; }

  /// Validates the graph (single input at id 0, no dangling references,
  /// in-order edges — which implies acyclicity), runs shape inference, and
  /// builds the reverse-edge index. Throws GraphError on violations.
  void finalize();

  bool finalized() const { return finalized_; }

  /// Sum of weight parameters over all crossbar nodes.
  std::int64_t total_weight_params() const;

  /// Sum of per-inference MACs over all crossbar nodes.
  std::int64_t total_macs() const;

  /// Count of crossbar (CONV/FC) nodes.
  int crossbar_node_count() const;

  /// Multi-line description of every node (debugging aid).
  std::string to_string() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> consumers_;
  std::vector<NodeId> sinks_;
  bool finalized_ = false;
};

}  // namespace pimcomp

#endif  // PIMCOMP_GRAPH_GRAPH_HPP
