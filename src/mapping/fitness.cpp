#include "mapping/fitness.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/math_util.hpp"
// pimcomp-layer-exempt: the fitness model reuses the scheduler's
// receptive-field geometry helpers (a data-only header, no control flow
// back into schedule/).
#include "schedule/receptive_field.hpp"

namespace pimcomp {

Picoseconds cycle_time(int live_ags, const FitnessParams& params) {
  PIMCOMP_ASSERT(live_ags >= 0, "negative AG count");
  if (live_ags == 0) return 0;
  const Picoseconds issue_bound = live_ags * params.issue_interval;
  return std::max(issue_bound, params.mvm_latency);
}

namespace {

/// Per-core cross-core accumulation penalties. A gene holding a *partial*
/// replica (ag_count not a multiple of ags-per-replica) belongs to an
/// accumulation group that spans cores: every operation cycle its partial
/// sums ship to the group owner (the first such core, matching
/// `MappingSolution::instantiate`), which folds them on its VFU. Member
/// cores pay injection bandwidth; the owner pays reception bandwidth plus
/// the VFU fold for every remote contributor — that concentration is what
/// makes scattered mappings slow in the simulator, so the fitness must see
/// it too.
std::vector<double> accumulation_penalties(const MappingSolution& solution,
                                           const FitnessParams& params) {
  std::vector<double> penalty(static_cast<std::size_t>(solution.core_count()),
                              0.0);
  const Workload& workload = solution.workload();
  for (const NodePartition& p : workload.partitions()) {
    const int per_replica = p.ags_per_replica();
    if (per_replica <= 1) continue;  // single-AG replicas never accumulate
    const double elements =
        static_cast<double>(solution.cycles(p.node)) * p.cols_per_chunk;
    const double bytes = elements * params.activation_bytes;
    const double comm_ps = bytes * 1000.0 / params.local_memory_gbps;
    const double fold_ps = elements / params.vfu_ops_per_ns * 1000.0;

    int owner = -1;
    for (int core : solution.cores_of(p.node)) {
      for (const Gene& g : solution.genes(core)) {
        if (g.node != p.node || g.ag_count % per_replica == 0) continue;
        if (owner < 0) {
          owner = core;  // first misaligned gene hosts the stitched groups
        } else {
          penalty[static_cast<std::size_t>(core)] += comm_ps;
          penalty[static_cast<std::size_t>(owner)] += comm_ps + fold_ps;
        }
      }
    }
  }
  return penalty;
}

}  // namespace

std::vector<double> ht_core_times(const MappingSolution& solution,
                                  const FitnessParams& params) {
  std::vector<double> times(static_cast<std::size_t>(solution.core_count()),
                            0.0);
  const std::vector<double> penalties =
      accumulation_penalties(solution, params);
  std::vector<std::pair<int, int>> staircase;  // (cycles, ag_count)
  for (int core = 0; core < solution.core_count(); ++core) {
    staircase.clear();
    int live = 0;
    const double comm_penalty = penalties[static_cast<std::size_t>(core)];
    for (const Gene& gene : solution.genes(core)) {
      staircase.emplace_back(solution.cycles(gene.node), gene.ag_count);
      live += gene.ag_count;
    }
    std::sort(staircase.begin(), staircase.end());
    // Walk the cycle-count staircase (paper Fig 5): while `live` AGs remain
    // active the core spends f(live) per operation cycle; nodes with fewer
    // cycles retire earlier.
    double time = 0.0;
    int prev_cycles = 0;
    for (const auto& [cycles, ag_count] : staircase) {
      if (cycles > prev_cycles) {
        time += static_cast<double>(cycle_time(live, params)) *
                (cycles - prev_cycles);
        prev_cycles = cycles;
      }
      live -= ag_count;
    }
    times[static_cast<std::size_t>(core)] = time + comm_penalty;
  }
  return times;
}

double ht_fitness(const MappingSolution& solution,
                  const FitnessParams& params) {
  const std::vector<double> times = ht_core_times(solution, params);
  double worst = 0.0;
  for (double t : times) worst = std::max(worst, t);
  return worst;
}

LLFitnessContext::LLFitnessContext(const Workload& workload)
    : workload_(&workload) {
  edges_.reserve(static_cast<std::size_t>(workload.partition_count()));
  for (const NodePartition& p : workload.partitions()) {
    std::vector<Edge> edges;
    for (const ProviderRequirement& req :
         trace_requirements(workload, p.node, 1, 1)) {
      if (req.provider < 0) {
        // Inference input: fully available at t = 0.
        edges.push_back({-1, 0.0});
        continue;
      }
      const NodePartition& provider =
          workload.partitions()[static_cast<std::size_t>(req.provider)];
      edges.push_back(
          {req.provider,
           req.pos.fraction(provider.out_height, provider.out_width)});
    }
    edges_.push_back(std::move(edges));
  }
  consumers_.resize(static_cast<std::size_t>(workload.partition_count()));
  for (int consumer = 0; consumer < workload.partition_count(); ++consumer) {
    for (const Edge& e : edges_[static_cast<std::size_t>(consumer)]) {
      if (e.provider >= 0) {
        consumers_[static_cast<std::size_t>(e.provider)].push_back(consumer);
      }
    }
  }
}

std::vector<double> LLFitnessContext::finish_times(
    const MappingSolution& solution, const FitnessParams& params) const {
  const int count = workload_->partition_count();
  std::vector<double> finish(static_cast<std::size_t>(count), 0.0);
  std::vector<double> duration(static_cast<std::size_t>(count), 0.0);

  const std::vector<double> penalties =
      accumulation_penalties(solution, params);
  for (int i = 0; i < count; ++i) {
    const NodePartition& p = workload_->partitions()[static_cast<std::size_t>(i)];
    // Uninterrupted execution time of the node: every replica processes
    // ceil(windows/R) windows; within one core its AGs share the issue
    // bandwidth, so the per-window interval is f(AGs-of-this-node-in-core).
    // Cores burdened by cross-core accumulation stretch the node they host.
    int max_ags_one_core = 0;
    double comm_penalty = 0.0;
    for (int core : solution.cores_of(p.node)) {
      for (const Gene& g : solution.genes(core)) {
        if (g.node == p.node) {
          max_ags_one_core = std::max(max_ags_one_core, g.ag_count);
          comm_penalty = std::max(
              comm_penalty, penalties[static_cast<std::size_t>(core)]);
        }
      }
    }
    PIMCOMP_ASSERT(max_ags_one_core > 0, "node with no mapped AGs");

    // Row-forwarding fan-out: every produced row ships from its owner core
    // to every core hosting AGs of a consumer node, so a producer's owner
    // pays injection bandwidth proportional to the consumers' core spread.
    // This is what makes blanket over-replication unattractive in LL mode.
    int subscriber_cores = 0;
    for (int consumer : consumers_[static_cast<std::size_t>(i)]) {
      const NodePartition& c =
          workload_->partitions()[static_cast<std::size_t>(consumer)];
      subscriber_cores +=
          static_cast<int>(solution.cores_of(c.node).size());
    }
    const double fanout_bytes = static_cast<double>(solution.cycles(p.node)) *
                                p.cols_per_chunk * params.activation_bytes *
                                subscriber_cores;
    const double fanout_ps =
        fanout_bytes * 1000.0 / params.local_memory_gbps;

    duration[static_cast<std::size_t>(i)] =
        static_cast<double>(solution.cycles(p.node)) *
            static_cast<double>(cycle_time(max_ags_one_core, params)) +
        comm_penalty + fanout_ps;
  }

  // Partitions are in graph id order, which is topological — the same order
  // the LL scheduler emits per-core streams in.
  for (int i = 0; i < count; ++i) {
    double start = 0.0;
    double provider_finish_max = 0.0;
    for (const Edge& e : edges_[static_cast<std::size_t>(i)]) {
      if (e.provider < 0) continue;
      PIMCOMP_ASSERT(e.provider < i, "LL edges must respect topology");
      const double provider_finish =
          finish[static_cast<std::size_t>(e.provider)];
      const double provider_duration =
          duration[static_cast<std::size_t>(e.provider)];
      // The consumer may start once W of the provider's stream exists; the
      // provider produced uniformly over its last `duration` window.
      start = std::max(start, provider_finish - (1.0 - e.waiting_fraction) *
                                                    provider_duration);
      provider_finish_max = std::max(provider_finish_max, provider_finish);
    }
    // The node runs uninterrupted once started, but cannot finish before
    // its last input arrives (paper's pairwise composition rule).
    finish[static_cast<std::size_t>(i)] =
        std::max(start + duration[static_cast<std::size_t>(i)],
                 provider_finish_max);
  }
  return finish;
}

double LLFitnessContext::evaluate(const MappingSolution& solution,
                                  const FitnessParams& params) const {
  const std::vector<double> finish = finish_times(solution, params);
  double latest = 0.0;
  for (double f : finish) latest = std::max(latest, f);
  return latest;
}

// ---------------------------------------------------------------------------
// PopulationEvaluator.
// ---------------------------------------------------------------------------

PopulationEvaluator::PopulationEvaluator(const Workload& workload,
                                         const FitnessParams& params,
                                         PipelineMode mode,
                                         const LLFitnessContext& ll_context,
                                         int slots, int max_nodes_per_core)
    : workload_(&workload),
      params_(params),
      mode_(mode),
      ll_(&ll_context),
      slots_(slots),
      cores_(workload.hardware().core_count),
      parts_(workload.partition_count()),
      max_nodes_per_core_(max_nodes_per_core),
      genes_stride_(workload.hardware().core_count * max_nodes_per_core) {
  PIMCOMP_CHECK(slots >= 1, "PopulationEvaluator needs at least one slot");
  PIMCOMP_CHECK(max_nodes_per_core >= 1,
                "max_nodes_per_core must be positive");
  const auto s = static_cast<std::size_t>(slots_);
  gene_part_.resize(s * static_cast<std::size_t>(genes_stride_));
  gene_ags_.resize(s * static_cast<std::size_t>(genes_stride_));
  core_off_.resize(s * static_cast<std::size_t>(cores_ + 1));
  node_cycles_.resize(s * static_cast<std::size_t>(parts_));
  node_off_.resize(s * static_cast<std::size_t>(parts_ + 1));
  node_core_.resize(s * static_cast<std::size_t>(genes_stride_));
  node_ags_.resize(s * static_cast<std::size_t>(genes_stride_));
  node_cursor_.resize(s * static_cast<std::size_t>(parts_));
  penalty_.resize(s * static_cast<std::size_t>(cores_));
  if (mode_ == PipelineMode::kHighThroughput) {
    staircase_.resize(s * static_cast<std::size_t>(max_nodes_per_core_));
  } else {
    finish_.resize(s * static_cast<std::size_t>(parts_));
    duration_.resize(s * static_cast<std::size_t>(parts_));
  }
}

void PopulationEvaluator::load(int slot, const MappingSolution& solution) {
  PIMCOMP_ASSERT(slot >= 0 && slot < slots_, "evaluator slot out of range");
  PIMCOMP_ASSERT(solution.core_count() == cores_ &&
                     solution.max_nodes_per_core() <= max_nodes_per_core_,
                 "solution shape does not match the evaluator");
  const Workload& workload = *workload_;
  const auto base = static_cast<std::size_t>(slot);
  int* gene_part = &gene_part_[base * static_cast<std::size_t>(genes_stride_)];
  int* gene_ags = &gene_ags_[base * static_cast<std::size_t>(genes_stride_)];
  int* core_off = &core_off_[base * static_cast<std::size_t>(cores_ + 1)];
  int* node_cycles = &node_cycles_[base * static_cast<std::size_t>(parts_)];
  int* node_off = &node_off_[base * static_cast<std::size_t>(parts_ + 1)];
  int* node_core = &node_core_[base * static_cast<std::size_t>(genes_stride_)];
  int* node_ags = &node_ags_[base * static_cast<std::size_t>(genes_stride_)];
  int* cursor = &node_cursor_[base * static_cast<std::size_t>(parts_)];

  // Gather the genes core-major and total each node's AGs on the way.
  std::fill_n(cursor, parts_, 0);  // doubles as the per-node AG total here
  int pos = 0;
  for (int core = 0; core < cores_; ++core) {
    core_off[core] = pos;
    for (const Gene& g : solution.genes(core)) {
      const int part = workload.partition_index(g.node);
      gene_part[pos] = part;
      gene_ags[pos] = g.ag_count;
      cursor[part] += g.ag_count;
      ++pos;
    }
  }
  core_off[cores_] = pos;

  // Totals -> replication -> cycles, exactly as MappingSolution::cycles().
  for (int i = 0; i < parts_; ++i) {
    const NodePartition& p =
        workload.partitions()[static_cast<std::size_t>(i)];
    const int replication = cursor[i] / p.ags_per_replica();
    PIMCOMP_ASSERT(replication >= 1, "node without a full replica");
    node_cycles[i] = ceil_div(p.windows, replication);
  }

  // Per-node host-core CSR, rows core-ascending (the gather order above).
  std::fill_n(node_off, parts_ + 1, 0);
  for (int g = 0; g < pos; ++g) ++node_off[gene_part[g] + 1];
  for (int i = 0; i < parts_; ++i) node_off[i + 1] += node_off[i];
  std::copy_n(node_off, parts_, cursor);
  for (int core = 0; core < cores_; ++core) {
    for (int g = core_off[core]; g < core_off[core + 1]; ++g) {
      const int at = cursor[gene_part[g]]++;
      node_core[at] = core;
      node_ags[at] = gene_ags[g];
    }
  }
}

double PopulationEvaluator::evaluate(int slot) {
  PIMCOMP_ASSERT(slot >= 0 && slot < slots_, "evaluator slot out of range");
  const Workload& workload = *workload_;
  const auto base = static_cast<std::size_t>(slot);
  const int* gene_part =
      &gene_part_[base * static_cast<std::size_t>(genes_stride_)];
  const int* gene_ags =
      &gene_ags_[base * static_cast<std::size_t>(genes_stride_)];
  const int* core_off = &core_off_[base * static_cast<std::size_t>(cores_ + 1)];
  const int* node_cycles =
      &node_cycles_[base * static_cast<std::size_t>(parts_)];
  const int* node_off = &node_off_[base * static_cast<std::size_t>(parts_ + 1)];
  const int* node_core =
      &node_core_[base * static_cast<std::size_t>(genes_stride_)];
  const int* node_ags =
      &node_ags_[base * static_cast<std::size_t>(genes_stride_)];
  double* penalty = &penalty_[base * static_cast<std::size_t>(cores_)];

  // Cross-core accumulation penalties — mirrors accumulation_penalties():
  // partitions ascending, host cores ascending, identical arithmetic.
  std::fill_n(penalty, cores_, 0.0);
  for (int i = 0; i < parts_; ++i) {
    const NodePartition& p =
        workload.partitions()[static_cast<std::size_t>(i)];
    const int per_replica = p.ags_per_replica();
    if (per_replica <= 1) continue;
    const double elements =
        static_cast<double>(node_cycles[i]) * p.cols_per_chunk;
    const double bytes = elements * params_.activation_bytes;
    const double comm_ps = bytes * 1000.0 / params_.local_memory_gbps;
    const double fold_ps = elements / params_.vfu_ops_per_ns * 1000.0;

    int owner = -1;
    for (int e = node_off[i]; e < node_off[i + 1]; ++e) {
      if (node_ags[e] % per_replica == 0) continue;
      if (owner < 0) {
        owner = node_core[e];
      } else {
        penalty[node_core[e]] += comm_ps;
        penalty[owner] += comm_ps + fold_ps;
      }
    }
  }

  if (mode_ == PipelineMode::kHighThroughput) {
    // Fig 5 staircase per core — mirrors ht_core_times(); the max that
    // ht_fitness takes afterwards folds into the loop.
    std::pair<int, int>* staircase =
        &staircase_[base * static_cast<std::size_t>(max_nodes_per_core_)];
    double worst = 0.0;
    for (int core = 0; core < cores_; ++core) {
      int len = 0;
      int live = 0;
      for (int g = core_off[core]; g < core_off[core + 1]; ++g) {
        staircase[len++] = {node_cycles[gene_part[g]], gene_ags[g]};
        live += gene_ags[g];
      }
      std::sort(staircase, staircase + len);
      double time = 0.0;
      int prev_cycles = 0;
      for (int k = 0; k < len; ++k) {
        const auto& [cycles, ag_count] = staircase[k];
        if (cycles > prev_cycles) {
          time += static_cast<double>(cycle_time(live, params_)) *
                  (cycles - prev_cycles);
          prev_cycles = cycles;
        }
        live -= ag_count;
      }
      worst = std::max(worst, time + penalty[core]);
    }
    return worst;
  }

  // LL mode — mirrors LLFitnessContext::finish_times()/evaluate().
  double* finish = &finish_[base * static_cast<std::size_t>(parts_)];
  double* duration = &duration_[base * static_cast<std::size_t>(parts_)];
  const std::vector<std::vector<int>>& consumers = ll_->consumers();
  for (int i = 0; i < parts_; ++i) {
    const NodePartition& p =
        workload.partitions()[static_cast<std::size_t>(i)];
    int max_ags_one_core = 0;
    double comm_penalty = 0.0;
    for (int e = node_off[i]; e < node_off[i + 1]; ++e) {
      max_ags_one_core = std::max(max_ags_one_core, node_ags[e]);
      comm_penalty = std::max(comm_penalty, penalty[node_core[e]]);
    }
    PIMCOMP_ASSERT(max_ags_one_core > 0, "node with no mapped AGs");

    int subscriber_cores = 0;
    for (int consumer : consumers[static_cast<std::size_t>(i)]) {
      subscriber_cores += node_off[consumer + 1] - node_off[consumer];
    }
    const double fanout_bytes = static_cast<double>(node_cycles[i]) *
                                p.cols_per_chunk * params_.activation_bytes *
                                subscriber_cores;
    const double fanout_ps =
        fanout_bytes * 1000.0 / params_.local_memory_gbps;

    duration[i] =
        static_cast<double>(node_cycles[i]) *
            static_cast<double>(cycle_time(max_ags_one_core, params_)) +
        comm_penalty + fanout_ps;
  }
  const std::vector<std::vector<LLFitnessContext::Edge>>& edges = ll_->edges();
  for (int i = 0; i < parts_; ++i) {
    double start = 0.0;
    double provider_finish_max = 0.0;
    for (const LLFitnessContext::Edge& e :
         edges[static_cast<std::size_t>(i)]) {
      if (e.provider < 0) continue;
      const double provider_finish = finish[e.provider];
      const double provider_duration = duration[e.provider];
      start = std::max(start, provider_finish - (1.0 - e.waiting_fraction) *
                                                    provider_duration);
      provider_finish_max = std::max(provider_finish_max, provider_finish);
    }
    finish[i] = std::max(start + duration[i], provider_finish_max);
  }
  double latest = 0.0;
  for (int i = 0; i < parts_; ++i) latest = std::max(latest, finish[i]);
  return latest;
}

}  // namespace pimcomp
