#include "mapping/fitness.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
// pimcomp-layer-exempt: the fitness model reuses the scheduler's
// receptive-field geometry helpers (a data-only header, no control flow
// back into schedule/).
#include "schedule/receptive_field.hpp"

namespace pimcomp {

Picoseconds cycle_time(int live_ags, const FitnessParams& params) {
  PIMCOMP_ASSERT(live_ags >= 0, "negative AG count");
  if (live_ags == 0) return 0;
  const Picoseconds issue_bound = live_ags * params.issue_interval;
  return std::max(issue_bound, params.mvm_latency);
}

namespace {

/// Per-core cross-core accumulation penalties. A gene holding a *partial*
/// replica (ag_count not a multiple of ags-per-replica) belongs to an
/// accumulation group that spans cores: every operation cycle its partial
/// sums ship to the group owner (the first such core, matching
/// `MappingSolution::instantiate`), which folds them on its VFU. Member
/// cores pay injection bandwidth; the owner pays reception bandwidth plus
/// the VFU fold for every remote contributor — that concentration is what
/// makes scattered mappings slow in the simulator, so the fitness must see
/// it too.
std::vector<double> accumulation_penalties(const MappingSolution& solution,
                                           const FitnessParams& params) {
  std::vector<double> penalty(static_cast<std::size_t>(solution.core_count()),
                              0.0);
  const Workload& workload = solution.workload();
  for (const NodePartition& p : workload.partitions()) {
    const int per_replica = p.ags_per_replica();
    if (per_replica <= 1) continue;  // single-AG replicas never accumulate
    const double elements =
        static_cast<double>(solution.cycles(p.node)) * p.cols_per_chunk;
    const double bytes = elements * params.activation_bytes;
    const double comm_ps = bytes * 1000.0 / params.local_memory_gbps;
    const double fold_ps = elements / params.vfu_ops_per_ns * 1000.0;

    int owner = -1;
    for (int core : solution.cores_of(p.node)) {
      for (const Gene& g : solution.genes(core)) {
        if (g.node != p.node || g.ag_count % per_replica == 0) continue;
        if (owner < 0) {
          owner = core;  // first misaligned gene hosts the stitched groups
        } else {
          penalty[static_cast<std::size_t>(core)] += comm_ps;
          penalty[static_cast<std::size_t>(owner)] += comm_ps + fold_ps;
        }
      }
    }
  }
  return penalty;
}

}  // namespace

std::vector<double> ht_core_times(const MappingSolution& solution,
                                  const FitnessParams& params) {
  std::vector<double> times(static_cast<std::size_t>(solution.core_count()),
                            0.0);
  const std::vector<double> penalties =
      accumulation_penalties(solution, params);
  std::vector<std::pair<int, int>> staircase;  // (cycles, ag_count)
  for (int core = 0; core < solution.core_count(); ++core) {
    staircase.clear();
    int live = 0;
    const double comm_penalty = penalties[static_cast<std::size_t>(core)];
    for (const Gene& gene : solution.genes(core)) {
      staircase.emplace_back(solution.cycles(gene.node), gene.ag_count);
      live += gene.ag_count;
    }
    std::sort(staircase.begin(), staircase.end());
    // Walk the cycle-count staircase (paper Fig 5): while `live` AGs remain
    // active the core spends f(live) per operation cycle; nodes with fewer
    // cycles retire earlier.
    double time = 0.0;
    int prev_cycles = 0;
    for (const auto& [cycles, ag_count] : staircase) {
      if (cycles > prev_cycles) {
        time += static_cast<double>(cycle_time(live, params)) *
                (cycles - prev_cycles);
        prev_cycles = cycles;
      }
      live -= ag_count;
    }
    times[static_cast<std::size_t>(core)] = time + comm_penalty;
  }
  return times;
}

double ht_fitness(const MappingSolution& solution,
                  const FitnessParams& params) {
  const std::vector<double> times = ht_core_times(solution, params);
  double worst = 0.0;
  for (double t : times) worst = std::max(worst, t);
  return worst;
}

LLFitnessContext::LLFitnessContext(const Workload& workload)
    : workload_(&workload) {
  edges_.reserve(static_cast<std::size_t>(workload.partition_count()));
  for (const NodePartition& p : workload.partitions()) {
    std::vector<Edge> edges;
    for (const ProviderRequirement& req :
         trace_requirements(workload, p.node, 1, 1)) {
      if (req.provider < 0) {
        // Inference input: fully available at t = 0.
        edges.push_back({-1, 0.0});
        continue;
      }
      const NodePartition& provider =
          workload.partitions()[static_cast<std::size_t>(req.provider)];
      edges.push_back(
          {req.provider,
           req.pos.fraction(provider.out_height, provider.out_width)});
    }
    edges_.push_back(std::move(edges));
  }
  consumers_.resize(static_cast<std::size_t>(workload.partition_count()));
  for (int consumer = 0; consumer < workload.partition_count(); ++consumer) {
    for (const Edge& e : edges_[static_cast<std::size_t>(consumer)]) {
      if (e.provider >= 0) {
        consumers_[static_cast<std::size_t>(e.provider)].push_back(consumer);
      }
    }
  }
}

std::vector<double> LLFitnessContext::finish_times(
    const MappingSolution& solution, const FitnessParams& params) const {
  const int count = workload_->partition_count();
  std::vector<double> finish(static_cast<std::size_t>(count), 0.0);
  std::vector<double> duration(static_cast<std::size_t>(count), 0.0);

  const std::vector<double> penalties =
      accumulation_penalties(solution, params);
  for (int i = 0; i < count; ++i) {
    const NodePartition& p = workload_->partitions()[static_cast<std::size_t>(i)];
    // Uninterrupted execution time of the node: every replica processes
    // ceil(windows/R) windows; within one core its AGs share the issue
    // bandwidth, so the per-window interval is f(AGs-of-this-node-in-core).
    // Cores burdened by cross-core accumulation stretch the node they host.
    int max_ags_one_core = 0;
    double comm_penalty = 0.0;
    for (int core : solution.cores_of(p.node)) {
      for (const Gene& g : solution.genes(core)) {
        if (g.node == p.node) {
          max_ags_one_core = std::max(max_ags_one_core, g.ag_count);
          comm_penalty = std::max(
              comm_penalty, penalties[static_cast<std::size_t>(core)]);
        }
      }
    }
    PIMCOMP_ASSERT(max_ags_one_core > 0, "node with no mapped AGs");

    // Row-forwarding fan-out: every produced row ships from its owner core
    // to every core hosting AGs of a consumer node, so a producer's owner
    // pays injection bandwidth proportional to the consumers' core spread.
    // This is what makes blanket over-replication unattractive in LL mode.
    int subscriber_cores = 0;
    for (int consumer : consumers_[static_cast<std::size_t>(i)]) {
      const NodePartition& c =
          workload_->partitions()[static_cast<std::size_t>(consumer)];
      subscriber_cores +=
          static_cast<int>(solution.cores_of(c.node).size());
    }
    const double fanout_bytes = static_cast<double>(solution.cycles(p.node)) *
                                p.cols_per_chunk * params.activation_bytes *
                                subscriber_cores;
    const double fanout_ps =
        fanout_bytes * 1000.0 / params.local_memory_gbps;

    duration[static_cast<std::size_t>(i)] =
        static_cast<double>(solution.cycles(p.node)) *
            static_cast<double>(cycle_time(max_ags_one_core, params)) +
        comm_penalty + fanout_ps;
  }

  // Partitions are in graph id order, which is topological — the same order
  // the LL scheduler emits per-core streams in.
  for (int i = 0; i < count; ++i) {
    double start = 0.0;
    double provider_finish_max = 0.0;
    for (const Edge& e : edges_[static_cast<std::size_t>(i)]) {
      if (e.provider < 0) continue;
      PIMCOMP_ASSERT(e.provider < i, "LL edges must respect topology");
      const double provider_finish =
          finish[static_cast<std::size_t>(e.provider)];
      const double provider_duration =
          duration[static_cast<std::size_t>(e.provider)];
      // The consumer may start once W of the provider's stream exists; the
      // provider produced uniformly over its last `duration` window.
      start = std::max(start, provider_finish - (1.0 - e.waiting_fraction) *
                                                    provider_duration);
      provider_finish_max = std::max(provider_finish_max, provider_finish);
    }
    // The node runs uninterrupted once started, but cannot finish before
    // its last input arrives (paper's pairwise composition rule).
    finish[static_cast<std::size_t>(i)] =
        std::max(start + duration[static_cast<std::size_t>(i)],
                 provider_finish_max);
  }
  return finish;
}

double LLFitnessContext::evaluate(const MappingSolution& solution,
                                  const FitnessParams& params) const {
  const std::vector<double> finish = finish_times(solution, params);
  double latest = 0.0;
  for (double f : finish) latest = std::max(latest, f);
  return latest;
}

}  // namespace pimcomp
