#ifndef PIMCOMP_MAPPING_MAPPING_SOLUTION_HPP
#define PIMCOMP_MAPPING_MAPPING_SOLUTION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "mapping/gene.hpp"
#include "partition/array_group.hpp"
#include "partition/workload.hpp"

namespace pimcomp {

/// The joint weight-replicating + core-mapping decision: which AGs of which
/// node live on which core. This is both the GA's phenotype and the input to
/// dataflow scheduling.
///
/// Invariants (enforced by the mutation primitives and checked by
/// `validate()`):
///  * each node appears at most once per core (genes merge);
///  * per-core crossbars used <= hardware budget;
///  * per-core distinct nodes <= max_nodes_per_core (paper's
///    max_node_num_in_core chromosome bound);
///  * each node's total AG count is a positive multiple of its
///    ags-per-replica, i.e. replication is integral and >= 1.
class MappingSolution {
 public:
  MappingSolution(const Workload& workload, int max_nodes_per_core);

  const Workload& workload() const { return *workload_; }
  int core_count() const { return core_count_; }
  int max_nodes_per_core() const { return max_nodes_per_core_; }

  /// Genes resident on a core (each a distinct node).
  const std::vector<Gene>& genes(int core) const;

  // --- Mutation primitives (used by mappers) -------------------------------

  /// True when `ag_count` more AGs of `node` fit on `core` (crossbar budget
  /// and node-slot bound).
  bool can_add(int core, NodeId node, int ag_count) const;

  /// Adds AGs of `node` to `core`, merging into an existing gene.
  /// Throws if infeasible (call can_add first).
  void add(int core, NodeId node, int ag_count);

  /// Removes up to `ag_count` AGs of `node` from `core`; returns how many
  /// were actually removed (0 when the node is absent).
  int remove(int core, NodeId node, int ag_count);

  // --- Queries ---------------------------------------------------------------

  int total_ags(NodeId node) const;
  /// Replication factor: total AGs / AGs-per-replica (floor).
  int replication(NodeId node) const;
  /// Operation cycles each replica runs: ceil(windows / replication).
  int cycles(NodeId node) const;

  int xbars_used(int core) const;
  int free_xbars(int core) const;
  int gene_count(int core) const;
  bool has_node(int core, NodeId node) const;
  /// Cores currently holding at least one AG of `node`.
  std::vector<int> cores_of(NodeId node) const;

  /// Total crossbars used across all cores.
  std::int64_t total_xbars_used() const;

  /// Checks every invariant; throws Error with a diagnostic on violation.
  void validate() const;

  /// Expands genes into concrete AG instances (replica-major assignment in
  /// core order) for the scheduler. Requires a valid solution.
  std::vector<AgInstance> instantiate() const;

  /// Chromosome in the paper's integer format: core-major, fixed
  /// max_nodes_per_core slots per core, zero-padded.
  std::vector<std::int64_t> encode() const;

  /// Rebuilds a solution from the integer chromosome.
  static MappingSolution decode(const Workload& workload,
                                int max_nodes_per_core,
                                const std::vector<std::int64_t>& chromosome);

  /// Serializes the mapping decision for the persistent artifact cache:
  /// `{"max_nodes_per_core": N, "chromosome": [...]}` in the paper's
  /// integer gene format. The workload itself is NOT serialized — it is
  /// recomputed deterministically from (graph, hardware) and re-attached
  /// by from_json.
  Json to_json() const;

  /// Inverse of to_json against an already-partitioned workload. Every
  /// invariant is re-checked on load (decode rejects infeasible
  /// placements, then validate() re-proves replication integrality), so a
  /// corrupt or foreign artifact can never smuggle an invalid mapping into
  /// the scheduler. Throws JsonError/Error on violation.
  static MappingSolution from_json(const Workload& workload, const Json& json);

  std::string to_string() const;

 private:
  const Workload* workload_;
  int core_count_;
  int max_nodes_per_core_;
  std::vector<std::vector<Gene>> genes_;  // per core
  std::vector<int> xbars_used_;           // per core cache
  std::vector<int> total_ags_;            // per partition index cache
};

}  // namespace pimcomp

#endif  // PIMCOMP_MAPPING_MAPPING_SOLUTION_HPP
