#include "mapping/greedy_mapper.hpp"


#include "common/error.hpp"
// pimcomp-layer-exempt: self-registration into the mapper registry — the
// plugin seam every strategy TU uses, not a dependency on core logic.
#include "core/pipeline.hpp"

namespace pimcomp {

MappingSolution GreedyMapper::map(const Workload& workload,
                                  const MapperOptions& options) {
  MappingSolution solution(workload, options.max_nodes_per_core);
  const int cores = solution.core_count();
  int cursor = 0;
  for (const NodePartition& p : workload.partitions()) {
    for (int ag = 0; ag < p.ags_per_replica(); ++ag) {
      bool placed = false;
      for (int step = 0; step < cores; ++step) {
        const int c = (cursor + step) % cores;
        if (solution.can_add(c, p.node, 1)) {
          solution.add(c, p.node, 1);
          cursor = c;
          placed = true;
          break;
        }
      }
      if (!placed) {
        throw CapacityError("greedy mapper could not place node " +
                            std::to_string(p.node));
      }
    }
  }
  solution.validate();
  return solution;
}

PIMCOMP_REGISTER_MAPPER("greedy", [](const CompileOptions&) {
  return std::make_unique<GreedyMapper>();
});

}  // namespace pimcomp
