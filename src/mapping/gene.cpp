#include "mapping/gene.hpp"

#include <sstream>

#include "common/error.hpp"

namespace pimcomp {

std::string Gene::to_string() const {
  std::ostringstream oss;
  oss << "gene(node=" << node << " ags=" << ag_count << ")";
  return oss.str();
}

std::int64_t encode_gene(const Gene& gene) {
  if (gene.node < 0 || gene.ag_count == 0) return 0;
  PIMCOMP_CHECK(gene.ag_count > 0 && gene.ag_count <= kMaxAgCountPerGene,
                "gene ag_count must be in [1, 9999] for integer encoding");
  return static_cast<std::int64_t>(gene.node) * 10000 + gene.ag_count;
}

Gene decode_gene(std::int64_t encoded) {
  if (encoded == 0) return Gene{};
  PIMCOMP_CHECK(encoded > 0, "encoded gene must be non-negative");
  Gene gene;
  gene.node = static_cast<NodeId>(encoded / 10000);
  gene.ag_count = static_cast<int>(encoded % 10000);
  PIMCOMP_CHECK(gene.ag_count > 0, "encoded gene has zero AG count");
  return gene;
}

}  // namespace pimcomp
