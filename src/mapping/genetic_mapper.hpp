#ifndef PIMCOMP_MAPPING_GENETIC_MAPPER_HPP
#define PIMCOMP_MAPPING_GENETIC_MAPPER_HPP

#include <vector>

#include "mapping/mapper.hpp"

namespace pimcomp {

/// Genetic-algorithm hyperparameters. The paper's evaluation uses
/// population 100 and 200 generations (Table II).
struct GaConfig {
  int population = 100;
  int generations = 200;
  int elite = 2;              ///< individuals copied unchanged each generation
  int tournament_size = 3;    ///< selection pressure
  int mutations_per_child = 2;  ///< up to this many mutation ops per child
  double target_fill = 0.90;  ///< crossbar-utilization target at initialization

  /// Island-model parallelism: the population is split across this many
  /// sub-populations that evolve independently (one RNG stream each, split
  /// from the request seed) and exchange their best individual on a ring
  /// every `migration_interval` generations. Part of the result's identity:
  /// equal (seed, islands) is bit-reproducible at ANY thread count, and
  /// islands=1 replays the sequential GA's exact trajectory — which is why
  /// the default is a fixed number rather than the machine's core count.
  /// Clamped to the population size.
  int islands = 4;
  /// Generations each island evolves between ring migrations.
  int migration_interval = 10;

  /// Which of the four mutation operators are enabled (for the ablation
  /// bench); all on by default.
  bool enable_grow = true;    ///< op I: increase a node's replication
  bool enable_shrink = true;  ///< op II: decrease a node's replication
  bool enable_spread = true;  ///< op III: spread a gene's AGs to other cores
  bool enable_merge = true;   ///< op IV: merge a gene into another core

  /// Seed one individual with the pipeline-balanced heuristic solution
  /// (memetic initialization). With the paper's full budget (100 x 200) the
  /// GA reaches this region on its own; the seed keeps reduced-budget runs
  /// from starting below the baseline.
  bool seed_baseline = true;
};

/// Convergence record of one GA run.
struct GaStats {
  double initial_best = 0.0;
  double final_best = 0.0;
  std::vector<double> best_history;  ///< best fitness per generation
  int evaluations = 0;
};

/// The paper's jointly-optimizing weight-replicating + core-mapping stage
/// (§IV-C): a genetic algorithm over chromosomes of
/// `core_num x max_node_num_in_core` genes, each gene holding several AGs of
/// one node. Crossover is skipped (it "lacks practical significance",
/// §IV-C1); evolution is driven by four mutation operators and the
/// mode-specific fitness (F_HT from Fig 5, F_LL from Fig 6).
class GeneticMapper : public Mapper {
 public:
  explicit GeneticMapper(GaConfig config = {}) : config_(config) {}

  std::string name() const override { return "pimcomp-ga"; }

  MappingSolution map(const Workload& workload,
                      const MapperOptions& options) override;

  /// Convergence data of the most recent map() call.
  const GaStats& last_stats() const { return stats_; }

  const GaStats* convergence() const override { return &stats_; }

  const GaConfig& config() const { return config_; }

 private:
  GaConfig config_;
  GaStats stats_;
};

}  // namespace pimcomp

#endif  // PIMCOMP_MAPPING_GENETIC_MAPPER_HPP
