#include "mapping/genetic_mapper.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/random.hpp"
// pimcomp-layer-exempt: self-registration into the mapper registry — the
// plugin seam every strategy TU uses, not a dependency on core logic.
#include "core/pipeline.hpp"
#include "mapping/fitness.hpp"
#include "mapping/puma_mapper.hpp"

namespace pimcomp {

std::string to_string(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::kHighThroughput: return "high-throughput";
    case PipelineMode::kLowLatency: return "low-latency";
  }
  return "unknown";
}

namespace {

/// Finds a core that can accept `ag_count` AGs of `node`, trying a few random
/// probes before falling back to a full scan from a random offset. Returns
/// -1 when no core fits.
int find_feasible_core(const MappingSolution& s, Rng& rng, NodeId node,
                       int ag_count, int exclude = -1) {
  const int cores = s.core_count();
  for (int probe = 0; probe < 8; ++probe) {
    const int c = rng.uniform_int(cores);
    if (c != exclude && s.can_add(c, node, ag_count)) return c;
  }
  const int offset = rng.uniform_int(cores);
  for (int i = 0; i < cores; ++i) {
    const int c = (offset + i) % cores;
    if (c != exclude && s.can_add(c, node, ag_count)) return c;
  }
  return -1;
}

/// Places one full replica (ags_per_replica AGs) of `node`, preferring a
/// single core so that intra-replica accumulation stays local. With
/// `prefer_locality` (LL mode) cores already hosting the node are tried
/// first, keeping the node's host-core set small — every extra host core
/// multiplies the row-forwarding fan-out its providers pay. Returns false
/// (leaving the solution unchanged) when placement is impossible.
bool place_replica(MappingSolution& s, Rng& rng, const NodePartition& p,
                   bool prefer_locality = false) {
  const int ags = p.ags_per_replica();
  if (prefer_locality) {
    for (int core : s.cores_of(p.node)) {
      if (s.can_add(core, p.node, ags)) {
        s.add(core, p.node, ags);
        return true;
      }
    }
  }
  const int whole_core = find_feasible_core(s, rng, p.node, ags);
  if (whole_core >= 0) {
    s.add(whole_core, p.node, ags);
    return true;
  }
  // Scatter AG by AG; roll back on failure.
  std::vector<int> placed_cores;
  placed_cores.reserve(static_cast<std::size_t>(ags));
  for (int i = 0; i < ags; ++i) {
    const int c = find_feasible_core(s, rng, p.node, 1);
    if (c < 0) {
      for (int undo : placed_cores) s.remove(undo, p.node, 1);
      return false;
    }
    s.add(c, p.node, 1);
    placed_cores.push_back(c);
  }
  return true;
}

/// Removes one full replica's worth of AGs from random cores holding the
/// node. The caller guarantees replication >= 2.
void remove_replica(MappingSolution& s, Rng& rng, const NodePartition& p) {
  int remaining = p.ags_per_replica();
  std::vector<int> cores = s.cores_of(p.node);
  rng.shuffle(cores);
  for (int c : cores) {
    if (remaining == 0) break;
    remaining -= s.remove(c, p.node, remaining);
  }
  PIMCOMP_ASSERT(remaining == 0, "replica removal fell short");
}

/// Per-node replication targets for one random individual. Half the
/// population draws window-proportional targets (pipeline-shaped, with
/// multiplicative noise), the other half draws unstructured random targets;
/// the mix keeps the initial population diverse across very different
/// replication scales (a node with thousands of sliding windows may deserve
/// a hundred replicas, which single-step mutations alone would take too
/// long to reach).
std::vector<int> replication_targets(const Workload& workload, Rng& rng,
                                     double target_fill) {
  const int count = workload.partition_count();
  std::vector<int> targets(static_cast<std::size_t>(count), 1);
  const auto budget = static_cast<std::int64_t>(
      target_fill * static_cast<double>(workload.total_xbars_available()));

  if (rng.bernoulli(0.5)) {
    // Window-proportional: find the per-replica cycle target C such that
    // R_i = ceil(windows_i / C) fits the budget, then perturb.
    int max_windows = 1;
    for (const NodePartition& p : workload.partitions()) {
      max_windows = std::max(max_windows, p.windows);
    }
    auto xbars_needed = [&](int cycle_target) {
      std::int64_t total = 0;
      for (const NodePartition& p : workload.partitions()) {
        const int replicas =
            std::min(p.windows, (p.windows + cycle_target - 1) / cycle_target);
        total += static_cast<std::int64_t>(replicas) * p.xbars_per_replica();
      }
      return total;
    };
    int lo = 1, hi = max_windows;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (xbars_needed(mid) <= budget) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    for (int i = 0; i < count; ++i) {
      const NodePartition& p =
          workload.partitions()[static_cast<std::size_t>(i)];
      const double noise = 0.5 + rng.uniform01();
      const int base = (p.windows + lo - 1) / lo;
      targets[static_cast<std::size_t>(i)] = std::max(
          1, std::min(p.windows,
                      static_cast<int>(static_cast<double>(base) * noise)));
    }
  } else {
    // Unstructured: heavy-tailed random replication per node.
    for (int i = 0; i < count; ++i) {
      const NodePartition& p =
          workload.partitions()[static_cast<std::size_t>(i)];
      const double u = rng.uniform01();
      targets[static_cast<std::size_t>(i)] = std::max(
          1, static_cast<int>(u * u * p.windows));
    }
  }
  return targets;
}

/// Builds one random valid individual: one replica of every node first
/// (largest first so big layers are not stranded by fragmentation), then
/// growth toward random replication targets until the utilization budget or
/// placement failure.
MappingSolution random_individual(const Workload& workload,
                                  const MapperOptions& options, Rng& rng,
                                  double target_fill) {
  // LL mode prefers tight host-core sets (row-forwarding fan-out); HT mode
  // benefits from spreading AGs to parallelize MVM issue.
  const bool prefer_locality = options.mode == PipelineMode::kLowLatency;
  MappingSolution s(workload, options.max_nodes_per_core);

  std::vector<const NodePartition*> order;
  order.reserve(static_cast<std::size_t>(workload.partition_count()));
  for (const NodePartition& p : workload.partitions()) order.push_back(&p);
  std::sort(order.begin(), order.end(),
            [](const NodePartition* a, const NodePartition* b) {
              return a->xbars_per_replica() > b->xbars_per_replica();
            });
  for (const NodePartition* p : order) {
    if (!place_replica(s, rng, *p, prefer_locality)) {
      throw CapacityError(
          "cannot place one replica of every node; raise core_count or "
          "max_nodes_per_core (node " +
          std::to_string(p->node) + " was stranded)");
    }
  }

  const std::vector<int> targets =
      replication_targets(workload, rng, target_fill);
  const auto budget = static_cast<std::int64_t>(
      target_fill * static_cast<double>(workload.total_xbars_available()));
  std::vector<const NodePartition*> growable = order;
  while (!growable.empty() && s.total_xbars_used() < budget) {
    const int pick = rng.pick_index(growable);
    const NodePartition* p = growable[static_cast<std::size_t>(pick)];
    const int target =
        targets[static_cast<std::size_t>(workload.partition_index(p->node))];
    if (s.replication(p->node) >= std::min(target, p->windows) ||
        !place_replica(s, rng, *p, prefer_locality)) {
      growable.erase(growable.begin() + pick);
    }
  }
  return s;
}

/// Mutation I: grow a random node's replication. The step size scales with
/// the current replication (geometric moves) so heavily-windowed nodes can
/// reach their useful replication range within a GA run.
bool mutate_grow(MappingSolution& s, Rng& rng, const Workload& workload,
                 bool prefer_locality) {
  const int pick = rng.uniform_int(workload.partition_count());
  const NodePartition& p =
      workload.partitions()[static_cast<std::size_t>(pick)];
  const int current = s.replication(p.node);
  if (current >= p.windows) return false;
  const int step = 1 + rng.uniform_int(std::max(1, current / 2));
  bool grew = false;
  for (int i = 0; i < step && s.replication(p.node) < p.windows; ++i) {
    if (!place_replica(s, rng, p, prefer_locality)) break;
    grew = true;
  }
  return grew;
}

/// Mutation II: shrink a random node's replication (geometric step, never
/// below one replica).
bool mutate_shrink(MappingSolution& s, Rng& rng, const Workload& workload) {
  const int pick = rng.uniform_int(workload.partition_count());
  const NodePartition& p =
      workload.partitions()[static_cast<std::size_t>(pick)];
  const int current = s.replication(p.node);
  if (current < 2) return false;
  const int step = 1 + rng.uniform_int(std::max(1, (current - 1) / 2));
  for (int i = 0; i < step && s.replication(p.node) >= 2; ++i) {
    remove_replica(s, rng, p);
  }
  return true;
}

/// Mutation III: spread part of a random gene to other cores.
bool mutate_spread(MappingSolution& s, Rng& rng) {
  const int core = rng.uniform_int(s.core_count());
  const auto& genes = s.genes(core);
  if (genes.empty()) return false;
  const Gene gene = genes[static_cast<std::size_t>(rng.pick_index(genes))];
  if (gene.ag_count < 2) return false;
  const int to_move = rng.uniform_range(1, gene.ag_count - 1);
  int moved = 0;
  for (int i = 0; i < to_move; ++i) {
    const int dst = find_feasible_core(s, rng, gene.node, 1, core);
    if (dst < 0) break;
    s.remove(core, gene.node, 1);
    s.add(dst, gene.node, 1);
    ++moved;
  }
  return moved > 0;
}

/// Mutation IV: merge a gene into a same-node gene on another core. Half of
/// the time the merge targets *partial-replica* genes (counts misaligned to
/// ags-per-replica), pulling a remainder onto another remainder's core so
/// the stitched accumulation group becomes core-local — the move that
/// directly removes cross-core partial-sum traffic.
bool mutate_merge(MappingSolution& s, Rng& rng, const Workload& workload) {
  const int pick = rng.uniform_int(workload.partition_count());
  const NodePartition& p =
      workload.partitions()[static_cast<std::size_t>(pick)];
  std::vector<int> cores = s.cores_of(p.node);
  if (cores.size() < 2) return false;

  const int per_replica = p.ags_per_replica();
  auto count_on = [&](int core) {
    for (const Gene& g : s.genes(core)) {
      if (g.node == p.node) return g.ag_count;
    }
    return 0;
  };

  int src = -1;
  int dst = -1;
  if (per_replica > 1 && rng.bernoulli(0.5)) {
    // Alignment merge: move one remainder onto another remainder's core.
    std::vector<int> misaligned;
    for (int core : cores) {
      if (count_on(core) % per_replica != 0) misaligned.push_back(core);
    }
    if (misaligned.size() >= 2) {
      rng.shuffle(misaligned);
      src = misaligned[0];
      dst = misaligned[1];
    }
  }
  if (src < 0) {
    rng.shuffle(cores);
    src = cores[0];
    dst = cores[1];
  }

  const int src_count = count_on(src);
  int movable = 0;
  if (per_replica > 1 && src_count % per_replica != 0) {
    // Prefer moving exactly the misaligned remainder.
    const int remainder = src_count % per_replica;
    if (s.can_add(dst, p.node, remainder)) movable = remainder;
  }
  if (movable == 0) {
    while (movable < src_count && s.can_add(dst, p.node, movable + 1)) {
      ++movable;
    }
  }
  if (movable == 0) return false;
  s.remove(src, p.node, movable);
  s.add(dst, p.node, movable);
  return true;
}

struct Individual {
  MappingSolution solution;
  double fitness = 0.0;
};

}  // namespace

MappingSolution GeneticMapper::map(const Workload& workload,
                                   const MapperOptions& options) {
  PIMCOMP_CHECK(config_.population >= 1, "population must be >= 1");
  PIMCOMP_CHECK(config_.generations >= 0, "generations must be >= 0");
  PIMCOMP_CHECK(config_.elite >= 0 && config_.elite <= config_.population,
                "elite must be within population");
  PIMCOMP_CHECK(config_.enable_grow || config_.enable_shrink ||
                    config_.enable_spread || config_.enable_merge,
                "at least one mutation operator must be enabled");

  Rng rng(options.seed);
  const FitnessParams params =
      FitnessParams::from(workload.hardware(), options.parallelism_degree);
  const LLFitnessContext ll_context(workload);

  stats_ = GaStats{};
  auto evaluate = [&](const MappingSolution& s) {
    ++stats_.evaluations;
    return options.mode == PipelineMode::kHighThroughput
               ? ht_fitness(s, params)
               : ll_context.evaluate(s, params);
  };

  std::vector<Individual> population;
  population.reserve(static_cast<std::size_t>(config_.population));
  // Memetic seeding: one individual starts from the pipeline-balanced
  // heuristic. Elitism keeps it only while nothing fitter is found, so the
  // GA's result can never fall below the baseline under its own objective
  // (both the Fig 5 staircase and the Fig 6 recursion now price cross-core
  // accumulation and row-forwarding fan-out, which keeps the objective
  // aligned with the simulator).
  if (config_.seed_baseline && config_.population > 1) {
    try {
      PumaMapper baseline;
      MappingSolution s = baseline.map(workload, options);
      const double f = evaluate(s);
      population.push_back({std::move(s), f});
    } catch (const CapacityError&) {
      // Fall through to purely random initialization.
    }
  }
  while (static_cast<int>(population.size()) < config_.population) {
    // Large populations make initialization itself minutes-long on big
    // models, so cancellation is observed per individual here and per
    // generation below — never finer, keeping the overhead unmeasurable.
    if (options.cancel != nullptr) {
      options.cancel->throw_if_cancelled("ga population initialization");
    }
    MappingSolution s =
        random_individual(workload, options, rng, config_.target_fill);
    const double f = evaluate(s);
    population.push_back({std::move(s), f});
  }

  auto best_index = [&population]() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < population.size(); ++i) {
      if (population[i].fitness < population[best].fitness) best = i;
    }
    return best;
  };

  stats_.initial_best = population[best_index()].fitness;
  stats_.best_history.push_back(stats_.initial_best);

  std::vector<int> ops;
  if (config_.enable_grow) ops.push_back(0);
  if (config_.enable_shrink) ops.push_back(1);
  if (config_.enable_spread) ops.push_back(2);
  if (config_.enable_merge) ops.push_back(3);

  auto tournament = [&]() -> const Individual& {
    std::size_t winner =
        static_cast<std::size_t>(rng.uniform_int(config_.population));
    for (int i = 1; i < config_.tournament_size; ++i) {
      const auto rival =
          static_cast<std::size_t>(rng.uniform_int(config_.population));
      if (population[rival].fitness < population[winner].fitness) {
        winner = rival;
      }
    }
    return population[winner];
  };

  for (int gen = 0; gen < config_.generations; ++gen) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      throw CancelledError("mapping cancelled at generation " +
                           std::to_string(gen) + " of " +
                           std::to_string(config_.generations));
    }
    std::vector<Individual> next;
    next.reserve(population.size());
    // Elitism: carry the best individuals unchanged (no crossover; the
    // paper skips it as impractical for this encoding).
    std::vector<std::size_t> ranking(population.size());
    for (std::size_t i = 0; i < ranking.size(); ++i) ranking[i] = i;
    std::sort(ranking.begin(), ranking.end(), [&](std::size_t a, std::size_t b) {
      return population[a].fitness < population[b].fitness;
    });
    for (int e = 0; e < config_.elite && e < config_.population; ++e) {
      next.push_back(population[ranking[static_cast<std::size_t>(e)]]);
    }
    while (static_cast<int>(next.size()) < config_.population) {
      Individual child = tournament();
      const int mutation_count =
          rng.uniform_range(1, std::max(1, config_.mutations_per_child));
      bool changed = false;
      for (int m = 0; m < mutation_count; ++m) {
        switch (ops[static_cast<std::size_t>(rng.pick_index(ops))]) {
          case 0:
            changed |= mutate_grow(child.solution, rng, workload,
                                   options.mode == PipelineMode::kLowLatency);
            break;
          case 1: changed |= mutate_shrink(child.solution, rng, workload); break;
          case 2: changed |= mutate_spread(child.solution, rng); break;
          case 3: changed |= mutate_merge(child.solution, rng, workload); break;
          default: break;
        }
      }
      if (changed) child.fitness = evaluate(child.solution);
      next.push_back(std::move(child));
    }
    population = std::move(next);
    stats_.best_history.push_back(population[best_index()].fitness);
  }

  const std::size_t best = best_index();
  stats_.final_best = population[best].fitness;
  MappingSolution result = std::move(population[best].solution);
  result.validate();
  return result;
}

PIMCOMP_REGISTER_MAPPER("ga", [](const CompileOptions& options) {
  return std::make_unique<GeneticMapper>(options.ga);
});

}  // namespace pimcomp
