#include "mapping/genetic_mapper.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/thread_pool.hpp"
// pimcomp-layer-exempt: self-registration into the mapper registry — the
// plugin seam every strategy TU uses, not a dependency on core logic.
#include "core/pipeline.hpp"
#include "mapping/fitness.hpp"
#include "mapping/puma_mapper.hpp"

namespace pimcomp {

std::string to_string(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::kHighThroughput: return "high-throughput";
    case PipelineMode::kLowLatency: return "low-latency";
  }
  return "unknown";
}

namespace {

/// Finds a core that can accept `ag_count` AGs of `node`, trying a few random
/// probes before falling back to a full scan from a random offset. Returns
/// -1 when no core fits.
int find_feasible_core(const MappingSolution& s, Rng& rng, NodeId node,
                       int ag_count, int exclude = -1) {
  const int cores = s.core_count();
  for (int probe = 0; probe < 8; ++probe) {
    const int c = rng.uniform_int(cores);
    if (c != exclude && s.can_add(c, node, ag_count)) return c;
  }
  const int offset = rng.uniform_int(cores);
  for (int i = 0; i < cores; ++i) {
    const int c = (offset + i) % cores;
    if (c != exclude && s.can_add(c, node, ag_count)) return c;
  }
  return -1;
}

/// Places one full replica (ags_per_replica AGs) of `node`, preferring a
/// single core so that intra-replica accumulation stays local. With
/// `prefer_locality` (LL mode) cores already hosting the node are tried
/// first, keeping the node's host-core set small — every extra host core
/// multiplies the row-forwarding fan-out its providers pay. Returns false
/// (leaving the solution unchanged) when placement is impossible.
bool place_replica(MappingSolution& s, Rng& rng, const NodePartition& p,
                   bool prefer_locality = false) {
  const int ags = p.ags_per_replica();
  if (prefer_locality) {
    for (int core : s.cores_of(p.node)) {
      if (s.can_add(core, p.node, ags)) {
        s.add(core, p.node, ags);
        return true;
      }
    }
  }
  const int whole_core = find_feasible_core(s, rng, p.node, ags);
  if (whole_core >= 0) {
    s.add(whole_core, p.node, ags);
    return true;
  }
  // Scatter AG by AG; roll back on failure.
  std::vector<int> placed_cores;
  placed_cores.reserve(static_cast<std::size_t>(ags));
  for (int i = 0; i < ags; ++i) {
    const int c = find_feasible_core(s, rng, p.node, 1);
    if (c < 0) {
      for (int undo : placed_cores) s.remove(undo, p.node, 1);
      return false;
    }
    s.add(c, p.node, 1);
    placed_cores.push_back(c);
  }
  return true;
}

/// Removes one full replica's worth of AGs from random cores holding the
/// node. The caller guarantees replication >= 2.
void remove_replica(MappingSolution& s, Rng& rng, const NodePartition& p) {
  int remaining = p.ags_per_replica();
  std::vector<int> cores = s.cores_of(p.node);
  rng.shuffle(cores);
  for (int c : cores) {
    if (remaining == 0) break;
    remaining -= s.remove(c, p.node, remaining);
  }
  PIMCOMP_ASSERT(remaining == 0, "replica removal fell short");
}

/// Per-node replication targets for one random individual. Half the
/// population draws window-proportional targets (pipeline-shaped, with
/// multiplicative noise), the other half draws unstructured random targets;
/// the mix keeps the initial population diverse across very different
/// replication scales (a node with thousands of sliding windows may deserve
/// a hundred replicas, which single-step mutations alone would take too
/// long to reach).
std::vector<int> replication_targets(const Workload& workload, Rng& rng,
                                     double target_fill) {
  const int count = workload.partition_count();
  std::vector<int> targets(static_cast<std::size_t>(count), 1);
  const auto budget = static_cast<std::int64_t>(
      target_fill * static_cast<double>(workload.total_xbars_available()));

  if (rng.bernoulli(0.5)) {
    // Window-proportional: find the per-replica cycle target C such that
    // R_i = ceil(windows_i / C) fits the budget, then perturb.
    int max_windows = 1;
    for (const NodePartition& p : workload.partitions()) {
      max_windows = std::max(max_windows, p.windows);
    }
    auto xbars_needed = [&](int cycle_target) {
      std::int64_t total = 0;
      for (const NodePartition& p : workload.partitions()) {
        const int replicas =
            std::min(p.windows, (p.windows + cycle_target - 1) / cycle_target);
        total += static_cast<std::int64_t>(replicas) * p.xbars_per_replica();
      }
      return total;
    };
    int lo = 1, hi = max_windows;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (xbars_needed(mid) <= budget) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    for (int i = 0; i < count; ++i) {
      const NodePartition& p =
          workload.partitions()[static_cast<std::size_t>(i)];
      const double noise = 0.5 + rng.uniform01();
      const int base = (p.windows + lo - 1) / lo;
      targets[static_cast<std::size_t>(i)] = std::max(
          1, std::min(p.windows,
                      static_cast<int>(static_cast<double>(base) * noise)));
    }
  } else {
    // Unstructured: heavy-tailed random replication per node.
    for (int i = 0; i < count; ++i) {
      const NodePartition& p =
          workload.partitions()[static_cast<std::size_t>(i)];
      const double u = rng.uniform01();
      targets[static_cast<std::size_t>(i)] = std::max(
          1, static_cast<int>(u * u * p.windows));
    }
  }
  return targets;
}

/// Builds one random valid individual: one replica of every node first
/// (largest first so big layers are not stranded by fragmentation), then
/// growth toward random replication targets until the utilization budget or
/// placement failure.
MappingSolution random_individual(const Workload& workload,
                                  const MapperOptions& options, Rng& rng,
                                  double target_fill) {
  // LL mode prefers tight host-core sets (row-forwarding fan-out); HT mode
  // benefits from spreading AGs to parallelize MVM issue.
  const bool prefer_locality = options.mode == PipelineMode::kLowLatency;
  MappingSolution s(workload, options.max_nodes_per_core);

  std::vector<const NodePartition*> order;
  order.reserve(static_cast<std::size_t>(workload.partition_count()));
  for (const NodePartition& p : workload.partitions()) order.push_back(&p);
  std::sort(order.begin(), order.end(),
            [](const NodePartition* a, const NodePartition* b) {
              return a->xbars_per_replica() > b->xbars_per_replica();
            });
  for (const NodePartition* p : order) {
    if (!place_replica(s, rng, *p, prefer_locality)) {
      throw CapacityError(
          "cannot place one replica of every node; raise core_count or "
          "max_nodes_per_core (node " +
          std::to_string(p->node) + " was stranded)");
    }
  }

  const std::vector<int> targets =
      replication_targets(workload, rng, target_fill);
  const auto budget = static_cast<std::int64_t>(
      target_fill * static_cast<double>(workload.total_xbars_available()));
  std::vector<const NodePartition*> growable = order;
  while (!growable.empty() && s.total_xbars_used() < budget) {
    const int pick = rng.pick_index(growable);
    const NodePartition* p = growable[static_cast<std::size_t>(pick)];
    const int target =
        targets[static_cast<std::size_t>(workload.partition_index(p->node))];
    if (s.replication(p->node) >= std::min(target, p->windows) ||
        !place_replica(s, rng, *p, prefer_locality)) {
      growable.erase(growable.begin() + pick);
    }
  }
  return s;
}

/// Mutation I: grow a random node's replication. The step size scales with
/// the current replication (geometric moves) so heavily-windowed nodes can
/// reach their useful replication range within a GA run.
bool mutate_grow(MappingSolution& s, Rng& rng, const Workload& workload,
                 bool prefer_locality) {
  const int pick = rng.uniform_int(workload.partition_count());
  const NodePartition& p =
      workload.partitions()[static_cast<std::size_t>(pick)];
  const int current = s.replication(p.node);
  if (current >= p.windows) return false;
  const int step = 1 + rng.uniform_int(std::max(1, current / 2));
  bool grew = false;
  for (int i = 0; i < step && s.replication(p.node) < p.windows; ++i) {
    if (!place_replica(s, rng, p, prefer_locality)) break;
    grew = true;
  }
  return grew;
}

/// Mutation II: shrink a random node's replication (geometric step, never
/// below one replica).
bool mutate_shrink(MappingSolution& s, Rng& rng, const Workload& workload) {
  const int pick = rng.uniform_int(workload.partition_count());
  const NodePartition& p =
      workload.partitions()[static_cast<std::size_t>(pick)];
  const int current = s.replication(p.node);
  if (current < 2) return false;
  const int step = 1 + rng.uniform_int(std::max(1, (current - 1) / 2));
  for (int i = 0; i < step && s.replication(p.node) >= 2; ++i) {
    remove_replica(s, rng, p);
  }
  return true;
}

/// Mutation III: spread part of a random gene to other cores.
bool mutate_spread(MappingSolution& s, Rng& rng) {
  const int core = rng.uniform_int(s.core_count());
  const auto& genes = s.genes(core);
  if (genes.empty()) return false;
  const Gene gene = genes[static_cast<std::size_t>(rng.pick_index(genes))];
  if (gene.ag_count < 2) return false;
  const int to_move = rng.uniform_range(1, gene.ag_count - 1);
  int moved = 0;
  for (int i = 0; i < to_move; ++i) {
    const int dst = find_feasible_core(s, rng, gene.node, 1, core);
    if (dst < 0) break;
    s.remove(core, gene.node, 1);
    s.add(dst, gene.node, 1);
    ++moved;
  }
  return moved > 0;
}

/// Mutation IV: merge a gene into a same-node gene on another core. Half of
/// the time the merge targets *partial-replica* genes (counts misaligned to
/// ags-per-replica), pulling a remainder onto another remainder's core so
/// the stitched accumulation group becomes core-local — the move that
/// directly removes cross-core partial-sum traffic.
bool mutate_merge(MappingSolution& s, Rng& rng, const Workload& workload) {
  const int pick = rng.uniform_int(workload.partition_count());
  const NodePartition& p =
      workload.partitions()[static_cast<std::size_t>(pick)];
  std::vector<int> cores = s.cores_of(p.node);
  if (cores.size() < 2) return false;

  const int per_replica = p.ags_per_replica();
  auto count_on = [&](int core) {
    for (const Gene& g : s.genes(core)) {
      if (g.node == p.node) return g.ag_count;
    }
    return 0;
  };

  int src = -1;
  int dst = -1;
  if (per_replica > 1 && rng.bernoulli(0.5)) {
    // Alignment merge: move one remainder onto another remainder's core.
    std::vector<int> misaligned;
    for (int core : cores) {
      if (count_on(core) % per_replica != 0) misaligned.push_back(core);
    }
    if (misaligned.size() >= 2) {
      rng.shuffle(misaligned);
      src = misaligned[0];
      dst = misaligned[1];
    }
  }
  if (src < 0) {
    rng.shuffle(cores);
    src = cores[0];
    dst = cores[1];
  }

  const int src_count = count_on(src);
  int movable = 0;
  if (per_replica > 1 && src_count % per_replica != 0) {
    // Prefer moving exactly the misaligned remainder.
    const int remainder = src_count % per_replica;
    if (s.can_add(dst, p.node, remainder)) movable = remainder;
  }
  if (movable == 0) {
    while (movable < src_count && s.can_add(dst, p.node, movable + 1)) {
      ++movable;
    }
  }
  if (movable == 0) return false;
  s.remove(src, p.node, movable);
  s.add(dst, p.node, movable);
  return true;
}

struct Individual {
  MappingSolution solution;
  double fitness = 0.0;
};

/// First index of the lowest fitness (the tie rule the sequential GA used).
std::size_t best_index(const std::vector<Individual>& population) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < population.size(); ++i) {
    if (population[i].fitness < population[best].fitness) best = i;
  }
  return best;
}

/// First index of the highest fitness (migration's replacement victim).
std::size_t worst_index(const std::vector<Individual>& population) {
  std::size_t worst = 0;
  for (std::size_t i = 1; i < population.size(); ++i) {
    if (population[i].fitness > population[worst].fitness) worst = i;
  }
  return worst;
}

/// One island of the model: a sub-population, its private RNG stream, its
/// SoA evaluator, and its convergence record. Between migration barriers
/// every field is touched only by the parallel_for index that owns the
/// island; migration runs on the orchestrating thread after the barrier
/// (parallel_for's completion handshake provides the happens-before), so no
/// field needs a lock — see docs/concurrency.md.
struct Island {
  explicit Island(std::uint64_t seed) : rng(seed) {}

  Rng rng;
  int population_target = 0;
  std::vector<Individual> population;
  std::unique_ptr<PopulationEvaluator> evaluator;
  std::vector<double> best_history;  ///< best fitness after each generation
  int evaluations = 0;
};

/// The pool the islands run on when the caller does not inject one.
/// Deliberately distinct from CompilerSession's job pool: a mapper blocked
/// in parallel_for drains only its own indices, and sizing follows the
/// machine rather than --jobs (which governs scenario-level parallelism).
/// Lazily constructed, shared by every concurrent compile — islands from
/// different jobs interleave on it without affecting results.
ThreadPool& island_pool() {
  static ThreadPool pool(ThreadPool::hardware_threads());
  return pool;
}

}  // namespace

MappingSolution GeneticMapper::map(const Workload& workload,
                                   const MapperOptions& options) {
  PIMCOMP_CHECK(config_.population >= 1, "population must be >= 1");
  PIMCOMP_CHECK(config_.generations >= 0, "generations must be >= 0");
  PIMCOMP_CHECK(config_.elite >= 0 && config_.elite <= config_.population,
                "elite must be within population");
  PIMCOMP_CHECK(config_.islands >= 1, "islands must be >= 1");
  PIMCOMP_CHECK(config_.migration_interval >= 1,
                "migration_interval must be >= 1");
  PIMCOMP_CHECK(config_.enable_grow || config_.enable_shrink ||
                    config_.enable_spread || config_.enable_merge,
                "at least one mutation operator must be enabled");

  const FitnessParams params =
      FitnessParams::from(workload.hardware(), options.parallelism_degree);
  const LLFitnessContext ll_context(workload);

  stats_ = GaStats{};

  // The population splits across the islands (remainder to the first ones),
  // each with its own RNG stream split from the request seed. Results
  // depend on (seed, islands) only — never on thread count — and islands=1
  // replays the pre-island sequential GA bit for bit (stream 0 IS the
  // request seed, and the evaluation restructure below draws no
  // randomness).
  const int island_count = std::min(config_.islands, config_.population);
  std::vector<Island> islands;
  islands.reserve(static_cast<std::size_t>(island_count));
  for (int k = 0; k < island_count; ++k) {
    Island island(split_seed(options.seed, static_cast<std::uint64_t>(k)));
    island.population_target =
        config_.population / island_count +
        (k < config_.population % island_count ? 1 : 0);
    island.evaluator = std::make_unique<PopulationEvaluator>(
        workload, params, options.mode, ll_context, island.population_target,
        options.max_nodes_per_core);
    islands.push_back(std::move(island));
  }

  ThreadPool* pool = options.pool != nullptr ? options.pool : &island_pool();
  // Islands are the unit of parallelism; with a single island the changed
  // children of a generation are the unit instead (both run on `pool`).
  ThreadPool* inner_pool =
      island_count == 1 && pool->size() > 1 ? pool : nullptr;

  // Children are bred with the island's RNG first and evaluated afterwards
  // as a batch: evaluation draws no randomness and nothing reads a child's
  // fitness within the generation that breeds it, so deferring the
  // evaluations preserves the sequential GA's RNG draw sequence exactly
  // while letting the batch run data-oriented over the island's SoA slots —
  // and, for islands=1, as a parallel-for over distinct slots.
  auto evaluate_batch = [](Island& island, std::vector<Individual>& crowd,
                           const std::vector<int>& pending,
                           ThreadPool* batch_pool) {
    auto evaluate_one = [&](int j) {
      const int slot = pending[static_cast<std::size_t>(j)];
      Individual& individual = crowd[static_cast<std::size_t>(slot)];
      island.evaluator->load(slot, individual.solution);
      individual.fitness = island.evaluator->evaluate(slot);
    };
    if (batch_pool != nullptr && pending.size() > 1) {
      batch_pool->parallel_for(static_cast<int>(pending.size()),
                               evaluate_one);
    } else {
      for (int j = 0; j < static_cast<int>(pending.size()); ++j) {
        evaluate_one(j);
      }
    }
    island.evaluations += static_cast<int>(pending.size());
  };

  // Memetic seeding: every island's first individual starts from the
  // pipeline-balanced heuristic (PumaMapper is deterministic, so one
  // computation serves them all). Elitism keeps it only while nothing
  // fitter is found, so the GA's result can never fall below the baseline
  // under its own objective (both the Fig 5 staircase and the Fig 6
  // recursion price cross-core accumulation and row-forwarding fan-out,
  // which keeps the objective aligned with the simulator). Seeding it
  // per island — not just into island 0 — is what keeps the island model
  // no worse than the sequential trajectory at equal budgets: without it,
  // islands 1..N-1 only meet the baseline via migration, generations late.
  // islands=1 degenerates to the sequential GA's single seeded individual.
  std::unique_ptr<MappingSolution> baseline_seed;
  if (config_.seed_baseline) {
    try {
      PumaMapper baseline;
      baseline_seed =
          std::make_unique<MappingSolution>(baseline.map(workload, options));
    } catch (const CapacityError&) {
      // Fall through to purely random initialization.
    }
  }

  auto init_island = [&](int k) {
    Island& island = islands[static_cast<std::size_t>(k)];
    island.population.reserve(
        static_cast<std::size_t>(island.population_target));
    std::vector<int> pending;
    pending.reserve(static_cast<std::size_t>(island.population_target));
    if (baseline_seed != nullptr && island.population_target > 1) {
      island.population.push_back({*baseline_seed, 0.0});
      pending.push_back(0);
    }
    while (static_cast<int>(island.population.size()) <
           island.population_target) {
      // Large populations make initialization itself minutes-long on big
      // models, so cancellation is observed per individual here and per
      // island generation below — never finer, keeping the overhead
      // unmeasurable.
      if (options.cancel != nullptr) {
        options.cancel->throw_if_cancelled("ga population initialization");
      }
      MappingSolution s =
          random_individual(workload, options, island.rng, config_.target_fill);
      pending.push_back(static_cast<int>(island.population.size()));
      island.population.push_back({std::move(s), 0.0});
    }
    evaluate_batch(island, island.population, pending, inner_pool);
  };

  std::vector<int> ops;
  if (config_.enable_grow) ops.push_back(0);
  if (config_.enable_shrink) ops.push_back(1);
  if (config_.enable_spread) ops.push_back(2);
  if (config_.enable_merge) ops.push_back(3);

  // The elite budget is split across islands like the population (ceiling,
  // so every island keeps at least one elite when any is configured);
  // islands=1 degenerates to the sequential GA's `elite`.
  const int island_elite =
      config_.elite == 0 ? 0 : (config_.elite + island_count - 1) / island_count;

  auto run_generation = [&](Island& island, int generation) {
    // Cancellation lands within one *island* generation — a population/N
    // sweep, not a whole-population one (tests/test_compile_jobs.cpp pins
    // the 16-island latency).
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      throw CancelledError("mapping cancelled at generation " +
                           std::to_string(generation) + " of " +
                           std::to_string(config_.generations));
    }
    std::vector<Individual>& population = island.population;
    const int target = island.population_target;
    std::vector<Individual> next;
    next.reserve(population.size());
    // Elitism: carry the best individuals unchanged (no crossover; the
    // paper skips it as impractical for this encoding).
    std::vector<std::size_t> ranking(population.size());
    for (std::size_t i = 0; i < ranking.size(); ++i) ranking[i] = i;
    std::sort(ranking.begin(), ranking.end(),
              [&](std::size_t a, std::size_t b) {
                return population[a].fitness < population[b].fitness;
              });
    for (int e = 0; e < island_elite && e < target; ++e) {
      next.push_back(population[ranking[static_cast<std::size_t>(e)]]);
    }

    auto tournament = [&]() -> const Individual& {
      std::size_t winner =
          static_cast<std::size_t>(island.rng.uniform_int(target));
      for (int i = 1; i < config_.tournament_size; ++i) {
        const auto rival =
            static_cast<std::size_t>(island.rng.uniform_int(target));
        if (population[rival].fitness < population[winner].fitness) {
          winner = rival;
        }
      }
      return population[winner];
    };

    std::vector<int> pending;
    while (static_cast<int>(next.size()) < target) {
      Individual child = tournament();
      const int mutation_count = island.rng.uniform_range(
          1, std::max(1, config_.mutations_per_child));
      bool changed = false;
      for (int m = 0; m < mutation_count; ++m) {
        switch (ops[static_cast<std::size_t>(island.rng.pick_index(ops))]) {
          case 0:
            changed |=
                mutate_grow(child.solution, island.rng, workload,
                            options.mode == PipelineMode::kLowLatency);
            break;
          case 1:
            changed |= mutate_shrink(child.solution, island.rng, workload);
            break;
          case 2: changed |= mutate_spread(child.solution, island.rng); break;
          case 3:
            changed |= mutate_merge(child.solution, island.rng, workload);
            break;
          default: break;
        }
      }
      if (changed) pending.push_back(static_cast<int>(next.size()));
      next.push_back(std::move(child));
    }
    evaluate_batch(island, next, pending, inner_pool);
    population = std::move(next);
    island.best_history.push_back(
        population[best_index(population)].fitness);
  };

  // parallel_for rethrows the lowest island's exception after every island
  // retires, so a CapacityError (or a cancel) surfaces identically at any
  // thread count.
  auto for_each_island = [&](const std::function<void(int)>& fn) {
    if (island_count > 1) {
      pool->parallel_for(island_count, fn);
    } else {
      fn(0);
    }
  };

  for_each_island(init_island);

  stats_.initial_best =
      islands[0].population[best_index(islands[0].population)].fitness;
  for (std::size_t k = 1; k < islands.size(); ++k) {
    stats_.initial_best = std::min(
        stats_.initial_best,
        islands[k].population[best_index(islands[k].population)].fitness);
  }
  stats_.best_history.push_back(stats_.initial_best);

  int done = 0;
  while (done < config_.generations) {
    const int chunk =
        std::min(config_.migration_interval, config_.generations - done);
    for_each_island([&](int k) {
      Island& island = islands[static_cast<std::size_t>(k)];
      for (int g = 0; g < chunk; ++g) run_generation(island, done + g);
    });
    done += chunk;

    if (island_count > 1 && done < config_.generations) {
      // Ring migration on the orchestrating thread: island k's best
      // replaces island (k+1)'s worst when fitter. Bests are snapshotted
      // first so the exchange is simultaneous — the outcome does not depend
      // on island order.
      std::vector<Individual> migrants;
      migrants.reserve(islands.size());
      for (Island& island : islands) {
        migrants.push_back(island.population[best_index(island.population)]);
      }
      for (int k = 0; k < island_count; ++k) {
        Island& target_island =
            islands[static_cast<std::size_t>((k + 1) % island_count)];
        const std::size_t worst = worst_index(target_island.population);
        if (migrants[static_cast<std::size_t>(k)].fitness <
            target_island.population[worst].fitness) {
          target_island.population[worst] =
              std::move(migrants[static_cast<std::size_t>(k)]);
        }
      }
    }
  }

  for (int g = 0; g < config_.generations; ++g) {
    double best = islands[0].best_history[static_cast<std::size_t>(g)];
    for (std::size_t k = 1; k < islands.size(); ++k) {
      best = std::min(best,
                      islands[k].best_history[static_cast<std::size_t>(g)]);
    }
    stats_.best_history.push_back(best);
  }
  for (const Island& island : islands) {
    stats_.evaluations += island.evaluations;
  }

  std::size_t winner_island = 0;
  std::size_t winner = best_index(islands[0].population);
  for (std::size_t k = 1; k < islands.size(); ++k) {
    const std::size_t b = best_index(islands[k].population);
    if (islands[k].population[b].fitness <
        islands[winner_island].population[winner].fitness) {
      winner_island = k;
      winner = b;
    }
  }
  stats_.final_best = islands[winner_island].population[winner].fitness;
  MappingSolution result =
      std::move(islands[winner_island].population[winner].solution);
  result.validate();
  return result;
}

PIMCOMP_REGISTER_MAPPER("ga", [](const CompileOptions& options) {
  return std::make_unique<GeneticMapper>(options.ga);
});

}  // namespace pimcomp
