#ifndef PIMCOMP_MAPPING_FITNESS_HPP
#define PIMCOMP_MAPPING_FITNESS_HPP

#include <vector>

#include "common/units.hpp"
#include "mapping/mapping_solution.hpp"
#include "partition/workload.hpp"

namespace pimcomp {

/// Timing constants the fitness estimators need: the single-MVM latency
/// T_MVM and the per-core issue interval T_interval (on-chip bandwidth
/// limit; paper Fig 5).
struct FitnessParams {
  Picoseconds mvm_latency = 0;
  Picoseconds issue_interval = 0;

  /// Used by the cross-core accumulation penalty: a gene holding a partial
  /// replica must exchange its partial sums with other cores every cycle
  /// and fold them on the VFU.
  double local_memory_gbps = 32.0;
  int activation_bytes = 2;
  double vfu_ops_per_ns = 1.2;

  static FitnessParams from(const HardwareConfig& hw, int parallelism_degree) {
    return {hw.mvm_latency, hw.mvm_issue_interval(parallelism_degree),
            hw.local_memory_gbps, hw.activation_bits / 8, hw.vfu_ops_per_ns};
  }
};

/// The paper's f(n): duration of one operation cycle when n AGs are live in
/// a core — n * T_interval when issue-bandwidth-bound (n > T_MVM/T_interval),
/// else T_MVM.
Picoseconds cycle_time(int live_ags, const FitnessParams& params);

/// HT-mode fitness F_HT = max_i time_i (paper Fig 5): per core, walk the
/// cycle-count staircase of its genes, charging f(n) per remaining cycle.
/// Returns estimated picoseconds for one inference on the busiest core
/// (lower is better).
double ht_fitness(const MappingSolution& solution,
                  const FitnessParams& params);

/// Estimated per-core times (the quantity max'ed by ht_fitness), for
/// reporting and tests.
std::vector<double> ht_core_times(const MappingSolution& solution,
                                  const FitnessParams& params);

/// LL-mode fitness (paper Fig 6; recursion reconstructed per DESIGN.md
/// §5.3). Precomputes the solution-independent waiting fractions W once per
/// workload; `evaluate` is then O(partitions + genes) per candidate.
class LLFitnessContext {
 public:
  /// One inter-node dependency in the crossbar-node dependency graph.
  struct Edge {
    /// Partition index of the providing crossbar node, or -1 when the
    /// provider chain reaches the graph input (data ready at t=0).
    int provider = -1;
    /// Fraction of the provider's output stream the consumer must wait for
    /// before its first window can start (W in the paper).
    double waiting_fraction = 0.0;
  };

  explicit LLFitnessContext(const Workload& workload);

  /// Crossbar consumers of each partition (inverse of `edges()`); used for
  /// the row-forwarding fan-out estimate.
  const std::vector<std::vector<int>>& consumers() const { return consumers_; }

  /// Estimated end-to-end latency (picoseconds) of one inference under the
  /// fine-grained pipeline; lower is better.
  double evaluate(const MappingSolution& solution,
                  const FitnessParams& params) const;

  /// Estimated per-partition finish times, for reporting and tests.
  std::vector<double> finish_times(const MappingSolution& solution,
                                   const FitnessParams& params) const;

  /// Dependency edges per partition index (exposed for tests).
  const std::vector<std::vector<Edge>>& edges() const { return edges_; }

 private:
  const Workload* workload_;
  std::vector<std::vector<Edge>> edges_;      // per partition index
  std::vector<std::vector<int>> consumers_;   // per partition index
};

}  // namespace pimcomp

#endif  // PIMCOMP_MAPPING_FITNESS_HPP
