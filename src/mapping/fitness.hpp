#ifndef PIMCOMP_MAPPING_FITNESS_HPP
#define PIMCOMP_MAPPING_FITNESS_HPP

#include <utility>
#include <vector>

#include "common/units.hpp"
#include "mapping/mapper.hpp"
#include "mapping/mapping_solution.hpp"
#include "partition/workload.hpp"

namespace pimcomp {

/// Timing constants the fitness estimators need: the single-MVM latency
/// T_MVM and the per-core issue interval T_interval (on-chip bandwidth
/// limit; paper Fig 5).
struct FitnessParams {
  Picoseconds mvm_latency = 0;
  Picoseconds issue_interval = 0;

  /// Used by the cross-core accumulation penalty: a gene holding a partial
  /// replica must exchange its partial sums with other cores every cycle
  /// and fold them on the VFU.
  double local_memory_gbps = 32.0;
  int activation_bytes = 2;
  double vfu_ops_per_ns = 1.2;

  static FitnessParams from(const HardwareConfig& hw, int parallelism_degree) {
    return {hw.mvm_latency, hw.mvm_issue_interval(parallelism_degree),
            hw.local_memory_gbps, hw.activation_bits / 8, hw.vfu_ops_per_ns};
  }
};

/// The paper's f(n): duration of one operation cycle when n AGs are live in
/// a core — n * T_interval when issue-bandwidth-bound (n > T_MVM/T_interval),
/// else T_MVM.
Picoseconds cycle_time(int live_ags, const FitnessParams& params);

/// HT-mode fitness F_HT = max_i time_i (paper Fig 5): per core, walk the
/// cycle-count staircase of its genes, charging f(n) per remaining cycle.
/// Returns estimated picoseconds for one inference on the busiest core
/// (lower is better).
double ht_fitness(const MappingSolution& solution,
                  const FitnessParams& params);

/// Estimated per-core times (the quantity max'ed by ht_fitness), for
/// reporting and tests.
std::vector<double> ht_core_times(const MappingSolution& solution,
                                  const FitnessParams& params);

/// LL-mode fitness (paper Fig 6; recursion reconstructed per DESIGN.md
/// §5.3). Precomputes the solution-independent waiting fractions W once per
/// workload; `evaluate` is then O(partitions + genes) per candidate.
class LLFitnessContext {
 public:
  /// One inter-node dependency in the crossbar-node dependency graph.
  struct Edge {
    /// Partition index of the providing crossbar node, or -1 when the
    /// provider chain reaches the graph input (data ready at t=0).
    int provider = -1;
    /// Fraction of the provider's output stream the consumer must wait for
    /// before its first window can start (W in the paper).
    double waiting_fraction = 0.0;
  };

  explicit LLFitnessContext(const Workload& workload);

  /// Crossbar consumers of each partition (inverse of `edges()`); used for
  /// the row-forwarding fan-out estimate.
  const std::vector<std::vector<int>>& consumers() const { return consumers_; }

  /// Estimated end-to-end latency (picoseconds) of one inference under the
  /// fine-grained pipeline; lower is better.
  double evaluate(const MappingSolution& solution,
                  const FitnessParams& params) const;

  /// Estimated per-partition finish times, for reporting and tests.
  std::vector<double> finish_times(const MappingSolution& solution,
                                   const FitnessParams& params) const;

  /// Dependency edges per partition index (exposed for tests).
  const std::vector<std::vector<Edge>>& edges() const { return edges_; }

 private:
  const Workload* workload_;
  std::vector<std::vector<Edge>> edges_;      // per partition index
  std::vector<std::vector<int>> consumers_;   // per partition index
};

/// Data-oriented fitness evaluation over a whole population. The GA keeps
/// one evaluator per island, sized to the island's population: every
/// per-gene quantity the per-candidate estimators recompute through
/// MappingSolution's pointer-chasing accessors — gene lists, per-node host
/// core sets (the O(cores x genes) `cores_of` scans), per-node replication
/// and cycle counts, per-core load/penalty accumulators — is flattened into
/// contiguous population-sized stripes allocated once and reused across
/// generations. `load()` gathers a candidate into its slot; `evaluate()`
/// then runs the Fig 5 / Fig 6 estimator entirely on the slot's stripes
/// without allocating.
///
/// Slots share no mutable state, so a generation's changed children can be
/// loaded and evaluated as a lock-free parallel-for over distinct slots.
///
/// `evaluate()` mirrors ht_fitness / LLFitnessContext::evaluate operation
/// for operation — same iteration order, same floating-point association —
/// so a slot's fitness is bit-identical to the reference estimators'
/// (tests/test_island_ga.cpp pins the equivalence). Any change to the
/// reference estimators must be replayed here.
class PopulationEvaluator {
 public:
  PopulationEvaluator(const Workload& workload, const FitnessParams& params,
                      PipelineMode mode, const LLFitnessContext& ll_context,
                      int slots, int max_nodes_per_core);

  /// Gathers `solution` into slot `slot`'s stripes.
  void load(int slot, const MappingSolution& solution);

  /// Fitness of the solution most recently loaded into `slot` (lower is
  /// better). Touches only slot-local stripes; distinct slots may run
  /// concurrently.
  double evaluate(int slot);

  int slots() const { return slots_; }

 private:
  const Workload* workload_;
  FitnessParams params_;
  PipelineMode mode_;
  const LLFitnessContext* ll_;
  int slots_;
  int cores_;
  int parts_;
  int max_nodes_per_core_;
  int genes_stride_;  ///< cores_ * max_nodes_per_core_: max genes per slot

  // Chromosome stripes, core-major compact per slot (genes_stride_ wide).
  std::vector<int> gene_part_;  ///< partition index of each gene's node
  std::vector<int> gene_ags_;   ///< AG count of each gene
  std::vector<int> core_off_;   ///< per-core gene offsets; (cores_+1) wide

  // Per-partition stripes (parts_ wide).
  std::vector<int> node_cycles_;  ///< ceil(windows / replication)

  // Per-partition CSR over host cores — the flat replacement for
  // MappingSolution::cores_of; rows are core-ascending like the original
  // scan, which fixes the penalty accumulation order.
  std::vector<int> node_off_;     ///< (parts_+1) wide
  std::vector<int> node_core_;    ///< genes_stride_ wide
  std::vector<int> node_ags_;     ///< genes_stride_ wide
  std::vector<int> node_cursor_;  ///< CSR fill scratch; parts_ wide

  // evaluate() scratch (never read across calls).
  std::vector<double> penalty_;  ///< per-core accumulation penalties
  std::vector<std::pair<int, int>> staircase_;  ///< HT; max_nodes wide
  std::vector<double> finish_;    ///< LL; parts_ wide
  std::vector<double> duration_;  ///< LL; parts_ wide
};

}  // namespace pimcomp

#endif  // PIMCOMP_MAPPING_FITNESS_HPP
