#include "mapping/puma_mapper.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math_util.hpp"
// pimcomp-layer-exempt: self-registration into the mapper registry — the
// plugin seam every strategy TU uses, not a dependency on core logic.
#include "core/pipeline.hpp"

namespace pimcomp {

std::vector<int> PumaMapper::balanced_replication(const Workload& workload,
                                                  double utilization) {
  const auto budget = static_cast<std::int64_t>(
      utilization * static_cast<double>(workload.total_xbars_available()));

  auto xbars_needed = [&](int target_cycles) {
    std::int64_t total = 0;
    for (const NodePartition& p : workload.partitions()) {
      const int replicas =
          std::min(p.windows, ceil_div(p.windows, target_cycles));
      total += static_cast<std::int64_t>(replicas) * p.xbars_per_replica();
    }
    return total;
  };

  int max_windows = 1;
  for (const NodePartition& p : workload.partitions()) {
    max_windows = std::max(max_windows, p.windows);
  }

  // Binary search the smallest per-replica cycle target that fits: fewer
  // cycles per replica => more replicas => more crossbars.
  int lo = 1;                 // perfectly balanced (every replica 1 cycle)
  int hi = max_windows;       // no replication
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (xbars_needed(mid) <= budget) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  std::vector<int> replication;
  replication.reserve(static_cast<std::size_t>(workload.partition_count()));
  for (const NodePartition& p : workload.partitions()) {
    replication.push_back(std::min(p.windows, ceil_div(p.windows, lo)));
  }
  return replication;
}

MappingSolution PumaMapper::map(const Workload& workload,
                                const MapperOptions& options) {
  const std::vector<int> replication =
      balanced_replication(workload, utilization_);

  MappingSolution solution(workload, options.max_nodes_per_core);
  // Greedy sequential packing: nodes in topological order, AGs into the
  // first core with space. This reproduces PUMA's uneven allocation — early
  // cores fill up and run long while late cores idle (paper §V-B2).
  int cursor = 0;
  const int cores = solution.core_count();
  for (int i = 0; i < workload.partition_count(); ++i) {
    const NodePartition& p =
        workload.partitions()[static_cast<std::size_t>(i)];
    const int total_ags =
        replication[static_cast<std::size_t>(i)] * p.ags_per_replica();
    for (int ag = 0; ag < total_ags; ++ag) {
      bool placed = false;
      for (int step = 0; step < cores; ++step) {
        const int c = (cursor + step) % cores;
        if (solution.can_add(c, p.node, 1)) {
          solution.add(c, p.node, 1);
          // Stay on this core until it is full (sequential fill).
          cursor = c;
          placed = true;
          break;
        }
      }
      if (!placed) {
        // Resource pressure from balancing: drop whole replicas of this
        // node until what remains fits (but never below one replica).
        const int keep_ags = solution.total_ags(p.node);
        const int whole_replicas = keep_ags / p.ags_per_replica();
        if (whole_replicas >= 1) {
          const int excess = keep_ags - whole_replicas * p.ags_per_replica();
          if (excess > 0) {
            for (int c : solution.cores_of(p.node)) {
              const int removed = solution.remove(
                  c, p.node, excess - (keep_ags - solution.total_ags(p.node)));
              if (removed > 0 &&
                  solution.total_ags(p.node) ==
                      whole_replicas * p.ags_per_replica()) {
                break;
              }
            }
          }
          break;  // accept fewer replicas for this node
        }
        throw CapacityError(
            "puma-like mapper could not place one replica of node " +
            std::to_string(p.node));
      }
    }
  }
  solution.validate();
  return solution;
}

PIMCOMP_REGISTER_MAPPER("puma", [](const CompileOptions&) {
  return std::make_unique<PumaMapper>();
});

}  // namespace pimcomp
