#ifndef PIMCOMP_MAPPING_GREEDY_MAPPER_HPP
#define PIMCOMP_MAPPING_GREEDY_MAPPER_HPP

#include "mapping/mapper.hpp"

namespace pimcomp {

/// Minimal baseline for ablation: no replication at all (R = 1 everywhere)
/// and first-fit sequential core packing. Isolates how much of PIMCOMP's
/// gain comes from replication + placement rather than scheduling.
class GreedyMapper : public Mapper {
 public:
  std::string name() const override { return "greedy-norep"; }

  MappingSolution map(const Workload& workload,
                      const MapperOptions& options) override;
};

}  // namespace pimcomp

#endif  // PIMCOMP_MAPPING_GREEDY_MAPPER_HPP
