#ifndef PIMCOMP_MAPPING_PUMA_MAPPER_HPP
#define PIMCOMP_MAPPING_PUMA_MAPPER_HPP

#include "mapping/mapper.hpp"

namespace pimcomp {

/// The PUMA-like baseline of the paper's evaluation (§V-A2): weight
/// replication chosen heuristically to *balance the inter-layer pipeline*
/// (replicate early layers so every layer advances at a similar cycle
/// count — PUMA [10] / Ambrosi et al. [18]), followed by a greedy
/// sequential core mapping that packs AGs into cores in topological order.
/// PIMCOMP's GA is compared against this under both pipeline modes.
class PumaMapper : public Mapper {
 public:
  /// `utilization` caps the crossbar fraction the balancer may fill.
  explicit PumaMapper(double utilization = 0.90) : utilization_(utilization) {}

  std::string name() const override { return "puma-like"; }

  MappingSolution map(const Workload& workload,
                      const MapperOptions& options) override;

  /// The pipeline-balancing replication rule alone (exposed for tests):
  /// smallest per-replica cycle target C such that sum_i
  /// ceil(windows_i / C) replicas fit into the utilization budget, then
  /// R_i = ceil(windows_i / C).
  static std::vector<int> balanced_replication(const Workload& workload,
                                               double utilization);

 private:
  double utilization_;
};

}  // namespace pimcomp

#endif  // PIMCOMP_MAPPING_PUMA_MAPPER_HPP
