#include "mapping/mapping_solution.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace pimcomp {

MappingSolution::MappingSolution(const Workload& workload,
                                 int max_nodes_per_core)
    : workload_(&workload),
      core_count_(workload.hardware().core_count),
      max_nodes_per_core_(max_nodes_per_core) {
  PIMCOMP_CHECK(max_nodes_per_core >= 1,
                "max_nodes_per_core must be positive");
  genes_.resize(static_cast<std::size_t>(core_count_));
  xbars_used_.assign(static_cast<std::size_t>(core_count_), 0);
  total_ags_.assign(static_cast<std::size_t>(workload.partition_count()), 0);
}

const std::vector<Gene>& MappingSolution::genes(int core) const {
  PIMCOMP_ASSERT(core >= 0 && core < core_count_, "core out of range");
  return genes_[static_cast<std::size_t>(core)];
}

bool MappingSolution::can_add(int core, NodeId node, int ag_count) const {
  PIMCOMP_ASSERT(core >= 0 && core < core_count_, "core out of range");
  PIMCOMP_ASSERT(ag_count > 0, "ag_count must be positive");
  const NodePartition& p = workload_->partition_of(node);
  if (xbars_used_[static_cast<std::size_t>(core)] +
          ag_count * p.xbars_per_ag >
      workload_->hardware().xbars_per_core) {
    return false;
  }
  if (!has_node(core, node) &&
      gene_count(core) >= max_nodes_per_core_) {
    return false;
  }
  // Guard the integer gene encoding bound.
  for (const Gene& g : genes_[static_cast<std::size_t>(core)]) {
    if (g.node == node && g.ag_count + ag_count > kMaxAgCountPerGene) {
      return false;
    }
  }
  return true;
}

void MappingSolution::add(int core, NodeId node, int ag_count) {
  PIMCOMP_CHECK(can_add(core, node, ag_count),
                "MappingSolution::add called with infeasible placement");
  const NodePartition& p = workload_->partition_of(node);
  auto& core_genes = genes_[static_cast<std::size_t>(core)];
  auto it = std::find_if(core_genes.begin(), core_genes.end(),
                         [node](const Gene& g) { return g.node == node; });
  if (it == core_genes.end()) {
    core_genes.push_back(Gene{node, ag_count});
  } else {
    it->ag_count += ag_count;
  }
  xbars_used_[static_cast<std::size_t>(core)] += ag_count * p.xbars_per_ag;
  total_ags_[static_cast<std::size_t>(workload_->partition_index(node))] +=
      ag_count;
}

int MappingSolution::remove(int core, NodeId node, int ag_count) {
  PIMCOMP_ASSERT(core >= 0 && core < core_count_, "core out of range");
  PIMCOMP_ASSERT(ag_count > 0, "ag_count must be positive");
  auto& core_genes = genes_[static_cast<std::size_t>(core)];
  auto it = std::find_if(core_genes.begin(), core_genes.end(),
                         [node](const Gene& g) { return g.node == node; });
  if (it == core_genes.end()) return 0;
  const int removed = std::min(it->ag_count, ag_count);
  it->ag_count -= removed;
  if (it->ag_count == 0) core_genes.erase(it);
  const NodePartition& p = workload_->partition_of(node);
  xbars_used_[static_cast<std::size_t>(core)] -= removed * p.xbars_per_ag;
  total_ags_[static_cast<std::size_t>(workload_->partition_index(node))] -=
      removed;
  return removed;
}

int MappingSolution::total_ags(NodeId node) const {
  return total_ags_[static_cast<std::size_t>(workload_->partition_index(node))];
}

int MappingSolution::replication(NodeId node) const {
  const NodePartition& p = workload_->partition_of(node);
  return total_ags(node) / p.ags_per_replica();
}

int MappingSolution::cycles(NodeId node) const {
  const NodePartition& p = workload_->partition_of(node);
  const int r = replication(node);
  PIMCOMP_ASSERT(r >= 1, "cycles() on a node without a full replica");
  return ceil_div(p.windows, r);
}

int MappingSolution::xbars_used(int core) const {
  PIMCOMP_ASSERT(core >= 0 && core < core_count_, "core out of range");
  return xbars_used_[static_cast<std::size_t>(core)];
}

int MappingSolution::free_xbars(int core) const {
  return workload_->hardware().xbars_per_core - xbars_used(core);
}

int MappingSolution::gene_count(int core) const {
  PIMCOMP_ASSERT(core >= 0 && core < core_count_, "core out of range");
  return static_cast<int>(genes_[static_cast<std::size_t>(core)].size());
}

bool MappingSolution::has_node(int core, NodeId node) const {
  PIMCOMP_ASSERT(core >= 0 && core < core_count_, "core out of range");
  const auto& core_genes = genes_[static_cast<std::size_t>(core)];
  return std::any_of(core_genes.begin(), core_genes.end(),
                     [node](const Gene& g) { return g.node == node; });
}

std::vector<int> MappingSolution::cores_of(NodeId node) const {
  std::vector<int> cores;
  for (int c = 0; c < core_count_; ++c) {
    if (has_node(c, node)) cores.push_back(c);
  }
  return cores;
}

std::int64_t MappingSolution::total_xbars_used() const {
  std::int64_t total = 0;
  for (int used : xbars_used_) total += used;
  return total;
}

void MappingSolution::validate() const {
  const HardwareConfig& hw = workload_->hardware();
  std::vector<int> recount(static_cast<std::size_t>(
                               workload_->partition_count()),
                           0);
  for (int c = 0; c < core_count_; ++c) {
    const auto& core_genes = genes_[static_cast<std::size_t>(c)];
    if (static_cast<int>(core_genes.size()) > max_nodes_per_core_) {
      throw Error("core " + std::to_string(c) + " holds " +
                  std::to_string(core_genes.size()) +
                  " nodes, exceeding max_nodes_per_core");
    }
    int xbars = 0;
    for (std::size_t i = 0; i < core_genes.size(); ++i) {
      const Gene& g = core_genes[i];
      PIMCOMP_ASSERT(g.ag_count > 0, "gene with zero AG count");
      for (std::size_t j = i + 1; j < core_genes.size(); ++j) {
        if (core_genes[j].node == g.node) {
          throw Error("core " + std::to_string(c) +
                      " has duplicate genes for node " +
                      std::to_string(g.node));
        }
      }
      const NodePartition& p = workload_->partition_of(g.node);
      xbars += g.ag_count * p.xbars_per_ag;
      recount[static_cast<std::size_t>(workload_->partition_index(g.node))] +=
          g.ag_count;
    }
    if (xbars != xbars_used_[static_cast<std::size_t>(c)]) {
      throw Error("core " + std::to_string(c) + " crossbar cache is stale");
    }
    if (xbars > hw.xbars_per_core) {
      throw Error("core " + std::to_string(c) + " uses " +
                  std::to_string(xbars) + " crossbars, budget is " +
                  std::to_string(hw.xbars_per_core));
    }
  }
  for (const NodePartition& p : workload_->partitions()) {
    const int total =
        recount[static_cast<std::size_t>(workload_->partition_index(p.node))];
    if (total != total_ags(p.node)) {
      throw Error("node " + std::to_string(p.node) + " AG-total cache stale");
    }
    if (total < p.ags_per_replica()) {
      throw Error("node " + std::to_string(p.node) +
                  " lacks a full replica (" + std::to_string(total) + "/" +
                  std::to_string(p.ags_per_replica()) + " AGs)");
    }
    if (total % p.ags_per_replica() != 0) {
      throw Error("node " + std::to_string(p.node) + " AG total " +
                  std::to_string(total) +
                  " is not a multiple of ags_per_replica " +
                  std::to_string(p.ags_per_replica()));
    }
  }
}

std::vector<AgInstance> MappingSolution::instantiate() const {
  validate();
  std::vector<AgInstance> instances;
  for (const NodePartition& p : workload_->partitions()) {
    const int col_chunks = p.col_chunks;
    const int row_slices = p.row_slices;
    const int per_replica = row_slices * col_chunks;

    auto emit = [&](int core, std::int64_t identity) {
      AgInstance ag;
      ag.node = p.node;
      ag.replica = static_cast<int>(identity / per_replica);
      const int within = static_cast<int>(identity % per_replica);
      ag.row_slice = within / col_chunks;
      ag.col_chunk = within % col_chunks;
      ag.core = core;
      ag.xbars = p.xbars_per_ag;
      ag.cols = p.chunk_cols(ag.col_chunk);
      instances.push_back(ag);
    };

    // Pass 1: every gene realizes as many *whole* replicas as it can hold,
    // keeping each replica's accumulation group on one core (no cross-core
    // partial sums for them). Pass 2 stitches the per-gene remainders into
    // the trailing replicas, which also carry the shortest window ranges.
    std::int64_t next = 0;
    std::vector<std::pair<int, int>> remainders;  // (core, leftover AGs)
    for (int c = 0; c < core_count_; ++c) {
      for (const Gene& g : genes_[static_cast<std::size_t>(c)]) {
        if (g.node != p.node) continue;
        const int whole = g.ag_count / per_replica;
        for (int k = 0; k < whole * per_replica; ++k) emit(c, next++);
        const int leftover = g.ag_count - whole * per_replica;
        if (leftover > 0) remainders.emplace_back(c, leftover);
      }
    }
    for (const auto& [core, leftover] : remainders) {
      for (int k = 0; k < leftover; ++k) emit(core, next++);
    }
  }
  return instances;
}

std::vector<std::int64_t> MappingSolution::encode() const {
  std::vector<std::int64_t> chromosome(
      static_cast<std::size_t>(core_count_) * max_nodes_per_core_, 0);
  for (int c = 0; c < core_count_; ++c) {
    const auto& core_genes = genes_[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < core_genes.size(); ++i) {
      chromosome[static_cast<std::size_t>(c) * max_nodes_per_core_ + i] =
          encode_gene(core_genes[i]);
    }
  }
  return chromosome;
}

MappingSolution MappingSolution::decode(
    const Workload& workload, int max_nodes_per_core,
    const std::vector<std::int64_t>& chromosome) {
  MappingSolution solution(workload, max_nodes_per_core);
  PIMCOMP_CHECK(chromosome.size() ==
                    static_cast<std::size_t>(solution.core_count()) *
                        max_nodes_per_core,
                "chromosome length must be core_count * max_nodes_per_core");
  for (std::size_t slot = 0; slot < chromosome.size(); ++slot) {
    const Gene gene = decode_gene(chromosome[slot]);
    if (gene.ag_count == 0) continue;
    const int core = static_cast<int>(slot) / max_nodes_per_core;
    solution.add(core, gene.node, gene.ag_count);
  }
  return solution;
}

Json MappingSolution::to_json() const {
  Json chromosome = Json::array();
  for (std::int64_t gene : encode()) chromosome.push_back(gene);
  Json json = Json::object();
  json["max_nodes_per_core"] = max_nodes_per_core_;
  json["chromosome"] = std::move(chromosome);
  return json;
}

MappingSolution MappingSolution::from_json(const Workload& workload,
                                           const Json& json) {
  const int max_nodes =
      static_cast<int>(json.at("max_nodes_per_core").as_int());
  if (max_nodes < 1) {
    throw JsonError("mapping solution: max_nodes_per_core must be >= 1");
  }
  const Json& encoded = json.at("chromosome");
  if (!encoded.is_array()) {
    throw JsonError("mapping solution: chromosome must be an array");
  }
  std::vector<std::int64_t> chromosome;
  chromosome.reserve(encoded.size());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    chromosome.push_back(encoded.at(i).as_int());
  }
  // decode() throws on length mismatches and infeasible placements (the
  // crossbar/slot budgets of *this* workload's hardware); validate()
  // re-proves the replication invariants, so a loaded solution is exactly
  // as trustworthy as a freshly mapped one.
  MappingSolution solution =
      MappingSolution::decode(workload, max_nodes, chromosome);
  solution.validate();
  return solution;
}

std::string MappingSolution::to_string() const {
  std::ostringstream oss;
  oss << "mapping over " << core_count_ << " cores, "
      << total_xbars_used() << " crossbars used\n";
  for (const NodePartition& p : workload_->partitions()) {
    oss << "  node " << p.node << " ("
        << workload_->graph().node(p.node).name << "): R=" << replication(p.node)
        << " over cores {";
    bool first = true;
    for (int c : cores_of(p.node)) {
      if (!first) oss << ", ";
      oss << c;
      first = false;
    }
    oss << "}\n";
  }
  return oss.str();
}

}  // namespace pimcomp
