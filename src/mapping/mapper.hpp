#ifndef PIMCOMP_MAPPING_MAPPER_HPP
#define PIMCOMP_MAPPING_MAPPER_HPP

#include <cstdint>
#include <string>

#include "common/cancel.hpp"
#include "mapping/mapping_solution.hpp"
#include "partition/workload.hpp"

namespace pimcomp {

class ThreadPool;

/// The two compilation modes of the paper (§IV-A): High Throughput pipelines
/// whole inferences layer-by-layer; Low Latency pipelines at output-window
/// granularity inside a single inference.
enum class PipelineMode { kHighThroughput, kLowLatency };

std::string to_string(PipelineMode mode);

/// Options shared by all replication+mapping strategies.
struct MapperOptions {
  PipelineMode mode = PipelineMode::kHighThroughput;

  /// How many AGs may compute simultaneously per core (Fig 8 x-axis); sets
  /// the MVM issue interval used in fitness estimation.
  int parallelism_degree = 20;

  /// The paper's max_node_num_in_core chromosome bound.
  int max_nodes_per_core = 8;

  std::uint64_t seed = 1;

  /// Cooperative cancellation flag (not owned; nullptr = not cancellable).
  /// Iterative strategies poll it at iteration boundaries — the GA per
  /// island generation — and abort with CancelledError.
  const CancelToken* cancel = nullptr;

  /// Worker pool for strategies with internal parallelism (not owned).
  /// nullptr lets the strategy fall back to its own shared pool — the GA's
  /// islands then run on a process-wide pool sized to the machine. Thread
  /// count never affects results (see GaConfig::islands); benches inject
  /// pools of varying size here to sweep the scaling axis.
  ThreadPool* pool = nullptr;
};

struct GaStats;

/// Interface of stage 2+3 (weight replicating + core mapping) strategies.
/// Implementations self-register with MapperRegistry (core/pipeline.hpp)
/// under a string key; the compiler driver never names them directly.
class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Strategy name for reports ("pimcomp-ga", "puma-like", ...).
  virtual std::string name() const = 0;

  /// Produces a valid mapping for the workload.
  virtual MappingSolution map(const Workload& workload,
                              const MapperOptions& options) = 0;

  /// Convergence record of the most recent map() call when the strategy is
  /// iterative; nullptr for one-shot heuristics.
  virtual const GaStats* convergence() const { return nullptr; }
};

}  // namespace pimcomp

#endif  // PIMCOMP_MAPPING_MAPPER_HPP
