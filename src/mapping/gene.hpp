#ifndef PIMCOMP_MAPPING_GENE_HPP
#define PIMCOMP_MAPPING_GENE_HPP

#include <cstdint>
#include <string>

#include "graph/node.hpp"

namespace pimcomp {

/// One gene of the genetic algorithm's chromosome: "several AGs of a node"
/// resident on one core (paper §IV-C1). The paper encodes a gene as the
/// integer `node_index * 10000 + ag_count` (e.g. 1030025 = 25 AGs of node
/// 103); `encode_gene`/`decode_gene` implement that wire format, while the
/// in-memory representation keeps the fields separate.
struct Gene {
  NodeId node = -1;
  int ag_count = 0;

  bool operator==(const Gene&) const = default;
  std::string to_string() const;
};

/// Maximum AG count representable in the paper's integer encoding.
inline constexpr int kMaxAgCountPerGene = 9999;

/// Packs a gene into the paper's integer format. Throws ConfigError when
/// ag_count is outside [0, 9999].
std::int64_t encode_gene(const Gene& gene);

/// Unpacks the paper's integer format; 0 decodes to an empty gene
/// (node = -1, ag_count = 0) matching an unused chromosome slot.
Gene decode_gene(std::int64_t encoded);

}  // namespace pimcomp

#endif  // PIMCOMP_MAPPING_GENE_HPP
