#include "fleet/router.hpp"

#include <unistd.h>

#include <chrono>
#include <exception>
#include <iostream>
#include <optional>
#include <thread>
#include <utility>

#include "common/string_util.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace pimcomp::fleet {

namespace {

std::int64_t message_id(const Json& json) {
  return json.get("id", static_cast<std::int64_t>(0));
}

}  // namespace

Router::Router(RouterOptions options) : options_(std::move(options)) {
  if (options_.backends.empty()) {
    throw serve::ServeError("router needs at least one backend endpoint");
  }
  if (options_.unix_path.empty() && options_.port < 0) {
    throw serve::ServeError("router needs --unix or --port");
  }
  backends_.reserve(options_.backends.size());
  for (const std::string& endpoint : options_.backends) {
    backends_.push_back(std::make_unique<Backend>(endpoint));
  }
}

Router::~Router() { stop(); }

void Router::start() {
  listener_ = options_.unix_path.empty()
                  ? serve::listen_tcp(options_.host, options_.port,
                                      &bound_port_)
                  : serve::listen_unix(options_.unix_path);
  started_ = true;
  if (options_.health_interval_seconds > 0) {
    health_thread_ = Thread([this] { health_loop(); });
  }
  accept_thread_ = Thread([this] { accept_loop(); });
}

void Router::stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true);
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();

  // Drain: in-flight compile requests keep streaming for up to the grace
  // period — new ones are refused once `stopping_` is up — then every
  // connection is cut (idle clients immediately, stragglers forcibly),
  // which unwinds the serving threads through a ServeError.
  std::vector<Thread> client_threads;
  {
    MutexLock lock(mutex_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::seconds(options_.drain_timeout_seconds);
    while (active_requests_ > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      drained_.wait_for(mutex_, std::chrono::milliseconds(100));
    }
    for (const std::weak_ptr<serve::LineChannel>& weak : live_channels_) {
      if (std::shared_ptr<serve::LineChannel> channel = weak.lock()) {
        channel->shutdown_both();
      }
    }
    live_channels_.clear();
    client_threads = std::move(client_threads_);
    client_threads_.clear();
  }
  for (Thread& thread : client_threads) {
    if (thread.joinable()) thread.join();
  }

  listener_.close();
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

std::string Router::endpoint() const {
  if (!options_.unix_path.empty()) return "unix:" + options_.unix_path;
  return options_.host + ":" + std::to_string(bound_port_);
}

// ---------------------------------------------------------------------------
// Frontend: accept + per-connection serving.
// ---------------------------------------------------------------------------

void Router::accept_loop() {
  while (true) {
    std::optional<serve::Socket> socket;
    try {
      socket = serve::accept_connection(listener_, &stopping_);
    } catch (const std::exception&) {
      break;  // listener torn down
    }
    if (!socket.has_value()) break;
    connections_accepted_.fetch_add(1);
    auto channel = std::make_shared<serve::LineChannel>(std::move(*socket));
    MutexLock lock(mutex_);
    if (stopping_.load()) break;  // raced with stop(): drop, don't spawn
    ++active_connections_;
    live_channels_.push_back(channel);
    // Thread-per-connection: the router holds no compiler state, so a
    // connection's cost is one mostly-blocked thread — exited threads are
    // reclaimed wholesale at stop(). Expired channel entries are swept
    // here so the vectors track connection churn, not history.
    live_channels_.erase(
        std::remove_if(live_channels_.begin(), live_channels_.end(),
                       [](const std::weak_ptr<serve::LineChannel>& weak) {
                         return weak.expired();
                       }),
        live_channels_.end());
    client_threads_.emplace_back(
        [this, channel] { serve_connection(channel); });
  }
}

void Router::serve_connection(std::shared_ptr<serve::LineChannel> channel) {
  try {
    while (std::optional<std::string> line = channel->read_line()) {
      if (line->empty()) continue;
      dispatch_line(*channel, *line);
    }
  } catch (const std::exception&) {
    // Client gone (or cut off by the drain): nothing left to tell it.
  }
  channel.reset();  // drop our ref before signalling the drain
  MutexLock lock(mutex_);
  --active_connections_;
  drained_.notify_all();
}

void Router::dispatch_line(serve::LineChannel& client,
                           const std::string& line) {
  Json json;
  try {
    json = Json::parse(line);
  } catch (const std::exception& e) {
    client.write_line(
        serve::to_json(serve::ErrorMessage{0, e.what()}).dump(-1));
    return;
  }
  const std::int64_t id = message_id(json);
  const std::string type = json.get("type", std::string("compile"));
  try {
    if (!options_.auth_token.empty() &&
        !serve::constant_time_equal(json.get("auth", std::string()),
                                    options_.auth_token)) {
      client.write_line(
          serve::to_json(serve::ErrorMessage{id,
                                             "unauthorized: missing or bad "
                                             "auth token"})
              .dump(-1));
      return;
    }
    if (type == "ping") {
      client.write_line(serve::to_json(serve::PongMessage{id}).dump(-1));
    } else if (type == "stats") {
      client.write_line(
          serve::to_json(serve::StatsMessage{id, stats_payload()}).dump(-1));
    } else if (type == "compile") {
      handle_compile(client, std::move(json));
    } else {
      // cache_get / cache_put included: the cache tier is daemon-to-daemon,
      // the router deliberately holds no artifacts to serve or accept.
      client.write_line(
          serve::to_json(serve::ErrorMessage{
                             id, "router does not serve '" + type + "'"})
              .dump(-1));
    }
  } catch (const serve::ServeError&) {
    throw;  // client-side write failure: let serve_connection close up
  } catch (const std::exception& e) {
    client.write_line(
        serve::to_json(serve::ErrorMessage{id, e.what()}).dump(-1));
  }
}

// ---------------------------------------------------------------------------
// Compile forwarding.
// ---------------------------------------------------------------------------

void Router::handle_compile(serve::LineChannel& client, Json json) {
  // Register with the drain before doing any work: stop() waits for
  // in-flight forwards (not connections), and refusing here — under the
  // same mutex the drain loop holds — closes the race where a compile
  // slips in after the drain decided there was nothing left to wait for.
  {
    MutexLock lock(mutex_);
    if (stopping_.load()) {
      lock.unlock();
      client.write_line(
          serve::to_json(serve::ErrorMessage{
                             message_id(json),
                             "router is draining; retry against another "
                             "instance"})
              .dump(-1));
      return;
    }
    ++active_requests_;
  }
  try {
    forward_compile(client, std::move(json));
  } catch (...) {
    MutexLock lock(mutex_);
    --active_requests_;
    drained_.notify_all();
    throw;
  }
  MutexLock lock(mutex_);
  --active_requests_;
  drained_.notify_all();
}

void Router::forward_compile(serve::LineChannel& client, Json json) {
  const std::int64_t id = message_id(json);

  // Content-addressed shard: resolve the request exactly as a daemon would
  // and key on the (graph, hardware) fingerprint, so identical workloads
  // always land on the same backend's warm session and caches. Requests
  // the router cannot resolve fall back to rotation — the backend then
  // produces the authoritative error (or resolves a request whose grammar
  // is newer than the router's).
  std::size_t primary = static_cast<std::size_t>(rotation_.fetch_add(1)) %
                        backends_.size();
  try {
    const serve::CompileRequest request = serve::request_from_json(json);
    primary = static_cast<std::size_t>(
        serve::resolve_compile_request(request).fingerprint %
        backends_.size());
  } catch (const std::exception&) {
  }

  // The fleet token replaces whatever the client presented (already
  // verified): daemons trust the router, not router clients.
  if (!options_.auth_token.empty()) {
    json["auth"] = Json(options_.auth_token);
  }
  const std::string line = json.dump(-1);

  // Attempt order: shard-preferred rotation, healthy backends first. The
  // unhealthy tail still gets a chance — with every backend marked down
  // (say, after a fleet-wide restart) refusing outright would turn a
  // transient probe gap into client-visible failure.
  std::vector<std::size_t> order;
  order.reserve(backends_.size());
  for (const bool want_healthy : {true, false}) {
    for (std::size_t k = 0; k < backends_.size(); ++k) {
      const std::size_t index = (primary + k) % backends_.size();
      if (backends_[index]->healthy.load() == want_healthy) {
        order.push_back(index);
      }
    }
  }

  std::unordered_set<int> outcomes_relayed;
  std::unordered_set<int> artifacts_relayed;
  bool first_attempt = true;
  for (const std::size_t index : order) {
    Backend& backend = *backends_[index];
    backend.requests.fetch_add(1);
    if (!first_attempt) backend.retries.fetch_add(1);
    first_attempt = false;
    if (forward(backend, line, client, id, outcomes_relayed,
                artifacts_relayed) == Forward::kRelayed) {
      requests_served_.fetch_add(1);
      return;
    }
    backend.failures.fetch_add(1);
    backend.healthy.store(false);
  }
  client.write_line(
      serve::to_json(serve::ErrorMessage{
                         id, "no backend completed the request (" +
                                 std::to_string(backends_.size()) +
                                 " tried)"})
          .dump(-1));
}

Router::Forward Router::forward(Backend& backend, const std::string& line,
                                serve::LineChannel& client, std::int64_t id,
                                std::unordered_set<int>& outcomes_relayed,
                                std::unordered_set<int>& artifacts_relayed) {
  (void)id;  // frames arrive on a dedicated upstream; no id filtering needed
  bool writing_to_client = false;
  try {
    serve::Socket socket = serve::connect_endpoint(backend.endpoint);
    socket.set_recv_timeout(options_.backend_timeout_seconds);
    socket.set_send_timeout(options_.backend_timeout_seconds);
    serve::LineChannel upstream(std::move(socket));
    upstream.write_line(line);

    while (std::optional<std::string> reply = upstream.read_line()) {
      const Json frame = Json::parse(*reply);
      const std::string type = frame.get("type", std::string());
      // Retry bookkeeping: a scenario whose outcome was already relayed
      // from a backend that later died must not reach the client twice
      // when the retry recompiles it — nor re-announce its progress.
      if (type == "outcome") {
        if (!outcomes_relayed.insert(frame.get("index", -1)).second) {
          continue;
        }
      } else if (type == "artifact") {
        if (!artifacts_relayed.insert(frame.get("index", -1)).second) {
          continue;
        }
      } else if (type == "event" || type == "cache_hit") {
        if (outcomes_relayed.count(frame.get("index", -1)) != 0) continue;
      }
      writing_to_client = true;
      client.write_line(*reply);
      writing_to_client = false;
      // `done` ends the request; an `error` frame is a deterministic
      // request-level verdict — retrying it elsewhere would just repeat
      // the same failure against the same content-addressed request.
      if (type == "done" || type == "error") return Forward::kRelayed;
    }
    return Forward::kBackendDied;  // EOF before a terminal frame
  } catch (const std::exception&) {
    if (writing_to_client) throw;  // the *client* died: abort the request
    return Forward::kBackendDied;
  }
}

// ---------------------------------------------------------------------------
// Health probing + stats.
// ---------------------------------------------------------------------------

bool Router::probe(Backend& backend) {
  try {
    serve::Socket socket = serve::connect_endpoint(backend.endpoint);
    socket.set_recv_timeout(options_.health_timeout_seconds);
    socket.set_send_timeout(options_.health_timeout_seconds);
    serve::LineChannel channel(std::move(socket));
    serve::PingRequest ping;
    ping.id = 1;
    ping.auth = options_.auth_token;
    channel.write_line(serve::to_json(ping).dump(-1));
    while (std::optional<std::string> reply = channel.read_line()) {
      const Json frame = Json::parse(*reply);
      const std::string type = frame.get("type", std::string());
      if (type == "pong") return true;
      if (type == "error") return false;
    }
  } catch (const std::exception&) {
  }
  return false;
}

void Router::health_loop() {
  while (!stopping_.load()) {
    for (const std::unique_ptr<Backend>& backend : backends_) {
      if (stopping_.load()) return;
      backend->healthy.store(probe(*backend));
    }
    // Interruptible sleep: check the stop flag every 50ms so teardown
    // never waits out a full health interval.
    const auto wake = std::chrono::steady_clock::now() +
                      std::chrono::seconds(options_.health_interval_seconds);
    while (!stopping_.load() && std::chrono::steady_clock::now() < wake) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

Json Router::stats_payload() const {
  Json rows = Json::array();
  for (const std::unique_ptr<Backend>& backend : backends_) {
    Json row = Json::object();
    row["endpoint"] = Json(backend->endpoint);
    row["healthy"] = Json(backend->healthy.load());
    row["requests"] =
        Json(static_cast<std::int64_t>(backend->requests.load()));
    row["retries"] = Json(static_cast<std::int64_t>(backend->retries.load()));
    row["failures"] =
        Json(static_cast<std::int64_t>(backend->failures.load()));
    rows.push_back(std::move(row));
  }
  Json payload = Json::object();
  payload["role"] = Json(std::string("router"));
  payload["requests_served"] =
      Json(static_cast<std::int64_t>(requests_served_.load()));
  payload["connections"] =
      Json(static_cast<std::int64_t>(connections_accepted_.load()));
  payload["backends"] = std::move(rows);
  return payload;
}

// ---------------------------------------------------------------------------
// CLI frontend.
// ---------------------------------------------------------------------------

int run_router(int argc, char** argv, const std::string& program) {
  const auto usage = [&program]() -> int {
    std::cerr << "usage: " << program
              << " (--unix PATH | --port N [--host ADDR])\n"
                 "       --backend ENDPOINT [--backend ENDPOINT]...\n"
                 "       [--auth-token TOKEN] [--health-interval SECONDS]\n";
    return 2;
  };
  const auto parse_int_flag = [&program](const std::string& flag,
                                         const std::string& token,
                                         long long min,
                                         long long max) -> std::optional<int> {
    const std::optional<long long> value = parse_decimal(token);
    if (!value.has_value() || *value < min || *value > max) {
      std::cerr << program << ": " << flag << " wants an integer in [" << min
                << ", " << max << "], got '" << token << "'\n";
      return std::nullopt;
    }
    return static_cast<int>(*value);
  };

  RouterOptions options;
  bool endpoint_given = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--unix" && has_next) {
      options.unix_path = argv[++i];
      endpoint_given = true;
    } else if (arg == "--port" && has_next) {
      const std::optional<int> port = parse_int_flag(arg, argv[++i], 0, 65535);
      if (!port.has_value()) return 2;
      options.port = *port;
      endpoint_given = true;
    } else if (arg == "--host" && has_next) {
      options.host = argv[++i];
    } else if (arg == "--backend" && has_next) {
      options.backends.push_back(argv[++i]);
    } else if (arg == "--auth-token" && has_next) {
      options.auth_token = argv[++i];
    } else if (arg == "--health-interval" && has_next) {
      const std::optional<int> interval =
          parse_int_flag(arg, argv[++i], 1, 3600);
      if (!interval.has_value()) return 2;
      options.health_interval_seconds = *interval;
    } else {
      return usage();
    }
  }
  if (!endpoint_given || options.backends.empty()) return usage();

  try {
    serve::block_shutdown_signals();

    Router router(std::move(options));
    router.start();
    std::cout << program << " listening on " << router.endpoint()
              << std::endl;

    const int signal = serve::wait_for_shutdown_signal();
    std::cout << program << ": caught signal " << signal
              << ", draining" << std::endl;
    router.stop();
    std::cout << program << ": served " << router.requests_served()
              << " request(s) over " << router.connections_accepted()
              << " connection(s)" << std::endl;
  } catch (const std::exception& e) {
    std::cerr << program << ": " << e.what() << '\n';
    return 1;
  }
  return 0;
}

}  // namespace pimcomp::fleet
