#ifndef PIMCOMP_FLEET_ROUTER_HPP
#define PIMCOMP_FLEET_ROUTER_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/json.hpp"
#include "common/thread_annotations.hpp"
#include "serve/net.hpp"

namespace pimcomp::fleet {

/// Router configuration. Exactly one of `unix_path` / `port` selects the
/// frontend listener, mirroring ServerOptions.
struct RouterOptions {
  std::string unix_path;          ///< listen on a Unix socket when non-empty
  std::string host = "127.0.0.1"; ///< TCP bind address when port >= 0
  int port = -1;                  ///< TCP port (0 = ephemeral)

  /// Backend pimcompd endpoints ("unix:PATH" or "HOST:PORT"), in shard
  /// order. Must be non-empty.
  std::vector<std::string> backends;

  /// Fleet auth token. When non-empty it is (a) enforced on every inbound
  /// request with a constant-time compare and (b) stamped onto forwarded
  /// requests, so clients authenticate to the router and the router
  /// authenticates to the daemons with the one fleet-wide secret.
  std::string auth_token;

  /// Active ping cadence per backend. <= 0 disables the prober entirely:
  /// backends keep their last-known health (optimistically up at start)
  /// and are only marked down by forwarding failures.
  int health_interval_seconds = 2;
  int health_timeout_seconds = 2;   ///< per-probe connect/recv budget
  /// Per-read budget while streaming a forwarded compile. Generous: a
  /// backend legitimately goes quiet for the length of its longest mapping
  /// stage, and real death is detected by EOF/reset long before this.
  int backend_timeout_seconds = 600;
  int drain_timeout_seconds = 30;   ///< stop(): grace for in-flight requests
};

/// pimcomp_router — a thin front daemon for a pimcompd fleet.
///
/// Speaks the same newline-delimited JSON protocol as pimcompd on its
/// frontend socket, but holds no compiler state: every compile request is
/// forwarded to one backend daemon and its event/outcome/artifact/done
/// frames are relayed back verbatim (ids untouched, so the client cannot
/// tell the difference; the done frame's version gating is the backend's).
///
/// Sharding is content-addressed: the request is resolved exactly like a
/// daemon would resolve it (serve::resolve_compile_request) and the
/// (graph, hardware) fingerprint picks `fingerprint % backends` — so
/// identical workloads always land on the same daemon and hit its warm
/// session and caches. Unresolvable requests fall back to rotation; the
/// chosen backend then produces the authoritative error.
///
/// Failure model: a backend that dies mid-request (EOF, reset, timeout) is
/// marked unhealthy and the request is retried on the next backend —
/// compile requests are idempotent and content-addressed, so a retry is
/// safe, and outcome/artifact frames already relayed are deduplicated by
/// scenario index so the client never sees a scenario twice. A backend
/// *error frame* is terminal (relayed, no retry): request-level errors are
/// deterministic and would just repeat. A health thread pings every
/// backend on a fixed cadence so dead backends are skipped before a
/// client ever waits on them.
///
/// stop() drains: the listener closes, new compile requests are refused
/// with an error frame, in-flight requests get `drain_timeout_seconds` to
/// finish, then every connection (idle ones immediately, stragglers after
/// the grace) is cut off.
class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds the frontend, starts the health prober and the accept loop.
  void start();

  /// Graceful drain, then teardown. Idempotent.
  void stop();

  /// "unix:PATH" or "host:port" (with the ephemeral port resolved).
  std::string endpoint() const;

  std::uint64_t requests_served() const { return requests_served_.load(); }
  std::uint64_t connections_accepted() const {
    return connections_accepted_.load();
  }

  /// The `stats` reply: {"role":"router","backends":[{endpoint, healthy,
  /// requests, retries, failures}, ...], ...}.
  Json stats_payload() const;

 private:
  struct Backend {
    explicit Backend(std::string endpoint_in)
        : endpoint(std::move(endpoint_in)) {}
    const std::string endpoint;
    std::atomic<bool> healthy{true};  ///< optimistic until a probe says no
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> failures{0};
  };

  /// What one forwarding attempt concluded about the request (not the
  /// backend): kRelayed means the client got a terminal frame (done or
  /// error) and the request is over; kBackendDied means the backend went
  /// away mid-request and the caller should retry elsewhere.
  enum class Forward { kRelayed, kBackendDied };

  void accept_loop();
  void serve_connection(std::shared_ptr<serve::LineChannel> channel);
  void dispatch_line(serve::LineChannel& client, const std::string& line);
  void handle_compile(serve::LineChannel& client, Json json);
  void forward_compile(serve::LineChannel& client, Json json);
  Forward forward(Backend& backend, const std::string& line,
                  serve::LineChannel& client, std::int64_t id,
                  std::unordered_set<int>& outcomes_relayed,
                  std::unordered_set<int>& artifacts_relayed);
  void health_loop();
  bool probe(Backend& backend);

  const RouterOptions options_;
  std::vector<std::unique_ptr<Backend>> backends_;
  /// Shard fallback for requests whose fingerprint cannot be computed.
  std::atomic<std::uint64_t> rotation_{0};

  serve::Socket listener_;
  int bound_port_ = -1;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  Thread accept_thread_;
  Thread health_thread_;

  mutable Mutex mutex_;
  CondVar drained_;
  std::vector<Thread> client_threads_ PIMCOMP_GUARDED_BY(mutex_);
  /// Live client channels, for cutting off stragglers after the drain
  /// grace. Weak: the serving thread owns the channel's lifetime.
  std::vector<std::weak_ptr<serve::LineChannel>> live_channels_
      PIMCOMP_GUARDED_BY(mutex_);
  std::size_t active_connections_ PIMCOMP_GUARDED_BY(mutex_) = 0;
  /// In-flight compile forwards. This — not open connections — is what
  /// stop() drains: an idle client holding a connection open must not
  /// stall teardown for the full grace period.
  std::size_t active_requests_ PIMCOMP_GUARDED_BY(mutex_) = 0;

  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
};

/// CLI frontend (the body of the pimcomp_router binary):
///
///   pimcomp_router (--unix PATH | --port N [--host ADDR])
///                  --backend ENDPOINT [--backend ENDPOINT]...
///                  [--auth-token TOKEN] [--health-interval SECONDS]
///
/// Prints "<program> listening on <endpoint>" once ready, then blocks until
/// SIGTERM/SIGINT and drains. Returns the process exit code.
int run_router(int argc, char** argv, const std::string& program);

}  // namespace pimcomp::fleet

#endif  // PIMCOMP_FLEET_ROUTER_HPP
