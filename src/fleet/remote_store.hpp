#ifndef PIMCOMP_FLEET_REMOTE_STORE_HPP
#define PIMCOMP_FLEET_REMOTE_STORE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_store.hpp"
#include "common/thread_annotations.hpp"
#include "serve/net.hpp"

namespace pimcomp::fleet {

/// The network cache tier: a CacheStore that resolves misses from peer
/// `pimcompd` daemons over the wire protocol (cache_get) and pushes freshly
/// computed artifacts to them (cache_put). The session composes it as the
/// deepest tier under TieredStore — memory, then disk, then remote — so a
/// daemon restarted with an empty disk answers its first request from a
/// peer instead of recomputing the mapping.
///
/// Trust model: a peer's artifact is treated exactly like a disk file, not
/// like an RPC result. load() checks the versioned envelope (schema +
/// embedded key) before reporting a hit, and the caller revalidates the
/// content fingerprints the same way it does for disk artifacts — a lying,
/// stale, or corrupted peer therefore costs one recompute, never a wrong
/// result.
///
/// Failure model: every peer operation is best-effort with a bounded
/// budget. Each peer gets one pooled connection, guarded by its own mutex;
/// socket send/recv timeouts (CacheConfig::peer_timeout_seconds) turn a
/// hung peer into a miss, and a failed peer is skipped until an
/// exponential-backoff deadline passes (100ms doubling to a 2s cap), so a
/// dead daemon costs at most one connect attempt per backoff window, not
/// one per lookup.
///
/// erase() is deliberately a local no-op: the protocol carries no remote
/// delete, and because remote entries revalidate on every load, a bad
/// entry left on a peer can never propagate — peers self-heal when their
/// own DiskStore unlinks the garbage.
class RemoteStore final : public CacheStore {
 public:
  /// Requires config.remote_enabled(). Does not connect; connections are
  /// opened lazily on first use and re-opened after failures.
  explicit RemoteStore(CacheConfig config);

  const char* name() const override { return "remote"; }
  const CacheConfig& config() const { return config_; }

  /// Asks each peer in configuration order; first valid answer wins.
  std::optional<CacheHit> load(std::uint64_t key) override;

  /// Offers the artifact to every peer (first writer wins on each, like a
  /// local store). Returns cache_sources::kRemote when at least one peer
  /// newly accepted it, nullptr otherwise. Entries without an encoded
  /// artifact are not sent — decoded objects cannot travel.
  const char* store(std::uint64_t key, const CacheEntry& entry) override;

  /// No-op (see class comment).
  void erase(std::uint64_t key) override;

  /// Local no-op; never reaches over the wire. Returns 0.
  std::uint64_t purge() override;

  /// Counters only; `entries`/`bytes` are 0 (peer contents are theirs to
  /// report via their own stats request).
  CacheStoreStats stats() const override;

 private:
  /// One pooled peer connection. The mutex serializes the whole
  /// request/response round trip — the protocol is synchronous per
  /// connection, so interleaving two lookups would cross-wire replies.
  struct Peer {
    explicit Peer(std::string ep) : endpoint(std::move(ep)) {}

    const std::string endpoint;
    Mutex mutex;
    std::unique_ptr<serve::LineChannel> channel PIMCOMP_GUARDED_BY(mutex);
    int failures PIMCOMP_GUARDED_BY(mutex) = 0;
    std::chrono::steady_clock::time_point retry_at
        PIMCOMP_GUARDED_BY(mutex){};
  };

  /// Connects the peer if needed; false while its backoff window is open
  /// or the connect failed (which opens the next window).
  bool ensure_connected_locked(Peer& peer) PIMCOMP_REQUIRES(peer.mutex);
  void mark_failed_locked(Peer& peer) PIMCOMP_REQUIRES(peer.mutex);

  /// Sends `request` and reads frames until the cache_result (or error)
  /// matching `id`; std::nullopt on any failure (connection dropped,
  /// timeout, rejection), after which the peer is backed off.
  std::optional<Json> roundtrip(Peer& peer, const Json& request,
                                std::int64_t id) PIMCOMP_EXCLUDES(peer.mutex);

  const CacheConfig config_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::atomic<std::int64_t> next_id_{1};

  mutable Mutex stats_mutex_;
  CacheStoreStats counters_ PIMCOMP_GUARDED_BY(stats_mutex_);
};

}  // namespace pimcomp::fleet

#endif  // PIMCOMP_FLEET_REMOTE_STORE_HPP
