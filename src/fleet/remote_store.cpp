#include "fleet/remote_store.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

#include "cache/remote_tier.hpp"
#include "common/error.hpp"
#include "serve/protocol.hpp"

namespace pimcomp::fleet {

namespace {

/// Ceiling of the reconnect backoff: a dead peer costs one connect attempt
/// per window at most, and recovers within 2s of coming back.
constexpr std::chrono::milliseconds kMaxBackoff{2000};

}  // namespace

RemoteStore::RemoteStore(CacheConfig config) : config_(std::move(config)) {
  PIMCOMP_CHECK(config_.remote_enabled(),
                "RemoteStore needs at least one peer endpoint");
  peers_.reserve(config_.peers.size());
  for (const std::string& endpoint : config_.peers) {
    peers_.push_back(std::make_unique<Peer>(endpoint));
  }
}

bool RemoteStore::ensure_connected_locked(Peer& peer) {
  if (peer.channel != nullptr) return true;
  if (peer.failures > 0 &&
      std::chrono::steady_clock::now() < peer.retry_at) {
    return false;  // backoff window still open
  }
  try {
    serve::Socket socket = serve::connect_endpoint(peer.endpoint);
    socket.set_send_timeout(config_.peer_timeout_seconds);
    socket.set_recv_timeout(config_.peer_timeout_seconds);
    peer.channel = std::make_unique<serve::LineChannel>(std::move(socket));
    peer.failures = 0;
    return true;
  } catch (const std::exception&) {
    mark_failed_locked(peer);
    return false;
  }
}

void RemoteStore::mark_failed_locked(Peer& peer) {
  peer.channel.reset();
  peer.failures = std::min(peer.failures + 1, 8);
  const std::chrono::milliseconds backoff = std::min(
      std::chrono::milliseconds(100) * (1 << std::min(peer.failures - 1, 5)),
      kMaxBackoff);
  peer.retry_at = std::chrono::steady_clock::now() + backoff;
}

std::optional<Json> RemoteStore::roundtrip(Peer& peer, const Json& request,
                                           std::int64_t id) {
  MutexLock lock(peer.mutex);
  if (!ensure_connected_locked(peer)) return std::nullopt;
  try {
    peer.channel->write_line(request.dump(-1));
    for (;;) {
      std::optional<std::string> line = peer.channel->read_line();
      if (!line.has_value()) {
        mark_failed_locked(peer);  // peer closed mid-request
        return std::nullopt;
      }
      if (line->empty()) continue;
      Json reply = Json::parse(*line);
      const std::string type = reply.get("type", std::string());
      if (type == "cache_result" &&
          reply.get("id", std::int64_t{0}) == id) {
        return reply;
      }
      if (type == "error") {
        const std::int64_t error_id = reply.get("id", std::int64_t{0});
        if (error_id == id || error_id == 0) {
          // Rejection (bad auth, malformed frame as the peer sees it):
          // dropping the connection and backing off rate-limits a
          // misconfiguration to one attempt per window.
          mark_failed_locked(peer);
          return std::nullopt;
        }
      }
      // Anything else is a stale or foreign frame: skip it; the socket
      // recv timeout bounds how long we will keep looking.
    }
  } catch (const std::exception&) {
    mark_failed_locked(peer);  // timeout, broken pipe, garbage JSON
    return std::nullopt;
  }
}

std::optional<CacheHit> RemoteStore::load(std::uint64_t key) {
  for (const std::unique_ptr<Peer>& peer : peers_) {
    const std::int64_t id = next_id_.fetch_add(1);
    serve::CacheGetRequest request;
    request.id = id;
    request.key = key;
    request.auth = config_.auth_token;
    std::optional<Json> reply = roundtrip(*peer, to_json(request), id);
    if (!reply.has_value() || !reply->get("found", false) ||
        !reply->contains("artifact")) {
      continue;
    }
    // Same envelope check DiskStore applies to its own files: a peer's
    // answer earns no extra trust for having arrived over a socket. The
    // caller then revalidates content fingerprints before adopting it.
    Json artifact = reply->at("artifact");
    const bool valid = artifact.is_object() &&
                       artifact.get("schema", -1) == kCacheSchemaVersion &&
                       artifact.get("key", std::string()) == cache_key_hex(key);
    if (!valid) continue;
    {
      MutexLock lock(stats_mutex_);
      ++counters_.hits;
    }
    CacheEntry entry;
    entry.artifact = std::move(artifact);
    return CacheHit{std::move(entry), cache_sources::kRemote};
  }
  MutexLock lock(stats_mutex_);
  ++counters_.misses;
  return std::nullopt;
}

const char* RemoteStore::store(std::uint64_t key, const CacheEntry& entry) {
  if (!entry.has_artifact()) return nullptr;
  bool any_stored = false;
  for (const std::unique_ptr<Peer>& peer : peers_) {
    const std::int64_t id = next_id_.fetch_add(1);
    serve::CachePutRequest request;
    request.id = id;
    request.key = key;
    request.artifact = entry.artifact;
    request.auth = config_.auth_token;
    std::optional<Json> reply = roundtrip(*peer, to_json(request), id);
    if (reply.has_value() && reply->get("stored", false)) any_stored = true;
  }
  if (!any_stored) return nullptr;
  MutexLock lock(stats_mutex_);
  ++counters_.stores;
  return cache_sources::kRemote;
}

void RemoteStore::erase(std::uint64_t /*key*/) {
  // Deliberately local-only (see header): no wire-level delete exists, and
  // revalidation on load means a stale peer entry cannot do damage.
}

std::uint64_t RemoteStore::purge() { return 0; }

CacheStoreStats RemoteStore::stats() const {
  MutexLock lock(stats_mutex_);
  return counters_;
}

namespace {

/// Installs RemoteStore as the session's remote cache tier through the
/// cache/remote_tier.hpp seam — linking this TU is what makes
/// CacheConfig::peers usable, the same way PIMCOMP_REGISTER_MAPPER TUs
/// make a --mapper key usable.
[[maybe_unused]] const bool remote_tier_registered = [] {
  register_remote_tier_factory(
      +[](const CacheConfig& config) -> std::unique_ptr<CacheStore> {
        return std::make_unique<RemoteStore>(config);
      });
  return true;
}();

}  // namespace

}  // namespace pimcomp::fleet
