#ifndef PIMCOMP_ARCH_AREA_MODEL_HPP
#define PIMCOMP_ARCH_AREA_MODEL_HPP

#include "arch/component_models.hpp"
#include "arch/hardware_config.hpp"

namespace pimcomp {

/// Silicon area summary for a hardware configuration, derived from the
/// component table (Table I reproduction).
struct AreaReport {
  double core_mm2 = 0.0;        ///< one core (PIMMU+VFU+scratchpad+control)
  double router_mm2 = 0.0;      ///< one router
  double chip_mm2 = 0.0;        ///< one chip (cores + routers + shared)
  double total_mm2 = 0.0;       ///< all chips
  int chip_count = 0;
};

/// Computes the area report for a hardware config.
AreaReport compute_area(const HardwareConfig& hw);

}  // namespace pimcomp

#endif  // PIMCOMP_ARCH_AREA_MODEL_HPP
