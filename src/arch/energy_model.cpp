#include "arch/energy_model.hpp"

namespace pimcomp {

EnergyModel::EnergyModel(const HardwareConfig& hw) {
  const ComponentTable table = build_component_table(hw);

  // One crossbar's share of the PIMMU dynamic power, burned for the MVM
  // duration.
  const double per_xbar_dynamic_mw =
      table.pimmu.dynamic_mw() / static_cast<double>(hw.xbars_per_core);
  mvm_energy_per_xbar_ = energy_mw_ps(per_xbar_dynamic_mw, hw.mvm_latency);

  // VFU dynamic power divided by its element throughput.
  const double vfu_dynamic_mw = table.vfu.dynamic_mw();
  const double elements_per_ns = hw.vfu_ops_per_ns;
  vfu_energy_per_element_ =
      energy_mw_ps(vfu_dynamic_mw, from_ns(1.0)) / elements_per_ns;

  local_mem_energy_per_byte_ =
      cacti_lite_energy_per_byte_pj(hw.local_memory_bytes);
  global_mem_energy_per_byte_ =
      cacti_lite_energy_per_byte_pj(hw.global_memory_bytes);
  noc_energy_per_flit_hop_ = orion_lite_flit_energy_pj(hw.noc_flit_bytes);
  // HyperTransport: 10.4 W at 6.4 GB/s full duty -> pJ per byte.
  ht_energy_per_byte_ = table.hyper_transport.dynamic_mw() * 1e-3 /
                        (hw.ht_link_gbps * 1e9) * 1e12;

  // Four cores share one router in the concentrated mesh, so each core
  // carries a quarter of a router's leakage.
  core_leakage_mw_ = table.pimmu.leakage_mw() + table.vfu.leakage_mw() +
                     table.local_memory.leakage_mw() +
                     table.control_unit.leakage_mw() +
                     table.router.leakage_mw() / 4.0;
  chip_shared_leakage_mw_ =
      table.global_memory.leakage_mw() + table.hyper_transport.leakage_mw();
}

}  // namespace pimcomp
