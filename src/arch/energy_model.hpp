#ifndef PIMCOMP_ARCH_ENERGY_MODEL_HPP
#define PIMCOMP_ARCH_ENERGY_MODEL_HPP

#include "arch/component_models.hpp"
#include "arch/hardware_config.hpp"
#include "common/units.hpp"

namespace pimcomp {

/// Per-operation dynamic energies and per-component leakage powers derived
/// from the component table. The simulator multiplies these by event counts
/// (dynamic) and active time (leakage) to produce the Fig 9 breakdown.
class EnergyModel {
 public:
  explicit EnergyModel(const HardwareConfig& hw);

  /// Dynamic energy of one crossbar executing one MVM (all bit slices,
  /// DAC + analog + ADC + shift-and-add).
  Picojoules mvm_energy_per_xbar() const { return mvm_energy_per_xbar_; }

  /// Dynamic energy per element processed by the VFU.
  Picojoules vfu_energy_per_element() const { return vfu_energy_per_element_; }

  /// Dynamic energy per byte read/written in the core scratchpad.
  Picojoules local_mem_energy_per_byte() const {
    return local_mem_energy_per_byte_;
  }

  /// Dynamic energy per byte transferred to/from the global memory.
  Picojoules global_mem_energy_per_byte() const {
    return global_mem_energy_per_byte_;
  }

  /// Dynamic energy for one flit traversing one router hop.
  Picojoules noc_energy_per_flit_hop() const {
    return noc_energy_per_flit_hop_;
  }

  /// Dynamic energy per byte crossing a chip boundary (HyperTransport).
  Picojoules ht_energy_per_byte() const { return ht_energy_per_byte_; }

  /// Leakage power of one core (PIMMU + VFU + local memory + control) plus
  /// its router, in mW. Burns whenever the core is powered.
  double core_leakage_mw() const { return core_leakage_mw_; }

  /// Leakage power of the chip-shared components (global memory + HT) per
  /// chip, in mW.
  double chip_shared_leakage_mw() const { return chip_shared_leakage_mw_; }

  /// Leakage energy of `cores` cores active for `time`.
  Picojoules core_leakage_energy(int cores, Picoseconds time) const {
    return energy_mw_ps(core_leakage_mw_ * cores, time);
  }

  /// Leakage energy of `chips` chips' shared components for `time`.
  Picojoules chip_leakage_energy(int chips, Picoseconds time) const {
    return energy_mw_ps(chip_shared_leakage_mw_ * chips, time);
  }

 private:
  Picojoules mvm_energy_per_xbar_ = 0.0;
  Picojoules vfu_energy_per_element_ = 0.0;
  Picojoules local_mem_energy_per_byte_ = 0.0;
  Picojoules global_mem_energy_per_byte_ = 0.0;
  Picojoules noc_energy_per_flit_hop_ = 0.0;
  Picojoules ht_energy_per_byte_ = 0.0;
  double core_leakage_mw_ = 0.0;
  double chip_shared_leakage_mw_ = 0.0;
};

}  // namespace pimcomp

#endif  // PIMCOMP_ARCH_ENERGY_MODEL_HPP
