#include "arch/area_model.hpp"

namespace pimcomp {

AreaReport compute_area(const HardwareConfig& hw) {
  const ComponentTable table = build_component_table(hw);
  AreaReport report;
  report.core_mm2 = table.core.area_mm2;
  report.router_mm2 = table.router.area_mm2;
  report.chip_mm2 = table.chip.area_mm2;
  report.chip_count = hw.chip_count();
  report.total_mm2 = report.chip_mm2 * report.chip_count;
  return report;
}

}  // namespace pimcomp
