#ifndef PIMCOMP_ARCH_NOC_HPP
#define PIMCOMP_ARCH_NOC_HPP

#include <cstdint>

#include "arch/hardware_config.hpp"
#include "common/units.hpp"

namespace pimcomp {

/// Interconnect timing/energy geometry. Cores on one chip sit on a 2-D mesh
/// (NoC) or a shared bus; chips are linked by HyperTransport. The model
/// answers two questions for the scheduler and simulator: how long does a
/// transfer of B bytes between cores a and b take, and how many router hops
/// does it traverse (for Orion-lite energy accounting).
class NocModel {
 public:
  explicit NocModel(const HardwareConfig& hw);

  /// Router hops between two cores on the same chip (0 when a == b).
  /// For bus connection every distinct pair is one "hop" (one arbitration).
  int hops(int core_a, int core_b) const;

  /// True when the two cores live on different chips.
  bool crosses_chip(int core_a, int core_b) const;

  /// Latency for a message of `bytes` from core_a to core_b, including
  /// per-hop router latency, link serialization, and the HyperTransport
  /// penalty for chip crossings.
  Picoseconds transfer_latency(int core_a, int core_b,
                               std::int64_t bytes) const;

  /// Flits needed for `bytes`.
  std::int64_t flits(std::int64_t bytes) const;

  /// Mesh side length (cores per chip rounded up to a square).
  int mesh_side() const { return mesh_side_; }

 private:
  HardwareConfig hw_;
  int mesh_side_ = 1;
};

}  // namespace pimcomp

#endif  // PIMCOMP_ARCH_NOC_HPP
