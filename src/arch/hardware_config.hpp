#ifndef PIMCOMP_ARCH_HARDWARE_CONFIG_HPP
#define PIMCOMP_ARCH_HARDWARE_CONFIG_HPP

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace pimcomp {

/// How cores are interconnected (paper Fig 3 "Core Connection Methods").
enum class CoreConnection { kNoC, kBus };

std::string to_string(CoreConnection c);

/// The user-facing description of the abstract accelerator (paper Fig 3,
/// "User Input"): crossbar geometry, core/chip counts, precisions, memory
/// bandwidths and the MVM operation latency. All compilation stages read
/// hardware facts exclusively from this struct, which is what makes the
/// framework "universal" — retargeting means changing these numbers.
struct HardwareConfig {
  // --- Crossbar geometry -------------------------------------------------
  int xbar_rows = 128;          ///< wordlines per crossbar
  int xbar_cols = 128;          ///< bitlines per crossbar
  int cell_bits = 2;            ///< bits stored per NVM cell
  int weight_bits = 16;         ///< fixed-point weight precision
  int activation_bits = 16;     ///< fixed-point activation precision
  int xbars_per_core = 64;      ///< crossbars inside one PIM matrix unit

  // --- Chip organization --------------------------------------------------
  int core_count = 36;          ///< total cores across all chips
  int cores_per_chip = 36;      ///< cores integrated on one chip
  CoreConnection connection = CoreConnection::kNoC;

  // --- Vector function unit ----------------------------------------------
  int vfus_per_core = 12;       ///< parallel VFU lanes per core
  double vfu_ops_per_ns = 1.2;  ///< aggregate VFU elements processed per ns

  // --- Memories ------------------------------------------------------------
  std::int64_t local_memory_bytes = 64 * 1024;        ///< per-core scratchpad
  double local_memory_gbps = 32.0;   ///< scratchpad bandwidth per core
  std::int64_t global_memory_bytes = 4 * 1024 * 1024; ///< shared global memory
  double global_memory_gbps = 25.6;  ///< aggregate global memory bandwidth

  // --- Interconnect ---------------------------------------------------------
  int noc_flit_bytes = 8;       ///< 64-bit flits (Table I "flit size 64")
  double noc_link_gbps = 16.0;  ///< per-link NoC bandwidth
  Picoseconds noc_hop_latency = from_ns(2.0);   ///< per-hop router latency
  double ht_link_gbps = 6.4;    ///< HyperTransport chip-to-chip bandwidth
  Picoseconds ht_latency = from_ns(60.0);       ///< chip-crossing latency

  // --- Timing ----------------------------------------------------------------
  /// Latency of one complete crossbar MVM (input DAC streaming + analog
  /// compute + ADC readout for all bit slices).
  Picoseconds mvm_latency = from_ns(1000.0);

  // --- Derived quantities -----------------------------------------------------
  /// Logical matrix columns one crossbar provides: a 16-bit weight spans
  /// weight_bits/cell_bits physical bitlines (PUMA weight-slicing scheme).
  int logical_cols_per_xbar() const {
    return xbar_cols * cell_bits / weight_bits;
  }

  /// Logical matrix rows per crossbar (wordlines are shared by all slices).
  int logical_rows_per_xbar() const { return xbar_rows; }

  /// 16-bit weights one core can hold.
  std::int64_t weights_per_core() const {
    return static_cast<std::int64_t>(xbars_per_core) * xbar_rows *
           logical_cols_per_xbar();
  }

  /// Number of chips needed for core_count.
  int chip_count() const {
    return (core_count + cores_per_chip - 1) / cores_per_chip;
  }

  /// Chip index that owns a core.
  int chip_of_core(int core) const { return core / cores_per_chip; }

  /// MVM issue interval for a given parallelism degree (how many AGs may
  /// compute simultaneously per core, limited by on-chip bandwidth). The
  /// paper sweeps this in Fig 8.
  Picoseconds mvm_issue_interval(int parallelism_degree) const;

  /// Throws ConfigError when any field is inconsistent (non-positive sizes,
  /// weight_bits not a multiple of cell_bits, ...).
  void validate() const;

  /// Human-readable multi-line summary.
  std::string to_string() const;

  /// The paper's evaluation instantiation (PUMA parameters, Table I).
  static HardwareConfig puma_default();
};

}  // namespace pimcomp

#endif  // PIMCOMP_ARCH_HARDWARE_CONFIG_HPP
