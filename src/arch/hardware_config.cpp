#include "arch/hardware_config.hpp"

#include <sstream>

#include "common/error.hpp"

namespace pimcomp {

std::string to_string(CoreConnection c) {
  switch (c) {
    case CoreConnection::kNoC: return "noc";
    case CoreConnection::kBus: return "bus";
  }
  return "unknown";
}

Picoseconds HardwareConfig::mvm_issue_interval(int parallelism_degree) const {
  PIMCOMP_CHECK(parallelism_degree >= 1, "parallelism degree must be >= 1");
  const Picoseconds interval = mvm_latency / parallelism_degree;
  return interval > 0 ? interval : 1;
}

void HardwareConfig::validate() const {
  PIMCOMP_CHECK(xbar_rows > 0 && xbar_cols > 0, "crossbar size must be positive");
  PIMCOMP_CHECK(cell_bits > 0, "cell bits must be positive");
  PIMCOMP_CHECK(weight_bits > 0 && weight_bits % cell_bits == 0,
                "weight bits must be a positive multiple of cell bits");
  PIMCOMP_CHECK(xbar_cols * cell_bits >= weight_bits,
                "crossbar too narrow to hold a single weight");
  PIMCOMP_CHECK(activation_bits > 0, "activation bits must be positive");
  PIMCOMP_CHECK(xbars_per_core > 0, "crossbars per core must be positive");
  PIMCOMP_CHECK(core_count > 0, "core count must be positive");
  PIMCOMP_CHECK(cores_per_chip > 0, "cores per chip must be positive");
  PIMCOMP_CHECK(vfus_per_core > 0, "VFU count must be positive");
  PIMCOMP_CHECK(vfu_ops_per_ns > 0.0, "VFU rate must be positive");
  PIMCOMP_CHECK(local_memory_bytes > 0, "local memory must be positive");
  PIMCOMP_CHECK(local_memory_gbps > 0.0, "local memory bandwidth must be positive");
  PIMCOMP_CHECK(global_memory_bytes > 0, "global memory must be positive");
  PIMCOMP_CHECK(global_memory_gbps > 0.0, "global memory bandwidth must be positive");
  PIMCOMP_CHECK(noc_flit_bytes > 0, "flit size must be positive");
  PIMCOMP_CHECK(noc_link_gbps > 0.0, "NoC bandwidth must be positive");
  PIMCOMP_CHECK(ht_link_gbps > 0.0, "HT bandwidth must be positive");
  PIMCOMP_CHECK(mvm_latency > 0, "MVM latency must be positive");
  PIMCOMP_CHECK(noc_hop_latency >= 0, "hop latency must be non-negative");
}

std::string HardwareConfig::to_string() const {
  std::ostringstream oss;
  oss << "HardwareConfig{\n"
      << "  crossbar: " << xbar_rows << "x" << xbar_cols << " @" << cell_bits
      << "b cells, " << xbars_per_core << " xbars/core, logical "
      << logical_rows_per_xbar() << "x" << logical_cols_per_xbar() << "\n"
      << "  precision: weights " << weight_bits << "b, activations "
      << activation_bits << "b\n"
      << "  cores: " << core_count << " (" << cores_per_chip
      << "/chip -> " << chip_count() << " chip(s)), connection "
      << pimcomp::to_string(connection) << "\n"
      << "  vfu: " << vfus_per_core << " lanes, " << vfu_ops_per_ns
      << " elem/ns\n"
      << "  local mem: " << local_memory_bytes / 1024 << " kB @ "
      << local_memory_gbps << " GB/s\n"
      << "  global mem: " << global_memory_bytes / (1024 * 1024) << " MB @ "
      << global_memory_gbps << " GB/s\n"
      << "  mvm latency: " << to_ns(mvm_latency) << " ns\n"
      << "}";
  return oss.str();
}

HardwareConfig HardwareConfig::puma_default() {
  // Table I of the paper; PUMA-compatible instantiation.
  HardwareConfig hw;
  hw.xbar_rows = 128;
  hw.xbar_cols = 128;
  hw.cell_bits = 2;
  hw.weight_bits = 16;
  hw.activation_bits = 16;
  hw.xbars_per_core = 64;
  hw.core_count = 36;
  hw.cores_per_chip = 36;
  hw.connection = CoreConnection::kNoC;
  hw.vfus_per_core = 12;
  hw.local_memory_bytes = 64 * 1024;
  hw.global_memory_bytes = 4 * 1024 * 1024;
  hw.ht_link_gbps = 6.4;
  return hw;
}

}  // namespace pimcomp
